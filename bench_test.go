// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5). Each benchmark regenerates its experiment — workload
// generation, policy fitting, simulation, and analysis — and reports the
// headline quantities as custom metrics so `go test -bench=.` reproduces the
// whole evaluation. Run with -v to see the rendered tables.
//
// The configurations are scaled to finish the full suite in minutes; raise
// benchMaxSeq / benchAttackSamples toward the published sizes for a
// higher-fidelity (slower) reproduction. EXPERIMENTS.md records the
// paper-vs-measured comparison produced by this harness.
package age_test

import (
	"context"
	"testing"

	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/seccomm"
)

// benchCtx is the context for experiment runs; benchmarks are never
// canceled.
var benchCtx = context.Background()

const (
	benchMaxSeq        = 64
	benchTrainSeq      = 24
	benchAttackSamples = 400
	benchPermutations  = 10000
)

// benchConfig returns the evaluation configuration used by every benchmark.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.MaxSequences = benchMaxSeq
	cfg.TrainSequences = benchTrainSeq
	cfg.AttackSamples = benchAttackSamples
	cfg.Permutations = benchPermutations
	cfg.Cipher = seccomm.ChaCha20Stream
	return cfg
}

// BenchmarkTable1MessageSizes reproduces Table 1: conditional message-size
// distributions of the three adaptive policies on Epilepsy. Reported
// metrics: the seizure-row standard deviation (the paper's headline: huge
// variance) and the worst pairwise Welch p-value (must be tiny).
func BenchmarkTable1MessageSizes(b *testing.B) {
	cfg := benchConfig()
	cfg.SkipRNN = policy.SkipRNNTrainConfig{Hidden: 8, Epochs: 2, GateEpochs: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchCtx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.Stats["linear"][0].Std, "seizure-std-bytes")
			b.ReportMetric(res.MaxPairwiseP["linear"], "max-welch-p")
			if res.MaxPairwiseP["linear"] > 0.01 {
				b.Errorf("per-event size distributions not separated: p=%g", res.MaxPairwiseP["linear"])
			}
		}
	}
}

// BenchmarkFigure1AdaptiveExample reproduces Figure 1: the adaptive policy
// reallocates samples from a calm walking window to a volatile running
// window and cuts total error (the paper reports 2.9x on its examples).
func BenchmarkFigure1AdaptiveExample(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(benchCtx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.TotalErrorRandom/res.TotalErrorAdaptive, "adaptive-error-advantage-x")
			if res.TotalErrorAdaptive >= res.TotalErrorRandom {
				b.Error("adaptive policy did not beat random sampling")
			}
		}
	}
}

// BenchmarkTable4ReconstructionError reproduces Table 4: mean MAE across the
// eight budgets for Uniform vs {Linear, Deviation} x {Std, Padded, AGE} on
// all nine datasets. Reported metrics are the overall median percent error
// vs Uniform (paper: linear-std -15.8%, linear-age -13.4%, padded +135%).
func BenchmarkTable4ReconstructionError(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table45(benchCtx, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table4String())
			b.ReportMetric(res.OverallPct["linear-std"], "linear-std-pct-vs-uniform")
			b.ReportMetric(res.OverallPct["linear-age"], "linear-age-pct-vs-uniform")
			b.ReportMetric(res.OverallPct["linear-padded"], "linear-padded-pct-vs-uniform")
			b.ReportMetric(res.OverallPct["deviation-age"], "deviation-age-pct-vs-uniform")
			if res.OverallPct["linear-age"] >= 0 {
				b.Errorf("AGE-protected Linear (%+.1f%%) did not beat Uniform overall", res.OverallPct["linear-age"])
			}
			if res.OverallPct["linear-padded"] < 100 {
				b.Errorf("Padded (%+.1f%%) unexpectedly competitive", res.OverallPct["linear-padded"])
			}
		}
	}
}

// BenchmarkTable5WeightedError reproduces Table 5: the deviation-weighted
// MAE, which emphasizes the high-variance sequences where AGE must compress
// hardest.
func BenchmarkTable5WeightedError(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table45(benchCtx, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table5String())
			b.ReportMetric(res.OverallPctWeighted["linear-age"], "linear-age-weighted-pct")
			b.ReportMetric(res.OverallPctWeighted["deviation-age"], "deviation-age-weighted-pct")
		}
	}
}

// BenchmarkFigure5ActivityCurve reproduces Figure 5: the MAE-vs-budget
// curves on the Activity dataset.
func BenchmarkFigure5ActivityCurve(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(benchCtx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			last := res.Points[len(res.Points)-1]
			first := res.Points[0]
			b.ReportMetric(first.MAE["linear-age"], "mae-at-30pct")
			b.ReportMetric(last.MAE["linear-age"], "mae-at-100pct")
			// The Figure 5 shape: adaptive+AGE under Uniform across
			// the sweep's tight budgets.
			if first.MAE["linear-age"] >= first.MAE["uniform"] {
				b.Error("linear+AGE not below Uniform at the tightest budget")
			}
		}
	}
}

// BenchmarkTable6NMI reproduces Table 6: normalized mutual information
// between message size and event label. Standard adaptive policies must
// show significant nonzero NMI on every dataset; Padded and AGE exactly 0.
func BenchmarkTable6NMI(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(benchCtx, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			var worstStd, worstAGE, sigSum float64
			n := 0.0
			for _, name := range res.Datasets {
				c := res.Cells[name]
				if v := c["linear-standard"].Max; v > worstStd {
					worstStd = v
				}
				if v := c["linear-age"].Max; v > worstAGE {
					worstAGE = v
				}
				if v := c["deviation-age"].Max; v > worstAGE {
					worstAGE = v
				}
				sigSum += c["linear-standard"].SignificantFrac
				n++
				if c["linear-age"].Max != 0 || c["deviation-age"].Max != 0 {
					b.Errorf("%s: AGE NMI nonzero", name)
				}
				if c["linear-standard"].Max == 0 {
					b.Errorf("%s: standard policy shows no leakage", name)
				}
			}
			b.ReportMetric(worstStd, "max-standard-nmi")
			b.ReportMetric(worstAGE, "max-age-nmi")
			b.ReportMetric(100*sigSum/n, "pct-budgets-significant")
		}
	}
}

// BenchmarkFigure6AttackAccuracy reproduces Figure 6: the AdaBoost attacker's
// event-detection accuracy per dataset, with and without AGE.
func BenchmarkFigure6AttackAccuracy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchCtx, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			var worstStd, worstAGEOverMaj float64
			for _, name := range res.Datasets {
				c := res.Cells[name]
				if c["linear-std"].Max > worstStd {
					worstStd = c["linear-std"].Max
				}
				if over := c["linear-age"].Max - c["linear-age"].MajorityPct; over > worstAGEOverMaj {
					worstAGEOverMaj = over
				}
			}
			b.ReportMetric(worstStd, "max-std-attack-pct")
			b.ReportMetric(worstAGEOverMaj, "max-age-attack-over-majority-pct")
			if worstStd < 90 {
				b.Errorf("worst-case standard attack only %.1f%%; paper reports >94%%", worstStd)
			}
		}
	}
}

// BenchmarkFigure7SeizureConfusion reproduces Figure 7: seizure-vs-other
// confusion matrices for Linear with and without AGE.
func BenchmarkFigure7SeizureConfusion(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(benchCtx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.Accuracy["std"]*100, "std-attack-pct")
			b.ReportMetric(res.Accuracy["age"]*100, "age-attack-pct")
			age := res.Confusion["age"]
			if age[0][0]+age[1][0] != 0 {
				b.Error("AGE left seizure predictions on the table")
			}
		}
	}
}

// BenchmarkTable7SkipRNN reproduces Table 7: the Skip RNN policy's error,
// NMI, and attack accuracy with and without AGE on every dataset. This is
// the slowest benchmark: it trains nine GRU models with BPTT.
func BenchmarkTable7SkipRNN(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxSequences = 40
	cfg.TrainSequences = 16
	cfg.SkipRNN = policy.SkipRNNTrainConfig{Hidden: 8, Epochs: 2, GateEpochs: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7(benchCtx, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.Table7String(rows))
			var worstNMI, worstAtk float64
			for _, r := range rows {
				if r.NMIStd > worstNMI {
					worstNMI = r.NMIStd
				}
				if r.AttackStd > worstAtk {
					worstAtk = r.AttackStd
				}
				if r.NMIAGE != 0 {
					b.Errorf("%s: Skip RNN with AGE leaks (NMI %g)", r.Dataset, r.NMIAGE)
				}
			}
			b.ReportMetric(worstNMI, "max-skiprnn-nmi")
			b.ReportMetric(worstAtk, "max-skiprnn-attack-pct")
		}
	}
}

// BenchmarkTable8Variants reproduces Table 8: the median percent error of
// the Single, Unshifted, and Pruned ablation variants above full AGE.
func BenchmarkTable8Variants(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table8(benchCtx, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.Pct["single"]["linear"], "single-pct-above-age")
			b.ReportMetric(res.Pct["unshifted"]["linear"], "unshifted-pct-above-age")
			b.ReportMetric(res.Pct["pruned"]["linear"], "pruned-pct-above-age")
			if res.Pct["pruned"]["linear"] < res.Pct["single"]["linear"] {
				b.Log("note: pruned beat single on this configuration (paper has pruned far worse)")
			}
		}
	}
}

// BenchmarkTable9MCUEnergy reproduces Table 9: mean energy per sequence on
// the MCU configuration (75 sequences, AES-128, budgets at 40/70/100%).
func BenchmarkTable9MCUEnergy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"activity", "tiselac"} {
			res, err := experiments.TableMCU(benchCtx, cfg, name)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Log("\n" + res.Table9String())
				byName := map[string][]float64{}
				for _, row := range res.Rows {
					byName[row.Policy] = row.EnergyMJ
				}
				for bi := range res.Rates {
					if byName["linear-age"][bi] >= byName["linear-padded"][bi] {
						b.Errorf("%s budget %d: AGE energy not below padded", name, bi)
					}
				}
				if name == "activity" {
					b.ReportMetric(byName["linear-age"][1], "activity-age-mj-per-seq")
					b.ReportMetric(byName["linear-padded"][1], "activity-padded-mj-per-seq")
				}
			}
		}
	}
}

// BenchmarkTable10MCUError reproduces Table 10: reconstruction error on the
// MCU configuration.
func BenchmarkTable10MCUError(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"activity", "tiselac"} {
			res, err := experiments.TableMCU(benchCtx, cfg, name)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Log("\n" + res.Table10String())
				byName := map[string][]float64{}
				for _, row := range res.Rows {
					byName[row.Policy] = row.MAE
				}
				// Padded pays for its violations in error at tight
				// budgets.
				if byName["linear-padded"][0] <= byName["linear-age"][0] {
					b.Errorf("%s: padded error not above AGE at the tight budget", name)
				}
				if name == "activity" {
					b.ReportMetric(byName["linear-age"][0], "activity-age-mae-40pct")
					b.ReportMetric(byName["linear-padded"][0], "activity-padded-mae-40pct")
				}
			}
		}
	}
}

// BenchmarkSec58Overhead reproduces §5.8: AGE's encode energy versus a
// direct buffer write, and the radio savings that pay for it.
func BenchmarkSec58Overhead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec58(benchCtx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.EncodeAGEMJ, "age-encode-mj")
			b.ReportMetric(res.EncodeStandardMJ, "standard-encode-mj")
			b.ReportMetric(res.CommSavedMJ, "comm-saved-mj")
			if res.CommSavedMJ <= res.EncodeAGEMJ {
				b.Error("radio savings do not cover AGE's compute energy")
			}
		}
	}
}

// BenchmarkExtensionInferenceUtility measures the downstream task the
// paper's system model motivates (§2.1): event-detection accuracy from
// reconstructed sequences. AGE must preserve it.
func BenchmarkExtensionInferenceUtility(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.InferenceUtility(benchCtx, cfg, "epilepsy", 0.7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.Raw*100, "raw-detect-pct")
			b.ReportMetric(res.Pipeline["linear-age"]*100, "age-detect-pct")
		}
	}
}

// BenchmarkExtensionMultiEvent verifies the §3.1 claim that AGE extends to
// batches containing multiple events.
func BenchmarkExtensionMultiEvent(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiEvent(benchCtx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.NMIStandard, "std-pair-nmi")
			b.ReportMetric(res.NMIAGE, "age-pair-nmi")
			if res.NMIAGE != 0 {
				b.Error("AGE leaks on multi-event batches")
			}
		}
	}
}

// BenchmarkAblationG0 sweeps AGE's group floor over {4, 6, 8}; the paper
// reports the choice does not matter (§4.3).
func BenchmarkAblationG0(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationG0(benchCtx, cfg, "epilepsy")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			for _, p := range res.Points {
				b.ReportMetric(p.MeanMAE, "mae-g0-"+itoa(p.Value))
			}
		}
	}
}

// BenchmarkAblationWMin sweeps the pruning width floor over {3, 5, 7}
// (§4.2: the paper picks 5 because smaller floors raise quantization error).
func BenchmarkAblationWMin(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationWMin(benchCtx, cfg, "epilepsy")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			for _, p := range res.Points {
				b.ReportMetric(p.MeanMAE, "mae-wmin-"+itoa(p.Value))
			}
		}
	}
}

func itoa(v int) string { return string(rune('0' + v)) }

// BenchmarkDiscussionCompressionLeak quantifies §7's warning: lossless
// delta+Huffman compression leaks events through sizes even under a
// non-adaptive collect-everything policy.
func BenchmarkDiscussionCompressionLeak(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.CompressionLeakage(benchCtx, cfg, "epilepsy")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.NMI, "compressed-nmi")
			b.ReportMetric(res.AttackPct, "compressed-attack-pct")
			b.ReportMetric(res.MeanRatio, "compression-ratio")
			if res.NMI == 0 {
				b.Error("compression shows no leakage")
			}
		}
	}
}

// BenchmarkDiscussionBufferedDefense measures §7's rejected alternative:
// buffering gives fixed sizes losslessly but pays in latency and drops.
func BenchmarkDiscussionBufferedDefense(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.BufferedDefense(benchCtx, cfg, "epilepsy")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.MeanLatency, "mean-latency-windows")
			b.ReportMetric(res.DropFrac*100, "drop-pct")
			b.ReportMetric(res.MAE, "buffered-mae")
			b.ReportMetric(res.AGEMae, "age-mae")
		}
	}
}
