// Black-box tests of the public API facade: everything a downstream user
// touches must work through the root package alone.
package age_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	age "repro"
	"repro/internal/bitio"
	"repro/internal/chacha"
)

func TestFacadeEndToEnd(t *testing.T) {
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 1, MaxSequences: 16})
	if err != nil {
		t.Fatal(err)
	}
	meta := data.Meta
	var train [][][]float64
	for _, s := range data.Sequences {
		train = append(train, s.Values)
	}
	fit, err := age.FitPolicy(age.LinearPolicy, train, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	pol := age.NewLinearPolicy(fit.Threshold)

	target := age.ReduceTarget(age.TargetBytesForRate(0.7, meta.SeqLen, meta.NumFeatures, meta.Format.Width))
	enc, err := age.NewAGEEncoder(age.EncoderConfig{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format, TargetBytes: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := age.NewSealer(age.ChaCha20, make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	seq := data.Sequences[0]
	idx := pol.Sample(seq.Values, rng)
	vals := make([][]float64, len(idx))
	for i, ti := range idx {
		vals[i] = seq.Values[ti]
	}
	payload, err := enc.Encode(age.Batch{Indices: idx, Values: vals})
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != target {
		t.Fatalf("payload %dB, want %d", len(payload), target)
	}
	msg, err := sealer.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := sealer.Open(msg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := enc.Decode(opened)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := age.Reconstruct(batch.Indices, batch.Values, meta.SeqLen, meta.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	mae, err := age.MAE(recon, seq.Values)
	if err != nil {
		t.Fatal(err)
	}
	if mae <= 0 || mae > 1 {
		t.Errorf("MAE = %g out of plausible range", mae)
	}
}

func TestFacadeSimulateAndAttack(t *testing.T) {
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 2, MaxSequences: 32})
	if err != nil {
		t.Fatal(err)
	}
	res, err := age.Simulate(age.SimulationConfig{
		Dataset: data,
		Policy:  age.NewUniformPolicy(0.5),
		Encoder: age.EncAGE,
		Cipher:  age.ChaCha20,
		Rate:    0.5,
		Model:   age.DefaultEnergyModel(),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := age.NMI(labels, sizes); nmi != 0 {
		t.Errorf("facade AGE NMI = %g", nmi)
	}
	rng := rand.New(rand.NewSource(3))
	samples, err := age.BuildAttackSamples(res.SizesByLabel, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := age.RunAttack(samples, data.Meta.NumLabels, rng)
	if err != nil {
		t.Fatal(err)
	}
	if atk.MeanAccuracy > atk.Majority+0.05 {
		t.Errorf("attack on fixed sizes: %g above majority %g", atk.MeanAccuracy, atk.Majority)
	}
}

func TestFacadeDatasetNames(t *testing.T) {
	if got := len(age.DatasetNames()); got != 9 {
		t.Errorf("%d datasets", got)
	}
	if got := age.EventNames("epilepsy"); len(got) != 4 {
		t.Errorf("epilepsy events = %v", got)
	}
}

func TestFacadeCSV(t *testing.T) {
	in := "x,2,1,2,16,3\n1,0.25,-0.25\n"
	d, err := age.ReadDatasetCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Sequences) != 1 || d.Sequences[0].Label != 1 {
		t.Fatalf("parsed %+v", d.Meta)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,2,1,2,16,3") {
		t.Errorf("round trip header: %q", buf.String())
	}
}

func TestFacadeRoundTargetToCipher(t *testing.T) {
	if age.RoundTargetToCipher(100, age.ChaCha20) != 100 {
		t.Error("stream target changed")
	}
	if got := age.RoundTargetToCipher(100, age.AES128); got%16 != 15 {
		t.Errorf("block target %d not block-filling", got)
	}
}

func TestFacadeSentinelErrors(t *testing.T) {
	format := age.Format{Width: 16, NonFrac: 3}
	goodCfg := age.EncoderConfig{
		T: 16, D: 1, Format: format,
		TargetBytes: age.TargetBytesForRate(0.5, 16, 1, format.Width),
	}

	if _, _, err := age.NewEncoder(age.EncoderKind("bogus"), goodCfg); !errors.Is(err, age.ErrUnknownEncoder) {
		t.Errorf("unknown kind error = %v, want ErrUnknownEncoder", err)
	}
	tiny := goodCfg
	tiny.TargetBytes = 1
	if _, _, err := age.NewEncoder(age.EncAGE, tiny); !errors.Is(err, age.ErrTargetTooSmall) {
		t.Errorf("tiny target error = %v, want ErrTargetTooSmall", err)
	}
	if _, err := age.NewSealer(age.ChaCha20, make([]byte, 5)); !errors.Is(err, age.ErrBadKey) {
		t.Errorf("short key error = %v, want ErrBadKey", err)
	}
	_, dec, err := age.NewEncoder(age.EncAGE, goodCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode([]byte{1, 2, 3}); !errors.Is(err, age.ErrPayloadLength) {
		t.Errorf("truncated payload error = %v, want ErrPayloadLength", err)
	}
	for _, kind := range age.EncoderKinds() {
		if _, _, err := age.NewEncoder(kind, goodCfg); err != nil {
			t.Errorf("NewEncoder(%s) failed: %v", kind, err)
		}
	}
}

// TestSentinelMatchThroughWraps pins the errors.Is contract at every site the
// sentinelerr analyzer flagged for direct ==/!= comparison: each sentinel must
// keep matching after a fmt.Errorf %w wrap layer, which is exactly what the
// removed equality tests silently broke.
func TestSentinelMatchThroughWraps(t *testing.T) {
	cases := []struct {
		name     string
		sentinel error
	}{
		{"age.ErrServerClosed (example_test.go)", age.ErrServerClosed},
		{"chacha.ErrAuthFailed (aead_test.go)", chacha.ErrAuthFailed},
		{"bitio.ErrShortBuffer (bitio_test.go)", bitio.ErrShortBuffer},
		{"io.EOF (dataset/csv.go)", io.EOF},
	}
	for _, c := range cases {
		wrapped := fmt.Errorf("outer layer: %w", c.sentinel)
		if !errors.Is(wrapped, c.sentinel) {
			t.Errorf("%s: errors.Is does not match through a wrap", c.name)
		}
		if wrapped == c.sentinel {
			t.Errorf("%s: wrap layer missing — direct equality would have kept working", c.name)
		}
	}
}

func TestFacadeSimulateContext(t *testing.T) {
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 6, MaxSequences: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := age.SimulationConfig{
		Dataset: data,
		Policy:  age.NewUniformPolicy(0.5),
		Encoder: age.EncAGE,
		Cipher:  age.ChaCha20,
		Rate:    0.5,
		Model:   age.DefaultEnergyModel(),
		Seed:    1,
	}
	want, err := age.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := age.SimulateContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.MAE != want.MAE {
		t.Errorf("SimulateContext MAE %g != Simulate MAE %g", got.MAE, want.MAE)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := age.SimulateContext(cancelled, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Seqs) != 0 {
		t.Errorf("pre-cancelled run folded %v sequences", res)
	}
}

func TestFacadeSimulateOverSocketContext(t *testing.T) {
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 7, MaxSequences: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := age.SimulationConfig{
		Dataset: data,
		Policy:  age.NewUniformPolicy(0.5),
		Encoder: age.EncAGE,
		Cipher:  age.ChaCha20,
		Rate:    0.5,
		Model:   age.DefaultEnergyModel(),
		Seed:    1,
	}
	res, err := age.SimulateOverSocketContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAE <= 0 {
		t.Errorf("socket MAE = %g", res.MAE)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := age.SimulateOverSocketContext(cancelled, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled socket run error = %v, want context.Canceled", err)
	}
}

func TestFacadeServerLifecycle(t *testing.T) {
	srv, err := age.NewServer(age.ServerConfig{
		Handler: age.IngestHandlerFuncs{
			OpenFunc: func(sensorID, delivered int) (age.IngestSession, error) {
				return nil, errors.New("no sessions in this test")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, age.ErrServerClosed) {
		t.Errorf("Serve after Close = %v, want ErrServerClosed", err)
	}
	if err := srv.Listen("127.0.0.1:0"); !errors.Is(err, age.ErrServerClosed) {
		t.Errorf("Listen after Close = %v, want ErrServerClosed", err)
	}
}

func TestFacadeSkipRNN(t *testing.T) {
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 4, MaxSequences: 12})
	if err != nil {
		t.Fatal(err)
	}
	var train [][][]float64
	for _, s := range data.Sequences {
		train = append(train, s.Values)
	}
	cfg := age.SkipRNNTrainConfig{Hidden: 4, Epochs: 1, GateEpochs: 1, Seed: 1}
	model, err := age.TrainSkipRNN(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, fit := model.FitBias(train, 0.6)
	if fit.AchievedRate <= 0 {
		t.Errorf("achieved rate %g", fit.AchievedRate)
	}
	rng := rand.New(rand.NewSource(5))
	if idx := p.Sample(train[0], rng); len(idx) == 0 {
		t.Error("skip RNN collected nothing")
	}
}

// TestFacadeClientOptionsRoundTrip pins the grouped/flat client-config
// equivalence at the facade: downstream users can adopt ClientOptions (or
// stay on ClientConfig) with identical behavior.
func TestFacadeClientOptionsRoundTrip(t *testing.T) {
	opts := age.ClientOptions{
		Addr:     "127.0.0.1:9",
		SensorID: 5,
		Dial:     age.DialOptions{Attempts: 3},
		Write:    age.WriteOptions{Batch: 4},
		Retry:    age.RetryOptions{ReconnectAttempts: 7},
		Pace:     age.PaceOptions{Mode: age.PaceConstant},
	}
	cfg := opts.Config()
	if cfg.DialAttempts != 3 || cfg.WriteBatch != 4 || cfg.ReconnectAttempts != 7 ||
		cfg.Pacer.Mode != age.PaceConstant {
		t.Fatalf("grouped options flattened wrong: %+v", cfg)
	}
	back := cfg.Options()
	if back.Dial.Attempts != 3 || back.Write.Batch != 4 || back.Retry.ReconnectAttempts != 7 ||
		back.Pace.Mode != age.PaceConstant {
		t.Fatalf("flat config regrouped wrong: %+v", back)
	}
	if cl := age.NewClientFromOptions(opts); cl == nil {
		t.Fatal("NewClientFromOptions returned nil")
	}
}

// clusterCountSession counts frames per sensor through the facade's cluster.
type clusterCountSession struct {
	total  int
	frames chan<- int
}

func (s *clusterCountSession) Total() int                        { return s.total }
func (s *clusterCountSession) Frame(index int, msg []byte) error { s.frames <- index; return nil }
func (s *clusterCountSession) Close(err error)                   {}

type clusterFrames struct {
	frames [][]byte
	next   int
}

func (s *clusterFrames) Total() int            { return len(s.frames) }
func (s *clusterFrames) Seek(resume int) error { s.next = resume; return nil }
func (s *clusterFrames) Next(ctx context.Context) ([]byte, error) {
	f := s.frames[s.next]
	s.next++
	return f, nil
}

// TestFacadeClusterLifecycle drives the cluster surface end to end through
// the root package alone: build, start, stream sensors through the gateway,
// snapshot routing state, drain, and observe the closed sentinel.
func TestFacadeClusterLifecycle(t *testing.T) {
	received := make(chan int, 64)
	cl, err := age.NewCluster(age.ClusterConfig{
		Nodes: 3,
		Node: age.ClusterNodeSpec{Server: age.ServerConfig{
			Handler: age.IngestHandlerFuncs{
				OpenFunc: func(sensorID, delivered int) (age.IngestSession, error) {
					return &clusterCountSession{total: 4, frames: received}, nil
				},
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	const sensors = 6
	for id := 0; id < sensors; id++ {
		client := age.NewClient(age.ClientConfig{Addr: cl.Addr().String(), SensorID: id})
		frames := [][]byte{[]byte("w"), []byte("x"), []byte("y"), []byte("z")}
		if _, err := client.Run(context.Background(), &clusterFrames{frames: frames}); err != nil {
			t.Fatalf("sensor %d: %v", id, err)
		}
	}
	if got := len(received); got != sensors*4 {
		t.Fatalf("cluster delivered %d frames, want %d", got, sensors*4)
	}

	st := cl.Stats()
	if st.LocatorSize != sensors {
		t.Errorf("locator size = %d, want %d", st.LocatorSize, sensors)
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("%d nodes, want 3", len(st.Nodes))
	}
	for _, n := range st.Nodes {
		if n.State != "live" {
			t.Errorf("node %d state %q, want live", n.ID, n.State)
		}
	}

	if err := cl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start("127.0.0.1:0"); !errors.Is(err, age.ErrClusterClosed) {
		t.Errorf("Start after Drain = %v, want ErrClusterClosed", err)
	}
}
