// Black-box tests of the public API facade: everything a downstream user
// touches must work through the root package alone.
package age_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	age "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 1, MaxSequences: 16})
	if err != nil {
		t.Fatal(err)
	}
	meta := data.Meta
	var train [][][]float64
	for _, s := range data.Sequences {
		train = append(train, s.Values)
	}
	fit, err := age.FitPolicy(age.LinearPolicy, train, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	pol := age.NewLinearPolicy(fit.Threshold)

	target := age.ReduceTarget(age.TargetBytesForRate(0.7, meta.SeqLen, meta.NumFeatures, meta.Format.Width))
	enc, err := age.NewAGEEncoder(age.EncoderConfig{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format, TargetBytes: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := age.NewSealer(age.ChaCha20, make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	seq := data.Sequences[0]
	idx := pol.Sample(seq.Values, rng)
	vals := make([][]float64, len(idx))
	for i, ti := range idx {
		vals[i] = seq.Values[ti]
	}
	payload, err := enc.Encode(age.Batch{Indices: idx, Values: vals})
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != target {
		t.Fatalf("payload %dB, want %d", len(payload), target)
	}
	msg, err := sealer.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := sealer.Open(msg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := enc.Decode(opened)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := age.Reconstruct(batch.Indices, batch.Values, meta.SeqLen, meta.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	mae, err := age.MAE(recon, seq.Values)
	if err != nil {
		t.Fatal(err)
	}
	if mae <= 0 || mae > 1 {
		t.Errorf("MAE = %g out of plausible range", mae)
	}
}

func TestFacadeSimulateAndAttack(t *testing.T) {
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 2, MaxSequences: 32})
	if err != nil {
		t.Fatal(err)
	}
	res, err := age.Simulate(age.SimulationConfig{
		Dataset: data,
		Policy:  age.NewUniformPolicy(0.5),
		Encoder: age.EncAGE,
		Cipher:  age.ChaCha20,
		Rate:    0.5,
		Model:   age.DefaultEnergyModel(),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := age.NMI(labels, sizes); nmi != 0 {
		t.Errorf("facade AGE NMI = %g", nmi)
	}
	rng := rand.New(rand.NewSource(3))
	samples, err := age.BuildAttackSamples(res.SizesByLabel, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := age.RunAttack(samples, data.Meta.NumLabels, rng)
	if err != nil {
		t.Fatal(err)
	}
	if atk.MeanAccuracy > atk.Majority+0.05 {
		t.Errorf("attack on fixed sizes: %g above majority %g", atk.MeanAccuracy, atk.Majority)
	}
}

func TestFacadeDatasetNames(t *testing.T) {
	if got := len(age.DatasetNames()); got != 9 {
		t.Errorf("%d datasets", got)
	}
	if got := age.EventNames("epilepsy"); len(got) != 4 {
		t.Errorf("epilepsy events = %v", got)
	}
}

func TestFacadeCSV(t *testing.T) {
	in := "x,2,1,2,16,3\n1,0.25,-0.25\n"
	d, err := age.ReadDatasetCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Sequences) != 1 || d.Sequences[0].Label != 1 {
		t.Fatalf("parsed %+v", d.Meta)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,2,1,2,16,3") {
		t.Errorf("round trip header: %q", buf.String())
	}
}

func TestFacadeRoundTargetToCipher(t *testing.T) {
	if age.RoundTargetToCipher(100, age.ChaCha20) != 100 {
		t.Error("stream target changed")
	}
	if got := age.RoundTargetToCipher(100, age.AES128); got%16 != 15 {
		t.Errorf("block target %d not block-filling", got)
	}
}

func TestFacadeSkipRNN(t *testing.T) {
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 4, MaxSequences: 12})
	if err != nil {
		t.Fatal(err)
	}
	var train [][][]float64
	for _, s := range data.Sequences {
		train = append(train, s.Values)
	}
	cfg := age.SkipRNNTrainConfig{Hidden: 4, Epochs: 1, GateEpochs: 1, Seed: 1}
	model, err := age.TrainSkipRNN(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, fit := model.FitBias(train, 0.6)
	if fit.AchievedRate <= 0 {
		t.Errorf("achieved rate %g", fit.AchievedRate)
	}
	rng := rand.New(rand.NewSource(5))
	if idx := p.Sample(train[0], rng); len(idx) == 0 {
		t.Error("skip RNN collected nothing")
	}
}
