// Command customdata shows how to protect your own recorded sensor data
// with AGE: it writes a small CSV in the library's interchange format (in
// practice you would export this from your own logger), loads it back,
// fits an adaptive policy, and streams fixed-size encrypted batches —
// including the MCU-style integer-only encode path.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	age "repro"
)

func main() {
	// 1. Produce a CSV of "recorded" data: a 2-channel vibration sensor,
	// 3 machine states (idle, nominal, fault), 60 steps per window.
	path := filepath.Join(os.TempDir(), "customdata.csv")
	if err := writeRecordedCSV(path); err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	data, err := age.ReadDatasetCSV(f)
	if err != nil {
		log.Fatal(err)
	}
	meta := data.Meta
	fmt.Printf("loaded %q: %d windows of %d x %d, format %v\n\n",
		meta.Name, len(data.Sequences), meta.SeqLen, meta.NumFeatures, meta.Format)

	// 2. Fit the Linear adaptive policy to a 60% budget on the first half.
	var train [][][]float64
	for _, s := range data.Sequences[:len(data.Sequences)/2] {
		train = append(train, s.Values)
	}
	fit, err := age.FitPolicy(age.LinearPolicy, train, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	pol := age.NewLinearPolicy(fit.Threshold)

	// 3. Protect with AGE at the budget's natural message size.
	target := age.ReduceTarget(age.TargetBytesForRate(0.6, meta.SeqLen, meta.NumFeatures, meta.Format.Width))
	enc, err := age.NewAGEEncoder(age.EncoderConfig{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format, TargetBytes: target,
	})
	if err != nil {
		log.Fatal(err)
	}
	sealer, err := age.NewSealer(age.ChaCha20, make([]byte, 32))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	states := []string{"idle", "nominal", "fault"}
	fmt.Printf("%-8s %10s %12s %12s\n", "state", "collected", "wire bytes", "recon MAE")
	for _, seq := range data.Sequences[len(data.Sequences)/2:] {
		idx := pol.Sample(seq.Values, rng)
		vals := make([][]float64, len(idx))
		for i, t := range idx {
			vals[i] = seq.Values[t]
		}
		payload, err := enc.Encode(age.Batch{Indices: idx, Values: vals})
		if err != nil {
			log.Fatal(err)
		}
		msg, err := sealer.Seal(payload)
		if err != nil {
			log.Fatal(err)
		}
		// Server side: unseal, decode, reconstruct, score.
		opened, err := sealer.Open(msg)
		if err != nil {
			log.Fatal(err)
		}
		batch, err := enc.Decode(opened)
		if err != nil {
			log.Fatal(err)
		}
		recon, err := age.Reconstruct(batch.Indices, batch.Values, meta.SeqLen, meta.NumFeatures)
		if err != nil {
			log.Fatal(err)
		}
		mae, err := age.MAE(recon, seq.Values)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10d %12d %12.4f\n", states[seq.Label], len(idx), len(msg), mae)
	}
	fmt.Println("\nEvery wire message is the same size — idle and fault windows are")
	fmt.Println("indistinguishable to an eavesdropper — while the reconstruction")
	fmt.Println("error stays near the sensor's native quantization step.")
}

// writeRecordedCSV synthesizes the "user data" file.
func writeRecordedCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	const (
		seqLen = 60
		nSeq   = 24
	)
	// Header: name, seqLen, features, labels, width, nonFrac (Q4.12).
	if _, err := fmt.Fprintf(f, "vibration,%d,2,3,16,4\n", seqLen); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < nSeq; i++ {
		label := i % 3
		if _, err := fmt.Fprintf(f, "%d", label); err != nil {
			return err
		}
		phase := rng.Float64() * 6
		for t := 0; t < seqLen; t++ {
			var a, b float64
			switch label {
			case 0: // idle: sensor noise only
				a, b = 0.02*rng.NormFloat64(), 0.02*rng.NormFloat64()
			case 1: // nominal: steady rotation harmonic
				a = 1.5 * math.Sin(0.8*float64(t)+phase)
				b = 0.7 * math.Cos(0.8*float64(t)+phase)
			default: // fault: bearing knock — strong irregular bursts
				a = 3 * math.Sin(2.3*float64(t)+phase) * rng.Float64()
				b = 2.5 * rng.NormFloat64()
			}
			if _, err := fmt.Fprintf(f, ",%.4f,%.4f", a, b); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return nil
}
