// Command wearable runs the paper's motivating deployment end to end: a
// battery-powered activity-recognition wearable (Activity workload,
// accelerometer + gyroscope) streams batched, ChaCha20-encrypted
// measurements to a server over a real TCP loopback socket. It runs the
// pipeline twice — Standard encoding and AGE — and prints what a passive
// eavesdropper learns from message sizes in each case.
package main

import (
	"fmt"
	"log"

	age "repro"
)

func main() {
	data, err := age.LoadDataset("activity", age.DatasetOptions{Seed: 9, MaxSequences: 60})
	if err != nil {
		log.Fatal(err)
	}
	var train [][][]float64
	for _, s := range data.Sequences[:24] {
		train = append(train, s.Values)
	}
	const rate = 0.7
	fit, err := age.FitPolicy(age.DeviationPolicy, train, rate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wearable: %d sequences, Deviation policy @ %.0f%% budget (threshold %.4f)\n\n",
		len(data.Sequences), rate*100, fit.Threshold)

	for _, enc := range []age.EncoderKind{age.EncStandard, age.EncAGE} {
		cfg := age.SimulationConfig{
			Dataset: data,
			Policy:  age.NewDeviationPolicy(fit.Threshold),
			Encoder: enc,
			Cipher:  age.ChaCha20,
			Rate:    rate,
			Model:   age.DefaultEnergyModel(),
			Seed:    1,
		}
		// Sensor goroutine -> TCP socket -> server goroutine.
		res, err := age.SimulateOverSocket(cfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("[%s] server-side reconstruction MAE: %.4f\n", enc, res.MAE)
		fmt.Printf("  eavesdropper's view (wire bytes per activity):\n")
		var labels, sizes []int
		for l := 0; l < data.Meta.NumLabels; l++ {
			ss := res.SizesByLabel[l]
			if len(ss) == 0 {
				continue
			}
			lo, hi := ss[0], ss[0]
			sum := 0
			for _, s := range ss {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
				sum += s
				labels = append(labels, l)
				sizes = append(sizes, s)
			}
			fmt.Printf("    activity %2d: mean %6.1f B  range [%d, %d]\n",
				l, float64(sum)/float64(len(ss)), lo, hi)
		}
		fmt.Printf("  NMI(size, activity) = %.3f\n\n", age.NMI(labels, sizes))
	}

	fmt.Println("Standard encoding gives each activity a size signature; AGE's")
	fmt.Println("constant wire size drives the mutual information to zero.")
}
