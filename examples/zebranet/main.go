// Command zebranet models the paper's wildlife-monitoring scenario (§3.3):
// a herd of collar sensors (ZebraNet/TigerCENSE-style) streams accelerometer
// batches concurrently to one base station. The poacher-threat version of
// the attack pools every collar's encrypted message sizes to infer the
// animals' activity; AGE makes the whole herd's traffic uniform.
package main

import (
	"fmt"
	"log"
	"time"

	age "repro"
)

func main() {
	// Activity windows stand in for the collars' accelerometer batches.
	data, err := age.LoadDataset("activity", age.DatasetOptions{Seed: 17, MaxSequences: 96})
	if err != nil {
		log.Fatal(err)
	}
	var train [][][]float64
	for _, s := range data.Sequences[:32] {
		train = append(train, s.Values)
	}
	const rate = 0.6
	fit, err := age.FitPolicy(age.LinearPolicy, train, rate)
	if err != nil {
		log.Fatal(err)
	}

	const herd = 8
	for _, enc := range []age.EncoderKind{age.EncStandard, age.EncAGE} {
		res, err := age.SimulateFleet(age.FleetConfig{
			Base: age.SimulationConfig{
				Dataset: data,
				Policy:  age.NewLinearPolicy(fit.Threshold),
				Encoder: enc,
				Cipher:  age.ChaCha20,
				Rate:    rate,
				Model:   age.DefaultEnergyModel(),
				Seed:    2,
			},
			Sensors: herd,
			// Wildlife links are intermittent; bound every frame and every
			// connect attempt so a quiet collar degrades the run instead of
			// hanging the base station.
			IOTimeout:    2 * time.Second,
			DialTimeout:  time.Second,
			DialAttempts: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		var labels, sizes []int
		distinct := map[int]bool{}
		for l, ss := range res.SizesByLabel {
			for _, s := range ss {
				labels = append(labels, l)
				sizes = append(sizes, s)
				distinct[s] = true
			}
		}
		fmt.Printf("[%s] herd of %d collars, %d batches to the base station\n", enc, herd, res.Messages)
		fmt.Printf("  distinct message sizes on the air: %d\n", len(distinct))
		fmt.Printf("  pooled NMI(size, activity): %.3f\n", age.NMI(labels, sizes))
		var worst float64
		for _, mae := range res.PerSensorMAE {
			if mae > worst {
				worst = mae
			}
		}
		fmt.Printf("  worst collar reconstruction MAE: %.4f\n\n", worst)
	}
	fmt.Println("With Standard encoding the herd's traffic is a readable activity")
	fmt.Println("log; with AGE every collar's every batch is the same size.")

	// Herds lose collars: one runs out of battery before the window, one
	// dies mid-stream. The run degrades — surviving collars deliver and the
	// base station reports exactly which collars went dark and why.
	fmt.Println("\nfault injection: collar 2 never dials, collar 5 dies after 1 batch")
	res, err := age.SimulateFleet(age.FleetConfig{
		Base: age.SimulationConfig{
			Dataset: data,
			Policy:  age.NewLinearPolicy(fit.Threshold),
			Encoder: age.EncAGE,
			Cipher:  age.ChaCha20,
			Rate:    rate,
			Model:   age.DefaultEnergyModel(),
			Seed:    2,
		},
		Sensors:      herd,
		IOTimeout:    time.Second,
		DialTimeout:  500 * time.Millisecond,
		DialAttempts: 2,
		Faults: &age.FleetFaults{
			NeverDial:      map[int]bool{2: true},
			DieAfterFrames: map[int]int{5: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range res.Sensors {
		status := "ok"
		if e := st.Err(); e != "" {
			status = e
		}
		fmt.Printf("  collar %d: %d/%d batches (%s)\n", st.Sensor, st.Delivered, st.Assigned, status)
	}
	fmt.Printf("%d of %d collars degraded; the other %d delivered everything.\n",
		res.Failed, herd, herd-res.Failed)
}
