// Command seizure reproduces the paper's most alarming result (§5.4,
// Figure 7): a passive eavesdropper who only sees encrypted message sizes
// can detect epileptic seizures from a medical wearable with perfect
// accuracy — and AGE reduces that attacker to guessing the majority class.
package main

import (
	"fmt"
	"log"
	"math/rand"

	age "repro"
)

func main() {
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 2, MaxSequences: 96})
	if err != nil {
		log.Fatal(err)
	}
	var train [][][]float64
	for _, s := range data.Sequences[:32] {
		train = append(train, s.Values)
	}
	const rate = 0.7
	fit, err := age.FitPolicy(age.LinearPolicy, train, rate)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))

	fmt.Println("seizure detection from encrypted message sizes (Linear policy @ 70%)")
	for _, enc := range []age.EncoderKind{age.EncStandard, age.EncAGE} {
		res, err := age.Simulate(age.SimulationConfig{
			Dataset: data,
			Policy:  age.NewLinearPolicy(fit.Threshold),
			Encoder: enc,
			Cipher:  age.ChaCha20,
			Rate:    rate,
			Model:   age.DefaultEnergyModel(),
			Seed:    4,
		})
		if err != nil {
			log.Fatal(err)
		}

		// The attacker's task: seizure (label 0) vs everything else.
		binary := map[int][]int{}
		for l, sizes := range res.SizesByLabel {
			b := 1
			if l == 0 {
				b = 0
			}
			binary[b] = append(binary[b], sizes...)
		}
		samples, err := age.BuildAttackSamples(binary, 600, rng)
		if err != nil {
			log.Fatal(err)
		}
		atk, err := age.RunAttack(samples, 2, rng)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n[%s] attack accuracy %.1f%% (majority baseline %.1f%%)\n",
			enc, atk.MeanAccuracy*100, atk.Majority*100)
		fmt.Println("  confusion (rows = truth, cols = prediction):")
		fmt.Printf("             seizure   other\n")
		fmt.Printf("  seizure %9d %7d\n", atk.Confusion[0][0], atk.Confusion[0][1])
		fmt.Printf("  other   %9d %7d\n", atk.Confusion[1][0], atk.Confusion[1][1])
	}

	fmt.Println("\nWith Standard encoding the attacker recovers seizures from sizes")
	fmt.Println("alone; with AGE every message looks identical and all predictions")
	fmt.Println("collapse into the majority class.")
}
