// Command quickstart is a five-minute tour of the AGE library: sample a
// sequence adaptively, encode the batch with the leaky Standard encoder and
// with AGE, and compare message sizes and reconstruction error.
package main

import (
	"fmt"
	"log"
	"math/rand"

	age "repro"
)

func main() {
	// Load a small slice of the Epilepsy workload (wrist accelerometer,
	// four events: seizure, walking, running, sawing).
	data, err := age.LoadDataset("epilepsy", age.DatasetOptions{Seed: 1, MaxSequences: 24})
	if err != nil {
		log.Fatal(err)
	}
	meta := data.Meta
	fmt.Printf("dataset %s: T=%d steps, d=%d features, format %v\n\n",
		meta.Name, meta.SeqLen, meta.NumFeatures, meta.Format)

	// Fit the Linear adaptive policy to a 70% average collection rate.
	var train [][][]float64
	for _, s := range data.Sequences {
		train = append(train, s.Values)
	}
	fit, err := age.FitPolicy(age.LinearPolicy, train, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	adaptive := age.NewLinearPolicy(fit.Threshold)
	fmt.Printf("fitted Linear policy: threshold %.4f, achieved rate %.2f\n\n",
		fit.Threshold, fit.AchievedRate)

	// Build both encoders. AGE targets the message size of an average
	// 70% batch, minus the energy-saving reduction of §4.5.
	target := age.ReduceTarget(age.TargetBytesForRate(0.7, meta.SeqLen, meta.NumFeatures, meta.Format.Width))
	cfg := age.EncoderConfig{T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format, TargetBytes: target}
	standard, err := age.NewStandardEncoder(cfg)
	if err != nil {
		log.Fatal(err)
	}
	protected, err := age.NewAGEEncoder(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	events := age.EventNames("epilepsy")
	fmt.Printf("%-10s %10s %14s %14s %12s\n", "event", "collected", "standard (B)", "age (B)", "age MAE")
	for _, seq := range data.Sequences[:8] {
		idx := adaptive.Sample(seq.Values, rng)
		vals := make([][]float64, len(idx))
		for i, t := range idx {
			vals[i] = seq.Values[t]
		}
		batch := age.Batch{Indices: idx, Values: vals}

		stdPayload, err := standard.Encode(batch)
		if err != nil {
			log.Fatal(err)
		}
		agePayload, err := protected.Encode(batch)
		if err != nil {
			log.Fatal(err)
		}

		// Decode AGE's fixed-size message and reconstruct the full
		// sequence on the "server".
		decoded, err := protected.Decode(agePayload)
		if err != nil {
			log.Fatal(err)
		}
		recon, err := age.Reconstruct(decoded.Indices, decoded.Values, meta.SeqLen, meta.NumFeatures)
		if err != nil {
			log.Fatal(err)
		}
		mae, err := age.MAE(recon, seq.Values)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10d %14d %14d %12.4f\n",
			events[seq.Label], len(idx), len(stdPayload), len(agePayload), mae)
	}

	fmt.Println("\nThe Standard column varies with the event (the side-channel);")
	fmt.Println("the AGE column is constant: message size reveals nothing.")
}
