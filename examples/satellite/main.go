// Command satellite models the paper's nanosatellite scenario (§3.3): a
// remote-sensing node classifies land cover from multispectral time series
// (the Tiselac workload) and downlinks AES-128-encrypted batches under tight
// energy budgets. It sweeps the budget grid and compares Uniform sampling,
// the Linear adaptive policy, the padding defense, and AGE on error, energy,
// and budget violations — the Figure 5 / Table 4 story on one workload.
package main

import (
	"fmt"
	"log"
	"time"

	age "repro"
)

func main() {
	data, err := age.LoadDataset("tiselac", age.DatasetOptions{Seed: 21, MaxSequences: 80})
	if err != nil {
		log.Fatal(err)
	}
	var train [][][]float64
	for _, s := range data.Sequences[:32] {
		train = append(train, s.Values)
	}

	fmt.Println("satellite downlink: Tiselac land-cover, AES-128-CBC, 8 budgets")
	fmt.Printf("%-6s %-10s | %10s %12s %12s %10s\n",
		"budget", "policy", "MAE", "energy(mJ)", "budget(mJ)", "violations")
	for _, rate := range []float64{0.3, 0.5, 0.7, 0.9} {
		fit, err := age.FitPolicy(age.LinearPolicy, train, rate)
		if err != nil {
			log.Fatal(err)
		}
		cases := []struct {
			name    string
			policy  age.Policy
			encoder age.EncoderKind
		}{
			{"uniform", age.NewUniformPolicy(rate), age.EncStandard},
			{"linear", age.NewLinearPolicy(fit.Threshold), age.EncStandard},
			{"padded", age.NewLinearPolicy(fit.Threshold), age.EncPadded},
			{"age", age.NewLinearPolicy(fit.Threshold), age.EncAGE},
		}
		for _, c := range cases {
			res, err := age.Simulate(age.SimulationConfig{
				Dataset: data,
				Policy:  c.policy,
				Encoder: c.encoder,
				Cipher:  age.AES128,
				Rate:    rate,
				Model:   age.DefaultEnergyModel(),
				Seed:    3,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6.0f%% %-10s | %10.3f %12.1f %12.1f %10d\n",
				rate*100, c.name, res.MAE, res.TotalEnergyMJ, res.BudgetMJ, res.Violations)
		}
	}

	fmt.Println("\nPadding blows the downlink budget and pays for it in error;")
	fmt.Println("AGE keeps adaptive sampling's accuracy inside every budget.")

	// Transport check: the same AGE pipeline over a real TCP loopback link.
	// A satellite pass is a short contact window, so every frame carries a
	// read/write deadline — a stalled link fails the pass instead of hanging
	// the ground station.
	fit, err := age.FitPolicy(age.LinearPolicy, train, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	sock, err := age.SimulateOverSocket(age.SimulationConfig{
		Dataset:   data,
		Policy:    age.NewLinearPolicy(fit.Threshold),
		Encoder:   age.EncAGE,
		Cipher:    age.AES128,
		Rate:      0.7,
		Model:     age.DefaultEnergyModel(),
		Seed:      3,
		IOTimeout: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransport check (TCP loopback, 2s frame deadline): AGE @ 70%% MAE %.3f\n", sock.MAE)
}
