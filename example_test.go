// Runnable examples for the facade's constructors. The ingest examples
// share two tiny in-memory implementations: captureSession (the server-side
// consumer) and sliceFrames (the client-side frame source).
package age_test

import (
	"context"
	"errors"
	"fmt"

	age "repro"
)

// captureSession is an IngestSession that forwards every received frame to
// a channel.
type captureSession struct {
	total  int
	frames chan<- []byte
}

func (s *captureSession) Total() int                        { return s.total }
func (s *captureSession) Frame(index int, msg []byte) error { s.frames <- msg; return nil }
func (s *captureSession) Close(err error)                   {}

// sliceFrames is a FrameSource over a fixed slice of pre-sealed frames.
type sliceFrames struct {
	frames [][]byte
	next   int
}

func (s *sliceFrames) Total() int            { return len(s.frames) }
func (s *sliceFrames) Seek(resume int) error { s.next = resume; return nil }
func (s *sliceFrames) Next(ctx context.Context) ([]byte, error) {
	f := s.frames[s.next]
	s.next++
	return f, nil
}

func ExampleNewEncoder() {
	// One factory covers all six variants; swap age.EncAGE for
	// age.EncStandard, age.EncPadded, or an ablation kind to compare.
	meta := age.Format{Width: 16, NonFrac: 3}
	target := age.TargetBytesForRate(0.5, 16, 1, meta.Width)
	enc, dec, err := age.NewEncoder(age.EncAGE, age.EncoderConfig{
		T: 16, D: 1, Format: meta, TargetBytes: target,
	})
	if err != nil {
		panic(err)
	}
	batch := age.Batch{
		Indices: []int{0, 5, 10},
		Values:  [][]float64{{0.5}, {-1.25}, {2}},
	}
	payload, err := enc.Encode(batch)
	if err != nil {
		panic(err)
	}
	decoded, err := dec.Decode(payload)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(payload) == target, decoded.Indices)
	// Output: true [0 5 10]
}

func ExampleNewServer() {
	// The server hands every accepted sensor connection to the handler,
	// which opens a session; Drain completes in-flight sessions before
	// Serve returns ErrServerClosed.
	received := make(chan []byte, 3)
	srv, err := age.NewServer(age.ServerConfig{
		Handler: age.IngestHandlerFuncs{
			OpenFunc: func(sensorID, delivered int) (age.IngestSession, error) {
				return &captureSession{total: 3, frames: received}, nil
			},
		},
	})
	if err != nil {
		panic(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	client := age.NewClient(age.ClientConfig{Addr: srv.Addr().String(), SensorID: 7})
	stats, err := client.Run(context.Background(), &sliceFrames{
		frames: [][]byte{[]byte("f0"), []byte("f1"), []byte("f2")},
	})
	if err != nil {
		panic(err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		panic(err)
	}
	fmt.Println(stats.FramesSent, len(received), errors.Is(<-done, age.ErrServerClosed))
	// Output: 3 3 true
}

func ExampleNewClient() {
	// Frames are sealed before they enter the client, so the ingest layer
	// never sees plaintext; the server-side session opens them.
	key := make([]byte, 32)
	sealer, err := age.NewSealer(age.ChaCha20, key)
	if err != nil {
		panic(err)
	}
	opener, err := age.NewSealer(age.ChaCha20, key)
	if err != nil {
		panic(err)
	}

	sealed := make(chan []byte, 2)
	srv, err := age.NewServer(age.ServerConfig{
		Handler: age.IngestHandlerFuncs{
			OpenFunc: func(sensorID, delivered int) (age.IngestSession, error) {
				return &captureSession{total: 2, frames: sealed}, nil
			},
		},
	})
	if err != nil {
		panic(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	go srv.Serve()
	defer srv.Close()

	var frames [][]byte
	for _, text := range []string{"hello", "sensor"} {
		msg, err := sealer.Seal([]byte(text))
		if err != nil {
			panic(err)
		}
		frames = append(frames, msg)
	}
	client := age.NewClient(age.ClientConfig{Addr: srv.Addr().String(), SensorID: 3})
	if _, err := client.Run(context.Background(), &sliceFrames{frames: frames}); err != nil {
		panic(err)
	}
	for i := 0; i < 2; i++ {
		payload, err := opener.Open(<-sealed)
		if err != nil {
			panic(err)
		}
		fmt.Println(string(payload))
	}
	// Output:
	// hello
	// sensor
}

func ExampleNewCluster() {
	// Three ingest nodes behind one gateway address: sensors speak the
	// ordinary client protocol and the gateway routes each one to a node by
	// consistent hash, migrating session state if a later reconnect lands
	// on a different node.
	received := make(chan []byte, 8)
	cl, err := age.NewCluster(age.ClusterConfig{
		Nodes: 3,
		Node: age.ClusterNodeSpec{Server: age.ServerConfig{
			Handler: age.IngestHandlerFuncs{
				OpenFunc: func(sensorID, delivered int) (age.IngestSession, error) {
					return &captureSession{total: 2, frames: received}, nil
				},
			},
		}},
	})
	if err != nil {
		panic(err)
	}
	if err := cl.Start("127.0.0.1:0"); err != nil {
		panic(err)
	}

	for id := 1; id <= 4; id++ {
		client := age.NewClient(age.ClientConfig{Addr: cl.Addr().String(), SensorID: id})
		if _, err := client.Run(context.Background(), &sliceFrames{
			frames: [][]byte{[]byte("a"), []byte("b")},
		}); err != nil {
			panic(err)
		}
	}

	stats := cl.Stats()
	if err := cl.Drain(context.Background()); err != nil {
		panic(err)
	}
	fmt.Println(len(received), stats.LocatorSize, len(stats.Nodes))
	// Output: 8 4 3
}

func ExampleNewClientFromOptions() {
	// The grouped options surface reads as policy; Config/Options convert
	// losslessly to and from the flat ClientConfig.
	opts := age.ClientOptions{
		Addr:     "127.0.0.1:4040",
		SensorID: 12,
		Dial:     age.DialOptions{Attempts: 4},
		Retry:    age.RetryOptions{ReconnectAttempts: 2},
	}
	cfg := opts.Config()
	back := cfg.Options()
	fmt.Println(cfg.SensorID, cfg.DialAttempts, back.Dial.Attempts, back.Retry.ReconnectAttempts)
	// Output: 12 4 4 2
}
