// Package age is the public API of this reproduction of "Protecting
// Adaptive Sampling from Information Leakage on Low-Power Sensors" (Kannan &
// Hoffmann, ASPLOS 2022).
//
// Adaptive sampling policies collect more measurements when a signal is
// volatile and fewer when it is calm. Under batched, periodic communication
// the resulting message sizes track the collection rate, so an attacker
// observing the encrypted link can infer sensed events from sizes alone.
// Adaptive Group Encoding (AGE) closes the side-channel: it is a drop-in
// lossy encoder between the sampler and the cipher that packs every batch
// into a fixed-length message, using measurement pruning, exponent-aware
// grouping, and per-group fixed-point quantization to keep the added error
// near zero.
//
// The package re-exports the building blocks a downstream user needs:
//
//   - encoders: NewAGEEncoder (the contribution), NewStandardEncoder,
//     NewPaddedEncoder, and the ablation variants;
//   - sampling policies: Uniform, Random, Linear, Deviation, and a
//     trainable Skip RNN, plus offline threshold fitting;
//   - the sensing workloads of the paper's Table 3;
//   - the encrypted link (ChaCha20 or AES-128-CBC sealing with framing);
//   - server-side reconstruction and error metrics;
//   - the message-size attacker and leakage statistics (NMI);
//   - the end-to-end simulator with MSP430/BLE energy accounting;
//   - the long-lived ingest server/client and the gateway-fronted
//     multi-node ingest cluster with session migration (NewCluster).
//
// See examples/quickstart for a five-minute tour.
package age

import (
	"context"
	"io"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/fixedpoint"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/reconstruct"
	"repro/internal/seccomm"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// ---- Sentinel errors ----

// The facade's sentinel errors. Every constructor and decoder wraps one of
// these (via %w) into a descriptive message, so callers branch with
// errors.Is while the error text keeps its diagnostic detail.
var (
	// ErrPayloadLength marks a decode attempt on a payload whose length
	// violates the encoder's wire contract.
	ErrPayloadLength = core.ErrPayloadLength
	// ErrTargetTooSmall marks an EncoderConfig whose TargetBytes cannot
	// hold even the encoder's fixed header.
	ErrTargetTooSmall = core.ErrTargetTooSmall
	// ErrUnknownEncoder marks an EncoderKind outside the six variants.
	ErrUnknownEncoder = core.ErrUnknownEncoder
	// ErrBadKey marks a cipher key whose length does not match the cipher.
	ErrBadKey = seccomm.ErrBadKey
	// ErrServerClosed marks use of an ingest Server after Close (or a stop
	// already in progress); it is also what Serve returns after a
	// deliberate shutdown, mirroring net/http's ErrServerClosed.
	ErrServerClosed = ingest.ErrClosed
)

// ---- Fixed-point formats and batches ----

// Format is a signed fixed-point representation: Width total bits of which
// NonFrac (including the sign bit) sit before the binary point.
type Format = fixedpoint.Format

// Batch is one communication window of collected measurements: the time
// indices the policy chose and the corresponding d-feature values.
type Batch = core.Batch

// EncoderConfig describes the sensing task an encoder serves: the batch
// length T, the feature count D, the native fixed-point Format, and — for
// fixed-size encoders — the target message size in bytes.
type EncoderConfig = core.Config

// Encoder serializes batches; fixed-size implementations always emit the
// configured number of bytes.
type Encoder = core.Encoder

// Decoder recovers batches from payloads.
type Decoder = core.Decoder

// NewAGEEncoder returns the Adaptive Group Encoding encoder/decoder (§4 of
// the paper): every batch encodes to exactly cfg.TargetBytes. The returned
// encoder also exposes EncodeRaw, an integer-only path matching the paper's
// MCU implementation byte for byte.
func NewAGEEncoder(cfg EncoderConfig) (*core.AGE, error) { return core.NewAGE(cfg) }

// NewStandardEncoder returns the baseline variable-length encoder whose
// message sizes leak the collection rate.
func NewStandardEncoder(cfg EncoderConfig) (*core.Standard, error) { return core.NewStandard(cfg) }

// NewPaddedEncoder returns the BuFLO-style defense: Standard encoding padded
// to the largest possible batch.
func NewPaddedEncoder(cfg EncoderConfig) (*core.Padded, error) { return core.NewPadded(cfg) }

// NewSingleEncoder, NewUnshiftedEncoder, and NewPrunedEncoder are the §5.6
// ablation variants of AGE.
func NewSingleEncoder(cfg EncoderConfig) (*core.Single, error)       { return core.NewSingle(cfg) }
func NewUnshiftedEncoder(cfg EncoderConfig) (*core.Unshifted, error) { return core.NewUnshifted(cfg) }
func NewPrunedEncoder(cfg EncoderConfig) (*core.Pruned, error)       { return core.NewPruned(cfg) }

// NewEncoder is the unified factory over all six encoder variants: one call
// site builds the kind's matched encoder/decoder pair. cfg.TargetBytes is
// honored as given for the fixed-size kinds (every kind but EncStandard);
// derive it the way the paper does with TargetBytesForRate, ReduceTarget,
// and RoundTargetToCipher. An unknown kind reports ErrUnknownEncoder and an
// unachievable target reports ErrTargetTooSmall, both matchable with
// errors.Is.
func NewEncoder(kind EncoderKind, cfg EncoderConfig) (Encoder, Decoder, error) {
	return core.NewEncoder(kind, cfg)
}

// EncoderKinds lists the six encoder kinds, for sweeps over variants.
func EncoderKinds() []EncoderKind { return core.Kinds() }

// TargetBytesForRate returns the paper's M_B: the Standard payload size at a
// given collection rate, the natural fixed target for that budget.
func TargetBytesForRate(rate float64, T, d, width int) int {
	return core.TargetBytesForRate(rate, T, d, width)
}

// ReduceTarget applies AGE's §4.5 communication reduction, which pays for
// the encoder's compute energy by shrinking the radio payload.
func ReduceTarget(target int) int { return core.ReduceTarget(target) }

// ---- Sampling policies ----

// Policy decides online which time steps of a sequence to collect.
type Policy = policy.Policy

// NewUniformPolicy collects an evenly spaced, data-independent fraction of
// elements (no leakage, but no adaptivity).
func NewUniformPolicy(rate float64) Policy { return policy.NewUniform(rate) }

// NewRandomPolicy collects a random fixed-count subset.
func NewRandomPolicy(rate float64) Policy { return policy.NewRandom(rate) }

// NewLinearPolicy returns the Linear adaptive policy with a fitted
// threshold (Chatterjea & Havinga).
func NewLinearPolicy(threshold float64) Policy { return policy.NewLinear(threshold) }

// NewDeviationPolicy returns the Deviation adaptive policy with a fitted
// threshold (LiteSense).
func NewDeviationPolicy(threshold float64) Policy { return policy.NewDeviation(threshold) }

// PolicyKind names a threshold-based adaptive policy for fitting.
type PolicyKind = policy.AdaptiveKind

// The fit-able adaptive policies.
const (
	LinearPolicy    = policy.KindLinear
	DeviationPolicy = policy.KindDeviation
)

// FitResult reports a fitted threshold and its achieved collection rate.
type FitResult = policy.FitResult

// FitPolicy bisects for the threshold at which the policy's mean collection
// rate over the training sequences matches targetRate (the paper's offline
// training step).
func FitPolicy(kind PolicyKind, train [][][]float64, targetRate float64) (FitResult, error) {
	return policy.Fit(kind, train, targetRate)
}

// SkipRNNModel is a trained neural sampling policy (§5.5).
type SkipRNNModel = policy.SkipRNNModel

// SkipRNNTrainConfig controls Skip RNN training.
type SkipRNNTrainConfig = policy.SkipRNNTrainConfig

// TrainSkipRNN trains the GRU predictor and sampling gate on the training
// sequences; use FitBias on the result to target a budget.
func TrainSkipRNN(train [][][]float64, cfg SkipRNNTrainConfig) (*SkipRNNModel, error) {
	return policy.TrainSkipRNN(train, cfg)
}

// DefaultSkipRNNTrainConfig returns a training setup that converges in
// seconds on the bundled workloads.
func DefaultSkipRNNTrainConfig() SkipRNNTrainConfig { return policy.DefaultSkipRNNTrainConfig() }

// ---- Datasets ----

// Dataset is a labeled collection of sensing sequences.
type Dataset = dataset.Dataset

// DatasetMeta mirrors one row of the paper's Table 3.
type DatasetMeta = dataset.Meta

// DatasetOptions controls dataset generation (seed and optional
// truncation).
type DatasetOptions = dataset.Options

// DatasetNames lists the nine evaluation workloads.
func DatasetNames() []string { return dataset.Names() }

// ReadDatasetCSV parses a dataset exported by Dataset.WriteCSV (or authored
// by hand: a header row "name,seqLen,numFeatures,numLabels,width,nonFrac"
// followed by one "label,v..." row per sequence), letting users run AGE on
// their own recorded data.
func ReadDatasetCSV(r io.Reader) (*Dataset, error) { return dataset.ReadCSV(r) }

// LoadDataset generates one of the nine workloads.
func LoadDataset(name string, opt DatasetOptions) (*Dataset, error) { return dataset.Load(name, opt) }

// EventNames returns human-readable event labels for a dataset.
func EventNames(name string) []string { return dataset.LabelNames(name) }

// ---- Encrypted link ----

// CipherKind selects the link cipher.
type CipherKind = seccomm.CipherKind

// The two supported ciphers.
const (
	ChaCha20 = seccomm.ChaCha20Stream
	AES128   = seccomm.AES128Block
)

// Sealer encrypts payloads into wire messages.
type Sealer = seccomm.Sealer

// NewSealer builds a sealer (32-byte key for ChaCha20, 16 for AES-128).
func NewSealer(kind CipherKind, key []byte) (Sealer, error) { return seccomm.NewSealer(kind, key) }

// RoundTargetToCipher adapts a fixed target size to the cipher (§4.5):
// unchanged for stream ciphers, block-filling for AES.
func RoundTargetToCipher(target int, kind CipherKind) int {
	return seccomm.RoundTargetToCipher(target, kind)
}

// ---- Reconstruction ----

// Reconstruct rebuilds a full T-step sequence from collected measurements by
// linear interpolation, the server side of the pipeline.
func Reconstruct(indices []int, values [][]float64, T, d int) ([][]float64, error) {
	return reconstruct.Linear(indices, values, T, d)
}

// MAE returns the mean absolute error between a reconstruction and the
// ground truth.
func MAE(recon, truth [][]float64) (float64, error) { return reconstruct.MAE(recon, truth) }

// ---- Leakage analysis and the attack ----

// NMI returns the normalized mutual information between event labels and
// observed message sizes (0 = no leakage, 1 = sizes identify events).
func NMI(labels, sizes []int) float64 { return stats.NMI(labels, sizes) }

// AttackSample is one adversary observation: summary features of a window
// of same-event message sizes.
type AttackSample = attack.Sample

// BuildAttackSamples assembles attack observations from per-event observed
// sizes, as in §5.4.
func BuildAttackSamples(sizesByLabel map[int][]int, n int, rng *rand.Rand) ([]AttackSample, error) {
	return attack.BuildSamples(sizesByLabel, n, rng)
}

// AttackResult reports a cross-validated attack.
type AttackResult = attack.CVResult

// RunAttack trains and scores the AdaBoost message-size attacker with
// stratified 5-fold cross-validation.
func RunAttack(samples []AttackSample, numClasses int, rng *rand.Rand) (AttackResult, error) {
	return attack.CrossValidate(samples, numClasses, 5, attack.DefaultAdaBoostConfig(), rng)
}

// ---- End-to-end simulation ----

// EncoderKind names an encoder in simulator runs.
type EncoderKind = simulator.EncoderKind

// The evaluated encoders.
const (
	EncStandard  = simulator.EncStandard
	EncPadded    = simulator.EncPadded
	EncAGE       = simulator.EncAGE
	EncSingle    = simulator.EncSingle
	EncUnshifted = simulator.EncUnshifted
	EncPruned    = simulator.EncPruned
)

// SimulationConfig configures an end-to-end run.
type SimulationConfig = simulator.RunConfig

// SimulationResult is a run's outcome: error, energy, violations, and the
// attacker-observable message sizes.
type SimulationResult = simulator.RunResult

// SocketResult is a socket-mode run's outcome: server-side error plus the
// attacker-observable message sizes.
type SocketResult = simulator.SocketResult

// Simulate runs the full pipeline in-process under an energy budget.
//
// Deprecated: Use SimulateContext, which takes a caller context so a long
// sweep can be cancelled between sequences. Simulate remains as a thin
// wrapper over SimulateContext with context.Background() and will not be
// removed.
func Simulate(cfg SimulationConfig) (*SimulationResult, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext is Simulate under a caller context, mirroring
// SimulateFleetContext: cancellation is honored between sequences, and the
// partial result folded so far is returned alongside the cancellation
// error.
func SimulateContext(ctx context.Context, cfg SimulationConfig) (*SimulationResult, error) {
	return simulator.RunContext(ctx, cfg)
}

// SimulateOverSocket runs the pipeline through a real TCP loopback
// connection (sensor and server as separate actors).
//
// Deprecated: Use SimulateOverSocketContext, which takes a caller context
// that closes the listener and both live connections on cancellation.
// SimulateOverSocket remains as a thin wrapper over it with
// context.Background() and will not be removed.
func SimulateOverSocket(cfg SimulationConfig) (*SocketResult, error) {
	return SimulateOverSocketContext(context.Background(), cfg)
}

// SimulateOverSocketContext is SimulateOverSocket under a caller context,
// mirroring SimulateFleetContext: cancellation closes the listener and both
// live connections and reports the cancellation as the run's error.
func SimulateOverSocketContext(ctx context.Context, cfg SimulationConfig) (*SocketResult, error) {
	return simulator.RunOverSocketContext(ctx, cfg)
}

// FleetConfig drives a multi-sensor deployment: the dataset's sequences are
// partitioned across concurrent sensors, each with its own key and TCP
// connection to the server. Transport knobs (DialTimeout, DialAttempts,
// DialBackoff, IOTimeout, WriteAttempts, Timeout) bound every network
// operation; zero values select generous defaults.
type FleetConfig = simulator.FleetConfig

// FleetResult aggregates a fleet run: per-sensor error plus the pooled
// eavesdropper view. Sensors holds one FleetSensorStatus per sensor, so a
// dead sensor degrades the result instead of aborting the run.
type FleetResult = simulator.FleetResult

// FleetSensorStatus records one sensor's delivery outcome: sequences
// assigned vs delivered, dial attempts, and any sensor- or server-side error.
type FleetSensorStatus = simulator.FleetSensorStatus

// FleetFaults injects transport failures into a fleet run (sensors that
// never dial, die or stall mid-stream, or whose link the server drops) for
// resilience testing.
type FleetFaults = simulator.FleetFaults

// SimulateFleet runs a concurrent multi-sensor deployment (FarmBeats fields,
// ZebraNet herds) against one server. Per-sensor failures land in
// FleetResult.Sensors; it returns an error only when setup fails, every
// sensor fails, or the run is cancelled.
//
// Deprecated: Use SimulateFleetContext, which takes a caller context that
// closes the listener and every live connection on cancellation and returns
// the partial FleetResult folded so far. SimulateFleet remains as a thin
// wrapper over it with context.Background() and will not be removed.
func SimulateFleet(cfg FleetConfig) (*FleetResult, error) {
	return SimulateFleetContext(context.Background(), cfg)
}

// SimulateFleetContext is SimulateFleet under a caller context: cancellation
// closes the listener and every live connection, and the partial FleetResult
// is returned alongside the cancellation error.
func SimulateFleetContext(ctx context.Context, cfg FleetConfig) (*FleetResult, error) {
	return simulator.RunFleetContext(ctx, cfg)
}

// ---- Long-lived ingest server and client ----

// Server is the long-lived sharded ingest server the fleet simulator runs
// on: accepted connections are spread across accept loops and per-shard
// worker pools with bounded queues, overload is answered with a typed
// reject instead of an unbounded goroutine, and sessions keyed by sensor ID
// support resume after a dropped link. Lifecycle mirrors net/http.Server:
// Listen, then Serve (blocking), then Drain or Close; Serve returns
// ErrServerClosed after a deliberate stop.
type Server = ingest.Server

// ServerConfig sizes a Server: the session Handler, shard and worker
// counts, per-shard queue depth, I/O deadlines, and an optional metrics
// registry for the ingest.* instrument family. Zero values select sensible
// defaults.
type ServerConfig = ingest.ServerConfig

// NewServer validates cfg and returns an idle Server; call Listen then
// Serve to start it.
func NewServer(cfg ServerConfig) (*Server, error) { return ingest.NewServer(cfg) }

// Client streams one sensor's sealed frames to an ingest Server, redialing
// and resuming from the server's delivered index on transport failures and
// backing off on typed rejects.
type Client = ingest.Client

// ClientConfig configures a Client: the server address, the sensor ID sent
// in the hello, dial/write/reconnect/reject budgets, and an optional
// metrics registry for the ingest.client.* instrument family. Zero values
// select the fleet simulator's historical defaults.
type ClientConfig = ingest.ClientConfig

// ClientStats counts one Run's transport work, for callers that fold
// delivery accounting into their own reporting.
type ClientStats = ingest.ClientStats

// FrameSource produces the sealed frames one Client run streams; Seek
// positions it at the server's resume index after a reconnect.
type FrameSource = ingest.FrameSource

// NewClient returns a Client for cfg (defaults applied).
func NewClient(cfg ClientConfig) *Client { return ingest.NewClient(cfg) }

// ClientOptions is the grouped form of ClientConfig: the same fields
// organized by concern (Dial, Write, Retry, Pace) so call sites read as
// policy rather than a flat knob list. Config and Options convert between
// the two surfaces losslessly; existing ClientConfig callers need not move.
type ClientOptions = ingest.ClientOptions

// DialOptions groups a client's connection-establishment policy: per-attempt
// timeout, attempt budget, and the jittered backoff between attempts.
type DialOptions = ingest.DialOptions

// WriteOptions groups a client's frame-write policy: the per-frame I/O
// deadline, the retry budget for short writes, and the batching factor.
type WriteOptions = ingest.WriteOptions

// RetryOptions groups a client's recovery budgets: reconnect-and-resume
// attempts after a dropped link and retry attempts/backoff for typed
// transient rejects.
type RetryOptions = ingest.RetryOptions

// PaceOptions is the release-pacing discipline inside ClientOptions; it is
// the same type as PacerConfig under the grouped naming convention.
type PaceOptions = ingest.PaceOptions

// NewClientFromOptions is NewClient for the grouped options surface.
func NewClientFromOptions(opts ClientOptions) *Client { return ingest.NewClientFromOptions(opts) }

// IngestHandler is the server-side application: it opens a Session per
// accepted sensor connection and hears about rejected and unattributable
// ones.
type IngestHandler = ingest.Handler

// IngestHandlerFuncs adapts free functions to an IngestHandler.
type IngestHandlerFuncs = ingest.HandlerFuncs

// IngestSession consumes one sensor connection's frames.
type IngestSession = ingest.Session

// IngestStatus is the typed accept/reject code the server sends in every
// hello and final ack.
type IngestStatus = ingest.Status

// The wire statuses. Transient() reports which rejects a client may retry.
const (
	StatusAccept     = ingest.StatusAccept
	StatusOverloaded = ingest.StatusOverloaded
	StatusDuplicate  = ingest.StatusDuplicate
	StatusDraining   = ingest.StatusDraining
	StatusRefused    = ingest.StatusRefused
)

// RejectedError is the error a Client run reports when the server answers
// its hello with a reject status.
type RejectedError = ingest.RejectedError

// ProtocolError reports a malformed wire value from the peer (an unknown
// ack status or frame marker); it is never retried.
type ProtocolError = ingest.ProtocolError

// ---- Multi-node ingest cluster ----

// Cluster is a gateway fronting N in-process ingest nodes. Sensors connect
// to the gateway's single address and speak the unmodified ingest wire
// protocol; the gateway reads each connection's hello, routes the sensor to
// a node by consistent hash (bounded-load variant) with affinity to
// wherever the sensor's session already lives, and splices bytes for the
// rest of the connection. Sessions migrate between nodes on resume, drain,
// and rebalance, so a sensor that reconnects after a node change continues
// from its delivered index. Lifecycle: NewCluster, Start, then Drain or
// Close; AddNode/DrainNode/KillNode reshape the node set live.
type Cluster = cluster.Cluster

// ClusterConfig sizes a Cluster: node count (or a per-node spec builder),
// consistent-hash geometry, the gateway's connection cap and I/O deadline,
// and the shared session TTL/clock every node registry and the gateway's
// locator map agree on. Zero values select sensible defaults.
type ClusterConfig = cluster.Config

// ClusterNodeSpec is one node's build recipe: its ingest ServerConfig plus
// an optional CursorStore migrations carry staged cursors between.
type ClusterNodeSpec = cluster.NodeSpec

// CursorStore is the staging-tier half of session migration: export
// captures and removes a sensor's staged cursor, import resumes it on the
// receiving node. *staging.Stage and the projection engine implement it.
type CursorStore = cluster.CursorStore

// ClusterStats is a point-in-time snapshot of the cluster's routing state.
type ClusterStats = cluster.Stats

// ClusterNodeInfo describes one node in a ClusterStats snapshot.
type ClusterNodeInfo = cluster.NodeInfo

// ErrClusterClosed marks use of a Cluster after Close or Drain.
var ErrClusterClosed = cluster.ErrClosed

// NewCluster validates cfg and returns an idle Cluster; call Start to bring
// the nodes up and open the gateway listener.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// ---- Frame-release pacing (timing side-channel defense) ----

// PaceMode selects a Client's frame-release discipline. AGE's fixed-size
// frames close the size channel; PaceConstant/PaceJitter close the timing
// channel too, releasing one wire frame per (optionally jittered) interval
// and covering empty slots with sealed dummy frames.
type PaceMode = ingest.PaceMode

// The release disciplines.
const (
	PaceOff      = ingest.PaceOff
	PaceLive     = ingest.PaceLive
	PaceConstant = ingest.PaceConstant
	PaceJitter   = ingest.PaceJitter
)

// PacerConfig configures the client-side pacer (ClientConfig.Pacer): the
// mode, release interval, jitter fraction, schedule seed, and the sealed
// dummy-frame generator.
type PacerConfig = ingest.PacerConfig

// ParsePaceMode parses a mode name ("off", "live", "constant", "jitter").
func ParsePaceMode(s string) (PaceMode, error) { return ingest.ParsePaceMode(s) }

// TimedFrameSource is a FrameSource with a data-driven availability
// schedule; pacing modes other than PaceOff consult it to decide when each
// frame "happened".
type TimedFrameSource = ingest.TimedSource

// ErrDummyFrame is returned by an IngestSession's Frame to report a pacer
// dummy: the server drops the frame without advancing the sensor's
// delivered index.
var ErrDummyFrame = ingest.ErrDummyFrame

// MarkFrameReal, MarkFrameDummy, and UnmarkFrame implement the pacer's
// in-payload marker convention: sources seal marked payloads, receiving
// sessions unmark after unsealing and drop dummies with ErrDummyFrame.
func MarkFrameReal(payload []byte) []byte { return ingest.MarkReal(payload) }
func MarkFrameDummy(filler []byte) []byte { return ingest.MarkDummy(filler) }
func UnmarkFrame(payload []byte) ([]byte, bool, error) {
	return ingest.Unmark(payload)
}

// FrameError attributes a server-side session failure to the frame index
// being read when it happened.
type FrameError = ingest.FrameError

// Terminal marks err as non-resumable: a Client run that sees it stops
// without spending its reconnect budget. FrameSource implementations use it
// to distinguish "my data is broken" from "the link is broken".
func Terminal(err error) error { return ingest.Terminal(err) }

// IsTerminal reports whether err (or anything it wraps) was marked
// Terminal.
func IsTerminal(err error) bool { return ingest.IsTerminal(err) }

// ---- Metrics ----

// MetricsRegistry collects the pipeline's observation-only instruments
// (codec latency, transport counters, the ingest.* server family). Pass one
// in SimulationConfig, FleetConfig, ServerConfig, or ClientConfig and read
// it back with Snapshot. A nil registry disables collection at zero cost.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry's instruments.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// EnergyModel holds the MSP430 FR5994 + HM-10 BLE trace constants.
type EnergyModel = energy.Model

// DefaultEnergyModel returns the constants derived from the paper.
func DefaultEnergyModel() EnergyModel { return energy.Default() }
