package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// must returns an unwrapper for (mJ, error) pairs the test expects to
// succeed.
func must(t *testing.T) func(float64, error) float64 {
	return func(v float64, err error) float64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
}

func TestDefaultAnchoredToPaper(t *testing.T) {
	m, mj := Default(), must(t)
	// §2.1: an HM-10 consumes about 25 mJ to connect and send a 40-byte
	// message.
	if got := mj(m.TransmitMJ(40)); math.Abs(got-25) > 0.2 {
		t.Errorf("40-byte transmit = %g mJ, want about 25", got)
	}
	// §5.8: cutting 30 bytes saves about 0.9 mJ.
	if got := mj(m.TransmitMJ(640)) - mj(m.TransmitMJ(610)); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("30-byte saving = %g mJ, want 0.9", got)
	}
	// §5.8: encoding a full Activity sequence (300 values): AGE about
	// 0.154 mJ (before the safety factor), direct write about 0.016 mJ.
	if got := m.EncodeAGEUJPerValue * 300 / 1000; math.Abs(got-0.154) > 1e-9 {
		t.Errorf("AGE encode = %g mJ, want 0.154", got)
	}
	if got := mj(m.EncodeMJ(300, EncodeStandard)); math.Abs(got-0.016) > 1e-9 {
		t.Errorf("standard encode = %g mJ, want 0.016", got)
	}
	// The simulator conservatively multiplies AGE's compute by 4 (§5.1).
	if got := mj(m.EncodeMJ(300, EncodeAGE)); math.Abs(got-0.154*4) > 1e-9 {
		t.Errorf("scaled AGE encode = %g mJ, want %g", got, 0.154*4)
	}
	// Padded encoders pay the direct-write compute cost.
	if got := mj(m.EncodeMJ(300, EncodePadded)); math.Abs(got-0.016) > 1e-9 {
		t.Errorf("padded encode = %g mJ, want 0.016", got)
	}
}

// TestModelValidation is the table the issue asks for: every negative count
// and every unknown encoder kind must come back as a descriptive error, and
// the valid boundary cases right next to them must not. All the expected
// values are the Default() §2.1/§5.8 constants.
func TestModelValidation(t *testing.T) {
	m := Default()
	cases := []struct {
		name    string
		call    func() (float64, error)
		wantMJ  float64 // checked only when wantErr is ""
		wantErr string
	}{
		{"encode negative count", func() (float64, error) { return m.EncodeMJ(-1, EncodeAGE) }, 0, "non-negative"},
		{"encode unknown kind", func() (float64, error) { return m.EncodeMJ(300, EncoderKind(42)) }, 0, "unknown encoder kind EncoderKind(42)"},
		{"encode zero values", func() (float64, error) { return m.EncodeMJ(0, EncodeAGE) }, 0, ""},
		{"encode paper anchor", func() (float64, error) { return m.EncodeMJ(300, EncodeStandard) }, 0.016, ""},
		{"transmit negative bytes", func() (float64, error) { return m.TransmitMJ(-40) }, 0, "non-negative"},
		{"transmit empty payload costs the connect", func() (float64, error) { return m.TransmitMJ(0) }, 23.8, ""},
		{"collect negative count", func() (float64, error) { return m.CollectMJ(-3) }, 0, "non-negative"},
		{"collect paper anchor", func() (float64, error) { return m.CollectMJ(10) }, 1.1, ""},
		{"sequence negative collected", func() (float64, error) { return m.SequenceMJ(-1, 6, 100, EncodeAGE) }, 0, "non-negative"},
		{"sequence negative payload", func() (float64, error) { return m.SequenceMJ(10, 6, -100, EncodeAGE) }, 0, "non-negative"},
		{"sequence zero features", func() (float64, error) { return m.SequenceMJ(10, 0, 100, EncodeAGE) }, 0, "features"},
		{"sequence unknown kind", func() (float64, error) { return m.SequenceMJ(10, 6, 100, EncoderKind(-7)) }, 0, "unknown encoder kind"},
		{"uniform zero steps", func() (float64, error) { return m.UniformSequenceMJ(0, 6, 0.5, func(k int) int { return k }) }, 0, "steps"},
		{"uniform NaN rate", func() (float64, error) { return m.UniformSequenceMJ(50, 6, math.NaN(), func(k int) int { return k }) }, 0, "NaN"},
		{"uniform nil payload func", func() (float64, error) { return m.UniformSequenceMJ(50, 6, 0.5, nil) }, 0, "payload size function"},
		{"uniform negative payload", func() (float64, error) { return m.UniformSequenceMJ(50, 6, 0.5, func(k int) int { return -k }) }, 0, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.call()
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("invalid input accepted, returned %g mJ", got)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Errorf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.wantMJ) > 1e-9 {
				t.Errorf("got %g mJ, want %g", got, tc.wantMJ)
			}
		})
	}
}

func TestEncoderKindString(t *testing.T) {
	cases := []struct {
		kind EncoderKind
		want string
	}{
		{EncodeStandard, "standard"},
		{EncodeAGE, "age"},
		{EncodePadded, "padded"},
		{EncoderKind(9), "EncoderKind(9)"},
	}
	for _, tc := range cases {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", int(tc.kind), got, tc.want)
		}
		if valid := tc.kind.Valid(); valid != (tc.want != "EncoderKind(9)") {
			t.Errorf("Valid(%d) = %v", int(tc.kind), valid)
		}
	}
}

func TestSequenceMJComposition(t *testing.T) {
	m, mj := Default(), must(t)
	got := mj(m.SequenceMJ(10, 3, 100, EncodeStandard))
	want := m.BaselineMJ + mj(m.CollectMJ(10)) + mj(m.EncodeMJ(30, EncodeStandard)) + mj(m.TransmitMJ(100))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SequenceMJ = %g, want %g", got, want)
	}
}

func TestSequenceMJMonotone(t *testing.T) {
	m := Default()
	prop := func(k1, k2, b1, b2 uint8) bool {
		ka, kb := int(k1), int(k2)
		ba, bb := int(b1), int(b2)
		if ka > kb {
			ka, kb = kb, ka
		}
		if ba > bb {
			ba, bb = bb, ba
		}
		lo, err1 := m.SequenceMJ(ka, 2, ba, EncodeStandard)
		hi, err2 := m.SequenceMJ(kb, 2, bb, EncodeStandard)
		return err1 == nil && err2 == nil && lo <= hi+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMeter(t *testing.T) {
	mt := NewMeter(100)
	if !mt.Charge(60) {
		t.Error("first charge flagged as exceeded")
	}
	if mt.RemainingMJ() != 40 {
		t.Errorf("remaining = %g", mt.RemainingMJ())
	}
	if mt.Charge(50) {
		t.Error("overcharge not flagged")
	}
	if !mt.Exceeded() {
		t.Error("meter not exceeded after overcharge")
	}
	if mt.RemainingMJ() != 0 {
		t.Errorf("remaining after exceed = %g, want 0", mt.RemainingMJ())
	}
}

func TestMeterBoundaryExact(t *testing.T) {
	mt := NewMeter(10)
	mt.Charge(10)
	if mt.Exceeded() {
		t.Error("exact budget counted as exceeded")
	}
}

func TestCollectCount(t *testing.T) {
	cases := []struct {
		T    int
		rate float64
		want int
	}{
		{50, 0.7, 35},
		{50, 1.0, 50},
		{50, 0.0, 1},  // floor at one
		{50, 2.0, 50}, // cap at T
		{23, 0.3, 6},
		{25, 0.7, 17}, // the Figure 1 example
	}
	for _, c := range cases {
		if got := CollectCount(c.T, c.rate); got != c.want {
			t.Errorf("CollectCount(%d, %g) = %d, want %d", c.T, c.rate, got, c.want)
		}
	}
}

func TestUniformSequenceMJUsesPayload(t *testing.T) {
	m, mj := Default(), must(t)
	payload := func(k int) int { return 10 * k }
	got := mj(m.UniformSequenceMJ(50, 2, 0.5, payload))
	want := mj(m.SequenceMJ(25, 2, 250, EncodeStandard))
	if got != want {
		t.Errorf("UniformSequenceMJ = %g, want %g", got, want)
	}
}

func TestBudgetGrid(t *testing.T) {
	m := Default()
	payload := func(k int) int { return 2 * k }
	grid, err := m.BudgetGrid(50, 2, 100, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 8 {
		t.Fatalf("grid size %d", len(grid))
	}
	for i, b := range grid {
		if b.Rate != float64(i+3)/10 {
			t.Errorf("budget %d rate = %g", i, b.Rate)
		}
		if math.Abs(b.TotalMJ-b.PerSeqMJ*100) > 1e-9 {
			t.Errorf("budget %d total inconsistent", i)
		}
		if i > 0 && grid[i].PerSeqMJ <= grid[i-1].PerSeqMJ {
			t.Errorf("budgets not increasing at %d", i)
		}
	}
	if _, err := m.BudgetGrid(50, 2, 0, payload); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := m.BudgetGrid(0, 2, 100, payload); err == nil {
		t.Error("zero-step sequences accepted")
	}
}

func BenchmarkSequenceMJ(b *testing.B) {
	m := Default()
	for i := 0; i < b.N; i++ {
		_, _ = m.SequenceMJ(35, 6, 640, EncodeAGE)
	}
}
