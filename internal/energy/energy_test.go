package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultAnchoredToPaper(t *testing.T) {
	m := Default()
	// §2.1: an HM-10 consumes about 25 mJ to connect and send a 40-byte
	// message.
	if got := m.TransmitMJ(40); math.Abs(got-25) > 0.2 {
		t.Errorf("40-byte transmit = %g mJ, want about 25", got)
	}
	// §5.8: cutting 30 bytes saves about 0.9 mJ.
	if got := m.TransmitMJ(640) - m.TransmitMJ(610); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("30-byte saving = %g mJ, want 0.9", got)
	}
	// §5.8: encoding a full Activity sequence (300 values): AGE about
	// 0.154 mJ (before the safety factor), direct write about 0.016 mJ.
	if got := m.EncodeAGEUJPerValue * 300 / 1000; math.Abs(got-0.154) > 1e-9 {
		t.Errorf("AGE encode = %g mJ, want 0.154", got)
	}
	if got := m.EncodeMJ(300, EncodeStandard); math.Abs(got-0.016) > 1e-9 {
		t.Errorf("standard encode = %g mJ, want 0.016", got)
	}
	// The simulator conservatively multiplies AGE's compute by 4 (§5.1).
	if got := m.EncodeMJ(300, EncodeAGE); math.Abs(got-0.154*4) > 1e-9 {
		t.Errorf("scaled AGE encode = %g mJ, want %g", got, 0.154*4)
	}
}

func TestSequenceMJComposition(t *testing.T) {
	m := Default()
	got := m.SequenceMJ(10, 3, 100, EncodeStandard)
	want := m.BaselineMJ + m.CollectMJ(10) + m.EncodeMJ(30, EncodeStandard) + m.TransmitMJ(100)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SequenceMJ = %g, want %g", got, want)
	}
}

func TestSequenceMJMonotone(t *testing.T) {
	m := Default()
	prop := func(k1, k2, b1, b2 uint8) bool {
		ka, kb := int(k1), int(k2)
		ba, bb := int(b1), int(b2)
		if ka > kb {
			ka, kb = kb, ka
		}
		if ba > bb {
			ba, bb = bb, ba
		}
		return m.SequenceMJ(ka, 2, ba, EncodeStandard) <= m.SequenceMJ(kb, 2, bb, EncodeStandard)+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMeter(t *testing.T) {
	mt := NewMeter(100)
	if !mt.Charge(60) {
		t.Error("first charge flagged as exceeded")
	}
	if mt.RemainingMJ() != 40 {
		t.Errorf("remaining = %g", mt.RemainingMJ())
	}
	if mt.Charge(50) {
		t.Error("overcharge not flagged")
	}
	if !mt.Exceeded() {
		t.Error("meter not exceeded after overcharge")
	}
	if mt.RemainingMJ() != 0 {
		t.Errorf("remaining after exceed = %g, want 0", mt.RemainingMJ())
	}
}

func TestMeterBoundaryExact(t *testing.T) {
	mt := NewMeter(10)
	mt.Charge(10)
	if mt.Exceeded() {
		t.Error("exact budget counted as exceeded")
	}
}

func TestCollectCount(t *testing.T) {
	cases := []struct {
		T    int
		rate float64
		want int
	}{
		{50, 0.7, 35},
		{50, 1.0, 50},
		{50, 0.0, 1},  // floor at one
		{50, 2.0, 50}, // cap at T
		{23, 0.3, 6},
		{25, 0.7, 17}, // the Figure 1 example
	}
	for _, c := range cases {
		if got := CollectCount(c.T, c.rate); got != c.want {
			t.Errorf("CollectCount(%d, %g) = %d, want %d", c.T, c.rate, got, c.want)
		}
	}
}

func TestUniformSequenceMJUsesPayload(t *testing.T) {
	m := Default()
	payload := func(k int) int { return 10 * k }
	got := m.UniformSequenceMJ(50, 2, 0.5, payload)
	want := m.SequenceMJ(25, 2, 250, EncodeStandard)
	if got != want {
		t.Errorf("UniformSequenceMJ = %g, want %g", got, want)
	}
}

func TestBudgetGrid(t *testing.T) {
	m := Default()
	payload := func(k int) int { return 2 * k }
	grid := m.BudgetGrid(50, 2, 100, payload)
	if len(grid) != 8 {
		t.Fatalf("grid size %d", len(grid))
	}
	for i, b := range grid {
		if b.Rate != float64(i+3)/10 {
			t.Errorf("budget %d rate = %g", i, b.Rate)
		}
		if math.Abs(b.TotalMJ-b.PerSeqMJ*100) > 1e-9 {
			t.Errorf("budget %d total inconsistent", i)
		}
		if i > 0 && grid[i].PerSeqMJ <= grid[i-1].PerSeqMJ {
			t.Errorf("budgets not increasing at %d", i)
		}
	}
}

func BenchmarkSequenceMJ(b *testing.B) {
	m := Default()
	for i := 0; i < b.N; i++ {
		_ = m.SequenceMJ(35, 6, 640, EncodeAGE)
	}
}
