// Package energy models the power consumption of the paper's sensor
// platform: a TI MSP430 FR5994 MCU with an HM-10 Bluetooth Low Energy radio
// (§2.1, §5.1). The paper's own simulator "tracks energy using traces from a
// TI MSP430"; this package plays the same role, with constants anchored to
// the figures the paper reports:
//
//   - an HM-10 radio consumes about 25 mJ to connect and send a 40-byte
//     message (§2.1), and cutting a message by 30 bytes saves about 0.9 mJ
//     (§5.8) — i.e. roughly 0.03 mJ per payload byte over a ~23.8 mJ
//     connection cost;
//   - the MCU draws about 0.4 mW per clock MHz (§2.1);
//   - AGE encoding a full Activity sequence costs about 0.154 mJ versus
//     0.016 mJ for a direct buffer write (§5.8).
//
// Budgets follow §5.1: the budget for a collection fraction p is the total
// energy a Uniform sampler would spend collecting p of all elements.
package energy

import (
	"fmt"
	"math"
)

// EncoderKind identifies how a batch is encoded, which determines the
// MCU-side computation energy.
type EncoderKind int

const (
	// EncodeStandard writes values directly into the output buffer.
	EncodeStandard EncoderKind = iota
	// EncodeAGE runs the full AGE pipeline (prune, group, quantize).
	EncodeAGE
	// EncodePadded writes directly, then pads; compute cost is standard.
	EncodePadded
)

// Valid reports whether k names a known encoder class.
func (k EncoderKind) Valid() bool {
	return k == EncodeStandard || k == EncodeAGE || k == EncodePadded
}

// String names the encoder class for error messages and reports.
func (k EncoderKind) String() string {
	switch k {
	case EncodeStandard:
		return "standard"
	case EncodeAGE:
		return "age"
	case EncodePadded:
		return "padded"
	}
	return fmt.Sprintf("EncoderKind(%d)", int(k))
}

// Model holds the energy trace constants, all in millijoules unless noted.
type Model struct {
	// RadioConnectMJ is the fixed cost of waking the radio and
	// establishing a connection for one batched transmission.
	RadioConnectMJ float64
	// PerByteMJ is the marginal cost of one transmitted payload byte.
	PerByteMJ float64
	// PerSampleMJ is the cost of capturing one measurement (sensor
	// activation + ADC + FRAM write).
	PerSampleMJ float64
	// BaselineMJ is the per-sequence MCU active-mode cost excluding
	// encoding (policy bookkeeping, timers).
	BaselineMJ float64
	// EncodeStandardUJPerValue is the direct-write encode cost per value,
	// in microjoules.
	EncodeStandardUJPerValue float64
	// EncodeAGEUJPerValue is the AGE encode cost per value, in
	// microjoules.
	EncodeAGEUJPerValue float64
	// AGESafetyFactor conservatively multiplies AGE's compute energy, as
	// the paper's simulator does (§5.1 uses 4x).
	AGESafetyFactor float64
}

// Default returns the model with constants derived from the paper (see the
// package comment).
func Default() Model {
	return Model{
		RadioConnectMJ: 23.8,
		PerByteMJ:      0.03,
		PerSampleMJ:    0.11,
		BaselineMJ:     0.3,
		// §5.8: 0.016 mJ for ~300 values (Activity: 50 steps x 6
		// features) direct write, 0.154 mJ for AGE.
		EncodeStandardUJPerValue: 0.016 * 1000 / 300,
		EncodeAGEUJPerValue:      0.154 * 1000 / 300,
		AGESafetyFactor:          4,
	}
}

// EncodeMJ returns the MCU energy to encode `values` scalar values with the
// given encoder, including the safety factor for AGE. A negative count or an
// unknown encoder kind is a caller bug and returns an error — silently
// charging a garbage kind at the standard rate would understate AGE
// deployments by the safety factor.
func (m Model) EncodeMJ(values int, kind EncoderKind) (float64, error) {
	if values < 0 {
		return 0, fmt.Errorf("energy: encode of %d values (count must be non-negative)", values)
	}
	if !kind.Valid() {
		return 0, fmt.Errorf("energy: unknown encoder kind %s", kind)
	}
	if kind == EncodeAGE {
		return m.EncodeAGEUJPerValue * float64(values) / 1000 * m.AGESafetyFactor, nil
	}
	return m.EncodeStandardUJPerValue * float64(values) / 1000, nil
}

// TransmitMJ returns the radio energy to send one batched message of the
// given payload size.
func (m Model) TransmitMJ(payloadBytes int) (float64, error) {
	if payloadBytes < 0 {
		return 0, fmt.Errorf("energy: transmit of %d bytes (payload must be non-negative)", payloadBytes)
	}
	return m.RadioConnectMJ + m.PerByteMJ*float64(payloadBytes), nil
}

// CollectMJ returns the sensing energy for k captured measurements.
func (m Model) CollectMJ(k int) (float64, error) {
	if k < 0 {
		return 0, fmt.Errorf("energy: collect of %d measurements (count must be non-negative)", k)
	}
	return m.PerSampleMJ * float64(k), nil
}

// SequenceMJ returns the full energy for one sequence: collect k
// measurements (k*d values), encode them, and transmit payloadBytes.
func (m Model) SequenceMJ(k, d, payloadBytes int, kind EncoderKind) (float64, error) {
	if d < 1 {
		return 0, fmt.Errorf("energy: sequence with %d features (need at least 1)", d)
	}
	collect, err := m.CollectMJ(k)
	if err != nil {
		return 0, err
	}
	encode, err := m.EncodeMJ(k*d, kind)
	if err != nil {
		return 0, err
	}
	transmit, err := m.TransmitMJ(payloadBytes)
	if err != nil {
		return 0, err
	}
	return m.BaselineMJ + collect + encode + transmit, nil
}

// Meter tracks spending against a budget in millijoules.
type Meter struct {
	BudgetMJ float64
	SpentMJ  float64
}

// NewMeter returns a meter with the given budget.
func NewMeter(budgetMJ float64) *Meter { return &Meter{BudgetMJ: budgetMJ} }

// Charge records a spend and reports whether the meter is still within
// budget after the charge.
func (t *Meter) Charge(mj float64) bool {
	t.SpentMJ += mj
	return !t.Exceeded()
}

// Exceeded reports whether cumulative spending exceeds the budget.
func (t *Meter) Exceeded() bool { return t.SpentMJ > t.BudgetMJ }

// RemainingMJ returns the budget remaining (never negative).
func (t *Meter) RemainingMJ() float64 { return math.Max(0, t.BudgetMJ-t.SpentMJ) }

// UniformSequenceMJ returns the per-sequence energy of a Uniform sampler
// collecting a fraction rate of a T-step, d-feature sequence whose standard
// message payload is sized by payloadBytes (a function of the collected
// count). This defines the paper's budget scale (§5.1).
func (m Model) UniformSequenceMJ(T, d int, rate float64, payloadBytes func(k int) int) (float64, error) {
	if T < 1 {
		return 0, fmt.Errorf("energy: uniform sequence over %d steps (need at least 1)", T)
	}
	if math.IsNaN(rate) {
		return 0, fmt.Errorf("energy: uniform sequence rate is NaN")
	}
	if payloadBytes == nil {
		return 0, fmt.Errorf("energy: uniform sequence needs a payload size function")
	}
	k := CollectCount(T, rate)
	return m.SequenceMJ(k, d, payloadBytes(k), EncodeStandard)
}

// CollectCount returns the number of elements a Uniform policy collects for
// a target fraction: floor(rate*T), at least 1, at most T.
func CollectCount(T int, rate float64) int {
	k := int(rate * float64(T))
	if k < 1 {
		k = 1
	}
	if k > T {
		k = T
	}
	return k
}

// Budget describes one energy constraint in the evaluation grid.
type Budget struct {
	// Rate is the Uniform collection fraction that defines the budget
	// (0.3 .. 1.0 in the paper).
	Rate float64
	// PerSeqMJ is the corresponding per-sequence energy allowance.
	PerSeqMJ float64
	// TotalMJ is PerSeqMJ times the number of sequences in the workload.
	TotalMJ float64
}

// BudgetGrid returns the paper's eight budgets (rates 0.3, 0.4, ..., 1.0)
// for a workload of numSeq sequences.
func (m Model) BudgetGrid(T, d, numSeq int, payloadBytes func(k int) int) ([]Budget, error) {
	if numSeq < 1 {
		return nil, fmt.Errorf("energy: budget grid for %d sequences (need at least 1)", numSeq)
	}
	var out []Budget
	for r := 3; r <= 10; r++ {
		rate := float64(r) / 10
		per, err := m.UniformSequenceMJ(T, d, rate, payloadBytes)
		if err != nil {
			return nil, err
		}
		out = append(out, Budget{Rate: rate, PerSeqMJ: per, TotalMJ: per * float64(numSeq)})
	}
	return out, nil
}
