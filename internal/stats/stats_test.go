package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g", got)
	}
	if got := PopStdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("PopStdDev = %g, want 2", got)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if got := Median(xs); got != 4.5 {
		t.Errorf("Median = %g", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %g", got)
	}
	if got := Min(xs); got != 2 {
		t.Errorf("Min = %g", got)
	}
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-slice statistics should all be 0")
	}
	if Entropy(nil) != 0 {
		t.Error("Entropy(nil) != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := IQR(xs); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("IQR = %g", got)
	}
	// Quantile must not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]int{1, 1, 1}); got != 0 {
		t.Errorf("constant entropy = %g", got)
	}
	if got := Entropy([]int{0, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("fair coin entropy = %g, want 1", got)
	}
	if got := Entropy([]int{0, 1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("uniform-4 entropy = %g, want 2", got)
	}
}

func TestMutualInformationIdentical(t *testing.T) {
	xs := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	// I(X;X) = H(X)
	if got, want := MutualInformation(xs, xs), Entropy(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("I(X;X) = %g, want H(X) = %g", got, want)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// A perfectly balanced independent pairing has exactly zero MI.
	var xs, ys []int
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			xs = append(xs, i)
			ys = append(ys, j)
		}
	}
	if got := MutualInformation(xs, ys); !almostEqual(got, 0, 1e-12) {
		t.Errorf("independent MI = %g, want 0", got)
	}
}

func TestNMIRange(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%50) + 2
		xs := make([]int, m)
		ys := make([]int, m)
		for i := range xs {
			xs[i] = rng.Intn(4)
			ys[i] = rng.Intn(6)
		}
		v := NMI(xs, ys)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNMIConstantSizeIsZero(t *testing.T) {
	// The AGE guarantee: if every message has the same size, NMI is zero
	// regardless of the label distribution.
	labels := []int{0, 1, 2, 3, 0, 1, 2, 3}
	sizes := []int{500, 500, 500, 500, 500, 500, 500, 500}
	if got := NMI(labels, sizes); got != 0 {
		t.Errorf("NMI with constant sizes = %g, want 0", got)
	}
}

func TestNMIPerfectLeakage(t *testing.T) {
	// Message size a deterministic, invertible function of the label.
	labels := []int{0, 1, 2, 0, 1, 2}
	sizes := []int{100, 200, 300, 100, 200, 300}
	if got := NMI(labels, sizes); !almostEqual(got, 1, 1e-12) {
		t.Errorf("NMI with perfect leakage = %g, want 1", got)
	}
}

func TestPermutationTestDetectsDependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := make([]int, 200)
	sizes := make([]int, 200)
	for i := range labels {
		labels[i] = i % 2
		sizes[i] = 100 + labels[i]*50 + rng.Intn(5)
	}
	// The paper uses 15000 permutations so that the full 95% CI can fall
	// below alpha = 0.01 (§5.3); fewer permutations leave the CI too wide.
	res := PermutationTestNMI(labels, sizes, 15000, rng)
	if !res.Significant(0.01) {
		t.Errorf("dependent data not significant: p=%g ci=[%g,%g]", res.PValue, res.CILow, res.CIHigh)
	}
}

func TestPermutationTestIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := make([]int, 200)
	sizes := make([]int, 200)
	for i := range labels {
		labels[i] = rng.Intn(2)
		sizes[i] = 100 + rng.Intn(5)
	}
	res := PermutationTestNMI(labels, sizes, 500, rng)
	if res.Significant(0.01) {
		t.Errorf("independent data flagged significant: p=%g", res.PValue)
	}
}

func TestWelchTTestEqualSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res := WelchTTest(a, a)
	if !almostEqual(res.T, 0, 1e-12) || res.P < 0.99 {
		t.Errorf("identical samples: t=%g p=%g", res.T, res.P)
	}
}

func TestWelchTTestSeparatedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = 100 + rng.NormFloat64()
		b[i] = 110 + rng.NormFloat64()
	}
	res := WelchTTest(a, b)
	if res.P > 1e-6 {
		t.Errorf("separated samples p=%g, want tiny", res.P)
	}
	if res.T > 0 {
		t.Errorf("t should be negative for mean(a) < mean(b), got %g", res.T)
	}
}

func TestWelchTTestKnownValue(t *testing.T) {
	// Reference values computed independently (hand formula): t = -2.8353,
	// df = 27.71, two-sided p ~ 0.0085.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9}
	res := WelchTTest(a, b)
	if !almostEqual(res.T, -2.8353, 0.001) {
		t.Errorf("t = %g, want -2.8353", res.T)
	}
	if !almostEqual(res.DF, 27.71, 0.05) {
		t.Errorf("df = %g, want 27.71", res.DF)
	}
	if !almostEqual(res.P, 0.0085, 0.001) {
		t.Errorf("p = %g, want about 0.0085", res.P)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	if res := WelchTTest([]float64{1}, []float64{2, 3, 4}); res.P != 1 {
		t.Errorf("tiny sample p = %g, want 1", res.P)
	}
	// Zero variance, different means: certainly different.
	res := WelchTTest([]float64{5, 5, 5}, []float64{9, 9, 9})
	if res.P != 0 {
		t.Errorf("zero-variance different means p = %g, want 0", res.P)
	}
	res = WelchTTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if res.P != 1 {
		t.Errorf("zero-variance same means p = %g, want 1", res.P)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := regIncBeta(1, 1, x); !almostEqual(got, x, 1e-10) {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := regIncBeta(2.5, 3.5, 0.3) + regIncBeta(3.5, 2.5, 0.7); !almostEqual(got, 1, 1e-10) {
		t.Errorf("symmetry violated: %g", got)
	}
}

func TestStudentTSF(t *testing.T) {
	// Known: P(T > 2.0) for df=10 is about 0.0367 (one-sided).
	if got := studentTSF(2.0, 10); !almostEqual(got, 0.0367, 0.001) {
		t.Errorf("studentTSF(2,10) = %g", got)
	}
	// Large df approaches the normal tail: P(Z > 1.96) ~ 0.025.
	if got := studentTSF(1.96, 10000); !almostEqual(got, 0.025, 0.001) {
		t.Errorf("studentTSF(1.96,1e4) = %g", got)
	}
}

func BenchmarkNMI(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	labels := make([]int, 1000)
	sizes := make([]int, 1000)
	for i := range labels {
		labels[i] = rng.Intn(4)
		sizes[i] = rng.Intn(100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NMI(labels, sizes)
	}
}

func BenchmarkWelchTTest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 500)
	y := make([]float64, 500)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()+0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WelchTTest(x, y)
	}
}

// TestQuantileEdgeCases pins the quantile machinery's behavior on the inputs
// the live projections feed it: single-element slices and slices containing
// NaN. Go's sort.Float64s orders NaNs before every real number, so a NaN
// shifts the order statistics left; these tests record that behavior so a
// future "fix" is a deliberate decision, not an accident.
func TestQuantileEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64 // NaN means "expect NaN"
	}{
		{"single q0", []float64{7}, 0, 7},
		{"single q0.5", []float64{7}, 0.5, 7},
		{"single q1", []float64{7}, 1, 7},
		{"single negative q clamps", []float64{7}, -0.3, 7},
		{"single q>1 clamps", []float64{7}, 1.7, 7},
		{"empty", nil, 0.5, 0},
		{"two-element median interpolates", []float64{1, 3}, 0.5, 2},
		// NaN sorts first: [NaN 1 2], pos = 0.5*2 = 1 → s[1] = 1.
		{"nan median picks real value", []float64{1, nan, 2}, 0.5, 1},
		// q=0 lands exactly on the NaN.
		{"nan q0 is nan", []float64{1, nan, 2}, 0, nan},
		// Interpolating against a NaN neighbor poisons the result:
		// pos = 0.25*2 = 0.5 interpolates s[0]=NaN with s[1]=1.
		{"nan q0.25 interpolates to nan", []float64{1, nan, 2}, 0.25, nan},
		{"all nan", []float64{nan, nan}, 0.5, nan},
		{"single nan", []float64{nan}, 0.5, nan},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Quantile(tc.xs, tc.q)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("Quantile(%v, %v) = %g, want NaN", tc.xs, tc.q, got)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("Quantile(%v, %v) = %g, want %g", tc.xs, tc.q, got, tc.want)
			}
		})
	}
}

func TestMedianIQREdgeCases(t *testing.T) {
	if got := Median([]float64{42}); got != 42 {
		t.Errorf("Median([42]) = %g", got)
	}
	if got := IQR([]float64{42}); got != 0 {
		t.Errorf("IQR([42]) = %g, want 0", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %g, want 0", got)
	}
	if got := IQR(nil); got != 0 {
		t.Errorf("IQR(nil) = %g, want 0", got)
	}
	// A NaN in the sample poisons IQR whenever either quartile touches it.
	if got := IQR([]float64{math.NaN(), 1, 2, 3}); !math.IsNaN(got) {
		t.Errorf("IQR with NaN = %g, want NaN", got)
	}
	// Median of an even-length all-real slice stays finite even with a NaN
	// present elsewhere in the order statistics.
	if got := Median([]float64{math.NaN(), 1, 5, 9}); got != 3 {
		t.Errorf("Median([NaN 1 5 9]) = %g, want 3", got)
	}
}

// TestEntropyCountsMatchesEntropy checks the incremental count form against
// the slice form on random data.
func TestEntropyCountsMatchesEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		labels := make([]int, n)
		counts := map[int]int64{}
		for i := range labels {
			labels[i] = rng.Intn(6)
			counts[labels[i]]++
		}
		if got, want := EntropyCounts(counts), Entropy(labels); !almostEqual(got, want, 1e-12) {
			t.Fatalf("EntropyCounts = %g, Entropy = %g", got, want)
		}
	}
	if got := EntropyCounts(nil); got != 0 {
		t.Errorf("EntropyCounts(nil) = %g", got)
	}
	// Non-positive counts are ignored, not treated as observations.
	if got := EntropyCounts(map[int]int64{1: 0, 2: -3, 3: 8}); got != 0 {
		t.Errorf("EntropyCounts with only one positive bucket = %g, want 0", got)
	}
}

// TestNMICountsMatchesNMI checks the joint-count form against the paired
// slice form on random data.
func TestNMICountsMatchesNMI(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(300)
		labels := make([]int, n)
		sizes := make([]int, n)
		joint := map[[2]int]int64{}
		for i := range labels {
			labels[i] = rng.Intn(4)
			// Correlate sizes with labels so NMI is not trivially 0.
			sizes[i] = labels[i]*10 + rng.Intn(12)
			joint[[2]int{labels[i], sizes[i]}]++
		}
		if got, want := NMICounts(joint), NMI(labels, sizes); !almostEqual(got, want, 1e-12) {
			t.Fatalf("NMICounts = %g, NMI = %g", got, want)
		}
	}
	if got := NMICounts(nil); got != 0 {
		t.Errorf("NMICounts(nil) = %g", got)
	}
	// A constant marginal carries no information.
	if got := NMICounts(map[[2]int]int64{{1, 10}: 5, {1, 20}: 5}); got != 0 {
		t.Errorf("NMICounts with constant label marginal = %g, want 0", got)
	}
}
