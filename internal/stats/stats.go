// Package stats implements the statistical machinery the paper's evaluation
// relies on: Shannon entropy and normalized mutual information between
// message sizes and event labels (§5.3, Eq. 3), approximate permutation tests
// for NMI significance, Welch's t-test for conditional message-size
// distributions (§3.2) and budget-violation detection (§5.7), and the
// descriptive statistics (mean, std, median, IQR) used throughout.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or 0 when len < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopStdDev returns the population (n) standard deviation, used for the
// deviation-weighted error metric in Table 5.
func PopStdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns the interquartile range (Q3 - Q1).
func IQR(xs []float64) float64 { return Quantile(xs, 0.75) - Quantile(xs, 0.25) }

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Entropy returns the Shannon entropy (bits) of the empirical distribution
// of the discrete observations in labels.
func Entropy(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	n := float64(len(labels))
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyCounts returns the Shannon entropy (bits) of the empirical
// distribution described by a count table — the incremental form of Entropy
// used by live monitors that maintain counts instead of retaining every
// observation. Zero and negative counts are ignored.
func EntropyCounts(counts map[int]int64) float64 {
	var n int64
	for _, c := range counts {
		if c > 0 {
			n += c
		}
	}
	if n == 0 {
		return 0
	}
	var h float64
	nf := float64(n)
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / nf
		h -= p * math.Log2(p)
	}
	return h
}

// NMICounts returns the normalized mutual information of Eq. 3 computed from
// a joint count table over (label, size) pairs — the incremental form of
// NMI for monitors that maintain counts. Marginals are derived from the
// joint, so both entropies cover exactly the jointly observed population.
// Zero and negative counts are ignored; an empty (or constant-marginal)
// table yields 0, matching NMI's convention.
func NMICounts(joint map[[2]int]int64) float64 {
	var n int64
	px := map[int]int64{}
	py := map[int]int64{}
	for k, c := range joint {
		if c <= 0 {
			continue
		}
		n += c
		px[k[0]] += c
		py[k[1]] += c
	}
	if n == 0 {
		return 0
	}
	hx := EntropyCounts(px)
	hy := EntropyCounts(py)
	if hx+hy == 0 {
		return 0
	}
	nf := float64(n)
	var mi float64
	for k, c := range joint {
		if c <= 0 {
			continue
		}
		pj := float64(c) / nf
		mi += pj * math.Log2(pj/(float64(px[k[0]])/nf*float64(py[k[1]])/nf))
	}
	if mi < 0 { // guard tiny negative round-off
		mi = 0
	}
	return 2 * mi / (hx + hy)
}

// MutualInformation returns the maximum-likelihood estimate of I(X;Y) in bits
// between two paired discrete observation sequences. It panics if the slices
// have different lengths.
func MutualInformation(xs, ys []int) float64 {
	if len(xs) != len(ys) {
		panic("stats: MutualInformation length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	n := float64(len(xs))
	px := map[int]float64{}
	py := map[int]float64{}
	pxy := map[[2]int]float64{}
	for i := range xs {
		px[xs[i]]++
		py[ys[i]]++
		pxy[[2]int{xs[i], ys[i]}]++
	}
	var mi float64
	for k, c := range pxy {
		pj := c / n
		mi += pj * math.Log2(pj/(px[k[0]]/n*py[k[1]]/n))
	}
	if mi < 0 { // guard tiny negative round-off
		mi = 0
	}
	return mi
}

// NMI returns the normalized mutual information of the paper's Eq. 3:
//
//	NMI(L, M) = 2 I(L; M) / (H(L) + H(M))
//
// It is 0 when either marginal entropy is 0 (a constant sequence carries no
// information, so nothing can leak).
func NMI(labels, sizes []int) float64 {
	hl := Entropy(labels)
	hm := Entropy(sizes)
	if hl+hm == 0 {
		return 0
	}
	return 2 * MutualInformation(labels, sizes) / (hl + hm)
}

// PermutationTestResult reports the outcome of an approximate permutation
// test on NMI (§5.3).
type PermutationTestResult struct {
	Observed float64 // NMI on the real pairing
	PValue   float64 // fraction of permutations with NMI >= Observed
	// CILow and CIHigh bound the 95% confidence interval
	// p ± 1.96/(2*sqrt(n)) from Ojala & Garriga, as used in §5.3.
	CILow, CIHigh float64
	Permutations  int
}

// Significant reports whether the entire 95% confidence interval of the
// p-value lies below alpha, the criterion the paper uses.
func (r PermutationTestResult) Significant(alpha float64) bool {
	return r.CIHigh < alpha
}

// PermutationTestNMI shuffles sizes n times and recomputes NMI against the
// fixed labels. The null hypothesis is that the observed NMI arises from
// random variation rather than any dependence of sizes on labels.
func PermutationTestNMI(labels, sizes []int, n int, rng *rand.Rand) PermutationTestResult {
	obs := NMI(labels, sizes)
	perm := append([]int(nil), sizes...)
	exceed := 0
	for i := 0; i < n; i++ {
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		if NMI(labels, perm) >= obs {
			exceed++
		}
	}
	// Add-one smoothing keeps the estimate away from an impossible 0.
	p := (float64(exceed) + 1) / (float64(n) + 1)
	half := 1.96 / (2 * math.Sqrt(float64(n)))
	return PermutationTestResult{
		Observed:     obs,
		PValue:       p,
		CILow:        math.Max(0, p-half),
		CIHigh:       math.Min(1, p+half),
		Permutations: n,
	}
}

// WelchResult reports a two-sample Welch's t-test.
type WelchResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs Welch's unequal-variances t-test between samples a and
// b. The paper uses it to show the per-event message-size distributions
// differ (§3.2, alpha=0.01) and to detect budget violations (§5.7,
// one-sided alpha=0.05; halve P for the one-sided test).
func WelchTTest(a, b []float64) WelchResult {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return WelchResult{P: 1}
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a)/na, Variance(b)/nb
	if va+vb == 0 {
		if ma == mb {
			return WelchResult{P: 1, DF: na + nb - 2}
		}
		return WelchResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}
	}
	t := (ma - mb) / math.Sqrt(va+vb)
	df := (va + vb) * (va + vb) / (va*va/(na-1) + vb*vb/(nb-1))
	p := 2 * studentTSF(math.Abs(t), df)
	return WelchResult{T: t, DF: df, P: p}
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTSF returns P(T > t) for Student's t distribution with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes §6.4).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
