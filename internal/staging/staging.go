// Package staging implements the middle tier of the streaming pipeline
// (decode → stage → project): per-sensor append-only logs of decoded
// records, a visibility watermark that projection workers respect, and the
// retention/trim policy that keeps memory bounded once every worker has
// moved past a prefix.
//
// # Topology
//
// A Stage owns one Log per sensor. Appends for a sensor are ordered (the
// ingest server serializes a sensor's connections, so the decode tap calls
// Append in delivery order); appends for different sensors are concurrent.
// Each record is assigned a per-sensor sequence number at append time —
// the log's coordinate system, monotonically increasing and never reused,
// independent of the frame index (which restarts at the resume point on
// reconnect and can be replayed after an eviction).
//
// # Watermark
//
// Projections that correlate across sensors (the privacy monitor's NMI
// over the fleet's message sizes) must not read ahead of the slowest
// incomplete sensor, or a quiesced snapshot would depend on arrival
// interleaving. Watermark returns
//
//	cutoff = MIN over incomplete logs of (head sequence)
//
// — the number of records visible on every still-streaming sensor.
// Completed logs are exempt so a finished sensor does not pin the cutoff
// forever; when every log is complete the watermark is the maximum head,
// making everything visible.
//
// # Retention
//
// TrimBelow drops record storage below a per-sensor sequence, with a
// Retain floor so late-starting workers still find a bounded suffix.
// Trimming releases segment memory but never moves sequence numbers:
// Get on a trimmed sequence reports ok=false rather than shifting data.
//
// # Checkpoint / restore
//
// Checkpoint captures per-sensor heads and completion flags. Restore
// rebuilds a Stage whose logs resume at those heads with all prior
// storage trimmed — the crash-restart contract is "sequence numbers
// survive, record storage does not", which is exactly what projection
// checkpoints (which carry their own aggregates) need.
package staging

import (
	"sort"
	"sync"
)

// Record is one decoded, staged batch from a sensor — the unit projection
// workers consume. Indices/Values are the decoded adaptive-sampling batch;
// Truth is the optional ground-truth window supplied by loopback harnesses
// (nil in production, where the server cannot know it).
type Record struct {
	// Seq is the per-sensor sequence number assigned at append time.
	Seq int
	// Index is the frame's lifetime position in the sensor's stream.
	Index int
	// WireBytes is the sealed frame's on-the-wire size, the privacy
	// monitor's observable.
	WireBytes int
	// Label is the window's event label when known (-1 otherwise) — the
	// class the attack recovers, secret for leaktaint.
	Label int //age:secret
	// RecvUnixNano is the server-side arrival time.
	RecvUnixNano int64
	// Indices and Values are the decoded batch (collected time steps and
	// their measurement rows).
	Indices []int
	Values  [][]float64
	// Truth is the full ground-truth window when a harness supplies one.
	Truth [][]float64
}

// segSize is the per-segment record capacity. Appends fill the tail
// segment and chain a new one when full; TrimBelow frees whole segments.
const segSize = 64

// segment is one fixed-capacity run of consecutive records.
type segment struct {
	base int // sequence number of recs[0]
	recs []Record
}

// Log is one sensor's append-only staged log. A Log is safe for one
// appender and many concurrent readers.
type Log struct {
	mu       sync.Mutex
	segs     []*segment
	next     int  // sequence the next append receives (head)
	trimmed  int  // lowest retained sequence
	complete bool // final ack observed; no more appends expected
}

// Stage is the set of per-sensor logs plus subscriber plumbing.
type Stage struct {
	mu   sync.Mutex
	logs map[int]*Log
	subs []chan struct{}
}

// New creates an empty Stage.
func New() *Stage {
	return &Stage{logs: map[int]*Log{}}
}

// Log returns the sensor's log, creating it on first use.
func (s *Stage) Log(sensorID int) *Log {
	s.mu.Lock()
	l := s.logs[sensorID]
	if l == nil {
		l = &Log{}
		s.logs[sensorID] = l
	}
	s.mu.Unlock()
	return l
}

// Sensors returns the ids of every known log, sorted.
func (s *Stage) Sensors() []int {
	s.mu.Lock()
	ids := make([]int, 0, len(s.logs))
	for id := range s.logs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Ints(ids)
	return ids
}

// Subscribe returns a channel that receives a (coalesced) signal after
// every append or completion. Workers block on it instead of polling.
func (s *Stage) Subscribe() <-chan struct{} {
	ch := make(chan struct{}, 1)
	s.mu.Lock()
	s.subs = append(s.subs, ch)
	s.mu.Unlock()
	return ch
}

// notify pokes every subscriber without blocking. Called with no Stage or
// Log lock held — channel sends under a mutex are forbidden here
// (internal/agevet lockedblock).
func (s *Stage) notify() {
	s.mu.Lock()
	subs := append([]chan struct{}(nil), s.subs...)
	s.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Append assigns the next sequence number to rec, stores it, signals
// subscribers, and returns the assigned sequence.
func (s *Stage) Append(sensorID int, rec Record) int {
	l := s.Log(sensorID)
	l.mu.Lock()
	rec.Seq = l.next
	tail := l.tailLocked()
	if tail == nil || len(tail.recs) == cap(tail.recs) {
		tail = &segment{base: l.next, recs: make([]Record, 0, segSize)}
		l.segs = append(l.segs, tail)
	}
	tail.recs = append(tail.recs, rec)
	l.next++
	seq := rec.Seq
	l.mu.Unlock()
	s.notify()
	return seq
}

// Complete marks the sensor's log finished (final ack observed): the
// watermark stops bounding on it, and subscribers are woken so workers
// can re-evaluate visibility.
func (s *Stage) Complete(sensorID int) {
	l := s.Log(sensorID)
	l.mu.Lock()
	l.complete = true
	l.mu.Unlock()
	s.notify()
}

// Reopen clears a log's completion flag — a sensor evicted after a final
// ack has reconnected and is streaming again, so the watermark must bound
// on it once more.
func (s *Stage) Reopen(sensorID int) {
	l := s.Log(sensorID)
	l.mu.Lock()
	l.complete = false
	l.mu.Unlock()
}

// Watermark returns the cross-sensor visibility cutoff: the minimum head
// over incomplete logs, or the maximum head when every log is complete.
// An empty stage has watermark 0.
func (s *Stage) Watermark() int {
	s.mu.Lock()
	logs := make([]*Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()
	minIncomplete, maxHead := -1, 0
	for _, l := range logs {
		head, complete := l.state()
		if head > maxHead {
			maxHead = head
		}
		if !complete && (minIncomplete < 0 || head < minIncomplete) {
			minIncomplete = head
		}
	}
	if minIncomplete >= 0 {
		return minIncomplete
	}
	return maxHead
}

// TrimBelow releases record storage below seq on the sensor's log, keeping
// at least retain records below the head. Sequence numbers are unaffected.
func (s *Stage) TrimBelow(sensorID, seq, retain int) {
	l := s.Log(sensorID)
	l.mu.Lock()
	if floor := l.next - retain; seq > floor {
		seq = floor
	}
	if seq > l.trimmed {
		l.trimmed = seq
		// Drop whole segments that lie entirely below the trim point.
		drop := 0
		for drop < len(l.segs) && l.segs[drop].base+len(l.segs[drop].recs) <= seq {
			drop++
		}
		if drop > 0 {
			l.segs = append([]*segment(nil), l.segs[drop:]...)
		}
	}
	l.mu.Unlock()
}

// Checkpoint captures the stage's durable coordinates.
type Checkpoint struct {
	Sensors map[int]LogCheckpoint `json:"sensors"`
}

// LogCheckpoint is one log's durable state: its head sequence and whether
// the stream had completed.
type LogCheckpoint struct {
	Head     int  `json:"head"`
	Complete bool `json:"complete"`
}

// Checkpoint snapshots every log's head and completion flag.
func (s *Stage) Checkpoint() Checkpoint {
	cp := Checkpoint{Sensors: map[int]LogCheckpoint{}}
	s.mu.Lock()
	logs := make(map[int]*Log, len(s.logs))
	for id, l := range s.logs {
		logs[id] = l
	}
	s.mu.Unlock()
	for id, l := range logs {
		head, complete := l.state()
		cp.Sensors[id] = LogCheckpoint{Head: head, Complete: complete}
	}
	return cp
}

// Restore builds a Stage whose logs resume at the checkpointed heads with
// everything below them trimmed: the next append on sensor i receives
// sequence cp.Sensors[i].Head, and Get on any earlier sequence reports
// ok=false.
func Restore(cp Checkpoint) *Stage {
	s := New()
	for id, lc := range cp.Sensors {
		l := &Log{next: lc.Head, trimmed: lc.Head, complete: lc.Complete}
		s.mu.Lock()
		s.logs[id] = l
		s.mu.Unlock()
	}
	return s
}

// Cursor is one sensor's migratable staging coordinate: the head sequence
// its log resumes at on another node, plus its completion flag. Record
// storage does not migrate — the cluster's crash-restart contract is the
// same as Checkpoint/Restore's ("sequence numbers survive, record storage
// does not"), so the receiving node's projections start from a trimmed log.
type Cursor struct {
	SensorID int  `json:"sensor_id"`
	Head     int  `json:"head"`
	Complete bool `json:"complete"`
}

// ExportCursor captures and removes sensorID's log for migration to
// another node's stage. ok is false when the sensor has no log. After
// export the watermark no longer bounds on the sensor here; the importing
// stage takes over. The exporting node must have severed the sensor's
// connection first — a racing append would recreate an empty log.
func (s *Stage) ExportCursor(sensorID int) (Cursor, bool) {
	s.mu.Lock()
	l := s.logs[sensorID]
	delete(s.logs, sensorID)
	s.mu.Unlock()
	if l == nil {
		return Cursor{}, false
	}
	head, complete := l.state()
	return Cursor{SensorID: sensorID, Head: head, Complete: complete}, true
}

// ImportCursor seeds the sensor's log to resume at the migrated cursor,
// with all prior storage trimmed (the next append receives sequence
// c.Head). When a log already exists it merges forward — the head only
// advances and completion only latches true on a completed cursor — so a
// duplicated or delayed import can never rewind a log another connection
// has already appended to.
func (s *Stage) ImportCursor(c Cursor) {
	if c.Head < 0 {
		return
	}
	l := s.Log(c.SensorID)
	l.mu.Lock()
	if c.Head > l.next {
		l.next = c.Head
		if c.Head > l.trimmed {
			l.trimmed = c.Head
			l.segs = nil
		}
	}
	if c.Complete {
		l.complete = true
	}
	l.mu.Unlock()
}

// tailLocked returns the last segment, or nil. Caller holds l.mu.
func (l *Log) tailLocked() *segment {
	if len(l.segs) == 0 {
		return nil
	}
	return l.segs[len(l.segs)-1]
}

// state returns the log's head sequence and completion flag.
func (l *Log) state() (head int, complete bool) {
	l.mu.Lock()
	head, complete = l.next, l.complete
	l.mu.Unlock()
	return head, complete
}

// Head returns the sequence the next append will receive.
func (l *Log) Head() int {
	h, _ := l.state()
	return h
}

// Trimmed returns the lowest sequence still retained.
func (l *Log) Trimmed() int {
	l.mu.Lock()
	t := l.trimmed
	l.mu.Unlock()
	return t
}

// Complete reports whether the log has been marked finished.
func (l *Log) Complete() bool {
	_, c := l.state()
	return c
}

// Get returns the record at seq. ok is false when seq is below the trim
// point, at or above the head, or inside a trimmed segment.
func (l *Log) Get(seq int) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.trimmed || seq >= l.next || len(l.segs) == 0 {
		return Record{}, false
	}
	// Binary search for the owning segment.
	lo, hi := 0, len(l.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.segs[mid].base+len(l.segs[mid].recs) <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(l.segs) || seq < l.segs[lo].base {
		return Record{}, false
	}
	return l.segs[lo].recs[seq-l.segs[lo].base], true
}
