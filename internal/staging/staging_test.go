package staging

import (
	"sync"
	"testing"
)

func rec(index, bytes int) Record {
	return Record{Index: index, WireBytes: bytes, Label: -1}
}

func TestAppendGetSequencing(t *testing.T) {
	s := New()
	for i := 0; i < 200; i++ {
		if seq := s.Append(3, rec(i, 100+i)); seq != i {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	l := s.Log(3)
	if l.Head() != 200 {
		t.Fatalf("head = %d", l.Head())
	}
	for i := 0; i < 200; i++ {
		r, ok := l.Get(i)
		if !ok || r.Seq != i || r.Index != i || r.WireBytes != 100+i {
			t.Fatalf("get %d = %+v ok=%v", i, r, ok)
		}
	}
	if _, ok := l.Get(200); ok {
		t.Error("read past head succeeded")
	}
	if _, ok := l.Get(-1); ok {
		t.Error("negative read succeeded")
	}
}

func TestWatermarkBoundsOnIncomplete(t *testing.T) {
	s := New()
	if s.Watermark() != 0 {
		t.Fatalf("empty watermark = %d", s.Watermark())
	}
	for i := 0; i < 5; i++ {
		s.Append(1, rec(i, 10))
	}
	for i := 0; i < 3; i++ {
		s.Append(2, rec(i, 10))
	}
	if got := s.Watermark(); got != 3 {
		t.Fatalf("watermark = %d, want 3 (slowest incomplete)", got)
	}
	// Completing the slow sensor exempts it: the cutoff jumps to the
	// remaining incomplete log's head.
	s.Complete(2)
	if got := s.Watermark(); got != 5 {
		t.Fatalf("watermark after complete(2) = %d, want 5", got)
	}
	// All complete -> max head, everything visible.
	s.Complete(1)
	if got := s.Watermark(); got != 5 {
		t.Fatalf("watermark all-complete = %d, want 5", got)
	}
	// Reopen pins it again.
	s.Reopen(2)
	if got := s.Watermark(); got != 3 {
		t.Fatalf("watermark after reopen = %d, want 3", got)
	}
}

func TestTrimRetainsSuffixAndSequences(t *testing.T) {
	s := New()
	for i := 0; i < 300; i++ {
		s.Append(7, rec(i, 10))
	}
	l := s.Log(7)
	s.TrimBelow(7, 250, 20)
	// Retain floor wins: only head-20 = 280 would violate retain, so the
	// requested 250 stands (250 <= 280).
	if got := l.Trimmed(); got != 250 {
		t.Fatalf("trimmed = %d, want 250", got)
	}
	if _, ok := l.Get(100); ok {
		t.Error("trimmed record still readable")
	}
	// Segment-granular release: records at/above the trim point whose
	// segment survives are still readable, and sequences never shift.
	for seq := 250; seq < 300; seq++ {
		r, ok := l.Get(seq)
		if !ok || r.Index != seq {
			t.Fatalf("get %d after trim = %+v ok=%v", seq, r, ok)
		}
	}
	// A trim past the retain floor is clamped.
	s.TrimBelow(7, 299, 20)
	if got := l.Trimmed(); got != 280 {
		t.Fatalf("trimmed after clamp = %d, want 280 (head-retain)", got)
	}
	// Trims never move backwards.
	s.TrimBelow(7, 0, 0)
	if got := l.Trimmed(); got != 280 {
		t.Fatalf("trimmed after backward trim = %d", got)
	}
}

func TestSubscribeSignalsAppends(t *testing.T) {
	s := New()
	ch := s.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Append(1, rec(0, 10))
	}()
	<-ch
	<-done
	if s.Log(1).Head() != 1 {
		t.Fatal("signal arrived before append visible")
	}
	// Completion signals too.
	go s.Complete(1)
	<-ch
}

func TestCheckpointRestoreResumesSequences(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Append(1, rec(i, 10))
	}
	for i := 0; i < 4; i++ {
		s.Append(2, rec(i, 10))
	}
	s.Complete(2)
	cp := s.Checkpoint()
	if cp.Sensors[1] != (LogCheckpoint{Head: 10}) {
		t.Fatalf("cp sensor 1 = %+v", cp.Sensors[1])
	}
	if cp.Sensors[2] != (LogCheckpoint{Head: 4, Complete: true}) {
		t.Fatalf("cp sensor 2 = %+v", cp.Sensors[2])
	}

	r := Restore(cp)
	// Sequences resume exactly where they left off; prior storage is gone.
	if seq := r.Append(1, rec(10, 10)); seq != 10 {
		t.Fatalf("restored append seq = %d, want 10", seq)
	}
	if _, ok := r.Log(1).Get(5); ok {
		t.Error("pre-checkpoint record readable after restore")
	}
	if got, ok := r.Log(1).Get(10); !ok || got.Index != 10 {
		t.Fatalf("post-restore append unreadable: %+v ok=%v", got, ok)
	}
	if !r.Log(2).Complete() {
		t.Error("completion flag lost across restore")
	}
	if got := r.Watermark(); got != 11 {
		t.Fatalf("restored watermark = %d, want 11", got)
	}
}

// TestConcurrentAppendersAndReaders exercises the documented concurrency
// contract under -race: one appender per sensor, readers chasing the
// watermark across sensors.
func TestConcurrentAppendersAndReaders(t *testing.T) {
	const sensors, perSensor = 8, 500
	s := New()
	var wg sync.WaitGroup
	for id := 0; id < sensors; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perSensor; i++ {
				s.Append(id, rec(i, 10+id))
				if i%100 == 0 {
					s.TrimBelow(id, i-50, 100)
				}
			}
			s.Complete(id)
		}(id)
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			ch := s.Subscribe()
			for {
				select {
				case <-stop:
					return
				case <-ch:
				}
				cut := s.Watermark()
				for _, id := range s.Sensors() {
					l := s.Log(id)
					lo := l.Trimmed()
					for seq := lo; seq < cut && seq < lo+10; seq++ {
						if r, ok := l.Get(seq); ok && r.Seq != seq {
							t.Errorf("sensor %d seq %d holds record %d", id, seq, r.Seq)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if got := s.Watermark(); got != perSensor {
		t.Fatalf("final watermark = %d, want %d", got, perSensor)
	}
}

// TestExportCursorRemovesLog pins the handoff side of migration: the cursor
// carries exactly {head, complete}, and after export the sensor no longer
// exists here — its head stops bounding the watermark and lookups miss.
func TestExportCursorRemovesLog(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Append(3, rec(i, 10))
	}
	for i := 0; i < 9; i++ {
		s.Append(4, rec(i, 10))
	}
	s.Complete(4)
	if got := s.Watermark(); got != 5 {
		t.Fatalf("watermark before export = %d, want 5", got)
	}

	c, ok := s.ExportCursor(3)
	if !ok || c.SensorID != 3 || c.Head != 5 || c.Complete {
		t.Fatalf("cursor = %+v ok=%v, want {3 5 false}", c, ok)
	}
	if got := s.Watermark(); got != 9 {
		t.Fatalf("watermark after export = %d, want 9 (sensor 3 gone)", got)
	}
	if ids := s.Sensors(); len(ids) != 1 || ids[0] != 4 {
		t.Fatalf("sensors after export = %v, want [4]", ids)
	}
	if _, ok := s.ExportCursor(3); ok {
		t.Fatal("second export of a removed sensor succeeded")
	}
	if _, ok := s.ExportCursor(99); ok {
		t.Fatal("export of an unknown sensor succeeded")
	}

	done, ok := s.ExportCursor(4)
	if !ok || done.Head != 9 || !done.Complete {
		t.Fatalf("completed cursor = %+v ok=%v, want {4 9 true}", done, ok)
	}
}

// TestImportCursorResumesSequences pins the receiving side: the next append
// after an import receives sequence Head, storage below Head is absent, and
// the completion flag carries over.
func TestImportCursorResumesSequences(t *testing.T) {
	s := New()
	s.ImportCursor(Cursor{SensorID: 7, Head: 12})
	if seq := s.Append(7, rec(12, 10)); seq != 12 {
		t.Fatalf("first append after import got seq %d, want 12", seq)
	}
	l := s.Log(7)
	if l.Trimmed() != 12 {
		t.Fatalf("trimmed = %d, want 12: pre-migration storage must be absent", l.Trimmed())
	}
	if _, ok := l.Get(11); ok {
		t.Fatal("read below the imported head succeeded")
	}
	if r, ok := l.Get(12); !ok || r.Seq != 12 {
		t.Fatalf("get(12) = %+v ok=%v", r, ok)
	}
	if got := s.Watermark(); got != 13 {
		t.Fatalf("watermark = %d, want 13", got)
	}

	s.ImportCursor(Cursor{SensorID: 8, Head: 4, Complete: true})
	if !s.Log(8).Complete() {
		t.Fatal("completed cursor imported as incomplete")
	}
	// Negative heads are a corrupt handoff; they must be ignored entirely.
	s.ImportCursor(Cursor{SensorID: 9, Head: -1})
	if seq := s.Append(9, rec(0, 10)); seq != 0 {
		t.Fatalf("append after rejected import got seq %d, want 0", seq)
	}
}

// TestImportCursorMergesForward is the duplicate-delivery guard: a stale or
// repeated import never rewinds a log that has advanced past it, and
// completion only latches true.
func TestImportCursorMergesForward(t *testing.T) {
	s := New()
	for i := 0; i < 8; i++ {
		s.Append(5, rec(i, 10))
	}
	s.ImportCursor(Cursor{SensorID: 5, Head: 3})
	l := s.Log(5)
	if l.Head() != 8 {
		t.Fatalf("head = %d after stale import, want 8", l.Head())
	}
	if r, ok := l.Get(6); !ok || r.Seq != 6 {
		t.Fatalf("stale import dropped live records: get(6) = %+v ok=%v", r, ok)
	}
	if l.Complete() {
		t.Fatal("stale incomplete import should not change completion")
	}

	// A forward import on a live log advances the head and drops storage.
	s.ImportCursor(Cursor{SensorID: 5, Head: 20, Complete: true})
	if l.Head() != 20 || l.Trimmed() != 20 || !l.Complete() {
		t.Fatalf("forward import: head=%d trimmed=%d complete=%v, want 20/20/true",
			l.Head(), l.Trimmed(), l.Complete())
	}
	// Completion latches: a later incomplete duplicate cannot clear it.
	s.ImportCursor(Cursor{SensorID: 5, Head: 20})
	if !l.Complete() {
		t.Fatal("incomplete duplicate cleared the completion latch")
	}
}

// TestCursorRoundTripAcrossStages drives a full node-to-node migration at
// the staging layer: export from A, import into B, continue appending on B,
// and the combined sequence space is gapless and byte-consistent.
func TestCursorRoundTripAcrossStages(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 6; i++ {
		a.Append(2, rec(i, 100+i))
	}
	c, ok := a.ExportCursor(2)
	if !ok {
		t.Fatal("export failed")
	}
	b.ImportCursor(c)
	for i := 6; i < 10; i++ {
		if seq := b.Append(2, rec(i, 100+i)); seq != i {
			t.Fatalf("append %d on importing stage got seq %d", i, seq)
		}
	}
	b.Complete(2)
	l := b.Log(2)
	if l.Head() != 10 || !l.Complete() {
		t.Fatalf("migrated log head=%d complete=%v, want 10/true", l.Head(), l.Complete())
	}
	for i := 6; i < 10; i++ {
		r, ok := l.Get(i)
		if !ok || r.Index != i || r.WireBytes != 100+i {
			t.Fatalf("post-migration record %d = %+v ok=%v", i, r, ok)
		}
	}
	if got := b.Watermark(); got != 10 {
		t.Fatalf("importing stage watermark = %d, want 10", got)
	}
}
