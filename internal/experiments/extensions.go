package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/inference"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// This file holds experiments beyond the paper's tables: the downstream
// inference-utility check its system model motivates (§2.1), the
// multi-event-batch extension it claims but does not evaluate (§3.1), and
// the w_min / G_0 sensitivity ablations behind the parameter choices of
// §4.2-§4.3 ("we find that AGE's performance is not sensitive across
// G0 = 4, 6, 8").

// UtilityResult reports end-to-end event-detection accuracy (the server's
// real job) from raw data and from reconstructions under each encoder.
type UtilityResult struct {
	Dataset string
	Rate    float64
	// Accuracy of a classifier trained on raw data, evaluated on raw test
	// sequences and on reconstructions from each pipeline.
	Raw      float64
	Pipeline map[string]float64 // "uniform", "linear-std", "linear-age"
}

// InferenceUtility trains an event classifier on raw training sequences and
// measures detection accuracy on test reconstructions produced by the
// Uniform, Linear/Standard, and Linear/AGE pipelines.
func InferenceUtility(cfg Config, name string, rate float64) (*UtilityResult, error) {
	w, err := PrepareWorkload(name, cfg)
	if err != nil {
		return nil, err
	}
	var trSeq [][][]float64
	var trLab []int
	n := len(w.Train)
	for _, s := range w.Data.Sequences[:n] {
		trSeq = append(trSeq, s.Values)
		trLab = append(trLab, s.Label)
	}
	clf, err := inference.TrainClassifier(trSeq, trLab, w.Data.Meta.NumLabels, 5)
	if err != nil {
		return nil, err
	}
	// Test on the held-out tail.
	test := w.Data.Sequences[n:]
	if len(test) == 0 {
		return nil, fmt.Errorf("experiments: no held-out sequences for %s", name)
	}
	res := &UtilityResult{Dataset: name, Rate: rate, Pipeline: map[string]float64{}}
	correct := 0
	for _, s := range test {
		if clf.Predict(s.Values) == s.Label {
			correct++
		}
	}
	res.Raw = float64(correct) / float64(len(test))

	testData := &dataset.Dataset{Meta: w.Data.Meta, Sequences: test}
	for _, col := range []string{"uniform", "linear-std", "linear-age"} {
		pk, enc := columnSpec(col)
		p, err := w.PolicyAt(pk, rate)
		if err != nil {
			return nil, err
		}
		run, err := simulator.Run(simulator.RunConfig{
			Dataset: testData, Policy: p, Encoder: enc, Cipher: cfg.Cipher,
			Rate: rate, Model: energy.Default(), Seed: cfg.Seed, KeepRecons: true,
		})
		if err != nil {
			return nil, err
		}
		correct := 0
		total := 0
		for i, sr := range run.Seqs {
			if sr.Recon == nil {
				continue // post-violation sequences carry no reconstruction
			}
			total++
			if clf.Predict(sr.Recon) == test[i].Label {
				correct++
			}
		}
		if total > 0 {
			res.Pipeline[col] = float64(correct) / float64(total)
		}
	}
	return res, nil
}

func (r *UtilityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Inference utility (%s @ %.0f%% budget): event-detection accuracy\n", r.Dataset, r.Rate*100)
	fmt.Fprintf(&b, "  raw data     %.3f\n", r.Raw)
	for _, col := range []string{"uniform", "linear-std", "linear-age"} {
		fmt.Fprintf(&b, "  %-12s %.3f\n", col, r.Pipeline[col])
	}
	return b.String()
}

// MultiEventResult reports the §3.1 extension: batches spanning two events.
type MultiEventResult struct {
	// NMI between the (pair of events) label and the message size.
	NMIStandard, NMIAGE float64
	// Attack accuracy predicting the event *pair* from sizes.
	AttackStandard, AttackAGE float64
	MajorityPct               float64
}

// MultiEvent builds double-length Epilepsy batches whose windows span two
// consecutive events and checks that (a) the Standard encoder still leaks
// the pair composition through sizes and (b) AGE still closes the channel.
func MultiEvent(cfg Config) (*MultiEventResult, error) {
	w, err := PrepareWorkload("epilepsy", cfg)
	if err != nil {
		return nil, err
	}
	meta := w.Data.Meta
	// Pair consecutive sequences into one 2T window; the label encodes the
	// unordered event pair.
	pairMeta := meta
	pairMeta.Name = "epilepsy-pairs"
	pairMeta.SeqLen = 2 * meta.SeqLen
	pairMeta.NumLabels = meta.NumLabels * meta.NumLabels
	paired := &dataset.Dataset{Meta: pairMeta}
	seqs := w.Data.Sequences
	for i := 0; i+1 < len(seqs); i += 2 {
		vals := make([][]float64, 0, pairMeta.SeqLen)
		vals = append(vals, seqs[i].Values...)
		vals = append(vals, seqs[i+1].Values...)
		a, b := seqs[i].Label, seqs[i+1].Label
		if a > b {
			a, b = b, a
		}
		paired.Sequences = append(paired.Sequences, dataset.Sequence{
			Label:  a*meta.NumLabels + b,
			Values: vals,
		})
	}
	const rate = 0.7
	res := &MultiEventResult{}
	rng := cfg.newRNG("multievent")
	for _, enc := range []simulator.EncoderKind{simulator.EncStandard, simulator.EncAGE} {
		p, err := w.PolicyAt("linear", rate)
		if err != nil {
			return nil, err
		}
		run, err := simulator.Run(simulator.RunConfig{
			Dataset: paired, Policy: p, Encoder: enc, Cipher: cfg.Cipher,
			Rate: rate, Model: energy.Default(), Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		labels, sizes := labelsAndSizes(run)
		nmi := stats.NMI(labels, sizes)
		acc, maj, err := attackAccuracy(run.SizesByLabel, pairMeta.NumLabels, cfg, rng)
		if err != nil {
			return nil, err
		}
		if enc == simulator.EncStandard {
			res.NMIStandard, res.AttackStandard = nmi, acc*100
		} else {
			res.NMIAGE, res.AttackAGE = nmi, acc*100
		}
		if maj*100 > res.MajorityPct {
			res.MajorityPct = maj * 100
		}
	}
	return res, nil
}

func (r *MultiEventResult) String() string {
	var b strings.Builder
	b.WriteString("Multi-event batches (two events per window, Epilepsy pairs @ 70%)\n")
	fmt.Fprintf(&b, "  standard: NMI %.2f, pair-attack %.1f%% (majority %.1f%%)\n",
		r.NMIStandard, r.AttackStandard, r.MajorityPct)
	fmt.Fprintf(&b, "  age:      NMI %.2f, pair-attack %.1f%%\n", r.NMIAGE, r.AttackAGE)
	return b.String()
}

// AblationPoint is one parameter setting's aggregate error.
type AblationPoint struct {
	Value   int
	MeanMAE float64
}

// AblationResult reports a parameter sensitivity sweep.
type AblationResult struct {
	Dataset   string
	Parameter string // "G0" or "w_min"
	Points    []AblationPoint
}

// AblationG0 sweeps AGE's maximum-group floor G_0 over {4, 6, 8} (the values
// the paper reports as indistinguishable, §4.3).
func AblationG0(cfg Config, name string) (*AblationResult, error) {
	return ablate(cfg, name, "G0", []int{4, 6, 8}, func(rc *simulator.RunConfig, v int) {
		rc.MinGroups = v
	})
}

// AblationWMin sweeps the pruning width floor w_min over {3, 5, 7} (§4.2:
// smaller minimums increase quantization error).
func AblationWMin(cfg Config, name string) (*AblationResult, error) {
	return ablate(cfg, name, "w_min", []int{3, 5, 7}, func(rc *simulator.RunConfig, v int) {
		rc.MinWidth = v
	})
}

func ablate(cfg Config, name, param string, values []int, apply func(*simulator.RunConfig, int)) (*AblationResult, error) {
	w, err := PrepareWorkload(name, cfg)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Dataset: name, Parameter: param}
	for _, v := range values {
		var maes []float64
		for _, rate := range cfg.Rates {
			p, err := w.PolicyAt("linear", rate)
			if err != nil {
				return nil, err
			}
			rc := simulator.RunConfig{
				Dataset: w.Data, Policy: p, Encoder: simulator.EncAGE,
				Cipher: cfg.Cipher, Rate: rate, Model: energy.Default(), Seed: cfg.Seed,
			}
			apply(&rc, v)
			run, err := simulator.Run(rc)
			if err != nil {
				return nil, err
			}
			maes = append(maes, run.MAE)
		}
		res.Points = append(res.Points, AblationPoint{Value: v, MeanMAE: stats.Mean(maes)})
	}
	return res, nil
}

func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: AGE %s sensitivity on %s (mean MAE across budgets)\n", r.Parameter, r.Dataset)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %s = %d: %.4f\n", r.Parameter, p.Value, p.MeanMAE)
	}
	return b.String()
}
