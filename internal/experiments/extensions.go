package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/inference"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// This file holds experiments beyond the paper's tables: the downstream
// inference-utility check its system model motivates (§2.1), the
// multi-event-batch extension it claims but does not evaluate (§3.1), and
// the w_min / G_0 sensitivity ablations behind the parameter choices of
// §4.2-§4.3 ("we find that AGE's performance is not sensitive across
// G0 = 4, 6, 8").

// UtilityResult reports end-to-end event-detection accuracy (the server's
// real job) from raw data and from reconstructions under each encoder.
type UtilityResult struct {
	Dataset string
	Rate    float64
	// Accuracy of a classifier trained on raw data, evaluated on raw test
	// sequences and on reconstructions from each pipeline.
	Raw      float64
	Pipeline map[string]float64 // "uniform", "linear-std", "linear-age"
}

// InferenceUtility trains an event classifier on raw training sequences and
// measures detection accuracy on test reconstructions produced by the
// Uniform, Linear/Standard, and Linear/AGE pipelines.
func InferenceUtility(ctx context.Context, cfg Config, name string, rate float64) (*UtilityResult, error) {
	ws, err := prepareWorkloads(ctx, cfg, []string{name}, false)
	if err != nil {
		return nil, err
	}
	w := ws[name]
	var trSeq [][][]float64
	var trLab []int
	n := len(w.Train)
	for _, s := range w.Data.Sequences[:n] {
		trSeq = append(trSeq, s.Values)
		trLab = append(trLab, s.Label)
	}
	clf, err := inference.TrainClassifier(trSeq, trLab, w.Data.Meta.NumLabels, 5)
	if err != nil {
		return nil, err
	}
	// Test on the held-out tail.
	test := w.Data.Sequences[n:]
	if len(test) == 0 {
		return nil, fmt.Errorf("experiments: no held-out sequences for %s", name)
	}
	res := &UtilityResult{Dataset: name, Rate: rate, Pipeline: map[string]float64{}}
	correct := 0
	for _, s := range test {
		if clf.Predict(s.Values) == s.Label {
			correct++
		}
	}
	res.Raw = float64(correct) / float64(len(test))

	testData := &dataset.Dataset{Meta: w.Data.Meta, Sequences: test}
	cols := []string{"uniform", "linear-std", "linear-age"}
	type cellOut struct {
		acc float64
		ok  bool
	}
	labels := make([]string, len(cols))
	for i, col := range cols {
		labels[i] = fmt.Sprintf("utility/%s/%s@%g", name, col, rate)
	}
	out := make([]cellOut, len(cols))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		pk, enc := columnSpec(cols[i])
		p, err := w.PolicyAt(pk, rate)
		if err != nil {
			return err
		}
		run, err := simulator.Run(simulator.RunConfig{
			Dataset: testData, Policy: p, Encoder: enc, Cipher: cfg.Cipher,
			Rate: rate, Model: energy.Default(), Seed: cfg.Seed, KeepRecons: true,
		})
		if err != nil {
			return err
		}
		correct := 0
		total := 0
		for j, sr := range run.Seqs {
			if sr.Recon == nil {
				continue // post-violation sequences carry no reconstruction
			}
			total++
			if clf.Predict(sr.Recon) == test[j].Label {
				correct++
			}
		}
		if total > 0 {
			out[i] = cellOut{acc: float64(correct) / float64(total), ok: true}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, col := range cols {
		if out[i].ok {
			res.Pipeline[col] = out[i].acc
		}
	}
	return res, nil
}

func (r *UtilityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Inference utility (%s @ %.0f%% budget): event-detection accuracy\n", r.Dataset, r.Rate*100)
	fmt.Fprintf(&b, "  raw data     %.3f\n", r.Raw)
	for _, col := range []string{"uniform", "linear-std", "linear-age"} {
		fmt.Fprintf(&b, "  %-12s %.3f\n", col, r.Pipeline[col])
	}
	return b.String()
}

// MultiEventResult reports the §3.1 extension: batches spanning two events.
type MultiEventResult struct {
	// NMI between the (pair of events) label and the message size.
	NMIStandard, NMIAGE float64
	// Attack accuracy predicting the event *pair* from sizes.
	AttackStandard, AttackAGE float64
	MajorityPct               float64
}

// MultiEvent builds double-length Epilepsy batches whose windows span two
// consecutive events and checks that (a) the Standard encoder still leaks
// the pair composition through sizes and (b) AGE still closes the channel.
func MultiEvent(ctx context.Context, cfg Config) (*MultiEventResult, error) {
	ws, err := prepareWorkloads(ctx, cfg, []string{"epilepsy"}, false)
	if err != nil {
		return nil, err
	}
	w := ws["epilepsy"]
	meta := w.Data.Meta
	// Pair consecutive sequences into one 2T window; the label encodes the
	// unordered event pair.
	pairMeta := meta
	pairMeta.Name = "epilepsy-pairs"
	pairMeta.SeqLen = 2 * meta.SeqLen
	pairMeta.NumLabels = meta.NumLabels * meta.NumLabels
	paired := &dataset.Dataset{Meta: pairMeta}
	seqs := w.Data.Sequences
	for i := 0; i+1 < len(seqs); i += 2 {
		vals := make([][]float64, 0, pairMeta.SeqLen)
		vals = append(vals, seqs[i].Values...)
		vals = append(vals, seqs[i+1].Values...)
		a, b := seqs[i].Label, seqs[i+1].Label
		if a > b {
			a, b = b, a
		}
		paired.Sequences = append(paired.Sequences, dataset.Sequence{
			Label:  a*meta.NumLabels + b,
			Values: vals,
		})
	}
	const rate = 0.7
	encoders := []simulator.EncoderKind{simulator.EncStandard, simulator.EncAGE}
	type cellOut struct {
		nmi, accPct, majPct float64
	}
	labels := []string{"multievent/std", "multievent/age"}
	out := make([]cellOut, len(encoders))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		p, err := w.PolicyAt("linear", rate)
		if err != nil {
			return err
		}
		run, err := simulator.Run(simulator.RunConfig{
			Dataset: paired, Policy: p, Encoder: encoders[i], Cipher: cfg.Cipher,
			Rate: rate, Model: energy.Default(), Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		lbls, sizes := labelsAndSizes(run)
		acc, maj, err := attackAccuracy(run.SizesByLabel, pairMeta.NumLabels, cfg, cfg.newRNG(labels[i]))
		if err != nil {
			return err
		}
		out[i] = cellOut{nmi: stats.NMI(lbls, sizes), accPct: acc * 100, majPct: maj * 100}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &MultiEventResult{
		NMIStandard: out[0].nmi, AttackStandard: out[0].accPct,
		NMIAGE: out[1].nmi, AttackAGE: out[1].accPct,
	}
	for _, c := range out {
		if c.majPct > res.MajorityPct {
			res.MajorityPct = c.majPct
		}
	}
	return res, nil
}

func (r *MultiEventResult) String() string {
	var b strings.Builder
	b.WriteString("Multi-event batches (two events per window, Epilepsy pairs @ 70%)\n")
	fmt.Fprintf(&b, "  standard: NMI %.2f, pair-attack %.1f%% (majority %.1f%%)\n",
		r.NMIStandard, r.AttackStandard, r.MajorityPct)
	fmt.Fprintf(&b, "  age:      NMI %.2f, pair-attack %.1f%%\n", r.NMIAGE, r.AttackAGE)
	return b.String()
}

// AblationPoint is one parameter setting's aggregate error.
type AblationPoint struct {
	Value   int
	MeanMAE float64
}

// AblationResult reports a parameter sensitivity sweep.
type AblationResult struct {
	Dataset   string
	Parameter string // "G0" or "w_min"
	Points    []AblationPoint
}

// AblationG0 sweeps AGE's maximum-group floor G_0 over {4, 6, 8} (the values
// the paper reports as indistinguishable, §4.3).
func AblationG0(ctx context.Context, cfg Config, name string) (*AblationResult, error) {
	return ablate(ctx, cfg, name, "G0", []int{4, 6, 8}, func(rc *simulator.RunConfig, v int) {
		rc.MinGroups = v
	})
}

// AblationWMin sweeps the pruning width floor w_min over {3, 5, 7} (§4.2:
// smaller minimums increase quantization error).
func AblationWMin(ctx context.Context, cfg Config, name string) (*AblationResult, error) {
	return ablate(ctx, cfg, name, "w_min", []int{3, 5, 7}, func(rc *simulator.RunConfig, v int) {
		rc.MinWidth = v
	})
}

func ablate(ctx context.Context, cfg Config, name, param string, values []int, apply func(*simulator.RunConfig, int)) (*AblationResult, error) {
	ws, err := prepareWorkloads(ctx, cfg, []string{name}, false)
	if err != nil {
		return nil, err
	}
	w := ws[name]
	type cellKey struct {
		value int
		rate  float64
	}
	var keys []cellKey
	var labels []string
	for _, v := range values {
		for _, rate := range cfg.Rates {
			keys = append(keys, cellKey{v, rate})
			labels = append(labels, fmt.Sprintf("ablate-%s/%s/%d@%g", param, name, v, rate))
		}
	}
	out := make([]float64, len(keys))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		k := keys[i]
		p, err := w.PolicyAt("linear", k.rate)
		if err != nil {
			return err
		}
		rc := simulator.RunConfig{
			Dataset: w.Data, Policy: p, Encoder: simulator.EncAGE,
			Cipher: cfg.Cipher, Rate: k.rate, Model: energy.Default(), Seed: cfg.Seed,
		}
		apply(&rc, k.value)
		run, err := simulator.Run(rc)
		if err != nil {
			return err
		}
		out[i] = run.MAE
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Dataset: name, Parameter: param}
	i := 0
	for _, v := range values {
		var maes []float64
		for range cfg.Rates {
			maes = append(maes, out[i])
			i++
		}
		res.Points = append(res.Points, AblationPoint{Value: v, MeanMAE: stats.Mean(maes)})
	}
	return res, nil
}

func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: AGE %s sensitivity on %s (mean MAE across budgets)\n", r.Parameter, r.Dataset)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %s = %d: %.4f\n", r.Parameter, p.Value, p.MeanMAE)
	}
	return b.String()
}
