// Package experiments orchestrates the paper's evaluation (§5): it prepares
// workloads (datasets + per-budget fitted policies), runs the simulator
// across the budget grid, and produces the rows of every table and figure in
// the evaluation section. Each experiment has a structured result type plus
// a text renderer, shared by the agetables CLI and the benchmark harness.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/seccomm"
	"repro/internal/simulator"
)

// Config controls the evaluation scale. The defaults trade run time for
// fidelity; raising MaxSequences and AttackSamples approaches the paper's
// full setup.
type Config struct {
	// Seed drives every random choice.
	Seed int64
	// MaxSequences truncates each dataset (0 = full published size; the
	// default evaluation uses a subset for tractable sweeps).
	MaxSequences int
	// TrainSequences bounds the policy-fitting set.
	TrainSequences int
	// Rates is the budget grid (default 0.3..1.0 in steps of 0.1).
	Rates []float64
	// AttackSamples is the number of attack windows per evaluation
	// (the paper uses 10,000; the default uses fewer for speed).
	AttackSamples int
	// Permutations for the NMI significance test. The paper uses 15,000;
	// anything below ~9,700 cannot certify significance at alpha = 0.01
	// because the p-value's 95% CI half-width 1.96/(2*sqrt(n)) exceeds it.
	Permutations int
	// Cipher used in simulation runs.
	Cipher seccomm.CipherKind
	// SkipRNN training configuration.
	SkipRNN policy.SkipRNNTrainConfig
	// Workers bounds the sweep worker pool (0 = GOMAXPROCS). Results are
	// identical for any value; see runner.go for the determinism contract.
	Workers int
	// Progress, when set, is called after each completed sweep cell. Calls
	// are serialized and done is monotonic within one sweep.
	Progress func(done, total int, label string)
	// Metrics, when non-nil, receives sweep instrumentation (exp.cells_*,
	// exp.workers, exp.cell_ns) and is forwarded to simulation runs.
	// Observation-only: metrics never influence seeding, cell order, or
	// results, so the determinism contract is unaffected.
	Metrics *metrics.Registry
}

// DefaultConfig returns an evaluation sized to run the full sweep in
// minutes.
func DefaultConfig() Config {
	return Config{
		Seed:           7,
		MaxSequences:   96,
		TrainSequences: 32,
		Rates:          DefaultRates(),
		AttackSamples:  600,
		Permutations:   10000,
		Cipher:         seccomm.ChaCha20Stream,
		SkipRNN:        policy.DefaultSkipRNNTrainConfig(),
	}
}

// fitMargin is the fraction of the budget rate adaptive thresholds are
// fitted to. Fitting below the budget trades reconstruction error for fewer
// long-term budget violations; 1.0 (fit exactly to the budget) measures best
// on these workloads because the violation penalty is rare and the lost
// samples are not.
const fitMargin = 1.0

// DefaultRates returns the paper's eight budgets: 30%..100%.
func DefaultRates() []float64 {
	var rates []float64
	for r := 3; r <= 10; r++ {
		rates = append(rates, float64(r)/10)
	}
	return rates
}

// Workload bundles a dataset with its per-budget fitted policies.
type Workload struct {
	Name string
	Data *dataset.Dataset
	// Train holds the sequences used for offline policy fitting.
	Train [][][]float64
	// LinearFit and DeviationFit map a budget rate to a fitted threshold.
	LinearFit, DeviationFit map[float64]policy.FitResult

	skipOnce  sync.Once
	skipModel *policy.SkipRNNModel
	skipErr   error
	cfg       Config
}

// PrepareWorkload loads a dataset and fits the Linear and Deviation
// thresholds for every budget in the grid.
func PrepareWorkload(name string, cfg Config) (*Workload, error) {
	d, err := dataset.Load(name, dataset.Options{Seed: cfg.Seed, MaxSequences: cfg.MaxSequences})
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: name, Data: d, cfg: cfg,
		LinearFit:    map[float64]policy.FitResult{},
		DeviationFit: map[float64]policy.FitResult{},
	}
	n := cfg.TrainSequences
	if n <= 0 || n > len(d.Sequences) {
		n = len(d.Sequences)
	}
	for _, s := range d.Sequences[:n] {
		w.Train = append(w.Train, s.Values)
	}
	for _, rate := range cfg.Rates {
		// Fit slightly below the budget rate: the threshold is tuned on
		// a training subset, so an exact fit would overshoot the
		// long-term budget about half the time. Deployed sensors leave
		// the same safety margin (§2.1's long-term budgets).
		target := rate * fitMargin
		lf, err := policy.Fit(policy.KindLinear, w.Train, target)
		if err != nil {
			return nil, fmt.Errorf("experiments: fitting linear on %s: %w", name, err)
		}
		w.LinearFit[key(rate)] = lf
		df, err := policy.Fit(policy.KindDeviation, w.Train, target)
		if err != nil {
			return nil, fmt.Errorf("experiments: fitting deviation on %s: %w", name, err)
		}
		w.DeviationFit[key(rate)] = df
	}
	return w, nil
}

// key canonicalizes a rate for map lookup.
func key(rate float64) float64 { return math.Round(rate*10) / 10 }

// PolicyAt returns the named policy fitted for the given budget rate.
func (w *Workload) PolicyAt(kind string, rate float64) (policy.Policy, error) {
	switch kind {
	case "uniform":
		return policy.NewUniform(rate), nil
	case "random":
		return policy.NewRandom(rate), nil
	case "linear":
		fit, ok := w.LinearFit[key(rate)]
		if !ok {
			return nil, fmt.Errorf("experiments: no linear fit at rate %g", rate)
		}
		return policy.NewLinear(fit.Threshold), nil
	case "deviation":
		fit, ok := w.DeviationFit[key(rate)]
		if !ok {
			return nil, fmt.Errorf("experiments: no deviation fit at rate %g", rate)
		}
		return policy.NewDeviation(fit.Threshold), nil
	case "skiprnn":
		model, err := w.SkipModel()
		if err != nil {
			return nil, err
		}
		p, _ := model.FitBias(w.Train, rate)
		return p, nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", kind)
	}
}

// SkipModel lazily trains the workload's Skip RNN. Training runs at most
// once even when sweep workers race to the first call.
func (w *Workload) SkipModel() (*policy.SkipRNNModel, error) {
	w.skipOnce.Do(func() {
		w.skipModel, w.skipErr = policy.TrainSkipRNN(w.Train, w.cfg.SkipRNN)
	})
	return w.skipModel, w.skipErr
}

// RunCell executes one (policy, encoder, rate) simulation on the workload.
func (w *Workload) RunCell(policyKind string, enc simulator.EncoderKind, rate float64, mode simulator.Mode) (*simulator.RunResult, error) {
	p, err := w.PolicyAt(policyKind, rate)
	if err != nil {
		return nil, err
	}
	return simulator.Run(simulator.RunConfig{
		Dataset: w.Data,
		Policy:  p,
		Encoder: enc,
		Cipher:  w.cfg.Cipher,
		Rate:    rate,
		Model:   energy.Default(),
		Mode:    mode,
		Seed:    w.cfg.Seed,
		Metrics: w.cfg.Metrics,
	})
}

// labelsAndSizes flattens a run's per-label size observations into paired
// slices for NMI computation.
func labelsAndSizes(res *simulator.RunResult) (labels, sizes []int) {
	var keys []int
	for l := range res.SizesByLabel {
		keys = append(keys, l)
	}
	sort.Ints(keys)
	for _, l := range keys {
		for _, s := range res.SizesByLabel[l] {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	return labels, sizes
}

// newRNG derives a deterministic rand from the config seed and a purpose
// tag, so experiments are independent of each other's draw order.
func (c Config) newRNG(tag string) *rand.Rand {
	h := int64(1469598103934665603)
	for i := 0; i < len(tag); i++ {
		h ^= int64(tag[i])
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(c.Seed ^ h))
}
