package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestInferenceUtility(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxSequences = 64
	cfg.TrainSequences = 32
	res, err := InferenceUtility(context.Background(), cfg, "epilepsy", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw < 0.7 {
		t.Errorf("raw event detection %.2f too weak to compare pipelines", res.Raw)
	}
	// AGE's reconstructions must preserve most of the detection accuracy.
	if res.Pipeline["linear-age"] < res.Raw-0.25 {
		t.Errorf("AGE pipeline accuracy %.2f far below raw %.2f", res.Pipeline["linear-age"], res.Raw)
	}
	// And stay close to the unprotected pipeline.
	if res.Pipeline["linear-age"] < res.Pipeline["linear-std"]-0.15 {
		t.Errorf("AGE pipeline %.2f well below standard %.2f",
			res.Pipeline["linear-age"], res.Pipeline["linear-std"])
	}
	if !strings.Contains(res.String(), "utility") {
		t.Error("render missing title")
	}
}

func TestMultiEvent(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxSequences = 64
	res, err := MultiEvent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NMIStandard <= 0 {
		t.Error("multi-event batches show no leakage under Standard encoding")
	}
	if res.NMIAGE != 0 {
		t.Errorf("AGE NMI = %g on multi-event batches, want 0", res.NMIAGE)
	}
	if res.AttackStandard <= res.MajorityPct {
		t.Errorf("pair attack %.1f%% not above majority %.1f%%", res.AttackStandard, res.MajorityPct)
	}
	if res.AttackAGE > res.MajorityPct+10 {
		t.Errorf("AGE pair attack %.1f%% well above majority %.1f%%", res.AttackAGE, res.MajorityPct)
	}
	if !strings.Contains(res.String(), "Multi-event") {
		t.Error("render missing title")
	}
}

func TestAblationG0Insensitive(t *testing.T) {
	cfg := tinyConfig()
	res, err := AblationG0(context.Background(), cfg, "epilepsy")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The paper's claim: performance is not sensitive across G0 = 4, 6, 8.
	lo, hi := res.Points[0].MeanMAE, res.Points[0].MeanMAE
	for _, p := range res.Points {
		if p.MeanMAE < lo {
			lo = p.MeanMAE
		}
		if p.MeanMAE > hi {
			hi = p.MeanMAE
		}
	}
	if hi > lo*1.10 {
		t.Errorf("G0 sweep varies %.1f%%; paper reports insensitivity", 100*(hi-lo)/lo)
	}
	if !strings.Contains(res.String(), "G0") {
		t.Error("render missing parameter")
	}
}

func TestAblationWMin(t *testing.T) {
	cfg := tinyConfig()
	res, err := AblationWMin(context.Background(), cfg, "epilepsy")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.MeanMAE <= 0 {
			t.Errorf("w_min=%d gave MAE %g", p.Value, p.MeanMAE)
		}
	}
}

func TestCompressionLeakage(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxSequences = 48
	res, err := CompressionLeakage(context.Background(), cfg, "epilepsy")
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanRatio >= 1 {
		t.Errorf("compression ratio %.2f did not shrink the data", res.MeanRatio)
	}
	if res.NMI <= 0 {
		t.Error("compressed sizes show no leakage; the §7 warning would be empty")
	}
	if res.AttackPct <= res.MajorityPct {
		t.Errorf("attack %.1f%% not above majority %.1f%% on compressed sizes",
			res.AttackPct, res.MajorityPct)
	}
	if !strings.Contains(res.String(), "Compression") {
		t.Error("render missing title")
	}
}

func TestBufferedDefense(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxSequences = 48
	res, err := BufferedDefense(context.Background(), cfg, "epilepsy")
	if err != nil {
		t.Fatal(err)
	}
	// The defense must exhibit its §7 cost: nonzero latency.
	if res.MeanLatency <= 0 {
		t.Error("buffering showed no latency; over-sampling windows should queue")
	}
	if res.MAE <= 0 || res.AGEMae <= 0 {
		t.Errorf("errors: buffered %g age %g", res.MAE, res.AGEMae)
	}
	if !strings.Contains(res.String(), "Buffering") {
		t.Error("render missing title")
	}
}
