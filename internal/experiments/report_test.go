package experiments

import (
	"math"
	"strings"
	"testing"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// syntheticSweep builds a small hand-authored sweep for reducer tests.
func syntheticSweep() *ErrorSweep {
	sweep := &ErrorSweep{
		Datasets: []string{"toy"},
		Rates:    []float64{0.5, 1.0},
		Cells:    map[string]map[string][]ErrorCell{"toy": {}},
	}
	// Uniform: MAE 1.0 at both budgets. Columns scale it.
	mk := func(scale float64) []ErrorCell {
		return []ErrorCell{
			{MAE: scale, WeightedMAE: 2 * scale},
			{MAE: scale / 2, WeightedMAE: scale},
		}
	}
	sweep.Cells["toy"]["uniform"] = mk(1.0)
	sweep.Cells["toy"]["linear-std"] = mk(0.8)
	sweep.Cells["toy"]["linear-padded"] = mk(3.0)
	sweep.Cells["toy"]["linear-age"] = mk(0.9)
	sweep.Cells["toy"]["deviation-std"] = mk(0.7)
	sweep.Cells["toy"]["deviation-padded"] = mk(3.5)
	sweep.Cells["toy"]["deviation-age"] = mk(0.75)
	return sweep
}

func TestReduceTable45(t *testing.T) {
	res := reduceTable45(syntheticSweep())
	// Mean across the two budgets of column scale s is (s + s/2)/2 = 0.75s.
	if got := res.MeanMAE["toy"]["linear-std"]; !near(got, 0.6) {
		t.Errorf("mean linear-std = %g, want 0.6", got)
	}
	// Percent vs uniform is scale-1 at every budget; median = that.
	if got := res.OverallPct["linear-std"]; !near(got, -20) {
		t.Errorf("overall linear-std = %g%%, want -20", got)
	}
	if got := res.OverallPct["linear-padded"]; !near(got, 200) {
		t.Errorf("overall linear-padded = %g%%, want +200", got)
	}
	if got := res.OverallPctWeighted["deviation-age"]; !near(got, -25) {
		t.Errorf("overall weighted deviation-age = %g%%, want -25", got)
	}
	// Renders include the dataset and all columns.
	out := res.Table4String()
	for _, col := range ErrorColumns {
		if !strings.Contains(out, col) {
			t.Errorf("table 4 render missing column %s", col)
		}
	}
}

func TestColumnSpec(t *testing.T) {
	for _, col := range ErrorColumns {
		pk, enc := columnSpec(col)
		if pk == "" || enc == "" {
			t.Errorf("columnSpec(%s) = %q, %q", col, pk, enc)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown column did not panic")
		}
	}()
	columnSpec("bogus")
}

func TestAttackAccuracySingleLabel(t *testing.T) {
	cfg := tinyConfig()
	rng := cfg.newRNG("test")
	// One observable event: the attacker degenerates to the majority.
	acc, maj, err := attackAccuracy(map[int][]int{0: {100, 100}}, 4, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 || maj != 1 {
		t.Errorf("single-label attack = %g, %g; want 1, 1", acc, maj)
	}
}

func TestNewRNGDistinctTags(t *testing.T) {
	cfg := tinyConfig()
	a := cfg.newRNG("alpha").Int63()
	b := cfg.newRNG("beta").Int63()
	if a == b {
		t.Error("different tags produced identical streams")
	}
	c := cfg.newRNG("alpha").Int63()
	if a != c {
		t.Error("same tag not deterministic")
	}
}

func TestDefaultRates(t *testing.T) {
	rates := DefaultRates()
	if len(rates) != 8 || rates[0] != 0.3 || rates[7] != 1.0 {
		t.Errorf("rates = %v", rates)
	}
}
