package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/energy"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// This file evaluates the *timing* side-channel of the live ingest link and
// the frame-release pacer that closes it — the attack/defense pair the size
// tables cannot see. AGE fixes every frame's size, but a sensor that
// transmits whenever its adaptive policy has a batch ready modulates
// inter-frame gaps with the collection rate; the timing sweep mounts the
// AdaBoost attacker on gaps tapped from real loopback links, quantifies
// leakage with NMI and the paper's permutation test, and prices the defense
// in age of information and goodput.
//
// Unlike the size tables, timing cells measure real clocks, so results are
// statistically — not byte-for-byte — reproducible; fixed seeds pin the
// schedule, sampling, and attacker, while the OS scheduler contributes
// bounded noise. The modes run sequentially (never inside the parallel
// sweep pool) so one cell's load cannot distort another's gaps.

// TimingConfig shapes the timing attack/defense evaluation.
type TimingConfig struct {
	// Sensors is the fleet size behind one ingest server.
	Sensors int
	// Interval is the paced release period; it should sit near the mean
	// data-driven gap (shorter buys freshness with more dummy traffic).
	Interval time.Duration
	// JitterFrac perturbs PaceJitter release slots.
	JitterFrac float64
	// BaseGap and PerSample model the data-driven generation schedule: a
	// batch of k collected samples leaves BaseGap + PerSample×k after its
	// predecessor. PerSample is the lever that couples timing to the event.
	BaseGap   time.Duration
	PerSample time.Duration
	// Bins discretizes gaps for the NMI/permutation machinery.
	Bins int
}

// DefaultTimingConfig returns a configuration sized so data-driven gaps
// dominate loopback scheduling noise while a full three-mode evaluation
// stays under a few seconds.
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{
		Sensors:    4,
		Interval:   4 * time.Millisecond,
		JitterFrac: 0.3,
		BaseGap:    500 * time.Microsecond,
		PerSample:  25 * time.Microsecond,
		Bins:       8,
	}
}

// TimingModeResult is one row of the timing table: the attack mounted on
// one release discipline, plus the defense's cost on that link.
type TimingModeResult struct {
	// Mode names the release discipline ("live", "constant", "jitter").
	Mode string
	// AttackAccuracy is the AdaBoost attacker's cross-validated accuracy on
	// timing features alone; Majority is the no-information baseline.
	AttackAccuracy float64
	Majority       float64
	// NMI is the normalized mutual information between event labels and
	// binned inter-frame gaps; PValue and its CI come from the permutation
	// test; Significant applies the paper's criterion (CIHigh < 0.01).
	NMI         float64
	PValue      float64
	CILow       float64
	CIHigh      float64
	Significant bool
	// MeanAoIMicros / MaxAoIMicros price the schedule in freshness: the
	// age of each real frame when it finally left the sensor.
	MeanAoIMicros float64
	MaxAoIMicros  int64
	// RealFrames and DummyFrames count the wire traffic; GoodputPct is the
	// real fraction of it.
	RealFrames  int
	DummyFrames int
	GoodputPct  float64
}

// TimingResult is the timing side-channel table for one dataset and budget.
type TimingResult struct {
	Dataset  string
	Rate     float64
	Sensors  int
	Interval time.Duration
	Modes    []TimingModeResult
}

// Mode returns the named row, or nil.
func (r *TimingResult) Mode(name string) *TimingModeResult {
	for i := range r.Modes {
		if r.Modes[i].Mode == name {
			return &r.Modes[i]
		}
	}
	return nil
}

// TimingLeakage mounts the timing attack on three live links — undefended
// (PaceLive), constant-rate paced, and jitter paced — and returns the
// attack/defense table. The undefended link is expected to leak (accuracy
// well above Majority, permutation test significant); the paced links are
// expected not to.
func TimingLeakage(ctx context.Context, cfg Config, tcfg TimingConfig, name string, rate float64) (*TimingResult, error) {
	if tcfg.Sensors <= 0 || tcfg.Interval <= 0 || tcfg.Bins < 2 {
		return nil, fmt.Errorf("experiments: timing config needs Sensors > 0, Interval > 0, Bins >= 2")
	}
	w, err := PrepareWorkload(name, cfg)
	if err != nil {
		return nil, err
	}
	p, err := w.PolicyAt("linear", rate)
	if err != nil {
		return nil, err
	}
	res := &TimingResult{Dataset: name, Rate: rate, Sensors: tcfg.Sensors, Interval: tcfg.Interval}
	modes := []struct {
		name   string
		pacing simulator.FleetPacing
	}{
		{"live", simulator.FleetPacing{Mode: simulator.PaceLive}},
		{"constant", simulator.FleetPacing{Mode: simulator.PaceConstant, Interval: tcfg.Interval}},
		{"jitter", simulator.FleetPacing{Mode: simulator.PaceJitter, Interval: tcfg.Interval, JitterFrac: tcfg.JitterFrac}},
	}
	for _, m := range modes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tap := attack.NewTimingTap()
		pacing := m.pacing
		pacing.BaseGap = tcfg.BaseGap
		pacing.PerSample = tcfg.PerSample
		pacing.Observer = tap.Observe
		fleet, err := simulator.RunFleetContext(ctx, simulator.FleetConfig{
			Base: simulator.RunConfig{
				Dataset: w.Data, Policy: p, Encoder: simulator.EncAGE,
				Cipher: cfg.Cipher, Rate: rate, Model: energy.Default(),
				Seed: cfg.Seed,
			},
			Sensors: tcfg.Sensors,
			Pacing:  pacing,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: timing fleet (%s): %w", m.name, err)
		}
		if fleet.Failed > 0 {
			return nil, fmt.Errorf("experiments: timing fleet (%s): %d sensors failed", m.name, fleet.Failed)
		}
		row, err := scoreTimingRun(cfg, tcfg, m.name, tap, fleet)
		if err != nil {
			return nil, err
		}
		res.Modes = append(res.Modes, *row)
	}
	return res, nil
}

// scoreTimingRun turns one run's tapped gaps into a table row: attacker
// accuracy, NMI + permutation test, and the schedule's AoI/goodput cost.
func scoreTimingRun(cfg Config, tcfg TimingConfig, mode string, tap *attack.TimingTap, fleet *simulator.FleetResult) (*TimingModeResult, error) {
	gaps := tap.GapsByLabel()
	samples, err := attack.BuildTimingSamples(gaps, cfg.AttackSamples, cfg.newRNG("timing/samples/"+mode))
	if err != nil {
		return nil, fmt.Errorf("experiments: timing samples (%s): %w", mode, err)
	}
	labels, bins, err := attack.QuantizeGaps(gaps, tcfg.Bins)
	if err != nil {
		return nil, fmt.Errorf("experiments: timing bins (%s): %w", mode, err)
	}
	// QuantizeGaps emits labels in ascending order, so the class count is
	// the last label + 1 — no order-sensitive map walk needed.
	numClasses := labels[len(labels)-1] + 1
	cv, err := attack.CrossValidate(samples, numClasses, 5, attack.DefaultAdaBoostConfig(), cfg.newRNG("timing/cv/"+mode))
	if err != nil {
		return nil, fmt.Errorf("experiments: timing attack (%s): %w", mode, err)
	}
	perm := stats.PermutationTestNMI(labels, bins, cfg.Permutations, cfg.newRNG("timing/perm/"+mode))
	row := &TimingModeResult{
		Mode:           mode,
		AttackAccuracy: cv.MeanAccuracy,
		Majority:       cv.Majority,
		NMI:            perm.Observed,
		PValue:         perm.PValue,
		CILow:          perm.CILow,
		CIHigh:         perm.CIHigh,
		Significant:    perm.Significant(0.01),
		MeanAoIMicros:  fleet.MeanAoIMicros(),
		MaxAoIMicros:   fleet.AoIMicrosMax,
		RealFrames:     fleet.RealFramesSent,
		DummyFrames:    fleet.DummyFrames,
	}
	if total := row.RealFrames + row.DummyFrames; total > 0 {
		row.GoodputPct = 100 * float64(row.RealFrames) / float64(total)
	}
	return row, nil
}

// String renders the timing table.
func (r *TimingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Timing side-channel (%s @ %.0f%% budget, %d sensors, interval %s)\n",
		r.Dataset, r.Rate*100, r.Sensors, r.Interval)
	fmt.Fprintf(&b, "  %-9s %9s %9s %7s %9s %6s %11s %9s %8s\n",
		"mode", "attack", "majority", "NMI", "p-value", "leak?", "meanAoI(ms)", "goodput%", "dummies")
	for _, m := range r.Modes {
		leak := "no"
		if m.Significant {
			leak = "YES"
		}
		fmt.Fprintf(&b, "  %-9s %9.3f %9.3f %7.3f %9.5f %6s %11.2f %9.1f %8d\n",
			m.Mode, m.AttackAccuracy, m.Majority, m.NMI, m.PValue, leak,
			m.MeanAoIMicros/1000, m.GoodputPct, m.DummyFrames)
	}
	return b.String()
}
