package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/seccomm"
)

// tinyConfig is a fast configuration for integration tests: two datasets'
// worth of work in well under a second each.
func tinyConfig() Config {
	return Config{
		Seed:           5,
		MaxSequences:   32,
		TrainSequences: 16,
		Rates:          []float64{0.4, 0.7},
		AttackSamples:  200,
		Permutations:   300,
		Cipher:         seccomm.ChaCha20Stream,
		SkipRNN:        policy.SkipRNNTrainConfig{Hidden: 6, Epochs: 1, GateEpochs: 1, Seed: 1},
	}
}

func TestPrepareWorkload(t *testing.T) {
	w, err := PrepareWorkload("epilepsy", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Train) != 16 {
		t.Errorf("train size %d", len(w.Train))
	}
	for _, rate := range []float64{0.4, 0.7} {
		if _, ok := w.LinearFit[key(rate)]; !ok {
			t.Errorf("missing linear fit at %g", rate)
		}
		if _, ok := w.DeviationFit[key(rate)]; !ok {
			t.Errorf("missing deviation fit at %g", rate)
		}
	}
	if _, err := w.PolicyAt("uniform", 0.4); err != nil {
		t.Error(err)
	}
	if _, err := w.PolicyAt("linear", 0.4); err != nil {
		t.Error(err)
	}
	if _, err := w.PolicyAt("linear", 0.9); err == nil {
		t.Error("unfitted rate accepted")
	}
	if _, err := w.PolicyAt("mystery", 0.4); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	cfg := tinyConfig()
	res, err := Table1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 4 {
		t.Fatalf("events = %v", res.Events)
	}
	for _, p := range res.Policies {
		statsRow, ok := res.Stats[p]
		if !ok || len(statsRow) != 4 {
			t.Fatalf("missing stats for %s", p)
		}
		// Adaptive policies must show different mean sizes per event
		// (the leak).
		allEqual := true
		for _, s := range statsRow[1:] {
			if s.Mean != statsRow[0].Mean {
				allEqual = false
			}
		}
		if allEqual {
			t.Errorf("%s: identical size means across events; no leak to demonstrate", p)
		}
	}
	if !strings.Contains(res.String(), "Seizure") {
		t.Error("render missing event names")
	}
}

func TestTable45SmallSweep(t *testing.T) {
	cfg := tinyConfig()
	res, err := Table45(context.Background(), cfg, []string{"epilepsy"})
	if err != nil {
		t.Fatal(err)
	}
	m := res.MeanMAE["epilepsy"]
	// Padded must be the worst defense under tight budgets.
	if m["linear-padded"] <= m["linear-age"] {
		t.Errorf("padded MAE %g not above AGE %g", m["linear-padded"], m["linear-age"])
	}
	// AGE stays close to the standard adaptive policy.
	if m["linear-age"] > m["linear-std"]*1.6 {
		t.Errorf("AGE MAE %g too far above standard %g", m["linear-age"], m["linear-std"])
	}
	out := res.Table4String()
	if !strings.Contains(out, "epilepsy") || !strings.Contains(out, "Overall") {
		t.Errorf("render missing rows:\n%s", out)
	}
	if !strings.Contains(res.Table5String(), "weighted") {
		t.Error("table 5 render missing title")
	}
}

func TestTable6SmallSweep(t *testing.T) {
	cfg := tinyConfig()
	res, err := Table6(context.Background(), cfg, []string{"epilepsy"})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells["epilepsy"]
	if c["linear-standard"].Max <= 0 {
		t.Error("standard policy shows zero NMI; expected leakage")
	}
	if c["linear-age"].Max != 0 || c["linear-padded"].Max != 0 {
		t.Errorf("fixed-size encoders show NMI: age %g padded %g",
			c["linear-age"].Max, c["linear-padded"].Max)
	}
	if !strings.Contains(res.String(), "epilepsy") {
		t.Error("render missing dataset")
	}
}

func TestTable8SmallSweep(t *testing.T) {
	cfg := tinyConfig()
	res, err := Table8(context.Background(), cfg, []string{"epilepsy"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"single", "unshifted", "pruned"} {
		if _, ok := res.Pct[v]["linear"]; !ok {
			t.Errorf("missing %s/linear", v)
		}
	}
	// Pruned should be clearly worse than AGE.
	if res.Pct["pruned"]["linear"] <= 0 {
		t.Errorf("pruned not worse than AGE: %g%%", res.Pct["pruned"]["linear"])
	}
	if !strings.Contains(res.String(), "pruned") {
		t.Error("render missing variant")
	}
}

func TestTableMCU(t *testing.T) {
	cfg := tinyConfig()
	res, err := TableMCU(context.Background(), cfg, "tiselac")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(MCURowOrder) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if len(res.BudgetsMJ) != 3 {
		t.Fatalf("budgets = %v", res.BudgetsMJ)
	}
	// Find the rows.
	byName := map[string]MCURow{}
	for _, r := range res.Rows {
		byName[r.Policy] = r
	}
	// AGE must use less energy than Padded at every budget.
	for i := range res.Rates {
		if byName["linear-age"].EnergyMJ[i] >= byName["linear-padded"].EnergyMJ[i] {
			t.Errorf("budget %d: AGE energy %g not below padded %g", i,
				byName["linear-age"].EnergyMJ[i], byName["linear-padded"].EnergyMJ[i])
		}
	}
	if !strings.Contains(res.Table9String(), "tiselac") || !strings.Contains(res.Table10String(), "tiselac") {
		t.Error("MCU renders missing dataset")
	}
}

func TestFigure1(t *testing.T) {
	res, err := Figure1(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	walking := res.Cases["walking"]["adaptive"]
	running := res.Cases["running"]["adaptive"]
	if walking.Collected >= running.Collected {
		t.Errorf("adaptive collected %d walking vs %d running; should over-sample running",
			walking.Collected, running.Collected)
	}
	if res.TotalErrorAdaptive >= res.TotalErrorRandom {
		t.Errorf("adaptive total error %g not below random %g",
			res.TotalErrorAdaptive, res.TotalErrorRandom)
	}
	if !strings.Contains(res.String(), "running") {
		t.Error("render missing series")
	}
}

func TestFigure5(t *testing.T) {
	res, err := Figure5(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Error decreases with budget for uniform.
	if res.Points[1].MAE["uniform"] > res.Points[0].MAE["uniform"] {
		t.Errorf("uniform MAE rose with budget: %g -> %g",
			res.Points[0].MAE["uniform"], res.Points[1].MAE["uniform"])
	}
	if res.Points[1].PerSeqMJ <= res.Points[0].PerSeqMJ {
		t.Error("budget energy not increasing with rate")
	}
	if !strings.Contains(res.String(), "Activity") {
		t.Error("render missing title")
	}
}

func TestFigure6(t *testing.T) {
	res, err := Figure6(context.Background(), tinyConfig(), []string{"epilepsy"})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells["epilepsy"]
	if c["linear-std"].Median <= c["linear-age"].Median {
		t.Errorf("attack on std (%g%%) not above AGE (%g%%)",
			c["linear-std"].Median, c["linear-age"].Median)
	}
	// AGE accuracy collapses to the majority baseline (within noise).
	if c["linear-age"].Max > c["linear-age"].MajorityPct+10 {
		t.Errorf("AGE attack %g%% well above majority %g%%",
			c["linear-age"].Max, c["linear-age"].MajorityPct)
	}
	if !strings.Contains(res.String(), "epilepsy") {
		t.Error("render missing dataset")
	}
}

func TestFigure7(t *testing.T) {
	res, err := Figure7(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	std, age := res.Confusion["std"], res.Confusion["age"]
	// Standard: seizure recall should be high.
	if std[0][0] == 0 {
		t.Error("standard policy: no seizures detected; expected leak")
	}
	// AGE: no seizure predictions at all (all collapse to majority).
	if age[0][0]+age[1][0] != 0 {
		t.Errorf("AGE: %d seizure predictions; expected none", age[0][0]+age[1][0])
	}
	if res.Accuracy["std"] <= res.Accuracy["age"] {
		t.Errorf("std attack accuracy %g not above AGE %g", res.Accuracy["std"], res.Accuracy["age"])
	}
	if !strings.Contains(res.String(), "seizure") {
		t.Error("render missing matrix")
	}
}

func TestSec58(t *testing.T) {
	res, err := Sec58(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.EncodeAGEMJ <= res.EncodeStandardMJ {
		t.Error("AGE encode energy not above standard")
	}
	if res.CommSavedMJ <= res.EncodeAGEMJ {
		t.Errorf("comm saving %g does not eclipse AGE encode cost %g — the §4.5 argument fails",
			res.CommSavedMJ, res.EncodeAGEMJ)
	}
	if res.ReductionBytes < 30 {
		t.Errorf("reduction = %dB, want >= 30", res.ReductionBytes)
	}
	if !strings.Contains(res.String(), "overhead") {
		t.Error("render missing title")
	}
}

func TestTable7SingleDataset(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Table7(context.Background(), cfg, []string{"epilepsy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.NMIAGE != 0 {
		t.Errorf("Skip RNN with AGE NMI = %g, want 0", r.NMIAGE)
	}
	if r.MAEStd <= 0 || r.MAEAGE <= 0 {
		t.Errorf("MAEs: std %g age %g", r.MAEStd, r.MAEAGE)
	}
	if !strings.Contains(Table7String(rows), "epilepsy") {
		t.Error("render missing dataset")
	}
}
