package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fixedpoint"
	"repro/internal/reconstruct"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// This file quantifies §7's discussion points. CompressionLeakage shows
// that lossless compression leaks event information through message sizes
// even under a non-adaptive (Uniform, collect-everything) policy — the
// CRIME/BREACH phenomenon on sensor data. BufferedDefense measures the
// alternative defense the paper rejects: buffering excess measurements for
// same-sized lossless messages, at the cost of reporting latency and,
// under bounded memory, dropped measurements.

// CompressionResult reports the compression side-channel on one dataset.
type CompressionResult struct {
	Dataset string
	// NMI between event label and compressed size under a non-adaptive,
	// collect-everything policy.
	NMI float64
	// Attack accuracy on compressed sizes vs the majority baseline (%).
	AttackPct, MajorityPct float64
	// MeanRatio is the mean compressed/raw size — the bandwidth win that
	// tempts deployments into this leak.
	MeanRatio float64
}

// CompressionLeakage compresses every fully collected sequence of a dataset
// and attacks the resulting sizes. Per-sequence compression runs as parallel
// cells; the size lists are assembled in sequence order, so the NMI and
// attack results match the original sequential implementation exactly.
func CompressionLeakage(ctx context.Context, cfg Config, name string) (*CompressionResult, error) {
	d, err := dataset.Load(name, dataset.Options{Seed: cfg.Seed, MaxSequences: cfg.MaxSequences})
	if err != nil {
		return nil, err
	}
	type cellOut struct {
		size  int
		ratio float64
	}
	cellLabels := make([]string, len(d.Sequences))
	for i := range d.Sequences {
		cellLabels[i] = fmt.Sprintf("compress/%s/%d", name, i)
	}
	out := make([]cellOut, len(d.Sequences))
	err = cfg.sweep(ctx, cellLabels, func(ctx context.Context, i int) error {
		s := d.Sequences[i]
		raw := make([][]int32, len(s.Values))
		for j, row := range s.Values {
			raw[j] = make([]int32, len(row))
			for f, v := range row {
				raw[j][f] = fixedpoint.FromFloat(v, d.Meta.Format).Raw
			}
		}
		payload, err := compress.Compress(raw)
		if err != nil {
			return err
		}
		rawBytes := len(raw) * d.Meta.NumFeatures * d.Meta.Format.Width / 8
		out[i] = cellOut{size: len(payload), ratio: float64(len(payload)) / float64(rawBytes)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &CompressionResult{Dataset: name}
	sizesByLabel := map[int][]int{}
	var labels, sizes []int
	var ratioSum float64
	for i, s := range d.Sequences {
		ratioSum += out[i].ratio
		sizesByLabel[s.Label] = append(sizesByLabel[s.Label], out[i].size)
		labels = append(labels, s.Label)
		sizes = append(sizes, out[i].size)
	}
	res.NMI = stats.NMI(labels, sizes)
	res.MeanRatio = ratioSum / float64(len(d.Sequences))
	rng := cfg.newRNG("compression-" + name)
	acc, maj, err := attackAccuracy(sizesByLabel, d.Meta.NumLabels, cfg, rng)
	if err != nil {
		return nil, err
	}
	res.AttackPct, res.MajorityPct = acc*100, maj*100
	return res, nil
}

func (r *CompressionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compression side-channel (%s, Uniform collect-everything policy)\n", r.Dataset)
	fmt.Fprintf(&b, "  mean compressed/raw size: %.2f (the bandwidth win)\n", r.MeanRatio)
	fmt.Fprintf(&b, "  NMI(size, event) = %.2f; attack %.1f%% vs majority %.1f%%\n",
		r.NMI, r.AttackPct, r.MajorityPct)
	b.WriteString("  -> lossless compression leaks even without adaptive sampling (§7)\n")
	return b.String()
}

// BufferedResult reports the buffering defense's costs on one workload.
type BufferedResult struct {
	Dataset string
	Rate    float64
	// Latency in windows (each window is Delta_T seconds of sensing).
	MeanLatency, MaxLatency float64
	// DropFrac is the fraction of collected measurements lost to the
	// memory bound.
	DropFrac float64
	// MAE of reconstruction from delivered measurements, vs AGE's MAE at
	// the same budget and message size.
	MAE, AGEMae float64
	// ExtraWindows is how many empty windows past the end of the data the
	// sensor needed to drain its backlog.
	ExtraWindows int
}

// BufferedDefense runs the Linear policy's batches through the buffering
// encoder with an 8 KiB-class memory bound and measures latency, drops, and
// the resulting reconstruction error, next to AGE under the same budget. The
// window pipeline is inherently stateful (the buffer carries measurements
// across windows), so it stays sequential; ctx is honored between windows.
func BufferedDefense(ctx context.Context, cfg Config, name string) (*BufferedResult, error) {
	const rate = 0.7
	ws, err := prepareWorkloads(ctx, cfg, []string{name}, false)
	if err != nil {
		return nil, err
	}
	w := ws[name]
	meta := w.Data.Meta
	pol, err := w.PolicyAt("linear", rate)
	if err != nil {
		return nil, err
	}
	coreCfg := core.Config{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format,
		TargetBytes: core.TargetBytesForRate(rate, meta.SeqLen, meta.NumFeatures, meta.Format.Width),
	}
	buf, err := core.NewBuffered(coreCfg, bufferLimitFor(coreCfg))
	if err != nil {
		return nil, err
	}
	rng := cfg.newRNG("buffered-" + name)
	// deliveredBy[windowIdx] accumulates measurements for that source
	// window, possibly arriving several windows late.
	deliveredBy := make(map[int][]core.BufferedMeasurement)
	window := 0
	receive := func(msg []byte) error {
		ms, err := core.DecodeBuffered(msg, coreCfg)
		if err != nil {
			return err
		}
		for _, m := range ms {
			src := window - m.WindowAge
			deliveredBy[src] = append(deliveredBy[src], m)
		}
		return nil
	}
	for _, seq := range w.Data.Sequences {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx := pol.Sample(seq.Values, rng)
		vals := make([][]float64, len(idx))
		for i, t := range idx {
			vals[i] = seq.Values[t]
		}
		msg, err := buf.Push(core.Batch{Indices: idx, Values: vals})
		if err != nil {
			return nil, err
		}
		if err := receive(msg); err != nil {
			return nil, err
		}
		window++
	}
	// Drain the backlog with empty windows (extra latency the paper's
	// periodic schedule would also pay).
	extra := 0
	for buf.Pending() > 0 {
		msg, err := buf.Push(core.Batch{})
		if err != nil {
			return nil, err
		}
		if err := receive(msg); err != nil {
			return nil, err
		}
		window++
		extra++
	}
	res := &BufferedResult{
		Dataset: name, Rate: rate,
		MeanLatency: buf.MeanLatency(), MaxLatency: float64(buf.MaxLatency),
		ExtraWindows: extra,
	}
	if total := buf.Sent + buf.Dropped; total > 0 {
		res.DropFrac = float64(buf.Dropped) / float64(total)
	}
	var acc reconstruct.Accumulator
	for wi, seq := range w.Data.Sequences {
		ms := deliveredBy[wi]
		// Reassemble in index order (they arrive oldest-window first
		// but already sorted within a window).
		idx := make([]int, 0, len(ms))
		vals := make([][]float64, 0, len(ms))
		for _, m := range ms {
			idx = append(idx, m.Index)
			vals = append(vals, m.Values)
		}
		sortByIndex(idx, vals)
		recon, err := reconstruct.Linear(idx, vals, meta.SeqLen, meta.NumFeatures)
		if err != nil {
			return nil, err
		}
		mae, err := reconstruct.MAE(recon, seq.Values)
		if err != nil {
			return nil, err
		}
		acc.Add(mae, 1)
	}
	res.MAE = acc.MAE()

	ageRun, err := w.RunCell("linear", simulator.EncAGE, rate, simulator.ModeSimulation)
	if err != nil {
		return nil, err
	}
	res.AGEMae = ageRun.MAE
	return res, nil
}

// bufferLimitFor sizes the sensor's measurement queue to an 8 KiB SRAM
// budget: each queued measurement holds d float-width values plus metadata.
func bufferLimitFor(cfg core.Config) int {
	bytesPer := cfg.D*4 + 8
	limit := 8192 / bytesPer
	if limit < 1 {
		limit = 1
	}
	return limit
}

// sortByIndex sorts parallel slices by index (insertion sort; deliveries are
// nearly ordered already).
func sortByIndex(idx []int, vals [][]float64) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
}

func (r *BufferedResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Buffering defense (%s, Linear @ %.0f%% budget, 8KiB queue)\n", r.Dataset, r.Rate*100)
	fmt.Fprintf(&b, "  latency: mean %.2f windows, max %.0f; %d extra drain windows\n",
		r.MeanLatency, r.MaxLatency, r.ExtraWindows)
	fmt.Fprintf(&b, "  dropped measurements: %.1f%%\n", r.DropFrac*100)
	fmt.Fprintf(&b, "  reconstruction MAE: buffered %.4f vs AGE %.4f\n", r.MAE, r.AGEMae)
	b.WriteString("  -> same-sized messages, but at a latency/memory cost AGE avoids (§7)\n")
	return b.String()
}
