package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// This file implements the deterministic parallel sweep runner. Every
// experiment is decomposed into independent cells (one (dataset, policy,
// encoder, budget) simulation, one attack evaluation, one compressed
// sequence, ...) that are enumerated up front in a canonical order. A pool
// of workers pulls cell indices from an atomic counter and each cell writes
// only to its own result slot, so the assembled output is a pure function of
// the cell list — never of worker identity, scheduling, or completion order.
//
// The determinism contract (see DESIGN.md):
//
//   - Cell seeds derive from Config.Seed and the cell's canonical tag via
//     Config.newRNG, never from worker identity or completion order.
//   - Results are merged in cell-enumeration order, so the rendered tables
//     are byte-identical for any worker count, including Workers=1.
//   - On failure, the error from the lowest-numbered failing cell is
//     reported (cancellation aborts the remaining cells), keeping even the
//     failure mode schedule-independent.

// sweep runs n cells (labels[i] names cell i) across the configured worker
// pool. run must confine its writes to cell i's result slot. The first
// error — by cell order, not completion order — cancels the sweep and is
// returned. A canceled parent context returns ctx.Err().
func (c Config) sweep(ctx context.Context, labels []string, run func(ctx context.Context, cell int) error) error {
	n := len(labels)
	if n == 0 {
		return ctx.Err()
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Sweep instrumentation (all instruments are nil-safe no-ops without a
	// registry). exp.workers_busy tracks utilization: its value at any
	// instant is the number of workers inside run().
	cellsTotal := c.Metrics.Counter("exp.cells_total")
	cellsDone := c.Metrics.Counter("exp.cells_done")
	cellsFailed := c.Metrics.Counter("exp.cells_failed")
	cellNs := c.Metrics.Histogram("exp.cell_ns", metrics.LatencyBuckets()...)
	busy := c.Metrics.Gauge("exp.workers_busy")
	if c.Metrics != nil {
		c.Metrics.Gauge("exp.workers").Set(int64(workers))
	}
	cellsTotal.Add(int64(n))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
		firstIdx = n
	)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				busy.Add(1)
				//age:allow detrand cell-latency observability (PR-3 metrics); never feeds experiment results
				start := time.Now()
				err := run(cctx, i)
				cellNs.ObserveSince(start)
				busy.Add(-1)
				mu.Lock()
				if err != nil {
					// Cancellation fallout from another cell's failure is
					// not this cell's error; real errors keep the lowest
					// cell index so the reported failure is
					// schedule-independent.
					if !errors.Is(err, context.Canceled) {
						cellsFailed.Inc()
						if i < firstIdx {
							firstErr, firstIdx = err, i
						}
					}
					mu.Unlock()
					cancel()
					continue
				}
				done++
				cellsDone.Inc()
				if c.Progress != nil {
					// Serialized under the mutex so callbacks observe a
					// monotonic done count.
					c.Progress(done, n, labels[i])
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// prepareWorkloads loads and fits one workload per dataset, in parallel (a
// workload's policy fitting is the expensive per-dataset setup). When
// needSkip is set the Skip RNN is trained eagerly here rather than lazily
// inside simulation cells, keeping the heavy training step visible in
// progress output. The returned map is read-only after this call and safe to
// share across sweep workers.
func prepareWorkloads(ctx context.Context, cfg Config, datasets []string, needSkip bool) (map[string]*Workload, error) {
	out := make([]*Workload, len(datasets))
	labels := make([]string, len(datasets))
	for i, name := range datasets {
		labels[i] = "prepare/" + name
	}
	err := cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		w, err := PrepareWorkload(datasets[i], cfg)
		if err != nil {
			return err
		}
		if needSkip {
			if _, err := w.SkipModel(); err != nil {
				return err
			}
		}
		out[i] = w
		return nil
	})
	if err != nil {
		return nil, err
	}
	m := make(map[string]*Workload, len(datasets))
	for i, name := range datasets {
		m[name] = out[i]
	}
	return m, nil
}
