package experiments

import (
	"context"
	"strings"
	"testing"
)

// timingConfig returns an evaluation sized so data-driven gaps dominate
// loopback scheduling noise: the timing attack needs enough frames per
// sensor that the bootstrap windows sample genuinely distinct gaps (tiny
// pools let the attacker memorize per-pool scheduler noise and inflate the
// defended modes' accuracy).
func timingConfig() Config {
	cfg := tinyConfig()
	cfg.MaxSequences = 96
	cfg.TrainSequences = 32
	// Significant(0.01) needs the permutation CI half-width (1.96/(2·√n))
	// below alpha, which takes ~10k permutations.
	cfg.Permutations = 10000
	return cfg
}

func TestTimingLeakage(t *testing.T) {
	// Timing cells measure real clocks, so assertions use statistical
	// margins, not golden values: the undefended link must leak by the
	// paper's own criterion and the paced links must not.
	res, err := TimingLeakage(context.Background(), timingConfig(), DefaultTimingConfig(), "epilepsy", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modes) != 3 {
		t.Fatalf("mode count = %d, want 3", len(res.Modes))
	}

	live := res.Mode("live")
	if live == nil {
		t.Fatal("no live row")
	}
	if !live.Significant {
		t.Errorf("undefended link not significant: NMI %.3f, p %.5f [%.5f, %.5f]",
			live.NMI, live.PValue, live.CILow, live.CIHigh)
	}
	if live.AttackAccuracy < live.Majority+0.25 {
		t.Errorf("undefended attack accuracy %.3f vs majority %.3f — timing should leak",
			live.AttackAccuracy, live.Majority)
	}
	if live.DummyFrames != 0 || live.GoodputPct != 100 {
		t.Errorf("live mode sent cover traffic: %d dummies, goodput %.1f%%",
			live.DummyFrames, live.GoodputPct)
	}

	for _, mode := range []string{"constant", "jitter"} {
		row := res.Mode(mode)
		if row == nil {
			t.Fatalf("no %s row", mode)
		}
		if row.Significant {
			t.Errorf("%s pacing still significant: NMI %.3f, p %.5f [%.5f, %.5f]",
				mode, row.NMI, row.PValue, row.CILow, row.CIHigh)
		}
		if row.NMI > live.NMI/2 {
			t.Errorf("%s pacing NMI %.3f not well below undefended %.3f", mode, row.NMI, live.NMI)
		}
		if row.DummyFrames <= 0 {
			t.Errorf("%s pacing sent no cover traffic", mode)
		}
		if row.GoodputPct >= 100 || row.GoodputPct <= 0 {
			t.Errorf("%s goodput = %.1f%%, want in (0, 100)", mode, row.GoodputPct)
		}
		if row.MeanAoIMicros <= live.MeanAoIMicros {
			t.Errorf("%s mean AoI %.0fµs not above undefended %.0fµs — pacing must cost freshness",
				mode, row.MeanAoIMicros, live.MeanAoIMicros)
		}
		if row.RealFrames != live.RealFrames {
			t.Errorf("%s delivered %d real frames, undefended delivered %d",
				mode, row.RealFrames, live.RealFrames)
		}
	}

	s := res.String()
	for _, want := range []string{"live", "constant", "jitter", "meanAoI", "goodput"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	if res.Mode("nope") != nil {
		t.Error("unknown mode lookup returned a row")
	}
}

func TestTimingLeakageConfigValidation(t *testing.T) {
	cfg := timingConfig()
	bad := DefaultTimingConfig()
	bad.Sensors = 0
	if _, err := TimingLeakage(context.Background(), cfg, bad, "epilepsy", 0.7); err == nil {
		t.Error("Sensors=0 accepted")
	}
	bad = DefaultTimingConfig()
	bad.Interval = 0
	if _, err := TimingLeakage(context.Background(), cfg, bad, "epilepsy", 0.7); err == nil {
		t.Error("Interval=0 accepted")
	}
	bad = DefaultTimingConfig()
	bad.Bins = 1
	if _, err := TimingLeakage(context.Background(), cfg, bad, "epilepsy", 0.7); err == nil {
		t.Error("Bins=1 accepted")
	}
	// An unfitted rate surfaces the workload error.
	if _, err := TimingLeakage(context.Background(), cfg, DefaultTimingConfig(), "epilepsy", 0.95); err == nil {
		t.Error("unfitted rate accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TimingLeakage(ctx, cfg, DefaultTimingConfig(), "epilepsy", 0.7); err == nil {
		t.Error("cancelled context accepted")
	}
}
