package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/seccomm"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// SizeStat summarizes a conditional message-size distribution.
type SizeStat struct {
	Mean, Std float64
	N         int
}

// Table1Result reproduces Table 1: average (standard deviation) message size
// of adaptive policies conditioned on the underlying event, on the Epilepsy
// task. Welch reports the largest pairwise p-value between events per
// policy (the paper finds all pairs significant at alpha = 0.01).
type Table1Result struct {
	Rate     float64
	Events   []string
	Policies []string
	// Stats[policy][eventIdx]
	Stats map[string][]SizeStat
	// MaxPairwiseP[policy] is the largest Welch's t-test p-value over all
	// event pairs.
	MaxPairwiseP map[string]float64
}

// Table1 measures per-event message sizes for the three adaptive policies on
// Epilepsy with the Standard encoder.
func Table1(ctx context.Context, cfg Config) (*Table1Result, error) {
	const rate = 0.7
	ws, err := prepareWorkloads(ctx, cfg, []string{"epilepsy"}, true)
	if err != nil {
		return nil, err
	}
	w := ws["epilepsy"]
	res := &Table1Result{
		Rate:         rate,
		Events:       dataset.LabelNames("epilepsy"),
		Policies:     []string{"linear", "deviation", "skiprnn"},
		Stats:        map[string][]SizeStat{},
		MaxPairwiseP: map[string]float64{},
	}
	type cell struct {
		stats []SizeStat
		maxP  float64
	}
	out := make([]cell, len(res.Policies))
	labels := make([]string, len(res.Policies))
	for i, pk := range res.Policies {
		labels[i] = fmt.Sprintf("table1/%s@%g", pk, rate)
	}
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		run, err := w.RunCell(res.Policies[i], simulator.EncStandard, rate, simulator.ModeSimulation)
		if err != nil {
			return err
		}
		perEvent := make([][]float64, len(res.Events))
		for l := range perEvent {
			for _, s := range run.SizesByLabel[l] {
				perEvent[l] = append(perEvent[l], float64(s))
			}
		}
		c := cell{stats: make([]SizeStat, len(res.Events))}
		for l, sizes := range perEvent {
			c.stats[l] = SizeStat{Mean: stats.Mean(sizes), Std: stats.StdDev(sizes), N: len(sizes)}
		}
		for a := 0; a < len(perEvent); a++ {
			for b := a + 1; b < len(perEvent); b++ {
				if p := stats.WelchTTest(perEvent[a], perEvent[b]).P; p > c.maxP {
					c.maxP = p
				}
			}
		}
		out[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, pk := range res.Policies {
		res.Stats[pk] = out[i].stats
		res.MaxPairwiseP[pk] = out[i].maxP
	}
	return res, nil
}

// ErrorCell is one (policy, encoder, budget) outcome.
type ErrorCell struct {
	MAE, WeightedMAE float64
	EnergyMJ         float64
	BudgetMJ         float64
	Violations       int
}

// ErrorColumns lists the seven policy/encoder columns of Tables 4 and 5.
var ErrorColumns = []string{
	"uniform",
	"linear-std", "linear-padded", "linear-age",
	"deviation-std", "deviation-padded", "deviation-age",
}

// columnSpec decomposes a column name into its simulator inputs.
func columnSpec(col string) (policyKind string, enc simulator.EncoderKind) {
	switch col {
	case "uniform":
		return "uniform", simulator.EncStandard
	case "linear-std":
		return "linear", simulator.EncStandard
	case "linear-padded":
		return "linear", simulator.EncPadded
	case "linear-age":
		return "linear", simulator.EncAGE
	case "deviation-std":
		return "deviation", simulator.EncStandard
	case "deviation-padded":
		return "deviation", simulator.EncPadded
	case "deviation-age":
		return "deviation", simulator.EncAGE
	default:
		panic("experiments: unknown column " + col)
	}
}

// ErrorSweep holds the full Tables 4/5 grid.
type ErrorSweep struct {
	Datasets []string
	Rates    []float64
	// Cells[dataset][column][rateIdx]
	Cells map[string]map[string][]ErrorCell
}

// RunErrorSweep runs every (dataset, column, rate) simulation of Tables 4-5.
func RunErrorSweep(ctx context.Context, cfg Config, datasets []string) (*ErrorSweep, error) {
	if datasets == nil {
		datasets = dataset.Names()
	}
	ws, err := prepareWorkloads(ctx, cfg, datasets, false)
	if err != nil {
		return nil, err
	}
	type cellKey struct {
		name, col string
		rate      float64
	}
	var keys []cellKey
	var labels []string
	for _, name := range datasets {
		for _, col := range ErrorColumns {
			for _, rate := range cfg.Rates {
				keys = append(keys, cellKey{name, col, rate})
				labels = append(labels, fmt.Sprintf("sweep/%s/%s@%g", name, col, rate))
			}
		}
	}
	out := make([]ErrorCell, len(keys))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		k := keys[i]
		pk, enc := columnSpec(k.col)
		run, err := ws[k.name].RunCell(pk, enc, k.rate, simulator.ModeSimulation)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s@%g: %w", k.name, k.col, k.rate, err)
		}
		out[i] = ErrorCell{
			MAE: run.MAE, WeightedMAE: run.WeightedMAE,
			EnergyMJ: run.TotalEnergyMJ, BudgetMJ: run.BudgetMJ,
			Violations: run.Violations,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sweep := &ErrorSweep{Datasets: datasets, Rates: cfg.Rates, Cells: map[string]map[string][]ErrorCell{}}
	i := 0
	for _, name := range datasets {
		sweep.Cells[name] = map[string][]ErrorCell{}
		for _, col := range ErrorColumns {
			sweep.Cells[name][col] = out[i : i+len(cfg.Rates) : i+len(cfg.Rates)]
			i += len(cfg.Rates)
		}
	}
	return sweep, nil
}

// Table45Result carries Tables 4 and 5 (mean and weighted mean MAE across
// budgets) plus the overall median-percent-vs-Uniform rows.
type Table45Result struct {
	Sweep *ErrorSweep
	// MeanMAE[dataset][column] and MeanWeighted[dataset][column] average
	// the 8 budgets.
	MeanMAE, MeanWeighted map[string]map[string]float64
	// OverallPct[column] is the median percent error above Uniform across
	// every dataset and budget (negative = better than Uniform).
	OverallPct, OverallPctWeighted map[string]float64
}

// Table45 runs the error sweep and reduces it to the published rows.
func Table45(ctx context.Context, cfg Config, datasets []string) (*Table45Result, error) {
	sweep, err := RunErrorSweep(ctx, cfg, datasets)
	if err != nil {
		return nil, err
	}
	return reduceTable45(sweep), nil
}

func reduceTable45(sweep *ErrorSweep) *Table45Result {
	res := &Table45Result{
		Sweep:              sweep,
		MeanMAE:            map[string]map[string]float64{},
		MeanWeighted:       map[string]map[string]float64{},
		OverallPct:         map[string]float64{},
		OverallPctWeighted: map[string]float64{},
	}
	pct := map[string][]float64{}
	pctW := map[string][]float64{}
	for _, name := range sweep.Datasets {
		res.MeanMAE[name] = map[string]float64{}
		res.MeanWeighted[name] = map[string]float64{}
		for _, col := range ErrorColumns {
			var m, wm []float64
			for _, c := range sweep.Cells[name][col] {
				m = append(m, c.MAE)
				wm = append(wm, c.WeightedMAE)
			}
			res.MeanMAE[name][col] = stats.Mean(m)
			res.MeanWeighted[name][col] = stats.Mean(wm)
		}
		for ri := range sweep.Rates {
			base := sweep.Cells[name]["uniform"][ri]
			for _, col := range ErrorColumns {
				c := sweep.Cells[name][col][ri]
				if base.MAE > 0 {
					pct[col] = append(pct[col], 100*(c.MAE-base.MAE)/base.MAE)
				}
				if base.WeightedMAE > 0 {
					pctW[col] = append(pctW[col], 100*(c.WeightedMAE-base.WeightedMAE)/base.WeightedMAE)
				}
			}
		}
	}
	for _, col := range ErrorColumns {
		res.OverallPct[col] = stats.Median(pct[col])
		res.OverallPctWeighted[col] = stats.Median(pctW[col])
	}
	return res
}

// NMICell is one (policy, encoder) NMI summary for Table 6.
type NMICell struct {
	Median, Max float64
	// SignificantFrac is the fraction of budgets whose permutation test
	// puts the whole 95% CI below 0.01 (§5.3).
	SignificantFrac float64
}

// Table6Result reproduces Table 6: NMI between message size and event label
// for the Standard, Padded, and AGE encoders under both adaptive policies.
type Table6Result struct {
	Datasets []string
	// Cells[dataset][policy-encoder], e.g. "linear-std", "linear-age".
	Cells map[string]map[string]NMICell
}

// Table6 sweeps NMI across datasets, budgets, policies, and encoders. Each
// (dataset, policy, encoder, budget) cell draws its permutation-test RNG from
// its own tag, so results are identical for any worker count.
func Table6(ctx context.Context, cfg Config, datasets []string) (*Table6Result, error) {
	if datasets == nil {
		datasets = dataset.Names()
	}
	ws, err := prepareWorkloads(ctx, cfg, datasets, false)
	if err != nil {
		return nil, err
	}
	policies := []string{"linear", "deviation"}
	encoders := []simulator.EncoderKind{simulator.EncStandard, simulator.EncPadded, simulator.EncAGE}
	type cellKey struct {
		name, pk string
		enc      simulator.EncoderKind
		rate     float64
	}
	type cellOut struct {
		nmi float64
		sig bool
	}
	var keys []cellKey
	var labels []string
	for _, name := range datasets {
		for _, pk := range policies {
			for _, enc := range encoders {
				for _, rate := range cfg.Rates {
					keys = append(keys, cellKey{name, pk, enc, rate})
					labels = append(labels, fmt.Sprintf("table6/%s/%s-%s@%g", name, pk, enc, rate))
				}
			}
		}
	}
	out := make([]cellOut, len(keys))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		k := keys[i]
		run, err := ws[k.name].RunCell(k.pk, k.enc, k.rate, simulator.ModeSimulation)
		if err != nil {
			return err
		}
		lbls, sizes := labelsAndSizes(run)
		c := cellOut{nmi: stats.NMI(lbls, sizes)}
		if k.enc == simulator.EncStandard && cfg.Permutations > 0 {
			pt := stats.PermutationTestNMI(lbls, sizes, cfg.Permutations, cfg.newRNG(labels[i]))
			c.sig = pt.Significant(0.01)
		}
		out[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table6Result{Datasets: datasets, Cells: map[string]map[string]NMICell{}}
	i := 0
	for _, name := range datasets {
		res.Cells[name] = map[string]NMICell{}
		for _, pk := range policies {
			for _, enc := range encoders {
				var nmis []float64
				sig := 0
				for range cfg.Rates {
					nmis = append(nmis, out[i].nmi)
					if out[i].sig {
						sig++
					}
					i++
				}
				res.Cells[name][fmt.Sprintf("%s-%s", pk, enc)] = NMICell{
					Median:          stats.Median(nmis),
					Max:             stats.Max(nmis),
					SignificantFrac: float64(sig) / float64(len(cfg.Rates)),
				}
			}
		}
	}
	return res, nil
}

// Table7Row is one dataset's Skip RNN outcome (§5.5).
type Table7Row struct {
	Dataset              string
	MAEStd, MAEAGE       float64
	NMIStd, NMIAGE       float64 // maxima across rates
	AttackStd, AttackAGE float64 // max accuracy (percent)
	MajorityBaselinePct  float64
}

// Table7 evaluates Skip RNNs with and without AGE on every dataset.
func Table7(ctx context.Context, cfg Config, datasets []string) ([]Table7Row, error) {
	if datasets == nil {
		datasets = dataset.Names()
	}
	ws, err := prepareWorkloads(ctx, cfg, datasets, true)
	if err != nil {
		return nil, err
	}
	encoders := []simulator.EncoderKind{simulator.EncStandard, simulator.EncAGE}
	type cellKey struct {
		name string
		rate float64
		enc  simulator.EncoderKind
	}
	type cellOut struct {
		mae, nmi, acc, maj float64
	}
	var keys []cellKey
	var labels []string
	for _, name := range datasets {
		for _, rate := range cfg.Rates {
			for _, enc := range encoders {
				keys = append(keys, cellKey{name, rate, enc})
				labels = append(labels, fmt.Sprintf("table7/%s/%s@%g", name, enc, rate))
			}
		}
	}
	out := make([]cellOut, len(keys))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		k := keys[i]
		w := ws[k.name]
		run, err := w.RunCell("skiprnn", k.enc, k.rate, simulator.ModeSimulation)
		if err != nil {
			return err
		}
		lbls, sizes := labelsAndSizes(run)
		acc, maj, err := attackAccuracy(run.SizesByLabel, w.Data.Meta.NumLabels, cfg, cfg.newRNG(labels[i]))
		if err != nil {
			return err
		}
		out[i] = cellOut{mae: run.MAE, nmi: stats.NMI(lbls, sizes), acc: acc, maj: maj}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Table7Row
	i := 0
	for _, name := range datasets {
		row := Table7Row{Dataset: name}
		var maeStd, maeAGE []float64
		for range cfg.Rates {
			for _, enc := range encoders {
				c := out[i]
				i++
				if enc == simulator.EncStandard {
					maeStd = append(maeStd, c.mae)
					row.NMIStd = math.Max(row.NMIStd, c.nmi)
					row.AttackStd = math.Max(row.AttackStd, c.acc*100)
				} else {
					maeAGE = append(maeAGE, c.mae)
					row.NMIAGE = math.Max(row.NMIAGE, c.nmi)
					row.AttackAGE = math.Max(row.AttackAGE, c.acc*100)
				}
				row.MajorityBaselinePct = math.Max(row.MajorityBaselinePct, c.maj*100)
			}
		}
		row.MAEStd = stats.Mean(maeStd)
		row.MAEAGE = stats.Mean(maeAGE)
		rows = append(rows, row)
	}
	return rows, nil
}

// Table8Result reproduces Table 8: the median percent error of each AGE
// ablation variant above full AGE, across all datasets and budgets.
type Table8Result struct {
	// Pct[variant][policy], variants "single", "unshifted", "pruned".
	Pct map[string]map[string]float64
}

// Table8 compares the §5.6 variants against full AGE.
func Table8(ctx context.Context, cfg Config, datasets []string) (*Table8Result, error) {
	if datasets == nil {
		datasets = dataset.Names()
	}
	ws, err := prepareWorkloads(ctx, cfg, datasets, false)
	if err != nil {
		return nil, err
	}
	variants := []simulator.EncoderKind{simulator.EncSingle, simulator.EncUnshifted, simulator.EncPruned}
	policies := []string{"linear", "deviation"}
	type cellKey struct {
		name, pk string
		rate     float64
	}
	type cellOut struct {
		diffs [3]float64
		valid bool
	}
	var keys []cellKey
	var labels []string
	for _, name := range datasets {
		for _, pk := range policies {
			for _, rate := range cfg.Rates {
				keys = append(keys, cellKey{name, pk, rate})
				labels = append(labels, fmt.Sprintf("table8/%s/%s@%g", name, pk, rate))
			}
		}
	}
	out := make([]cellOut, len(keys))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		k := keys[i]
		w := ws[k.name]
		base, err := w.RunCell(k.pk, simulator.EncAGE, k.rate, simulator.ModeSimulation)
		if err != nil {
			return err
		}
		if base.MAE <= 0 {
			return nil
		}
		c := cellOut{valid: true}
		for vi, v := range variants {
			run, err := w.RunCell(k.pk, v, k.rate, simulator.ModeSimulation)
			if err != nil {
				return err
			}
			c.diffs[vi] = 100 * (run.MAE - base.MAE) / base.MAE
		}
		out[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	diffs := map[string]map[string][]float64{}
	for _, v := range variants {
		diffs[string(v)] = map[string][]float64{}
	}
	for i, k := range keys {
		if !out[i].valid {
			continue
		}
		for vi, v := range variants {
			diffs[string(v)][k.pk] = append(diffs[string(v)][k.pk], out[i].diffs[vi])
		}
	}
	res := &Table8Result{Pct: map[string]map[string]float64{}}
	//age:allow detrand every write is keyed by the loop variables, so iteration order cannot change the result
	for v, byPolicy := range diffs {
		res.Pct[v] = map[string]float64{}
		for pk, ds := range byPolicy {
			res.Pct[v][pk] = stats.Median(ds)
		}
	}
	return res, nil
}

// MCURow is one policy row of Tables 9 and 10 on one dataset.
type MCURow struct {
	Policy string // "uniform", "linear", "linear-padded", ...
	// EnergyMJ[budgetIdx] is the mean energy per sequence; MAE[budgetIdx]
	// the reconstruction error under that budget.
	EnergyMJ []float64
	MAE      []float64
}

// MCUResult reproduces Tables 9 and 10: per-sequence energy and error on the
// MCU configuration (75 sequences, AES-128, budgets at 40/70/100%).
type MCUResult struct {
	Dataset   string
	BudgetsMJ []float64 // total budget per run, in mJ (displayed as J in the paper)
	Rates     []float64
	Rows      []MCURow
}

// MCURowOrder lists the Tables 9/10 policy rows.
var MCURowOrder = []string{
	"uniform",
	"linear-std", "linear-padded", "linear-age",
	"deviation-std", "deviation-padded", "deviation-age",
}

// TableMCU runs the §5.7 hardware-configuration evaluation on one dataset.
func TableMCU(ctx context.Context, cfg Config, name string) (*MCUResult, error) {
	mcuCfg := cfg
	mcuCfg.MaxSequences = 75
	mcuCfg.Cipher = seccomm.AES128Block
	mcuCfg.Rates = []float64{0.4, 0.7, 1.0}
	ws, err := prepareWorkloads(ctx, mcuCfg, []string{name}, false)
	if err != nil {
		return nil, err
	}
	w := ws[name]
	type cellOut struct {
		energyMJ, mae, budgetMJ float64
	}
	var keys []struct {
		col  string
		rate float64
	}
	var labels []string
	for _, col := range MCURowOrder {
		for _, rate := range mcuCfg.Rates {
			keys = append(keys, struct {
				col  string
				rate float64
			}{col, rate})
			labels = append(labels, fmt.Sprintf("mcu/%s/%s@%g", name, col, rate))
		}
	}
	out := make([]cellOut, len(keys))
	err = mcuCfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		k := keys[i]
		pk, enc := columnSpec(k.col)
		run, err := w.RunCell(pk, enc, k.rate, simulator.ModeMCU)
		if err != nil {
			return err
		}
		out[i] = cellOut{
			energyMJ: run.TotalEnergyMJ / float64(len(run.Seqs)),
			mae:      run.MAE,
			budgetMJ: run.BudgetMJ,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &MCUResult{Dataset: name, Rates: mcuCfg.Rates}
	i := 0
	for _, col := range MCURowOrder {
		row := MCURow{Policy: col}
		for range mcuCfg.Rates {
			row.EnergyMJ = append(row.EnergyMJ, out[i].energyMJ)
			row.MAE = append(row.MAE, out[i].mae)
			if col == "uniform" {
				res.BudgetsMJ = append(res.BudgetsMJ, out[i].budgetMJ)
			}
			i++
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// attackAccuracy runs the §5.4 attack on observed sizes and returns the CV
// accuracy and the majority baseline. Labels missing from the size map (all
// of their messages suppressed) make the attack infeasible as specified; the
// attacker then only sees the remaining labels.
func attackAccuracy(sizesByLabel map[int][]int, numClasses int, cfg Config, rng *rand.Rand) (acc, majority float64, err error) {
	present := map[int][]int{}
	//age:allow detrand key-indexed filter into a map; consumers (attack.BuildSamples) iterate labels in sorted order
	for l, ss := range sizesByLabel {
		if len(ss) > 0 {
			present[l] = ss
		}
	}
	if len(present) < 2 {
		// One observable event: nothing to classify; the attacker is
		// exactly at the majority baseline.
		return 1, 1, nil
	}
	samples, err := attack.BuildSamples(present, cfg.AttackSamples, rng)
	if err != nil {
		return 0, 0, err
	}
	res, err := attack.CrossValidate(samples, numClasses, 5, attack.DefaultAdaBoostConfig(), rng)
	if err != nil {
		return 0, 0, err
	}
	return res.MeanAccuracy, res.Majority, nil
}

// sortedKeys returns map keys in ascending order (shared test helper).
func sortedKeys(m map[int][]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
