package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/seccomm"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// SizeStat summarizes a conditional message-size distribution.
type SizeStat struct {
	Mean, Std float64
	N         int
}

// Table1Result reproduces Table 1: average (standard deviation) message size
// of adaptive policies conditioned on the underlying event, on the Epilepsy
// task. Welch reports the largest pairwise p-value between events per
// policy (the paper finds all pairs significant at alpha = 0.01).
type Table1Result struct {
	Rate     float64
	Events   []string
	Policies []string
	// Stats[policy][eventIdx]
	Stats map[string][]SizeStat
	// MaxPairwiseP[policy] is the largest Welch's t-test p-value over all
	// event pairs.
	MaxPairwiseP map[string]float64
}

// Table1 measures per-event message sizes for the three adaptive policies on
// Epilepsy with the Standard encoder.
func Table1(cfg Config) (*Table1Result, error) {
	const rate = 0.7
	w, err := PrepareWorkload("epilepsy", cfg)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{
		Rate:         rate,
		Events:       dataset.LabelNames("epilepsy"),
		Policies:     []string{"linear", "deviation", "skiprnn"},
		Stats:        map[string][]SizeStat{},
		MaxPairwiseP: map[string]float64{},
	}
	for _, pk := range res.Policies {
		run, err := w.RunCell(pk, simulator.EncStandard, rate, simulator.ModeSimulation)
		if err != nil {
			return nil, err
		}
		perEvent := make([][]float64, len(res.Events))
		for l, sizes := range run.SizesByLabel {
			for _, s := range sizes {
				perEvent[l] = append(perEvent[l], float64(s))
			}
		}
		statsRow := make([]SizeStat, len(res.Events))
		for l, sizes := range perEvent {
			statsRow[l] = SizeStat{Mean: stats.Mean(sizes), Std: stats.StdDev(sizes), N: len(sizes)}
		}
		res.Stats[pk] = statsRow
		maxP := 0.0
		for a := 0; a < len(perEvent); a++ {
			for b := a + 1; b < len(perEvent); b++ {
				if p := stats.WelchTTest(perEvent[a], perEvent[b]).P; p > maxP {
					maxP = p
				}
			}
		}
		res.MaxPairwiseP[pk] = maxP
	}
	return res, nil
}

// ErrorCell is one (policy, encoder, budget) outcome.
type ErrorCell struct {
	MAE, WeightedMAE float64
	EnergyMJ         float64
	BudgetMJ         float64
	Violations       int
}

// ErrorColumns lists the seven policy/encoder columns of Tables 4 and 5.
var ErrorColumns = []string{
	"uniform",
	"linear-std", "linear-padded", "linear-age",
	"deviation-std", "deviation-padded", "deviation-age",
}

// columnSpec decomposes a column name into its simulator inputs.
func columnSpec(col string) (policyKind string, enc simulator.EncoderKind) {
	switch col {
	case "uniform":
		return "uniform", simulator.EncStandard
	case "linear-std":
		return "linear", simulator.EncStandard
	case "linear-padded":
		return "linear", simulator.EncPadded
	case "linear-age":
		return "linear", simulator.EncAGE
	case "deviation-std":
		return "deviation", simulator.EncStandard
	case "deviation-padded":
		return "deviation", simulator.EncPadded
	case "deviation-age":
		return "deviation", simulator.EncAGE
	default:
		panic("experiments: unknown column " + col)
	}
}

// ErrorSweep holds the full Tables 4/5 grid.
type ErrorSweep struct {
	Datasets []string
	Rates    []float64
	// Cells[dataset][column][rateIdx]
	Cells map[string]map[string][]ErrorCell
}

// RunErrorSweep runs every (dataset, column, rate) simulation of Tables 4-5.
func RunErrorSweep(cfg Config, datasets []string) (*ErrorSweep, error) {
	if datasets == nil {
		datasets = dataset.Names()
	}
	sweep := &ErrorSweep{Datasets: datasets, Rates: cfg.Rates, Cells: map[string]map[string][]ErrorCell{}}
	for _, name := range datasets {
		w, err := PrepareWorkload(name, cfg)
		if err != nil {
			return nil, err
		}
		sweep.Cells[name] = map[string][]ErrorCell{}
		for _, col := range ErrorColumns {
			pk, enc := columnSpec(col)
			cells := make([]ErrorCell, 0, len(cfg.Rates))
			for _, rate := range cfg.Rates {
				run, err := w.RunCell(pk, enc, rate, simulator.ModeSimulation)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s@%g: %w", name, col, rate, err)
				}
				cells = append(cells, ErrorCell{
					MAE: run.MAE, WeightedMAE: run.WeightedMAE,
					EnergyMJ: run.TotalEnergyMJ, BudgetMJ: run.BudgetMJ,
					Violations: run.Violations,
				})
			}
			sweep.Cells[name][col] = cells
		}
	}
	return sweep, nil
}

// Table45Result carries Tables 4 and 5 (mean and weighted mean MAE across
// budgets) plus the overall median-percent-vs-Uniform rows.
type Table45Result struct {
	Sweep *ErrorSweep
	// MeanMAE[dataset][column] and MeanWeighted[dataset][column] average
	// the 8 budgets.
	MeanMAE, MeanWeighted map[string]map[string]float64
	// OverallPct[column] is the median percent error above Uniform across
	// every dataset and budget (negative = better than Uniform).
	OverallPct, OverallPctWeighted map[string]float64
}

// Table45 runs the error sweep and reduces it to the published rows.
func Table45(cfg Config, datasets []string) (*Table45Result, error) {
	sweep, err := RunErrorSweep(cfg, datasets)
	if err != nil {
		return nil, err
	}
	return reduceTable45(sweep), nil
}

func reduceTable45(sweep *ErrorSweep) *Table45Result {
	res := &Table45Result{
		Sweep:              sweep,
		MeanMAE:            map[string]map[string]float64{},
		MeanWeighted:       map[string]map[string]float64{},
		OverallPct:         map[string]float64{},
		OverallPctWeighted: map[string]float64{},
	}
	pct := map[string][]float64{}
	pctW := map[string][]float64{}
	for _, name := range sweep.Datasets {
		res.MeanMAE[name] = map[string]float64{}
		res.MeanWeighted[name] = map[string]float64{}
		for _, col := range ErrorColumns {
			var m, wm []float64
			for _, c := range sweep.Cells[name][col] {
				m = append(m, c.MAE)
				wm = append(wm, c.WeightedMAE)
			}
			res.MeanMAE[name][col] = stats.Mean(m)
			res.MeanWeighted[name][col] = stats.Mean(wm)
		}
		for ri := range sweep.Rates {
			base := sweep.Cells[name]["uniform"][ri]
			for _, col := range ErrorColumns {
				c := sweep.Cells[name][col][ri]
				if base.MAE > 0 {
					pct[col] = append(pct[col], 100*(c.MAE-base.MAE)/base.MAE)
				}
				if base.WeightedMAE > 0 {
					pctW[col] = append(pctW[col], 100*(c.WeightedMAE-base.WeightedMAE)/base.WeightedMAE)
				}
			}
		}
	}
	for _, col := range ErrorColumns {
		res.OverallPct[col] = stats.Median(pct[col])
		res.OverallPctWeighted[col] = stats.Median(pctW[col])
	}
	return res
}

// NMICell is one (policy, encoder) NMI summary for Table 6.
type NMICell struct {
	Median, Max float64
	// SignificantFrac is the fraction of budgets whose permutation test
	// puts the whole 95% CI below 0.01 (§5.3).
	SignificantFrac float64
}

// Table6Result reproduces Table 6: NMI between message size and event label
// for the Standard, Padded, and AGE encoders under both adaptive policies.
type Table6Result struct {
	Datasets []string
	// Cells[dataset][policy-encoder], e.g. "linear-std", "linear-age".
	Cells map[string]map[string]NMICell
}

// Table6 sweeps NMI across datasets, budgets, policies, and encoders.
func Table6(cfg Config, datasets []string) (*Table6Result, error) {
	if datasets == nil {
		datasets = dataset.Names()
	}
	res := &Table6Result{Datasets: datasets, Cells: map[string]map[string]NMICell{}}
	rng := cfg.newRNG("table6")
	for _, name := range datasets {
		w, err := PrepareWorkload(name, cfg)
		if err != nil {
			return nil, err
		}
		res.Cells[name] = map[string]NMICell{}
		for _, pk := range []string{"linear", "deviation"} {
			for _, enc := range []simulator.EncoderKind{simulator.EncStandard, simulator.EncPadded, simulator.EncAGE} {
				var nmis []float64
				sig := 0
				for _, rate := range cfg.Rates {
					run, err := w.RunCell(pk, enc, rate, simulator.ModeSimulation)
					if err != nil {
						return nil, err
					}
					labels, sizes := labelsAndSizes(run)
					nmis = append(nmis, stats.NMI(labels, sizes))
					if enc == simulator.EncStandard && cfg.Permutations > 0 {
						pt := stats.PermutationTestNMI(labels, sizes, cfg.Permutations, rng)
						if pt.Significant(0.01) {
							sig++
						}
					}
				}
				res.Cells[name][fmt.Sprintf("%s-%s", pk, enc)] = NMICell{
					Median:          stats.Median(nmis),
					Max:             stats.Max(nmis),
					SignificantFrac: float64(sig) / float64(len(cfg.Rates)),
				}
			}
		}
	}
	return res, nil
}

// Table7Row is one dataset's Skip RNN outcome (§5.5).
type Table7Row struct {
	Dataset              string
	MAEStd, MAEAGE       float64
	NMIStd, NMIAGE       float64 // maxima across rates
	AttackStd, AttackAGE float64 // max accuracy (percent)
	MajorityBaselinePct  float64
}

// Table7 evaluates Skip RNNs with and without AGE on every dataset.
func Table7(cfg Config, datasets []string) ([]Table7Row, error) {
	if datasets == nil {
		datasets = dataset.Names()
	}
	var rows []Table7Row
	rng := cfg.newRNG("table7")
	for _, name := range datasets {
		w, err := PrepareWorkload(name, cfg)
		if err != nil {
			return nil, err
		}
		row := Table7Row{Dataset: name}
		var maeStd, maeAGE []float64
		for _, rate := range cfg.Rates {
			for _, enc := range []simulator.EncoderKind{simulator.EncStandard, simulator.EncAGE} {
				run, err := w.RunCell("skiprnn", enc, rate, simulator.ModeSimulation)
				if err != nil {
					return nil, err
				}
				labels, sizes := labelsAndSizes(run)
				nmi := stats.NMI(labels, sizes)
				acc, maj, err := attackAccuracy(run.SizesByLabel, w.Data.Meta.NumLabels, cfg, rng)
				if err != nil {
					return nil, err
				}
				if enc == simulator.EncStandard {
					maeStd = append(maeStd, run.MAE)
					row.NMIStd = math.Max(row.NMIStd, nmi)
					row.AttackStd = math.Max(row.AttackStd, acc*100)
				} else {
					maeAGE = append(maeAGE, run.MAE)
					row.NMIAGE = math.Max(row.NMIAGE, nmi)
					row.AttackAGE = math.Max(row.AttackAGE, acc*100)
				}
				row.MajorityBaselinePct = math.Max(row.MajorityBaselinePct, maj*100)
			}
		}
		row.MAEStd = stats.Mean(maeStd)
		row.MAEAGE = stats.Mean(maeAGE)
		rows = append(rows, row)
	}
	return rows, nil
}

// Table8Result reproduces Table 8: the median percent error of each AGE
// ablation variant above full AGE, across all datasets and budgets.
type Table8Result struct {
	// Pct[variant][policy], variants "single", "unshifted", "pruned".
	Pct map[string]map[string]float64
}

// Table8 compares the §5.6 variants against full AGE.
func Table8(cfg Config, datasets []string) (*Table8Result, error) {
	if datasets == nil {
		datasets = dataset.Names()
	}
	variants := []simulator.EncoderKind{simulator.EncSingle, simulator.EncUnshifted, simulator.EncPruned}
	diffs := map[string]map[string][]float64{}
	for _, v := range variants {
		diffs[string(v)] = map[string][]float64{}
	}
	for _, name := range datasets {
		w, err := PrepareWorkload(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, pk := range []string{"linear", "deviation"} {
			for _, rate := range cfg.Rates {
				base, err := w.RunCell(pk, simulator.EncAGE, rate, simulator.ModeSimulation)
				if err != nil {
					return nil, err
				}
				for _, v := range variants {
					run, err := w.RunCell(pk, v, rate, simulator.ModeSimulation)
					if err != nil {
						return nil, err
					}
					if base.MAE > 0 {
						diffs[string(v)][pk] = append(diffs[string(v)][pk],
							100*(run.MAE-base.MAE)/base.MAE)
					}
				}
			}
		}
	}
	res := &Table8Result{Pct: map[string]map[string]float64{}}
	for v, byPolicy := range diffs {
		res.Pct[v] = map[string]float64{}
		for pk, ds := range byPolicy {
			res.Pct[v][pk] = stats.Median(ds)
		}
	}
	return res, nil
}

// MCURow is one policy row of Tables 9 and 10 on one dataset.
type MCURow struct {
	Policy string // "uniform", "linear", "linear-padded", ...
	// EnergyMJ[budgetIdx] is the mean energy per sequence; MAE[budgetIdx]
	// the reconstruction error under that budget.
	EnergyMJ []float64
	MAE      []float64
}

// MCUResult reproduces Tables 9 and 10: per-sequence energy and error on the
// MCU configuration (75 sequences, AES-128, budgets at 40/70/100%).
type MCUResult struct {
	Dataset   string
	BudgetsMJ []float64 // total budget per run, in mJ (displayed as J in the paper)
	Rates     []float64
	Rows      []MCURow
}

// MCURowOrder lists the Tables 9/10 policy rows.
var MCURowOrder = []string{
	"uniform",
	"linear-std", "linear-padded", "linear-age",
	"deviation-std", "deviation-padded", "deviation-age",
}

// TableMCU runs the §5.7 hardware-configuration evaluation on one dataset.
func TableMCU(cfg Config, name string) (*MCUResult, error) {
	mcuCfg := cfg
	mcuCfg.MaxSequences = 75
	mcuCfg.Cipher = seccomm.AES128Block
	mcuCfg.Rates = []float64{0.4, 0.7, 1.0}
	w, err := PrepareWorkload(name, mcuCfg)
	if err != nil {
		return nil, err
	}
	res := &MCUResult{Dataset: name, Rates: mcuCfg.Rates}
	for _, col := range MCURowOrder {
		pk, enc := columnSpec(col)
		row := MCURow{Policy: col}
		for _, rate := range mcuCfg.Rates {
			run, err := w.RunCell(pk, enc, rate, simulator.ModeMCU)
			if err != nil {
				return nil, err
			}
			row.EnergyMJ = append(row.EnergyMJ, run.TotalEnergyMJ/float64(len(run.Seqs)))
			row.MAE = append(row.MAE, run.MAE)
			if col == "uniform" {
				res.BudgetsMJ = append(res.BudgetsMJ, run.BudgetMJ)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// attackAccuracy runs the §5.4 attack on observed sizes and returns the CV
// accuracy and the majority baseline. Labels missing from the size map (all
// of their messages suppressed) make the attack infeasible as specified; the
// attacker then only sees the remaining labels.
func attackAccuracy(sizesByLabel map[int][]int, numClasses int, cfg Config, rng *rand.Rand) (acc, majority float64, err error) {
	present := map[int][]int{}
	for l, ss := range sizesByLabel {
		if len(ss) > 0 {
			present[l] = ss
		}
	}
	if len(present) < 2 {
		// One observable event: nothing to classify; the attacker is
		// exactly at the majority baseline.
		return 1, 1, nil
	}
	samples, err := attack.BuildSamples(present, cfg.AttackSamples, rng)
	if err != nil {
		return 0, 0, err
	}
	res, err := attack.CrossValidate(samples, numClasses, 5, attack.DefaultAdaBoostConfig(), rng)
	if err != nil {
		return 0, 0, err
	}
	return res.MeanAccuracy, res.Majority, nil
}

// sortedKeys returns map keys in ascending order (shared test helper).
func sortedKeys(m map[int][]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
