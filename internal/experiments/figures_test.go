package experiments

import (
	"slices"
	"testing"
)

// TestBinarizeSizesDeterministic is the regression test for the Figure 7 bug
// the detrand analyzer caught: binarization used to range over SizesByLabel
// directly, so bin 1's element order followed Go's randomized map iteration
// and perturbed the attack's RNG draws. The helper must now concatenate
// labels in sorted order on every call.
func TestBinarizeSizesDeterministic(t *testing.T) {
	in := map[int][]int{4: {40, 41}, 0: {1, 2}, 2: {20, 21}, 1: {10}, 3: {30}}
	want0 := []int{1, 2}
	want1 := []int{10, 20, 21, 30, 40, 41}
	for i := 0; i < 64; i++ {
		got := binarizeSizes(in)
		if !slices.Equal(got[0], want0) {
			t.Fatalf("run %d: bin 0 = %v, want %v", i, got[0], want0)
		}
		if !slices.Equal(got[1], want1) {
			t.Fatalf("run %d: bin 1 = %v, want %v (order must follow sorted labels)", i, got[1], want1)
		}
		if len(got) != 2 {
			t.Fatalf("run %d: bins = %d, want 2", i, len(got))
		}
	}
}

// TestBinarizeSizesEdges covers empty input and a lone seizure label.
func TestBinarizeSizesEdges(t *testing.T) {
	if got := binarizeSizes(map[int][]int{}); len(got) != 0 {
		t.Errorf("empty input produced bins %v", got)
	}
	got := binarizeSizes(map[int][]int{0: {5}})
	if !slices.Equal(got[0], []int{5}) || got[1] != nil {
		t.Errorf("lone seizure label binarized to %v", got)
	}
}
