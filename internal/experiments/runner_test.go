package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestSweepRunsEveryCell checks every cell runs exactly once and progress is
// monotonic with each label reported exactly once.
func TestSweepRunsEveryCell(t *testing.T) {
	const n = 23
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("cell-%d", i)
	}
	var mu sync.Mutex
	seen := make([]int, n)
	var progressDone []int
	progressLabels := map[string]int{}
	cfg := Config{Workers: 4, Progress: func(done, total int, label string) {
		if total != n {
			t.Errorf("progress total = %d, want %d", total, n)
		}
		progressDone = append(progressDone, done)
		progressLabels[label]++
	}}
	err := cfg.sweep(context.Background(), labels, func(ctx context.Context, i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("cell %d ran %d times", i, c)
		}
	}
	if len(progressDone) != n {
		t.Fatalf("progress called %d times, want %d", len(progressDone), n)
	}
	for i, d := range progressDone {
		if d != i+1 {
			t.Errorf("progress done[%d] = %d, want %d (not monotonic)", i, d, i+1)
		}
	}
	for _, l := range labels {
		if progressLabels[l] != 1 {
			t.Errorf("label %q reported %d times", l, progressLabels[l])
		}
	}
}

// TestSweepLowestCellError checks the reported error comes from the
// lowest-numbered failing cell regardless of worker count: cell 0 always
// starts before cancellation can propagate, so when it fails its error wins.
func TestSweepLowestCellError(t *testing.T) {
	labels := make([]string, 16)
	for i := range labels {
		labels[i] = fmt.Sprintf("cell-%d", i)
	}
	for _, workers := range []int{1, 4, 16} {
		cfg := Config{Workers: workers}
		err := cfg.sweep(context.Background(), labels, func(ctx context.Context, i int) error {
			return fmt.Errorf("cell %d failed", i)
		})
		if err == nil || err.Error() != "cell 0 failed" {
			t.Errorf("workers=%d: err = %v, want cell 0's error", workers, err)
		}
	}
}

// TestSweepErrorCancelsRemaining checks a failing cell stops the sweep: with
// one worker, cells after the failure never run.
func TestSweepErrorCancelsRemaining(t *testing.T) {
	labels := make([]string, 10)
	for i := range labels {
		labels[i] = fmt.Sprintf("cell-%d", i)
	}
	var ran []int
	cfg := Config{Workers: 1}
	err := cfg.sweep(context.Background(), labels, func(ctx context.Context, i int) error {
		ran = append(ran, i)
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Errorf("ran %v; cells after the failure should not run", ran)
	}
}

// TestSweepContextCancellation checks a canceled parent context aborts the
// sweep and surfaces ctx.Err().
func TestSweepContextCancellation(t *testing.T) {
	labels := make([]string, 100)
	for i := range labels {
		labels[i] = fmt.Sprintf("cell-%d", i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var count int
	var mu sync.Mutex
	cfg := Config{Workers: 2}
	err := cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		mu.Lock()
		count++
		if count == 5 {
			cancel()
		}
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count == 100 {
		t.Error("cancellation did not stop the sweep")
	}
}

// TestSweepCellContextPropagates checks cells observe cancellation through
// the context they are handed.
func TestSweepCellContextPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Workers: 2}
	//age:allow detrand hang-detection stopwatch in a test; not experiment data
	start := time.Now()
	err := cfg.sweep(ctx, []string{"a", "b", "c"}, func(ctx context.Context, i int) error {
		<-ctx.Done() // must already be closed
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	//age:allow detrand hang-detection stopwatch in a test; not experiment data
	if time.Since(start) > 5*time.Second {
		t.Error("sweep hung on canceled context")
	}
}

// TestSweepDeterminism is the tentpole's acceptance check: the rendered
// tables must be byte-identical for any worker count at the same seed,
// because per-cell RNGs derive from cell tags and results merge in canonical
// order. Run under -race in CI, this also exercises the concurrent paths.
func TestSweepDeterminism(t *testing.T) {
	render := func(workers int) string {
		cfg := tinyConfig()
		cfg.Workers = workers
		ctx := context.Background()
		t45, err := Table45(ctx, cfg, []string{"epilepsy"})
		if err != nil {
			t.Fatal(err)
		}
		t6, err := Table6(ctx, cfg, []string{"epilepsy"})
		if err != nil {
			t.Fatal(err)
		}
		f1, err := Figure1(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return t45.Table4String() + t45.Table5String() + t6.String() + f1.String()
	}
	sequential := render(1)
	for _, workers := range []int{2, 4} {
		if got := render(workers); got != sequential {
			t.Errorf("workers=%d output differs from sequential (Workers=1)", workers)
		}
	}
}

// TestSweepMetrics checks the sweep's instruments reconcile with what
// actually ran, and that enabling them leaves cell execution untouched.
func TestSweepMetrics(t *testing.T) {
	const n = 17
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("cell-%d", i)
	}
	reg := metrics.NewRegistry()
	cfg := Config{Workers: 4, Metrics: reg}
	var mu sync.Mutex
	ran := 0
	err := cfg.sweep(context.Background(), labels, func(ctx context.Context, i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["exp.cells_total"]; got != n {
		t.Errorf("cells_total = %d, want %d", got, n)
	}
	if got := snap.Counters["exp.cells_done"]; got != int64(ran) {
		t.Errorf("cells_done = %d, ran %d", got, ran)
	}
	if got := snap.Counters["exp.cells_failed"]; got != 0 {
		t.Errorf("cells_failed = %d on a clean sweep", got)
	}
	if got := snap.Gauges["exp.workers"]; got != 4 {
		t.Errorf("workers gauge = %d, want 4", got)
	}
	if got := snap.Gauges["exp.workers_busy"]; got != 0 {
		t.Errorf("workers_busy = %d after the sweep drained", got)
	}
	if got := snap.Histograms["exp.cell_ns"].Count; got != n {
		t.Errorf("cell_ns observations = %d, want %d", got, n)
	}

	// A failing sweep counts exactly the real failures, not the
	// cancellation fallout of other cells.
	reg2 := metrics.NewRegistry()
	cfg2 := Config{Workers: 1, Metrics: reg2}
	err = cfg2.sweep(context.Background(), labels, func(ctx context.Context, i int) error {
		if i == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("failing sweep returned nil")
	}
	snap = reg2.Snapshot()
	if got := snap.Counters["exp.cells_failed"]; got != 1 {
		t.Errorf("cells_failed = %d, want the 1 real failure", got)
	}
	if got := snap.Counters["exp.cells_done"]; got != 2 {
		t.Errorf("cells_done = %d, want the 2 cells before the failure", got)
	}
}
