package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/reconstruct"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// Figure1Series is one policy's outcome on one example sequence.
type Figure1Series struct {
	Collected int
	Error     float64
	Recon     [][]float64
}

// Figure1Result reproduces Figure 1: subsampling a calm (walking) and a
// volatile (running) window with a Random policy versus an adaptive Linear
// policy at a 70% budget. The adaptive policy reallocates samples from the
// calm window to the volatile one, cutting total error.
type Figure1Result struct {
	// Truth, Random, Adaptive per event ("walking", "running").
	Truth map[string][][]float64
	Cases map[string]map[string]Figure1Series // event -> policy -> series
	// TotalErrorRandom and TotalErrorAdaptive sum both windows.
	TotalErrorRandom, TotalErrorAdaptive float64
}

// Figure1 runs the motivating example. Each (event, policy) case draws from
// its own tagged RNG — the previous shared RNG made the result depend on map
// iteration order.
func Figure1(ctx context.Context, cfg Config) (*Figure1Result, error) {
	ws, err := prepareWorkloads(ctx, cfg, []string{"epilepsy"}, false)
	if err != nil {
		return nil, err
	}
	w := ws["epilepsy"]
	byLabel := w.Data.ByLabel()
	if len(byLabel[1]) == 0 || len(byLabel[2]) == 0 {
		return nil, fmt.Errorf("experiments: missing walking/running sequences")
	}
	events := map[string][][]float64{
		"walking": w.Data.Sequences[byLabel[1][0]].Values,
		"running": w.Data.Sequences[byLabel[2][0]].Values,
	}
	const rate = 0.7
	linFit := w.LinearFit[key(rate)]
	policies := map[string]policy.Policy{
		"random":   policy.NewRandom(rate),
		"adaptive": policy.NewLinear(linFit.Threshold),
	}
	eventOrder := []string{"walking", "running"}
	policyOrder := []string{"random", "adaptive"}
	type cellKey struct{ event, pname string }
	var keys []cellKey
	var labels []string
	for _, event := range eventOrder {
		for _, pname := range policyOrder {
			keys = append(keys, cellKey{event, pname})
			labels = append(labels, fmt.Sprintf("figure1/%s/%s", event, pname))
		}
	}
	out := make([]Figure1Series, len(keys))
	d := w.Data.Meta.NumFeatures
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		k := keys[i]
		seq := events[k.event]
		idx := policies[k.pname].Sample(seq, cfg.newRNG(labels[i]))
		vals := make([][]float64, len(idx))
		for j, t := range idx {
			vals[j] = seq[t]
		}
		recon, err := reconstruct.Linear(idx, vals, len(seq), d)
		if err != nil {
			return err
		}
		mae, err := reconstruct.MAE(recon, seq)
		if err != nil {
			return err
		}
		out[i] = Figure1Series{Collected: len(idx), Error: mae, Recon: recon}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{Truth: events, Cases: map[string]map[string]Figure1Series{}}
	for i, k := range keys {
		if res.Cases[k.event] == nil {
			res.Cases[k.event] = map[string]Figure1Series{}
		}
		res.Cases[k.event][k.pname] = out[i]
		if k.pname == "random" {
			res.TotalErrorRandom += out[i].Error
		} else {
			res.TotalErrorAdaptive += out[i].Error
		}
	}
	return res, nil
}

// Figure5Point is one budget's outcome on the Activity task.
type Figure5Point struct {
	Rate     float64
	PerSeqMJ float64
	// MAE per column ("uniform", "linear-std", "linear-age",
	// "deviation-std", "deviation-age").
	MAE map[string]float64
}

// Figure5Result reproduces Figure 5: MAE versus energy budget on Activity.
type Figure5Result struct {
	Points []Figure5Point
}

// Figure5Columns lists the five plotted policies.
var Figure5Columns = []string{"uniform", "linear-std", "linear-age", "deviation-std", "deviation-age"}

// Figure5 sweeps the Activity budgets.
func Figure5(ctx context.Context, cfg Config) (*Figure5Result, error) {
	ws, err := prepareWorkloads(ctx, cfg, []string{"activity"}, false)
	if err != nil {
		return nil, err
	}
	w := ws["activity"]
	type cellKey struct {
		rate float64
		col  string
	}
	type cellOut struct {
		mae, perSeqMJ float64
	}
	var keys []cellKey
	var labels []string
	for _, rate := range cfg.Rates {
		for _, col := range Figure5Columns {
			keys = append(keys, cellKey{rate, col})
			labels = append(labels, fmt.Sprintf("figure5/%s@%g", col, rate))
		}
	}
	out := make([]cellOut, len(keys))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		k := keys[i]
		pk, enc := columnSpec(k.col)
		run, err := w.RunCell(pk, enc, k.rate, simulator.ModeSimulation)
		if err != nil {
			return err
		}
		out[i] = cellOut{mae: run.MAE, perSeqMJ: run.BudgetMJ / float64(len(run.Seqs))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{}
	i := 0
	for _, rate := range cfg.Rates {
		pt := Figure5Point{Rate: rate, MAE: map[string]float64{}}
		for _, col := range Figure5Columns {
			pt.MAE[col] = out[i].mae
			pt.PerSeqMJ = out[i].perSeqMJ
			i++
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// AttackSummary is one policy/encoder attack outcome over the budget grid.
type AttackSummary struct {
	Median, Q1, Q3, Max float64 // accuracies in percent
	MajorityPct         float64
}

// Figure6Result reproduces Figure 6: attacker event-detection accuracy per
// dataset for the adaptive policies with and without AGE.
type Figure6Result struct {
	Datasets []string
	// Cells[dataset][column] with columns "linear-std", "linear-age",
	// "deviation-std", "deviation-age".
	Cells map[string]map[string]AttackSummary
}

// Figure6Columns lists the four attacked configurations.
var Figure6Columns = []string{"linear-std", "linear-age", "deviation-std", "deviation-age"}

// Figure6 runs the attack over every dataset and budget.
func Figure6(ctx context.Context, cfg Config, datasets []string) (*Figure6Result, error) {
	if datasets == nil {
		datasets = dataset.Names()
	}
	ws, err := prepareWorkloads(ctx, cfg, datasets, false)
	if err != nil {
		return nil, err
	}
	type cellKey struct {
		name, col string
		rate      float64
	}
	type cellOut struct {
		accPct, majPct float64
	}
	var keys []cellKey
	var labels []string
	for _, name := range datasets {
		for _, col := range Figure6Columns {
			for _, rate := range cfg.Rates {
				keys = append(keys, cellKey{name, col, rate})
				labels = append(labels, fmt.Sprintf("figure6/%s/%s@%g", name, col, rate))
			}
		}
	}
	out := make([]cellOut, len(keys))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		k := keys[i]
		w := ws[k.name]
		pk, enc := columnSpec(k.col)
		run, err := w.RunCell(pk, enc, k.rate, simulator.ModeSimulation)
		if err != nil {
			return err
		}
		acc, maj, err := attackAccuracy(run.SizesByLabel, w.Data.Meta.NumLabels, cfg, cfg.newRNG(labels[i]))
		if err != nil {
			return err
		}
		out[i] = cellOut{accPct: acc * 100, majPct: maj * 100}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{Datasets: datasets, Cells: map[string]map[string]AttackSummary{}}
	i := 0
	for _, name := range datasets {
		res.Cells[name] = map[string]AttackSummary{}
		for _, col := range Figure6Columns {
			var accs []float64
			var majority float64
			for range cfg.Rates {
				accs = append(accs, out[i].accPct)
				if out[i].majPct > majority {
					majority = out[i].majPct
				}
				i++
			}
			res.Cells[name][col] = AttackSummary{
				Median: stats.Median(accs), Q1: stats.Quantile(accs, 0.25),
				Q3: stats.Quantile(accs, 0.75), Max: stats.Max(accs),
				MajorityPct: majority,
			}
		}
	}
	return res, nil
}

// Figure7Result reproduces Figure 7: seizure-vs-other confusion matrices for
// the Linear policy with and without AGE at one budget.
type Figure7Result struct {
	Rate float64
	// Confusion[encoder][true][pred], encoders "std" and "age"; class 0
	// is Seizure, class 1 Other.
	Confusion map[string][][]int
	Accuracy  map[string]float64
}

// Figure7 binarizes Epilepsy into seizure vs other and attacks both
// encoders.
func Figure7(ctx context.Context, cfg Config) (*Figure7Result, error) {
	const rate = 0.7
	ws, err := prepareWorkloads(ctx, cfg, []string{"epilepsy"}, false)
	if err != nil {
		return nil, err
	}
	w := ws["epilepsy"]
	encoders := []simulator.EncoderKind{simulator.EncStandard, simulator.EncAGE}
	names := []string{"std", "age"}
	type cellOut struct {
		confusion [][]int
		accuracy  float64
	}
	labels := make([]string, len(encoders))
	for i, name := range names {
		labels[i] = "figure7/" + name
	}
	out := make([]cellOut, len(encoders))
	err = cfg.sweep(ctx, labels, func(ctx context.Context, i int) error {
		run, err := w.RunCell("linear", encoders[i], rate, simulator.ModeSimulation)
		if err != nil {
			return err
		}
		// Binarize: label 0 (seizure) vs everything else.
		binSizes := binarizeSizes(run.SizesByLabel)
		rng := cfg.newRNG(labels[i])
		samples, err := attack.BuildSamples(binSizes, cfg.AttackSamples, rng)
		if err != nil {
			return err
		}
		cv, err := attack.CrossValidate(samples, 2, 5, attack.DefaultAdaBoostConfig(), rng)
		if err != nil {
			return err
		}
		out[i] = cellOut{confusion: cv.Confusion, accuracy: cv.MeanAccuracy}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure7Result{Rate: rate, Confusion: map[string][][]int{}, Accuracy: map[string]float64{}}
	for i, name := range names {
		res.Confusion[name] = out[i].confusion
		res.Accuracy[name] = out[i].accuracy
	}
	return res, nil
}

// binarizeSizes folds the per-label size lists into two bins — label 0
// (seizure) vs everything else — iterating labels in sorted order so the
// concatenation within each bin is deterministic. Ranging the map directly
// here made bin 1's element order depend on Go's map iteration order, which
// perturbed attack.BuildSamples' RNG draws and broke the byte-identical-
// across-worker-counts guarantee for Figure 7 (caught by the detrand
// analyzer).
func binarizeSizes(sizesByLabel map[int][]int) map[int][]int {
	binSizes := map[int][]int{}
	for _, l := range sortedKeys(sizesByLabel) {
		b := 1
		if l == 0 {
			b = 0
		}
		binSizes[b] = append(binSizes[b], sizesByLabel[l]...)
	}
	return binSizes
}

// Sec58Result reproduces the §5.8 overhead analysis: modeled encode energy
// for AGE versus a direct buffer write on one Activity sequence, the radio
// energy the §4.5 target reduction saves, and measured wall-clock encode
// times from this implementation.
type Sec58Result struct {
	// Energies in millijoules (model, unscaled by the 4x safety factor).
	EncodeStandardMJ, EncodeAGEMJ float64
	// CommSavedMJ is the radio energy saved by the ~30-byte reduction.
	CommSavedMJ float64
	// ReductionBytes for the Activity target.
	ReductionBytes int
	// Measured wall-clock per encode in this Go implementation.
	StandardNs, AGENs float64
	// Measured steady-state heap allocations per encode (AppendEncode with
	// a reused destination buffer). The hot paths are pinned at zero.
	StandardAllocs, AGEAllocs float64
}

// Sec58 computes the overhead analysis for the Activity workload. The timing
// loops are intentionally sequential — concurrent cells would contend for
// cores and corrupt the wall-clock measurement.
func Sec58(ctx context.Context, cfg Config) (*Sec58Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	meta, err := dataset.MetaFor("activity")
	if err != nil {
		return nil, err
	}
	model := energy.Default()
	values := meta.SeqLen * meta.NumFeatures
	mb := core.TargetBytesForRate(0.7, meta.SeqLen, meta.NumFeatures, meta.Format.Width)
	reduced := core.ReduceTarget(mb)
	res := &Sec58Result{
		EncodeStandardMJ: model.EncodeStandardUJPerValue * float64(values) / 1000,
		EncodeAGEMJ:      model.EncodeAGEUJPerValue * float64(values) / 1000,
		CommSavedMJ:      model.PerByteMJ * float64(mb-reduced),
		ReductionBytes:   mb - reduced,
	}
	// Measure this implementation's wall-clock encode cost.
	coreCfg := core.Config{T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format, TargetBytes: reduced}
	ageEnc, err := core.NewAGE(coreCfg)
	if err != nil {
		return nil, err
	}
	stdEnc, err := core.NewStandard(coreCfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	batch := fullBatch(meta.SeqLen, meta.NumFeatures, rng)
	res.StandardNs, res.StandardAllocs, err = measureEncode(stdEnc, batch)
	if err != nil {
		return nil, err
	}
	res.AGENs, res.AGEAllocs, err = measureEncode(ageEnc, batch)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// measureEncode times the steady-state AppendEncode path (reused destination
// buffer, warmed scratch) and reports ns/op and heap allocations/op.
func measureEncode(enc core.AppendEncoder, batch core.Batch) (nsPerOp, allocsPerOp float64, err error) {
	const iters = 200
	// Warm up so one-time growth (dst, pooled scratch) stays out of the
	// steady-state measurement.
	dst, err := enc.AppendEncode(nil, batch)
	if err != nil {
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	//age:allow detrand wall-clock benchmark of encoder latency; timing is the measurement, not an input to results
	start := time.Now()
	for i := 0; i < iters; i++ {
		if dst, err = enc.AppendEncode(dst[:0], batch); err != nil {
			return 0, 0, err
		}
	}
	//age:allow detrand wall-clock benchmark of encoder latency; timing is the measurement, not an input to results
	nsPerOp = float64(time.Since(start).Nanoseconds()) / iters
	runtime.ReadMemStats(&after)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / iters
	return nsPerOp, allocsPerOp, nil
}

// fullBatch builds a complete batch of random in-range Activity values.
func fullBatch(T, d int, rng *rand.Rand) core.Batch {
	idx := make([]int, T)
	vals := make([][]float64, T)
	for t := 0; t < T; t++ {
		idx[t] = t
		row := make([]float64, d)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		vals[t] = row
	}
	return core.Batch{Indices: idx, Values: vals}
}
