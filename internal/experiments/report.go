package experiments

import (
	"fmt"
	"strings"
)

// This file renders experiment results as text tables shaped like the
// paper's, so a reader can put them side by side with the published numbers
// (EXPERIMENTS.md records that comparison).

func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: mean (std) Standard message bytes by event, Epilepsy @ %.0f%% budget\n", r.Rate*100)
	fmt.Fprintf(&b, "%-10s", "Event")
	for _, p := range r.Policies {
		fmt.Fprintf(&b, " %22s", p)
	}
	b.WriteString("\n")
	for ei, ev := range r.Events {
		fmt.Fprintf(&b, "%-10s", ev)
		for _, p := range r.Policies {
			s := r.Stats[p][ei]
			fmt.Fprintf(&b, " %12.2f (±%6.2f)", s.Mean, s.Std)
		}
		b.WriteString("\n")
	}
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "max pairwise Welch p (%s): %.3g\n", p, r.MaxPairwiseP[p])
	}
	return b.String()
}

func (r *Table45Result) render(title string, mean map[string]map[string]float64, overall map[string]float64) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-12s", "Dataset")
	for _, col := range ErrorColumns {
		fmt.Fprintf(&b, " %16s", col)
	}
	b.WriteString("\n")
	for _, name := range r.Sweep.Datasets {
		fmt.Fprintf(&b, "%-12s", name)
		for _, col := range ErrorColumns {
			fmt.Fprintf(&b, " %16.4f", mean[name][col])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-12s", "Overall(%)")
	for _, col := range ErrorColumns {
		fmt.Fprintf(&b, " %+15.2f%%", overall[col])
	}
	b.WriteString("\n")
	return b.String()
}

// Table4String renders the plain-MAE table.
func (r *Table45Result) Table4String() string {
	return r.render("Table 4: mean MAE across budgets", r.MeanMAE, r.OverallPct)
}

// Table5String renders the deviation-weighted table.
func (r *Table45Result) Table5String() string {
	return r.render("Table 5: mean deviation-weighted MAE across budgets", r.MeanWeighted, r.OverallPctWeighted)
}

func (r *Table6Result) String() string {
	var b strings.Builder
	b.WriteString("Table 6: median / max NMI(size, event); sig = fraction of budgets significant at alpha=0.01\n")
	fmt.Fprintf(&b, "%-12s %28s %28s\n", "Dataset", "Linear (std | padded | age)", "Deviation (std | padded | age)")
	for _, name := range r.Datasets {
		c := r.Cells[name]
		ls, lp, la := c["linear-standard"], c["linear-padded"], c["linear-age"]
		ds, dp, da := c["deviation-standard"], c["deviation-padded"], c["deviation-age"]
		fmt.Fprintf(&b, "%-12s %.2f/%.2f sig=%.0f%% | %.2f | %.2f    %.2f/%.2f sig=%.0f%% | %.2f | %.2f\n",
			name,
			ls.Median, ls.Max, ls.SignificantFrac*100, lp.Max, la.Max,
			ds.Median, ds.Max, ds.SignificantFrac*100, dp.Max, da.Max)
	}
	return b.String()
}

// Table7String renders the Skip RNN table.
func Table7String(rows []Table7Row) string {
	var b strings.Builder
	b.WriteString("Table 7: Skip RNN — mean MAE, max NMI, max attack accuracy\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %8s %8s %10s %10s %10s\n",
		"Dataset", "MAE", "MAE+AGE", "NMI", "NMI+AGE", "Atk(%)", "Atk+AGE(%)", "Majority(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.4f %10.4f %8.2f %8.2f %10.2f %10.2f %10.2f\n",
			r.Dataset, r.MAEStd, r.MAEAGE, r.NMIStd, r.NMIAGE, r.AttackStd, r.AttackAGE, r.MajorityBaselinePct)
	}
	return b.String()
}

func (r *Table8Result) String() string {
	var b strings.Builder
	b.WriteString("Table 8: median percent error above AGE (higher = worse variant)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "Variant", "Linear", "Deviation")
	for _, v := range []string{"single", "unshifted", "pruned"} {
		fmt.Fprintf(&b, "%-10s %11.3f%% %11.3f%%\n", v, r.Pct[v]["linear"], r.Pct[v]["deviation"])
	}
	fmt.Fprintf(&b, "%-10s %11.3f%% %11.3f%%\n", "age", 0.0, 0.0)
	return b.String()
}

// Table9String renders the MCU energy table.
func (r *MCUResult) Table9String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 9 (%s): mean energy per sequence (mJ) under MCU budgets\n", r.Dataset)
	fmt.Fprintf(&b, "%-18s", "Policy")
	for i, bm := range r.BudgetsMJ {
		fmt.Fprintf(&b, " %8.3fJ(%.0f%%)", bm/1000, r.Rates[i]*100)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s", row.Policy)
		for _, e := range row.EnergyMJ {
			fmt.Fprintf(&b, " %15.2f", e)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table10String renders the MCU error table.
func (r *MCUResult) Table10String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 10 (%s): MAE under MCU budgets\n", r.Dataset)
	fmt.Fprintf(&b, "%-18s", "Policy")
	for i, bm := range r.BudgetsMJ {
		fmt.Fprintf(&b, " %8.3fJ(%.0f%%)", bm/1000, r.Rates[i]*100)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s", row.Policy)
		for _, e := range row.MAE {
			fmt.Fprintf(&b, " %15.4f", e)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (r *Figure1Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1: subsampling example (Epilepsy walking vs running, 70% budget)\n")
	for _, ev := range []string{"walking", "running"} {
		rnd, adp := r.Cases[ev]["random"], r.Cases[ev]["adaptive"]
		fmt.Fprintf(&b, "%-8s  random: #%2d err=%.4f   adaptive: #%2d err=%.4f\n",
			ev, rnd.Collected, rnd.Error, adp.Collected, adp.Error)
	}
	fmt.Fprintf(&b, "total error: random %.4f, adaptive %.4f (%.2fx lower)\n",
		r.TotalErrorRandom, r.TotalErrorAdaptive, r.TotalErrorRandom/r.TotalErrorAdaptive)
	return b.String()
}

func (r *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: MAE per budget on Activity\n")
	fmt.Fprintf(&b, "%-10s %10s", "Rate", "mJ/seq")
	for _, col := range Figure5Columns {
		fmt.Fprintf(&b, " %14s", col)
	}
	b.WriteString("\n")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-10.1f %10.2f", pt.Rate, pt.PerSeqMJ)
		for _, col := range Figure5Columns {
			fmt.Fprintf(&b, " %14.4f", pt.MAE[col])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (r *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: attacker accuracy (%) median [q1,q3] max per dataset\n")
	fmt.Fprintf(&b, "%-12s", "Dataset")
	for _, col := range Figure6Columns {
		fmt.Fprintf(&b, " %26s", col)
	}
	fmt.Fprintf(&b, " %10s\n", "majority")
	for _, name := range r.Datasets {
		fmt.Fprintf(&b, "%-12s", name)
		var maj float64
		for _, col := range Figure6Columns {
			c := r.Cells[name][col]
			fmt.Fprintf(&b, "  %5.1f [%5.1f,%5.1f] %5.1f", c.Median, c.Q1, c.Q3, c.Max)
			if c.MajorityPct > maj {
				maj = c.MajorityPct
			}
		}
		fmt.Fprintf(&b, " %9.1f%%\n", maj)
	}
	return b.String()
}

func (r *Figure7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: seizure detection confusion (Linear @ %.0f%% budget)\n", r.Rate*100)
	for _, enc := range []string{"std", "age"} {
		cm := r.Confusion[enc]
		fmt.Fprintf(&b, "[%s] accuracy %.3f\n", enc, r.Accuracy[enc])
		fmt.Fprintf(&b, "            pred-seizure  pred-other\n")
		fmt.Fprintf(&b, "  seizure %12d %11d\n", cm[0][0], cm[0][1])
		fmt.Fprintf(&b, "  other   %12d %11d\n", cm[1][0], cm[1][1])
	}
	return b.String()
}

func (r *Sec58Result) String() string {
	var b strings.Builder
	b.WriteString("Sec 5.8: encoding overhead analysis (Activity, full sequence)\n")
	fmt.Fprintf(&b, "modeled encode energy: standard %.4f mJ, AGE %.4f mJ (paper: 0.016 / 0.154)\n",
		r.EncodeStandardMJ, r.EncodeAGEMJ)
	fmt.Fprintf(&b, "target reduction: %d bytes -> saves %.2f mJ radio energy (paper: ~30B, ~0.9 mJ)\n",
		r.ReductionBytes, r.CommSavedMJ)
	fmt.Fprintf(&b, "measured wall-clock: standard %.0f ns, AGE %.0f ns (%.1fx)\n",
		r.StandardNs, r.AGENs, r.AGENs/r.StandardNs)
	fmt.Fprintf(&b, "measured steady-state allocs/op: standard %.2f, AGE %.2f\n",
		r.StandardAllocs, r.AGEAllocs)
	return b.String()
}
