package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime/debug"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("frames") != c {
		t.Error("repeated Counter lookup returned a different instrument")
	}
	g := r.Gauge("busy")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(7)
	r.Series("s").Counter("0").Inc()
	r.GaugeFunc("f", func() int64 { return 1 })
	if c.Value() != 0 {
		t.Error("nil counter stored a value")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	hs := h.snapshot()
	if hs.Count != 5 || hs.Sum != 5122 || hs.Max != 5000 {
		t.Errorf("count/sum/max = %d/%d/%d", hs.Count, hs.Sum, hs.Max)
	}
	want := map[int64]int64{10: 2, 100: 2, math.MaxInt64: 1}
	for _, b := range hs.Buckets {
		if want[b.LE] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.LE, b.Count, want[b.LE])
		}
		delete(want, b.LE)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
	if math.Abs(hs.Mean-5122.0/5) > 1e-9 {
		t.Errorf("mean = %g", hs.Mean)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	NewHistogram(10, 10)
}

func TestSeriesPerLabelCounters(t *testing.T) {
	r := NewRegistry()
	s := r.Series("fleet.sensor.frames")
	s.Counter("0").Add(3)
	s.Counter("1").Inc()
	if s.Counter("0") != s.Counter("0") {
		t.Error("label lookup not stable")
	}
	snap := r.Snapshot()
	got := snap.Series["fleet.sensor.frames"]
	if got["0"] != 3 || got["1"] != 1 {
		t.Errorf("series snapshot = %v", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.GaugeFunc("depth", func() int64 { return v })
	v = 42
	if got := r.Snapshot().Gauges["depth"]; got != 42 {
		t.Errorf("gauge func = %d, want 42", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(-2)
	r.Histogram("lat", LatencyBuckets()...).Observe(1500)
	r.Series("per").Counter("x").Inc()

	var buf jsonBuffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.b, &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back.Counters["a"] != 7 || back.Gauges["b"] != -2 {
		t.Errorf("round trip lost values: %+v", back)
	}
	if back.Histograms["lat"].Count != 1 {
		t.Errorf("histogram lost: %+v", back.Histograms)
	}
	if back.Series["per"]["x"] != 1 {
		t.Errorf("series lost: %+v", back.Series)
	}
	if back.TakenUnixNano == 0 {
		t.Error("snapshot missing timestamp")
	}
}

type jsonBuffer struct{ b []byte }

func (j *jsonBuffer) Write(p []byte) (int, error) { j.b = append(j.b, p...); return len(p), nil }

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("fleet.frames_delivered").Add(12)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics body does not parse: %v\n%s", err, body)
	}
	if snap.Counters["fleet.frames_delivered"] != 12 {
		t.Errorf("served snapshot = %+v", snap)
	}
}

func TestListenAndServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("hello").Inc()
	srv, err := r.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics body: %v", err)
	}
	if snap.Counters["hello"] != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	resp, err = http.Get("http://" + srv.Addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint status %d", resp.StatusCode)
	}
}

func TestConcurrentUpdatesRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat", 100, 1000)
			s := r.Series("per")
			mine := s.Counter(fmt.Sprintf("%d", id))
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				mine.Inc()
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		_ = r.Snapshot()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("lat").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// The hot-path contract: once instruments are resolved, updates never
// allocate. This is what lets the encoder loops stay zero-alloc with
// instrumentation attached.
func TestUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets()...)
	sc := r.Series("s").Counter("7")
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if got := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(123_456)
		sc.Add(2)
	}); got != 0 {
		t.Errorf("hot-path update allocates %.1f/op, want 0", got)
	}
}

func TestSummaryIsSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	if got := r.Snapshot().Summary(); got != "a=1 b=2" {
		t.Errorf("summary = %q", got)
	}
}

func TestSizeBucketsCoverFrameRange(t *testing.T) {
	b := SizeBuckets()
	if b[0] != 16 || b[len(b)-1] != 1<<16 {
		t.Errorf("size buckets = %v", b)
	}
}

// TestHistogramBoundsConflict covers both registration paths: agreeing
// callers share the instrument silently, and a caller passing different
// bounds still gets the existing instrument (so updates keep landing in one
// family) but the disagreement is recorded and surfaces in snapshots.
func TestHistogramBoundsConflict(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("lat", 10, 20, 30)
	b := r.Histogram("lat", 10, 20, 30)
	if a != b {
		t.Fatal("same bounds must return the same histogram")
	}
	if n := len(r.HistogramConflicts()); n != 0 {
		t.Fatalf("agreeing registrations recorded %d conflicts", n)
	}

	c := r.Histogram("lat", 10, 20) // mismatched layout
	if c != a {
		t.Fatal("mismatched bounds must still return the registered histogram")
	}
	r.Histogram("lat", 10, 25, 30) // mismatched values, same length
	conflicts := r.HistogramConflicts()
	if conflicts["lat"] != 2 {
		t.Fatalf("conflicts[lat] = %d, want 2", conflicts["lat"])
	}
	snap := r.Snapshot()
	if got := snap.Counters["metrics.histogram_bounds_conflict.lat"]; got != 2 {
		t.Fatalf("snapshot conflict counter = %d, want 2", got)
	}

	// Another family stays clean.
	r.Histogram("other")
	r.Histogram("other")
	if _, ok := r.HistogramConflicts()["other"]; ok {
		t.Fatal("boundless family recorded a conflict")
	}
	// Nil registry degrades like every other lookup.
	var nilReg *Registry
	if nilReg.Histogram("x", 1) != nil || nilReg.HistogramConflicts() != nil {
		t.Fatal("nil registry must no-op")
	}
}
