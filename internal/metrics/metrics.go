// Package metrics is the repo's instrumentation library: atomic counters,
// gauges, fixed-bucket histograms, and labeled per-sensor series, collected
// into a Registry with a snapshot API and an expvar-style JSON dump.
//
// The package exists because message counts and sizes are this paper's whole
// threat model (§3.1): an operator of the fleet server should be able to see
// from a live run exactly what an eavesdropper sees — frames, wire bytes,
// retry churn — without waiting for the post-hoc experiment tables.
//
// Design constraints, in order:
//
//  1. Hot-path updates are allocation-free and lock-free: Counter.Add,
//     Gauge.Set, and Histogram.Observe are single atomic operations (Observe
//     adds a bounded bucket scan). The encoder hot loops are verified
//     zero-alloc by core's AllocsPerRun tests with instrumentation attached.
//  2. Observation only: nothing in this package feeds back into simulation
//     RNG, cell ordering, or transport behavior, so enabling metrics cannot
//     perturb the deterministic-sweep contract (DESIGN.md).
//  3. Get-or-create registration: Registry.Counter(name) et al. return the
//     existing instrument on repeated calls, so the fleet's n sensors share
//     one family of series without coordination.
//
// Callers cache instrument pointers outside their loops; name lookup takes
// the registry lock and is not for hot paths.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (e.g. busy workers, live
// connections). Unlike Counter it can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of int64 observations (typically
// nanoseconds or bytes). Buckets are cumulative-upper-bound style: counts[i]
// tallies observations <= bounds[i], with one overflow bucket past the last
// bound. Observations also accumulate into sum/count/max so snapshots can
// report a mean without bucket math.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
	count  atomic.Int64
	max    atomic.Int64
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds. An empty bound list still tracks count/sum/max.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Allocation-free; safe for concurrent use.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// LatencyBuckets returns the default nanosecond bounds for encode/decode and
// frame-service latency: 1µs to 1s, roughly logarithmic.
func LatencyBuckets() []int64 {
	return []int64{
		1_000, 2_000, 5_000,
		10_000, 20_000, 50_000,
		100_000, 200_000, 500_000,
		1_000_000, 2_000_000, 5_000_000,
		10_000_000, 50_000_000, 100_000_000,
		500_000_000, 1_000_000_000,
	}
}

// SizeBuckets returns the default byte-size bounds for wire messages: 16B to
// 64KiB (the frame format's MaxFrameSize), powers of two.
func SizeBuckets() []int64 {
	var b []int64
	for v := int64(16); v <= 1<<16; v <<= 1 {
		b = append(b, v)
	}
	return b
}

// Series is a named family of counters keyed by label — the per-sensor
// metric series ("fleet.sensor.frames"{sensor="17"}). Callers resolve the
// labeled counter once (Counter takes a lock) and cache the pointer for the
// hot path.
type Series struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// Counter returns the counter for label, creating it on first use.
func (s *Series) Counter(label string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[label]
	if !ok {
		c = &Counter{}
		s.m[label] = c
	}
	return c
}

// snapshot copies the family's current values.
func (s *Series) snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for label, c := range s.m {
		out[label] = c.Value()
	}
	return out
}

// Registry holds named instruments. All lookup methods are get-or-create and
// safe for concurrent use; a nil *Registry is a valid no-op sink (every
// lookup returns nil, and nil instruments swallow updates), so call sites can
// thread an optional registry without branching.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
	series     map[string]*Series
	// histConflicts counts, per histogram name, how often a later Histogram
	// call asked for bounds that disagree with the registered instrument.
	histConflicts map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      map[string]*Counter{},
		gauges:        map[string]*Gauge{},
		gaugeFuncs:    map[string]func() int64{},
		hists:         map[string]*Histogram{},
		series:        map[string]*Series{},
		histConflicts: map[string]int64{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time (for values that
// already live in someone else's atomic, like a worker-pool depth). A repeat
// registration under the same name replaces the callback.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// Histogram returns the named histogram, creating it with the given bounds on
// first use. Later calls return the existing histogram so concurrent
// registrations of one family agree — but a later call passing *different*
// bounds is almost certainly a caller bug (two sites disagreeing about a
// family's bucket layout, with one silently losing). The mismatch is
// recorded as a conflict: HistogramConflicts reports it, and every snapshot
// carries a metrics.histogram_bounds_conflict.<name> counter so the
// disagreement is visible wherever the metrics land.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
		return h
	}
	if !h.sameBounds(bounds) {
		r.histConflicts[name]++
	}
	return h
}

// sameBounds reports whether the histogram was built with exactly these
// bounds.
func (h *Histogram) sameBounds(bounds []int64) bool {
	if len(h.bounds) != len(bounds) {
		return false
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			return false
		}
	}
	return true
}

// HistogramConflicts returns, per histogram name, how many Histogram calls
// requested bounds that disagreed with the registered instrument. An empty
// map means every registration site agrees on its family's bucket layout.
func (r *Registry) HistogramConflicts() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.histConflicts))
	for name, n := range r.histConflicts {
		out[name] = n
	}
	return out
}

// Series returns the named labeled-counter family, creating it on first use.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{m: map[string]*Counter{}}
		r.series[name] = s
	}
	return s
}

// Bucket is one histogram bucket in a snapshot: the count of observations at
// most LE. The overflow bucket carries LE = math.MaxInt64 and marshals as
// "+Inf" via its JSON tag being a large number; readers should treat it as
// unbounded.
type Bucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a registry. It is
// plain data: safe to marshal, diff, or ship elsewhere. Individual instrument
// reads are atomic but the snapshot as a whole is not (counters keep moving
// while it is taken) — fine for observability, not for accounting.
type Snapshot struct {
	TakenUnixNano int64                        `json:"taken_unix_nano"`
	Counters      map[string]int64             `json:"counters,omitempty"`
	Gauges        map[string]int64             `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series        map[string]map[string]int64  `json:"series,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields a zero
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{TakenUnixNano: time.Now().UnixNano()}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	series := make(map[string]*Series, len(r.series))
	for k, v := range r.series {
		series[k] = v
	}
	histConflicts := make(map[string]int64, len(r.histConflicts))
	for k, v := range r.histConflicts {
		histConflicts[k] = v
	}
	r.mu.Unlock()

	snap.Counters = make(map[string]int64, len(counters)+len(histConflicts))
	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, n := range histConflicts {
		snap.Counters["metrics.histogram_bounds_conflict."+name] = n
	}
	snap.Gauges = make(map[string]int64, len(gauges)+len(gaugeFuncs))
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, f := range gaugeFuncs {
		snap.Gauges[name] = f()
	}
	snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
	for name, h := range hists {
		snap.Histograms[name] = h.snapshot()
	}
	snap.Series = make(map[string]map[string]int64, len(series))
	for name, s := range series {
		snap.Series[name] = s.snapshot()
	}
	return snap
}

// snapshot copies the histogram's state.
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if hs.Count > 0 {
		hs.Mean = float64(hs.Sum) / float64(hs.Count)
	}
	for i := range h.counts {
		le := int64(math.MaxInt64)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		if c := h.counts[i].Load(); c > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{LE: le, Count: c})
		}
	}
	return hs
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Summary renders a one-line human digest of the snapshot's counters, sorted
// by name — the shape agetables prints between progress ticks.
func (s Snapshot) Summary() string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", n, s.Counters[n])
	}
	return out
}
