package metrics

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler that serves the registry's snapshot as
// JSON — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
}

// Server is a running debug endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
}

// Close shuts the endpoint down, waiting briefly for in-flight requests.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// ListenAndServe starts the debug HTTP endpoint on addr, serving
//
//	/metrics        the registry snapshot as JSON
//	/debug/pprof/*  the standard net/http/pprof profiles
//
// on a private mux (nothing is registered on http.DefaultServeMux). The
// endpoint is observation-only: it reads atomics and never touches
// simulation state, so serving it alongside a deterministic sweep cannot
// change the sweep's output.
func (r *Registry) ListenAndServe(addr string) (*Server, error) {
	return r.ListenAndServeWith(addr, nil)
}

// ListenAndServeWith is ListenAndServe plus extra handlers mounted on the
// same private mux — how subsystems with their own queryable state (e.g.
// the projection engine's /projections snapshot) ride along with /metrics
// on one debug port. Paths must not collide with /metrics or
// /debug/pprof/.
func (r *Registry) ListenAndServeWith(addr string, extra map[string]http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	for path, h := range extra {
		mux.Handle(path, h)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}
