//go:build !race

package core

// raceEnabled reports whether the race detector is active. Allocation-count
// assertions are skipped under -race: the detector's instrumentation
// allocates inside sync.Pool and inflates AllocsPerRun.
const raceEnabled = false
