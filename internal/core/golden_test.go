package core

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/fixedpoint"
)

// The golden wire vectors pin every encoder's output byte-for-byte across
// width/exponent edge cases. They were generated from the original scalar
// bit-packing and quantization kernels; the word-at-a-time and fused kernels
// must reproduce them exactly, so any wire-format drift — however subtle —
// fails here before it can corrupt a deployment that mixes old and new
// binaries. Regenerate with `go test -run TestGoldenWireVectors -update`
// only for a deliberate, documented wire-format change.

var updateGolden = flag.Bool("update", false, "rewrite testdata golden wire vectors")

const goldenPath = "testdata/golden_wire.json"

// goldenCase is one (config, batch, encoder) cell. Raw mantissa inputs for
// the MCU encoders are derived from the float batch via the native format.
type goldenCase struct {
	name string
	cfg  Config
	b    Batch
}

// goldenBatch builds a deterministic batch whose values sweep the exponent
// range of the format: tiny fractions, exact powers of two, boundary values
// around the clamp limits, negatives, zeros, and out-of-range magnitudes.
func goldenBatch(rng *rand.Rand, T, d, k int, f fixedpoint.Format) Batch {
	edge := []float64{
		0, -0.0, 1, -1, 0.5, -0.5,
		f.Resolution(), -f.Resolution(), 1.5 * f.Resolution(),
		f.Max(), f.Min(), f.Max() * 2, f.Min() * 2, // clamp both sides
		math.Pow(2, float64(f.NonFrac-1)) - 1, // widest in-range exponent
		1.0 / 3.0, -2.0 / 3.0, math.Pi, -math.E,
	}
	perm := rng.Perm(T)[:k]
	sort.Ints(perm)
	vals := make([][]float64, k)
	n := 0
	for i := range vals {
		row := make([]float64, d)
		for fi := range row {
			if n%3 == 0 {
				row[fi] = edge[(n/3)%len(edge)]
			} else {
				row[fi] = (rng.Float64()*2 - 1) * f.Max() * 1.5
			}
			n++
		}
		vals[i] = row
	}
	return Batch{Indices: perm, Values: vals}
}

// rawFromBatch quantizes the float batch into native mantissas for the MCU
// (integer-only) encoders.
func rawFromBatch(b Batch, f fixedpoint.Format) [][]int32 {
	raw := make([][]int32, len(b.Values))
	for i, row := range b.Values {
		r := make([]int32, len(row))
		for j, v := range row {
			r[j] = fixedpoint.FromFloat(v, f).Raw
		}
		raw[i] = r
	}
	return raw
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	mk := func(T, d, w, nf, target int) Config {
		return Config{T: T, D: d, Format: fixedpoint.Format{Width: w, NonFrac: nf}, TargetBytes: target}
	}
	var cases []goldenCase
	add := func(name string, cfg Config, k int, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cases = append(cases, goldenCase{name: name, cfg: cfg, b: goldenBatch(rng, cfg.T, cfg.D, k, cfg.Format)})
	}
	// Activity-like: Q3.13, moderate batch (explicit index encoding).
	add("activity_q3.13_sparse", mk(50, 6, 16, 3, TargetBytesForRate(0.7, 50, 6, 16)), 12, 101)
	// Dense batch: bitmask index encoding, heavy pruning pressure.
	add("activity_q3.13_dense", mk(50, 6, 16, 3, TargetBytesForRate(0.5, 50, 6, 16)), 50, 102)
	// Long sequence (MNIST-like): T=784 forces the bitmask path.
	add("mnist_q2.6_long", mk(784, 1, 8, 2, TargetBytesForRate(0.3, 784, 1, 8)), 300, 103)
	// Wide format at the 32-bit kernel ceiling.
	add("wide_q8.24_full", mk(40, 2, 32, 8, TargetBytesForRate(0.8, 40, 2, 32)), 30, 104)
	// Narrow 6-bit native width: widths pinned at tiny values.
	add("narrow_q3.3", mk(64, 3, 6, 3, TargetBytesForRate(0.6, 64, 3, 6)), 35, 105)
	// Coarse format (NonFrac > Width): negative fractional bits.
	add("coarse_q20.16", mk(30, 2, 16, 20, TargetBytesForRate(0.7, 30, 2, 16)), 18, 106)
	// EOG-like 20-bit wide-exponent format.
	add("eog_q10.10", mk(96, 4, 20, 10, TargetBytesForRate(0.4, 96, 4, 20)), 40, 107)
	// Single measurement and empty batch.
	add("tiny_single_measurement", mk(50, 6, 16, 3, 64), 1, 108)
	cases = append(cases, goldenCase{name: "empty_batch", cfg: mk(50, 6, 16, 3, 64)})
	return cases
}

// goldenEncode runs every encoder over the case and returns name->payload.
func goldenEncode(t *testing.T, c goldenCase) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	enc := func(label string, payload []byte, err error) {
		if err != nil {
			t.Fatalf("%s/%s: %v", c.name, label, err)
		}
		out[label] = payload
	}

	age := mustAGE(t, c.cfg)
	p, err := age.Encode(c.b)
	enc("age", p, err)

	std, err := NewStandard(c.cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	p, err = std.Encode(c.b)
	enc("standard", p, err)

	raw := rawFromBatch(c.b, c.cfg.Format)
	p, err = age.EncodeRaw(c.b.Indices, raw)
	enc("mcu_age", p, err)
	p, err = std.EncodeRaw(c.b.Indices, raw)
	enc("mcu_standard", p, err)

	if pad, err := NewPadded(c.cfg); err == nil {
		p, err = pad.Encode(c.b)
		enc("padded", p, err)
	}
	single, err := NewSingle(c.cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	p, err = single.Encode(c.b)
	enc("single", p, err)

	unsh, err := NewUnshifted(c.cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	p, err = unsh.Encode(c.b)
	enc("unshifted", p, err)

	pruned, err := NewPruned(c.cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	p, err = pruned.Encode(c.b)
	enc("pruned", p, err)
	return out
}

func TestGoldenWireVectors(t *testing.T) {
	got := map[string]string{}
	for _, c := range goldenCases(t) {
		for label, payload := range goldenEncode(t, c) {
			got[c.name+"/"+label] = hex.EncodeToString(payload)
		}
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden vectors to %s", len(got), goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden vectors (run with -update to generate): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, wantHex := range want {
		gotHex, ok := got[name]
		if !ok {
			t.Errorf("golden vector %s no longer produced", name)
			continue
		}
		if gotHex != wantHex {
			t.Errorf("%s: wire bytes changed\n got %s\nwant %s", name, gotHex, wantHex)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("new vector %s not in golden file (run -update deliberately)", name)
		}
	}
	// Every golden payload must still decode through its matching decoder;
	// byte-stability without decodability would pin a corrupt format.
	for _, c := range goldenCases(t) {
		age := mustAGE(t, c.cfg)
		if _, err := age.Decode(mustHex(t, want[c.name+"/age"])); err != nil {
			t.Errorf("%s/age: golden payload no longer decodes: %v", c.name, err)
		}
		std, _ := NewStandard(c.cfg)
		if _, err := std.Decode(mustHex(t, want[c.name+"/standard"])); err != nil {
			t.Errorf("%s/standard: golden payload no longer decodes: %v", c.name, err)
		}
	}
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
