package core

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// The instrumented reuse paths must stay allocation-free: attaching metrics
// to the fleet's encoder hot loop cannot reintroduce per-frame garbage.
func TestInstrumentedAGEAllocs(t *testing.T) {
	cfg := testConfig(TargetBytesForRate(0.7, 50, 6, 16))
	a := mustAGE(t, cfg)
	reg := metrics.NewRegistry()
	a.InstrumentPipeline(reg.Counter("core.age.groups"), reg.Counter("core.age.pruned"))
	enc, dec := InstrumentCodec(a, a, NewCodecMetrics(reg, "age"))
	app := enc.(AppendEncoder)
	into := dec.(IntoDecoder)
	rng := rand.New(rand.NewSource(31))
	batch := randomBatch(rng, cfg.T, cfg.D, 40, 3.5)
	var payload []byte
	var decoded Batch

	if got := measureAllocs(t, func() {
		var err error
		payload, err = app.AppendEncode(payload[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("instrumented AGE AppendEncode allocates %.1f/op, want 0", got)
	}
	if got := measureAllocs(t, func() {
		if err := into.DecodeInto(&decoded, payload); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("instrumented AGE DecodeInto allocates %.1f/op, want 0", got)
	}

	snap := reg.Snapshot()
	if snap.Counters["core.age.encodes"] == 0 || snap.Counters["core.age.decodes"] == 0 {
		t.Errorf("codec counters not updated: %v", snap.Counters)
	}
	if snap.Counters["core.age.groups"] == 0 {
		t.Errorf("pipeline group counter not updated: %v", snap.Counters)
	}
	if snap.Histograms["core.age.encode_ns"].Count == 0 {
		t.Error("encode latency histogram empty")
	}
	if snap.Counters["core.age.payload_bytes"] == 0 {
		t.Error("payload byte counter empty")
	}
}

func TestInstrumentedStandardAllocs(t *testing.T) {
	cfg := testConfig(0)
	s, err := NewStandard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	enc, dec := InstrumentCodec(s, s, NewCodecMetrics(reg, "standard"))
	app := enc.(AppendEncoder)
	into := dec.(IntoDecoder)
	rng := rand.New(rand.NewSource(32))
	batch := randomBatch(rng, cfg.T, cfg.D, 40, 3.5)
	var payload []byte
	var decoded Batch

	if got := measureAllocs(t, func() {
		var err error
		payload, err = app.AppendEncode(payload[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("instrumented Standard AppendEncode allocates %.1f/op, want 0", got)
	}
	if got := measureAllocs(t, func() {
		if err := into.DecodeInto(&decoded, payload); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("instrumented Standard DecodeInto allocates %.1f/op, want 0", got)
	}
}

// Instrumentation must be invisible on the wire: same bytes, same decode.
func TestInstrumentedCodecIsWireIdentical(t *testing.T) {
	cfg := testConfig(220)
	a := mustAGE(t, cfg)
	reg := metrics.NewRegistry()
	enc, dec := InstrumentCodec(a, a, NewCodecMetrics(reg, "age"))
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		b := randomBatch(rng, cfg.T, cfg.D, rng.Intn(cfg.T)+1, 3.5)
		plain, err := a.Encode(b)
		if err != nil {
			t.Fatal(err)
		}
		wrapped, err := enc.Encode(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(plain) != string(wrapped) {
			t.Fatalf("trial %d: instrumented bytes differ from plain", trial)
		}
		got, err := dec.Decode(wrapped)
		if err != nil {
			t.Fatal(err)
		}
		want, err := a.Decode(plain)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Indices) != len(want.Indices) {
			t.Fatalf("trial %d: instrumented decode differs", trial)
		}
	}
	if enc.Name() != "age" {
		t.Errorf("wrapper name = %q", enc.Name())
	}
}

// With a nil metrics family the wrapper must vanish entirely.
func TestInstrumentCodecNilPassThrough(t *testing.T) {
	cfg := testConfig(220)
	a := mustAGE(t, cfg)
	enc, dec := InstrumentCodec(a, a, nil)
	if enc != Encoder(a) || dec != Decoder(a) {
		t.Error("nil metrics did not pass the codec through untouched")
	}
	if NewCodecMetrics(nil, "age") != nil {
		t.Error("NewCodecMetrics(nil) should be nil")
	}
}

// Error paths must be counted as errors, not successes.
func TestInstrumentedCodecCountsErrors(t *testing.T) {
	cfg := testConfig(220)
	a := mustAGE(t, cfg)
	reg := metrics.NewRegistry()
	_, dec := InstrumentCodec(a, a, NewCodecMetrics(reg, "age"))
	if _, err := dec.Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated payload decoded")
	}
	snap := reg.Snapshot()
	if snap.Counters["core.age.decode_errors"] != 1 {
		t.Errorf("decode_errors = %d, want 1", snap.Counters["core.age.decode_errors"])
	}
	if snap.Counters["core.age.decodes"] != 0 {
		t.Errorf("decodes = %d, want 0", snap.Counters["core.age.decodes"])
	}
}
