package core

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/bitio"
)

// This file is the MCU-side AGE encoder: the paper deploys AGE on a TI
// MSP430 FR5994 (§5.7), a device without floating-point hardware, so the C
// implementation works entirely in fixed-point integer arithmetic. EncodeRaw
// mirrors that: it consumes raw fixed-point mantissas and uses only integer
// operations (compares, adds, shifts) end to end, reusing the same grouping
// and width-assignment machinery as the float path. For inputs that are
// exactly representable in the native format, EncodeRaw and Encode produce
// byte-identical messages — the equivalence test pins that down — so the
// simulator results transfer to the MCU implementation directly.

// RawNonFracBits returns the exponent (non-fractional bits including sign)
// needed by a raw mantissa with `frac` fractional bits — the integer twin of
// fixedpoint.NonFracBitsFor. frac may be negative for coarse formats.
func RawNonFracBits(raw int32, frac int) int {
	a := int64(raw)
	if a < 0 {
		a = -a
	}
	// Smallest n >= 1 with a < 2^(n-1+frac).
	n := bits.Len64(uint64(a)) - frac + 1
	if n < 1 {
		n = 1
	}
	if n > 32 {
		n = 32
	}
	return n
}

// quantizeRaw requantizes a raw mantissa from srcFrac fractional bits to a
// (width, nonFrac) format, rounding half away from zero and clamping — the
// integer equivalent of fixedpoint.FromFloat(v.Float(), target).
func quantizeRaw(raw int32, srcFrac, width, nonFrac int) uint32 {
	dstFrac := width - nonFrac
	shift := srcFrac - dstFrac
	v := int64(raw)
	switch {
	case shift > 0:
		half := int64(1) << (shift - 1)
		if v >= 0 {
			v = (v + half) >> shift
		} else {
			v = -((-v + half) >> shift)
		}
	case shift < 0:
		v <<= -shift
	}
	hi := int64(1)<<(width-1) - 1
	lo := -(int64(1) << (width - 1))
	if v > hi {
		v = hi
	}
	if v < lo {
		v = lo
	}
	return uint32(v) & (uint32(1)<<width - 1)
}

// EncodeRaw is the integer-only AGE encoder: indices and raw fixed-point
// mantissas (in the configured native format) in, a fixed TargetBytes
// message out. The output decodes with the same Decode as the float path.
func (a *AGE) EncodeRaw(indices []int, raw [][]int32) ([]byte, error) {
	if err := validateRaw(indices, raw, a.cfg.T, a.cfg.D); err != nil {
		return nil, err
	}
	frac := a.cfg.Format.FracBits()
	idx, vals := pruneRaw(indices, raw, a.maxKeep(), frac)

	// Exponent-aware groups from raw mantissas.
	var groups []group
	for _, row := range vals {
		e := 1
		for _, v := range row {
			if n := RawNonFracBits(v, frac); n > e {
				e = n
			}
		}
		if e > a.cfg.Format.NonFrac {
			e = a.cfg.Format.NonFrac
		}
		if n := len(groups); n > 0 && groups[n-1].exponent == e && groups[n-1].count < maxRunLen {
			groups[n-1].count++
		} else {
			groups = append(groups, group{count: 1, exponent: e})
		}
	}
	if len(vals) > 0 {
		groups = mergeGroups(groups, a.groupCap(len(vals)))
	}
	groups = a.assignWidths(new(ageScratch), groups, len(idx))
	if len(groups) > maxWireGroups {
		return nil, fmt.Errorf("core: age encode: %d measurements need %d groups, wire format caps at %d",
			len(idx), len(groups), maxWireGroups)
	}

	w := bitio.NewWriter(a.cfg.TargetBytes)
	writeIndexBlock(w, idx, a.cfg.T)
	w.Align()
	w.WriteBits(uint32(len(groups)), 8)
	for _, g := range groups {
		w.WriteBits(uint32(g.count), 16)
		w.WriteBits(uint32(g.exponent), 8)
		w.WriteBits(uint32(g.width), 8)
	}
	row := 0
	for _, g := range groups {
		rw := w.StartRun(g.width)
		for i := 0; i < g.count; i++ {
			for _, v := range vals[row] {
				rw.Add(uint64(quantizeRaw(v, frac, g.width, g.exponent)))
			}
			row++
		}
		rw.Flush()
	}
	w.PadTo(a.cfg.TargetBytes)
	return w.Bytes(), nil
}

// EncodeRaw is the integer-only Standard encoder (the MCU baseline that
// writes mantissas straight into the output buffer).
func (s *Standard) EncodeRaw(indices []int, raw [][]int32) ([]byte, error) {
	if err := validateRaw(indices, raw, s.cfg.T, s.cfg.D); err != nil {
		return nil, err
	}
	w := bitio.NewWriter(StandardPayloadBytes(len(indices), s.cfg.T, s.cfg.D, s.cfg.Format.Width))
	writeIndexBlock(w, indices, s.cfg.T)
	rw := w.StartRun(s.cfg.Format.Width) // the RunWriter masks to the width
	for _, row := range raw {
		for _, v := range row {
			rw.Add(uint64(uint32(v)))
		}
	}
	rw.Flush()
	w.Align()
	return w.Bytes(), nil
}

// validateRaw mirrors Batch.Validate for raw-mantissa input.
func validateRaw(indices []int, raw [][]int32, T, d int) error {
	if len(indices) != len(raw) {
		return fmt.Errorf("core: %d indices but %d raw rows", len(indices), len(raw))
	}
	prev := -1
	for i, idx := range indices {
		if idx <= prev || idx >= T {
			return fmt.Errorf("core: raw index %d at position %d invalid", idx, i)
		}
		prev = idx
		if len(raw[i]) != d {
			return fmt.Errorf("core: raw row %d has %d features, want %d", i, len(raw[i]), d)
		}
	}
	return nil
}

// pruneRaw is the §4.2 pruning rule in integer arithmetic. The float rule
// scores Dist = |x_t - x_{t+1}|_1 + gap/8; scaling by 8*2^frac gives the
// integer score 8*|raw_t - raw_{t+1}|_1 + gap*2^frac with the identical
// ordering (ties break on position in both implementations). A negative
// frac (coarse formats) scales the gap term down instead.
func pruneRaw(indices []int, raw [][]int32, keep, frac int) ([]int, [][]int32) {
	k := len(indices)
	if k <= keep {
		return indices, raw
	}
	if keep <= 0 {
		return nil, nil
	}
	type scored struct {
		pos  int
		dist int64
	}
	scores := make([]scored, k)
	for t := 0; t < k-1; t++ {
		var l1 int64
		for f := range raw[t] {
			d := int64(raw[t][f]) - int64(raw[t+1][f])
			if d < 0 {
				d = -d
			}
			l1 += d
		}
		gap := int64(indices[t+1] - indices[t])
		// Keep both terms integral under either frac sign: scale the
		// float rule by 8*2^frac (frac >= 0) or by 8 with the L1 term
		// shifted up (frac < 0). Both preserve the exact ordering.
		var dist int64
		if frac >= 0 {
			dist = 8*l1 + gap<<frac
		} else {
			dist = 8*(l1<<(-frac)) + gap
		}
		scores[t] = scored{pos: t, dist: dist}
	}
	scores[k-1] = scored{pos: k - 1, dist: int64(1)<<62 - 1}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].dist != scores[j].dist {
			return scores[i].dist < scores[j].dist
		}
		return scores[i].pos < scores[j].pos
	})
	drop := make(map[int]bool, k-keep)
	for _, s := range scores[:k-keep] {
		drop[s.pos] = true
	}
	outIdx := make([]int, 0, keep)
	outRaw := make([][]int32, 0, keep)
	for t := 0; t < k; t++ {
		if !drop[t] {
			outIdx = append(outIdx, indices[t])
			outRaw = append(outRaw, raw[t])
		}
	}
	return outIdx, outRaw
}
