package core

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/bitio"
	"repro/internal/fixedpoint"
)

// Standard is the paper's baseline encoder: it packs the collected count,
// the time indices, and the raw fixed-point values into a payload whose size
// is proportional to the collection count. This proportionality is exactly
// the message-size side-channel (§2.2, observation 2).
type Standard struct {
	cfg Config
}

// NewStandard returns a Standard encoder/decoder for the task configuration.
func NewStandard(cfg Config) (*Standard, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Standard{cfg: cfg}, nil
}

// Name implements Encoder.
func (s *Standard) Name() string { return "standard" }

// MaxPayloadBytes returns the size of a full batch (k = T), which the Padded
// defense pads every message to.
func (s *Standard) MaxPayloadBytes() int {
	return StandardPayloadBytes(s.cfg.T, s.cfg.T, s.cfg.D, s.cfg.Format.Width)
}

// Encode implements Encoder.
func (s *Standard) Encode(b Batch) ([]byte, error) { return s.AppendEncode(nil, b) }

// AppendEncode implements AppendEncoder.
//
//age:hotpath
func (s *Standard) AppendEncode(dst []byte, b Batch) ([]byte, error) {
	return s.appendEncode(fixedpoint.NewQuantizer(s.cfg.Format), dst, b)
}

// AppendEncodeBatchN implements BatchAppendEncoder, constructing the
// quantizer once for the whole run.
//
//age:hotpath
func (s *Standard) AppendEncodeBatchN(dsts [][]byte, batches []Batch) ([][]byte, error) {
	q := fixedpoint.NewQuantizer(s.cfg.Format)
	for len(dsts) < len(batches) {
		dsts = append(dsts, nil)
	}
	dsts = dsts[:len(batches)]
	for i, b := range batches {
		out, err := s.appendEncode(q, dsts[i], b)
		if err != nil {
			return dsts[:i], fmt.Errorf("core: standard batch %d: %w", i, err)
		}
		dsts[i] = out
	}
	return dsts, nil
}

//age:hotpath
func (s *Standard) appendEncode(q fixedpoint.Quantizer, dst []byte, b Batch) ([]byte, error) {
	if err := b.Validate(s.cfg.T, s.cfg.D); err != nil {
		return nil, err
	}
	var w bitio.Writer
	w.ResetTo(dst)
	writeIndexBlock(&w, b.Indices, s.cfg.T)
	rw := w.StartRun(s.cfg.Format.Width)
	for _, row := range b.Values {
		for _, v := range row {
			rw.Add(uint64(q.Bits(v)))
		}
	}
	rw.Flush()
	w.Align()
	return w.Bytes(), nil
}

// Decode implements Decoder.
func (s *Standard) Decode(payload []byte) (Batch, error) {
	var b Batch
	if err := s.DecodeInto(&b, payload); err != nil {
		return Batch{}, err
	}
	return b, nil
}

// DecodeInto implements IntoDecoder. On error *b's contents are unspecified.
//
//age:hotpath
func (s *Standard) DecodeInto(b *Batch, payload []byte) error {
	var r bitio.Reader
	r.Reset(payload)
	idx, err := readIndexBlockInto(&r, s.cfg.T, b.Indices[:0])
	b.Indices = idx
	if err != nil {
		return err
	}
	vals := b.Values[:0]
	dq := fixedpoint.NewDequantizer(s.cfg.Format)
	var tmp [64]uint64
	for range idx {
		vals = appendRow(vals, s.cfg.D)
		row := vals[len(vals)-1]
		for off := 0; off < len(row); off += len(tmp) {
			n := minInt(len(row)-off, len(tmp))
			if err := r.ReadRun(tmp[:n], s.cfg.Format.Width); err != nil {
				b.Values = vals
				return fmt.Errorf("core: standard decode: %w", err)
			}
			for i := 0; i < n; i++ {
				row[off+i] = dq.Float(uint32(tmp[i]))
			}
		}
	}
	b.Values = vals
	return nil
}

// Index blocks carry which time steps were collected. Two encodings exist,
// and the writer picks the cheaper one per batch (the flag byte says which):
// an explicit list (2-byte count + k packed indices) for sparse batches, or
// a T-bit presence bitmask for dense ones. For long sequences like MNIST
// (T = 784) the bitmask costs a constant 98 bytes where explicit indices
// would cost up to 980.
const (
	indexEncodingExplicit = 0
	indexEncodingBitmask  = 1
)

// indexBlockBits returns the exact bit cost of the index block for k
// collected measurements: the flag byte plus the cheaper encoding.
func indexBlockBits(k, T int) int {
	explicit := 16 + k*indexBits(T)
	if T < explicit {
		return 8 + T
	}
	return 8 + explicit
}

// writeIndexBlock writes the flag byte and the cheaper index encoding. Both
// encodings go through the word-at-a-time kernels: the bitmask is assembled
// 64 positions per write instead of bit by bit, and the explicit list streams
// through a RunWriter.
func writeIndexBlock(w *bitio.Writer, indices []int, T int) {
	if T < 16+len(indices)*indexBits(T) {
		w.WriteBits(indexEncodingBitmask, 8)
		pos := 0
		for t := 0; t < T; t += 64 {
			n := minInt(T-t, 64)
			var word uint64
			for pos < len(indices) && indices[pos] < t+n {
				word |= 1 << uint(n-1-(indices[pos]-t)) // MSB-first within the field
				pos++
			}
			w.WriteBits64(word, n)
		}
		return
	}
	w.WriteBits(indexEncodingExplicit, 8)
	w.WriteUint16(uint16(len(indices)))
	rw := w.StartRun(indexBits(T))
	for _, idx := range indices {
		rw.Add(uint64(idx))
	}
	rw.Flush()
}

// readIndexBlock reads either index encoding written by writeIndexBlock.
func readIndexBlock(r *bitio.Reader, T int) ([]int, error) {
	return readIndexBlockInto(r, T, nil)
}

// readIndexBlockInto is readIndexBlock appending into dst. On error the
// partially filled dst is returned alongside it so callers can keep the
// storage.
func readIndexBlockInto(r *bitio.Reader, T int, dst []int) ([]int, error) {
	flag, err := r.ReadBits(8)
	if err != nil {
		return dst, fmt.Errorf("core: reading index flag: %w", err)
	}
	switch flag {
	case indexEncodingBitmask:
		for t := 0; t < T; t += 64 {
			n := minInt(T-t, 64)
			word, err := r.ReadBits64(n)
			if err != nil {
				return dst, fmt.Errorf("core: reading index bitmask: %w", err)
			}
			// MSB-align and scan set bits, cheap for sparse masks.
			for word <<= 64 - uint(n); word != 0; {
				j := bits.LeadingZeros64(word)
				dst = append(dst, t+j)
				word &^= 1 << uint(63-j)
			}
		}
		return dst, nil
	case indexEncodingExplicit:
		k, err := r.ReadUint16()
		if err != nil {
			return dst, fmt.Errorf("core: reading count: %w", err)
		}
		if int(k) > T {
			return dst, fmt.Errorf("core: count %d exceeds T = %d", k, T)
		}
		ib := indexBits(T)
		var tmp [64]uint64
		for i := 0; i < int(k); i += len(tmp) {
			n := minInt(int(k)-i, len(tmp))
			if err := r.ReadRun(tmp[:n], ib); err != nil {
				return dst, fmt.Errorf("core: reading index %d: %w", i, err)
			}
			for j := 0; j < n; j++ {
				dst = append(dst, int(tmp[j]))
			}
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("core: unknown index encoding %d", flag)
	}
}

// Padded implements the message-padding defense the paper compares against
// (analogous to BuFLO, §5.1): Standard encoding padded with zero bytes to
// the largest possible batch size. It closes the side-channel but inflates
// every message to the worst case, and the extra radio energy causes the
// budget violations seen in Tables 4, 9, and 10.
type Padded struct {
	std *Standard
	max int
}

// NewPadded returns a Padded encoder. Like the paper's setup, it pads to the
// size of the largest batch (k = T).
func NewPadded(cfg Config) (*Padded, error) {
	std, err := NewStandard(cfg)
	if err != nil {
		return nil, err
	}
	return &Padded{std: std, max: std.MaxPayloadBytes()}, nil
}

// Name implements Encoder.
func (p *Padded) Name() string { return "padded" }

// PayloadBytes returns the fixed message size (the maximum batch size).
func (p *Padded) PayloadBytes() int { return p.max }

// Encode implements Encoder.
func (p *Padded) Encode(b Batch) ([]byte, error) { return p.AppendEncode(nil, b) }

// AppendEncode implements AppendEncoder.
//
//age:hotpath
func (p *Padded) AppendEncode(dst []byte, b Batch) ([]byte, error) {
	raw, err := p.std.AppendEncode(dst, b)
	if err != nil {
		return nil, err
	}
	n := len(raw)
	raw = slices.Grow(raw, p.max-n)[:p.max]
	clear(raw[n:])
	return raw, nil
}

// Decode implements Decoder. The Standard header's count field makes the
// padding self-delimiting, but the envelope itself is fixed-size: any other
// length violates the contract and is rejected like in the other fixed-size
// decoders.
func (p *Padded) Decode(payload []byte) (Batch, error) {
	if len(payload) != p.max {
		return Batch{}, fmt.Errorf("core: padded decode: payload %dB, want exactly %dB: %w", len(payload), p.max, ErrPayloadLength)
	}
	return p.std.Decode(payload)
}

// DecodeInto implements IntoDecoder.
//
//age:hotpath
func (p *Padded) DecodeInto(b *Batch, payload []byte) error {
	if len(payload) != p.max {
		return fmt.Errorf("core: padded decode: payload %dB, want exactly %dB: %w", len(payload), p.max, ErrPayloadLength)
	}
	return p.std.DecodeInto(b, payload)
}
