package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixedpoint"
)

// fixedSizeEncoder is the common surface of all size-standardizing encoders.
type fixedSizeEncoder interface {
	Encoder
	Decoder
	PayloadBytes() int
}

// newVariants builds all four fixed-size encoders for a config.
func newVariants(t *testing.T, cfg Config) map[string]fixedSizeEncoder {
	t.Helper()
	a, err := NewAGE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnshifted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPruned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]fixedSizeEncoder{"age": a, "single": s, "unshifted": u, "pruned": p}
}

// TestAllVariantsFixedSize: every §5.6 variant closes the side-channel by
// construction — any batch encodes to exactly TargetBytes.
func TestAllVariantsFixedSize(t *testing.T) {
	cfg := testConfig(180)
	encs := newVariants(t, cfg)
	rng := rand.New(rand.NewSource(21))
	for name, enc := range encs {
		for _, k := range []int{0, 1, 9, 30, 50} {
			b := randomBatch(rng, cfg.T, cfg.D, k, 3.9)
			payload, err := enc.Encode(b)
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if len(payload) != cfg.TargetBytes {
				t.Fatalf("%s k=%d: %dB, want %d", name, k, len(payload), cfg.TargetBytes)
			}
			if got, err := enc.Decode(payload); err != nil {
				t.Fatalf("%s k=%d decode: %v", name, k, err)
			} else if err := got.Validate(cfg.T, cfg.D); err != nil {
				t.Fatalf("%s k=%d decoded batch invalid: %v", name, k, err)
			}
		}
	}
}

func TestVariantsQuickDecodable(t *testing.T) {
	cfg := testConfig(120)
	encs := newVariants(t, cfg)
	for name, enc := range encs {
		enc := enc
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			k := rng.Intn(cfg.T + 1)
			b := randomBatch(rng, cfg.T, cfg.D, k, 3.9)
			payload, err := enc.Encode(b)
			if err != nil || len(payload) != cfg.TargetBytes {
				return false
			}
			got, err := enc.Decode(payload)
			return err == nil && got.Validate(cfg.T, cfg.D) == nil
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSingleDropsAllWhenOverfull(t *testing.T) {
	// The §4.2 failure mode: k=50, d=6 at a 35-byte target leaves no room
	// for even one bit per value, so Single drops the whole batch.
	cfg := testConfig(35)
	s, err := NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	payload, err := s.Encode(randomBatch(rng, cfg.T, cfg.D, cfg.T, 3.5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("Single kept %d measurements; quantization alone cannot meet this target", got.Len())
	}
	// AGE keeps a subset under the same conditions (contrast).
	a := mustAGE(t, cfg)
	payload, err = a.Encode(randomBatch(rng, cfg.T, cfg.D, cfg.T, 3.5))
	if err != nil {
		t.Fatal(err)
	}
	got, err = a.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Error("AGE also dropped everything; pruning should prevent this")
	}
}

func TestSingleRoundTripModerate(t *testing.T) {
	cfg := testConfig(400)
	s, err := NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	b := randomBatch(rng, cfg.T, cfg.D, 30, 3.5)
	payload, err := s.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 30 {
		t.Fatalf("decoded %d of 30", got.Len())
	}
	for i := range got.Values {
		for f := range got.Values[i] {
			if math.Abs(got.Values[i][f]-b.Values[i][f]) > 0.51 {
				t.Fatalf("error %g too large for moderate target", math.Abs(got.Values[i][f]-b.Values[i][f]))
			}
		}
	}
}

func TestUnshiftedEvenGroups(t *testing.T) {
	cfg := testConfig(200)
	u, err := NewUnshifted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups := u.unshiftedGroups(50)
	if len(groups) != 6 {
		t.Fatalf("got %d groups, want 6", len(groups))
	}
	total := 0
	for _, g := range groups {
		if g.count < 8 || g.count > 9 {
			t.Errorf("uneven group count %d", g.count)
		}
		if g.exponent != cfg.Format.NonFrac {
			t.Errorf("exponent %d, want static %d", g.exponent, cfg.Format.NonFrac)
		}
		total += g.count
	}
	if total != 50 {
		t.Errorf("groups cover %d, want 50", total)
	}
	// Fewer measurements than groups: one group per measurement.
	if got := u.unshiftedGroups(4); len(got) != 4 {
		t.Errorf("k=4 gave %d groups", len(got))
	}
	if got := u.unshiftedGroups(0); got != nil {
		t.Errorf("k=0 gave %v", got)
	}
}

func TestUnshiftedStaticExponentHurtsSmallValues(t *testing.T) {
	// With a large native exponent (n0=5) and small data, Unshifted wastes
	// integer bits that AGE reclaims: AGE must have lower error.
	cfg := Config{T: 50, D: 1, Format: fixedpoint.Format{Width: 7, NonFrac: 5}, TargetBytes: 40}
	a := mustAGE(t, cfg)
	u, err := NewUnshifted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	var ageErr, unsErr float64
	for trial := 0; trial < 20; trial++ {
		b := randomBatch(rng, cfg.T, 1, 50, 0.9)
		for _, c := range []struct {
			enc fixedSizeEncoder
			sum *float64
		}{{a, &ageErr}, {u, &unsErr}} {
			payload, err := c.enc.Encode(b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.enc.Decode(payload)
			if err != nil {
				t.Fatal(err)
			}
			byIdx := map[int]float64{}
			for i, ix := range got.Indices {
				byIdx[ix] = got.Values[i][0]
			}
			for i, ix := range b.Indices {
				if v, ok := byIdx[ix]; ok {
					*c.sum += math.Abs(v - b.Values[i][0])
				} else {
					*c.sum += math.Abs(b.Values[i][0])
				}
			}
		}
	}
	if ageErr >= unsErr {
		t.Errorf("AGE error %g not below Unshifted %g on small-valued data", ageErr, unsErr)
	}
}

func TestPrunedKeepsFullWidth(t *testing.T) {
	cfg := testConfig(200)
	p, err := NewPruned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	b := randomBatch(rng, cfg.T, cfg.D, 50, 3.5)
	payload, err := p.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 || got.Len() >= 50 {
		t.Fatalf("Pruned kept %d of 50; expected a strict subset", got.Len())
	}
	// Whatever survives is at native precision.
	byIdx := map[int][]float64{}
	for i, ix := range b.Indices {
		byIdx[ix] = b.Values[i]
	}
	for i, ix := range got.Indices {
		orig := byIdx[ix]
		for f := range got.Values[i] {
			if math.Abs(got.Values[i][f]-orig[f]) > cfg.Format.Resolution()/2+1e-9 {
				t.Fatalf("pruned value error %g exceeds native resolution", math.Abs(got.Values[i][f]-orig[f]))
			}
		}
	}
	// Pruned keeps far fewer measurements than AGE at the same target.
	a := mustAGE(t, cfg)
	agePayload, err := a.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	ageGot, err := a.Decode(agePayload)
	if err != nil {
		t.Fatal(err)
	}
	if ageGot.Len() <= got.Len() {
		t.Errorf("AGE kept %d <= Pruned %d; AGE's quantization should retain more measurements", ageGot.Len(), got.Len())
	}
}

func TestVariantsRejectTinyTargets(t *testing.T) {
	cfg := testConfig(2)
	if _, err := NewSingle(cfg); err == nil {
		t.Error("Single accepted 2-byte target")
	}
	if _, err := NewUnshifted(cfg); err == nil {
		t.Error("Unshifted accepted 2-byte target")
	}
	if _, err := NewPruned(cfg); err == nil {
		t.Error("Pruned accepted 2-byte target")
	}
}

func TestEncoderNames(t *testing.T) {
	cfg := testConfig(100)
	encs := newVariants(t, cfg)
	for want, enc := range encs {
		if enc.Name() != want {
			t.Errorf("Name = %q, want %q", enc.Name(), want)
		}
	}
	std, _ := NewStandard(cfg)
	if std.Name() != "standard" {
		t.Errorf("standard Name = %q", std.Name())
	}
	pad, _ := NewPadded(cfg)
	if pad.Name() != "padded" {
		t.Errorf("padded Name = %q", pad.Name())
	}
}
