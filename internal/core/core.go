// Package core implements the paper's primary contribution, Adaptive Group
// Encoding (AGE, §4), together with the encoders it is evaluated against:
// the Standard variable-length encoder, the Padded (BuFLO-style) defense
// (§5.1), and the Single / Unshifted / Pruned ablation variants (§5.6).
//
// An encoder turns one batch of collected measurements into a radio payload;
// a decoder recovers the (possibly quantized) measurements and their time
// indices. AGE and the other defense encoders emit exactly TargetBytes for
// every batch, making the payload size independent of the adaptive policy's
// collection rate; the Standard encoder's size grows with the collection
// count, which is the side-channel the paper attacks.
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/fixedpoint"
)

// Batch is one communication window's worth of collected measurements.
type Batch struct {
	// Indices holds the original time step of each collected measurement
	// (the paper's alpha_t), strictly increasing, in [0, T). The sampling
	// times are data-driven — exactly what the attack reconstructs — so
	// they are secret for leaktaint.
	Indices []int //age:secret
	// Values holds one row per collected measurement, each with d
	// features.
	Values [][]float64 //age:secret
}

// Len returns the number of collected measurements k.
func (b Batch) Len() int { return len(b.Indices) }

// Validate checks structural invariants: matching lengths, strictly
// increasing indices within [0, T), and consistent feature counts.
func (b Batch) Validate(T, d int) error {
	if len(b.Indices) != len(b.Values) {
		return fmt.Errorf("core: %d indices but %d value rows", len(b.Indices), len(b.Values))
	}
	prev := -1
	for i, idx := range b.Indices {
		if idx <= prev || idx >= T {
			return fmt.Errorf("core: index %d at position %d not strictly increasing in [0, %d)", idx, i, T)
		}
		prev = idx
		if len(b.Values[i]) != d {
			return fmt.Errorf("core: row %d has %d features, want %d", i, len(b.Values[i]), d)
		}
	}
	return nil
}

// Config describes the sensing task an encoder is built for.
type Config struct {
	// T is the maximum measurements per batch (the sequence length).
	T int
	// D is the number of features per measurement.
	D int
	// Format is the sensor's native fixed-point representation (w0, n0).
	Format fixedpoint.Format
	// TargetBytes is M_B, the fixed message size for size-standardizing
	// encoders. Ignored by Standard.
	TargetBytes int
	// MinWidth is the paper's w_min: pruning guarantees every remaining
	// value at least this many bits (§4.2). Zero means the default of 5.
	MinWidth int
	// MinGroups is the paper's G_0: the group cap is never below this
	// (§4.3). Zero means the default of 6.
	MinGroups int
}

func (c Config) withDefaults() Config {
	if c.MinWidth == 0 {
		c.MinWidth = 5
	}
	if c.MinGroups == 0 {
		c.MinGroups = 6
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.T < 1 {
		return fmt.Errorf("core: T = %d must be positive", c.T)
	}
	if c.D < 1 {
		return fmt.Errorf("core: D = %d must be positive", c.D)
	}
	return c.Format.Validate()
}

// Encoder converts a batch to a payload.
type Encoder interface {
	// Encode serializes the batch. Size-standardizing encoders always
	// return exactly TargetBytes.
	Encode(b Batch) ([]byte, error)
	// Name identifies the encoder in reports.
	Name() string
}

// Decoder recovers a batch from a payload.
type Decoder interface {
	Decode(payload []byte) (Batch, error)
}

// AppendEncoder is an Encoder with an allocation-free steady-state path:
// AppendEncode writes the payload into dst's storage (growing it only when
// the capacity is insufficient) and returns the resulting slice. Callers that
// feed the previous payload back in as dst — like the simulator's per-batch
// loop — stop paying a buffer allocation per Encode. All encoders in this
// package implement it; Encode(b) is AppendEncode(nil, b).
type AppendEncoder interface {
	Encoder
	AppendEncode(dst []byte, b Batch) ([]byte, error)
}

// BatchAppendEncoder is an AppendEncoder that can encode a run of
// consecutive batches in one call, amortizing per-encode setup (scratch pool
// checkouts, quantizer construction) across the run. dsts[i] provides reused
// storage for payload i exactly as AppendEncode's dst does; the returned
// slice has len(batches) entries. On the first failing batch the
// successfully encoded prefix is returned alongside the error.
type BatchAppendEncoder interface {
	AppendEncoder
	AppendEncodeBatchN(dsts [][]byte, batches []Batch) ([][]byte, error)
}

// IntoDecoder is a Decoder with a reuse path: DecodeInto overwrites *b,
// reusing its index and value storage (including the per-row slices) when
// capacities allow. All decoders in this package implement it; Decode is
// DecodeInto on a zero Batch.
type IntoDecoder interface {
	Decoder
	DecodeInto(b *Batch, payload []byte) error
}

// appendRow extends vals by one d-length row, reusing spare slice capacity
// and any previously allocated row storage before falling back to make. The
// returned row is zeroed only as far as the caller overwrites it, so callers
// must assign every feature.
func appendRow(vals [][]float64, d int) [][]float64 {
	if cap(vals) > len(vals) {
		vals = vals[:len(vals)+1]
		if row := vals[len(vals)-1]; cap(row) >= d {
			vals[len(vals)-1] = row[:d]
			return vals
		}
		vals[len(vals)-1] = make([]float64, d)
		return vals
	}
	return append(vals, make([]float64, d))
}

// indexBits returns the bits needed to store one time index in [0, T).
func indexBits(T int) int {
	if T <= 1 {
		return 1
	}
	return bits.Len(uint(T - 1))
}

// StandardPayloadBytes returns the payload size the Standard encoder
// produces for k collected measurements: the index block (explicit list or
// presence bitmask, whichever is cheaper) and k*d fixed-point values at the
// native width, byte-aligned.
func StandardPayloadBytes(k, T, d, width int) int {
	bits := indexBlockBits(k, T) + k*d*width
	return (bits + 7) / 8
}

// TargetBytesForRate returns the paper's M_B for a collection rate rho: the
// Standard payload size for floor(rho*T) measurements (§4.1).
func TargetBytesForRate(rate float64, T, d, width int) int {
	k := int(rate * float64(T))
	if k < 1 {
		k = 1
	}
	if k > T {
		k = T
	}
	return StandardPayloadBytes(k, T, d, width)
}

// ReduceTarget applies AGE's communication reduction (§4.5): the target
// shrinks by about 30 bytes plus 20 bytes per 500-byte multiple of M_B,
// which more than pays for AGE's extra compute energy. The result never
// drops below the minimum viable AGE message.
func ReduceTarget(mb int) int {
	r := mb - 30 - 20*(mb/500)
	if r < 8 {
		r = 8
	}
	return r
}
