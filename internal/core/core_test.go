package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fixedpoint"
)

// testConfig returns a representative task config (Activity-like: T=50, d=6,
// Q3.13) with the given target size.
func testConfig(target int) Config {
	return Config{
		T:           50,
		D:           6,
		Format:      fixedpoint.Format{Width: 16, NonFrac: 3},
		TargetBytes: target,
	}
}

// randomBatch builds a batch of k measurements at sorted random indices with
// values in [-lim, lim].
func randomBatch(rng *rand.Rand, T, d, k int, lim float64) Batch {
	perm := rng.Perm(T)[:k]
	idx := append([]int(nil), perm...)
	for i := 1; i < len(idx); i++ { // insertion sort (k is small)
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	vals := make([][]float64, k)
	for i := range vals {
		row := make([]float64, d)
		for f := range row {
			row[f] = (rng.Float64()*2 - 1) * lim
		}
		vals[i] = row
	}
	return Batch{Indices: idx, Values: vals}
}

func TestBatchValidate(t *testing.T) {
	good := Batch{Indices: []int{0, 3, 7}, Values: [][]float64{{1, 2}, {3, 4}, {5, 6}}}
	if err := good.Validate(10, 2); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	cases := []Batch{
		{Indices: []int{0, 1}, Values: [][]float64{{1, 2}}},            // length mismatch
		{Indices: []int{3, 1}, Values: [][]float64{{1, 2}, {3, 4}}},    // not increasing
		{Indices: []int{0, 0}, Values: [][]float64{{1, 2}, {3, 4}}},    // duplicate
		{Indices: []int{0, 12}, Values: [][]float64{{1, 2}, {3, 4}}},   // out of range
		{Indices: []int{0, 1}, Values: [][]float64{{1, 2}, {3, 4, 5}}}, // bad row
	}
	for i, b := range cases {
		if err := b.Validate(10, 2); err == nil {
			t.Errorf("case %d: invalid batch accepted", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	ok := testConfig(100)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{T: 0, D: 1, Format: ok.Format},
		{T: 10, D: 0, Format: ok.Format},
		{T: 10, D: 1, Format: fixedpoint.Format{Width: 99, NonFrac: 1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestIndexBits(t *testing.T) {
	cases := []struct{ T, want int }{
		{1, 1}, {2, 1}, {3, 2}, {50, 6}, {206, 8}, {784, 10}, {1250, 11},
	}
	for _, c := range cases {
		if got := indexBits(c.T); got != c.want {
			t.Errorf("indexBits(%d) = %d, want %d", c.T, got, c.want)
		}
	}
}

func TestStandardPayloadBytesMonotone(t *testing.T) {
	prev := 0
	for k := 0; k <= 50; k++ {
		got := StandardPayloadBytes(k, 50, 6, 16)
		if got < prev {
			t.Fatalf("payload size not monotone at k=%d", k)
		}
		prev = got
	}
	// k=50, d=6, w=16: dense batch uses the 50-bit index bitmask:
	// 8 (flag) + 50 + 4800 bits = 4858 -> 608 bytes.
	if got := StandardPayloadBytes(50, 50, 6, 16); got != 608 {
		t.Errorf("full batch = %dB, want 608", got)
	}
	// Sparse batch uses the explicit list: 8 + 16 + 2*6 + 192 bits.
	if got := StandardPayloadBytes(2, 50, 6, 16); got != (8+16+12+192+7)/8 {
		t.Errorf("sparse batch = %dB", got)
	}
}

func TestTargetBytesForRate(t *testing.T) {
	if a, b := TargetBytesForRate(0.3, 50, 6, 16), TargetBytesForRate(1.0, 50, 6, 16); a >= b {
		t.Errorf("target not increasing with rate: %d >= %d", a, b)
	}
	// Degenerate rates clamp.
	if got := TargetBytesForRate(0, 50, 6, 16); got != StandardPayloadBytes(1, 50, 6, 16) {
		t.Errorf("rate 0 target = %d", got)
	}
	if got := TargetBytesForRate(5, 50, 6, 16); got != StandardPayloadBytes(50, 50, 6, 16) {
		t.Errorf("rate 5 target = %d", got)
	}
}

func TestReduceTarget(t *testing.T) {
	// §4.5: ~30 bytes plus 20 per 500-byte multiple.
	if got := ReduceTarget(400); got != 370 {
		t.Errorf("ReduceTarget(400) = %d, want 370", got)
	}
	if got := ReduceTarget(1000); got != 1000-30-40 {
		t.Errorf("ReduceTarget(1000) = %d, want 930", got)
	}
	if got := ReduceTarget(10); got != 8 {
		t.Errorf("ReduceTarget(10) = %d, want floor 8", got)
	}
}

func TestStandardRoundTripLossyOnlyByFormat(t *testing.T) {
	cfg := testConfig(0)
	std, err := NewStandard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b := randomBatch(rng, cfg.T, cfg.D, 20, 3.5)
	payload, err := std.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := std.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != b.Len() {
		t.Fatalf("decoded %d measurements, want %d", got.Len(), b.Len())
	}
	for i := range b.Indices {
		if got.Indices[i] != b.Indices[i] {
			t.Fatalf("index %d: %d != %d", i, got.Indices[i], b.Indices[i])
		}
		for f := range b.Values[i] {
			// The only loss is native fixed-point quantization.
			if math.Abs(got.Values[i][f]-b.Values[i][f]) > cfg.Format.Resolution()/2+1e-12 {
				t.Fatalf("value [%d][%d]: %g != %g", i, f, got.Values[i][f], b.Values[i][f])
			}
		}
	}
}

func TestStandardSizeProportionalToCount(t *testing.T) {
	// The side-channel: message size grows with collection count.
	cfg := testConfig(0)
	std, _ := NewStandard(cfg)
	rng := rand.New(rand.NewSource(2))
	prev := -1
	for _, k := range []int{1, 10, 25, 50} {
		payload, err := std.Encode(randomBatch(rng, cfg.T, cfg.D, k, 3))
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) <= prev {
			t.Fatalf("size did not grow with k=%d", k)
		}
		if len(payload) != StandardPayloadBytes(k, cfg.T, cfg.D, cfg.Format.Width) {
			t.Fatalf("size %d != predicted %d", len(payload), StandardPayloadBytes(k, cfg.T, cfg.D, cfg.Format.Width))
		}
		prev = len(payload)
	}
}

func TestStandardEmptyBatch(t *testing.T) {
	std, _ := NewStandard(testConfig(0))
	payload, err := std.Encode(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := std.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("decoded %d measurements from empty batch", got.Len())
	}
}

func TestStandardRejectsInvalidBatch(t *testing.T) {
	std, _ := NewStandard(testConfig(0))
	if _, err := std.Encode(Batch{Indices: []int{5, 2}, Values: [][]float64{make([]float64, 6), make([]float64, 6)}}); err == nil {
		t.Error("unsorted batch accepted")
	}
}

func TestStandardDecodeCorruptCount(t *testing.T) {
	std, _ := NewStandard(testConfig(0))
	// Count claims 60 > T=50.
	if _, err := std.Decode([]byte{0, 60, 0, 0}); err == nil {
		t.Error("oversized count accepted")
	}
	// Truncated payload.
	if _, err := std.Decode([]byte{0}); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestPaddedAlwaysMaxSize(t *testing.T) {
	cfg := testConfig(0)
	pad, err := NewPadded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	want := StandardPayloadBytes(cfg.T, cfg.T, cfg.D, cfg.Format.Width)
	if pad.PayloadBytes() != want {
		t.Fatalf("PayloadBytes = %d, want %d", pad.PayloadBytes(), want)
	}
	for _, k := range []int{0, 1, 17, 50} {
		b := randomBatch(rng, cfg.T, cfg.D, k, 3)
		payload, err := pad.Encode(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) != want {
			t.Fatalf("k=%d: size %d, want fixed %d", k, len(payload), want)
		}
		got, err := pad.Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != k {
			t.Fatalf("k=%d: decoded %d", k, got.Len())
		}
	}
}
