package core

import "fmt"

// Kind names an encoder variant. It is the single source of truth for the
// six evaluated encoders; the simulator and the public root package alias
// it rather than redefining their own copies.
type Kind string

// The six evaluated encoders.
const (
	KindStandard  Kind = "standard"
	KindPadded    Kind = "padded"
	KindAGE       Kind = "age"
	KindSingle    Kind = "single"
	KindUnshifted Kind = "unshifted"
	KindPruned    Kind = "pruned"
)

// Kinds lists every encoder variant this package implements, in evaluation
// order (baseline, defense baseline, contribution, ablations).
func Kinds() []Kind {
	return []Kind{KindStandard, KindPadded, KindAGE, KindSingle, KindUnshifted, KindPruned}
}

// FixedSize reports whether the encoder emits same-sized messages (closing
// the side-channel). Only Standard leaks: its payload grows with the
// collection count.
func (k Kind) FixedSize() bool { return k != KindStandard }

// Valid reports whether k names an implemented encoder.
func (k Kind) Valid() bool {
	switch k {
	case KindStandard, KindPadded, KindAGE, KindSingle, KindUnshifted, KindPruned:
		return true
	}
	return false
}

// NewEncoder is the unified constructor over every encoder variant: it
// builds the encoder/decoder pair for kind with the given configuration.
// All six concrete types implement both halves on one value, so the two
// returned interfaces share state where the format requires it. An
// unimplemented kind returns an error wrapping ErrUnknownEncoder.
//
// The config is used as given: callers that want the paper's target sizing
// (ReduceTarget, cipher rounding) apply it to cfg.TargetBytes first.
func NewEncoder(kind Kind, cfg Config) (Encoder, Decoder, error) {
	switch kind {
	case KindStandard:
		s, err := NewStandard(cfg)
		if err != nil {
			return nil, nil, err
		}
		return s, s, nil
	case KindPadded:
		p, err := NewPadded(cfg)
		if err != nil {
			return nil, nil, err
		}
		return p, p, nil
	case KindAGE:
		a, err := NewAGE(cfg)
		if err != nil {
			return nil, nil, err
		}
		return a, a, nil
	case KindSingle:
		s, err := NewSingle(cfg)
		if err != nil {
			return nil, nil, err
		}
		return s, s, nil
	case KindUnshifted:
		u, err := NewUnshifted(cfg)
		if err != nil {
			return nil, nil, err
		}
		return u, u, nil
	case KindPruned:
		p, err := NewPruned(cfg)
		if err != nil {
			return nil, nil, err
		}
		return p, p, nil
	default:
		return nil, nil, fmt.Errorf("core: %w %q", ErrUnknownEncoder, kind)
	}
}
