package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixedpoint"
)

// rawBatch builds matching raw-mantissa and float batches: the floats are
// exactly representable, so the two encoders must agree byte for byte.
func rawBatch(rng *rand.Rand, cfg Config, k int) ([]int, [][]int32, Batch) {
	perm := rng.Perm(cfg.T)[:k]
	idx := append([]int(nil), perm...)
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	raw := make([][]int32, k)
	vals := make([][]float64, k)
	hi := int32(1)<<(cfg.Format.Width-1) - 1
	for i := range raw {
		raw[i] = make([]int32, cfg.D)
		vals[i] = make([]float64, cfg.D)
		for f := range raw[i] {
			v := int32(rng.Intn(int(2*hi))) - hi
			raw[i][f] = v
			vals[i][f] = fixedpoint.Value{Raw: v, Format: cfg.Format}.Float()
		}
	}
	return idx, raw, Batch{Indices: idx, Values: vals}
}

func TestRawNonFracBits(t *testing.T) {
	// Against the float implementation across formats.
	for _, frac := range []int{0, 4, 13, -3} {
		for _, raw := range []int32{0, 1, -1, 7, 100, -4096, 1 << 20, -(1 << 20)} {
			f := fixedpoint.Format{Width: 32, NonFrac: 32 - frac}
			if f.Validate() != nil {
				continue
			}
			want := fixedpoint.NonFracBitsFor(fixedpoint.Value{Raw: raw, Format: f}.Float())
			if got := RawNonFracBits(raw, frac); got != want {
				t.Errorf("RawNonFracBits(%d, frac=%d) = %d, want %d", raw, frac, got, want)
			}
		}
	}
}

func TestQuantizeRawMatchesFloat(t *testing.T) {
	prop := func(raw int32, seeds [3]uint8) bool {
		srcFrac := int(seeds[0]%20) - 2 // -2 .. 17
		width := int(seeds[1]%16) + 1
		nonFrac := int(seeds[2]%16) + 1
		src := fixedpoint.Format{Width: 28, NonFrac: 28 - srcFrac}
		dst := fixedpoint.Format{Width: width, NonFrac: nonFrac}
		if src.Validate() != nil || dst.Validate() != nil {
			return true
		}
		raw %= 1 << 27
		x := fixedpoint.Value{Raw: raw, Format: src}.Float()
		want := fixedpoint.FromFloat(x, dst).Bits()
		got := quantizeRaw(raw, srcFrac, width, nonFrac)
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestEncodeRawByteIdentical is the MCU/simulator equivalence proof: for
// exactly representable inputs, the integer-only encoder and the float
// encoder emit identical messages, across shapes, targets, and fill levels.
func TestEncodeRawByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfgs := []Config{
		{T: 50, D: 6, Format: fixedpoint.Format{Width: 16, NonFrac: 3}, TargetBytes: 220},
		{T: 50, D: 6, Format: fixedpoint.Format{Width: 16, NonFrac: 3}, TargetBytes: 35},
		{T: 206, D: 3, Format: fixedpoint.Format{Width: 16, NonFrac: 3}, TargetBytes: 640},
		{T: 23, D: 10, Format: fixedpoint.Format{Width: 16, NonFrac: 16}, TargetBytes: 150},
		{T: 784, D: 1, Format: fixedpoint.Format{Width: 9, NonFrac: 9}, TargetBytes: 280},
	}
	for _, cfg := range cfgs {
		a, err := NewAGE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			k := rng.Intn(cfg.T) + 1
			idx, raw, batch := rawBatch(rng, cfg, k)
			fromFloat, err := a.Encode(batch)
			if err != nil {
				t.Fatal(err)
			}
			fromRaw, err := a.EncodeRaw(idx, raw)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fromFloat, fromRaw) {
				t.Fatalf("cfg %+v k=%d: float and integer encoders diverge", cfg, k)
			}
		}
	}
}

func TestStandardEncodeRawByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	cfg := Config{T: 50, D: 6, Format: fixedpoint.Format{Width: 16, NonFrac: 3}}
	s, err := NewStandard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		k := rng.Intn(cfg.T) + 1
		idx, raw, batch := rawBatch(rng, cfg, k)
		fromFloat, err := s.Encode(batch)
		if err != nil {
			t.Fatal(err)
		}
		fromRaw, err := s.EncodeRaw(idx, raw)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromFloat, fromRaw) {
			t.Fatalf("k=%d: standard float and integer encoders diverge", k)
		}
	}
}

func TestEncodeRawDecodable(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	cfg := testConfig(180)
	a := mustAGE(t, cfg)
	idx, raw, _ := rawBatch(rng, cfg, 30)
	payload, err := a.EncodeRaw(idx, raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 || got.Len() > 30 {
		t.Fatalf("decoded %d measurements", got.Len())
	}
}

func TestEncodeRawValidation(t *testing.T) {
	cfg := testConfig(100)
	a := mustAGE(t, cfg)
	if _, err := a.EncodeRaw([]int{0, 1}, [][]int32{{1, 2, 3, 4, 5, 6}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := a.EncodeRaw([]int{1, 0}, make([][]int32, 2)); err == nil {
		t.Error("unsorted indices accepted")
	}
	if _, err := a.EncodeRaw([]int{0}, [][]int32{{1}}); err == nil {
		t.Error("wrong feature count accepted")
	}
}

func BenchmarkEncodeRawMCU(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig(TargetBytesForRate(0.7, 50, 6, 16))
	a, _ := NewAGE(cfg)
	idx, raw, _ := rawBatch(rng, cfg, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.EncodeRaw(idx, raw); err != nil {
			b.Fatal(err)
		}
	}
}
