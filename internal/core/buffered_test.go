package core

import (
	"math/rand"
	"testing"

	"repro/internal/fixedpoint"
)

func bufferedConfig() Config {
	return Config{
		T: 50, D: 2, Format: fixedpoint.Format{Width: 16, NonFrac: 3},
		TargetBytes: TargetBytesForRate(0.5, 50, 2, 16),
	}
}

func TestBufferedFixedSize(t *testing.T) {
	cfg := bufferedConfig()
	b, err := NewBuffered(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{0, 5, 25, 50} {
		var batch Batch
		if k > 0 {
			batch = randomBatch(rng, cfg.T, cfg.D, k, 3)
		}
		msg, err := b.Push(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(msg) != cfg.TargetBytes {
			t.Fatalf("k=%d: %dB, want %d", k, len(msg), cfg.TargetBytes)
		}
	}
}

func TestBufferedLosslessDelivery(t *testing.T) {
	cfg := bufferedConfig()
	b, err := NewBuffered(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	batch := randomBatch(rng, cfg.T, cfg.D, 10, 3)
	msg, err := b.Push(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBuffered(msg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d of 10", len(got))
	}
	for i, m := range got {
		if m.WindowAge != 0 || m.Index != batch.Indices[i] {
			t.Fatalf("measurement %d: age %d index %d", i, m.WindowAge, m.Index)
		}
		for f := range m.Values {
			diff := m.Values[f] - batch.Values[i][f]
			if diff > cfg.Format.Resolution()/2 || diff < -cfg.Format.Resolution()/2 {
				t.Fatalf("value error %g beyond native quantization", diff)
			}
		}
	}
}

// TestBufferedLatencyGrowsUnderOversampling exercises the §7 failure mode:
// sustained over-sampling queues measurements and delivery lags by more and
// more windows.
func TestBufferedLatencyGrowsUnderOversampling(t *testing.T) {
	cfg := bufferedConfig() // capacity ~25 measurements per message
	b, err := NewBuffered(cfg, 10000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for w := 0; w < 10; w++ {
		// Collect everything every window: 50 in, ~25 out.
		if _, err := b.Push(randomBatch(rng, cfg.T, cfg.D, cfg.T, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Pending() == 0 {
		t.Fatal("no backlog despite sustained over-sampling")
	}
	if b.MaxLatency < 2 {
		t.Errorf("max latency %d windows; expected growing lag", b.MaxLatency)
	}
	if b.MeanLatency() <= 0.5 {
		t.Errorf("mean latency %.2f windows; expected clear lag", b.MeanLatency())
	}
}

// TestBufferedDropsWhenMemoryBound: with a realistic small buffer the same
// workload must drop measurements.
func TestBufferedDropsWhenMemoryBound(t *testing.T) {
	cfg := bufferedConfig()
	b, err := NewBuffered(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for w := 0; w < 10; w++ {
		if _, err := b.Push(randomBatch(rng, cfg.T, cfg.D, cfg.T, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Dropped == 0 {
		t.Error("no drops despite a bounded buffer and sustained over-sampling")
	}
}

func TestBufferedUnderSamplingNoLatency(t *testing.T) {
	cfg := bufferedConfig()
	b, err := NewBuffered(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for w := 0; w < 5; w++ {
		if _, err := b.Push(randomBatch(rng, cfg.T, cfg.D, 10, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if b.MeanLatency() != 0 || b.Dropped != 0 || b.Pending() != 0 {
		t.Errorf("under-sampling: latency %.2f drops %d pending %d",
			b.MeanLatency(), b.Dropped, b.Pending())
	}
}

func TestBufferedConstructorErrors(t *testing.T) {
	cfg := bufferedConfig()
	cfg.TargetBytes = 2
	if _, err := NewBuffered(cfg, 100); err == nil {
		t.Error("tiny target accepted")
	}
	cfg = bufferedConfig()
	if _, err := NewBuffered(cfg, 0); err == nil {
		t.Error("zero buffer accepted")
	}
}

func TestDecodeBufferedMalformed(t *testing.T) {
	cfg := bufferedConfig()
	if _, err := DecodeBuffered(nil, cfg); err == nil {
		t.Error("empty payload accepted")
	}
	// Count claims measurements the payload cannot hold.
	if _, err := DecodeBuffered([]byte{200, 0, 0}, cfg); err == nil {
		t.Error("truncated payload accepted")
	}
}
