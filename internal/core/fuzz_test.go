package core

import (
	"math/rand"
	"testing"

	"repro/internal/fixedpoint"
)

// The decoders run on the server against radio payloads that may be
// corrupted in flight (AGE explicitly considers dropped/failed messages,
// §4.5). These fuzz targets require every decoder to reject or cleanly
// decode arbitrary bytes — never panic — and to be stable under
// re-encoding.

// fuzzConfigs returns a few representative task shapes.
func fuzzConfigs() []Config {
	return []Config{
		{T: 50, D: 6, Format: fixedpoint.Format{Width: 16, NonFrac: 3}, TargetBytes: 150},
		{T: 206, D: 3, Format: fixedpoint.Format{Width: 16, NonFrac: 3}, TargetBytes: 600},
		{T: 784, D: 1, Format: fixedpoint.Format{Width: 9, NonFrac: 9}, TargetBytes: 300},
		{T: 23, D: 10, Format: fixedpoint.Format{Width: 16, NonFrac: 16}, TargetBytes: 120},
	}
}

// seedCorpus adds valid encodings of random batches so the fuzzer starts
// from structurally plausible inputs.
func seedCorpus(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range fuzzConfigs() {
		a, err := NewAGE(cfg)
		if err != nil {
			f.Fatal(err)
		}
		k := rng.Intn(cfg.T) + 1
		b := randomBatch(rng, cfg.T, cfg.D, k, 3)
		payload, err := a.Encode(b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		s, err := NewStandard(cfg)
		if err != nil {
			f.Fatal(err)
		}
		payload, err = s.Encode(b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
}

// FuzzAGEDecode checks that AGE's decoder never panics and that anything it
// accepts is a structurally valid batch that re-encodes to the fixed size.
func FuzzAGEDecode(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, payload []byte) {
		for _, cfg := range fuzzConfigs() {
			a, err := NewAGE(cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := a.Decode(payload)
			if err != nil {
				continue
			}
			if err := batch.Validate(cfg.T, cfg.D); err != nil {
				t.Fatalf("accepted structurally invalid batch: %v", err)
			}
			re, err := a.Encode(batch)
			if err != nil {
				t.Fatalf("accepted batch fails re-encode: %v", err)
			}
			if len(re) != cfg.TargetBytes {
				t.Fatalf("re-encode size %d != %d", len(re), cfg.TargetBytes)
			}
		}
	})
}

// FuzzStandardDecode does the same for the Standard decoder.
func FuzzStandardDecode(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, payload []byte) {
		for _, cfg := range fuzzConfigs() {
			s, err := NewStandard(cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := s.Decode(payload)
			if err != nil {
				continue
			}
			if err := batch.Validate(cfg.T, cfg.D); err != nil {
				t.Fatalf("accepted structurally invalid batch: %v", err)
			}
		}
	})
}

// FuzzVariantDecode covers the three ablation decoders.
func FuzzVariantDecode(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, payload []byte) {
		for _, cfg := range fuzzConfigs() {
			for _, build := range []func(Config) (interface {
				Decode([]byte) (Batch, error)
			}, error){
				func(c Config) (interface {
					Decode([]byte) (Batch, error)
				}, error) {
					return NewSingle(c)
				},
				func(c Config) (interface {
					Decode([]byte) (Batch, error)
				}, error) {
					return NewUnshifted(c)
				},
				func(c Config) (interface {
					Decode([]byte) (Batch, error)
				}, error) {
					return NewPruned(c)
				},
			} {
				dec, err := build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				batch, err := dec.Decode(payload)
				if err != nil {
					continue
				}
				if err := batch.Validate(cfg.T, cfg.D); err != nil {
					t.Fatalf("accepted structurally invalid batch: %v", err)
				}
			}
		}
	})
}
