package core

import (
	"math/rand"
	"testing"
)

// The fixed-size contract cuts both ways: encoders must always emit
// TargetBytes, and decoders must refuse anything else. A decoder that
// silently accepts a truncated or padded payload would mask framing bugs in
// the transport and weaken the side-channel argument (a deployment that let
// sizes drift would leak again).
func TestFixedSizeDecodersRejectWrongLength(t *testing.T) {
	cfg := testConfig(220)
	build := []struct {
		name string
		mk   func() (Encoder, Decoder, error)
	}{
		{"age", func() (Encoder, Decoder, error) { a, err := NewAGE(cfg); return a, a, err }},
		{"single", func() (Encoder, Decoder, error) { s, err := NewSingle(cfg); return s, s, err }},
		{"unshifted", func() (Encoder, Decoder, error) { u, err := NewUnshifted(cfg); return u, u, err }},
		{"pruned", func() (Encoder, Decoder, error) { p, err := NewPruned(cfg); return p, p, err }},
		{"padded", func() (Encoder, Decoder, error) { p, err := NewPadded(cfg); return p, p, err }},
	}
	rng := rand.New(rand.NewSource(7))
	batch := randomBatch(rng, cfg.T, cfg.D, 12, 3.5)
	for _, tc := range build {
		t.Run(tc.name, func(t *testing.T) {
			enc, dec, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			payload, err := enc.Encode(batch)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dec.Decode(payload); err != nil {
				t.Fatalf("exact-size decode failed: %v", err)
			}
			short := payload[:len(payload)-1]
			if _, err := dec.Decode(short); err == nil {
				t.Errorf("decode accepted %dB payload, want exactly %dB rejected", len(short), len(payload))
			}
			long := append(append([]byte(nil), payload...), 0)
			if _, err := dec.Decode(long); err == nil {
				t.Errorf("decode accepted %dB payload, want exactly %dB rejected", len(long), len(payload))
			}
			if _, err := dec.Decode(nil); err == nil {
				t.Error("decode accepted empty payload")
			}
		})
	}
}

func TestMergeGroupsSinglePassScoring(t *testing.T) {
	// Boundary scores are computed once over the original grouping, then
	// the n-g cheapest boundaries dissolve (leftmost wins ties). Four
	// identical groups at g = 2 therefore collapse the two leftmost
	// boundaries into [{3}, {1}]. An implementation that re-scored after
	// each merge would produce [{2}, {2}] instead, because the first merge
	// raises the cost of the adjacent boundary.
	groups := []group{
		{count: 1, exponent: 0},
		{count: 1, exponent: 0},
		{count: 1, exponent: 0},
		{count: 1, exponent: 0},
	}
	merged := mergeGroups(groups, 2)
	if len(merged) != 2 || merged[0].count != 3 || merged[1].count != 1 {
		t.Fatalf("merged = %+v, want counts [3 1] (single-pass scoring)", merged)
	}
}
