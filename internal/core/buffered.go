package core

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/fixedpoint"
)

// Buffered implements the alternative defense §7 discusses and rejects:
// keep messages the same size by buffering excess measurements and sending
// them in later windows, losslessly. Its two failure modes are exactly the
// ones the paper names — reporting latency grows whenever the policy
// over-samples, and the bounded sensor memory forces drops when
// over-sampling persists — and the Buffered experiment measures both.
//
// Wire layout (fixed TargetBytes per window):
//
//	[1B measurement count m]
//	per measurement: [ageBits window age] [idxBits index] [d x w0 values]
//	[zero pad to TargetBytes]
//
// The window age says how many windows ago the measurement was captured, so
// the server can reassemble sequences; it saturates at maxAge.
type Buffered struct {
	cfg        Config
	perMessage int // measurements per message
	maxBuffer  int // queued measurements the sensor can hold

	window int
	queue  []bufferedMeasurement

	// Telemetry for the §7 analysis.
	Sent         int // measurements delivered
	Dropped      int // measurements lost to the memory bound
	TotalLatency int // sum of delivered window ages
	MaxLatency   int
}

type bufferedMeasurement struct {
	window int
	index  int
	values []float64
}

// ageBits caps the window-age field; older measurements saturate.
const ageBits = 4

const maxAge = 1<<ageBits - 1

// NewBuffered returns a buffering encoder. TargetBytes fixes the message
// size; bufferLimit models the sensor's spare RAM in measurements (the
// MSP430 FR5994 has 8 KiB SRAM — a few hundred Activity measurements at
// most once the radio and policy state take their share).
func NewBuffered(cfg Config, bufferLimit int) (*Buffered, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	per := buffMeasurementsPerMessage(cfg)
	if per < 1 {
		return nil, fmt.Errorf("core: buffered target %dB cannot hold one measurement: %w", cfg.TargetBytes, ErrTargetTooSmall)
	}
	if bufferLimit < 1 {
		return nil, fmt.Errorf("core: buffer limit %d must be positive", bufferLimit)
	}
	return &Buffered{cfg: cfg, perMessage: per, maxBuffer: bufferLimit}, nil
}

// buffMeasurementsPerMessage computes how many tagged full-width
// measurements fit in the target.
func buffMeasurementsPerMessage(cfg Config) int {
	perBits := ageBits + indexBits(cfg.T) + cfg.D*cfg.Format.Width
	return (8*cfg.TargetBytes - 8) / perBits
}

// PerMessage returns the fixed measurement capacity of one message.
func (b *Buffered) PerMessage() int { return b.perMessage }

// PayloadBytes returns the fixed message size.
func (b *Buffered) PayloadBytes() int { return b.cfg.TargetBytes }

// Name identifies the encoder.
func (b *Buffered) Name() string { return "buffered" }

// Push enqueues one window's batch and emits that window's fixed-size
// message (oldest measurements first). Excess measurements wait; if the
// queue exceeds the memory bound, the newest measurements are dropped, as a
// real sensor out of RAM must.
func (b *Buffered) Push(batch Batch) ([]byte, error) {
	if err := batch.Validate(b.cfg.T, b.cfg.D); err != nil {
		return nil, err
	}
	for i := range batch.Indices {
		if len(b.queue) >= b.maxBuffer {
			b.Dropped++
			continue
		}
		b.queue = append(b.queue, bufferedMeasurement{
			window: b.window,
			index:  batch.Indices[i],
			values: batch.Values[i],
		})
	}
	n := b.perMessage
	if n > len(b.queue) {
		n = len(b.queue)
	}
	w := bitio.NewWriter(b.cfg.TargetBytes)
	w.WriteBits(uint32(n), 8)
	ib := indexBits(b.cfg.T)
	q := fixedpoint.NewQuantizer(b.cfg.Format)
	for _, m := range b.queue[:n] {
		age := b.window - m.window
		if age > maxAge {
			age = maxAge
		}
		if age > b.MaxLatency {
			b.MaxLatency = age
		}
		b.TotalLatency += age
		b.Sent++
		w.WriteBits(uint32(age), ageBits)
		w.WriteBits(uint32(m.index), ib)
		for _, v := range m.values {
			w.WriteBits(q.Bits(v), b.cfg.Format.Width)
		}
	}
	b.queue = append(b.queue[:0], b.queue[n:]...)
	b.window++
	w.PadTo(b.cfg.TargetBytes)
	return w.Bytes(), nil
}

// Pending returns the number of queued, undelivered measurements.
func (b *Buffered) Pending() int { return len(b.queue) }

// MeanLatency returns the average delivery delay in windows.
func (b *Buffered) MeanLatency() float64 {
	if b.Sent == 0 {
		return 0
	}
	return float64(b.TotalLatency) / float64(b.Sent)
}

// BufferedMeasurement is one decoded, window-tagged measurement.
type BufferedMeasurement struct {
	// WindowAge is how many windows before the message's own window the
	// measurement was captured (0 = current window).
	WindowAge int
	Index     int
	Values    []float64
}

// DecodeBuffered parses one Buffered message.
func DecodeBuffered(payload []byte, cfg Config) ([]BufferedMeasurement, error) {
	cfg = cfg.withDefaults()
	r := bitio.NewReader(payload)
	n, err := r.ReadBits(8)
	if err != nil {
		return nil, fmt.Errorf("core: buffered decode count: %w", err)
	}
	ib := indexBits(cfg.T)
	out := make([]BufferedMeasurement, 0, n)
	for i := 0; i < int(n); i++ {
		age, err1 := r.ReadBits(ageBits)
		idx, err2 := r.ReadBits(ib)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("core: buffered decode measurement %d", i)
		}
		if int(idx) >= cfg.T {
			return nil, fmt.Errorf("core: buffered decode: index %d out of range", idx)
		}
		m := BufferedMeasurement{WindowAge: int(age), Index: int(idx), Values: make([]float64, cfg.D)}
		for f := 0; f < cfg.D; f++ {
			bitsv, err := r.ReadBits(cfg.Format.Width)
			if err != nil {
				return nil, fmt.Errorf("core: buffered decode values: %w", err)
			}
			m.Values[f] = fixedpoint.FromBits(bitsv, cfg.Format).Float()
		}
		out = append(out, m)
	}
	return out, nil
}
