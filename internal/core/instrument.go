package core

import (
	"time"

	"repro/internal/metrics"
)

// Codec instrumentation: the simulator wraps each encoder/decoder pair so
// live runs report Encode/Decode latency and throughput per encoder kind
// (AGE vs the baselines). The wrapper preserves the AppendEncoder /
// IntoDecoder reuse paths, and its per-call cost is two time.Now reads plus
// a handful of atomic adds — the AllocsPerRun tests in alloc_test.go verify
// the instrumented hot path still allocates nothing in steady state.

// CodecMetrics is the instrument family for one encoder kind. All instances
// of that kind (e.g. every fleet sensor's AGE encoder) share one family, the
// registry's get-or-create semantics making the sharing automatic.
type CodecMetrics struct {
	EncodeNs     *metrics.Histogram
	DecodeNs     *metrics.Histogram
	Encodes      *metrics.Counter
	Decodes      *metrics.Counter
	EncodeErrors *metrics.Counter
	DecodeErrors *metrics.Counter
	PayloadBytes *metrics.Counter
}

// NewCodecMetrics resolves (or creates) the codec instrument family for the
// named encoder kind in reg, under core.<name>.*. A nil registry yields nil,
// which InstrumentCodec treats as "leave the codec bare".
func NewCodecMetrics(reg *metrics.Registry, name string) *CodecMetrics {
	if reg == nil {
		return nil
	}
	return &CodecMetrics{
		EncodeNs:     reg.Histogram("core."+name+".encode_ns", metrics.LatencyBuckets()...),
		DecodeNs:     reg.Histogram("core."+name+".decode_ns", metrics.LatencyBuckets()...),
		Encodes:      reg.Counter("core." + name + ".encodes"),
		Decodes:      reg.Counter("core." + name + ".decodes"),
		EncodeErrors: reg.Counter("core." + name + ".encode_errors"),
		DecodeErrors: reg.Counter("core." + name + ".decode_errors"),
		PayloadBytes: reg.Counter("core." + name + ".payload_bytes"),
	}
}

// instrumentedCodec wraps a codec with latency and count instrumentation. It
// always implements the reuse interfaces, falling back to the allocating
// path only when the wrapped codec lacks them (no encoder in this package
// does).
type instrumentedCodec struct {
	enc  Encoder
	app  AppendEncoder // nil when enc is not an AppendEncoder
	dec  Decoder
	into IntoDecoder // nil when dec is not an IntoDecoder
	cm   *CodecMetrics
}

// InstrumentCodec wraps the pair with cm. With cm == nil the inputs are
// returned untouched, so call sites thread an optional *CodecMetrics without
// branching. The wrapper is wire-invisible: bytes in and out are exactly the
// wrapped codec's.
func InstrumentCodec(enc Encoder, dec Decoder, cm *CodecMetrics) (Encoder, Decoder) {
	if cm == nil {
		return enc, dec
	}
	ic := &instrumentedCodec{enc: enc, dec: dec, cm: cm}
	ic.app, _ = enc.(AppendEncoder)
	ic.into, _ = dec.(IntoDecoder)
	return ic, ic
}

// Name implements Encoder.
func (ic *instrumentedCodec) Name() string { return ic.enc.Name() }

// Encode implements Encoder.
func (ic *instrumentedCodec) Encode(b Batch) ([]byte, error) {
	start := time.Now()
	out, err := ic.enc.Encode(b)
	ic.finishEncode(start, out, err)
	return out, err
}

// AppendEncode implements AppendEncoder.
//
//age:hotpath
func (ic *instrumentedCodec) AppendEncode(dst []byte, b Batch) ([]byte, error) {
	if ic.app == nil {
		out, err := ic.enc.Encode(b)
		if err != nil {
			ic.cm.EncodeErrors.Inc()
			return nil, err
		}
		dst = append(dst, out...)
		ic.cm.Encodes.Inc()
		ic.cm.PayloadBytes.Add(int64(len(out)))
		return dst, nil
	}
	start := time.Now()
	out, err := ic.app.AppendEncode(dst, b)
	ic.finishEncode(start, out, err)
	return out, err
}

func (ic *instrumentedCodec) finishEncode(start time.Time, out []byte, err error) {
	ic.cm.EncodeNs.ObserveSince(start)
	if err != nil {
		ic.cm.EncodeErrors.Inc()
		return
	}
	ic.cm.Encodes.Inc()
	ic.cm.PayloadBytes.Add(int64(len(out)))
}

// Decode implements Decoder.
func (ic *instrumentedCodec) Decode(payload []byte) (Batch, error) {
	start := time.Now()
	b, err := ic.dec.Decode(payload)
	ic.finishDecode(start, err)
	return b, err
}

// DecodeInto implements IntoDecoder.
//
//age:hotpath
func (ic *instrumentedCodec) DecodeInto(b *Batch, payload []byte) error {
	if ic.into == nil {
		got, err := ic.dec.Decode(payload)
		if err != nil {
			ic.cm.DecodeErrors.Inc()
			return err
		}
		*b = got
		ic.cm.Decodes.Inc()
		return nil
	}
	start := time.Now()
	err := ic.into.DecodeInto(b, payload)
	ic.finishDecode(start, err)
	return err
}

func (ic *instrumentedCodec) finishDecode(start time.Time, err error) {
	ic.cm.DecodeNs.ObserveSince(start)
	if err != nil {
		ic.cm.DecodeErrors.Inc()
		return
	}
	ic.cm.Decodes.Inc()
}
