package core

import (
	"math/rand"
	"runtime/debug"
	"testing"
)

// The reuse contract: steady-state AppendEncode/DecodeInto must not allocate
// per batch once the scratch pools and caller buffers are warm. GC is
// disabled during measurement so a collection cannot empty the sync.Pool
// mid-run and show up as a spurious allocation.
func measureAllocs(t *testing.T, f func()) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	f() // warm pools and buffers
	return testing.AllocsPerRun(50, f)
}

func TestAGEEncodeDecodeAllocs(t *testing.T) {
	cfg := testConfig(TargetBytesForRate(0.7, 50, 6, 16))
	a := mustAGE(t, cfg)
	rng := rand.New(rand.NewSource(21))
	batch := randomBatch(rng, cfg.T, cfg.D, 40, 3.5)
	var payload []byte
	var dec Batch

	if got := measureAllocs(t, func() {
		var err error
		payload, err = a.AppendEncode(payload[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("AGE.AppendEncode steady state allocates %.1f/op, want 0", got)
	}
	if got := measureAllocs(t, func() {
		if err := a.DecodeInto(&dec, payload); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("AGE.DecodeInto steady state allocates %.1f/op, want 0", got)
	}
	// The reuse path must produce the same bytes as the allocating path.
	direct, err := a.Encode(batch)
	if err != nil {
		t.Fatal(err)
	}
	if string(direct) != string(payload) {
		t.Error("AppendEncode output differs from Encode")
	}
}

func TestStandardEncodeDecodeAllocs(t *testing.T) {
	cfg := testConfig(0)
	s, err := NewStandard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	batch := randomBatch(rng, cfg.T, cfg.D, 40, 3.5)
	var payload []byte
	var dec Batch

	if got := measureAllocs(t, func() {
		var err error
		payload, err = s.AppendEncode(payload[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Standard.AppendEncode steady state allocates %.1f/op, want 0", got)
	}
	if got := measureAllocs(t, func() {
		if err := s.DecodeInto(&dec, payload); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Standard.DecodeInto steady state allocates %.1f/op, want 0", got)
	}
}

// All package encoders must offer both reuse interfaces so the simulator's
// hot loop never falls back to the allocating path.
func TestAllEncodersImplementReusePaths(t *testing.T) {
	cfg := testConfig(220)
	age := mustAGE(t, cfg)
	std, _ := NewStandard(cfg)
	pad, _ := NewPadded(cfg)
	single, _ := NewSingle(cfg)
	unsh, _ := NewUnshifted(cfg)
	pruned, _ := NewPruned(cfg)
	for _, e := range []Encoder{age, std, pad, single, unsh, pruned} {
		if _, ok := e.(AppendEncoder); !ok {
			t.Errorf("%s does not implement AppendEncoder", e.Name())
		}
		if _, ok := e.(IntoDecoder); !ok {
			t.Errorf("%s does not implement IntoDecoder", e.Name())
		}
	}
}

// TestReusePathsMatchAllocatingPaths round-trips every encoder through both
// paths and requires byte- and value-identical results: the de-allocation
// refactor must be invisible on the wire.
func TestReusePathsMatchAllocatingPaths(t *testing.T) {
	cfg := testConfig(220)
	age := mustAGE(t, cfg)
	std, _ := NewStandard(cfg)
	pad, _ := NewPadded(cfg)
	single, _ := NewSingle(cfg)
	unsh, _ := NewUnshifted(cfg)
	pruned, _ := NewPruned(cfg)
	rng := rand.New(rand.NewSource(23))
	for _, e := range []Encoder{age, std, pad, single, unsh, pruned} {
		var buf []byte
		var dec Batch
		for trial := 0; trial < 20; trial++ {
			k := rng.Intn(cfg.T) + 1
			b := randomBatch(rng, cfg.T, cfg.D, k, 3.5)
			direct, err := e.Encode(b)
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			buf, err = e.(AppendEncoder).AppendEncode(buf[:0], b)
			if err != nil {
				t.Fatalf("%s append: %v", e.Name(), err)
			}
			if string(direct) != string(buf) {
				t.Fatalf("%s trial %d: AppendEncode bytes differ from Encode", e.Name(), trial)
			}
			want, err := e.(Decoder).Decode(direct)
			if err != nil {
				t.Fatalf("%s decode: %v", e.Name(), err)
			}
			if err := e.(IntoDecoder).DecodeInto(&dec, buf); err != nil {
				t.Fatalf("%s decode into: %v", e.Name(), err)
			}
			if len(dec.Indices) != len(want.Indices) {
				t.Fatalf("%s trial %d: DecodeInto %d indices, Decode %d", e.Name(), trial, len(dec.Indices), len(want.Indices))
			}
			for i := range want.Indices {
				if dec.Indices[i] != want.Indices[i] {
					t.Fatalf("%s trial %d: index %d differs", e.Name(), trial, i)
				}
				for f := range want.Values[i] {
					if dec.Values[i][f] != want.Values[i][f] {
						t.Fatalf("%s trial %d: value [%d][%d] differs", e.Name(), trial, i, f)
					}
				}
			}
		}
	}
}

func BenchmarkAGEAppendEncodeActivity(b *testing.B) {
	cfg := testConfig(TargetBytesForRate(0.7, 50, 6, 16))
	a, _ := NewAGE(cfg)
	rng := rand.New(rand.NewSource(1))
	batch := randomBatch(rng, cfg.T, cfg.D, 40, 3.5)
	var payload []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if payload, err = a.AppendEncode(payload[:0], batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAGEDecodeIntoActivity(b *testing.B) {
	cfg := testConfig(TargetBytesForRate(0.7, 50, 6, 16))
	a, _ := NewAGE(cfg)
	rng := rand.New(rand.NewSource(1))
	payload, err := a.Encode(randomBatch(rng, cfg.T, cfg.D, 40, 3.5))
	if err != nil {
		b.Fatal(err)
	}
	var dec Batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.DecodeInto(&dec, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStandardAppendEncodeActivity(b *testing.B) {
	cfg := testConfig(0)
	s, _ := NewStandard(cfg)
	rng := rand.New(rand.NewSource(1))
	batch := randomBatch(rng, cfg.T, cfg.D, 40, 3.5)
	var payload []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if payload, err = s.AppendEncode(payload[:0], batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStandardDecodeIntoActivity(b *testing.B) {
	cfg := testConfig(0)
	s, _ := NewStandard(cfg)
	rng := rand.New(rand.NewSource(1))
	payload, err := s.Encode(randomBatch(rng, cfg.T, cfg.D, 40, 3.5))
	if err != nil {
		b.Fatal(err)
	}
	var dec Batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.DecodeInto(&dec, payload); err != nil {
			b.Fatal(err)
		}
	}
}
