package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitio"
	"repro/internal/fixedpoint"
)

// overflowConfig is a synthetic task big enough to overflow the 16-bit group
// run-length field: T beyond 65535 with alternating exponents collapses (under
// MinGroups=1) into a single merged group whose count cannot fit on the wire.
func overflowConfig() Config {
	return Config{
		T:           70000,
		D:           1,
		Format:      fixedpoint.Format{Width: 8, NonFrac: 2},
		TargetBytes: 18000,
		MinWidth:    1,
		MinGroups:   1,
	}
}

// overflowBatch alternates values with exponents 1 and 2 so rleGroups emits
// T single-measurement groups that all merge toward one group.
func overflowBatch(T int) Batch {
	idx := make([]int, T)
	vals := make([][]float64, T)
	for i := range idx {
		idx[i] = i
		if i%2 == 0 {
			vals[i] = []float64{0.4} // exponent 1
		} else {
			vals[i] = []float64{1.7} // exponent 2
		}
	}
	return Batch{Indices: idx, Values: vals}
}

// TestAGERunLengthOverflowRegression pins the 16-bit run-length fix: before
// it, the fully merged group's count (70000) was masked to 70000-65536 in the
// 2-byte field and the payload decoded as a short, corrupt batch. Merging
// must now stop at the field's capacity and the round trip must survive.
func TestAGERunLengthOverflowRegression(t *testing.T) {
	cfg := overflowConfig()
	a := mustAGE(t, cfg)
	b := overflowBatch(cfg.T)
	payload, err := a.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != cfg.TargetBytes {
		t.Fatalf("payload %dB, want %dB", len(payload), cfg.TargetBytes)
	}
	got, err := a.Decode(payload)
	if err != nil {
		t.Fatalf("round trip failed (run length truncated?): %v", err)
	}
	if got.Len() != b.Len() {
		t.Fatalf("decoded %d measurements, want %d", got.Len(), b.Len())
	}
	for i := range b.Indices {
		if got.Indices[i] != b.Indices[i] {
			t.Fatalf("index %d decoded as %d, want %d", i, got.Indices[i], b.Indices[i])
		}
	}
}

// TestMergeGroupsNeverExceedsRunLength drives mergeGroups directly at counts
// that straddle the cap: pairs summing past 65535 must stay split even when
// the requested group count is 1.
func TestMergeGroupsNeverExceedsRunLength(t *testing.T) {
	groups := []group{
		{count: 40000, exponent: 1},
		{count: 30000, exponent: 1}, // 40000+30000 > 65535: boundary pinned
		{count: 20000, exponent: 1}, // 30000+20000 <= 65535: merges
	}
	merged := mergeGroups(append([]group(nil), groups...), 1)
	total := 0
	for _, g := range merged {
		if g.count > maxRunLen {
			t.Fatalf("merged group count %d exceeds wire cap %d", g.count, maxRunLen)
		}
		total += g.count
	}
	if total != 90000 {
		t.Fatalf("merge lost measurements: total %d, want 90000", total)
	}
	if len(merged) != 2 {
		t.Fatalf("merged to %d groups, want 2 (one pinned boundary)", len(merged))
	}
}

// TestMergeGroupsChainedOverflow checks the accumulation re-check: two
// boundaries that are each individually mergeable must not chain into one
// oversized group.
func TestMergeGroupsChainedOverflow(t *testing.T) {
	groups := []group{
		{count: 30000, exponent: 1},
		{count: 30000, exponent: 1},
		{count: 30000, exponent: 1},
	}
	merged := mergeGroups(append([]group(nil), groups...), 1)
	total := 0
	for _, g := range merged {
		if g.count > maxRunLen {
			t.Fatalf("chained merge produced count %d > %d", g.count, maxRunLen)
		}
		total += g.count
	}
	if total != 90000 {
		t.Fatalf("total %d, want 90000", total)
	}
}

// TestAGEDecodeRejectsOversizedExponent hand-crafts a payload whose group
// exponent byte exceeds fixedpoint.MaxWidth. Before the fix Decode only
// checked exponent >= 1 and built an invalid fixedpoint.Format from it.
func TestAGEDecodeRejectsOversizedExponent(t *testing.T) {
	cfg := Config{
		T:           8,
		D:           1,
		Format:      fixedpoint.Format{Width: 8, NonFrac: 2},
		TargetBytes: 20,
		MinWidth:    1,
		MinGroups:   1,
	}
	a := mustAGE(t, cfg)
	build := func(exponent uint32) []byte {
		w := bitio.NewWriter(cfg.TargetBytes)
		// T=8 < 16 bits, so the index block is always the bitmask form.
		w.WriteBits(indexEncodingBitmask, 8)
		w.WriteBits(0b10000000, 8) // one measurement at t=0
		w.Align()
		w.WriteBits(1, 8) // one group
		w.WriteBits(1, 16)
		w.WriteBits(exponent, 8)
		w.WriteBits(8, 8) // full native width
		w.WriteBits(0x2A, 8)
		w.PadTo(cfg.TargetBytes)
		return w.Bytes()
	}
	if _, err := a.Decode(build(2)); err != nil {
		t.Fatalf("control payload with valid exponent rejected: %v", err)
	}
	for _, exp := range []uint32{fixedpoint.MaxWidth + 1, 40, 255} {
		if _, err := a.Decode(build(exp)); err == nil {
			t.Errorf("exponent %d beyond MaxWidth accepted", exp)
		} else if !strings.Contains(err.Error(), "invalid format") {
			t.Errorf("exponent %d: unexpected error %v", exp, err)
		}
	}
}

// TestAGEDecodeMutatedPayloads corrupts every byte of a valid payload with a
// few adversarial values; Decode must either fail cleanly or return a
// structurally valid batch — never panic or construct an invalid format.
func TestAGEDecodeMutatedPayloads(t *testing.T) {
	cfg := testConfig(120)
	a := mustAGE(t, cfg)
	rng := rand.New(rand.NewSource(11))
	payload, err := a.Encode(randomBatch(rng, cfg.T, cfg.D, 30, 3.5))
	if err != nil {
		t.Fatal(err)
	}
	mut := make([]byte, len(payload))
	for pos := range payload {
		for _, v := range []byte{0x00, 0xFF, 0x28, payload[pos] ^ 0x80} {
			copy(mut, payload)
			mut[pos] = v
			got, err := a.Decode(mut)
			if err != nil {
				continue
			}
			if verr := got.Validate(cfg.T, cfg.D); verr != nil {
				t.Fatalf("byte %d = %#x: decode accepted structurally invalid batch: %v", pos, v, verr)
			}
		}
	}
}
