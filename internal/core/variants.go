package core

import (
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/fixedpoint"
)

// This file implements the three AGE ablation variants of §5.6. All three
// emit exactly TargetBytes (so they close the side-channel like AGE); they
// differ in which of AGE's transformations they keep, and the evaluation
// (Table 8) shows each missing piece costs reconstruction error.
//
//   - Single:    one uniform bit width, static exponent (no groups, no RLE).
//   - Unshifted: six even groups with round-robin widths, static exponent.
//   - Pruned:    pruning only; values stay at the native width.

// Single quantizes every value with one global bit width and the native
// number of non-fractional bits. When even one bit per value does not fit,
// it must drop the whole batch — the §4.2 failure mode.
type Single struct {
	cfg Config
}

// NewSingle returns the single-width quantization variant.
func NewSingle(cfg Config) (*Single, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TargetBytes < minAGEBytes {
		return nil, fmt.Errorf("core: Single target %dB below minimum %dB: %w", cfg.TargetBytes, minAGEBytes, ErrTargetTooSmall)
	}
	return &Single{cfg: cfg}, nil
}

// Name implements Encoder.
func (s *Single) Name() string { return "single" }

// PayloadBytes returns the fixed message size M_B.
func (s *Single) PayloadBytes() int { return s.cfg.TargetBytes }

// singleHeaderBits is the fixed header: index block + 1B width.
func singleHeaderBits(k, T int) int {
	h := indexBlockBits(k, T)
	return h + roundUp8pad(h) + 8
}

// Encode implements Encoder.
func (s *Single) Encode(b Batch) ([]byte, error) { return s.AppendEncode(nil, b) }

// AppendEncode implements AppendEncoder.
//
//age:hotpath
func (s *Single) AppendEncode(dst []byte, b Batch) ([]byte, error) {
	if err := b.Validate(s.cfg.T, s.cfg.D); err != nil {
		return nil, err
	}
	idx, vals := b.Indices, b.Values
	// Width from the whole-message budget; drop everything if no width >= 1
	// exists (standard fixed-point quantization has no pruning fallback).
	k := len(idx)
	width := 0
	if k > 0 {
		width = (8*s.cfg.TargetBytes - singleHeaderBits(k, s.cfg.T)) / (k * s.cfg.D)
	}
	if width < 1 {
		idx, vals = nil, nil
		width = 0
	}
	if width > s.cfg.Format.Width {
		width = s.cfg.Format.Width
	}
	var w bitio.Writer
	w.ResetTo(dst)
	writeIndexBlock(&w, idx, s.cfg.T)
	w.Align()
	w.WriteBits(uint32(width), 8)
	if width > 0 {
		q := fixedpoint.NewQuantizer(fixedpoint.Format{Width: width, NonFrac: s.cfg.Format.NonFrac})
		rw := w.StartRun(width)
		for _, row := range vals {
			for _, v := range row {
				rw.Add(uint64(q.Bits(v)))
			}
		}
		rw.Flush()
	}
	w.PadTo(s.cfg.TargetBytes)
	return w.Bytes(), nil
}

// Decode implements Decoder. Like AGE, Single's fixed-size contract makes
// any other payload length corruption; reject it up front.
func (s *Single) Decode(payload []byte) (Batch, error) {
	var b Batch
	if err := s.DecodeInto(&b, payload); err != nil {
		return Batch{}, err
	}
	return b, nil
}

// DecodeInto implements IntoDecoder. On error *b's contents are unspecified.
//
//age:hotpath
func (s *Single) DecodeInto(b *Batch, payload []byte) error {
	if len(payload) != s.cfg.TargetBytes {
		return fmt.Errorf("core: single decode: payload %dB, want exactly %dB: %w", len(payload), s.cfg.TargetBytes, ErrPayloadLength)
	}
	var r bitio.Reader
	r.Reset(payload)
	idx, err := readIndexBlockInto(&r, s.cfg.T, b.Indices[:0])
	b.Indices = idx
	b.Values = b.Values[:0]
	if err != nil {
		return err
	}
	r.Align()
	wd, err := r.ReadBits(8)
	if err != nil {
		return fmt.Errorf("core: single decode width: %w", err)
	}
	width := int(wd)
	if width == 0 {
		if len(idx) != 0 {
			return fmt.Errorf("core: single decode: zero width with %d indices", len(idx))
		}
		b.Indices = nil
		return nil
	}
	if width > fixedpoint.MaxWidth {
		return fmt.Errorf("core: single decode: width %d out of range", width)
	}
	dq := fixedpoint.NewDequantizer(fixedpoint.Format{Width: width, NonFrac: s.cfg.Format.NonFrac})
	vals := b.Values
	for range idx {
		vals = appendRow(vals, s.cfg.D)
		row := vals[len(vals)-1]
		for fi := range row {
			bitsv, err := r.ReadBits(width)
			if err != nil {
				b.Values = vals
				return fmt.Errorf("core: single decode values: %w", err)
			}
			row[fi] = dq.Float(bitsv)
		}
	}
	b.Values = vals
	return nil
}

// Unshifted keeps AGE's group machinery for width assignment — six
// even-sized groups with round-robin widths — but fixes every group's
// exponent at the native n0, forgoing dynamic ranges (§5.6).
type Unshifted struct {
	cfg Config
}

// NewUnshifted returns the fixed-exponent grouped variant.
func NewUnshifted(cfg Config) (*Unshifted, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TargetBytes < minAGEBytes {
		return nil, fmt.Errorf("core: Unshifted target %dB below minimum %dB: %w", cfg.TargetBytes, minAGEBytes, ErrTargetTooSmall)
	}
	return &Unshifted{cfg: cfg}, nil
}

// Name implements Encoder.
func (u *Unshifted) Name() string { return "unshifted" }

// PayloadBytes returns the fixed message size M_B.
func (u *Unshifted) PayloadBytes() int { return u.cfg.TargetBytes }

// unshiftedGroups splits k measurements into at most MinGroups even groups.
func (u *Unshifted) unshiftedGroups(k int) []group {
	if k == 0 {
		return nil
	}
	n := u.cfg.MinGroups
	if n > k {
		n = k
	}
	base, rem := k/n, k%n
	groups := make([]group, n)
	for i := range groups {
		c := base
		if i < rem {
			c++
		}
		groups[i] = group{count: c, exponent: u.cfg.Format.NonFrac}
	}
	return groups
}

// unshiftedHeaderBits: 2B count + indices + 1B group count + 3B per group
// (2B run length + 1B width; no exponent field since it is static).
func (u *Unshifted) headerBits(k, g int) int {
	h := indexBlockBits(k, u.cfg.T)
	return h + roundUp8pad(h) + 8 + 24*g
}

// Encode implements Encoder.
func (u *Unshifted) Encode(b Batch) ([]byte, error) { return u.AppendEncode(nil, b) }

// AppendEncode implements AppendEncoder.
//
//age:hotpath
func (u *Unshifted) AppendEncode(dst []byte, b Batch) ([]byte, error) {
	if err := b.Validate(u.cfg.T, u.cfg.D); err != nil {
		return nil, err
	}
	idx, vals := b.Indices, b.Values
	k := len(idx)
	groups := u.unshiftedGroups(k)
	if k > 0 {
		avail := 8*u.cfg.TargetBytes - u.headerBits(k, len(groups))
		base := 0
		if avail > 0 {
			base = avail / (k * u.cfg.D)
		}
		if base < 1 {
			// No room for even one bit per value: drop the batch.
			idx, vals, groups = nil, nil, nil
		} else {
			if base > u.cfg.Format.Width {
				base = u.cfg.Format.Width
			}
			spare := avail
			for i := range groups {
				groups[i].width = base
				spare -= base * groups[i].count * u.cfg.D
			}
			for changed := true; changed && spare > 0; {
				changed = false
				for i := range groups {
					need := groups[i].count * u.cfg.D
					if groups[i].width < u.cfg.Format.Width && spare >= need {
						groups[i].width++
						spare -= need
						changed = true
					}
				}
			}
		}
	}
	var w bitio.Writer
	w.ResetTo(dst)
	writeIndexBlock(&w, idx, u.cfg.T)
	w.Align()
	w.WriteBits(uint32(len(groups)), 8)
	for _, g := range groups {
		w.WriteBits(uint32(g.count), 16)
		w.WriteBits(uint32(g.width), 8)
	}
	row := 0
	for _, g := range groups {
		q := fixedpoint.NewQuantizer(fixedpoint.Format{Width: g.width, NonFrac: u.cfg.Format.NonFrac})
		rw := w.StartRun(g.width)
		for i := 0; i < g.count; i++ {
			for _, v := range vals[row] {
				rw.Add(uint64(q.Bits(v)))
			}
			row++
		}
		rw.Flush()
	}
	w.PadTo(u.cfg.TargetBytes)
	return w.Bytes(), nil
}

// Decode implements Decoder. Wrong-length payloads violate the fixed-size
// contract and are rejected.
func (u *Unshifted) Decode(payload []byte) (Batch, error) {
	var b Batch
	if err := u.DecodeInto(&b, payload); err != nil {
		return Batch{}, err
	}
	return b, nil
}

// DecodeInto implements IntoDecoder. On error *b's contents are unspecified.
//
//age:hotpath
func (u *Unshifted) DecodeInto(b *Batch, payload []byte) error {
	if len(payload) != u.cfg.TargetBytes {
		return fmt.Errorf("core: unshifted decode: payload %dB, want exactly %dB: %w", len(payload), u.cfg.TargetBytes, ErrPayloadLength)
	}
	var r bitio.Reader
	r.Reset(payload)
	idx, err := readIndexBlockInto(&r, u.cfg.T, b.Indices[:0])
	b.Indices = idx
	b.Values = b.Values[:0]
	if err != nil {
		return err
	}
	r.Align()
	gc, err := r.ReadBits(8)
	if err != nil {
		return fmt.Errorf("core: unshifted decode group count: %w", err)
	}
	//age:allow hotpathalloc ablation decoder, outside the zero-alloc pin (alloc_test covers AGE/Standard); pooling here would only complicate the §6.2 comparison
	groups := make([]group, gc)
	total := 0
	for i := range groups {
		c, err1 := r.ReadBits(16)
		wd, err2 := r.ReadBits(8)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("core: unshifted decode group %d", i)
		}
		groups[i] = group{count: int(c), width: int(wd)}
		total += int(c)
	}
	if total != len(idx) {
		return fmt.Errorf("core: unshifted decode: groups cover %d, indices say %d", total, len(idx))
	}
	vals := b.Values
	for _, g := range groups {
		if g.width < 1 || g.width > fixedpoint.MaxWidth {
			b.Values = vals
			return fmt.Errorf("core: unshifted decode: bad width %d", g.width)
		}
		dq := fixedpoint.NewDequantizer(fixedpoint.Format{Width: g.width, NonFrac: u.cfg.Format.NonFrac})
		for i := 0; i < g.count; i++ {
			vals = appendRow(vals, u.cfg.D)
			row := vals[len(vals)-1]
			for fi := range row {
				bitsv, err := r.ReadBits(g.width)
				if err != nil {
					b.Values = vals
					return fmt.Errorf("core: unshifted decode values: %w", err)
				}
				row[fi] = dq.Float(bitsv)
			}
		}
	}
	b.Values = vals
	return nil
}

// Pruned controls the message size with measurement pruning alone (§4.2's
// transformation as a standalone defense): it drops low-score measurements
// until the remainder fits at the full native width. Under tight targets it
// must discard most of the batch, which Table 8 shows costs ~58% extra error.
type Pruned struct {
	cfg     Config
	scratch sync.Pool // *ageScratch, for the shared prune step
}

// NewPruned returns the pruning-only variant.
func NewPruned(cfg Config) (*Pruned, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TargetBytes < minAGEBytes {
		return nil, fmt.Errorf("core: Pruned target %dB below minimum %dB: %w", cfg.TargetBytes, minAGEBytes, ErrTargetTooSmall)
	}
	p := &Pruned{cfg: cfg}
	p.scratch.New = func() any { return new(ageScratch) }
	return p, nil
}

// Name implements Encoder.
func (p *Pruned) Name() string { return "pruned" }

// PayloadBytes returns the fixed message size M_B.
func (p *Pruned) PayloadBytes() int { return p.cfg.TargetBytes }

// maxKeep returns how many measurements fit at the native width, by binary
// search over the piecewise index-block cost.
func (p *Pruned) maxKeep() int {
	fits := func(k int) bool {
		bits := indexBlockBits(k, p.cfg.T) + 7 + p.cfg.Format.Width*k*p.cfg.D
		return bits <= 8*p.cfg.TargetBytes
	}
	lo, hi := 0, p.cfg.T
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Encode implements Encoder. Layout: index block, then full-width values,
// then padding to TargetBytes.
func (p *Pruned) Encode(b Batch) ([]byte, error) { return p.AppendEncode(nil, b) }

// AppendEncode implements AppendEncoder.
//
//age:hotpath
func (p *Pruned) AppendEncode(dst []byte, b Batch) ([]byte, error) {
	if err := b.Validate(p.cfg.T, p.cfg.D); err != nil {
		return nil, err
	}
	sc := p.scratch.Get().(*ageScratch)
	//age:allow hotpathalloc open-coded defer keeps this non-escaping closure off the heap; Pruned is an ablation outside the zero-alloc pin regardless
	defer func() {
		vals := sc.vals[:cap(sc.vals)]
		clear(vals)
		sc.vals = vals[:0]
		p.scratch.Put(sc)
	}()
	idx, vals := sc.prune(b.Indices, b.Values, p.maxKeep())
	var w bitio.Writer
	w.ResetTo(dst)
	writeIndexBlock(&w, idx, p.cfg.T)
	q := fixedpoint.NewQuantizer(p.cfg.Format)
	rw := w.StartRun(p.cfg.Format.Width)
	for _, row := range vals {
		for _, v := range row {
			rw.Add(uint64(q.Bits(v)))
		}
	}
	rw.Flush()
	w.PadTo(p.cfg.TargetBytes)
	return w.Bytes(), nil
}

// Decode implements Decoder. Wrong-length payloads violate the fixed-size
// contract and are rejected.
func (p *Pruned) Decode(payload []byte) (Batch, error) {
	var b Batch
	if err := p.DecodeInto(&b, payload); err != nil {
		return Batch{}, err
	}
	return b, nil
}

// DecodeInto implements IntoDecoder. On error *b's contents are unspecified.
//
//age:hotpath
func (p *Pruned) DecodeInto(b *Batch, payload []byte) error {
	if len(payload) != p.cfg.TargetBytes {
		return fmt.Errorf("core: pruned decode: payload %dB, want exactly %dB: %w", len(payload), p.cfg.TargetBytes, ErrPayloadLength)
	}
	var r bitio.Reader
	r.Reset(payload)
	idx, err := readIndexBlockInto(&r, p.cfg.T, b.Indices[:0])
	b.Indices = idx
	if err != nil {
		return err
	}
	vals := b.Values[:0]
	dq := fixedpoint.NewDequantizer(p.cfg.Format)
	for range idx {
		vals = appendRow(vals, p.cfg.D)
		row := vals[len(vals)-1]
		for fi := range row {
			bitsv, err := r.ReadBits(p.cfg.Format.Width)
			if err != nil {
				b.Values = vals
				return fmt.Errorf("core: pruned decode values: %w", err)
			}
			row[fi] = dq.Float(bitsv)
		}
	}
	b.Values = vals
	return nil
}

// pruneByDistance is the shared §4.2 pruning rule: keep the `keep`
// measurements with the largest distance scores (the last measurement is
// always kept). Hot paths call (*ageScratch).prune directly to reuse the
// working set; this wrapper allocates a fresh one per call.
func pruneByDistance(idx []int, vals [][]float64, keep int) ([]int, [][]float64) {
	var sc ageScratch
	return sc.prune(idx, vals, keep)
}
