package core

import (
	"fmt"
	"sort"

	"repro/internal/bitio"
	"repro/internal/fixedpoint"
)

// AGE implements Adaptive Group Encoding (§4): a lossy encoder that packs any
// batch into exactly TargetBytes. The pipeline is
//
//	prune (§4.2) -> exponent-aware groups (§4.3) -> per-group quantization (§4.4)
//
// Wire layout (byte-aligned blocks; see DESIGN.md §5):
//
//	[2B collected count k'] [k' x ceil(log2 T) bits of indices]
//	[1B group count G']
//	G' x ([2B run length] [1B exponent n_i] [1B width w_i])
//	packed values: group by group, Count(g_i)*d values at w_i bits
//	zero padding to TargetBytes
type AGE struct {
	cfg Config
}

// NewAGE returns an AGE encoder/decoder producing cfg.TargetBytes messages.
func NewAGE(cfg Config) (*AGE, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TargetBytes < minAGEBytes {
		return nil, fmt.Errorf("core: AGE target %dB below minimum %dB", cfg.TargetBytes, minAGEBytes)
	}
	if cfg.MinWidth < 1 || cfg.MinWidth > cfg.Format.Width {
		return nil, fmt.Errorf("core: MinWidth %d out of range [1, %d]", cfg.MinWidth, cfg.Format.Width)
	}
	return &AGE{cfg: cfg}, nil
}

// minAGEBytes is the smallest message that can hold the empty-batch header
// (2-byte count + 1-byte group count).
const minAGEBytes = 3

// Name implements Encoder.
func (a *AGE) Name() string { return "age" }

// PayloadBytes returns the fixed message size M_B.
func (a *AGE) PayloadBytes() int { return a.cfg.TargetBytes }

// group is a run of consecutive measurements sharing an exponent, plus the
// bit width assigned during quantization.
type group struct {
	count    int // measurements in the group
	exponent int // non-fractional bits n_i
	width    int // assigned bits per value w_i
}

// Encode implements Encoder. The result is always exactly TargetBytes long.
func (a *AGE) Encode(b Batch) ([]byte, error) {
	if err := b.Validate(a.cfg.T, a.cfg.D); err != nil {
		return nil, err
	}
	idx, vals := a.prune(b.Indices, b.Values)
	groups := a.formGroups(vals)
	groups = a.assignWidths(groups, len(idx))

	w := bitio.NewWriter(a.cfg.TargetBytes)
	writeIndexBlock(w, idx, a.cfg.T)
	w.Align()
	w.WriteBits(uint32(len(groups)), 8)
	for _, g := range groups {
		w.WriteBits(uint32(g.count), 16)
		w.WriteBits(uint32(g.exponent), 8)
		w.WriteBits(uint32(g.width), 8)
	}
	row := 0
	for _, g := range groups {
		f := fixedpoint.Format{Width: g.width, NonFrac: g.exponent}
		for i := 0; i < g.count; i++ {
			for _, v := range vals[row] {
				w.WriteBits(fixedpoint.FromFloat(v, f).Bits(), g.width)
			}
			row++
		}
	}
	w.PadTo(a.cfg.TargetBytes)
	return w.Bytes(), nil
}

// Decode implements Decoder. AGE's contract is that every message is exactly
// TargetBytes on the wire, so a truncated or padded payload is corruption by
// definition and is rejected before any field is parsed.
func (a *AGE) Decode(payload []byte) (Batch, error) {
	if len(payload) != a.cfg.TargetBytes {
		return Batch{}, fmt.Errorf("core: age decode: payload %dB, want exactly %dB", len(payload), a.cfg.TargetBytes)
	}
	r := bitio.NewReader(payload)
	idx, err := readIndexBlock(r, a.cfg.T)
	if err != nil {
		return Batch{}, err
	}
	r.Align()
	gc, err := r.ReadBits(8)
	if err != nil {
		return Batch{}, fmt.Errorf("core: age decode group count: %w", err)
	}
	groups := make([]group, gc)
	total := 0
	for i := range groups {
		c, err1 := r.ReadBits(16)
		e, err2 := r.ReadBits(8)
		wd, err3 := r.ReadBits(8)
		if err1 != nil || err2 != nil || err3 != nil {
			return Batch{}, fmt.Errorf("core: age decode group %d header", i)
		}
		groups[i] = group{count: int(c), exponent: int(e), width: int(wd)}
		total += int(c)
	}
	if total != len(idx) {
		return Batch{}, fmt.Errorf("core: age decode: groups cover %d measurements, indices say %d", total, len(idx))
	}
	vals := make([][]float64, 0, len(idx))
	for gi, g := range groups {
		if g.width < 1 || g.width > fixedpoint.MaxWidth || g.exponent < 1 {
			return Batch{}, fmt.Errorf("core: age decode: group %d has invalid format (w=%d n=%d)", gi, g.width, g.exponent)
		}
		f := fixedpoint.Format{Width: g.width, NonFrac: g.exponent}
		for i := 0; i < g.count; i++ {
			row := make([]float64, a.cfg.D)
			for fi := range row {
				bitsv, err := r.ReadBits(g.width)
				if err != nil {
					return Batch{}, fmt.Errorf("core: age decode values: %w", err)
				}
				row[fi] = fixedpoint.FromBits(bitsv, f).Float()
			}
			vals = append(vals, row)
		}
	}
	return Batch{Indices: idx, Values: vals}, nil
}

// maxKeep returns the largest number of measurements whose index block and
// values (at MinWidth bits, single group) fit in TargetBytes (§4.2). The
// index block cost is piecewise in k (explicit list vs bitmask), so the
// bound is found by binary search on the monotone fit predicate.
func (a *AGE) maxKeep() int {
	fits := func(k int) bool {
		// Index block + alignment slack + group count + one group
		// header + values at the minimum width.
		bits := indexBlockBits(k, a.cfg.T) + 7 + 8 + 32 + a.cfg.MinWidth*k*a.cfg.D
		return bits <= 8*a.cfg.TargetBytes
	}
	lo, hi := 0, a.cfg.T
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// prune implements measurement pruning (§4.2): when the batch cannot give
// every value at least MinWidth bits, drop the measurements with the
// smallest distance scores
//
//	Dist(x_t) = |x_t - x_{t+1}|_1 + |alpha_t - alpha_{t+1}| / 8.
//
// Scores are computed once (the paper rejects incremental rescoring as not
// worth the MCU overhead). The final measurement has no successor and is
// never pruned, anchoring the sequence end.
func (a *AGE) prune(idx []int, vals [][]float64) ([]int, [][]float64) {
	return pruneByDistance(idx, vals, a.maxKeep())
}

// formGroups implements exponent-aware group formation (§4.3): compute each
// measurement's exponent (the non-fractional bits its largest feature
// needs), run-length encode the exponent sequence, and merge adjacent groups
// until at most G remain, where G is the largest group count whose metadata
// fits beside full-width values — but never below MinGroups (G_0).
func (a *AGE) formGroups(vals [][]float64) []group {
	if len(vals) == 0 {
		return nil
	}
	groups := rleGroups(vals, a.cfg.Format.NonFrac)
	g := a.groupCap(len(vals))
	return mergeGroups(groups, g)
}

// rleGroups produces maximal runs of measurements sharing an exponent. Runs
// are capped at 65535 measurements so the count fits its 2-byte field
// (unreachable for the paper's T <= 1250, but kept for safety).
func rleGroups(vals [][]float64, maxExp int) []group {
	var out []group
	for _, row := range vals {
		e := 1
		for _, v := range row {
			if n := fixedpoint.NonFracBitsFor(v); n > e {
				e = n
			}
		}
		if e > maxExp {
			e = maxExp // defensive: data beyond the native format clamps anyway
		}
		if n := len(out); n > 0 && out[n-1].exponent == e && out[n-1].count < 65535 {
			out[n-1].count++
		} else {
			out = append(out, group{count: 1, exponent: e})
		}
	}
	return out
}

// groupCap returns G for a batch of k measurements: the greatest number of
// 3-byte group headers that fit in the space left after encoding every value
// at the full native width, floored at MinGroups (§4.3).
func (a *AGE) groupCap(k int) int {
	m := (k*a.cfg.D*a.cfg.Format.Width + 7) / 8   // bytes at full width
	fixed := (indexBlockBits(k, a.cfg.T)+7)/8 + 1 // index block + group count
	free := a.cfg.TargetBytes - m - fixed
	g := 0
	if free > 0 {
		g = free / 4 // 4-byte group headers
	}
	if g < a.cfg.MinGroups {
		g = a.cfg.MinGroups
	}
	if g > 255 {
		g = 255
	}
	return g
}

// mergeGroups merges adjacent groups with the lowest initial scores
//
//	Score(g1, g2) = Count(g1) + Count(g2) + 2*|n1 - n2|
//
// until at most g groups remain. The merged group keeps max(n1, n2) so large
// values never lose their integer bits. Scores are computed once from the
// initial grouping, matching the paper's cheap MCU-friendly variant: the
// len-1 adjacent-pair scores are ranked a single time and the cheapest
// boundaries are dissolved in one pass, with no rescoring after merges (ties
// dissolve the leftmost boundary first, keeping the float and integer
// encoders byte-identical).
func mergeGroups(groups []group, g int) []group {
	if g < 1 {
		g = 1
	}
	n := len(groups)
	if n <= g {
		return groups
	}
	type boundary struct{ pos, score int }
	bs := make([]boundary, n-1)
	for i := 0; i+1 < n; i++ {
		bs[i] = boundary{
			pos:   i,
			score: groups[i].count + groups[i+1].count + 2*absInt(groups[i].exponent-groups[i+1].exponent),
		}
	}
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].score != bs[j].score {
			return bs[i].score < bs[j].score
		}
		return bs[i].pos < bs[j].pos
	})
	dissolve := make([]bool, n-1)
	for _, b := range bs[:n-g] {
		dissolve[b.pos] = true
	}
	out := make([]group, 0, g)
	cur := groups[0]
	for i := 1; i < n; i++ {
		if dissolve[i-1] {
			cur.count += groups[i].count
			cur.exponent = maxInt(cur.exponent, groups[i].exponent)
		} else {
			out = append(out, cur)
			cur = groups[i]
		}
	}
	return append(out, cur)
}

// assignWidths implements data quantization (§4.4): choose per-group bit
// widths so the payload is at most TargetBytes while wasting as little space
// as possible. All groups start at the uniform floor width; a round-robin
// pass then grants +1 bit to groups (in order) while spare bits remain,
// functionally mimicking fractional widths.
func (a *AGE) assignWidths(groups []group, k int) []group {
	if len(groups) == 0 {
		return groups
	}
	header := func(g int) int {
		ib := indexBlockBits(k, a.cfg.T)
		return ib + roundUp8pad(ib) + 8 + 32*g
	}
	avail := 8*a.cfg.TargetBytes - header(len(groups))
	totalVals := k * a.cfg.D
	// If the header alone starves the data below MinWidth per value, give
	// back header space by merging further (down to one group the pruning
	// guarantee makes MinWidth feasible).
	for len(groups) > 1 && avail/totalVals < a.cfg.MinWidth {
		groups = mergeGroups(groups, len(groups)-1)
		avail = 8*a.cfg.TargetBytes - header(len(groups))
	}
	base := avail / totalVals
	if base > a.cfg.Format.Width {
		base = a.cfg.Format.Width
	}
	if base < 1 {
		base = 1
	}
	spare := avail
	for i := range groups {
		groups[i].width = base
		spare -= base * groups[i].count * a.cfg.D
	}
	// Round-robin extra bits.
	for changed := true; changed && spare > 0; {
		changed = false
		for i := range groups {
			need := groups[i].count * a.cfg.D
			if groups[i].width < a.cfg.Format.Width && spare >= need {
				groups[i].width++
				spare -= need
				changed = true
			}
		}
	}
	return groups
}

// roundUp8pad returns the bits needed to pad bitCount up to a byte boundary.
func roundUp8pad(bitCount int) int {
	r := bitCount % 8
	if r == 0 {
		return 0
	}
	return 8 - r
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
