package core

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/bitio"
	"repro/internal/fixedpoint"
	"repro/internal/metrics"
)

// AGE implements Adaptive Group Encoding (§4): a lossy encoder that packs any
// batch into exactly TargetBytes. The pipeline is
//
//	prune (§4.2) -> exponent-aware groups (§4.3) -> per-group quantization (§4.4)
//
// Wire layout (byte-aligned blocks; see DESIGN.md §5):
//
//	[2B collected count k'] [k' x ceil(log2 T) bits of indices]
//	[1B group count G']
//	G' x ([2B run length] [1B exponent n_i] [1B width w_i])
//	packed values: group by group, Count(g_i)*d values at w_i bits
//	zero padding to TargetBytes
type AGE struct {
	cfg Config
	// scratch pools the per-encode working set (prune survivors, groups,
	// merge boundaries) so steady-state Encode/Decode stops allocating per
	// batch. A pool rather than a single scratch keeps the encoder safe for
	// concurrent use across sweep workers.
	scratch sync.Pool
	// Optional pipeline counters (InstrumentPipeline). Counters are
	// atomic and nil-safe, so the hot path updates them unconditionally
	// without branching or allocating.
	mGroups *metrics.Counter
	mPruned *metrics.Counter
}

// NewAGE returns an AGE encoder/decoder producing cfg.TargetBytes messages.
func NewAGE(cfg Config) (*AGE, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TargetBytes < minAGEBytes {
		return nil, fmt.Errorf("core: AGE target %dB below minimum %dB: %w", cfg.TargetBytes, minAGEBytes, ErrTargetTooSmall)
	}
	if cfg.MinWidth < 1 || cfg.MinWidth > cfg.Format.Width {
		return nil, fmt.Errorf("core: MinWidth %d out of range [1, %d]", cfg.MinWidth, cfg.Format.Width)
	}
	a := &AGE{cfg: cfg}
	a.scratch.New = func() any { return new(ageScratch) }
	return a, nil
}

// minAGEBytes is the smallest message that can hold the empty-batch header
// (2-byte count + 1-byte group count).
const minAGEBytes = 3

// maxRunLen is the largest measurement count one group header can carry in
// its 16-bit run-length field. rleGroups caps runs here, and mergeGroups
// refuses merges that would exceed it, so no group ever silently truncates
// on the wire.
const maxRunLen = 65535

// maxWireGroups is the largest group count the 1-byte header field can
// carry. Batches that cannot merge below it (only possible past ~16M
// measurements, where every group is pinned at maxRunLen) are rejected.
const maxWireGroups = 255

// Name implements Encoder.
func (a *AGE) Name() string { return "age" }

// InstrumentPipeline attaches optional counters for the §4 pipeline stages:
// groups accumulates the wire group count per encoded message, pruned the
// measurements dropped by §4.2 pruning. Either may be nil. Call before the
// encoder is shared across goroutines.
func (a *AGE) InstrumentPipeline(groups, pruned *metrics.Counter) {
	a.mGroups, a.mPruned = groups, pruned
}

// PayloadBytes returns the fixed message size M_B.
func (a *AGE) PayloadBytes() int { return a.cfg.TargetBytes }

// group is a run of consecutive measurements sharing an exponent, plus the
// bit width assigned during quantization.
type group struct {
	count    int // measurements in the group
	exponent int // non-fractional bits n_i
	width    int // assigned bits per value w_i
}

// boundary scores the gap between adjacent groups for merging.
type boundary struct{ pos, score int }

// ageScratch is the reusable working set of one Encode or Decode call.
type ageScratch struct {
	idx      []int
	vals     [][]float64
	scores   []pruneScore
	keep     []bool
	groups   []group
	bounds   []boundary
	dissolve []bool
	u64      []uint64 // decode-side mantissa staging for ReadRun
}

// release returns the scratch to the pool, dropping references to caller
// data so pooled scratches never pin batch rows against the GC.
func (a *AGE) release(sc *ageScratch) {
	vals := sc.vals[:cap(sc.vals)]
	clear(vals)
	sc.vals = vals[:0]
	a.scratch.Put(sc)
}

// Encode implements Encoder. The result is always exactly TargetBytes long.
func (a *AGE) Encode(b Batch) ([]byte, error) { return a.AppendEncode(nil, b) }

// AppendEncode implements AppendEncoder: it writes the payload into dst's
// storage, allocating only when dst cannot hold TargetBytes.
//
//age:hotpath
func (a *AGE) AppendEncode(dst []byte, b Batch) ([]byte, error) {
	sc := a.scratch.Get().(*ageScratch)
	defer a.release(sc)
	return a.appendEncode(sc, dst, b)
}

// AppendEncodeBatchN implements BatchAppendEncoder: it encodes batches[i]
// into dsts[i]'s storage, growing dsts as needed, sharing one scratch
// checkout across the whole run instead of a pool round-trip per batch. On
// the first failure it returns the successfully encoded prefix alongside the
// error.
//
//age:hotpath
func (a *AGE) AppendEncodeBatchN(dsts [][]byte, batches []Batch) ([][]byte, error) {
	sc := a.scratch.Get().(*ageScratch)
	defer a.release(sc)
	for len(dsts) < len(batches) {
		dsts = append(dsts, nil)
	}
	dsts = dsts[:len(batches)]
	for i, b := range batches {
		out, err := a.appendEncode(sc, dsts[i], b)
		if err != nil {
			return dsts[:i], fmt.Errorf("core: age batch %d: %w", i, err)
		}
		dsts[i] = out
	}
	return dsts, nil
}

// appendEncode is the scratch-threaded encode body shared by AppendEncode
// and AppendEncodeBatchN.
//
//age:hotpath
func (a *AGE) appendEncode(sc *ageScratch, dst []byte, b Batch) ([]byte, error) {
	if err := b.Validate(a.cfg.T, a.cfg.D); err != nil {
		return nil, err
	}
	idx, vals := sc.prune(b.Indices, b.Values, a.maxKeep())
	groups := a.formGroups(sc, vals)
	groups = a.assignWidths(sc, groups, len(idx))
	if len(groups) > maxWireGroups {
		return nil, fmt.Errorf("core: age encode: %d measurements need %d groups, wire format caps at %d",
			len(idx), len(groups), maxWireGroups)
	}
	a.mGroups.Add(int64(len(groups)))
	a.mPruned.Add(int64(len(b.Indices) - len(idx)))
	var w bitio.Writer
	w.ResetTo(dst)
	writeIndexBlock(&w, idx, a.cfg.T)
	w.Align()
	w.WriteBits(uint32(len(groups)), 8)
	for _, g := range groups {
		w.WriteBits(uint32(g.count), 16)
		w.WriteBits(uint32(g.exponent), 8)
		w.WriteBits(uint32(g.width), 8)
	}
	row := 0
	for _, g := range groups {
		// Fused quantize+pack: one precomputed Quantizer per group and a
		// RunWriter accumulating whole 64-bit words, instead of a math.Pow
		// and a bit-by-bit write per value.
		q := fixedpoint.NewQuantizer(fixedpoint.Format{Width: g.width, NonFrac: g.exponent})
		rw := w.StartRun(g.width)
		for i := 0; i < g.count; i++ {
			for _, v := range vals[row] {
				rw.Add(uint64(q.Bits(v)))
			}
			row++
		}
		rw.Flush()
	}
	w.PadTo(a.cfg.TargetBytes)
	return w.Bytes(), nil
}

// Decode implements Decoder. AGE's contract is that every message is exactly
// TargetBytes on the wire, so a truncated or padded payload is corruption by
// definition and is rejected before any field is parsed.
func (a *AGE) Decode(payload []byte) (Batch, error) {
	var b Batch
	if err := a.DecodeInto(&b, payload); err != nil {
		return Batch{}, err
	}
	return b, nil
}

// DecodeInto implements IntoDecoder: it overwrites *b, reusing its index and
// value storage when capacities allow. On error *b's contents are
// unspecified.
//
//age:hotpath
func (a *AGE) DecodeInto(b *Batch, payload []byte) error {
	if len(payload) != a.cfg.TargetBytes {
		return fmt.Errorf("core: age decode: payload %dB, want exactly %dB: %w", len(payload), a.cfg.TargetBytes, ErrPayloadLength)
	}
	var r bitio.Reader
	r.Reset(payload)
	idx, err := readIndexBlockInto(&r, a.cfg.T, b.Indices[:0])
	b.Indices = idx
	if err != nil {
		return err
	}
	r.Align()
	gc, err := r.ReadBits(8)
	if err != nil {
		return fmt.Errorf("core: age decode group count: %w", err)
	}
	sc := a.scratch.Get().(*ageScratch)
	defer a.release(sc)
	groups := slices.Grow(sc.groups[:0], int(gc))[:gc]
	sc.groups = groups
	total := 0
	for i := range groups {
		c, err1 := r.ReadBits(16)
		e, err2 := r.ReadBits(8)
		wd, err3 := r.ReadBits(8)
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("core: age decode group %d header", i)
		}
		groups[i] = group{count: int(c), exponent: int(e), width: int(wd)}
		total += int(c)
	}
	if total != len(idx) {
		return fmt.Errorf("core: age decode: groups cover %d measurements, indices say %d", total, len(idx))
	}
	vals := b.Values[:0]
	for gi, g := range groups {
		// A corrupt payload can carry any width or exponent byte; both must
		// land in fixedpoint's representable range or the constructed
		// Format would be invalid (§4.4 assigns 1..Format.Width and
		// 1..NonFrac only).
		if g.width < 1 || g.width > fixedpoint.MaxWidth ||
			g.exponent < 1 || g.exponent > fixedpoint.MaxWidth {
			b.Values = vals
			return fmt.Errorf("core: age decode: group %d has invalid format (w=%d n=%d)", gi, g.width, g.exponent)
		}
		// Fused unpack+dequantize: pull the whole group's mantissas out in
		// one ReadRun pass, then expand with a precomputed Dequantizer.
		n := g.count * a.cfg.D
		buf := slices.Grow(sc.u64[:0], n)[:n]
		sc.u64 = buf
		if err := r.ReadRun(buf, g.width); err != nil {
			b.Values = vals
			return fmt.Errorf("core: age decode values: %w", err)
		}
		dq := fixedpoint.NewDequantizer(fixedpoint.Format{Width: g.width, NonFrac: g.exponent})
		pos := 0
		for i := 0; i < g.count; i++ {
			vals = appendRow(vals, a.cfg.D)
			row := vals[len(vals)-1]
			for fi := range row {
				row[fi] = dq.Float(uint32(buf[pos]))
				pos++
			}
		}
	}
	b.Values = vals
	return nil
}

// prune is the scratch-free pruning stage (§4.2), kept for tests and callers
// outside the hot path.
func (a *AGE) prune(idx []int, vals [][]float64) ([]int, [][]float64) {
	return pruneByDistance(idx, vals, a.maxKeep())
}

// maxKeep returns the largest number of measurements whose index block and
// values (at MinWidth bits, minimal groups) fit in TargetBytes (§4.2). The
// index block cost is piecewise in k (explicit list vs bitmask), so the
// bound is found by binary search on the monotone fit predicate.
func (a *AGE) maxKeep() int {
	fits := func(k int) bool {
		// Index block + alignment slack + group count + group headers +
		// values at the minimum width. The 16-bit run-length field caps a
		// group at maxRunLen measurements, so a batch beyond that carries
		// ceil(k/maxRunLen) headers even after maximal merging.
		g := 1
		if k > maxRunLen {
			g = (k + maxRunLen - 1) / maxRunLen
		}
		bits := indexBlockBits(k, a.cfg.T) + 7 + 8 + 32*g + a.cfg.MinWidth*k*a.cfg.D
		return bits <= 8*a.cfg.TargetBytes
	}
	lo, hi := 0, a.cfg.T
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// pruneScore pairs a measurement position with its §4.2 distance score.
type pruneScore struct {
	pos  int
	dist float64
}

// prune implements measurement pruning (§4.2) on the scratch: when the batch
// cannot give every value at least MinWidth bits, drop the measurements with
// the smallest distance scores
//
//	Dist(x_t) = |x_t - x_{t+1}|_1 + |alpha_t - alpha_{t+1}| / 8.
//
// Scores are computed once (the paper rejects incremental rescoring as not
// worth the MCU overhead). The final measurement has no successor and is
// never pruned, anchoring the sequence end. When nothing needs dropping the
// inputs are returned unchanged; otherwise survivors are gathered into the
// scratch slices.
func (sc *ageScratch) prune(idx []int, vals [][]float64, keep int) ([]int, [][]float64) {
	k := len(idx)
	if k <= keep {
		return idx, vals
	}
	if keep <= 0 {
		return nil, nil
	}
	scorePrune(sc, idx, vals, keep)
	outIdx := sc.idx[:0]
	outVals := sc.vals[:0]
	for t := 0; t < k; t++ {
		if sc.keep[t] {
			outIdx = append(outIdx, idx[t])
			outVals = append(outVals, vals[t])
		}
	}
	sc.idx, sc.vals = outIdx, outVals
	return outIdx, outVals
}

// scorePrune fills sc.keep with the §4.2 survivor set: the keep measurements
// with the largest distance scores, ties broken toward earlier positions so
// the float and integer (MCU) encoders prune identically.
func scorePrune(sc *ageScratch, idx []int, vals [][]float64, keep int) {
	k := len(idx)
	scores := slices.Grow(sc.scores[:0], k)
	for t := 0; t < k-1; t++ {
		var l1 float64
		for f := range vals[t] {
			l1 += math.Abs(vals[t][f] - vals[t+1][f])
		}
		scores = append(scores, pruneScore{pos: t, dist: l1 + float64(idx[t+1]-idx[t])/8})
	}
	// The last measurement has no successor and always survives.
	scores = append(scores, pruneScore{pos: k - 1, dist: math.Inf(1)})
	sc.scores = scores
	slices.SortFunc(scores, func(a, b pruneScore) int {
		switch {
		case a.dist < b.dist:
			return -1
		case a.dist > b.dist:
			return 1
		default:
			return a.pos - b.pos
		}
	})
	keepMask := slices.Grow(sc.keep[:0], k)[:k]
	sc.keep = keepMask
	for i := range keepMask {
		keepMask[i] = true
	}
	for _, s := range scores[:k-keep] {
		keepMask[s.pos] = false
	}
}

// formGroups implements exponent-aware group formation (§4.3): compute each
// measurement's exponent (the non-fractional bits its largest feature
// needs), run-length encode the exponent sequence, and merge adjacent groups
// until at most G remain, where G is the largest group count whose metadata
// fits beside full-width values — but never below MinGroups (G_0).
func (a *AGE) formGroups(sc *ageScratch, vals [][]float64) []group {
	if len(vals) == 0 {
		return nil
	}
	groups := rleGroupsInto(sc.groups[:0], vals, a.cfg.Format.NonFrac)
	sc.groups = groups
	g := a.groupCap(len(vals))
	return mergeGroupsInto(groups[:0], groups, g, sc)
}

// rleGroups produces maximal runs of measurements sharing an exponent. Runs
// are capped at maxRunLen measurements so the count fits its 2-byte field
// (unreachable for the paper's T <= 1250, but load-bearing for large T).
func rleGroups(vals [][]float64, maxExp int) []group {
	return rleGroupsInto(nil, vals, maxExp)
}

// rleGroupsInto is rleGroups appending into dst.
func rleGroupsInto(dst []group, vals [][]float64, maxExp int) []group {
	out := dst
	for _, row := range vals {
		e := 1
		for _, v := range row {
			if n := fixedpoint.NonFracBitsFor(v); n > e {
				e = n
			}
		}
		if e > maxExp {
			e = maxExp // defensive: data beyond the native format clamps anyway
		}
		if n := len(out); n > 0 && out[n-1].exponent == e && out[n-1].count < maxRunLen {
			out[n-1].count++
		} else {
			out = append(out, group{count: 1, exponent: e})
		}
	}
	return out
}

// groupCap returns G for a batch of k measurements: the greatest number of
// 3-byte group headers that fit in the space left after encoding every value
// at the full native width, floored at MinGroups (§4.3).
func (a *AGE) groupCap(k int) int {
	m := (k*a.cfg.D*a.cfg.Format.Width + 7) / 8   // bytes at full width
	fixed := (indexBlockBits(k, a.cfg.T)+7)/8 + 1 // index block + group count
	free := a.cfg.TargetBytes - m - fixed
	g := 0
	if free > 0 {
		g = free / 4 // 4-byte group headers
	}
	if g < a.cfg.MinGroups {
		g = a.cfg.MinGroups
	}
	if g > maxWireGroups {
		g = maxWireGroups
	}
	return g
}

// mergeGroups merges adjacent groups with the lowest initial scores
//
//	Score(g1, g2) = Count(g1) + Count(g2) + 2*|n1 - n2|
//
// until at most g groups remain. The merged group keeps max(n1, n2) so large
// values never lose their integer bits. Scores are computed once from the
// initial grouping, matching the paper's cheap MCU-friendly variant: the
// len-1 adjacent-pair scores are ranked a single time and the cheapest
// boundaries are dissolved in one pass, with no rescoring after merges (ties
// dissolve the leftmost boundary first, keeping the float and integer
// encoders byte-identical). A boundary whose merge would push the combined
// run past maxRunLen is never dissolved — the 16-bit run-length field cannot
// carry it — so the result can exceed g when a batch is large enough to pin
// groups at the cap.
func mergeGroups(groups []group, g int) []group {
	return mergeGroupsInto(make([]group, 0, len(groups)), groups, g, nil)
}

// mergeGroupsInto is mergeGroups appending into dst. dst may alias
// groups[:0]: output position j is only written after input position j has
// been consumed, so in-place compaction is safe. sc, when non-nil, provides
// reusable boundary scratch.
func mergeGroupsInto(dst, groups []group, g int, sc *ageScratch) []group {
	if g < 1 {
		g = 1
	}
	n := len(groups)
	if n <= g {
		return append(dst, groups...)
	}
	var bs []boundary
	var dissolve []bool
	if sc != nil {
		bs = sc.bounds[:0]
		dissolve = slices.Grow(sc.dissolve[:0], n-1)[:n-1]
	} else {
		bs = make([]boundary, 0, n-1)
		dissolve = make([]bool, n-1)
	}
	for i := range dissolve {
		dissolve[i] = false
	}
	for i := 0; i+1 < n; i++ {
		if groups[i].count+groups[i+1].count > maxRunLen {
			continue // merging would overflow the 16-bit run length
		}
		bs = append(bs, boundary{
			pos:   i,
			score: groups[i].count + groups[i+1].count + 2*absInt(groups[i].exponent-groups[i+1].exponent),
		})
	}
	if sc != nil {
		sc.bounds, sc.dissolve = bs, dissolve
	}
	slices.SortFunc(bs, func(a, b boundary) int {
		if a.score != b.score {
			return a.score - b.score
		}
		return a.pos - b.pos
	})
	want := n - g
	if want > len(bs) {
		want = len(bs)
	}
	for _, b := range bs[:want] {
		dissolve[b.pos] = true
	}
	out := dst
	cur := groups[0]
	for i := 1; i < n; i++ {
		// Re-check the cap against the accumulated run: two individually
		// eligible boundaries can chain into an oversized merge.
		if dissolve[i-1] && cur.count+groups[i].count <= maxRunLen {
			cur.count += groups[i].count
			cur.exponent = maxInt(cur.exponent, groups[i].exponent)
		} else {
			out = append(out, cur)
			cur = groups[i]
		}
	}
	return append(out, cur)
}

// assignWidths implements data quantization (§4.4): choose per-group bit
// widths so the payload is at most TargetBytes while wasting as little space
// as possible. All groups start at the uniform floor width; a round-robin
// pass then grants +1 bit to groups (in order) while spare bits remain,
// functionally mimicking fractional widths.
func (a *AGE) assignWidths(sc *ageScratch, groups []group, k int) []group {
	if len(groups) == 0 {
		return groups
	}
	header := func(g int) int {
		ib := indexBlockBits(k, a.cfg.T)
		return ib + roundUp8pad(ib) + 8 + 32*g
	}
	avail := 8*a.cfg.TargetBytes - header(len(groups))
	totalVals := k * a.cfg.D
	// If the header alone starves the data below MinWidth per value, give
	// back header space by merging further (down to the fewest groups the
	// run-length cap permits; the pruning guarantee makes MinWidth feasible
	// there).
	for len(groups) > 1 && avail/totalVals < a.cfg.MinWidth {
		merged := mergeGroupsInto(groups[:0], groups, len(groups)-1, sc)
		if len(merged) == len(groups) {
			break // every remaining boundary is pinned by the run-length cap
		}
		groups = merged
		avail = 8*a.cfg.TargetBytes - header(len(groups))
	}
	base := avail / totalVals
	if base > a.cfg.Format.Width {
		base = a.cfg.Format.Width
	}
	if base < 1 {
		base = 1
	}
	spare := avail
	for i := range groups {
		groups[i].width = base
		spare -= base * groups[i].count * a.cfg.D
	}
	// Round-robin extra bits.
	for changed := true; changed && spare > 0; {
		changed = false
		for i := range groups {
			need := groups[i].count * a.cfg.D
			if groups[i].width < a.cfg.Format.Width && spare >= need {
				groups[i].width++
				spare -= need
				changed = true
			}
		}
	}
	return groups
}

// roundUp8pad returns the bits needed to pad bitCount up to a byte boundary.
func roundUp8pad(bitCount int) int {
	r := bitCount % 8
	if r == 0 {
		return 0
	}
	return 8 - r
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
