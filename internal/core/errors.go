package core

import "errors"

// Sentinel errors for the failure classes a downstream caller can sensibly
// branch on. Every constructor and decoder in this package wraps one of
// these (via %w) into its descriptive message, so callers test with
// errors.Is while the error text keeps its diagnostic detail. The root
// package re-exports them.
var (
	// ErrPayloadLength marks a decode attempt on a payload whose length
	// violates the encoder's wire contract. For the fixed-size encoders a
	// wrong-length payload is corruption by definition: every valid message
	// is exactly TargetBytes.
	ErrPayloadLength = errors.New("payload length violates the wire format")

	// ErrTargetTooSmall marks a Config whose TargetBytes cannot hold even
	// the encoder's fixed header.
	ErrTargetTooSmall = errors.New("target size too small")

	// ErrUnknownEncoder marks an encoder Kind this package does not
	// implement.
	ErrUnknownEncoder = errors.New("unknown encoder kind")
)
