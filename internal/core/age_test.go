package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixedpoint"
)

func mustAGE(t *testing.T, cfg Config) *AGE {
	t.Helper()
	a, err := NewAGE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAGEFixedSizeProperty(t *testing.T) {
	// THE security property (§5.3): every batch, any collection count,
	// encodes to exactly TargetBytes.
	cfg := testConfig(220)
	a := mustAGE(t, cfg)
	prop := func(seed int64, kseed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kseed)%cfg.T + 1
		payload, err := a.Encode(randomBatch(rng, cfg.T, cfg.D, k, 3.9))
		return err == nil && len(payload) == cfg.TargetBytes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAGEFixedSizeAcrossTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, target := range []int{35, 60, 98, 220, 640, 1000} {
		cfg := testConfig(target)
		a := mustAGE(t, cfg)
		for _, k := range []int{1, 5, 25, 50} {
			payload, err := a.Encode(randomBatch(rng, cfg.T, cfg.D, k, 3.9))
			if err != nil {
				t.Fatalf("target=%d k=%d: %v", target, k, err)
			}
			if len(payload) != target {
				t.Fatalf("target=%d k=%d: got %dB", target, k, len(payload))
			}
		}
	}
}

func TestAGERoundTripGeneral(t *testing.T) {
	// Decode must recover the kept indices exactly and values within the
	// assigned quantization error.
	cfg := testConfig(400)
	a := mustAGE(t, cfg)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		k := rng.Intn(cfg.T) + 1
		b := randomBatch(rng, cfg.T, cfg.D, k, 3.9)
		payload, err := a.Encode(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() > b.Len() {
			t.Fatalf("decoded more measurements (%d) than sent (%d)", got.Len(), b.Len())
		}
		// Every decoded index must be one of the originals, in order.
		pos := map[int]int{}
		for i, idx := range b.Indices {
			pos[idx] = i
		}
		prev := -1
		for i, idx := range got.Indices {
			oi, ok := pos[idx]
			if !ok || idx <= prev {
				t.Fatalf("decoded index %d invalid", idx)
			}
			prev = idx
			for f := range got.Values[i] {
				if math.Abs(got.Values[i][f]-b.Values[oi][f]) > 0.55 {
					// 0.55 > max quantization step for w_min=5
					// bits with 3 integer bits (step 0.5).
					t.Fatalf("trial %d: value error %g too large (idx %d feat %d)",
						trial, math.Abs(got.Values[i][f]-b.Values[oi][f]), idx, f)
				}
			}
		}
	}
}

func TestAGEUnderSamplingNearLossless(t *testing.T) {
	// When the policy under-samples (k well below the target rate), AGE
	// has room for full-width values: error collapses to the native
	// format's quantization step.
	cfg := testConfig(TargetBytesForRate(0.7, 50, 6, 16))
	a := mustAGE(t, cfg)
	rng := rand.New(rand.NewSource(6))
	b := randomBatch(rng, cfg.T, cfg.D, 10, 3.5) // 10 of 50 collected
	payload, err := a.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Fatalf("under-sampled batch pruned: %d of 10 kept", got.Len())
	}
	for i := range got.Values {
		for f := range got.Values[i] {
			if diff := math.Abs(got.Values[i][f] - b.Values[i][f]); diff > cfg.Format.Resolution()/2+1e-9 {
				t.Fatalf("under-sampling error %g exceeds native resolution", diff)
			}
		}
	}
}

func TestAGEOverSamplingPrunes(t *testing.T) {
	// Extreme over-sampling: k=T but the target only affords ~35 bytes
	// (the §4.2 example shape). AGE must keep a pruned subset, not drop
	// everything.
	cfg := testConfig(35)
	a := mustAGE(t, cfg)
	rng := rand.New(rand.NewSource(7))
	b := randomBatch(rng, cfg.T, cfg.D, cfg.T, 3.5)
	payload, err := a.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("AGE dropped all measurements; pruning should keep a subset")
	}
	if got.Len() >= cfg.T {
		t.Fatalf("kept %d of %d; pruning expected", got.Len(), cfg.T)
	}
	if len(payload) != 35 {
		t.Fatalf("payload %dB, want 35", len(payload))
	}
}

func TestAGEEmptyBatch(t *testing.T) {
	cfg := testConfig(100)
	a := mustAGE(t, cfg)
	payload, err := a.Encode(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 100 {
		t.Fatalf("empty batch payload %dB", len(payload))
	}
	got, err := a.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("decoded %d from empty", got.Len())
	}
}

func TestAGEPruneKeepsLastMeasurement(t *testing.T) {
	cfg := testConfig(35)
	a := mustAGE(t, cfg)
	rng := rand.New(rand.NewSource(8))
	b := randomBatch(rng, cfg.T, cfg.D, cfg.T, 3.5)
	idx, _ := a.prune(b.Indices, b.Values)
	if len(idx) == 0 {
		t.Fatal("prune dropped everything")
	}
	if idx[len(idx)-1] != b.Indices[len(b.Indices)-1] {
		t.Errorf("last measurement pruned: kept %v", idx)
	}
}

func TestAGEPruneFavorsFlatRegions(t *testing.T) {
	// Construct a batch with a flat first half and volatile second half:
	// pruning should preferentially remove flat measurements.
	cfg := testConfig(100)
	a := mustAGE(t, cfg)
	k := cfg.T
	idx := make([]int, k)
	vals := make([][]float64, k)
	for i := 0; i < k; i++ {
		idx[i] = i
		row := make([]float64, cfg.D)
		if i >= k/2 {
			for f := range row {
				row[f] = 3.5 * math.Sin(float64(i*(f+3)))
			}
		}
		vals[i] = row
	}
	keptIdx, _ := a.prune(idx, vals)
	if len(keptIdx) >= k {
		t.Skip("no pruning at this target")
	}
	var flat, volatile int
	for _, i := range keptIdx {
		if i < k/2 {
			flat++
		} else {
			volatile++
		}
	}
	if volatile <= flat {
		t.Errorf("pruning kept %d flat vs %d volatile; should favor volatile", flat, volatile)
	}
}

func TestRLEGroups(t *testing.T) {
	vals := [][]float64{
		{0.5}, {0.4}, // exponent 1
		{1.5}, {1.2}, {1.9}, // exponent 2
		{0.1}, // exponent 1
		{3.5}, // exponent 3
	}
	groups := rleGroups(vals, 8)
	want := []group{{count: 2, exponent: 1}, {count: 3, exponent: 2}, {count: 1, exponent: 1}, {count: 1, exponent: 3}}
	if len(groups) != len(want) {
		t.Fatalf("groups = %+v", groups)
	}
	for i := range want {
		if groups[i].count != want[i].count || groups[i].exponent != want[i].exponent {
			t.Fatalf("group %d = %+v, want %+v", i, groups[i], want[i])
		}
	}
}

func TestRLEGroupsClampToFormat(t *testing.T) {
	groups := rleGroups([][]float64{{1e9}}, 3)
	if groups[0].exponent != 3 {
		t.Errorf("exponent %d not clamped to 3", groups[0].exponent)
	}
}

func TestMergeGroupsRespectsCap(t *testing.T) {
	var groups []group
	for i := 0; i < 40; i++ {
		groups = append(groups, group{count: 1 + i%3, exponent: 1 + i%4})
	}
	merged := mergeGroups(append([]group(nil), groups...), 6)
	if len(merged) != 6 {
		t.Fatalf("merged to %d groups, want 6", len(merged))
	}
	// Totals preserved.
	var before, after int
	for _, g := range groups {
		before += g.count
	}
	for _, g := range merged {
		after += g.count
	}
	if before != after {
		t.Errorf("merge lost measurements: %d -> %d", before, after)
	}
}

func TestMergeGroupsTakesMaxExponent(t *testing.T) {
	groups := []group{{count: 1, exponent: 2}, {count: 1, exponent: 5}}
	merged := mergeGroups(groups, 1)
	if len(merged) != 1 || merged[0].exponent != 5 {
		t.Fatalf("merged = %+v, want exponent 5", merged)
	}
}

func TestMergeGroupsPrefersLowScore(t *testing.T) {
	// Score = c1 + c2 + 2|n1-n2|. The middle pair (1+1+0=2) beats the
	// outer pairs (1+1+2*3=8).
	groups := []group{
		{count: 1, exponent: 1},
		{count: 1, exponent: 4},
		{count: 1, exponent: 4},
		{count: 1, exponent: 1},
	}
	merged := mergeGroups(groups, 3)
	if len(merged) != 3 || merged[1].count != 2 || merged[1].exponent != 4 {
		t.Fatalf("merged = %+v; middle pair should merge first", merged)
	}
}

func TestGroupCapExpandsWhenUnderSampling(t *testing.T) {
	cfg := testConfig(640) // full-batch size
	a := mustAGE(t, cfg)
	small := a.groupCap(10) // 10 measurements leave lots of free space
	large := a.groupCap(50) // full batch leaves none
	if small <= large {
		t.Errorf("group cap should expand when under-sampling: k=10 cap %d, k=50 cap %d", small, large)
	}
	if large < a.cfg.MinGroups || large > a.cfg.MinGroups+2 {
		t.Errorf("over-sampling cap = %d, want about G0 = %d", large, a.cfg.MinGroups)
	}
}

func TestAGEWidthsMimicFractionalBits(t *testing.T) {
	// §4.4 example shape: with groups, byte utilization must beat the
	// single-width floor. Use a batch whose values share an exponent.
	cfg := testConfig(220)
	a := mustAGE(t, cfg)
	k := 50
	idx := make([]int, k)
	vals := make([][]float64, k)
	for i := range idx {
		idx[i] = i
		row := make([]float64, cfg.D)
		for f := range row {
			row[f] = 0.5 + 0.1*float64(f%3) // all exponent 1
		}
		vals[i] = row
	}
	sc := new(ageScratch)
	groups := a.formGroups(sc, vals)
	groups = a.assignWidths(sc, groups, k)
	if len(groups) < 2 {
		t.Skip("merging produced one group; fractional mimicry not exercised")
	}
	// Widths must not all be equal (round-robin gave +1 somewhere), or if
	// they are equal they must saturate the native width.
	allSame := true
	for _, g := range groups[1:] {
		if g.width != groups[0].width {
			allSame = false
		}
	}
	if allSame && groups[0].width < cfg.Format.Width {
		t.Errorf("all widths %d with slack available; round-robin failed", groups[0].width)
	}
}

func TestAGEDynamicRangeBeatsStatic(t *testing.T) {
	// §4.3 motivation: data with small values encoded under a tight
	// budget. AGE's per-group exponents must beat a static-exponent
	// (Single) encoder on reconstruction error.
	cfg := Config{T: 50, D: 1, Format: fixedpoint.Format{Width: 7, NonFrac: 5}, TargetBytes: 40}
	a := mustAGE(t, cfg)
	s, err := NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var ageErr, singleErr float64
	for trial := 0; trial < 20; trial++ {
		b := randomBatch(rng, cfg.T, 1, 50, 1.9) // small values: need n=2, static gives n=5
		for _, enc := range []struct {
			encode func(Batch) ([]byte, error)
			decode func([]byte) (Batch, error)
			sum    *float64
		}{
			{a.Encode, a.Decode, &ageErr},
			{s.Encode, s.Decode, &singleErr},
		} {
			payload, err := enc.encode(b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := enc.decode(payload)
			if err != nil {
				t.Fatal(err)
			}
			byIdx := map[int][]float64{}
			for i, ix := range got.Indices {
				byIdx[ix] = got.Values[i]
			}
			for i, ix := range b.Indices {
				if row, ok := byIdx[ix]; ok {
					*enc.sum += math.Abs(row[0] - b.Values[i][0])
				} else {
					*enc.sum += math.Abs(b.Values[i][0]) // dropped: counts as full error
				}
			}
		}
	}
	if ageErr >= singleErr {
		t.Errorf("AGE error %g not below static-exponent error %g", ageErr, singleErr)
	}
}

func TestAGERejectsTinyTarget(t *testing.T) {
	cfg := testConfig(2)
	if _, err := NewAGE(cfg); err == nil {
		t.Error("2-byte target accepted")
	}
}

func TestAGEDecodeRejectsCorruptHeaders(t *testing.T) {
	cfg := testConfig(100)
	a := mustAGE(t, cfg)
	// Groups that claim more measurements than the index count.
	payload := make([]byte, 100)
	payload[1] = 2 // k' = 2
	payload[4] = 3 // group count lives after 2 indices (2B + 12 bits -> byte 4)
	got, err := a.Decode(payload)
	if err == nil && got.Len() != 0 {
		t.Error("corrupt group table accepted")
	}
}

func TestAGELargeT(t *testing.T) {
	// EOG-like shape: T=1250, d=1, 20-bit values.
	cfg := Config{T: 1250, D: 1, Format: fixedpoint.Format{Width: 20, NonFrac: 12}, TargetBytes: 800}
	a, err := NewAGE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	b := randomBatch(rng, cfg.T, 1, 1250, 1300)
	payload, err := a.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 800 {
		t.Fatalf("payload %dB", len(payload))
	}
	got, err := a.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("no measurements survived")
	}
}

func TestAGEQuickRoundTripDecodable(t *testing.T) {
	cfg := testConfig(150)
	a := mustAGE(t, cfg)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(cfg.T) + 1
		b := randomBatch(rng, cfg.T, cfg.D, k, 3.9)
		payload, err := a.Encode(b)
		if err != nil || len(payload) != cfg.TargetBytes {
			return false
		}
		got, err := a.Decode(payload)
		return err == nil && got.Validate(cfg.T, cfg.D) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAGEEncodeActivity(b *testing.B) {
	cfg := testConfig(TargetBytesForRate(0.7, 50, 6, 16))
	a, _ := NewAGE(cfg)
	rng := rand.New(rand.NewSource(1))
	batch := randomBatch(rng, cfg.T, cfg.D, 40, 3.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Encode(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStandardEncodeActivity(b *testing.B) {
	cfg := testConfig(0)
	s, _ := NewStandard(cfg)
	rng := rand.New(rand.NewSource(1))
	batch := randomBatch(rng, cfg.T, cfg.D, 40, 3.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encode(batch); err != nil {
			b.Fatal(err)
		}
	}
}
