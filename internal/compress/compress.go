package compress

import (
	"fmt"

	"repro/internal/bitio"
)

// The codec: measurements are delta-encoded per feature (consecutive sensor
// readings are close, so deltas concentrate near zero), deltas are zigzag
// mapped to unsigned, split into a 4-bit "bucket" (the bit length) coded
// with canonical Huffman plus raw remainder bits — the classic low-power
// scheme of Marcelloni & Vecchio [72] and delta/RLE systems [90].
//
// Wire layout:
//
//	[2B count k] [1B features d]
//	[33 x 6 bits: Huffman code length per bucket]
//	per value (feature-major deltas): [huffman(bucket)] [bucket raw bits]
//	[pad to byte]

// numBuckets is the number of delta magnitude classes: one per possible
// zigzagged bit length (0..32), covering every int32 delta losslessly.
const numBuckets = 33

// zigzag maps signed deltas to unsigned so small magnitudes get small codes.
func zigzag(v int32) uint32 {
	return uint32((v << 1) ^ (v >> 31))
}

func unzigzag(u uint32) int32 {
	return int32(u>>1) ^ -int32(u&1)
}

// bucketOf returns the bit length of u (0 for 0), the Huffman symbol.
func bucketOf(u uint32) int {
	n := 0
	for u > 0 {
		n++
		u >>= 1
	}
	return n
}

// Compress losslessly encodes raw fixed-point measurements (k rows x d
// features). The output size depends on the data — which is precisely the
// leak §7 warns about.
func Compress(raw [][]int32) ([]byte, error) {
	k := len(raw)
	if k == 0 {
		return []byte{0, 0, 0}, nil
	}
	d := len(raw[0])
	if k > 0xFFFF || d > 0xFF {
		return nil, fmt.Errorf("compress: batch %dx%d too large", k, d)
	}
	deltas := make([]uint32, 0, k*d)
	freq := make([]int, numBuckets)
	for f := 0; f < d; f++ {
		prev := int32(0)
		for t := 0; t < k; t++ {
			if len(raw[t]) != d {
				return nil, fmt.Errorf("compress: ragged row %d", t)
			}
			z := zigzag(raw[t][f] - prev)
			prev = raw[t][f]
			deltas = append(deltas, z)
			freq[bucketOf(z)]++
		}
	}
	lengths := buildCodeLengths(freq)
	codes := canonicalCodes(lengths)

	w := bitio.NewWriter(3 + 8 + k*d*2)
	w.WriteUint16(uint16(k))
	w.WriteBits(uint32(d), 8)
	for _, l := range lengths {
		w.WriteBits(uint32(l), 6)
	}
	for _, z := range deltas {
		b := bucketOf(z)
		c := codes[b]
		if c.len == 0 {
			return nil, fmt.Errorf("compress: no code for bucket %d", b)
		}
		w.WriteBits(c.bits, c.len)
		if b > 1 {
			// The bucket implies the top bit; store the b-1 below it.
			w.WriteBits(z&(1<<uint(b-1)-1), b-1)
		}
	}
	w.Align()
	return w.Bytes(), nil
}

// Decompress inverts Compress.
func Decompress(payload []byte) ([][]int32, error) {
	r := bitio.NewReader(payload)
	k16, err := r.ReadUint16()
	if err != nil {
		return nil, fmt.Errorf("compress: header: %w", err)
	}
	k := int(k16)
	d8, err := r.ReadBits(8)
	if err != nil {
		return nil, fmt.Errorf("compress: header: %w", err)
	}
	d := int(d8)
	if k == 0 {
		return nil, nil
	}
	if d == 0 {
		return nil, fmt.Errorf("compress: zero features with %d rows", k)
	}
	lengths := make([]int, numBuckets)
	for i := range lengths {
		l, err := r.ReadBits(6)
		if err != nil {
			return nil, fmt.Errorf("compress: code table: %w", err)
		}
		if int(l) > maxCodeLen {
			return nil, fmt.Errorf("compress: code length %d out of range", l)
		}
		lengths[i] = int(l)
	}
	dec := newDecoder(lengths)
	out := make([][]int32, k)
	for t := range out {
		out[t] = make([]int32, d)
	}
	for f := 0; f < d; f++ {
		prev := int32(0)
		for t := 0; t < k; t++ {
			b, err := dec.read(r)
			if err != nil {
				return nil, err
			}
			var z uint32
			if b > 0 {
				z = 1 << uint(b-1) // the bucket's implicit top bit
				if b > 1 {
					rem, err := r.ReadBits(b - 1)
					if err != nil {
						return nil, fmt.Errorf("compress: remainder: %w", err)
					}
					z |= rem
				}
			}
			prev += unzigzag(z)
			out[t][f] = prev
		}
	}
	return out, nil
}
