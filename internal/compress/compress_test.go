package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/dataset"
	"repro/internal/fixedpoint"
)

func bitioNewWriterForTest() *bitio.Writer         { return bitio.NewWriter(16) }
func bitioNewReaderForTest(b []byte) *bitio.Reader { return bitio.NewReader(b) }

func TestZigzag(t *testing.T) {
	cases := []struct {
		v int32
		u uint32
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}, {2147483647, 4294967294}, {-2147483648, 4294967295}}
	for _, c := range cases {
		if got := zigzag(c.v); got != c.u {
			t.Errorf("zigzag(%d) = %d, want %d", c.v, got, c.u)
		}
		if got := unzigzag(c.u); got != c.v {
			t.Errorf("unzigzag(%d) = %d, want %d", c.u, got, c.v)
		}
	}
}

func TestZigzagRoundTripProperty(t *testing.T) {
	prop := func(v int32) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		u uint32
		b int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {4294967295, 32}}
	for _, c := range cases {
		if got := bucketOf(c.u); got != c.b {
			t.Errorf("bucketOf(%d) = %d, want %d", c.u, got, c.b)
		}
	}
}

func TestHuffmanCanonical(t *testing.T) {
	// Frequencies force a known shape: one hot symbol gets a short code.
	freq := make([]int, numBuckets)
	freq[0] = 1000
	freq[1] = 10
	freq[2] = 10
	lengths := buildCodeLengths(freq)
	if lengths[0] >= lengths[1] {
		t.Errorf("hot symbol length %d not shorter than cold %d", lengths[0], lengths[1])
	}
	codes := canonicalCodes(lengths)
	// Codes must be prefix-free: check pairwise.
	for a := range codes {
		for b := range codes {
			if a == b || codes[a].len == 0 || codes[b].len == 0 {
				continue
			}
			if codes[a].len <= codes[b].len {
				if codes[b].bits>>(uint(codes[b].len-codes[a].len)) == codes[a].bits {
					t.Fatalf("code %d is a prefix of %d", a, b)
				}
			}
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	freq := make([]int, numBuckets)
	freq[5] = 42
	lengths := buildCodeLengths(freq)
	if lengths[5] != 1 {
		t.Errorf("single symbol length = %d, want 1", lengths[5])
	}
}

func TestCompressRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		k := rng.Intn(100) + 1
		d := rng.Intn(5) + 1
		raw := make([][]int32, k)
		for i := range raw {
			raw[i] = make([]int32, d)
			for f := range raw[i] {
				raw[i][f] = int32(rng.Intn(1<<16)) - 1<<15
			}
		}
		payload, err := Compress(raw)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("rows %d, want %d", len(got), k)
		}
		for i := range raw {
			for f := range raw[i] {
				if got[i][f] != raw[i][f] {
					t.Fatalf("trial %d: value [%d][%d] %d != %d", trial, i, f, got[i][f], raw[i][f])
				}
			}
		}
	}
}

func TestCompressExtremeDeltas(t *testing.T) {
	raw := [][]int32{{0}, {2147483647}, {-2147483648}, {0}}
	payload, err := Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if got[i][0] != raw[i][0] {
			t.Fatalf("extreme value %d round-tripped to %d", raw[i][0], got[i][0])
		}
	}
}

func TestCompressEmpty(t *testing.T) {
	payload, err := Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("empty round trip = %v", got)
	}
}

func TestCompressErrors(t *testing.T) {
	if _, err := Compress([][]int32{{1, 2}, {3}}); err == nil {
		t.Error("ragged input accepted")
	}
	if _, err := Decompress([]byte{0}); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := Decompress([]byte{0, 5, 0}); err == nil {
		t.Error("zero features with rows accepted")
	}
}

// TestSmoothDataCompresses: the design premise — adjacent sensor readings
// are close, so delta+Huffman beats raw width on smooth signals.
func TestSmoothDataCompresses(t *testing.T) {
	d := dataset.MustLoad("strawberry", dataset.Options{Seed: 1, MaxSequences: 2})
	seq := d.Sequences[0]
	raw := make([][]int32, len(seq.Values))
	for i, row := range seq.Values {
		raw[i] = make([]int32, len(row))
		for f, v := range row {
			raw[i][f] = fixedpoint.FromFloat(v, d.Meta.Format).Raw
		}
	}
	payload, err := Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	rawBytes := len(raw) * len(raw[0]) * d.Meta.Format.Width / 8
	if len(payload) >= rawBytes {
		t.Errorf("compressed %dB >= raw %dB on smooth data", len(payload), rawBytes)
	}
}

// TestCompressedSizeLeaks is §7's warning in miniature: the same sampling
// count compresses to different sizes for calm vs violent events.
func TestCompressedSizeLeaks(t *testing.T) {
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 2, MaxSequences: 40})
	sizes := map[int][]int{}
	for _, s := range d.Sequences {
		raw := make([][]int32, len(s.Values))
		for i, row := range s.Values {
			raw[i] = make([]int32, len(row))
			for f, v := range row {
				raw[i][f] = fixedpoint.FromFloat(v, d.Meta.Format).Raw
			}
		}
		payload, err := Compress(raw)
		if err != nil {
			t.Fatal(err)
		}
		sizes[s.Label] = append(sizes[s.Label], len(payload))
	}
	mean := func(xs []int) float64 {
		var t float64
		for _, x := range xs {
			t += float64(x)
		}
		return t / float64(len(xs))
	}
	walking, running := mean(sizes[1]), mean(sizes[2])
	if running <= walking*1.1 {
		t.Errorf("running compresses to %.0fB vs walking %.0fB; expected a clear size gap", running, walking)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	raw := make([][]int32, 206)
	for i := range raw {
		raw[i] = []int32{int32(rng.Intn(4096)), int32(rng.Intn(4096)), int32(rng.Intn(4096))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHuffmanDeepTree drives the worst-case skew: Fibonacci-like frequencies
// produce the deepest possible Huffman tree (~n-1 levels); codes must stay
// prefix-free and decodable.
func TestHuffmanDeepTree(t *testing.T) {
	freq := make([]int, numBuckets)
	a, b := 1, 1
	for i := 0; i < numBuckets; i++ {
		freq[i] = a
		a, b = b, a+b
		if a > 1<<40 { // keep ints sane; skew already extreme
			a = 1 << 40
		}
	}
	lengths := buildCodeLengths(freq)
	maxLen := 0
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen <= 15 {
		t.Fatalf("tree depth %d did not exceed 15; skew not extreme enough", maxLen)
	}
	if maxLen > maxCodeLen {
		t.Fatalf("depth %d above bound %d", maxLen, maxCodeLen)
	}
	// Kraft equality for a full binary tree: sum 2^-l == 1.
	var kraft float64
	for _, l := range lengths {
		if l > 0 {
			kraft += 1 / float64(uint64(1)<<uint(l))
		}
	}
	if kraft > 1+1e-12 || kraft < 1-1e-12 {
		t.Fatalf("Kraft sum %g != 1; codes not a full prefix tree", kraft)
	}
	// Every symbol must decode back to itself.
	codes := canonicalCodes(lengths)
	dec := newDecoder(lengths)
	for sym, c := range codes {
		if c.len == 0 {
			continue
		}
		w := bitioNewWriterForTest()
		w.WriteBits(c.bits, c.len)
		w.Align()
		got, err := dec.read(bitioNewReaderForTest(w.Bytes()))
		if err != nil {
			t.Fatalf("symbol %d: %v", sym, err)
		}
		if got != sym {
			t.Fatalf("symbol %d decoded as %d", sym, got)
		}
	}
}
