// Package compress implements the lossless compression pipeline common on
// low-power sensors — delta encoding followed by Huffman coding (the
// related-work systems [72, 90] the paper cites) — to demonstrate §7's
// point: compressed message sizes depend on the plaintext content, so even
// a sensor with a non-adaptive sampling policy leaks event information
// through its (encrypted) message lengths. AGE deliberately rejects this
// approach; it will even expand messages to hold its fixed target size.
package compress

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/bitio"
)

// maxCodeLen bounds Huffman code lengths. A tree over n leaves is at most
// n-1 deep, and we have 33 symbols, so 32 is a true bound — no length
// clamping (which would break the prefix property) can ever trigger.
const maxCodeLen = 32

// huffCode is one symbol's canonical code.
type huffCode struct {
	bits uint32
	len  int
}

// buildCodeLengths computes Huffman code lengths for the symbol frequencies
// using a standard two-queue tree build, then canonicalizes.
func buildCodeLengths(freq []int) []int {
	type node struct {
		weight      int
		symbol      int // -1 for internal
		left, right *node
	}
	var pq nodeHeap
	for sym, f := range freq {
		if f > 0 {
			pq = append(pq, &nodeItem{weight: f, order: sym, payload: sym})
		}
	}
	lengths := make([]int, len(freq))
	switch len(pq) {
	case 0:
		return lengths
	case 1:
		lengths[pq[0].payload.(int)] = 1
		return lengths
	}
	heap.Init(&pq)
	order := len(freq)
	for pq.Len() > 1 {
		a := heap.Pop(&pq).(*nodeItem)
		b := heap.Pop(&pq).(*nodeItem)
		heap.Push(&pq, &nodeItem{
			weight:  a.weight + b.weight,
			order:   order,
			payload: [2]*nodeItem{a, b},
		})
		order++
	}
	root := heap.Pop(&pq).(*nodeItem)
	var walk func(n *nodeItem, depth int)
	walk = func(n *nodeItem, depth int) {
		switch p := n.payload.(type) {
		case int:
			if depth < 1 {
				depth = 1
			}
			lengths[p] = depth
		case [2]*nodeItem:
			walk(p[0], depth+1)
			walk(p[1], depth+1)
		}
	}
	walk(root, 0)
	return lengths
}

// nodeItem / nodeHeap implement the Huffman priority queue with a stable
// tie-break so encoding is deterministic.
type nodeItem struct {
	weight  int
	order   int
	payload interface{} // int symbol or [2]*nodeItem children
}

type nodeHeap []*nodeItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// canonicalCodes assigns canonical Huffman codes from code lengths: codes of
// equal length are consecutive, ordered by symbol, so only the lengths need
// to travel in the header.
func canonicalCodes(lengths []int) []huffCode {
	type sl struct{ sym, l int }
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	codes := make([]huffCode, len(lengths))
	code := uint32(0)
	prevLen := 0
	for _, s := range syms {
		code <<= uint(s.l - prevLen)
		codes[s.sym] = huffCode{bits: code, len: s.l}
		code++
		prevLen = s.l
	}
	return codes
}

// decoder is a canonical Huffman decoder table.
type decoder struct {
	// firstCode[l] is the first canonical code of length l; symbols[l]
	// lists the symbols with that length in canonical order.
	firstCode [maxCodeLen + 1]uint32
	symbols   [maxCodeLen + 1][]int
}

func newDecoder(lengths []int) *decoder {
	d := &decoder{}
	codes := canonicalCodes(lengths)
	for sym, c := range codes {
		if c.len > 0 {
			d.symbols[c.len] = append(d.symbols[c.len], sym)
		}
	}
	// Canonical order within a length is ascending symbol; recompute the
	// first code per length the same way canonicalCodes does.
	code := uint32(0)
	prevLen := 0
	for l := 1; l <= maxCodeLen; l++ {
		if len(d.symbols[l]) == 0 {
			continue
		}
		code <<= uint(l - prevLen)
		d.firstCode[l] = code
		code += uint32(len(d.symbols[l]))
		prevLen = l
	}
	return d
}

// read decodes one symbol from the bit reader.
func (d *decoder) read(r *bitio.Reader) (int, error) {
	code := uint32(0)
	for l := 1; l <= maxCodeLen; l++ {
		b, err := r.ReadBits(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		n := len(d.symbols[l])
		if n == 0 {
			continue
		}
		// 64-bit compare: firstCode+n overflows uint32 at full-width
		// codes (a 32-long code range ending at 0xFFFFFFFF).
		if uint64(code) >= uint64(d.firstCode[l]) && uint64(code) < uint64(d.firstCode[l])+uint64(n) {
			return d.symbols[l][code-d.firstCode[l]], nil
		}
	}
	return 0, fmt.Errorf("compress: invalid Huffman code")
}
