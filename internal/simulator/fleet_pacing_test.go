package simulator

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
)

// countingTap is a minimal FleetPacing.Observer: it counts wire frame
// sightings per label, standing in for the attack package's TimingTap.
type countingTap struct {
	mu      sync.Mutex
	byLabel map[int]int
	total   int
}

func (c *countingTap) observe(sensorID, label int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byLabel == nil {
		c.byLabel = map[int]int{}
	}
	c.byLabel[label]++
	c.total++
}

func pacedFleetConfig(t *testing.T, sensors int, pacing FleetPacing) FleetConfig {
	cfg := fleetConfig(t, EncAGE, sensors)
	cfg.Pacing = pacing
	return cfg
}

func TestFleetPacingDeliveryIdentity(t *testing.T) {
	// The pacer may change only *when* frames move and how much droppable
	// cover rides along: reconstruction error, delivered counts, and the
	// per-label delivered-frame tallies must match the unpaced run exactly,
	// and the wire sizes may differ only by the 1-byte in-payload marker.
	const sensors = 3
	base, err := runBounded(t, pacedFleetConfig(t, sensors, FleetPacing{}))
	if err != nil {
		t.Fatal(err)
	}

	gen := FleetPacing{BaseGap: 200 * time.Microsecond, PerSample: 5 * time.Microsecond}
	cases := []struct {
		name        string
		pacing      FleetPacing
		wantDummies bool
	}{
		{"live", FleetPacing{Mode: ingest.PaceLive, BaseGap: gen.BaseGap, PerSample: gen.PerSample}, false},
		{"constant", FleetPacing{
			Mode: ingest.PaceConstant, Interval: 300 * time.Microsecond,
			BaseGap: gen.BaseGap, PerSample: gen.PerSample,
		}, true},
		{"jitter", FleetPacing{
			Mode: ingest.PaceJitter, Interval: 300 * time.Microsecond, JitterFrac: 0.4,
			BaseGap: gen.BaseGap, PerSample: gen.PerSample,
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tap := &countingTap{}
			tc.pacing.Observer = tap.observe
			res, err := runBounded(t, pacedFleetConfig(t, sensors, tc.pacing))
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != 0 {
				t.Fatalf("%d sensors failed under pacing", res.Failed)
			}
			if res.Messages != base.Messages {
				t.Errorf("Messages = %d, want %d", res.Messages, base.Messages)
			}
			for s := range base.PerSensorMAE {
				if res.PerSensorMAE[s] != base.PerSensorMAE[s] {
					t.Errorf("sensor %d MAE = %v, unpaced run computed %v (delivered data must be identical)",
						s, res.PerSensorMAE[s], base.PerSensorMAE[s])
				}
			}
			for label, want := range base.SizesByLabel {
				got := res.SizesByLabel[label]
				if len(got) != len(want) {
					t.Errorf("label %d delivered %d frames, want %d", label, len(got), len(want))
					continue
				}
				for i := range got {
					if got[i] != want[i]+1 { // the sealed in-payload marker byte
						t.Errorf("label %d frame %d wire size = %d, want %d+1", label, i, got[i], want[i])
						break
					}
				}
			}
			if tc.wantDummies {
				if res.DummyFrames == 0 {
					t.Error("paced run sent no cover traffic")
				}
				if res.AoIMicrosTotal <= 0 || res.MeanAoIMicros() <= 0 {
					t.Errorf("AoI unaccounted: total %d, mean %v", res.AoIMicrosTotal, res.MeanAoIMicros())
				}
				if res.AoIMicrosMax < int64(res.MeanAoIMicros()) {
					t.Errorf("AoI max %d below mean %v", res.AoIMicrosMax, res.MeanAoIMicros())
				}
			} else if res.DummyFrames != 0 {
				t.Errorf("live mode sent %d dummies", res.DummyFrames)
			}
			if res.RealFramesSent != base.Messages {
				t.Errorf("RealFramesSent = %d, want %d", res.RealFramesSent, base.Messages)
			}
			// The tap saw every wire frame: all real ones plus all dummies.
			if want := base.Messages + res.DummyFrames; tap.total != want {
				t.Errorf("tap observed %d frames, want %d (real %d + dummies %d)",
					tap.total, want, base.Messages, res.DummyFrames)
			}
			// Every label delivered in the baseline was also observed.
			for label, want := range base.SizesByLabel {
				if tap.byLabel[label] < len(want) {
					t.Errorf("tap observed %d frames for label %d, want at least %d",
						tap.byLabel[label], label, len(want))
				}
			}
		})
	}
}

func TestFleetPacingOffIsByteIdenticalWithObserver(t *testing.T) {
	// An Observer alone (no pacing mode) must not perturb results: it is
	// observation-only, like the metrics registry.
	const sensors = 2
	base, err := runBounded(t, pacedFleetConfig(t, sensors, FleetPacing{}))
	if err != nil {
		t.Fatal(err)
	}
	tap := &countingTap{}
	res, err := runBounded(t, pacedFleetConfig(t, sensors, FleetPacing{Observer: tap.observe}))
	if err != nil {
		t.Fatal(err)
	}
	for s := range base.PerSensorMAE {
		if res.PerSensorMAE[s] != base.PerSensorMAE[s] {
			t.Errorf("sensor %d MAE diverged with observer attached", s)
		}
	}
	for label, want := range base.SizesByLabel {
		got := res.SizesByLabel[label]
		if len(got) != len(want) {
			t.Fatalf("label %d frame count diverged", label)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("label %d frame %d size diverged with observer attached", label, i)
			}
		}
	}
	if tap.total != base.Messages {
		t.Errorf("tap observed %d frames, want %d", tap.total, base.Messages)
	}
}
