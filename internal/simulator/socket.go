package simulator

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/reconstruct"
	"repro/internal/seccomm"
)

// This file implements the artifact's process topology: the sensor and the
// server run as separate actors connected by a local (encrypted) socket. The
// in-process Run is the fast path for parameter sweeps; RunOverSocket drives
// the identical pipeline through a real TCP loopback connection, which the
// integration tests and examples use.

// Sensor samples sequences, encodes batches, seals them, and writes frames
// to the connection.
type Sensor struct {
	cfg     RunConfig
	enc     core.Encoder
	sealer  seccomm.Sealer
	timeout time.Duration
	// nil-safe instruments (RunConfig.Metrics).
	frames *metrics.Counter
	bytes  *metrics.Counter
}

// Server reads frames, opens and decodes them, and reconstructs sequences.
type Server struct {
	meta    dataset.Meta
	dec     core.Decoder
	opener  seccomm.Sealer
	timeout time.Duration
	frames  *metrics.Counter
	bytes   *metrics.Counter
}

// ServerResult is what the server learns about one received batch.
type ServerResult struct {
	WireBytes int
	Recon     [][]float64
}

// NewSensorServer builds a matched sensor/server pair for a run
// configuration.
func NewSensorServer(cfg RunConfig) (*Sensor, *Server, error) {
	meta := cfg.Dataset.Meta
	coreCfg := core.Config{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format,
		TargetBytes: core.TargetBytesForRate(cfg.Rate, meta.SeqLen, meta.NumFeatures, meta.Format.Width),
	}
	encs, err := buildInstrumentedEncoder(cfg.Encoder, coreCfg, cfg.Cipher, cfg.Metrics)
	if err != nil {
		return nil, nil, err
	}
	sealer, opener, err := sealerPair(cfg.Cipher)
	if err != nil {
		return nil, nil, err
	}
	timeout := cfg.IOTimeout
	if timeout <= 0 {
		timeout = defaultIOTimeout
	}
	reg := cfg.Metrics
	return &Sensor{cfg: cfg, enc: encs.enc, sealer: sealer, timeout: timeout,
			frames: reg.Counter("socket.frames_sent"), bytes: reg.Counter("socket.wire_bytes_sent")},
		&Server{meta: meta, dec: encs.dec, opener: opener, timeout: timeout,
			frames: reg.Counter("socket.frames_received"), bytes: reg.Counter("socket.wire_bytes_received")}, nil
}

// SendSequence samples one sequence with the sensor's policy, encodes and
// seals the batch, and writes it as one frame. It returns the collected
// count and the wire size.
func (s *Sensor) SendSequence(conn net.Conn, seq [][]float64, seed int64) (collected, wireBytes int, err error) {
	idx := s.cfg.Policy.Sample(seq, newSeededRand(seed))
	vals := make([][]float64, len(idx))
	for i, t := range idx {
		vals[i] = seq[t]
	}
	payload, err := s.enc.Encode(core.Batch{Indices: idx, Values: vals})
	if err != nil {
		return 0, 0, fmt.Errorf("sensor: encode: %w", err)
	}
	msg, err := s.sealer.Seal(payload)
	if err != nil {
		return 0, 0, fmt.Errorf("sensor: seal: %w", err)
	}
	if err := seccomm.WriteFrameDeadline(conn, msg, s.timeout); err != nil {
		return 0, 0, fmt.Errorf("sensor: write: %w", err)
	}
	s.frames.Inc()
	s.bytes.Add(int64(len(msg)))
	return len(idx), len(msg), nil
}

// ReceiveSequence reads one frame, opens and decodes it, and reconstructs
// the full sequence.
func (s *Server) ReceiveSequence(conn net.Conn) (*ServerResult, error) {
	msg, err := seccomm.ReadFrameDeadline(conn, s.timeout)
	if err != nil {
		return nil, fmt.Errorf("server: read: %w", err)
	}
	s.frames.Inc()
	s.bytes.Add(int64(len(msg)))
	payload, err := s.opener.Open(msg)
	if err != nil {
		return nil, fmt.Errorf("server: open: %w", err)
	}
	batch, err := s.dec.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("server: decode: %w", err)
	}
	recon, err := reconstruct.Linear(batch.Indices, batch.Values, s.meta.SeqLen, s.meta.NumFeatures)
	if err != nil {
		return nil, fmt.Errorf("server: reconstruct: %w", err)
	}
	return &ServerResult{WireBytes: len(msg), Recon: recon}, nil
}

// SocketResult aggregates a socket-mode run.
type SocketResult struct {
	MAE          float64
	SizesByLabel map[int][]int
}

// RunOverSocket executes the pipeline over a real TCP loopback connection:
// the sensor goroutine streams every sequence; the server (caller goroutine)
// receives, reconstructs, and scores. Energy/budget accounting is the
// in-process Run's job; this path validates the transport stack end to end.
// Every frame carries the RunConfig.IOTimeout read/write deadline, and a
// server-side failure closes the connection and waits for the sensor
// goroutine before returning, so neither side can leak or hang the caller.
func RunOverSocket(cfg RunConfig) (*SocketResult, error) {
	return RunOverSocketContext(context.Background(), cfg)
}

// RunOverSocketContext is RunOverSocket under a caller context, mirroring
// RunFleetContext: cancellation closes the listener and both live
// connections, joins the sensor goroutine, and reports the cancellation as
// the run's error.
func RunOverSocketContext(ctx context.Context, cfg RunConfig) (*SocketResult, error) {
	sensor, server, err := NewSensorServer(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	// Both live connections register here so cancellation and abort can
	// sever them without racing their setup.
	var connMu sync.Mutex
	var conns []net.Conn
	track := func(c net.Conn) {
		connMu.Lock()
		conns = append(conns, c)
		connMu.Unlock()
	}
	sever := func() {
		ln.Close()
		connMu.Lock()
		for _, c := range conns {
			c.Close()
		}
		connMu.Unlock()
	}
	watchDone := make(chan struct{})
	var watchOnce sync.Once
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			sever()
		case <-watchDone:
		}
	}()
	stopWatch := func() {
		watchOnce.Do(func() { close(watchDone) })
		watchWG.Wait()
	}
	defer stopWatch()

	var wg sync.WaitGroup
	var sensorErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			sensorErr = err
			return
		}
		track(conn)
		defer conn.Close()
		for i, seq := range cfg.Dataset.Sequences {
			if _, _, err := sensor.SendSequence(conn, seq.Values, cfg.Seed+int64(i)); err != nil {
				sensorErr = err
				return
			}
		}
	}()
	// abort tears the transport down and joins the sensor goroutine so a
	// server-side failure cannot leak it mid-write. A cancelled context wins
	// the error report: the transport errors are its consequence.
	abort := func(serverErr error) error {
		sever()
		wg.Wait()
		if cause := ctx.Err(); cause != nil {
			return fmt.Errorf("simulator: socket run cancelled: %w", cause)
		}
		if sensorErr != nil {
			return errors.Join(
				fmt.Errorf("simulator: server: %w", serverErr),
				fmt.Errorf("simulator: sensor: %w", sensorErr),
			)
		}
		return fmt.Errorf("simulator: server: %w", serverErr)
	}

	conn, err := ln.Accept()
	if err != nil {
		return nil, abort(err)
	}
	track(conn)
	defer conn.Close()

	res := &SocketResult{SizesByLabel: map[int][]int{}}
	var acc reconstruct.Accumulator
	for _, seq := range cfg.Dataset.Sequences {
		sr, err := server.ReceiveSequence(conn)
		if err != nil {
			return nil, abort(err)
		}
		mae, err := reconstruct.MAE(sr.Recon, seq.Values)
		if err != nil {
			return nil, abort(err)
		}
		acc.Add(mae, 1)
		res.SizesByLabel[seq.Label] = append(res.SizesByLabel[seq.Label], sr.WireBytes)
	}
	wg.Wait()
	if sensorErr != nil {
		if cause := ctx.Err(); cause != nil {
			return nil, fmt.Errorf("simulator: socket run cancelled: %w", cause)
		}
		return nil, fmt.Errorf("simulator: sensor: %w", sensorErr)
	}
	res.MAE = acc.MAE()
	return res, nil
}
