package simulator

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/seccomm"
)

func TestFleetMetricsHealthyRun(t *testing.T) {
	cfg := fleetConfig(t, EncAGE, 4)
	reg := metrics.NewRegistry()
	cfg.Base.Metrics = reg
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	want := int64(res.Messages)
	if got := snap.Counters["fleet.frames_delivered"]; got != want {
		t.Errorf("frames_delivered = %d, want %d", got, want)
	}
	if got := snap.Counters["fleet.frames_sent"]; got != want {
		t.Errorf("frames_sent = %d, want %d", got, want)
	}
	if snap.Counters["fleet.wire_bytes_sent"] == 0 || snap.Counters["fleet.wire_bytes_received"] == 0 {
		t.Error("wire byte counters empty")
	}
	if got := snap.Counters["fleet.dial_attempts"]; got < int64(cfg.Sensors) {
		t.Errorf("dial_attempts = %d, want >= %d", got, cfg.Sensors)
	}
	if got := snap.Gauges["fleet.sensors"]; got != int64(cfg.Sensors) {
		t.Errorf("sensors gauge = %d", got)
	}
	// Per-sensor series must agree with the per-sensor statuses.
	delivered := snap.Series["fleet.sensor.frames_delivered"]
	for _, st := range res.Sensors {
		if got := delivered[strconv.Itoa(st.Sensor)]; got != int64(st.Delivered) {
			t.Errorf("sensor %d series delivered = %d, status says %d", st.Sensor, got, st.Delivered)
		}
	}
	// Codec instrumentation rode along: AGE latency histograms and §4
	// pipeline counters populated by both the sensors and the server.
	if snap.Histograms["core.age.encode_ns"].Count == 0 {
		t.Error("encode latency histogram empty")
	}
	if snap.Histograms["core.age.decode_ns"].Count == 0 {
		t.Error("decode latency histogram empty")
	}
	if snap.Counters["core.age.groups_formed"] == 0 {
		t.Error("AGE group counter empty")
	}
	// A healthy loopback fleet has a quiet fault ledger.
	for _, name := range []string{"fleet.dial_failures", "fleet.read_deadline_hits", "fleet.reconnects", "fleet.unattributed"} {
		if got := snap.Counters[name]; got != 0 {
			t.Errorf("%s = %d on a healthy run", name, got)
		}
	}
	// AGE fixes the wire size, so the frame-size histogram collapses to a
	// single nonzero bucket count with max == min message size.
	fb := snap.Histograms["fleet.frame_bytes"]
	if fb.Count != want || fb.Max == 0 || fb.Sum != fb.Max*want {
		t.Errorf("frame_bytes histogram = %+v, want %d equal-size frames", fb, want)
	}
}

// The fault-schedule accounting test the issue asks for: inject a known
// fault plan and assert the counters report exactly that plan. Runs under
// -race with the rest of the package.
func TestFleetMetricsMatchFaultSchedule(t *testing.T) {
	const stalled, ghost = 0, 1
	cfg := fastFaultConfig(t, 4, &FleetFaults{
		StallAfterFrames: map[int]int{stalled: 1},
		NeverDial:        map[int]bool{ghost: true},
	})
	reg := metrics.NewRegistry()
	cfg.Base.Metrics = reg
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	// The stalled sensor trips the server's read deadline exactly once.
	if got := snap.Counters["fleet.read_deadline_hits"]; got != 1 {
		t.Errorf("read_deadline_hits = %d, want 1", got)
	}
	if got := snap.Series["fleet.sensor.deadline_hits"][strconv.Itoa(stalled)]; got != 1 {
		t.Errorf("stalled sensor deadline series = %d, want 1", got)
	}
	// The ghost never dialed: no dial attempts, no frames, in its series.
	if got := snap.Series["fleet.sensor.dial_attempts"][strconv.Itoa(ghost)]; got != 0 {
		t.Errorf("ghost dial series = %d, want 0", got)
	}
	if got := snap.Series["fleet.sensor.frames_delivered"][strconv.Itoa(ghost)]; got != 0 {
		t.Errorf("ghost delivered series = %d, want 0", got)
	}
	// Nothing in this schedule causes write retries or reconnects.
	if got := snap.Counters["fleet.write_retries"]; got != 0 {
		t.Errorf("write_retries = %d, want 0", got)
	}
	if got := snap.Counters["fleet.reconnects"]; got != 0 {
		t.Errorf("reconnects = %d, want 0", got)
	}
	// Global totals still reconcile with the statuses.
	var delivered int64
	for _, st := range res.Sensors {
		delivered += int64(st.Delivered)
	}
	if got := snap.Counters["fleet.frames_delivered"]; got != delivered {
		t.Errorf("frames_delivered = %d, statuses say %d", got, delivered)
	}
}

// The redial regression test the seccomm satellite asks for: a flaky server
// link forces the sensor through several reconnects; the run must recover
// completely AND every nonce the server observes must be distinct — the
// sensor carries one sealer (monotonic counter) across redials, and the
// instance prefix protects even a re-created sealer.
func TestFleetReconnectResumesWithDistinctNonces(t *testing.T) {
	const victim = 0
	d := dataset.MustLoad("activity", dataset.Options{Seed: 9, MaxSequences: 12})
	cfg := FleetConfig{
		Base: RunConfig{
			Dataset: d, Policy: policy.NewUniform(0.5), Encoder: EncAGE,
			Cipher: seccomm.ChaCha20Stream, Rate: 0.5,
			Model: energy.Default(), Seed: 1,
		},
		Sensors:           3,
		IOTimeout:         500 * time.Millisecond,
		DialTimeout:       500 * time.Millisecond,
		DialAttempts:      2,
		DialBackoff:       10 * time.Millisecond,
		ReconnectAttempts: 10,
		Faults:            &FleetFaults{ServerCloseAfterFrames: map[int]int{victim: 1}},
	}

	var hookMu sync.Mutex
	nonces := map[string]int{} // nonce -> sensor that first used it
	dup := ""
	fleetFrameHook = func(sensorID int, msg []byte) {
		hookMu.Lock()
		defer hookMu.Unlock()
		nonce := string(msg[:12])
		if _, seen := nonces[nonce]; seen && dup == "" {
			dup = nonce
		}
		nonces[nonce] = sensorID
	}
	defer func() { fleetFrameHook = nil }()

	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sensors[victim]
	if !st.OK() {
		t.Errorf("victim did not recover: %+v", st)
	}
	if st.Reconnects < 1 {
		t.Errorf("victim reports %d reconnects, want >= 1 (fault closes its link every frame)", st.Reconnects)
	}
	if res.Messages != 12 {
		t.Errorf("Messages = %d, want all 12 delivered", res.Messages)
	}
	if res.Failed != 0 {
		t.Errorf("Failed = %d after recovery", res.Failed)
	}
	hookMu.Lock()
	defer hookMu.Unlock()
	if dup != "" {
		t.Errorf("nonce %x observed twice across redials", dup)
	}
	if len(nonces) < 12 {
		t.Errorf("observed %d distinct nonces, want >= 12", len(nonces))
	}
}

// Resume is invisible in the delivered data: a fleet that reconnects mid-
// stream must produce the same attacker view and per-sensor MAE as an
// undisturbed run, because the resumed sensor replays its sampling stream.
func TestFleetReconnectMatchesUndisturbedRun(t *testing.T) {
	build := func(faults *FleetFaults) FleetConfig {
		d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 4, MaxSequences: 9})
		return FleetConfig{
			Base: RunConfig{
				Dataset: d, Policy: policy.NewUniform(0.6), Encoder: EncAGE,
				Cipher: seccomm.ChaCha20Stream, Rate: 0.6,
				Model: energy.Default(), Seed: 7,
			},
			Sensors:           3,
			IOTimeout:         500 * time.Millisecond,
			DialBackoff:       10 * time.Millisecond,
			ReconnectAttempts: 10,
			Faults:            faults,
		}
	}
	clean, err := runBounded(t, build(nil))
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := runBounded(t, build(&FleetFaults{ServerCloseAfterFrames: map[int]int{1: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Failed != 0 {
		t.Fatalf("faulty run did not recover: %+v", faulty.Sensors)
	}
	if faulty.Sensors[1].Reconnects < 1 {
		t.Error("fault plan produced no reconnects; test is vacuous")
	}
	if clean.Messages != faulty.Messages {
		t.Errorf("messages: clean %d, faulty %d", clean.Messages, faulty.Messages)
	}
	for s := range clean.PerSensorMAE {
		if clean.PerSensorMAE[s] != faulty.PerSensorMAE[s] {
			t.Errorf("sensor %d MAE differs: clean %g, resumed %g", s, clean.PerSensorMAE[s], faulty.PerSensorMAE[s])
		}
	}
}
