package simulator

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/reconstruct"
	"repro/internal/seccomm"
)

// Fleet simulation: the paper's deployments are networks of sensors —
// FarmBeats fields, ZebraNet herds (§2.1, §3.3) — all reporting to one base
// station over a shared medium. Each sensor holds its own key and encoder;
// the server demultiplexes by a cleartext sensor id, which is realistic
// (radio MACs identify senders) and is what lets the attacker attribute
// messages to sensors, an assumption the threat model makes explicitly
// (§3.1). RunFleet drives every sensor concurrently over its own real TCP
// connection and aggregates the eavesdropper's view across the fleet.
//
// The transport is the ingest package: the base station is an
// ingest.Server (sharded accept loops, bounded queues, typed backpressure,
// a session registry that hands reconnecting sensors their resume index),
// and each sensor is an ingest.Client (dial backoff, per-frame deadlines,
// write retries, redial-and-resume). The fleet's job here reduces to the
// domain halves of that contract: a FrameSource that samples, encodes, and
// seals on the sensor side, and a Handler/Session pair that opens, decodes,
// and reconstructs on the server side. The sensor keeps ONE sealer for its
// whole lifetime, so the nonce counter stays monotonic across redials and a
// resumed stream can never repeat a (key, nonce) pair.
//
// The server is deliberately sized so a healthy fleet never sees
// backpressure (enough workers for every sensor): fleet results must be
// byte-identical to the direct pipeline at a fixed seed, and a shed
// connection would perturb delivery. Overload behavior is exercised by
// cmd/ageload and the ingest package's own tests, not here.

// Transport defaults, applied when the corresponding FleetConfig knob is
// zero. They are deliberately generous: tests that exercise failure paths
// set much tighter values.
const (
	defaultDialTimeout   = 2 * time.Second
	defaultDialAttempts  = 4
	defaultDialBackoff   = 25 * time.Millisecond
	defaultIOTimeout     = 5 * time.Second
	defaultWriteAttempts = 2
)

// FleetConfig drives a multi-sensor run. All sensors share the task shape
// (T, d, format) and encoder kind but hold distinct keys.
type FleetConfig struct {
	// Base carries the shared task parameters (Dataset supplies the
	// metadata and the per-sensor sequence partition). Base.Metrics, when
	// set, receives the fleet's transport and codec instrumentation.
	Base RunConfig
	// Sensors is the fleet size; the Base dataset's sequences are dealt
	// round-robin across sensors.
	Sensors int

	// DialTimeout bounds a single TCP connect attempt (default 2s).
	DialTimeout time.Duration
	// DialAttempts is how many connect attempts a sensor makes before
	// reporting failure (default 4). Attempts are separated by an
	// exponential backoff starting at DialBackoff (default 25ms, doubling).
	DialAttempts int
	DialBackoff  time.Duration
	// IOTimeout is the per-frame read/write deadline on both sides of the
	// link (default 5s). A peer that stalls longer than this fails its own
	// status instead of hanging the run.
	IOTimeout time.Duration
	// WriteAttempts bounds per-frame write retries: a frame write that
	// times out without transmitting is retried up to WriteAttempts times
	// in total (default 2). Non-timeout errors are never retried.
	WriteAttempts int
	// ReconnectAttempts is how many times a sensor may redial and resume
	// after a transport failure mid-stream (default 0: a dropped link fails
	// the sensor, the pre-resume behavior). Injected sensor faults
	// (NeverDial, DieAfterFrames, StallAfterFrames) are never resumed — a
	// dead node stays dead.
	ReconnectAttempts int
	// Timeout, when nonzero, bounds the whole run; on expiry the run is
	// cancelled and RunFleet returns the partial result with an error.
	Timeout time.Duration

	// Faults injects transport failures for resilience testing (nil = none).
	Faults *FleetFaults

	// Pacing configures the sensors' frame-release schedule and the timing
	// side-channel instrumentation. The zero value keeps the legacy batched
	// release (PaceOff), whose fixed-seed results stay byte-identical to the
	// direct pipeline.
	Pacing FleetPacing
}

// FleetPacing models the physical release timing of a duty-cycled sensor
// and selects the defense applied to it. With Mode == PaceLive the sensor
// transmits each frame on its data-driven schedule — the gap before a frame
// is BaseGap + PerSample×k, where k is the number of measurements its
// adaptive policy collected for that batch (energy recovery and collection
// time scale with the work done) — which is exactly the timing side-channel:
// k tracks signal volatility, so gaps classify events even though AGE fixed
// every frame's size. PaceConstant/PaceJitter release one sealed frame per
// (jittered) Interval instead, covering empty slots with sealed dummies the
// server discards after unsealing.
type FleetPacing struct {
	// Mode is the release discipline (default PaceOff: batched, as fast as
	// the link accepts).
	Mode ingest.PaceMode
	// Interval and JitterFrac configure PaceConstant/PaceJitter release.
	Interval   time.Duration
	JitterFrac float64
	// BaseGap and PerSample define the data-driven generation schedule used
	// by PaceLive (enforced on the wire) and by the paced modes (to decide
	// when the next real frame becomes available).
	BaseGap   time.Duration
	PerSample time.Duration
	// Observer, when non-nil, is the passive wire tap: it is called once
	// per frame the server reads off the link — real or dummy, before
	// unsealing, exactly what an eavesdropper sees — with the event label
	// the observation is attributed to (the label of the in-flight real
	// frame; ground truth an attacker has at training time).
	Observer func(sensorID, label int)
}

// active reports whether frames flow through the pacer (and carry the
// in-payload real/dummy marker).
func (p FleetPacing) active() bool { return p.Mode != ingest.PaceOff }

// The pace modes, re-exported so FleetPacing literals don't need an ingest
// import.
const (
	PaceOff      = ingest.PaceOff
	PaceLive     = ingest.PaceLive
	PaceConstant = ingest.PaceConstant
	PaceJitter   = ingest.PaceJitter
)

// withTransportDefaults fills zero-valued transport knobs.
func (cfg FleetConfig) withTransportDefaults() FleetConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = defaultDialAttempts
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = defaultDialBackoff
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.WriteAttempts <= 0 {
		cfg.WriteAttempts = defaultWriteAttempts
	}
	return cfg
}

// FleetFaults injects transport faults by sensor id, modelling the failure
// modes of a lossy deployment: a node that dies mid-stream, a node that
// never comes up, a radio that goes quiet, a base station that drops a link.
type FleetFaults struct {
	// NeverDial marks sensors that never connect.
	NeverDial map[int]bool
	// DieAfterFrames closes the sensor's connection abruptly after it has
	// written the given number of frames (counted across the sensor's
	// lifetime: a dead node does not come back).
	DieAfterFrames map[int]int
	// StallAfterFrames keeps the sensor's connection open but silent after
	// the given number of frames, forcing the server's read deadline to
	// fire. The stall is bounded (a little over two IO timeouts), so the
	// run still terminates.
	StallAfterFrames map[int]int
	// ServerCloseAfterFrames makes the server drop the sensor's connection
	// after processing the given number of frames on it. The count is per
	// connection — a flaky base station link, not a banned sensor — so a
	// sensor with ReconnectAttempts can redial and make progress.
	ServerCloseAfterFrames map[int]int
}

// FleetSensorStatus reports one sensor's outcome, successful or not. A run
// with a dead sensor completes with that sensor's status carrying the error
// while the rest of the fleet delivers normally.
type FleetSensorStatus struct {
	// Sensor is the sensor id.
	Sensor int
	// Assigned is how many sequences the partition gave this sensor.
	Assigned int
	// Delivered is how many frames the server successfully decoded and
	// reconstructed.
	Delivered int
	// DialAttempts is how many TCP connect attempts the sensor made,
	// summed across reconnects.
	DialAttempts int
	// Reconnects is how many times the sensor redialed and resumed after a
	// transport failure.
	Reconnects int
	// SensorErr and ServerErr carry the two sides' failures ("" = none).
	SensorErr string
	ServerErr string
}

// OK reports whether the sensor delivered everything with no errors.
func (st FleetSensorStatus) OK() bool {
	return st.SensorErr == "" && st.ServerErr == "" && st.Delivered == st.Assigned
}

// Err summarizes the status's failures, or "" when OK.
func (st FleetSensorStatus) Err() string {
	switch {
	case st.SensorErr != "" && st.ServerErr != "":
		return fmt.Sprintf("sensor: %s; server: %s", st.SensorErr, st.ServerErr)
	case st.SensorErr != "":
		return "sensor: " + st.SensorErr
	case st.ServerErr != "":
		return "server: " + st.ServerErr
	case st.Delivered != st.Assigned:
		return fmt.Sprintf("delivered %d of %d frames", st.Delivered, st.Assigned)
	}
	return ""
}

// FleetResult aggregates the fleet run.
type FleetResult struct {
	// PerSensorMAE indexes reconstruction error by sensor id (the mean over
	// the frames that actually arrived; 0 when none did).
	PerSensorMAE []float64
	// SizesByLabel pools the eavesdropper's observations across the whole
	// fleet (the attacker sees every flow).
	SizesByLabel map[int][]int
	// Messages counts frames the server demultiplexed.
	Messages int
	// Sensors reports per-sensor delivery status, including failures.
	Sensors []FleetSensorStatus
	// Failed counts sensors whose status is not OK.
	Failed int
	// Unattributed records connection failures that happened before the
	// hello identified a sensor (e.g. a peer that connected and went
	// silent).
	Unattributed []string
	// DummyFrames counts pacer cover frames the fleet sent; the server
	// dropped them after unsealing, so they never appear in Messages.
	DummyFrames int
	// RealFramesSent counts real frames the clients released (the
	// denominator of MeanAoIMicros).
	RealFramesSent int
	// AoIMicrosTotal and AoIMicrosMax account the release schedule's
	// freshness cost: each real frame's age of information (time from
	// data-driven availability to wire release) in microseconds, summed and
	// maxed across the fleet. Zero under PaceOff.
	AoIMicrosTotal int64
	AoIMicrosMax   int64
}

// MeanAoIMicros is the fleet-wide mean age of information per real frame at
// release, in microseconds.
func (r *FleetResult) MeanAoIMicros() float64 {
	if r.RealFramesSent == 0 {
		return 0
	}
	return float64(r.AoIMicrosTotal) / float64(r.RealFramesSent)
}

// fleetMetrics bundles the fleet's resolved instruments. Every field is
// nil-safe: with no registry configured all of them are nil and every update
// is a no-op, so the hot paths carry no conditional instrumentation code.
// Metrics are observation-only — nothing here feeds back into sampling,
// encoding, or scheduling.
type fleetMetrics struct {
	framesSent        *metrics.Counter
	framesDelivered   *metrics.Counter
	wireBytesSent     *metrics.Counter
	wireBytesReceived *metrics.Counter
	dialAttempts      *metrics.Counter
	dialFailures      *metrics.Counter
	writeRetries      *metrics.Counter
	readDeadlineHits  *metrics.Counter
	writeDeadlineHits *metrics.Counter
	reconnects        *metrics.Counter
	unattributed      *metrics.Counter
	dummyFrames       *metrics.Counter
	frameBytes        *metrics.Histogram

	sensorFramesSent      *metrics.Series
	sensorFramesDelivered *metrics.Series
	sensorWireBytes       *metrics.Series
	sensorRetries         *metrics.Series
	sensorDeadlineHits    *metrics.Series
	sensorReconnects      *metrics.Series
	sensorDials           *metrics.Series
}

// newFleetMetrics resolves the fleet instrument family in reg. A nil
// registry yields a fully no-op set.
func newFleetMetrics(reg *metrics.Registry) *fleetMetrics {
	return &fleetMetrics{
		framesSent:        reg.Counter("fleet.frames_sent"),
		framesDelivered:   reg.Counter("fleet.frames_delivered"),
		wireBytesSent:     reg.Counter("fleet.wire_bytes_sent"),
		wireBytesReceived: reg.Counter("fleet.wire_bytes_received"),
		dialAttempts:      reg.Counter("fleet.dial_attempts"),
		dialFailures:      reg.Counter("fleet.dial_failures"),
		writeRetries:      reg.Counter("fleet.write_retries"),
		readDeadlineHits:  reg.Counter("fleet.read_deadline_hits"),
		writeDeadlineHits: reg.Counter("fleet.write_deadline_hits"),
		reconnects:        reg.Counter("fleet.reconnects"),
		unattributed:      reg.Counter("fleet.unattributed"),
		dummyFrames:       reg.Counter("fleet.dummy_frames"),
		frameBytes:        reg.Histogram("fleet.frame_bytes", metrics.SizeBuckets()...),

		sensorFramesSent:      reg.Series("fleet.sensor.frames_sent"),
		sensorFramesDelivered: reg.Series("fleet.sensor.frames_delivered"),
		sensorWireBytes:       reg.Series("fleet.sensor.wire_bytes"),
		sensorRetries:         reg.Series("fleet.sensor.write_retries"),
		sensorDeadlineHits:    reg.Series("fleet.sensor.deadline_hits"),
		sensorReconnects:      reg.Series("fleet.sensor.reconnects"),
		sensorDials:           reg.Series("fleet.sensor.dial_attempts"),
	}
}

// fleetFrameHook, when non-nil, observes every sealed frame the server
// reads, before it is opened. Tests use it to capture wire nonces; it must
// be set before the run starts and not mutated during it.
var fleetFrameHook func(sensorID int, msg []byte)

// RunFleet partitions the configured dataset across n concurrent sensors,
// each streaming encrypted frames over its own TCP loopback connection to an
// ingest.Server, and returns the pooled attacker view plus per-sensor
// status. Individual sensor failures degrade the result (see
// FleetResult.Sensors) rather than aborting the run; RunFleet returns a
// non-nil error only for setup failures, run cancellation, or a fleet in
// which every sensor failed.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	return RunFleetContext(context.Background(), cfg)
}

// RunFleetContext is RunFleet under a caller-supplied context. Cancelling
// the context hard-closes the server (listener and every live connection)
// and aborts every sensor, unblocking all goroutines; the partial result
// gathered so far is returned with the context's error.
func RunFleetContext(ctx context.Context, cfg FleetConfig) (*FleetResult, error) {
	n := cfg.Sensors
	if n < 1 {
		return nil, fmt.Errorf("simulator: fleet needs at least one sensor")
	}
	if cfg.Base.Dataset == nil || len(cfg.Base.Dataset.Sequences) < n {
		return nil, fmt.Errorf("simulator: dataset too small for %d sensors", n)
	}
	cfg = cfg.withTransportDefaults()
	meta := cfg.Base.Dataset.Meta
	coreCfg := core.Config{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format,
		TargetBytes: core.TargetBytesForRate(cfg.Base.Rate, meta.SeqLen, meta.NumFeatures, meta.Format.Width),
	}
	m := newFleetMetrics(cfg.Base.Metrics)
	if reg := cfg.Base.Metrics; reg != nil {
		reg.Gauge("fleet.sensors").Set(int64(n))
	}

	// Partition sequences round-robin.
	parts := make([][]int, n) // sequence indices per sensor
	for i := range cfg.Base.Dataset.Sequences {
		parts[i%n] = append(parts[i%n], i)
	}

	res := &FleetResult{
		PerSensorMAE: make([]float64, n),
		SizesByLabel: map[int][]int{},
		Sensors:      make([]FleetSensorStatus, n),
	}
	for i := range res.Sensors {
		res.Sensors[i].Sensor = i
		res.Sensors[i].Assigned = len(parts[i])
	}
	var mu sync.Mutex // guards res and accs from server/sensor goroutines
	// accs accumulate per-sensor reconstruction error across connections.
	accs := make([]reconstruct.Accumulator, n)

	handler := &fleetHandler{
		cfg: cfg, coreCfg: coreCfg, parts: parts,
		res: res, mu: &mu, accs: accs, m: m,
	}
	// Size the server so a healthy fleet never queues or sheds: enough
	// workers for every sensor plus reconnect transients. Results must be
	// byte-identical to the direct pipeline; backpressure is exercised by
	// cmd/ageload and the ingest tests, not here.
	shards := 4
	if n < shards {
		shards = n
	}
	srv, err := ingest.NewServer(ingest.ServerConfig{
		Handler:         handler,
		Shards:          shards,
		WorkersPerShard: (2*n+shards-1)/shards + 1,
		QueueDepth:      2 * n,
		IOTimeout:       cfg.IOTimeout,
		ClaimWait:       cfg.IOTimeout,
		Metrics:         cfg.Base.Metrics,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	addr := srv.Addr().String()

	var cancel context.CancelFunc
	if cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	// Cancellation (parent context or Timeout expiry) hard-closes the
	// server — listener and every live connection — so no server-side
	// read or write outlives the run. Sensor-side connections are closed
	// by the client's own context watchdog.
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			srv.Close()
		case <-watchDone:
		}
	}()

	// Sensors: one goroutine each, own key and encoder state. A sensor
	// failure lands in its status; it never tears down the rest of the run.
	var sensorWG sync.WaitGroup
	sensorWG.Add(n)
	for s := 0; s < n; s++ {
		go func(sensorID int) {
			defer sensorWG.Done()
			stats, err := runFleetSensor(ctx, sensorID, addr, cfg, coreCfg, parts[sensorID], m)
			mu.Lock()
			res.Sensors[sensorID].DialAttempts = stats.DialAttempts
			res.Sensors[sensorID].Reconnects = stats.Reconnects
			res.DummyFrames += stats.DummyFrames
			res.RealFramesSent += stats.FramesSent
			res.AoIMicrosTotal += stats.AoIMicrosTotal
			if stats.AoIMicrosMax > res.AoIMicrosMax {
				res.AoIMicrosMax = stats.AoIMicrosMax
			}
			if err != nil {
				res.Sensors[sensorID].SensorErr = err.Error()
			}
			mu.Unlock()
		}(s)
	}

	// Shutdown sequence, every step bounded. Sensors finish first (dial
	// attempts and IO deadlines bound them); because the protocol blocks
	// each sensor on its hello ack, a returned sensor means its connection
	// was either fully served or is in deadline-bounded error teardown —
	// which is exactly what Drain waits for. The drain context is a
	// backstop: on expiry Drain escalates to a hard close.
	sensorWG.Wait()
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 2*cfg.IOTimeout+time.Second)
	srv.Drain(drainCtx)
	drainCancel()
	close(watchDone)
	watchWG.Wait()
	err = <-serveErr
	if errors.Is(err, ingest.ErrClosed) {
		err = nil // deliberate shutdown, not a fault
	}
	cause := ctx.Err() // read before our own cancel() below masks it
	cancel()

	// All sessions have closed: fold the per-sensor accumulators into the
	// result without further locking.
	for i := range accs {
		res.PerSensorMAE[i] = accs[i].MAE()
	}

	// Count failures on every path so a partial result returned alongside
	// an error still carries an accurate Failed tally.
	var firstFailure string
	for _, st := range res.Sensors {
		if !st.OK() {
			res.Failed++
			if firstFailure == "" {
				firstFailure = fmt.Sprintf("sensor %d: %s", st.Sensor, st.Err())
			}
		}
	}

	if err != nil {
		return res, fmt.Errorf("simulator: fleet: %w", err)
	}
	if cause != nil {
		return res, fmt.Errorf("simulator: fleet cancelled: %w", cause)
	}
	if res.Failed == n {
		return res, fmt.Errorf("simulator: all %d sensors failed (%s)", n, firstFailure)
	}
	return res, nil
}

// fleetKey derives a per-sensor key (shared out of band in a real system).
func fleetKey(sensorID int, cipher seccomm.CipherKind) []byte {
	n := 32
	if cipher == seccomm.AES128Block {
		n = 16
	}
	key := make([]byte, n)
	for i := range key {
		key[i] = byte(sensorID*31 + i*7 + 5)
	}
	return key
}

// fleetHandler is the base station's application logic behind the ingest
// server: it validates sensor ids, builds the per-sensor decode pipeline,
// and records outcomes in the shared FleetResult.
type fleetHandler struct {
	cfg     FleetConfig
	coreCfg core.Config
	parts   [][]int
	res     *FleetResult
	mu      *sync.Mutex
	accs    []reconstruct.Accumulator
	m       *fleetMetrics
}

func (h *fleetHandler) setServerErr(sensorID int, err error) {
	h.mu.Lock()
	h.res.Sensors[sensorID].ServerErr = err.Error()
	h.mu.Unlock()
}

// Open implements ingest.Handler: it admits known sensors, builds their
// decoder and opener, and clears any failure a previous connection left
// behind — this connection supersedes it.
func (h *fleetHandler) Open(sensorID, delivered int) (ingest.Session, error) {
	if sensorID < 0 || sensorID >= len(h.parts) {
		err := fmt.Errorf("unknown sensor %d", sensorID)
		h.m.unattributed.Inc()
		h.mu.Lock()
		h.res.Unattributed = append(h.res.Unattributed, err.Error())
		h.mu.Unlock()
		return nil, err
	}
	encs, err := buildInstrumentedEncoder(h.cfg.Base.Encoder, h.coreCfg, h.cfg.Base.Cipher, h.cfg.Base.Metrics)
	if err != nil {
		h.setServerErr(sensorID, err)
		return nil, err
	}
	opener, err := seccomm.NewSealer(h.cfg.Base.Cipher, fleetKey(sensorID, h.cfg.Base.Cipher))
	if err != nil {
		h.setServerErr(sensorID, err)
		return nil, err
	}
	h.mu.Lock()
	h.res.Sensors[sensorID].ServerErr = ""
	h.mu.Unlock()
	label := strconv.Itoa(sensorID)
	return &fleetSession{
		h:         h,
		sensorID:  sensorID,
		encs:      encs,
		opener:    opener,
		framesC:   h.m.sensorFramesDelivered.Counter(label),
		bytesC:    h.m.sensorWireBytes.Counter(label),
		deadlineC: h.m.sensorDeadlineHits.Counter(label),
	}, nil
}

// Rejected implements ingest.Handler. Only duplicates reach it: a sensor
// id still claimed by a live connection after the claim wait.
func (h *fleetHandler) Rejected(sensorID int, status ingest.Status) {
	if status == ingest.StatusDuplicate && sensorID >= 0 && sensorID < len(h.res.Sensors) {
		h.mu.Lock()
		h.res.Sensors[sensorID].ServerErr = "duplicate connection for sensor"
		h.mu.Unlock()
	}
}

// Unattributed implements ingest.Handler: a connection that failed before
// its hello identified a sensor.
func (h *fleetHandler) Unattributed(err error) {
	h.m.unattributed.Inc()
	h.mu.Lock()
	h.res.Unattributed = append(h.res.Unattributed, err.Error())
	h.mu.Unlock()
}

// fleetSession decodes and reconstructs one connection's frames. The
// ingest server owns the wire; the session owns open → decode →
// reconstruct → accumulate, plus the server-side fault injection.
type fleetSession struct {
	h          *fleetHandler
	sensorID   int
	encs       encoderSet
	opener     seccomm.Sealer
	framesC    *metrics.Counter
	bytesC     *metrics.Counter
	deadlineC  *metrics.Counter
	connFrames int // frames processed on THIS connection (fault accounting)
}

// Total implements ingest.Session.
func (s *fleetSession) Total() int { return len(s.h.parts[s.sensorID]) }

// Frame implements ingest.Session: open, decode, reconstruct, score, and
// fold frame fi into the shared result.
func (s *fleetSession) Frame(fi int, msg []byte) error {
	h := s.h
	if h.cfg.Faults != nil {
		if k, ok := h.cfg.Faults.ServerCloseAfterFrames[s.sensorID]; ok && s.connFrames >= k {
			return fmt.Errorf("fault injection: server closed link after %d frames", k)
		}
	}
	if fleetFrameHook != nil {
		fleetFrameHook(s.sensorID, msg)
	}
	seq := h.cfg.Base.Dataset.Sequences[h.parts[s.sensorID][fi]]
	// The passive wire tap sees exactly what an eavesdropper sees: every
	// sealed frame, real or dummy, at arrival — before any unsealing. The
	// observation is attributed to the in-flight real frame's event label
	// (ground truth available to the attacker at training time).
	if obs := h.cfg.Pacing.Observer; obs != nil {
		obs(s.sensorID, seq.Label)
	}
	payload, err := s.opener.Open(msg)
	if err != nil {
		return fmt.Errorf("frame %d: %w", fi, err)
	}
	if h.cfg.Pacing.active() {
		data, dummy, err := ingest.Unmark(payload)
		if err != nil {
			return fmt.Errorf("frame %d: %w", fi, err)
		}
		if dummy {
			// Cover traffic: only the key holder can tell. The ingest
			// server discards it without advancing the delivered index.
			return ingest.ErrDummyFrame
		}
		payload = data
	}
	batch, err := s.encs.dec.Decode(payload)
	if err != nil {
		return fmt.Errorf("frame %d: %w", fi, err)
	}
	meta := h.cfg.Base.Dataset.Meta
	recon, err := reconstruct.Linear(batch.Indices, batch.Values, meta.SeqLen, meta.NumFeatures)
	if err != nil {
		return fmt.Errorf("frame %d: %w", fi, err)
	}
	mae, err := reconstruct.MAE(recon, seq.Values)
	if err != nil {
		return fmt.Errorf("frame %d: %w", fi, err)
	}
	s.connFrames++
	h.m.framesDelivered.Inc()
	h.m.wireBytesReceived.Add(int64(len(msg)))
	h.m.frameBytes.Observe(int64(len(msg)))
	s.framesC.Inc()
	s.bytesC.Add(int64(len(msg)))
	h.mu.Lock()
	h.accs[s.sensorID].Add(mae, 1)
	h.res.SizesByLabel[seq.Label] = append(h.res.SizesByLabel[seq.Label], len(msg))
	h.res.Messages++
	h.res.Sensors[s.sensorID].Delivered++
	h.mu.Unlock()
	return nil
}

// Close implements ingest.Session: a failed connection's error lands in
// the sensor's status (a later reconnect supersedes it), and a frame-read
// deadline expiry is counted as the server-side deadline hit it is.
func (s *fleetSession) Close(err error) {
	if err == nil {
		return
	}
	var fe *ingest.FrameError
	if errors.As(err, &fe) && seccomm.IsTimeout(fe.Err) {
		s.h.m.readDeadlineHits.Inc()
		s.deadlineC.Inc()
	}
	s.h.setServerErr(s.sensorID, err)
}

// runFleetSensor streams one sensor's assigned sequences through an
// ingest.Client, honoring the configured fault plan, then folds the
// client's transport stats into the fleet metrics. It returns the client's
// full transport accounting.
func runFleetSensor(ctx context.Context, sensorID int, addr string, cfg FleetConfig, coreCfg core.Config, seqIdx []int, m *fleetMetrics) (ingest.ClientStats, error) {
	if cfg.Faults != nil && cfg.Faults.NeverDial[sensorID] {
		return ingest.ClientStats{}, errors.New("fault injection: sensor never dialed")
	}
	encs, err := buildInstrumentedEncoder(cfg.Base.Encoder, coreCfg, cfg.Base.Cipher, cfg.Base.Metrics)
	if err != nil {
		return ingest.ClientStats{}, err
	}
	// ONE sealer for the sensor's lifetime: the nonce counter advances
	// monotonically across redials, so resumed streams never reuse a
	// (key, nonce) pair (seccomm's per-sealer instance prefix is the
	// structural backstop should a caller ever re-create one). With pacing
	// active, dummy frames consume nonces from the same counter — they are
	// ordinary sealed messages as far as the cipher is concerned.
	sealer, err := seccomm.NewSealer(cfg.Base.Cipher, fleetKey(sensorID, cfg.Base.Cipher))
	if err != nil {
		return ingest.ClientStats{}, err
	}
	src := &fleetFrameSource{cfg: cfg, sensorID: sensorID, seqIdx: seqIdx, encs: encs, sealer: sealer}
	ccfg := ingest.ClientConfig{
		Addr:              addr,
		SensorID:          sensorID,
		DialTimeout:       cfg.DialTimeout,
		DialAttempts:      cfg.DialAttempts,
		DialBackoff:       cfg.DialBackoff,
		IOTimeout:         cfg.IOTimeout,
		WriteAttempts:     cfg.WriteAttempts,
		ReconnectAttempts: cfg.ReconnectAttempts,
	}
	if cfg.Pacing.active() {
		// Pacer decisions (jitter schedule, dial jitter) draw from a seed
		// derived from the run seed, keeping fixed-seed runs deterministic.
		ccfg.Seed = cfg.Base.Seed + int64(sensorID)*2654435761 + 1
		ccfg.Pacer = ingest.PacerConfig{
			Mode:       cfg.Pacing.Mode,
			Interval:   cfg.Pacing.Interval,
			JitterFrac: cfg.Pacing.JitterFrac,
			// A dummy seals a marked filler of the real payload length, so
			// real and cover frames are the same size on the wire.
			Dummy: func() ([]byte, error) {
				return sealer.Seal(ingest.MarkDummy(make([]byte, coreCfg.TargetBytes)))
			},
		}
	}
	client := ingest.NewClient(ccfg)
	stats, err := client.Run(ctx, src)

	// Translate the client's transport accounting into the fleet metric
	// family (the server-side counters are updated live by fleetSession).
	label := strconv.Itoa(sensorID)
	m.framesSent.Add(int64(stats.FramesSent))
	m.wireBytesSent.Add(int64(stats.WireBytesSent))
	m.dialAttempts.Add(int64(stats.DialAttempts))
	m.dialFailures.Add(int64(stats.DialFailures))
	m.writeRetries.Add(int64(stats.WriteRetries))
	m.writeDeadlineHits.Add(int64(stats.WriteDeadlineHits))
	m.reconnects.Add(int64(stats.Reconnects))
	m.sensorFramesSent.Counter(label).Add(int64(stats.FramesSent))
	m.sensorDials.Counter(label).Add(int64(stats.DialAttempts))
	if stats.WriteRetries > 0 {
		m.sensorRetries.Counter(label).Add(int64(stats.WriteRetries))
	}
	if stats.WriteDeadlineHits > 0 {
		m.sensorDeadlineHits.Counter(label).Add(int64(stats.WriteDeadlineHits))
	}
	if stats.Reconnects > 0 {
		m.sensorReconnects.Counter(label).Add(int64(stats.Reconnects))
	}
	if stats.DummyFrames > 0 {
		m.dummyFrames.Add(int64(stats.DummyFrames))
	}
	return stats, err
}

// fleetFrameSource produces one sensor's sealed frames for the ingest
// client: sample under the replayable RNG, encode, seal. Client-side fault
// injection lives here — a die or stall is a property of the sensor, not
// of the transport.
type fleetFrameSource struct {
	cfg      FleetConfig
	sensorID int
	seqIdx   []int
	encs     encoderSet
	sealer   seccomm.Sealer
	rng      *rand.Rand
	next     int
	lastGap  time.Duration
}

// Total implements ingest.FrameSource.
func (s *fleetFrameSource) Total() int { return len(s.seqIdx) }

// Seek implements ingest.FrameSource: replay the sampling stream up to the
// resume point so the remaining sequences are sampled exactly as an
// uninterrupted run would sample them — resume is invisible in the
// delivered data.
func (s *fleetFrameSource) Seek(resume int) error {
	s.rng = newSeededRand(s.cfg.Base.Seed + int64(s.sensorID))
	for _, si := range s.seqIdx[:resume] {
		s.cfg.Base.Policy.Sample(s.cfg.Base.Dataset.Sequences[si].Values, s.rng)
	}
	s.next = resume
	return nil
}

// Next implements ingest.FrameSource.
func (s *fleetFrameSource) Next(ctx context.Context) ([]byte, error) {
	fi := s.next
	if s.cfg.Faults != nil {
		if k, ok := s.cfg.Faults.DieAfterFrames[s.sensorID]; ok && fi >= k {
			return nil, ingest.Terminal(fmt.Errorf("fault injection: died after %d frames", k))
		}
		if k, ok := s.cfg.Faults.StallAfterFrames[s.sensorID]; ok && fi >= k {
			stallSensor(ctx, s.cfg.IOTimeout)
			return nil, ingest.Terminal(fmt.Errorf("fault injection: stalled after %d frames", k))
		}
	}
	seq := s.cfg.Base.Dataset.Sequences[s.seqIdx[fi]]
	idx := s.cfg.Base.Policy.Sample(seq.Values, s.rng)
	vals := make([][]float64, len(idx))
	for i, t := range idx {
		vals[i] = seq.Values[t]
	}
	// The data-driven generation schedule: a batch of k collected samples
	// keeps the node busy (collecting, recovering energy) for BaseGap +
	// PerSample×k before the frame can leave. This is the quantity that
	// leaks: k tracks the event, and PaceLive puts it on the wire.
	s.lastGap = s.cfg.Pacing.BaseGap + time.Duration(len(idx))*s.cfg.Pacing.PerSample
	payload, err := s.encs.enc.Encode(core.Batch{Indices: idx, Values: vals})
	if err != nil {
		return nil, ingest.Terminal(err)
	}
	if s.cfg.Pacing.active() {
		// The real/dummy marker travels inside the sealed envelope; the
		// server-side session strips it after unsealing.
		payload = ingest.MarkReal(payload)
	}
	msg, err := s.sealer.Seal(payload)
	if err != nil {
		return nil, ingest.Terminal(err)
	}
	s.next++
	return msg, nil
}

// LastGap implements ingest.TimedSource: the generation delay of the frame
// the latest Next call produced.
func (s *fleetFrameSource) LastGap() time.Duration { return s.lastGap }

// stallSensor holds the connection open and silent long enough for the
// server's read deadline to fire, then returns so the run can finish.
func stallSensor(ctx context.Context, ioTimeout time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(2*ioTimeout + 50*time.Millisecond):
	}
}
