package simulator

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/reconstruct"
	"repro/internal/seccomm"
)

// Fleet simulation: the paper's deployments are networks of sensors —
// FarmBeats fields, ZebraNet herds (§2.1, §3.3) — all reporting to one base
// station over a shared medium. Each sensor holds its own key and encoder;
// the server demultiplexes by a cleartext sensor id, which is realistic
// (radio MACs identify senders) and is what lets the attacker attribute
// messages to sensors, an assumption the threat model makes explicitly
// (§3.1). RunFleet drives every sensor concurrently over one real TCP
// connection per sensor and aggregates the eavesdropper's view across the
// fleet.
//
// The links those deployments run over are lossy and intermittent, so the
// transport is built to degrade instead of hang: every read and write
// carries a deadline, sensors dial with bounded exponential backoff and
// retry timed-out frame writes, the whole run is driven by a
// context.Context whose cancellation closes the listener and every live
// connection, and a sensor that dies mid-stream (or never shows up) is
// reported in its FleetSensorStatus while the rest of the fleet completes.

// Transport defaults, applied when the corresponding FleetConfig knob is
// zero. They are deliberately generous: tests that exercise failure paths
// set much tighter values.
const (
	defaultDialTimeout   = 2 * time.Second
	defaultDialAttempts  = 4
	defaultDialBackoff   = 25 * time.Millisecond
	defaultIOTimeout     = 5 * time.Second
	defaultWriteAttempts = 2
)

// FleetConfig drives a multi-sensor run. All sensors share the task shape
// (T, d, format) and encoder kind but hold distinct keys.
type FleetConfig struct {
	// Base carries the shared task parameters (Dataset supplies the
	// metadata and the per-sensor sequence partition).
	Base RunConfig
	// Sensors is the fleet size; the Base dataset's sequences are dealt
	// round-robin across sensors.
	Sensors int

	// DialTimeout bounds a single TCP connect attempt (default 2s).
	DialTimeout time.Duration
	// DialAttempts is how many connect attempts a sensor makes before
	// reporting failure (default 4). Attempts are separated by an
	// exponential backoff starting at DialBackoff (default 25ms, doubling).
	DialAttempts int
	DialBackoff  time.Duration
	// IOTimeout is the per-frame read/write deadline on both sides of the
	// link (default 5s). A peer that stalls longer than this fails its own
	// status instead of hanging the run.
	IOTimeout time.Duration
	// WriteAttempts bounds per-frame write retries: a frame write that
	// times out without transmitting is retried up to WriteAttempts times
	// in total (default 2). Non-timeout errors are never retried.
	WriteAttempts int
	// Timeout, when nonzero, bounds the whole run; on expiry the run is
	// cancelled and RunFleet returns the partial result with an error.
	Timeout time.Duration

	// Faults injects transport failures for resilience testing (nil = none).
	Faults *FleetFaults
}

// withTransportDefaults fills zero-valued transport knobs.
func (cfg FleetConfig) withTransportDefaults() FleetConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = defaultDialAttempts
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = defaultDialBackoff
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.WriteAttempts <= 0 {
		cfg.WriteAttempts = defaultWriteAttempts
	}
	return cfg
}

// FleetFaults injects transport faults by sensor id, modelling the failure
// modes of a lossy deployment: a node that dies mid-stream, a node that
// never comes up, a radio that goes quiet, a base station that drops a link.
type FleetFaults struct {
	// NeverDial marks sensors that never connect.
	NeverDial map[int]bool
	// DieAfterFrames closes the sensor's connection abruptly after it has
	// written the given number of frames.
	DieAfterFrames map[int]int
	// StallAfterFrames keeps the sensor's connection open but silent after
	// the given number of frames, forcing the server's read deadline to
	// fire. The stall is bounded (a little over two IO timeouts), so the
	// run still terminates.
	StallAfterFrames map[int]int
	// ServerCloseAfterFrames makes the server drop the sensor's connection
	// after processing the given number of frames.
	ServerCloseAfterFrames map[int]int
}

// FleetSensorStatus reports one sensor's outcome, successful or not. A run
// with a dead sensor completes with that sensor's status carrying the error
// while the rest of the fleet delivers normally.
type FleetSensorStatus struct {
	// Sensor is the sensor id.
	Sensor int
	// Assigned is how many sequences the partition gave this sensor.
	Assigned int
	// Delivered is how many frames the server successfully decoded and
	// reconstructed.
	Delivered int
	// DialAttempts is how many TCP connect attempts the sensor made.
	DialAttempts int
	// SensorErr and ServerErr carry the two sides' failures ("" = none).
	SensorErr string
	ServerErr string
}

// OK reports whether the sensor delivered everything with no errors.
func (st FleetSensorStatus) OK() bool {
	return st.SensorErr == "" && st.ServerErr == "" && st.Delivered == st.Assigned
}

// Err summarizes the status's failures, or "" when OK.
func (st FleetSensorStatus) Err() string {
	switch {
	case st.SensorErr != "" && st.ServerErr != "":
		return fmt.Sprintf("sensor: %s; server: %s", st.SensorErr, st.ServerErr)
	case st.SensorErr != "":
		return "sensor: " + st.SensorErr
	case st.ServerErr != "":
		return "server: " + st.ServerErr
	case st.Delivered != st.Assigned:
		return fmt.Sprintf("delivered %d of %d frames", st.Delivered, st.Assigned)
	}
	return ""
}

// FleetResult aggregates the fleet run.
type FleetResult struct {
	// PerSensorMAE indexes reconstruction error by sensor id (the mean over
	// the frames that actually arrived; 0 when none did).
	PerSensorMAE []float64
	// SizesByLabel pools the eavesdropper's observations across the whole
	// fleet (the attacker sees every flow).
	SizesByLabel map[int][]int
	// Messages counts frames the server demultiplexed.
	Messages int
	// Sensors reports per-sensor delivery status, including failures.
	Sensors []FleetSensorStatus
	// Failed counts sensors whose status is not OK.
	Failed int
	// Unattributed records connection failures that happened before the
	// hello identified a sensor (e.g. a peer that connected and went
	// silent).
	Unattributed []string
}

// connRegistry tracks live connections so run cancellation can unblock
// every in-flight read and write by closing them.
type connRegistry struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newConnRegistry() *connRegistry {
	return &connRegistry{conns: map[net.Conn]struct{}{}}
}

// add registers a connection; if the registry is already closed (the run is
// shutting down) the connection is closed immediately.
func (r *connRegistry) add(c net.Conn) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.Close()
		return
	}
	r.conns[c] = struct{}{}
	r.mu.Unlock()
}

func (r *connRegistry) remove(c net.Conn) {
	r.mu.Lock()
	delete(r.conns, c)
	r.mu.Unlock()
}

func (r *connRegistry) closeAll() {
	r.mu.Lock()
	r.closed = true
	for c := range r.conns {
		c.Close()
	}
	r.conns = map[net.Conn]struct{}{}
	r.mu.Unlock()
}

// RunFleet partitions the configured dataset across n concurrent sensors,
// each streaming encrypted frames over its own TCP loopback connection to a
// context-driven server, and returns the pooled attacker view plus
// per-sensor status. Individual sensor failures degrade the result (see
// FleetResult.Sensors) rather than aborting the run; RunFleet returns a
// non-nil error only for setup failures, run cancellation, or a fleet in
// which every sensor failed.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	return RunFleetContext(context.Background(), cfg)
}

// RunFleetContext is RunFleet under a caller-supplied context. Cancelling
// the context closes the listener and every live connection, unblocking all
// goroutines; the partial result gathered so far is returned with the
// context's error.
func RunFleetContext(ctx context.Context, cfg FleetConfig) (*FleetResult, error) {
	n := cfg.Sensors
	if n < 1 {
		return nil, fmt.Errorf("simulator: fleet needs at least one sensor")
	}
	if cfg.Base.Dataset == nil || len(cfg.Base.Dataset.Sequences) < n {
		return nil, fmt.Errorf("simulator: dataset too small for %d sensors", n)
	}
	cfg = cfg.withTransportDefaults()
	meta := cfg.Base.Dataset.Meta
	coreCfg := core.Config{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format,
		TargetBytes: core.TargetBytesForRate(cfg.Base.Rate, meta.SeqLen, meta.NumFeatures, meta.Format.Width),
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	var cancel context.CancelFunc
	if cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	// Partition sequences round-robin.
	parts := make([][]int, n) // sequence indices per sensor
	for i := range cfg.Base.Dataset.Sequences {
		parts[i%n] = append(parts[i%n], i)
	}

	res := &FleetResult{
		PerSensorMAE: make([]float64, n),
		SizesByLabel: map[int][]int{},
		Sensors:      make([]FleetSensorStatus, n),
	}
	for i := range res.Sensors {
		res.Sensors[i].Sensor = i
		res.Sensors[i].Assigned = len(parts[i])
	}
	var mu sync.Mutex // guards res and claimed from server/sensor goroutines
	claimed := make([]bool, n)

	reg := newConnRegistry()
	// Cancellation (parent context, Timeout expiry, or a fatal accept
	// error) closes the listener and every live connection, so no read,
	// write, accept, or backoff sleep outlives the run.
	go func() {
		<-ctx.Done()
		ln.Close()
		reg.closeAll()
	}()

	var fatalMu sync.Mutex
	var fatalErr error
	setFatal := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
		cancel()
	}

	// Server: one accept loop; each accepted connection gets a handler that
	// reads the hello under a deadline, demultiplexes, and serves frames.
	// established counts successful sensor dials and accepted counts
	// server-side accepts: the shutdown sequence below uses them to drain
	// the accept queue before closing the listener, so handlerWG.Add can
	// never race handlerWG.Wait.
	var established, accepted atomic.Int64
	var acceptWG, handlerWG, sensorWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
					return // clean shutdown
				}
				setFatal(fmt.Errorf("fleet server: accept: %w", err))
				return
			}
			reg.add(conn)
			accepted.Add(1)
			handlerWG.Add(1)
			go func() {
				defer handlerWG.Done()
				defer func() {
					conn.Close()
					reg.remove(conn)
				}()
				serveFleetConn(conn, cfg, coreCfg, parts, res, &mu, claimed)
			}()
		}
	}()

	// Sensors: one goroutine each, own key and encoder state. A sensor
	// failure lands in its status; it never tears down the rest of the run.
	sensorWG.Add(n)
	for s := 0; s < n; s++ {
		go func(sensorID int) {
			defer sensorWG.Done()
			dials, err := runFleetSensor(ctx, sensorID, ln.Addr().String(), cfg, coreCfg, parts[sensorID], reg, &established)
			mu.Lock()
			res.Sensors[sensorID].DialAttempts = dials
			if err != nil {
				res.Sensors[sensorID].SensorErr = err.Error()
			}
			mu.Unlock()
		}(s)
	}

	// Shutdown sequence, every step bounded. (1) Sensors finish (dial
	// attempts and IO deadlines bound them). (2) Drain the accept queue: a
	// sensor can complete all its writes before the server accepts the
	// connection, so wait — briefly — until every established connection
	// has been accepted before closing the listener. (3) Close the
	// listener and join the accept loop, after which no handler can be
	// added. (4) Join the handlers (per-frame read deadlines bound them).
	sensorWG.Wait()
	drainDeadline := time.Now().Add(cfg.IOTimeout)
	for accepted.Load() < established.Load() && time.Now().Before(drainDeadline) && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	ln.Close()
	acceptWG.Wait()
	handlerWG.Wait()
	cause := ctx.Err() // read before our own cancel() below masks it
	cancel()

	// Count failures on every path so a partial result returned alongside
	// an error still carries an accurate Failed tally.
	var firstFailure string
	for _, st := range res.Sensors {
		if !st.OK() {
			res.Failed++
			if firstFailure == "" {
				firstFailure = fmt.Sprintf("sensor %d: %s", st.Sensor, st.Err())
			}
		}
	}

	fatalMu.Lock()
	err = fatalErr
	fatalMu.Unlock()
	if err != nil {
		return res, fmt.Errorf("simulator: fleet: %w", err)
	}
	if cause != nil {
		return res, fmt.Errorf("simulator: fleet cancelled: %w", cause)
	}
	if res.Failed == n {
		return res, fmt.Errorf("simulator: all %d sensors failed (%s)", n, firstFailure)
	}
	return res, nil
}

// fleetKey derives a per-sensor key (shared out of band in a real system).
func fleetKey(sensorID int, cipher seccomm.CipherKind) []byte {
	n := 32
	if cipher == seccomm.AES128Block {
		n = 16
	}
	key := make([]byte, n)
	for i := range key {
		key[i] = byte(sensorID*31 + i*7 + 5)
	}
	return key
}

// dialWithBackoff connects to addr, retrying with exponential backoff up to
// cfg.DialAttempts times. It returns the connection and the number of
// attempts made.
func dialWithBackoff(ctx context.Context, addr string, cfg FleetConfig) (net.Conn, int, error) {
	backoff := cfg.DialBackoff
	var lastErr error
	for attempt := 1; attempt <= cfg.DialAttempts; attempt++ {
		d := net.Dialer{Timeout: cfg.DialTimeout}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, attempt, nil
		}
		lastErr = err
		if ctx.Err() != nil || attempt == cfg.DialAttempts {
			return nil, attempt, fmt.Errorf("dial (attempt %d/%d): %w", attempt, cfg.DialAttempts, lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, attempt, fmt.Errorf("dial cancelled after attempt %d: %w", attempt, ctx.Err())
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	return nil, cfg.DialAttempts, fmt.Errorf("dial: %w", lastErr)
}

// writeFrameRetry writes one frame with the per-frame deadline, retrying a
// timed-out write up to cfg.WriteAttempts times in total. WriteFrame sends
// header and body in one Write, so a timeout that transmitted nothing is
// safe to retry; any other error aborts immediately.
func writeFrameRetry(ctx context.Context, conn net.Conn, msg []byte, cfg FleetConfig) error {
	var err error
	for attempt := 1; attempt <= cfg.WriteAttempts; attempt++ {
		err = seccomm.WriteFrameDeadline(conn, msg, cfg.IOTimeout)
		if err == nil {
			return nil
		}
		var ne net.Error
		if ctx.Err() != nil || !errors.As(err, &ne) || !ne.Timeout() {
			return err
		}
	}
	return fmt.Errorf("write after %d attempts: %w", cfg.WriteAttempts, err)
}

// runFleetSensor streams one sensor's assigned sequences, honoring the
// configured fault plan. It returns the number of dial attempts made.
func runFleetSensor(ctx context.Context, sensorID int, addr string, cfg FleetConfig, coreCfg core.Config, seqIdx []int, reg *connRegistry, established *atomic.Int64) (int, error) {
	if cfg.Faults != nil && cfg.Faults.NeverDial[sensorID] {
		return 0, errors.New("fault injection: sensor never dialed")
	}
	conn, dials, err := dialWithBackoff(ctx, addr, cfg)
	if err != nil {
		return dials, err
	}
	established.Add(1)
	reg.add(conn)
	defer func() {
		conn.Close()
		reg.remove(conn)
	}()
	// Identify: 2-byte sensor id (cleartext, like a MAC address), under the
	// same write deadline as every frame.
	var hello [2]byte
	binary.BigEndian.PutUint16(hello[:], uint16(sensorID))
	if err := writeFullDeadline(conn, hello[:], cfg.IOTimeout); err != nil {
		return dials, fmt.Errorf("hello: %w", err)
	}
	encs, err := buildEncoder(cfg.Base.Encoder, coreCfg, cfg.Base.Cipher)
	if err != nil {
		return dials, err
	}
	sealer, err := seccomm.NewSealer(cfg.Base.Cipher, fleetKey(sensorID, cfg.Base.Cipher))
	if err != nil {
		return dials, err
	}
	rng := newSeededRand(cfg.Base.Seed + int64(sensorID))
	for fi, si := range seqIdx {
		if cfg.Faults != nil {
			if k, ok := cfg.Faults.DieAfterFrames[sensorID]; ok && fi >= k {
				return dials, fmt.Errorf("fault injection: died after %d frames", k)
			}
			if k, ok := cfg.Faults.StallAfterFrames[sensorID]; ok && fi >= k {
				stallSensor(ctx, cfg.IOTimeout)
				return dials, fmt.Errorf("fault injection: stalled after %d frames", k)
			}
		}
		seq := cfg.Base.Dataset.Sequences[si]
		idx := cfg.Base.Policy.Sample(seq.Values, rng)
		vals := make([][]float64, len(idx))
		for i, t := range idx {
			vals[i] = seq.Values[t]
		}
		payload, err := encs.enc.Encode(core.Batch{Indices: idx, Values: vals})
		if err != nil {
			return dials, err
		}
		msg, err := sealer.Seal(payload)
		if err != nil {
			return dials, err
		}
		if err := writeFrameRetry(ctx, conn, msg, cfg); err != nil {
			return dials, err
		}
	}
	return dials, nil
}

// stallSensor holds the connection open and silent long enough for the
// server's read deadline to fire, then returns so the run can finish.
func stallSensor(ctx context.Context, ioTimeout time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(2*ioTimeout + 50*time.Millisecond):
	}
}

// writeFullDeadline writes buf to conn under a write deadline (the raw
// cleartext hello; frames use seccomm.WriteFrameDeadline).
func writeFullDeadline(conn net.Conn, buf []byte, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(buf)
	return err
}

// serveFleetConn handles one accepted connection: hello under a deadline,
// sensor id claim, then the per-sensor frame loop. Failures land in the
// sensor's status (or in Unattributed when no hello arrived).
func serveFleetConn(conn net.Conn, cfg FleetConfig, coreCfg core.Config, parts [][]int, res *FleetResult, mu *sync.Mutex, claimed []bool) {
	var hello [2]byte
	if err := seccomm.ReadFullDeadline(conn, hello[:], cfg.IOTimeout); err != nil {
		mu.Lock()
		res.Unattributed = append(res.Unattributed, fmt.Sprintf("hello: %v", err))
		mu.Unlock()
		return
	}
	sensorID := int(binary.BigEndian.Uint16(hello[:]))
	if sensorID < 0 || sensorID >= len(parts) {
		mu.Lock()
		res.Unattributed = append(res.Unattributed, fmt.Sprintf("unknown sensor %d", sensorID))
		mu.Unlock()
		return
	}
	mu.Lock()
	if claimed[sensorID] {
		res.Sensors[sensorID].ServerErr = "duplicate connection for sensor"
		mu.Unlock()
		return
	}
	claimed[sensorID] = true
	mu.Unlock()

	setServerErr := func(err error) {
		mu.Lock()
		res.Sensors[sensorID].ServerErr = err.Error()
		mu.Unlock()
	}
	encs, err := buildEncoder(cfg.Base.Encoder, coreCfg, cfg.Base.Cipher)
	if err != nil {
		setServerErr(err)
		return
	}
	opener, err := seccomm.NewSealer(cfg.Base.Cipher, fleetKey(sensorID, cfg.Base.Cipher))
	if err != nil {
		setServerErr(err)
		return
	}
	meta := cfg.Base.Dataset.Meta
	var acc reconstruct.Accumulator
	finish := func() {
		mu.Lock()
		res.PerSensorMAE[sensorID] = acc.MAE()
		mu.Unlock()
	}
	defer finish()
	for fi, si := range parts[sensorID] {
		if cfg.Faults != nil {
			if k, ok := cfg.Faults.ServerCloseAfterFrames[sensorID]; ok && fi >= k {
				setServerErr(fmt.Errorf("fault injection: server closed link after %d frames", k))
				return
			}
		}
		seq := cfg.Base.Dataset.Sequences[si]
		msg, err := seccomm.ReadFrameDeadline(conn, cfg.IOTimeout)
		if err != nil {
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		payload, err := opener.Open(msg)
		if err != nil {
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		batch, err := encs.dec.Decode(payload)
		if err != nil {
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		recon, err := reconstruct.Linear(batch.Indices, batch.Values, meta.SeqLen, meta.NumFeatures)
		if err != nil {
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		mae, err := reconstruct.MAE(recon, seq.Values)
		if err != nil {
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		acc.Add(mae, 1)
		mu.Lock()
		res.SizesByLabel[seq.Label] = append(res.SizesByLabel[seq.Label], len(msg))
		res.Messages++
		res.Sensors[sensorID].Delivered++
		mu.Unlock()
	}
}
