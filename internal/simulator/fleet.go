package simulator

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/reconstruct"
	"repro/internal/seccomm"
)

// Fleet simulation: the paper's deployments are networks of sensors —
// FarmBeats fields, ZebraNet herds (§2.1, §3.3) — all reporting to one base
// station over a shared medium. Each sensor holds its own key and encoder;
// the server demultiplexes by a cleartext sensor id, which is realistic
// (radio MACs identify senders) and is what lets the attacker attribute
// messages to sensors, an assumption the threat model makes explicitly
// (§3.1). RunFleet drives every sensor concurrently over one real TCP
// connection per sensor and aggregates the eavesdropper's view across the
// fleet.

// FleetConfig drives a multi-sensor run. All sensors share the task shape
// (T, d, format) and encoder kind but hold distinct keys.
type FleetConfig struct {
	// Base carries the shared task parameters (Dataset supplies the
	// metadata and the per-sensor sequence partition).
	Base RunConfig
	// Sensors is the fleet size; the Base dataset's sequences are dealt
	// round-robin across sensors.
	Sensors int
}

// FleetResult aggregates the fleet run.
type FleetResult struct {
	// PerSensorMAE indexes reconstruction error by sensor id.
	PerSensorMAE []float64
	// SizesByLabel pools the eavesdropper's observations across the whole
	// fleet (the attacker sees every flow).
	SizesByLabel map[int][]int
	// Messages counts frames the server demultiplexed.
	Messages int
}

// RunFleet partitions the configured dataset across n concurrent sensors,
// each streaming encrypted frames over its own TCP loopback connection to a
// single server goroutine pool, and returns the pooled attacker view plus
// per-sensor error.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	n := cfg.Sensors
	if n < 1 {
		return nil, fmt.Errorf("simulator: fleet needs at least one sensor")
	}
	if cfg.Base.Dataset == nil || len(cfg.Base.Dataset.Sequences) < n {
		return nil, fmt.Errorf("simulator: dataset too small for %d sensors", n)
	}
	meta := cfg.Base.Dataset.Meta
	coreCfg := core.Config{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format,
		TargetBytes: core.TargetBytesForRate(cfg.Base.Rate, meta.SeqLen, meta.NumFeatures, meta.Format.Width),
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	res := &FleetResult{
		PerSensorMAE: make([]float64, n),
		SizesByLabel: map[int][]int{},
	}
	var mu sync.Mutex // guards res aggregation from server goroutines

	// Partition sequences round-robin.
	parts := make([][]int, n) // sequence indices per sensor
	for i := range cfg.Base.Dataset.Sequences {
		parts[i%n] = append(parts[i%n], i)
	}

	var serverWG, sensorWG sync.WaitGroup
	errs := make(chan error, 2*n)

	// Server: accept one connection per sensor; each handler decodes,
	// reconstructs, and aggregates.
	serverWG.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer serverWG.Done()
			conn, err := ln.Accept()
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if err := serveFleetSensor(conn, cfg, coreCfg, parts, res, &mu); err != nil {
				errs <- err
			}
		}()
	}

	// Sensors: one goroutine each, own key and encoder state.
	sensorWG.Add(n)
	for s := 0; s < n; s++ {
		go func(sensorID int) {
			defer sensorWG.Done()
			if err := runFleetSensor(sensorID, ln.Addr().String(), cfg, coreCfg, parts[sensorID]); err != nil {
				errs <- err
			}
		}(s)
	}

	sensorWG.Wait()
	serverWG.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// fleetKey derives a per-sensor key (shared out of band in a real system).
func fleetKey(sensorID int, cipher seccomm.CipherKind) []byte {
	n := 32
	if cipher == seccomm.AES128Block {
		n = 16
	}
	key := make([]byte, n)
	for i := range key {
		key[i] = byte(sensorID*31 + i*7 + 5)
	}
	return key
}

// runFleetSensor streams one sensor's assigned sequences.
func runFleetSensor(sensorID int, addr string, cfg FleetConfig, coreCfg core.Config, seqIdx []int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Identify: 2-byte sensor id (cleartext, like a MAC address).
	var hello [2]byte
	binary.BigEndian.PutUint16(hello[:], uint16(sensorID))
	if _, err := conn.Write(hello[:]); err != nil {
		return err
	}
	encs, err := buildEncoder(cfg.Base.Encoder, coreCfg, cfg.Base.Cipher)
	if err != nil {
		return err
	}
	sealer, err := seccomm.NewSealer(cfg.Base.Cipher, fleetKey(sensorID, cfg.Base.Cipher))
	if err != nil {
		return err
	}
	rng := newSeededRand(cfg.Base.Seed + int64(sensorID))
	for _, si := range seqIdx {
		seq := cfg.Base.Dataset.Sequences[si]
		idx := cfg.Base.Policy.Sample(seq.Values, rng)
		vals := make([][]float64, len(idx))
		for i, t := range idx {
			vals[i] = seq.Values[t]
		}
		payload, err := encs.enc.Encode(core.Batch{Indices: idx, Values: vals})
		if err != nil {
			return err
		}
		msg, err := sealer.Seal(payload)
		if err != nil {
			return err
		}
		if err := seccomm.WriteFrame(conn, msg); err != nil {
			return err
		}
	}
	return nil
}

// serveFleetSensor handles one sensor's connection on the server.
func serveFleetSensor(conn net.Conn, cfg FleetConfig, coreCfg core.Config, parts [][]int, res *FleetResult, mu *sync.Mutex) error {
	var hello [2]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return fmt.Errorf("fleet server: hello: %w", err)
	}
	sensorID := int(binary.BigEndian.Uint16(hello[:]))
	if sensorID < 0 || sensorID >= len(parts) {
		return fmt.Errorf("fleet server: unknown sensor %d", sensorID)
	}
	encs, err := buildEncoder(cfg.Base.Encoder, coreCfg, cfg.Base.Cipher)
	if err != nil {
		return err
	}
	opener, err := seccomm.NewSealer(cfg.Base.Cipher, fleetKey(sensorID, cfg.Base.Cipher))
	if err != nil {
		return err
	}
	meta := cfg.Base.Dataset.Meta
	var acc reconstruct.Accumulator
	for _, si := range parts[sensorID] {
		seq := cfg.Base.Dataset.Sequences[si]
		msg, err := seccomm.ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("fleet server: frame: %w", err)
		}
		payload, err := opener.Open(msg)
		if err != nil {
			return err
		}
		batch, err := encs.dec.Decode(payload)
		if err != nil {
			return err
		}
		recon, err := reconstruct.Linear(batch.Indices, batch.Values, meta.SeqLen, meta.NumFeatures)
		if err != nil {
			return err
		}
		mae, err := reconstruct.MAE(recon, seq.Values)
		if err != nil {
			return err
		}
		acc.Add(mae, 1)
		mu.Lock()
		res.SizesByLabel[seq.Label] = append(res.SizesByLabel[seq.Label], len(msg))
		res.Messages++
		mu.Unlock()
	}
	mu.Lock()
	res.PerSensorMAE[sensorID] = acc.MAE()
	mu.Unlock()
	return nil
}
