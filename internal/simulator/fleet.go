package simulator

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/reconstruct"
	"repro/internal/seccomm"
)

// Fleet simulation: the paper's deployments are networks of sensors —
// FarmBeats fields, ZebraNet herds (§2.1, §3.3) — all reporting to one base
// station over a shared medium. Each sensor holds its own key and encoder;
// the server demultiplexes by a cleartext sensor id, which is realistic
// (radio MACs identify senders) and is what lets the attacker attribute
// messages to sensors, an assumption the threat model makes explicitly
// (§3.1). RunFleet drives every sensor concurrently over one real TCP
// connection per sensor and aggregates the eavesdropper's view across the
// fleet.
//
// The links those deployments run over are lossy and intermittent, so the
// transport is built to degrade instead of hang: every read and write
// carries a deadline, sensors dial with bounded exponential backoff, retry
// timed-out frame writes, and (when ReconnectAttempts allows) redial and
// resume a stream the link dropped; the whole run is driven by a
// context.Context whose cancellation closes the listener and every live
// connection, and a sensor that dies mid-stream (or never shows up) is
// reported in its FleetSensorStatus while the rest of the fleet completes.
//
// Link protocol: the sensor sends a 2-byte cleartext hello (its id); the
// server replies with a 2-byte resume index — the number of frames it has
// already delivered for that sensor — and the sensor streams the remaining
// frames, length-prefixed and sealed. On a fresh connection the resume
// index is 0 and the exchange reduces to the original hello. The sensor
// keeps ONE sealer for its whole lifetime, so the nonce counter stays
// monotonic across redials and a resumed stream can never repeat a
// (key, nonce) pair.

// Transport defaults, applied when the corresponding FleetConfig knob is
// zero. They are deliberately generous: tests that exercise failure paths
// set much tighter values.
const (
	defaultDialTimeout   = 2 * time.Second
	defaultDialAttempts  = 4
	defaultDialBackoff   = 25 * time.Millisecond
	defaultIOTimeout     = 5 * time.Second
	defaultWriteAttempts = 2
)

// FleetConfig drives a multi-sensor run. All sensors share the task shape
// (T, d, format) and encoder kind but hold distinct keys.
type FleetConfig struct {
	// Base carries the shared task parameters (Dataset supplies the
	// metadata and the per-sensor sequence partition). Base.Metrics, when
	// set, receives the fleet's transport and codec instrumentation.
	Base RunConfig
	// Sensors is the fleet size; the Base dataset's sequences are dealt
	// round-robin across sensors.
	Sensors int

	// DialTimeout bounds a single TCP connect attempt (default 2s).
	DialTimeout time.Duration
	// DialAttempts is how many connect attempts a sensor makes before
	// reporting failure (default 4). Attempts are separated by an
	// exponential backoff starting at DialBackoff (default 25ms, doubling).
	DialAttempts int
	DialBackoff  time.Duration
	// IOTimeout is the per-frame read/write deadline on both sides of the
	// link (default 5s). A peer that stalls longer than this fails its own
	// status instead of hanging the run.
	IOTimeout time.Duration
	// WriteAttempts bounds per-frame write retries: a frame write that
	// times out without transmitting is retried up to WriteAttempts times
	// in total (default 2). Non-timeout errors are never retried.
	WriteAttempts int
	// ReconnectAttempts is how many times a sensor may redial and resume
	// after a transport failure mid-stream (default 0: a dropped link fails
	// the sensor, the pre-resume behavior). Injected sensor faults
	// (NeverDial, DieAfterFrames, StallAfterFrames) are never resumed — a
	// dead node stays dead.
	ReconnectAttempts int
	// Timeout, when nonzero, bounds the whole run; on expiry the run is
	// cancelled and RunFleet returns the partial result with an error.
	Timeout time.Duration

	// Faults injects transport failures for resilience testing (nil = none).
	Faults *FleetFaults
}

// withTransportDefaults fills zero-valued transport knobs.
func (cfg FleetConfig) withTransportDefaults() FleetConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = defaultDialAttempts
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = defaultDialBackoff
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.WriteAttempts <= 0 {
		cfg.WriteAttempts = defaultWriteAttempts
	}
	return cfg
}

// FleetFaults injects transport faults by sensor id, modelling the failure
// modes of a lossy deployment: a node that dies mid-stream, a node that
// never comes up, a radio that goes quiet, a base station that drops a link.
type FleetFaults struct {
	// NeverDial marks sensors that never connect.
	NeverDial map[int]bool
	// DieAfterFrames closes the sensor's connection abruptly after it has
	// written the given number of frames (counted across the sensor's
	// lifetime: a dead node does not come back).
	DieAfterFrames map[int]int
	// StallAfterFrames keeps the sensor's connection open but silent after
	// the given number of frames, forcing the server's read deadline to
	// fire. The stall is bounded (a little over two IO timeouts), so the
	// run still terminates.
	StallAfterFrames map[int]int
	// ServerCloseAfterFrames makes the server drop the sensor's connection
	// after processing the given number of frames on it. The count is per
	// connection — a flaky base station link, not a banned sensor — so a
	// sensor with ReconnectAttempts can redial and make progress.
	ServerCloseAfterFrames map[int]int
}

// FleetSensorStatus reports one sensor's outcome, successful or not. A run
// with a dead sensor completes with that sensor's status carrying the error
// while the rest of the fleet delivers normally.
type FleetSensorStatus struct {
	// Sensor is the sensor id.
	Sensor int
	// Assigned is how many sequences the partition gave this sensor.
	Assigned int
	// Delivered is how many frames the server successfully decoded and
	// reconstructed.
	Delivered int
	// DialAttempts is how many TCP connect attempts the sensor made,
	// summed across reconnects.
	DialAttempts int
	// Reconnects is how many times the sensor redialed and resumed after a
	// transport failure.
	Reconnects int
	// SensorErr and ServerErr carry the two sides' failures ("" = none).
	SensorErr string
	ServerErr string
}

// OK reports whether the sensor delivered everything with no errors.
func (st FleetSensorStatus) OK() bool {
	return st.SensorErr == "" && st.ServerErr == "" && st.Delivered == st.Assigned
}

// Err summarizes the status's failures, or "" when OK.
func (st FleetSensorStatus) Err() string {
	switch {
	case st.SensorErr != "" && st.ServerErr != "":
		return fmt.Sprintf("sensor: %s; server: %s", st.SensorErr, st.ServerErr)
	case st.SensorErr != "":
		return "sensor: " + st.SensorErr
	case st.ServerErr != "":
		return "server: " + st.ServerErr
	case st.Delivered != st.Assigned:
		return fmt.Sprintf("delivered %d of %d frames", st.Delivered, st.Assigned)
	}
	return ""
}

// FleetResult aggregates the fleet run.
type FleetResult struct {
	// PerSensorMAE indexes reconstruction error by sensor id (the mean over
	// the frames that actually arrived; 0 when none did).
	PerSensorMAE []float64
	// SizesByLabel pools the eavesdropper's observations across the whole
	// fleet (the attacker sees every flow).
	SizesByLabel map[int][]int
	// Messages counts frames the server demultiplexed.
	Messages int
	// Sensors reports per-sensor delivery status, including failures.
	Sensors []FleetSensorStatus
	// Failed counts sensors whose status is not OK.
	Failed int
	// Unattributed records connection failures that happened before the
	// hello identified a sensor (e.g. a peer that connected and went
	// silent).
	Unattributed []string
}

// fleetMetrics bundles the fleet's resolved instruments. Every field is
// nil-safe: with no registry configured all of them are nil and every update
// is a no-op, so the hot paths carry no conditional instrumentation code.
// Metrics are observation-only — nothing here feeds back into sampling,
// encoding, or scheduling.
type fleetMetrics struct {
	framesSent        *metrics.Counter
	framesDelivered   *metrics.Counter
	wireBytesSent     *metrics.Counter
	wireBytesReceived *metrics.Counter
	dialAttempts      *metrics.Counter
	dialFailures      *metrics.Counter
	writeRetries      *metrics.Counter
	readDeadlineHits  *metrics.Counter
	writeDeadlineHits *metrics.Counter
	reconnects        *metrics.Counter
	unattributed      *metrics.Counter
	frameBytes        *metrics.Histogram

	sensorFramesSent      *metrics.Series
	sensorFramesDelivered *metrics.Series
	sensorWireBytes       *metrics.Series
	sensorRetries         *metrics.Series
	sensorDeadlineHits    *metrics.Series
	sensorReconnects      *metrics.Series
	sensorDials           *metrics.Series
}

// newFleetMetrics resolves the fleet instrument family in reg. A nil
// registry yields a fully no-op set.
func newFleetMetrics(reg *metrics.Registry) *fleetMetrics {
	return &fleetMetrics{
		framesSent:        reg.Counter("fleet.frames_sent"),
		framesDelivered:   reg.Counter("fleet.frames_delivered"),
		wireBytesSent:     reg.Counter("fleet.wire_bytes_sent"),
		wireBytesReceived: reg.Counter("fleet.wire_bytes_received"),
		dialAttempts:      reg.Counter("fleet.dial_attempts"),
		dialFailures:      reg.Counter("fleet.dial_failures"),
		writeRetries:      reg.Counter("fleet.write_retries"),
		readDeadlineHits:  reg.Counter("fleet.read_deadline_hits"),
		writeDeadlineHits: reg.Counter("fleet.write_deadline_hits"),
		reconnects:        reg.Counter("fleet.reconnects"),
		unattributed:      reg.Counter("fleet.unattributed"),
		frameBytes:        reg.Histogram("fleet.frame_bytes", metrics.SizeBuckets()...),

		sensorFramesSent:      reg.Series("fleet.sensor.frames_sent"),
		sensorFramesDelivered: reg.Series("fleet.sensor.frames_delivered"),
		sensorWireBytes:       reg.Series("fleet.sensor.wire_bytes"),
		sensorRetries:         reg.Series("fleet.sensor.write_retries"),
		sensorDeadlineHits:    reg.Series("fleet.sensor.deadline_hits"),
		sensorReconnects:      reg.Series("fleet.sensor.reconnects"),
		sensorDials:           reg.Series("fleet.sensor.dial_attempts"),
	}
}

// fleetFrameHook, when non-nil, observes every sealed frame the server
// reads, before it is opened. Tests use it to capture wire nonces; it must
// be set before the run starts and not mutated during it.
var fleetFrameHook func(sensorID int, msg []byte)

// connRegistry tracks live connections so run cancellation can unblock
// every in-flight read and write by closing them.
type connRegistry struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newConnRegistry() *connRegistry {
	return &connRegistry{conns: map[net.Conn]struct{}{}}
}

// add registers a connection; if the registry is already closed (the run is
// shutting down) the connection is closed immediately.
func (r *connRegistry) add(c net.Conn) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.Close()
		return
	}
	r.conns[c] = struct{}{}
	r.mu.Unlock()
}

func (r *connRegistry) remove(c net.Conn) {
	r.mu.Lock()
	delete(r.conns, c)
	r.mu.Unlock()
}

func (r *connRegistry) closeAll() {
	r.mu.Lock()
	r.closed = true
	for c := range r.conns {
		c.Close()
	}
	r.conns = map[net.Conn]struct{}{}
	r.mu.Unlock()
}

// RunFleet partitions the configured dataset across n concurrent sensors,
// each streaming encrypted frames over its own TCP loopback connection to a
// context-driven server, and returns the pooled attacker view plus
// per-sensor status. Individual sensor failures degrade the result (see
// FleetResult.Sensors) rather than aborting the run; RunFleet returns a
// non-nil error only for setup failures, run cancellation, or a fleet in
// which every sensor failed.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	return RunFleetContext(context.Background(), cfg)
}

// RunFleetContext is RunFleet under a caller-supplied context. Cancelling
// the context closes the listener and every live connection, unblocking all
// goroutines; the partial result gathered so far is returned with the
// context's error.
func RunFleetContext(ctx context.Context, cfg FleetConfig) (*FleetResult, error) {
	n := cfg.Sensors
	if n < 1 {
		return nil, fmt.Errorf("simulator: fleet needs at least one sensor")
	}
	if cfg.Base.Dataset == nil || len(cfg.Base.Dataset.Sequences) < n {
		return nil, fmt.Errorf("simulator: dataset too small for %d sensors", n)
	}
	cfg = cfg.withTransportDefaults()
	meta := cfg.Base.Dataset.Meta
	coreCfg := core.Config{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format,
		TargetBytes: core.TargetBytesForRate(cfg.Base.Rate, meta.SeqLen, meta.NumFeatures, meta.Format.Width),
	}
	m := newFleetMetrics(cfg.Base.Metrics)
	if reg := cfg.Base.Metrics; reg != nil {
		reg.Gauge("fleet.sensors").Set(int64(n))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	var cancel context.CancelFunc
	if cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	// Partition sequences round-robin.
	parts := make([][]int, n) // sequence indices per sensor
	for i := range cfg.Base.Dataset.Sequences {
		parts[i%n] = append(parts[i%n], i)
	}

	res := &FleetResult{
		PerSensorMAE: make([]float64, n),
		SizesByLabel: map[int][]int{},
		Sensors:      make([]FleetSensorStatus, n),
	}
	for i := range res.Sensors {
		res.Sensors[i].Sensor = i
		res.Sensors[i].Assigned = len(parts[i])
	}
	var mu sync.Mutex // guards res, active, and accs from server/sensor goroutines
	// active marks sensors with a live handler; a handler releases its
	// sensor on exit so a reconnecting sensor can claim it again. accs
	// accumulate per-sensor reconstruction error across connections.
	active := make([]bool, n)
	accs := make([]reconstruct.Accumulator, n)

	reg := newConnRegistry()
	// Cancellation (parent context, Timeout expiry, or a fatal accept
	// error) closes the listener and every live connection, so no read,
	// write, accept, or backoff sleep outlives the run.
	go func() {
		<-ctx.Done()
		ln.Close()
		reg.closeAll()
	}()

	var fatalMu sync.Mutex
	var fatalErr error
	setFatal := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
		cancel()
	}

	// Server: one accept loop; each accepted connection gets a handler that
	// reads the hello under a deadline, demultiplexes, and serves frames.
	// established counts successful sensor dials and accepted counts
	// server-side accepts: the shutdown sequence below uses them to drain
	// the accept queue before closing the listener, so handlerWG.Add can
	// never race handlerWG.Wait.
	var established, accepted atomic.Int64
	var acceptWG, handlerWG, sensorWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
					return // clean shutdown
				}
				setFatal(fmt.Errorf("fleet server: accept: %w", err))
				return
			}
			reg.add(conn)
			accepted.Add(1)
			handlerWG.Add(1)
			go func() {
				defer handlerWG.Done()
				defer func() {
					conn.Close()
					reg.remove(conn)
				}()
				serveFleetConn(conn, cfg, coreCfg, parts, res, &mu, active, accs, m)
			}()
		}
	}()

	// Sensors: one goroutine each, own key and encoder state. A sensor
	// failure lands in its status; it never tears down the rest of the run.
	sensorWG.Add(n)
	for s := 0; s < n; s++ {
		go func(sensorID int) {
			defer sensorWG.Done()
			dials, reconnects, err := runFleetSensor(ctx, sensorID, ln.Addr().String(), cfg, coreCfg, parts[sensorID], reg, &established, m)
			mu.Lock()
			res.Sensors[sensorID].DialAttempts = dials
			res.Sensors[sensorID].Reconnects = reconnects
			if err != nil {
				res.Sensors[sensorID].SensorErr = err.Error()
			}
			mu.Unlock()
		}(s)
	}

	// Shutdown sequence, every step bounded. (1) Sensors finish (dial
	// attempts and IO deadlines bound them). (2) Drain the accept queue: a
	// sensor can complete all its writes before the server accepts the
	// connection, so wait — briefly — until every established connection
	// has been accepted before closing the listener. (3) Close the
	// listener and join the accept loop, after which no handler can be
	// added. (4) Join the handlers (per-frame read deadlines bound them).
	sensorWG.Wait()
	drainDeadline := time.Now().Add(cfg.IOTimeout)
	for accepted.Load() < established.Load() && time.Now().Before(drainDeadline) && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	ln.Close()
	acceptWG.Wait()
	handlerWG.Wait()
	cause := ctx.Err() // read before our own cancel() below masks it
	cancel()

	// All handlers have joined: fold the per-sensor accumulators into the
	// result without further locking.
	for i := range accs {
		res.PerSensorMAE[i] = accs[i].MAE()
	}

	// Count failures on every path so a partial result returned alongside
	// an error still carries an accurate Failed tally.
	var firstFailure string
	for _, st := range res.Sensors {
		if !st.OK() {
			res.Failed++
			if firstFailure == "" {
				firstFailure = fmt.Sprintf("sensor %d: %s", st.Sensor, st.Err())
			}
		}
	}

	fatalMu.Lock()
	err = fatalErr
	fatalMu.Unlock()
	if err != nil {
		return res, fmt.Errorf("simulator: fleet: %w", err)
	}
	if cause != nil {
		return res, fmt.Errorf("simulator: fleet cancelled: %w", cause)
	}
	if res.Failed == n {
		return res, fmt.Errorf("simulator: all %d sensors failed (%s)", n, firstFailure)
	}
	return res, nil
}

// fleetKey derives a per-sensor key (shared out of band in a real system).
func fleetKey(sensorID int, cipher seccomm.CipherKind) []byte {
	n := 32
	if cipher == seccomm.AES128Block {
		n = 16
	}
	key := make([]byte, n)
	for i := range key {
		key[i] = byte(sensorID*31 + i*7 + 5)
	}
	return key
}

// dialWithBackoff connects to addr, retrying with exponential backoff up to
// cfg.DialAttempts times. It returns the connection and the number of
// attempts made.
func dialWithBackoff(ctx context.Context, addr string, cfg FleetConfig) (net.Conn, int, error) {
	backoff := cfg.DialBackoff
	var lastErr error
	for attempt := 1; attempt <= cfg.DialAttempts; attempt++ {
		d := net.Dialer{Timeout: cfg.DialTimeout}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, attempt, nil
		}
		lastErr = err
		if ctx.Err() != nil || attempt == cfg.DialAttempts {
			return nil, attempt, fmt.Errorf("dial (attempt %d/%d): %w", attempt, cfg.DialAttempts, lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, attempt, fmt.Errorf("dial cancelled after attempt %d: %w", attempt, ctx.Err())
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	return nil, cfg.DialAttempts, fmt.Errorf("dial: %w", lastErr)
}

// isNetTimeout reports whether err is a network timeout (a deadline expiry).
func isNetTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// writeFrameRetry writes one frame with the per-frame deadline, retrying a
// timed-out write up to cfg.WriteAttempts times in total. WriteFrame sends
// header and body in one Write, so a timeout that transmitted nothing is
// safe to retry; any other error aborts immediately. It returns the number
// of attempts made so callers can account retries and deadline expiries.
func writeFrameRetry(ctx context.Context, conn net.Conn, msg []byte, cfg FleetConfig) (int, error) {
	var err error
	for attempt := 1; attempt <= cfg.WriteAttempts; attempt++ {
		err = seccomm.WriteFrameDeadline(conn, msg, cfg.IOTimeout)
		if err == nil {
			return attempt, nil
		}
		if ctx.Err() != nil || !isNetTimeout(err) {
			return attempt, err
		}
	}
	return cfg.WriteAttempts, fmt.Errorf("write after %d attempts: %w", cfg.WriteAttempts, err)
}

// nonResumableError marks sensor-side failures no redial can fix: injected
// sensor faults, encode/seal failures, and protocol violations. Transport
// errors stay resumable.
type nonResumableError struct{ err error }

func (e nonResumableError) Error() string { return e.err.Error() }
func (e nonResumableError) Unwrap() error { return e.err }

// runFleetSensor streams one sensor's assigned sequences, honoring the
// configured fault plan and redialing up to cfg.ReconnectAttempts times on
// transport failures. It returns total dial attempts and reconnects.
func runFleetSensor(ctx context.Context, sensorID int, addr string, cfg FleetConfig, coreCfg core.Config, seqIdx []int, reg *connRegistry, established *atomic.Int64, m *fleetMetrics) (int, int, error) {
	if cfg.Faults != nil && cfg.Faults.NeverDial[sensorID] {
		return 0, 0, errors.New("fault injection: sensor never dialed")
	}
	encs, err := buildInstrumentedEncoder(cfg.Base.Encoder, coreCfg, cfg.Base.Cipher, cfg.Base.Metrics)
	if err != nil {
		return 0, 0, err
	}
	// ONE sealer for the sensor's lifetime: the nonce counter advances
	// monotonically across redials, so resumed streams never reuse a
	// (key, nonce) pair (seccomm's per-sealer instance prefix is the
	// structural backstop should a caller ever re-create one).
	sealer, err := seccomm.NewSealer(cfg.Base.Cipher, fleetKey(sensorID, cfg.Base.Cipher))
	if err != nil {
		return 0, 0, err
	}
	label := strconv.Itoa(sensorID)
	dials, reconnects := 0, 0
	for try := 0; ; try++ {
		attemptDials, err := streamFleetFrames(ctx, sensorID, label, addr, cfg, encs, sealer, seqIdx, reg, established, m)
		dials += attemptDials
		if err == nil {
			return dials, reconnects, nil
		}
		var terminal nonResumableError
		if errors.As(err, &terminal) || ctx.Err() != nil || try >= cfg.ReconnectAttempts {
			return dials, reconnects, err
		}
		reconnects++
		m.reconnects.Inc()
		m.sensorReconnects.Counter(label).Inc()
		// Give the server a beat to retire the dropped connection's
		// handler before the new hello arrives.
		select {
		case <-ctx.Done():
			return dials, reconnects, err
		case <-time.After(cfg.DialBackoff):
		}
	}
}

// streamFleetFrames performs one connection attempt: dial, hello, resume
// ack, then stream the assigned frames from the server's resume index. It
// returns the dial attempts this connection consumed.
func streamFleetFrames(ctx context.Context, sensorID int, label string, addr string, cfg FleetConfig, encs encoderSet, sealer seccomm.Sealer, seqIdx []int, reg *connRegistry, established *atomic.Int64, m *fleetMetrics) (int, error) {
	conn, dials, err := dialWithBackoff(ctx, addr, cfg)
	m.dialAttempts.Add(int64(dials))
	m.sensorDials.Counter(label).Add(int64(dials))
	if err != nil {
		m.dialFailures.Inc()
		return dials, err
	}
	established.Add(1)
	reg.add(conn)
	defer func() {
		conn.Close()
		reg.remove(conn)
	}()
	// Identify: 2-byte sensor id (cleartext, like a MAC address), under the
	// same write deadline as every frame.
	var hello [2]byte
	binary.BigEndian.PutUint16(hello[:], uint16(sensorID))
	if err := writeFullDeadline(conn, hello[:], cfg.IOTimeout); err != nil {
		return dials, fmt.Errorf("hello: %w", err)
	}
	// The server acks with the index of the first frame it has not
	// delivered; a fresh connection resumes at 0.
	var ack [2]byte
	if err := seccomm.ReadFullDeadline(conn, ack[:], cfg.IOTimeout); err != nil {
		return dials, fmt.Errorf("hello ack: %w", err)
	}
	resume := int(binary.BigEndian.Uint16(ack[:]))
	if resume > len(seqIdx) {
		return dials, nonResumableError{fmt.Errorf("server resume index %d beyond %d assigned frames", resume, len(seqIdx))}
	}
	// Replay the sampling stream up to the resume point so the remaining
	// sequences are sampled exactly as an uninterrupted run would sample
	// them — resume is invisible in the delivered data.
	rng := newSeededRand(cfg.Base.Seed + int64(sensorID))
	for _, si := range seqIdx[:resume] {
		cfg.Base.Policy.Sample(cfg.Base.Dataset.Sequences[si].Values, rng)
	}
	framesC := m.sensorFramesSent.Counter(label)
	retriesC := m.sensorRetries.Counter(label)
	deadlineC := m.sensorDeadlineHits.Counter(label)
	for fi := resume; fi < len(seqIdx); fi++ {
		si := seqIdx[fi]
		if cfg.Faults != nil {
			if k, ok := cfg.Faults.DieAfterFrames[sensorID]; ok && fi >= k {
				return dials, nonResumableError{fmt.Errorf("fault injection: died after %d frames", k)}
			}
			if k, ok := cfg.Faults.StallAfterFrames[sensorID]; ok && fi >= k {
				stallSensor(ctx, cfg.IOTimeout)
				return dials, nonResumableError{fmt.Errorf("fault injection: stalled after %d frames", k)}
			}
		}
		seq := cfg.Base.Dataset.Sequences[si]
		idx := cfg.Base.Policy.Sample(seq.Values, rng)
		vals := make([][]float64, len(idx))
		for i, t := range idx {
			vals[i] = seq.Values[t]
		}
		payload, err := encs.enc.Encode(core.Batch{Indices: idx, Values: vals})
		if err != nil {
			return dials, nonResumableError{err}
		}
		msg, err := sealer.Seal(payload)
		if err != nil {
			return dials, nonResumableError{err}
		}
		attempts, err := writeFrameRetry(ctx, conn, msg, cfg)
		if r := attempts - 1; r > 0 {
			m.writeRetries.Add(int64(r))
			retriesC.Add(int64(r))
			// Every retry was preceded by a write deadline expiry.
			m.writeDeadlineHits.Add(int64(r))
			deadlineC.Add(int64(r))
		}
		if err != nil {
			if isNetTimeout(err) {
				m.writeDeadlineHits.Inc()
				deadlineC.Inc()
			}
			return dials, fmt.Errorf("frame %d: %w", fi, err)
		}
		m.framesSent.Inc()
		m.wireBytesSent.Add(int64(len(msg)))
		framesC.Inc()
	}
	// Delivery confirmation: frame writes can land in the TCP buffer after
	// the server has dropped the link, so "every write succeeded" does not
	// mean "everything was delivered". The server confirms completion with
	// a 2-byte final count; a missing or short confirmation is a transport
	// failure, which a reconnect can resume from the true delivered index.
	var fin [2]byte
	if err := seccomm.ReadFullDeadline(conn, fin[:], cfg.IOTimeout); err != nil {
		return dials, fmt.Errorf("final ack: %w", err)
	}
	if got := int(binary.BigEndian.Uint16(fin[:])); got != len(seqIdx) {
		return dials, fmt.Errorf("final ack: server delivered %d of %d frames", got, len(seqIdx))
	}
	return dials, nil
}

// stallSensor holds the connection open and silent long enough for the
// server's read deadline to fire, then returns so the run can finish.
func stallSensor(ctx context.Context, ioTimeout time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(2*ioTimeout + 50*time.Millisecond):
	}
}

// writeFullDeadline writes buf to conn under a write deadline (the raw
// cleartext hello/ack; frames use seccomm.WriteFrameDeadline).
func writeFullDeadline(conn net.Conn, buf []byte, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(buf)
	return err
}

// claimSensor marks the sensor's handler slot active, waiting briefly for a
// finished handler to release it first: a redialing sensor can be accepted
// before its previous handler has fully exited. It reports whether the
// claim succeeded; on failure the duplicate-connection error is recorded.
func claimSensor(mu *sync.Mutex, active []bool, res *FleetResult, sensorID int, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		mu.Lock()
		if !active[sensorID] {
			active[sensorID] = true
			mu.Unlock()
			return true
		}
		mu.Unlock()
		if time.Now().After(deadline) {
			mu.Lock()
			res.Sensors[sensorID].ServerErr = "duplicate connection for sensor"
			mu.Unlock()
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// serveFleetConn handles one accepted connection: hello under a deadline,
// sensor id claim, resume ack, then the per-sensor frame loop starting at
// the first undelivered frame. Failures land in the sensor's status (or in
// Unattributed when no hello arrived); a later reconnect supersedes them.
func serveFleetConn(conn net.Conn, cfg FleetConfig, coreCfg core.Config, parts [][]int, res *FleetResult, mu *sync.Mutex, active []bool, accs []reconstruct.Accumulator, m *fleetMetrics) {
	var hello [2]byte
	if err := seccomm.ReadFullDeadline(conn, hello[:], cfg.IOTimeout); err != nil {
		m.unattributed.Inc()
		mu.Lock()
		res.Unattributed = append(res.Unattributed, fmt.Sprintf("hello: %v", err))
		mu.Unlock()
		return
	}
	sensorID := int(binary.BigEndian.Uint16(hello[:]))
	if sensorID < 0 || sensorID >= len(parts) {
		m.unattributed.Inc()
		mu.Lock()
		res.Unattributed = append(res.Unattributed, fmt.Sprintf("unknown sensor %d", sensorID))
		mu.Unlock()
		return
	}
	if !claimSensor(mu, active, res, sensorID, cfg.IOTimeout) {
		return
	}
	defer func() {
		mu.Lock()
		active[sensorID] = false
		mu.Unlock()
	}()

	setServerErr := func(err error) {
		mu.Lock()
		res.Sensors[sensorID].ServerErr = err.Error()
		mu.Unlock()
	}
	// Ack the hello with the resume index and clear any failure a previous
	// connection left behind — this connection supersedes it.
	mu.Lock()
	resume := res.Sensors[sensorID].Delivered
	res.Sensors[sensorID].ServerErr = ""
	mu.Unlock()
	var ack [2]byte
	binary.BigEndian.PutUint16(ack[:], uint16(resume))
	if err := writeFullDeadline(conn, ack[:], cfg.IOTimeout); err != nil {
		setServerErr(fmt.Errorf("hello ack: %w", err))
		return
	}
	encs, err := buildInstrumentedEncoder(cfg.Base.Encoder, coreCfg, cfg.Base.Cipher, cfg.Base.Metrics)
	if err != nil {
		setServerErr(err)
		return
	}
	opener, err := seccomm.NewSealer(cfg.Base.Cipher, fleetKey(sensorID, cfg.Base.Cipher))
	if err != nil {
		setServerErr(err)
		return
	}
	meta := cfg.Base.Dataset.Meta
	label := strconv.Itoa(sensorID)
	framesC := m.sensorFramesDelivered.Counter(label)
	bytesC := m.sensorWireBytes.Counter(label)
	deadlineC := m.sensorDeadlineHits.Counter(label)
	part := parts[sensorID]
	connFrames := 0 // frames processed on THIS connection (fault accounting)
	for fi := resume; fi < len(part); fi++ {
		if cfg.Faults != nil {
			if k, ok := cfg.Faults.ServerCloseAfterFrames[sensorID]; ok && connFrames >= k {
				setServerErr(fmt.Errorf("fault injection: server closed link after %d frames", k))
				return
			}
		}
		seq := cfg.Base.Dataset.Sequences[part[fi]]
		msg, err := seccomm.ReadFrameDeadline(conn, cfg.IOTimeout)
		if err != nil {
			if isNetTimeout(err) {
				m.readDeadlineHits.Inc()
				deadlineC.Inc()
			}
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		if fleetFrameHook != nil {
			fleetFrameHook(sensorID, msg)
		}
		payload, err := opener.Open(msg)
		if err != nil {
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		batch, err := encs.dec.Decode(payload)
		if err != nil {
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		recon, err := reconstruct.Linear(batch.Indices, batch.Values, meta.SeqLen, meta.NumFeatures)
		if err != nil {
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		mae, err := reconstruct.MAE(recon, seq.Values)
		if err != nil {
			setServerErr(fmt.Errorf("frame %d: %w", fi, err))
			return
		}
		connFrames++
		m.framesDelivered.Inc()
		m.wireBytesReceived.Add(int64(len(msg)))
		m.frameBytes.Observe(int64(len(msg)))
		framesC.Inc()
		bytesC.Add(int64(len(msg)))
		mu.Lock()
		accs[sensorID].Add(mae, 1)
		res.SizesByLabel[seq.Label] = append(res.SizesByLabel[seq.Label], len(msg))
		res.Messages++
		res.Sensors[sensorID].Delivered++
		mu.Unlock()
	}
	// Confirm completion so the sensor can distinguish "delivered" from
	// "buffered into a dead socket".
	var fin [2]byte
	binary.BigEndian.PutUint16(fin[:], uint16(len(part)))
	if err := writeFullDeadline(conn, fin[:], cfg.IOTimeout); err != nil {
		setServerErr(fmt.Errorf("final ack: %w", err))
	}
}
