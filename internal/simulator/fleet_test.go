package simulator

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/seccomm"
	"repro/internal/stats"
)

func fleetConfig(t *testing.T, enc EncoderKind, sensors int) FleetConfig {
	t.Helper()
	d, p := fixture(t, 0.7)
	return FleetConfig{
		Base: RunConfig{
			Dataset: d, Policy: p, Encoder: enc,
			Cipher: seccomm.ChaCha20Stream, Rate: 0.7,
			Model: energy.Default(), Seed: 1,
		},
		Sensors: sensors,
	}
}

func TestFleetDeliversEverything(t *testing.T) {
	cfg := fleetConfig(t, EncAGE, 4)
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != len(cfg.Base.Dataset.Sequences) {
		t.Errorf("server saw %d messages, want %d", res.Messages, len(cfg.Base.Dataset.Sequences))
	}
	for s, mae := range res.PerSensorMAE {
		if mae <= 0 {
			t.Errorf("sensor %d MAE = %g", s, mae)
		}
	}
}

func TestFleetAGEZeroNMIAcrossSensors(t *testing.T) {
	// The attacker pools observations across the whole fleet; AGE's
	// protection must survive aggregation.
	res, err := RunFleet(fleetConfig(t, EncAGE, 3))
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := stats.NMI(labels, sizes); nmi != 0 {
		t.Errorf("fleet-wide AGE NMI = %g, want 0", nmi)
	}
}

func TestFleetStandardLeaksAcrossSensors(t *testing.T) {
	res, err := RunFleet(fleetConfig(t, EncStandard, 3))
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := stats.NMI(labels, sizes); nmi <= 0 {
		t.Error("fleet-wide standard encoding shows no leakage")
	}
}

func TestFleetKeysAreDistinct(t *testing.T) {
	a := fleetKey(0, seccomm.ChaCha20Stream)
	b := fleetKey(1, seccomm.ChaCha20Stream)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("sensors share a key")
	}
	if len(fleetKey(0, seccomm.AES128Block)) != 16 {
		t.Error("AES fleet key not 16 bytes")
	}
}

func TestFleetErrors(t *testing.T) {
	cfg := fleetConfig(t, EncAGE, 0)
	if _, err := RunFleet(cfg); err == nil {
		t.Error("zero sensors accepted")
	}
	cfg = fleetConfig(t, EncAGE, 10000)
	if _, err := RunFleet(cfg); err == nil {
		t.Error("fleet larger than dataset accepted")
	}
}

func TestFleetSingleSensorMatchesSocketPath(t *testing.T) {
	// A fleet of one is the plain socket pipeline.
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 3, MaxSequences: 12})
	var train [][][]float64
	for _, s := range d.Sequences {
		train = append(train, s.Values)
	}
	fit, err := policy.Fit(policy.KindLinear, train, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FleetConfig{
		Base: RunConfig{
			Dataset: d, Policy: policy.NewLinear(fit.Threshold), Encoder: EncAGE,
			Cipher: seccomm.ChaCha20Stream, Rate: 0.7, Model: energy.Default(), Seed: 1,
		},
		Sensors: 1,
	}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 12 {
		t.Errorf("messages = %d", res.Messages)
	}
}
