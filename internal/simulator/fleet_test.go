package simulator

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/reconstruct"
	"repro/internal/seccomm"
	"repro/internal/stats"
)

func fleetConfig(t *testing.T, enc EncoderKind, sensors int) FleetConfig {
	t.Helper()
	d, p := fixture(t, 0.7)
	return FleetConfig{
		Base: RunConfig{
			Dataset: d, Policy: p, Encoder: enc,
			Cipher: seccomm.ChaCha20Stream, Rate: 0.7,
			Model: energy.Default(), Seed: 1,
		},
		Sensors: sensors,
	}
}

func TestFleetDeliversEverything(t *testing.T) {
	cfg := fleetConfig(t, EncAGE, 4)
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != len(cfg.Base.Dataset.Sequences) {
		t.Errorf("server saw %d messages, want %d", res.Messages, len(cfg.Base.Dataset.Sequences))
	}
	for s, mae := range res.PerSensorMAE {
		if mae <= 0 {
			t.Errorf("sensor %d MAE = %g", s, mae)
		}
	}
	if res.Failed != 0 {
		t.Errorf("healthy fleet reports %d failed sensors", res.Failed)
	}
	for _, st := range res.Sensors {
		if !st.OK() {
			t.Errorf("sensor %d not OK: %s", st.Sensor, st.Err())
		}
		if st.DialAttempts < 1 {
			t.Errorf("sensor %d reports %d dial attempts", st.Sensor, st.DialAttempts)
		}
	}
}

// fastFaultConfig tightens the transport knobs so failure paths resolve in
// well under the 5-second budget the acceptance criteria demand.
func fastFaultConfig(t *testing.T, sensors int, faults *FleetFaults) FleetConfig {
	t.Helper()
	cfg := fleetConfig(t, EncAGE, sensors)
	cfg.IOTimeout = 300 * time.Millisecond
	cfg.DialTimeout = 300 * time.Millisecond
	cfg.DialAttempts = 2
	cfg.DialBackoff = 10 * time.Millisecond
	cfg.Faults = faults
	return cfg
}

// runBounded fails the test if RunFleet does not return within the
// acceptance deadline (a hang is exactly the bug this PR fixes).
func runBounded(t *testing.T, cfg FleetConfig) (*FleetResult, error) {
	t.Helper()
	type out struct {
		res *FleetResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := RunFleet(cfg)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(5 * time.Second):
		t.Fatal("RunFleet hung past the 5s acceptance deadline")
		return nil, nil
	}
}

func TestFleetSensorDiesMidStream(t *testing.T) {
	const victim = 1
	cfg := fastFaultConfig(t, 4, &FleetFaults{DieAfterFrames: map[int]int{victim: 1}})
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatalf("one dead sensor must degrade, not abort: %v", err)
	}
	if res.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (statuses: %+v)", res.Failed, res.Sensors)
	}
	st := res.Sensors[victim]
	if st.OK() || !strings.Contains(st.SensorErr, "died after 1 frames") {
		t.Errorf("victim status = %+v", st)
	}
	if st.Delivered != 1 {
		t.Errorf("victim delivered %d frames, want the 1 sent before dying", st.Delivered)
	}
	for _, other := range res.Sensors {
		if other.Sensor == victim {
			continue
		}
		if !other.OK() {
			t.Errorf("healthy sensor %d degraded: %s", other.Sensor, other.Err())
		}
	}
	// The pooled attacker view contains everything that was delivered.
	want := 0
	for _, st := range res.Sensors {
		want += st.Delivered
	}
	if res.Messages != want {
		t.Errorf("Messages = %d, want %d", res.Messages, want)
	}
}

func TestFleetSensorNeverDials(t *testing.T) {
	const ghost = 2
	cfg := fastFaultConfig(t, 4, &FleetFaults{NeverDial: map[int]bool{ghost: true}})
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sensors[ghost]
	if st.SensorErr == "" || st.Delivered != 0 || st.DialAttempts != 0 {
		t.Errorf("ghost status = %+v", st)
	}
	if res.Failed != 1 {
		t.Errorf("Failed = %d, want 1", res.Failed)
	}
	if res.PerSensorMAE[ghost] != 0 {
		t.Errorf("ghost MAE = %g, want 0", res.PerSensorMAE[ghost])
	}
}

func TestFleetSensorStallsReadDeadlineFires(t *testing.T) {
	const quiet = 0
	cfg := fastFaultConfig(t, 3, &FleetFaults{StallAfterFrames: map[int]int{quiet: 1}})
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sensors[quiet]
	if st.OK() {
		t.Fatalf("stalled sensor reported OK: %+v", st)
	}
	// The server must have been unblocked by its read deadline, not EOF.
	if !strings.Contains(st.ServerErr, "timeout") && !strings.Contains(st.ServerErr, "deadline") {
		t.Errorf("server error %q does not look like a deadline expiry", st.ServerErr)
	}
}

func TestFleetServerClosesEarly(t *testing.T) {
	const dropped = 0
	cfg := fastFaultConfig(t, 3, &FleetFaults{ServerCloseAfterFrames: map[int]int{dropped: 1}})
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sensors[dropped]
	if st.OK() || !strings.Contains(st.ServerErr, "server closed link") {
		t.Errorf("dropped status = %+v", st)
	}
	if res.Failed != 1 {
		t.Errorf("Failed = %d, want 1", res.Failed)
	}
}

func TestFleetAllSensorsFailReturnsError(t *testing.T) {
	cfg := fastFaultConfig(t, 3, &FleetFaults{
		NeverDial: map[int]bool{0: true, 1: true, 2: true},
	})
	res, err := runBounded(t, cfg)
	if err == nil {
		t.Fatal("a fleet in which every sensor failed must surface an error")
	}
	if !strings.Contains(err.Error(), "all 3 sensors failed") {
		t.Errorf("error %q not descriptive", err)
	}
	if res == nil || res.Failed != 3 {
		t.Errorf("partial result missing or wrong: %+v", res)
	}
}

func TestFleetContextCancellation(t *testing.T) {
	cfg := fastFaultConfig(t, 3, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts
	start := time.Now()
	_, err := RunFleetContext(ctx, cfg)
	if err == nil {
		t.Fatal("cancelled context must produce an error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
}

func TestFleetRunTimeout(t *testing.T) {
	cfg := fastFaultConfig(t, 3, nil)
	cfg.Timeout = time.Nanosecond
	_, err := runBounded(t, cfg)
	if err == nil {
		t.Fatal("an expired run deadline must produce an error")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("timeout error %q not descriptive", err)
	}
}

func TestFleet200SensorsRace(t *testing.T) {
	// The acceptance-scale smoke test: 200 concurrent sensors, one server,
	// default transport knobs, clean under -race.
	d := dataset.MustLoad("activity", dataset.Options{Seed: 9, MaxSequences: 200})
	cfg := FleetConfig{
		Base: RunConfig{
			Dataset: d, Policy: policy.NewUniform(0.5), Encoder: EncAGE,
			Cipher: seccomm.ChaCha20Stream, Rate: 0.5,
			Model: energy.Default(), Seed: 1,
		},
		Sensors: 200,
	}
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		for _, st := range res.Sensors {
			if !st.OK() {
				t.Errorf("sensor %d: %s", st.Sensor, st.Err())
			}
		}
		t.Fatalf("%d of 200 sensors failed", res.Failed)
	}
	if res.Messages != 200 {
		t.Errorf("Messages = %d, want 200", res.Messages)
	}
}

func TestFleetAGEZeroNMIAcrossSensors(t *testing.T) {
	// The attacker pools observations across the whole fleet; AGE's
	// protection must survive aggregation.
	res, err := RunFleet(fleetConfig(t, EncAGE, 3))
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := stats.NMI(labels, sizes); nmi != 0 {
		t.Errorf("fleet-wide AGE NMI = %g, want 0", nmi)
	}
}

func TestFleetStandardLeaksAcrossSensors(t *testing.T) {
	res, err := RunFleet(fleetConfig(t, EncStandard, 3))
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := stats.NMI(labels, sizes); nmi <= 0 {
		t.Error("fleet-wide standard encoding shows no leakage")
	}
}

func TestFleetKeysAreDistinct(t *testing.T) {
	a := fleetKey(0, seccomm.ChaCha20Stream)
	b := fleetKey(1, seccomm.ChaCha20Stream)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("sensors share a key")
	}
	if len(fleetKey(0, seccomm.AES128Block)) != 16 {
		t.Error("AES fleet key not 16 bytes")
	}
}

func TestFleetErrors(t *testing.T) {
	cfg := fleetConfig(t, EncAGE, 0)
	if _, err := RunFleet(cfg); err == nil {
		t.Error("zero sensors accepted")
	}
	cfg = fleetConfig(t, EncAGE, 10000)
	if _, err := RunFleet(cfg); err == nil {
		t.Error("fleet larger than dataset accepted")
	}
}

func TestFleetSingleSensorMatchesSocketPath(t *testing.T) {
	// A fleet of one is the plain socket pipeline.
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 3, MaxSequences: 12})
	var train [][][]float64
	for _, s := range d.Sequences {
		train = append(train, s.Values)
	}
	fit, err := policy.Fit(policy.KindLinear, train, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FleetConfig{
		Base: RunConfig{
			Dataset: d, Policy: policy.NewLinear(fit.Threshold), Encoder: EncAGE,
			Cipher: seccomm.ChaCha20Stream, Rate: 0.7, Model: energy.Default(), Seed: 1,
		},
		Sensors: 1,
	}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 12 {
		t.Errorf("messages = %d", res.Messages)
	}
}

// TestFleetMatchesDirectPipeline is the refactor's equivalence contract: a
// fixed-seed fleet run through the ingest server must reproduce, exactly,
// the result a sequential in-process pipeline computes — per-sensor MAE
// equal bit for bit, and the attacker's pooled size observations equal as
// multisets (cross-sensor interleaving is the only freedom concurrency
// gets).
func TestFleetMatchesDirectPipeline(t *testing.T) {
	const sensors = 4
	cfg := fleetConfig(t, EncAGE, sensors)
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}

	meta := cfg.Base.Dataset.Meta
	coreCfg := core.Config{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format,
		TargetBytes: core.TargetBytesForRate(cfg.Base.Rate, meta.SeqLen, meta.NumFeatures, meta.Format.Width),
	}
	parts := make([][]int, sensors)
	for i := range cfg.Base.Dataset.Sequences {
		parts[i%sensors] = append(parts[i%sensors], i)
	}
	wantSizes := map[int][]int{}
	for s := 0; s < sensors; s++ {
		encs, err := buildEncoder(cfg.Base.Encoder, coreCfg, cfg.Base.Cipher)
		if err != nil {
			t.Fatal(err)
		}
		sealer, err := seccomm.NewSealer(cfg.Base.Cipher, fleetKey(s, cfg.Base.Cipher))
		if err != nil {
			t.Fatal(err)
		}
		opener, err := seccomm.NewSealer(cfg.Base.Cipher, fleetKey(s, cfg.Base.Cipher))
		if err != nil {
			t.Fatal(err)
		}
		rng := newSeededRand(cfg.Base.Seed + int64(s))
		var acc reconstruct.Accumulator
		for _, si := range parts[s] {
			seq := cfg.Base.Dataset.Sequences[si]
			idx := cfg.Base.Policy.Sample(seq.Values, rng)
			vals := make([][]float64, len(idx))
			for i, ti := range idx {
				vals[i] = seq.Values[ti]
			}
			payload, err := encs.enc.Encode(core.Batch{Indices: idx, Values: vals})
			if err != nil {
				t.Fatal(err)
			}
			msg, err := sealer.Seal(payload)
			if err != nil {
				t.Fatal(err)
			}
			opened, err := opener.Open(msg)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := encs.dec.Decode(opened)
			if err != nil {
				t.Fatal(err)
			}
			recon, err := reconstruct.Linear(batch.Indices, batch.Values, meta.SeqLen, meta.NumFeatures)
			if err != nil {
				t.Fatal(err)
			}
			mae, err := reconstruct.MAE(recon, seq.Values)
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(mae, 1)
			wantSizes[seq.Label] = append(wantSizes[seq.Label], len(msg))
		}
		if got, want := res.PerSensorMAE[s], acc.MAE(); got != want {
			t.Errorf("sensor %d MAE = %v, direct pipeline computes %v (must be exactly equal)", s, got, want)
		}
	}
	if len(res.SizesByLabel) != len(wantSizes) {
		t.Fatalf("SizesByLabel has %d labels, want %d", len(res.SizesByLabel), len(wantSizes))
	}
	for label, want := range wantSizes {
		got := append([]int(nil), res.SizesByLabel[label]...)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("label %d: %d observations, want %d", label, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("label %d: size multiset diverges at %d: %d != %d", label, i, got[i], want[i])
			}
		}
	}
}
