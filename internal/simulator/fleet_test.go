package simulator

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/seccomm"
	"repro/internal/stats"
)

func fleetConfig(t *testing.T, enc EncoderKind, sensors int) FleetConfig {
	t.Helper()
	d, p := fixture(t, 0.7)
	return FleetConfig{
		Base: RunConfig{
			Dataset: d, Policy: p, Encoder: enc,
			Cipher: seccomm.ChaCha20Stream, Rate: 0.7,
			Model: energy.Default(), Seed: 1,
		},
		Sensors: sensors,
	}
}

func TestFleetDeliversEverything(t *testing.T) {
	cfg := fleetConfig(t, EncAGE, 4)
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != len(cfg.Base.Dataset.Sequences) {
		t.Errorf("server saw %d messages, want %d", res.Messages, len(cfg.Base.Dataset.Sequences))
	}
	for s, mae := range res.PerSensorMAE {
		if mae <= 0 {
			t.Errorf("sensor %d MAE = %g", s, mae)
		}
	}
	if res.Failed != 0 {
		t.Errorf("healthy fleet reports %d failed sensors", res.Failed)
	}
	for _, st := range res.Sensors {
		if !st.OK() {
			t.Errorf("sensor %d not OK: %s", st.Sensor, st.Err())
		}
		if st.DialAttempts < 1 {
			t.Errorf("sensor %d reports %d dial attempts", st.Sensor, st.DialAttempts)
		}
	}
}

// fastFaultConfig tightens the transport knobs so failure paths resolve in
// well under the 5-second budget the acceptance criteria demand.
func fastFaultConfig(t *testing.T, sensors int, faults *FleetFaults) FleetConfig {
	t.Helper()
	cfg := fleetConfig(t, EncAGE, sensors)
	cfg.IOTimeout = 300 * time.Millisecond
	cfg.DialTimeout = 300 * time.Millisecond
	cfg.DialAttempts = 2
	cfg.DialBackoff = 10 * time.Millisecond
	cfg.Faults = faults
	return cfg
}

// runBounded fails the test if RunFleet does not return within the
// acceptance deadline (a hang is exactly the bug this PR fixes).
func runBounded(t *testing.T, cfg FleetConfig) (*FleetResult, error) {
	t.Helper()
	type out struct {
		res *FleetResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := RunFleet(cfg)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(5 * time.Second):
		t.Fatal("RunFleet hung past the 5s acceptance deadline")
		return nil, nil
	}
}

func TestFleetSensorDiesMidStream(t *testing.T) {
	const victim = 1
	cfg := fastFaultConfig(t, 4, &FleetFaults{DieAfterFrames: map[int]int{victim: 1}})
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatalf("one dead sensor must degrade, not abort: %v", err)
	}
	if res.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (statuses: %+v)", res.Failed, res.Sensors)
	}
	st := res.Sensors[victim]
	if st.OK() || !strings.Contains(st.SensorErr, "died after 1 frames") {
		t.Errorf("victim status = %+v", st)
	}
	if st.Delivered != 1 {
		t.Errorf("victim delivered %d frames, want the 1 sent before dying", st.Delivered)
	}
	for _, other := range res.Sensors {
		if other.Sensor == victim {
			continue
		}
		if !other.OK() {
			t.Errorf("healthy sensor %d degraded: %s", other.Sensor, other.Err())
		}
	}
	// The pooled attacker view contains everything that was delivered.
	want := 0
	for _, st := range res.Sensors {
		want += st.Delivered
	}
	if res.Messages != want {
		t.Errorf("Messages = %d, want %d", res.Messages, want)
	}
}

func TestFleetSensorNeverDials(t *testing.T) {
	const ghost = 2
	cfg := fastFaultConfig(t, 4, &FleetFaults{NeverDial: map[int]bool{ghost: true}})
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sensors[ghost]
	if st.SensorErr == "" || st.Delivered != 0 || st.DialAttempts != 0 {
		t.Errorf("ghost status = %+v", st)
	}
	if res.Failed != 1 {
		t.Errorf("Failed = %d, want 1", res.Failed)
	}
	if res.PerSensorMAE[ghost] != 0 {
		t.Errorf("ghost MAE = %g, want 0", res.PerSensorMAE[ghost])
	}
}

func TestFleetSensorStallsReadDeadlineFires(t *testing.T) {
	const quiet = 0
	cfg := fastFaultConfig(t, 3, &FleetFaults{StallAfterFrames: map[int]int{quiet: 1}})
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sensors[quiet]
	if st.OK() {
		t.Fatalf("stalled sensor reported OK: %+v", st)
	}
	// The server must have been unblocked by its read deadline, not EOF.
	if !strings.Contains(st.ServerErr, "timeout") && !strings.Contains(st.ServerErr, "deadline") {
		t.Errorf("server error %q does not look like a deadline expiry", st.ServerErr)
	}
}

func TestFleetServerClosesEarly(t *testing.T) {
	const dropped = 0
	cfg := fastFaultConfig(t, 3, &FleetFaults{ServerCloseAfterFrames: map[int]int{dropped: 1}})
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sensors[dropped]
	if st.OK() || !strings.Contains(st.ServerErr, "server closed link") {
		t.Errorf("dropped status = %+v", st)
	}
	if res.Failed != 1 {
		t.Errorf("Failed = %d, want 1", res.Failed)
	}
}

func TestFleetAllSensorsFailReturnsError(t *testing.T) {
	cfg := fastFaultConfig(t, 3, &FleetFaults{
		NeverDial: map[int]bool{0: true, 1: true, 2: true},
	})
	res, err := runBounded(t, cfg)
	if err == nil {
		t.Fatal("a fleet in which every sensor failed must surface an error")
	}
	if !strings.Contains(err.Error(), "all 3 sensors failed") {
		t.Errorf("error %q not descriptive", err)
	}
	if res == nil || res.Failed != 3 {
		t.Errorf("partial result missing or wrong: %+v", res)
	}
}

func TestFleetContextCancellation(t *testing.T) {
	cfg := fastFaultConfig(t, 3, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts
	start := time.Now()
	_, err := RunFleetContext(ctx, cfg)
	if err == nil {
		t.Fatal("cancelled context must produce an error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
}

func TestFleetRunTimeout(t *testing.T) {
	cfg := fastFaultConfig(t, 3, nil)
	cfg.Timeout = time.Nanosecond
	_, err := runBounded(t, cfg)
	if err == nil {
		t.Fatal("an expired run deadline must produce an error")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("timeout error %q not descriptive", err)
	}
}

func TestDialWithBackoff(t *testing.T) {
	// Grab a loopback port that is guaranteed dead, then check both the
	// bounded-failure and immediate-success paths.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	live, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	go func() {
		for {
			c, err := live.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	cases := []struct {
		name        string
		addr        string
		wantErr     bool
		wantDials   int
		minDuration time.Duration
	}{
		{"dead address retries with backoff", deadAddr, true, 3, 25 * time.Millisecond},
		{"live address connects first try", live.Addr().String(), false, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := FleetConfig{
				DialTimeout:  200 * time.Millisecond,
				DialAttempts: 3,
				DialBackoff:  10 * time.Millisecond,
			}.withTransportDefaults()
			start := time.Now()
			conn, dials, err := dialWithBackoff(context.Background(), tc.addr, cfg)
			elapsed := time.Since(start)
			if conn != nil {
				conn.Close()
			}
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if dials != tc.wantDials {
				t.Errorf("dials = %d, want %d", dials, tc.wantDials)
			}
			// Two failed attempts sleep 10ms then 20ms before the third.
			if elapsed < tc.minDuration {
				t.Errorf("elapsed %v below backoff floor %v", elapsed, tc.minDuration)
			}
		})
	}
}

func TestWriteFrameRetryRecoversFromTimeout(t *testing.T) {
	// net.Pipe is unbuffered: the first write attempt times out with zero
	// bytes moved, then a late reader lets the bounded retry succeed.
	client, srv := net.Pipe()
	defer client.Close()
	defer srv.Close()
	cfg := FleetConfig{IOTimeout: 100 * time.Millisecond, WriteAttempts: 3}.withTransportDefaults()

	msg := []byte("sealed sensor frame")
	got := make(chan []byte, 1)
	go func() {
		time.Sleep(150 * time.Millisecond) // outlive attempt 1's deadline
		frame, err := seccomm.ReadFrame(srv)
		if err != nil {
			got <- nil
			return
		}
		got <- frame
	}()
	attempts, err := writeFrameRetry(context.Background(), client, msg, cfg)
	if err != nil {
		t.Fatalf("bounded retry failed: %v", err)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d, want at least 2 (first write must have timed out)", attempts)
	}
	if frame := <-got; string(frame) != string(msg) {
		t.Errorf("reader got %q, want %q", frame, msg)
	}
}

func TestWriteFrameRetryGivesUp(t *testing.T) {
	client, srv := net.Pipe()
	defer client.Close()
	defer srv.Close() // no reader ever appears
	cfg := FleetConfig{IOTimeout: 30 * time.Millisecond, WriteAttempts: 2}.withTransportDefaults()
	start := time.Now()
	_, err := writeFrameRetry(context.Background(), client, []byte("frame"), cfg)
	if err == nil {
		t.Fatal("write against a dead peer succeeded")
	}
	if !strings.Contains(err.Error(), "2 attempts") {
		t.Errorf("error %q does not report the attempt budget", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("bounded retry took %v", elapsed)
	}
}

func TestFleet200SensorsRace(t *testing.T) {
	// The acceptance-scale smoke test: 200 concurrent sensors, one server,
	// default transport knobs, clean under -race.
	d := dataset.MustLoad("activity", dataset.Options{Seed: 9, MaxSequences: 200})
	cfg := FleetConfig{
		Base: RunConfig{
			Dataset: d, Policy: policy.NewUniform(0.5), Encoder: EncAGE,
			Cipher: seccomm.ChaCha20Stream, Rate: 0.5,
			Model: energy.Default(), Seed: 1,
		},
		Sensors: 200,
	}
	res, err := runBounded(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		for _, st := range res.Sensors {
			if !st.OK() {
				t.Errorf("sensor %d: %s", st.Sensor, st.Err())
			}
		}
		t.Fatalf("%d of 200 sensors failed", res.Failed)
	}
	if res.Messages != 200 {
		t.Errorf("Messages = %d, want 200", res.Messages)
	}
}

func TestFleetAGEZeroNMIAcrossSensors(t *testing.T) {
	// The attacker pools observations across the whole fleet; AGE's
	// protection must survive aggregation.
	res, err := RunFleet(fleetConfig(t, EncAGE, 3))
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := stats.NMI(labels, sizes); nmi != 0 {
		t.Errorf("fleet-wide AGE NMI = %g, want 0", nmi)
	}
}

func TestFleetStandardLeaksAcrossSensors(t *testing.T) {
	res, err := RunFleet(fleetConfig(t, EncStandard, 3))
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := stats.NMI(labels, sizes); nmi <= 0 {
		t.Error("fleet-wide standard encoding shows no leakage")
	}
}

func TestFleetKeysAreDistinct(t *testing.T) {
	a := fleetKey(0, seccomm.ChaCha20Stream)
	b := fleetKey(1, seccomm.ChaCha20Stream)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("sensors share a key")
	}
	if len(fleetKey(0, seccomm.AES128Block)) != 16 {
		t.Error("AES fleet key not 16 bytes")
	}
}

func TestFleetErrors(t *testing.T) {
	cfg := fleetConfig(t, EncAGE, 0)
	if _, err := RunFleet(cfg); err == nil {
		t.Error("zero sensors accepted")
	}
	cfg = fleetConfig(t, EncAGE, 10000)
	if _, err := RunFleet(cfg); err == nil {
		t.Error("fleet larger than dataset accepted")
	}
}

func TestFleetSingleSensorMatchesSocketPath(t *testing.T) {
	// A fleet of one is the plain socket pipeline.
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 3, MaxSequences: 12})
	var train [][][]float64
	for _, s := range d.Sequences {
		train = append(train, s.Values)
	}
	fit, err := policy.Fit(policy.KindLinear, train, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FleetConfig{
		Base: RunConfig{
			Dataset: d, Policy: policy.NewLinear(fit.Threshold), Encoder: EncAGE,
			Cipher: seccomm.ChaCha20Stream, Rate: 0.7, Model: energy.Default(), Seed: 1,
		},
		Sensors: 1,
	}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 12 {
		t.Errorf("messages = %d", res.Messages)
	}
}
