package simulator

import "math/rand"

// newSeededRand returns a deterministic rand for per-sequence sampling in
// socket mode, so the sensor's choices are reproducible across runs.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
