package simulator

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/fixedpoint"
	"repro/internal/policy"
	"repro/internal/seccomm"
	"repro/internal/stats"
)

// fixture loads a small Epilepsy slice and fits a Linear policy at the rate.
func fixture(t *testing.T, rate float64) (*dataset.Dataset, policy.Policy) {
	t.Helper()
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 3, MaxSequences: 24})
	var train [][][]float64
	for _, s := range d.Sequences {
		train = append(train, s.Values)
	}
	res, err := policy.Fit(policy.KindLinear, train, rate)
	if err != nil {
		t.Fatal(err)
	}
	return d, policy.NewLinear(res.Threshold)
}

func baseConfig(d *dataset.Dataset, p policy.Policy, enc EncoderKind, rate float64) RunConfig {
	return RunConfig{
		Dataset: d, Policy: p, Encoder: enc,
		Cipher: seccomm.ChaCha20Stream, Rate: rate,
		Model: energy.Default(), Mode: ModeSimulation, Seed: 1,
	}
}

func TestRunStandardVariesSizes(t *testing.T) {
	d, p := fixture(t, 0.7)
	res, err := Run(baseConfig(d, p, EncStandard, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	for _, sr := range res.Seqs {
		if sr.WireBytes > 0 {
			sizes[sr.WireBytes] = true
		}
	}
	if len(sizes) < 3 {
		t.Errorf("standard encoder produced only %d distinct sizes; expected variety", len(sizes))
	}
	if res.MAE <= 0 {
		t.Errorf("MAE = %g", res.MAE)
	}
}

func TestRunAGEFixedSizes(t *testing.T) {
	d, p := fixture(t, 0.7)
	res, err := Run(baseConfig(d, p, EncAGE, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	var size int
	for _, sr := range res.Seqs {
		if sr.WireBytes == 0 {
			continue
		}
		if size == 0 {
			size = sr.WireBytes
		}
		if sr.WireBytes != size {
			t.Fatalf("AGE wire sizes differ: %d vs %d", sr.WireBytes, size)
		}
	}
	if size == 0 {
		t.Fatal("no messages sent")
	}
	// NMI between label and size must be exactly zero.
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := stats.NMI(labels, sizes); nmi != 0 {
		t.Errorf("AGE NMI = %g, want 0", nmi)
	}
}

func TestRunStandardLeaks(t *testing.T) {
	d, p := fixture(t, 0.7)
	res, err := Run(baseConfig(d, p, EncStandard, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := stats.NMI(labels, sizes); nmi <= 0 {
		t.Errorf("standard adaptive policy NMI = %g; expected leakage", nmi)
	}
}

func TestRunAGEWithinBudget(t *testing.T) {
	d, p := fixture(t, 0.5)
	res, err := Run(baseConfig(d, p, EncAGE, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations > 0 {
		t.Errorf("AGE violated the budget %d times", res.Violations)
	}
	if res.TotalEnergyMJ > res.BudgetMJ {
		t.Errorf("AGE energy %g exceeds budget %g", res.TotalEnergyMJ, res.BudgetMJ)
	}
}

func TestRunPaddedViolatesTightBudget(t *testing.T) {
	d, p := fixture(t, 0.3)
	res, err := Run(baseConfig(d, p, EncPadded, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Error("padded policy never violated a 30% budget; padding overhead should exceed it")
	}
	// And its error should be far worse than AGE's under the same budget.
	ageRes, err := Run(baseConfig(d, p, EncAGE, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if ageRes.MAE >= res.MAE {
		t.Errorf("AGE MAE %g not below Padded %g under a tight budget", ageRes.MAE, res.MAE)
	}
}

func TestRunUniformZeroNMI(t *testing.T) {
	d, _ := fixture(t, 0.7)
	cfg := baseConfig(d, policy.NewUniform(0.7), EncStandard, 0.7)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var labels, sizes []int
	for l, ss := range res.SizesByLabel {
		for _, s := range ss {
			labels = append(labels, l)
			sizes = append(sizes, s)
		}
	}
	if nmi := stats.NMI(labels, sizes); nmi != 0 {
		t.Errorf("Uniform NMI = %g, want 0 (fixed collection count)", nmi)
	}
}

func TestRunMCUModeKeepsRunning(t *testing.T) {
	d, p := fixture(t, 0.3)
	cfg := baseConfig(d, p, EncPadded, 0.3)
	cfg.Mode = ModeMCU
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every sequence must have consumed real energy in MCU mode.
	for i, sr := range res.Seqs {
		if sr.EnergyMJ <= 0 {
			t.Fatalf("sequence %d consumed no energy in MCU mode", i)
		}
	}
	// Total energy may exceed the budget (the Table 9 padded phenomenon).
	if res.TotalEnergyMJ <= res.BudgetMJ {
		t.Log("note: padded stayed within budget on this slice")
	}
}

func TestRunBlockCipher(t *testing.T) {
	d, p := fixture(t, 0.7)
	cfg := baseConfig(d, p, EncAGE, 0.7)
	cfg.Cipher = seccomm.AES128Block
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var size int
	for _, sr := range res.Seqs {
		if sr.WireBytes == 0 {
			continue
		}
		if size == 0 {
			size = sr.WireBytes
		}
		if sr.WireBytes != size {
			t.Fatalf("AGE+AES sizes differ: %d vs %d", sr.WireBytes, size)
		}
	}
	// Wire size = IV + whole blocks.
	if (size-16)%16 != 0 {
		t.Errorf("AES wire size %d not block aligned", size)
	}
}

func TestRunRejectsEmptyDataset(t *testing.T) {
	_, p := fixture(t, 0.5)
	cfg := baseConfig(&dataset.Dataset{}, p, EncAGE, 0.5)
	if _, err := Run(cfg); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	d, p := fixture(t, 0.6)
	a, err := Run(baseConfig(d, p, EncAGE, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(d, p, EncAGE, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if a.MAE != b.MAE || a.TotalEnergyMJ != b.TotalEnergyMJ {
		t.Error("identical configs produced different results")
	}
}

func TestVariantsErrorOrdering(t *testing.T) {
	// Table 8's qualitative claim on one workload: AGE <= Single and AGE
	// <= Pruned in reconstruction error under the same fixed size.
	d, p := fixture(t, 0.4)
	mae := map[EncoderKind]float64{}
	for _, enc := range []EncoderKind{EncAGE, EncSingle, EncPruned} {
		res, err := Run(baseConfig(d, p, enc, 0.4))
		if err != nil {
			t.Fatal(err)
		}
		mae[enc] = res.MAE
	}
	if mae[EncAGE] > mae[EncSingle]*1.02 {
		t.Errorf("AGE MAE %g above Single %g", mae[EncAGE], mae[EncSingle])
	}
	if mae[EncAGE] > mae[EncPruned]*1.02 {
		t.Errorf("AGE MAE %g above Pruned %g", mae[EncAGE], mae[EncPruned])
	}
}

func TestRandomGuessMAE(t *testing.T) {
	// Guessing uniformly in [0,1] against truth 0.5: E|U-0.5| = 0.25.
	truth := [][]float64{{0.5}}
	if got := randomGuessMAE(truth, 0, 1); got != 0.25 {
		t.Errorf("randomGuessMAE = %g, want 0.25", got)
	}
	// Against truth at an endpoint: E|U-0| = 0.5.
	if got := randomGuessMAE([][]float64{{0}}, 0, 1); got != 0.5 {
		t.Errorf("endpoint guess = %g, want 0.5", got)
	}
	if got := randomGuessMAE(truth, 1, 1); got != 0 {
		t.Errorf("degenerate range = %g", got)
	}
}

func TestRunOverSocketMatchesInProcess(t *testing.T) {
	d, p := fixture(t, 0.7)
	cfg := baseConfig(d, p, EncAGE, 0.7)
	sock, err := RunOverSocket(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sock.MAE <= 0 {
		t.Errorf("socket MAE = %g", sock.MAE)
	}
	// AGE sizes over the socket are fixed too.
	var size int
	for _, ss := range sock.SizesByLabel {
		for _, s := range ss {
			if size == 0 {
				size = s
			}
			if s != size {
				t.Fatalf("socket sizes differ: %d vs %d", s, size)
			}
		}
	}
}

func TestRunOverSocketStandard(t *testing.T) {
	d, p := fixture(t, 0.7)
	cfg := baseConfig(d, p, EncStandard, 0.7)
	sock, err := RunOverSocket(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ss := range sock.SizesByLabel {
		total += len(ss)
	}
	if total != len(d.Sequences) {
		t.Errorf("server received %d messages, want %d", total, len(d.Sequences))
	}
}

func TestBuildEncoderUnknown(t *testing.T) {
	cfg := core.Config{T: 10, D: 1, Format: fixedpoint.Format{Width: 16, NonFrac: 3}, TargetBytes: 64}
	if _, err := buildEncoder("mystery", cfg, seccomm.ChaCha20Stream); err == nil {
		t.Error("unknown encoder accepted")
	}
}

func BenchmarkRunAGEEpilepsy(b *testing.B) {
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 3, MaxSequences: 12})
	var train [][][]float64
	for _, s := range d.Sequences {
		train = append(train, s.Values)
	}
	res, err := policy.Fit(policy.KindLinear, train, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	cfg := RunConfig{
		Dataset: d, Policy: policy.NewLinear(res.Threshold), Encoder: EncAGE,
		Cipher: seccomm.ChaCha20Stream, Rate: 0.7, Model: energy.Default(), Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunKeepRecons(t *testing.T) {
	d, p := fixture(t, 0.7)
	cfg := baseConfig(d, p, EncAGE, 0.7)
	cfg.KeepRecons = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range res.Seqs {
		if sr.Violated {
			continue
		}
		if len(sr.Recon) != d.Meta.SeqLen {
			t.Fatalf("sequence %d recon has %d steps", i, len(sr.Recon))
		}
	}
	// Without the flag, reconstructions are not retained.
	cfg.KeepRecons = false
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seqs[0].Recon != nil {
		t.Error("recon retained without KeepRecons")
	}
}

func TestRunMinWidthOverride(t *testing.T) {
	// A larger w_min forces harsher pruning under a tight budget, so the
	// delivered measurement count must not increase.
	d, p := fixture(t, 0.3)
	base := baseConfig(d, p, EncAGE, 0.3)
	narrow, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	wide := base
	wide.MinWidth = 12
	wideRes, err := Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.MAE == wideRes.MAE {
		t.Log("note: w_min override did not change MAE on this slice")
	}
	// Both stay fixed-size and budget-clean.
	if wideRes.Violations > 0 {
		t.Errorf("w_min=12 run violated budget %d times", wideRes.Violations)
	}
}
