// Package simulator runs the paper's end-to-end evaluation pipeline: an
// adaptive sampling policy on the sensor, an encoder (Standard, Padded, AGE,
// or an ablation variant), an encryption layer, a wire whose message sizes
// an attacker observes, energy accounting against a budget, and server-side
// reconstruction (§5.1).
//
// Two operating modes mirror the paper's two testbeds. In simulation mode
// the sensor stops transmitting once the budget is exhausted and the server
// substitutes random values for the remaining sequences. In MCU mode the
// device keeps running so true per-sequence energy can be measured (the
// paper's Padded rows in Table 9 exceed their budgets for exactly this
// reason), while the error accounting still applies the random-value penalty
// after the violation point (Table 10).
package simulator

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/reconstruct"
	"repro/internal/seccomm"
)

// EncoderKind names the encoder under test. It aliases core.Kind so the
// kind-switch lives in one place (core.NewEncoder); this package only adds
// the paper's target sizing on top.
type EncoderKind = core.Kind

// The six evaluated encoders.
const (
	EncStandard  = core.KindStandard
	EncPadded    = core.KindPadded
	EncAGE       = core.KindAGE
	EncSingle    = core.KindSingle
	EncUnshifted = core.KindUnshifted
	EncPruned    = core.KindPruned
)

// Mode selects the evaluation testbed behavior.
type Mode int

// The two testbeds.
const (
	// ModeSimulation stops the sensor at budget violation (§5.1).
	ModeSimulation Mode = iota
	// ModeMCU keeps the sensor running to measure true energy (§5.7).
	ModeMCU
)

// RunConfig describes one policy/encoder/budget evaluation run.
type RunConfig struct {
	Dataset *dataset.Dataset
	Policy  policy.Policy
	Encoder EncoderKind
	Cipher  seccomm.CipherKind
	// Rate is the budget's Uniform collection fraction (0.3 .. 1.0).
	Rate  float64
	Model energy.Model
	Mode  Mode
	Seed  int64
	// MinWidth and MinGroups override AGE's w_min and G_0 when nonzero
	// (used by the sensitivity ablations).
	MinWidth, MinGroups int
	// KeepRecons stores each sequence's server-side reconstruction in the
	// result (memory-heavy; used by the inference-utility experiment).
	KeepRecons bool
	// IOTimeout bounds each frame read/write in socket mode (RunOverSocket
	// and the Sensor/Server actors); zero selects a generous default. The
	// in-process Run ignores it.
	IOTimeout time.Duration
	// Metrics, when non-nil, receives codec and transport instrumentation
	// (encode/decode latency, frame and byte counts, per-sensor series in
	// fleet mode). Metrics are observation-only: they never feed back into
	// sampling, encoding, or scheduling, so enabling them cannot change any
	// run's output.
	Metrics *metrics.Registry
}

// SequenceResult records one sequence's outcome.
type SequenceResult struct {
	Label     int //age:secret
	Collected int
	// WireBytes is the attacker-observed message size; 0 when no message
	// was sent (post-violation in simulation mode).
	WireBytes int
	MAE       float64
	Weight    float64 // sequence standard deviation, for Table 5
	EnergyMJ  float64
	Violated  bool
	// Recon holds the server's reconstruction when RunConfig.KeepRecons
	// is set (nil after a violation in simulation mode).
	Recon [][]float64
}

// RunResult aggregates a full run.
type RunResult struct {
	Config        RunConfig
	Seqs          []SequenceResult
	MAE           float64
	WeightedMAE   float64
	TotalEnergyMJ float64
	BudgetMJ      float64
	// SizesByLabel collects attacker-observed sizes of sent messages.
	SizesByLabel map[int][]int //age:secret
	Violations   int
}

// encoderSet bundles the encoder/decoder pair for a run.
type encoderSet struct {
	enc core.Encoder
	dec core.Decoder
}

// buildEncoder constructs the configured encoder with the paper's target
// sizing: M_B from the budget rate, AGE's §4.5 reduction for all
// size-standardizing quantizers, and block rounding for block ciphers. The
// construction itself is core.NewEncoder — the kind-switch lives there.
func buildEncoder(kind EncoderKind, cfg core.Config, cipher seccomm.CipherKind) (encoderSet, error) {
	if kind != EncStandard && kind != EncPadded {
		cfg.TargetBytes = seccomm.RoundTargetToCipher(core.ReduceTarget(cfg.TargetBytes), cipher)
	}
	enc, dec, err := core.NewEncoder(kind, cfg)
	if err != nil {
		return encoderSet{}, fmt.Errorf("simulator: %w", err)
	}
	return encoderSet{enc, dec}, nil
}

// buildInstrumentedEncoder is buildEncoder plus the registry's codec
// instrument family for the encoder kind: Encode/Decode latency histograms
// and throughput counters under core.<kind>.*, and for AGE the §4 pipeline
// counters (groups formed, measurements pruned). A nil registry returns the
// bare codec. The wrapper preserves the zero-alloc reuse paths and is
// invisible on the wire.
func buildInstrumentedEncoder(kind EncoderKind, cfg core.Config, cipher seccomm.CipherKind, reg *metrics.Registry) (encoderSet, error) {
	encs, err := buildEncoder(kind, cfg, cipher)
	if err != nil || reg == nil {
		return encs, err
	}
	if a, ok := encs.enc.(*core.AGE); ok {
		a.InstrumentPipeline(
			reg.Counter("core.age.groups_formed"),
			reg.Counter("core.age.pruned_measurements"),
		)
	}
	encs.enc, encs.dec = core.InstrumentCodec(encs.enc, encs.dec, core.NewCodecMetrics(reg, string(kind)))
	return encs, nil
}

// computeKind maps an encoder to its MCU compute-energy class: the
// multi-step quantizing encoders pay AGE's encode cost, the direct writers
// pay the standard cost.
func computeKind(kind EncoderKind) energy.EncoderKind {
	switch kind {
	case EncAGE, EncSingle, EncUnshifted, EncPruned:
		return energy.EncodeAGE
	default:
		return energy.EncodeStandard
	}
}

// Run executes the configured evaluation in-process (sampling, encoding,
// sealing, unsealing, decoding, reconstruction, energy accounting).
func Run(cfg RunConfig) (*RunResult, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a caller context. The in-process pipeline has no
// transport to sever, so cancellation is checked between sequences; the
// partial result folded so far is returned alongside the cancellation error,
// mirroring RunFleetContext.
func RunContext(ctx context.Context, cfg RunConfig) (*RunResult, error) {
	if cfg.Dataset == nil || len(cfg.Dataset.Sequences) == 0 {
		return nil, fmt.Errorf("simulator: empty dataset")
	}
	meta := cfg.Dataset.Meta
	coreCfg := core.Config{
		T: meta.SeqLen, D: meta.NumFeatures, Format: meta.Format,
		TargetBytes: core.TargetBytesForRate(cfg.Rate, meta.SeqLen, meta.NumFeatures, meta.Format.Width),
		MinWidth:    cfg.MinWidth, MinGroups: cfg.MinGroups,
	}
	encs, err := buildInstrumentedEncoder(cfg.Encoder, coreCfg, cfg.Cipher, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	sealer, opener, err := sealerPair(cfg.Cipher)
	if err != nil {
		return nil, err
	}

	// Budget per §5.1: the energy a Uniform policy spends at this rate.
	payloadAt := func(k int) int {
		return sealer.WireSize(core.StandardPayloadBytes(k, meta.SeqLen, meta.NumFeatures, meta.Format.Width))
	}
	perSeq, err := cfg.Model.UniformSequenceMJ(meta.SeqLen, meta.NumFeatures, cfg.Rate, payloadAt)
	if err != nil {
		return nil, fmt.Errorf("simulator: budget: %w", err)
	}
	budget := perSeq * float64(len(cfg.Dataset.Sequences))
	meter := energy.NewMeter(budget)

	lo, hi := datasetRange(cfg.Dataset)
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &RunResult{
		Config:       cfg,
		BudgetMJ:     budget,
		SizesByLabel: map[int][]int{},
	}
	// Per-run scratch: the encode buffer, the gathered value rows, and the
	// decoded batch are reused across sequences so the steady-state loop
	// stops allocating per batch (the encoders' AppendEncode/DecodeInto
	// reuse paths make this safe; non-reusable encoders fall back to the
	// allocating path).
	appender, canAppend := encs.enc.(core.AppendEncoder)
	intoDec, canDecodeInto := encs.dec.(core.IntoDecoder)
	var payloadBuf []byte
	var vals [][]float64
	var decoded core.Batch

	var acc reconstruct.Accumulator
	violated := false
	for _, seq := range cfg.Dataset.Sequences {
		if cerr := ctx.Err(); cerr != nil {
			res.MAE = acc.MAE()
			res.WeightedMAE = acc.WeightedMAE()
			return res, fmt.Errorf("simulator: run cancelled: %w", cerr)
		}
		sr := SequenceResult{Label: seq.Label, Weight: reconstruct.SequenceStdDev(seq.Values)}
		if violated && cfg.Mode == ModeSimulation {
			// Out of budget: the server guesses random values.
			sr.Violated = true
			sr.MAE = randomGuessMAE(seq.Values, lo, hi)
			res.Violations++
			res.Seqs = append(res.Seqs, sr)
			acc.Add(sr.MAE, sr.Weight)
			continue
		}
		idx := cfg.Policy.Sample(seq.Values, rng)
		vals = vals[:0]
		for _, t := range idx {
			vals = append(vals, seq.Values[t])
		}
		var payload []byte
		var err error
		if canAppend {
			payload, err = appender.AppendEncode(payloadBuf[:0], core.Batch{Indices: idx, Values: vals})
			payloadBuf = payload
		} else {
			payload, err = encs.enc.Encode(core.Batch{Indices: idx, Values: vals})
		}
		if err != nil {
			return nil, fmt.Errorf("simulator: encode: %w", err)
		}
		msg, err := sealer.Seal(payload)
		if err != nil {
			return nil, fmt.Errorf("simulator: seal: %w", err)
		}
		sr.Collected = len(idx)
		sr.WireBytes = len(msg)
		sr.EnergyMJ, err = cfg.Model.SequenceMJ(len(idx), meta.NumFeatures, len(msg), computeKind(cfg.Encoder))
		if err != nil {
			return nil, fmt.Errorf("simulator: energy: %w", err)
		}
		meter.Charge(sr.EnergyMJ)
		res.TotalEnergyMJ += sr.EnergyMJ

		// Server side.
		opened, err := opener.Open(msg)
		if err != nil {
			return nil, fmt.Errorf("simulator: open: %w", err)
		}
		var batch core.Batch
		if canDecodeInto {
			if err := intoDec.DecodeInto(&decoded, opened); err != nil {
				return nil, fmt.Errorf("simulator: decode: %w", err)
			}
			batch = decoded
		} else {
			batch, err = encs.dec.Decode(opened)
			if err != nil {
				return nil, fmt.Errorf("simulator: decode: %w", err)
			}
		}
		recon, err := reconstruct.Linear(batch.Indices, batch.Values, meta.SeqLen, meta.NumFeatures)
		if err != nil {
			return nil, fmt.Errorf("simulator: reconstruct: %w", err)
		}
		mae, err := reconstruct.MAE(recon, seq.Values)
		if err != nil {
			return nil, err
		}
		sr.MAE = mae
		if cfg.KeepRecons {
			sr.Recon = recon
		}
		if violated && cfg.Mode == ModeMCU {
			// MCU mode: the device kept running (energy above is
			// real) but the error accounting applies the
			// random-value penalty (§5.7 enforcement).
			sr.Violated = true
			sr.MAE = randomGuessMAE(seq.Values, lo, hi)
			res.Violations++
		} else {
			res.SizesByLabel[seq.Label] = append(res.SizesByLabel[seq.Label], len(msg))
		}
		acc.Add(sr.MAE, sr.Weight)
		res.Seqs = append(res.Seqs, sr)
		if meter.Exceeded() {
			violated = true
		}
	}
	res.MAE = acc.MAE()
	res.WeightedMAE = acc.WeightedMAE()
	return res, nil
}

// sealerPair builds matching sensor/server sealers with the run's shared key.
func sealerPair(kind seccomm.CipherKind) (seccomm.Sealer, seccomm.Sealer, error) {
	keyLen := 32
	if kind == seccomm.AES128Block {
		keyLen = 16
	}
	key := make([]byte, keyLen)
	for i := range key {
		key[i] = byte(i*37 + 11)
	}
	sealer, err := seccomm.NewSealer(kind, key)
	if err != nil {
		return nil, nil, err
	}
	opener, err := seccomm.NewSealer(kind, key)
	if err != nil {
		return nil, nil, err
	}
	return sealer, opener, nil
}

// datasetRange returns the min and max raw value across the dataset, the
// support of the server's random guessing after a budget violation.
func datasetRange(d *dataset.Dataset) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range d.Sequences {
		for _, row := range s.Values {
			for _, v := range row {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	if lo > hi {
		lo, hi = 0, 0
	}
	return lo, hi
}

// randomGuessMAE returns the expected MAE of guessing uniformly in [lo, hi]
// against the true sequence: E|U - x| = ((x-lo)^2 + (hi-x)^2) / (2(hi-lo)).
func randomGuessMAE(truth [][]float64, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	span := hi - lo
	var sum float64
	var n int
	for _, row := range truth {
		for _, x := range row {
			a, b := x-lo, hi-x
			sum += (a*a + b*b) / (2 * span)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
