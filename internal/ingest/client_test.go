package ingest

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/seccomm"
)

func TestDialWithBackoff(t *testing.T) {
	// Grab a loopback port that is guaranteed dead, then check both the
	// bounded-failure and immediate-success paths.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	live, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	go func() {
		for {
			c, err := live.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	cases := []struct {
		name        string
		addr        string
		wantErr     bool
		wantDials   int
		minDuration time.Duration
	}{
		{"dead address retries with backoff", deadAddr, true, 3, 25 * time.Millisecond},
		{"live address connects first try", live.Addr().String(), false, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ClientConfig{
				Addr:         tc.addr,
				DialTimeout:  200 * time.Millisecond,
				DialAttempts: 3,
				DialBackoff:  10 * time.Millisecond,
			}.withDefaults()
			start := time.Now()
			conn, dials, err := dialWithBackoff(context.Background(), cfg)
			elapsed := time.Since(start)
			if conn != nil {
				conn.Close()
			}
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if dials != tc.wantDials {
				t.Errorf("dials = %d, want %d", dials, tc.wantDials)
			}
			// Two failed attempts sleep 10ms then 20ms before the third.
			if elapsed < tc.minDuration {
				t.Errorf("elapsed %v below backoff floor %v", elapsed, tc.minDuration)
			}
		})
	}
}

func TestWriteFrameRetryRecoversFromTimeout(t *testing.T) {
	// net.Pipe is unbuffered: the first write attempt times out with zero
	// bytes moved, then a late reader lets the bounded retry succeed.
	client, srv := net.Pipe()
	defer client.Close()
	defer srv.Close()
	cfg := ClientConfig{IOTimeout: 100 * time.Millisecond, WriteAttempts: 3}.withDefaults()

	msg := []byte("sealed sensor frame")
	buf, err := seccomm.AppendFrame(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		time.Sleep(150 * time.Millisecond) // outlive attempt 1's deadline
		frame, err := seccomm.ReadFrame(srv)
		if err != nil {
			got <- nil
			return
		}
		got <- frame
	}()
	attempts, err := writeChunkRetry(context.Background(), client, buf, cfg)
	if err != nil {
		t.Fatalf("bounded retry failed: %v", err)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d, want at least 2 (first write must have timed out)", attempts)
	}
	if frame := <-got; string(frame) != string(msg) {
		t.Errorf("reader got %q, want %q", frame, msg)
	}
}

func TestWriteFrameRetryGivesUp(t *testing.T) {
	client, srv := net.Pipe()
	defer client.Close()
	defer srv.Close() // no reader ever appears
	cfg := ClientConfig{IOTimeout: 30 * time.Millisecond, WriteAttempts: 2}.withDefaults()
	start := time.Now()
	_, err := writeChunkRetry(context.Background(), client, []byte("frame"), cfg)
	if err == nil {
		t.Fatal("write against a dead peer succeeded")
	}
	if !strings.Contains(err.Error(), "2 attempts") {
		t.Errorf("error %q does not report the attempt budget", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("bounded retry took %v", elapsed)
	}
}

func TestTerminalMarksAndUnwraps(t *testing.T) {
	base := &RejectedError{Status: StatusRefused}
	err := Terminal(base)
	if !IsTerminal(err) {
		t.Fatal("Terminal-wrapped error not recognized by IsTerminal")
	}
	var rej *RejectedError
	if got := err.Error(); !strings.Contains(got, "refused") {
		t.Errorf("error text %q lost the status", got)
	}
	if !errors.As(err, &rej) {
		t.Error("Terminal wrapper hides the RejectedError from errors.As")
	}
	if IsTerminal(base) {
		t.Error("unwrapped error reported terminal")
	}
	if Terminal(nil) != nil {
		t.Error("Terminal(nil) should be nil")
	}
}

func TestStatusStringsAndTransience(t *testing.T) {
	transient := map[Status]bool{
		StatusAccept:     false,
		StatusOverloaded: true,
		StatusDuplicate:  true,
		StatusDraining:   true,
		StatusRefused:    false,
	}
	for st, want := range transient {
		if st.Transient() != want {
			t.Errorf("%v.Transient() = %v, want %v", st, st.Transient(), want)
		}
		if strings.HasPrefix(st.String(), "status(") {
			t.Errorf("status %d has no name", uint8(st))
		}
	}
	if got := Status(99).String(); got != "status(99)" {
		t.Errorf("unknown status prints %q", got)
	}
}
