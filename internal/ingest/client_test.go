package ingest

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/seccomm"
)

func TestDialWithBackoff(t *testing.T) {
	// Grab a loopback port that is guaranteed dead, then check both the
	// bounded-failure and immediate-success paths.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	live, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	go func() {
		for {
			c, err := live.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	cases := []struct {
		name        string
		addr        string
		wantErr     bool
		wantDials   int
		minDuration time.Duration
	}{
		{"dead address retries with backoff", deadAddr, true, 3, 15 * time.Millisecond},
		{"live address connects first try", live.Addr().String(), false, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ClientConfig{
				Addr:         tc.addr,
				DialTimeout:  200 * time.Millisecond,
				DialAttempts: 3,
				DialBackoff:  10 * time.Millisecond,
			}.withDefaults()
			start := time.Now()
			conn, dials, err := dialWithBackoff(context.Background(), cfg, rand.New(rand.NewSource(1)))
			elapsed := time.Since(start)
			if conn != nil {
				conn.Close()
			}
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if dials != tc.wantDials {
				t.Errorf("dials = %d, want %d", dials, tc.wantDials)
			}
			// Two failed attempts pause in [5,10]ms then [10,20]ms (equal
			// jitter over 10ms and 20ms backoffs) before the third.
			if elapsed < tc.minDuration {
				t.Errorf("elapsed %v below backoff floor %v", elapsed, tc.minDuration)
			}
		})
	}
}

func TestWriteFrameRetryRecoversFromTimeout(t *testing.T) {
	// net.Pipe is unbuffered: the first write attempt times out with zero
	// bytes moved, then a late reader lets the bounded retry succeed.
	client, srv := net.Pipe()
	defer client.Close()
	defer srv.Close()
	cfg := ClientConfig{IOTimeout: 100 * time.Millisecond, WriteAttempts: 3}.withDefaults()

	msg := []byte("sealed sensor frame")
	buf, err := seccomm.AppendFrame(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		time.Sleep(150 * time.Millisecond) // outlive attempt 1's deadline
		frame, err := seccomm.ReadFrame(srv)
		if err != nil {
			got <- nil
			return
		}
		got <- frame
	}()
	attempts, err := writeChunkRetry(context.Background(), client, buf, cfg)
	if err != nil {
		t.Fatalf("bounded retry failed: %v", err)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d, want at least 2 (first write must have timed out)", attempts)
	}
	if frame := <-got; string(frame) != string(msg) {
		t.Errorf("reader got %q, want %q", frame, msg)
	}
}

func TestWriteFrameRetryGivesUp(t *testing.T) {
	client, srv := net.Pipe()
	defer client.Close()
	defer srv.Close() // no reader ever appears
	cfg := ClientConfig{IOTimeout: 30 * time.Millisecond, WriteAttempts: 2}.withDefaults()
	start := time.Now()
	_, err := writeChunkRetry(context.Background(), client, []byte("frame"), cfg)
	if err == nil {
		t.Fatal("write against a dead peer succeeded")
	}
	if !strings.Contains(err.Error(), "2 attempts") {
		t.Errorf("error %q does not report the attempt budget", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("bounded retry took %v", elapsed)
	}
}

// timeoutError satisfies net.Error with Timeout() == true, the shape
// seccomm.IsTimeout looks for.
type timeoutError struct{}

func (timeoutError) Error() string   { return "deadline exceeded (test)" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// partialWriteConn is a net.Conn whose first Write transmits only part of
// the buffer before reporting a timeout — the failure mode of a real socket
// whose send buffer drained mid-write as the deadline expired. Every byte
// it accepts is recorded, so a test can prove the retry path resumed from
// the offset instead of resending the prefix.
type partialWriteConn struct {
	net.Conn // panics on unimplemented methods; Write/deadlines overridden

	mu        sync.Mutex
	sent      []byte
	firstCut  int // bytes accepted by the first write before "timing out"
	wroteOnce bool
}

func (c *partialWriteConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.wroteOnce {
		c.wroteOnce = true
		n := c.firstCut
		if n > len(p) {
			n = len(p)
		}
		c.sent = append(c.sent, p[:n]...)
		return n, timeoutError{}
	}
	c.sent = append(c.sent, p...)
	return len(p), nil
}

func (c *partialWriteConn) SetWriteDeadline(time.Time) error { return nil }

func (c *partialWriteConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.sent...)
}

func TestWriteChunkRetryResumesFromPartialWrite(t *testing.T) {
	// Regression: writeChunkRetry used to discard the byte count of a
	// timed-out write and retry the whole buffer, duplicating the already
	// transmitted prefix and desynchronizing the length-prefix framing.
	msg := []byte("a sealed frame long enough to split")
	buf, err := seccomm.AppendFrame(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 7, len(buf) - 1} {
		conn := &partialWriteConn{firstCut: cut}
		cfg := ClientConfig{IOTimeout: 10 * time.Millisecond, WriteAttempts: 3}.withDefaults()
		attempts, err := writeChunkRetry(context.Background(), conn, buf, cfg)
		if err != nil {
			t.Fatalf("cut %d: retry failed: %v", cut, err)
		}
		if attempts != 2 {
			t.Errorf("cut %d: attempts = %d, want 2", cut, attempts)
		}
		if got := conn.bytes(); string(got) != string(buf) {
			t.Errorf("cut %d: wire bytes corrupted:\n got %q\nwant %q", cut, got, buf)
		}
	}
}

func TestNextDialPauseCapsAndJitters(t *testing.T) {
	const (
		base = 10 * time.Millisecond
		ceil = 80 * time.Millisecond
	)
	run := func(seed int64) ([]time.Duration, []time.Duration) {
		rng := rand.New(rand.NewSource(seed))
		var pauses, backoffs []time.Duration
		b := base
		for i := 0; i < 12; i++ {
			var p time.Duration
			p, b = nextDialPause(b, ceil, rng)
			pauses = append(pauses, p)
			backoffs = append(backoffs, b)
		}
		return pauses, backoffs
	}
	pauses, backoffs := run(42)
	b := base
	for i, p := range pauses {
		if p < b/2 || p > b {
			t.Errorf("pause[%d] = %v outside equal-jitter window [%v, %v]", i, p, b/2, b)
		}
		b = backoffs[i]
		if b > ceil {
			t.Errorf("backoff[%d] = %v exceeds cap %v", i, b, ceil)
		}
	}
	if last := backoffs[len(backoffs)-1]; last != ceil {
		t.Errorf("backoff never reached its cap: %v != %v", last, ceil)
	}
	// The deterministic-seed contract: same seed, same schedule.
	again, _ := run(42)
	for i := range pauses {
		if pauses[i] != again[i] {
			t.Fatalf("pause[%d] differs across same-seed runs: %v vs %v", i, pauses[i], again[i])
		}
	}
}

func TestReadAckRejectsUnknownStatus(t *testing.T) {
	for _, status := range []byte{0x00, 0x06, 0x63, 0xFF} {
		client, srv := net.Pipe()
		go func() {
			ack := []byte{status, 0, 0, 0, 7}
			srv.Write(ack)
			srv.Close()
		}()
		_, _, err := readAck(client, 200*time.Millisecond)
		client.Close()
		if err == nil {
			t.Fatalf("status 0x%02x accepted", status)
		}
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Fatalf("status 0x%02x: error %v is not a ProtocolError", status, err)
		}
		if pe.Value != status {
			t.Errorf("ProtocolError.Value = 0x%02x, want 0x%02x", pe.Value, status)
		}
	}
	// Known statuses still parse.
	client, srv := net.Pipe()
	go func() {
		srv.Write([]byte{byte(StatusAccept), 0, 0, 0, 9})
		srv.Close()
	}()
	st, idx, err := readAck(client, 200*time.Millisecond)
	client.Close()
	if err != nil || st != StatusAccept || idx != 9 {
		t.Fatalf("readAck = (%v, %d, %v), want (accept, 9, nil)", st, idx, err)
	}
}

func TestTerminalMarksAndUnwraps(t *testing.T) {
	base := &RejectedError{Status: StatusRefused}
	err := Terminal(base)
	if !IsTerminal(err) {
		t.Fatal("Terminal-wrapped error not recognized by IsTerminal")
	}
	var rej *RejectedError
	if got := err.Error(); !strings.Contains(got, "refused") {
		t.Errorf("error text %q lost the status", got)
	}
	if !errors.As(err, &rej) {
		t.Error("Terminal wrapper hides the RejectedError from errors.As")
	}
	if IsTerminal(base) {
		t.Error("unwrapped error reported terminal")
	}
	if Terminal(nil) != nil {
		t.Error("Terminal(nil) should be nil")
	}
}

func TestStatusStringsAndTransience(t *testing.T) {
	transient := map[Status]bool{
		StatusAccept:     false,
		StatusOverloaded: true,
		StatusDuplicate:  true,
		StatusDraining:   true,
		StatusRefused:    false,
	}
	for st, want := range transient {
		if st.Transient() != want {
			t.Errorf("%v.Transient() = %v, want %v", st, st.Transient(), want)
		}
		if strings.HasPrefix(st.String(), "status(") {
			t.Errorf("status %d has no name", uint8(st))
		}
	}
	if got := Status(99).String(); got != "status(99)" {
		t.Errorf("unknown status prints %q", got)
	}
}

// haltingSource yields frames until haltAt, then reports a terminal error.
// It models a source that stops itself mid-batch (a duty-cycled burst).
type haltingSource struct {
	sliceSource
	haltAt  int
	haltErr error
}

func (s *haltingSource) Next(ctx context.Context) ([]byte, error) {
	if s.next >= s.haltAt {
		return nil, s.haltErr
	}
	return s.sliceSource.Next(ctx)
}

// TestBatchedFlushesPartialGatherOnSourceError is the regression test for
// the batched frame loop discarding gathered frames when the source errors
// mid-batch: frames the source has already handed over must reach the wire
// (per-frame writes would have delivered them), so a source that stops
// itself every k frames makes progress even when k < WriteBatch.
func TestBatchedFlushesPartialGatherOnSourceError(t *testing.T) {
	h := newTestHandler(8)
	_, addr, _ := startServer(t, ServerConfig{Handler: h})
	frames := framesFor(8)
	pause := errors.New("pause")
	cl := NewClient(ClientConfig{Addr: addr, SensorID: 1, WriteBatch: 8})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := cl.Run(ctx, &haltingSource{
		sliceSource: sliceSource{frames: frames},
		haltAt:      3,
		haltErr:     Terminal(pause),
	})
	if !errors.Is(err, pause) {
		t.Fatalf("run err = %v, want the source's pause", err)
	}
	if st.FramesSent != 3 {
		t.Fatalf("FramesSent = %d, want the 3 gathered before the halt", st.FramesSent)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.delivered(1) != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := h.delivered(1); got != 3 {
		t.Fatalf("server delivered %d frames after the halt, want 3", got)
	}

	// A fresh run resumes from the server's delivered index — proof the
	// partial batch reached the session, not just the TCP buffer.
	if _, err := cl.Run(ctx, &sliceSource{frames: frames}); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	opens := append([]int(nil), h.opens...)
	got := h.frames[1]
	h.mu.Unlock()
	if len(opens) != 2 || opens[1] != 3 {
		t.Fatalf("resume opens = %v, want [0 3]", opens)
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d frames, want 8", len(got))
	}
	for i, f := range got {
		if string(f) != string(frames[i]) {
			t.Fatalf("frame %d = %q, want %q", i, f, frames[i])
		}
	}
}
