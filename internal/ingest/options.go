package ingest

// Grouped client options. ClientConfig grew one flat field per PR; the
// groups below carve that surface into the axes callers actually think
// about — how to dial, how to write, how to retry, how to pace — without
// changing any behavior: ClientOptions.Config flattens back to the same
// ClientConfig the client has always run on, and ClientConfig.Options is
// its exact inverse for zero-less configs.

import (
	"time"

	"repro/internal/metrics"
)

// DialOptions groups the knobs governing how a stream's TCP connection is
// established. The zero value means the client defaults (2s timeout, 4
// attempts, 25ms..2s jittered exponential backoff).
type DialOptions struct {
	// Timeout bounds a single connect attempt.
	Timeout time.Duration
	// Attempts is how many connect attempts one stream makes.
	Attempts int
	// Backoff is the initial inter-attempt pause; it doubles per attempt,
	// jittered, and is capped at BackoffMax.
	Backoff    time.Duration
	BackoffMax time.Duration
}

// WriteOptions groups the per-frame write path knobs. The zero value means
// the client defaults (5s deadline, 2 attempts, no batching).
type WriteOptions struct {
	// IOTimeout is the per-frame read/write deadline.
	IOTimeout time.Duration
	// Attempts bounds per-frame write retries on a timeout.
	Attempts int
	// Batch gathers up to this many frames into one TCP write.
	Batch int
}

// RetryOptions groups the stream-level recovery budgets: what happens after
// a mid-stream transport failure or a soft server reject. The zero value
// means the client defaults (no reconnects, 8 reject retries).
type RetryOptions struct {
	// ReconnectAttempts is how many times a run may redial and resume
	// after a transport failure mid-stream.
	ReconnectAttempts int
	// RejectAttempts is how many transient server rejects a run retries.
	RejectAttempts int
	// RejectBackoff is the (non-growing) pause after a transient reject.
	RejectBackoff time.Duration
}

// PaceOptions configures paced frame release. It is PacerConfig under a
// name that matches the other option groups; see PacerConfig for the
// field-level contract.
type PaceOptions = PacerConfig

// ClientOptions is the grouped form of ClientConfig. NewClientFromOptions
// accepts it directly; Config converts to the flat form for callers that
// need to interoperate with existing ClientConfig plumbing.
type ClientOptions struct {
	// Addr is the server's address.
	Addr string
	// SensorID identifies the sensor in the cleartext hello.
	SensorID int
	// Seed drives the client's random decisions (see ClientConfig.Seed).
	Seed int64

	Dial  DialOptions
	Write WriteOptions
	Retry RetryOptions
	Pace  PaceOptions

	// Metrics, when set, receives the ingest.client.* instrument family.
	Metrics *metrics.Registry
}

// Config flattens the grouped options into the equivalent ClientConfig.
// Zero fields stay zero, so the flat config applies the same defaults it
// always has.
func (o ClientOptions) Config() ClientConfig {
	return ClientConfig{
		Addr:              o.Addr,
		SensorID:          o.SensorID,
		DialTimeout:       o.Dial.Timeout,
		DialAttempts:      o.Dial.Attempts,
		DialBackoff:       o.Dial.Backoff,
		DialBackoffMax:    o.Dial.BackoffMax,
		IOTimeout:         o.Write.IOTimeout,
		WriteAttempts:     o.Write.Attempts,
		WriteBatch:        o.Write.Batch,
		ReconnectAttempts: o.Retry.ReconnectAttempts,
		RejectAttempts:    o.Retry.RejectAttempts,
		RejectBackoff:     o.Retry.RejectBackoff,
		Seed:              o.Seed,
		Pacer:             o.Pace,
		Metrics:           o.Metrics,
	}
}

// Options regroups a flat ClientConfig. It is the exact inverse of
// ClientOptions.Config: cfg.Options().Config() == cfg for any cfg.
func (cfg ClientConfig) Options() ClientOptions {
	return ClientOptions{
		Addr:     cfg.Addr,
		SensorID: cfg.SensorID,
		Seed:     cfg.Seed,
		Dial: DialOptions{
			Timeout:    cfg.DialTimeout,
			Attempts:   cfg.DialAttempts,
			Backoff:    cfg.DialBackoff,
			BackoffMax: cfg.DialBackoffMax,
		},
		Write: WriteOptions{
			IOTimeout: cfg.IOTimeout,
			Attempts:  cfg.WriteAttempts,
			Batch:     cfg.WriteBatch,
		},
		Retry: RetryOptions{
			ReconnectAttempts: cfg.ReconnectAttempts,
			RejectAttempts:    cfg.RejectAttempts,
			RejectBackoff:     cfg.RejectBackoff,
		},
		Pace:    cfg.Pacer,
		Metrics: cfg.Metrics,
	}
}

// NewClientFromOptions builds a Client from grouped options. It is
// equivalent to NewClient(opts.Config()).
func NewClientFromOptions(opts ClientOptions) *Client {
	return NewClient(opts.Config())
}
