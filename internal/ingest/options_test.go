package ingest

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
)

func fullOptions() ClientOptions {
	return ClientOptions{
		Addr:     "127.0.0.1:9",
		SensorID: 42,
		Seed:     7,
		Dial: DialOptions{
			Timeout:    time.Second,
			Attempts:   3,
			Backoff:    5 * time.Millisecond,
			BackoffMax: time.Second,
		},
		Write: WriteOptions{
			IOTimeout: 2 * time.Second,
			Attempts:  4,
			Batch:     8,
		},
		Retry: RetryOptions{
			ReconnectAttempts: 2,
			RejectAttempts:    5,
			RejectBackoff:     9 * time.Millisecond,
		},
		Pace: PaceOptions{
			Mode:       PaceJitter,
			Interval:   10 * time.Millisecond,
			JitterFrac: 0.5,
			Seed:       11,
		},
		Metrics: metrics.NewRegistry(),
	}
}

// TestOptionsConfigRoundTrip pins the grouped/flat equivalence both ways:
// Options() is the exact inverse of Config(), so callers can move between
// the surfaces without behavior drift.
func TestOptionsConfigRoundTrip(t *testing.T) {
	opts := fullOptions()
	cfg := opts.Config()
	if got := cfg.Options(); !reflect.DeepEqual(got, opts) {
		t.Fatalf("Config().Options() round trip drifted:\n got %+v\nwant %+v", got, opts)
	}
	if got := cfg.Options().Config(); !reflect.DeepEqual(got, cfg) {
		t.Fatalf("Options().Config() round trip drifted:\n got %+v\nwant %+v", got, cfg)
	}
}

// TestOptionsCoverClientConfig fails when someone adds a ClientConfig field
// without teaching the grouped options about it: a zero grouped form must
// flatten to the zero flat form, and a fully-populated flat config must
// survive the regroup — so every field has a home.
func TestOptionsCoverClientConfig(t *testing.T) {
	var zero ClientOptions
	if !reflect.DeepEqual(zero.Config(), ClientConfig{}) {
		t.Fatalf("zero options flatten to a non-zero config: %+v", zero.Config())
	}
	// Populate every ClientConfig field with a distinguishable non-zero
	// value via reflection, then round trip.
	cfg := ClientConfig{}
	v := reflect.ValueOf(&cfg).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.String:
			f.SetString("x")
		case reflect.Int, reflect.Int64:
			f.SetInt(int64(i + 1))
		case reflect.Float64:
			f.SetFloat(float64(i) + 0.5)
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Ptr:
			if f.Type() == reflect.TypeOf((*metrics.Registry)(nil)) {
				f.Set(reflect.ValueOf(metrics.NewRegistry()))
			}
		case reflect.Struct:
			if f.Type() == reflect.TypeOf(PacerConfig{}) {
				f.Set(reflect.ValueOf(PacerConfig{Mode: PaceConstant, Interval: time.Second, Seed: 3}))
			}
		}
	}
	if got := cfg.Options().Config(); !reflect.DeepEqual(got, cfg) {
		t.Fatalf("a ClientConfig field is lost in the grouped options:\n got %+v\nwant %+v", got, cfg)
	}
}

func TestNewClientFromOptions(t *testing.T) {
	opts := fullOptions()
	cl := NewClientFromOptions(opts)
	want := NewClient(opts.Config())
	if !reflect.DeepEqual(cl.cfg, want.cfg) {
		t.Fatalf("NewClientFromOptions cfg drifted:\n got %+v\nwant %+v", cl.cfg, want.cfg)
	}
}
