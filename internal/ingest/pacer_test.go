package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestPaceModeParseAndString(t *testing.T) {
	for _, m := range []PaceMode{PaceOff, PaceLive, PaceConstant, PaceJitter} {
		got, err := ParsePaceMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParsePaceMode(%q) = (%v, %v), want (%v, nil)", m.String(), got, err, m)
		}
	}
	if _, err := ParsePaceMode("bogus"); err == nil {
		t.Error("ParsePaceMode accepted an unknown mode")
	}
	if got := PaceMode(42).String(); got != "pace(42)" {
		t.Errorf("unknown mode prints %q", got)
	}
}

func TestMarkUnmarkRoundTrip(t *testing.T) {
	payload := []byte("quantized batch")
	data, dummy, err := Unmark(MarkReal(payload))
	if err != nil || dummy {
		t.Fatalf("Unmark(MarkReal) = (dummy=%v, err=%v)", dummy, err)
	}
	if !bytes.Equal(data, payload) {
		t.Errorf("real payload corrupted: %q", data)
	}
	data, dummy, err = Unmark(MarkDummy(make([]byte, len(payload))))
	if err != nil || !dummy {
		t.Fatalf("Unmark(MarkDummy) = (dummy=%v, err=%v)", dummy, err)
	}
	if data != nil {
		t.Errorf("dummy returned payload %q", data)
	}
	// Marked real and dummy payloads of equal content length have equal
	// total length — the precondition for sealed-size indistinguishability.
	if lr, ld := len(MarkReal(payload)), len(MarkDummy(make([]byte, len(payload)))); lr != ld {
		t.Errorf("marked lengths differ: real %d, dummy %d", lr, ld)
	}
	var pe *ProtocolError
	if _, _, err := Unmark([]byte{0x7F, 1, 2}); !errors.As(err, &pe) || pe.Value != 0x7F {
		t.Errorf("unknown marker: err = %v, want ProtocolError{Value: 0x7F}", err)
	}
	if _, _, err := Unmark(nil); !errors.As(err, &pe) {
		t.Errorf("empty payload: err = %v, want ProtocolError", err)
	}
}

func TestPaceSchedulerDeterministic(t *testing.T) {
	const interval = 10 * time.Millisecond
	draw := func(cfg PacerConfig, seed int64, n int) []time.Duration {
		s := newPaceScheduler(cfg, seed)
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = s.next()
		}
		return out
	}

	// Constant mode: every slot is exactly Interval, regardless of seed.
	for _, d := range draw(PacerConfig{Mode: PaceConstant, Interval: interval}, 1, 16) {
		if d != interval {
			t.Fatalf("constant schedule emitted %v, want %v", d, interval)
		}
	}

	// Jitter mode: fixed seed reproduces the schedule exactly; every slot
	// stays inside [Interval*(1-f), Interval*(1+f)]; and the schedule is
	// actually jittered (not constant in disguise).
	jcfg := PacerConfig{Mode: PaceJitter, Interval: interval, JitterFrac: 0.5}
	a := draw(jcfg, 99, 64)
	b := draw(jcfg, 99, 64)
	lo := time.Duration(float64(interval) * 0.5)
	hi := time.Duration(float64(interval) * 1.5)
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs across same-seed schedules: %v vs %v", i, a[i], b[i])
		}
		if a[i] < lo || a[i] > hi {
			t.Errorf("slot %d = %v outside jitter window [%v, %v]", i, a[i], lo, hi)
		}
		if a[i] != interval {
			varied = true
		}
	}
	if !varied {
		t.Error("jittered schedule never deviated from the base interval")
	}
	if c := draw(jcfg, 100, 64); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Error("different seeds produced identical jitter schedules")
	}
}

// timedSource is a sliceSource with a data-driven availability schedule:
// gap[i] is the delay between frame i-1 and frame i becoming available.
type timedSource struct {
	sliceSource
	gaps []time.Duration
	last time.Duration
}

func (s *timedSource) Next(ctx context.Context) ([]byte, error) {
	s.last = s.gaps[s.next]
	return s.sliceSource.Next(ctx)
}

func (s *timedSource) LastGap() time.Duration { return s.last }

// unmarkHandler is a testHandler whose sessions speak the pacer's marker
// convention: dummies are dropped with ErrDummyFrame, real payloads are
// stored unmarked.
type unmarkHandler struct {
	*testHandler
	dummies int // guarded by testHandler.mu
}

func (h *unmarkHandler) Open(sensorID, delivered int) (Session, error) {
	s, err := h.testHandler.Open(sensorID, delivered)
	if err != nil {
		return nil, err
	}
	return &unmarkSession{inner: s.(*testSession), h: h}, nil
}

type unmarkSession struct {
	inner *testSession
	h     *unmarkHandler
}

func (s *unmarkSession) Total() int { return s.inner.Total() }

func (s *unmarkSession) Frame(index int, msg []byte) error {
	data, dummy, err := Unmark(msg)
	if err != nil {
		return err
	}
	if dummy {
		s.h.mu.Lock()
		s.h.dummies++
		s.h.mu.Unlock()
		return ErrDummyFrame
	}
	return s.inner.Frame(index, data)
}

func (s *unmarkSession) Close(err error) { s.inner.Close(err) }

// markedFrames wraps each test frame with the real marker, the shape a
// pacing-aware source puts on the wire.
func markedFrames(frames [][]byte) [][]byte {
	out := make([][]byte, len(frames))
	for i, f := range frames {
		out[i] = MarkReal(f)
	}
	return out
}

func testDummy(size int) func() ([]byte, error) {
	return func() ([]byte, error) { return MarkDummy(make([]byte, size)), nil }
}

// runPaced drives one client/server round trip under the given pacer config
// and returns the client stats, the delivered (unmarked) frames, and the
// number of dummies the server dropped.
func runPaced(t *testing.T, pacer PacerConfig, frames [][]byte, gaps []time.Duration) (ClientStats, [][]byte, int, metrics.Snapshot) {
	t.Helper()
	h := &unmarkHandler{testHandler: newTestHandler(len(frames))}
	reg := metrics.NewRegistry()
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: 2 * time.Second, Metrics: reg})
	client := NewClient(ClientConfig{
		Addr:      addr,
		SensorID:  5,
		IOTimeout: 2 * time.Second,
		Seed:      17,
		Pacer:     pacer,
	})
	src := &timedSource{sliceSource: sliceSource{frames: markedFrames(frames)}, gaps: gaps}
	stats, err := client.Run(context.Background(), src)
	if err != nil {
		t.Fatalf("paced run (%v): %v", pacer.Mode, err)
	}
	h.mu.Lock()
	delivered := append([][]byte(nil), h.frames[5]...)
	dummies := h.dummies
	h.mu.Unlock()
	return stats, delivered, dummies, reg.Snapshot()
}

func TestPacedDeliveryIdentity(t *testing.T) {
	// The defense's correctness bar: the server's delivered output must be
	// byte-identical with pacing off, live, constant, and jittered — the
	// pacer may only change *when* frames move and add droppable cover.
	const n = 12
	frames := framesFor(n)
	gaps := make([]time.Duration, n)
	for i := range gaps {
		gaps[i] = time.Duration(1+i%3) * time.Millisecond
	}

	// Baseline: pacing off, plain unmarked frames through the plain handler.
	h := newTestHandler(n)
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: 2 * time.Second})
	baseClient := NewClient(ClientConfig{Addr: addr, SensorID: 5, IOTimeout: 2 * time.Second})
	if _, err := baseClient.Run(context.Background(), &sliceSource{frames: frames}); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	baseline := append([][]byte(nil), h.frames[5]...)
	h.mu.Unlock()

	dummySize := len(MarkReal(frames[0])) - 1
	cases := []struct {
		name        string
		pacer       PacerConfig
		wantDummies bool
	}{
		{"live", PacerConfig{Mode: PaceLive}, false},
		{"constant", PacerConfig{Mode: PaceConstant, Interval: time.Millisecond, Dummy: testDummy(dummySize)}, true},
		{"jitter", PacerConfig{Mode: PaceJitter, Interval: time.Millisecond, JitterFrac: 0.5, Dummy: testDummy(dummySize)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stats, delivered, dummies, snap := runPaced(t, tc.pacer, frames, gaps)
			if len(delivered) != n {
				t.Fatalf("delivered %d frames, want %d", len(delivered), n)
			}
			for i := range delivered {
				if !bytes.Equal(delivered[i], baseline[i]) {
					t.Fatalf("frame %d differs from unpaced baseline: %q vs %q", i, delivered[i], baseline[i])
				}
			}
			if stats.FramesSent != n {
				t.Errorf("FramesSent = %d, want %d (real frames only)", stats.FramesSent, n)
			}
			if tc.wantDummies {
				if stats.DummyFrames == 0 || dummies == 0 {
					t.Errorf("expected cover traffic: client sent %d dummies, server dropped %d", stats.DummyFrames, dummies)
				}
				if stats.DummyFrames != dummies {
					t.Errorf("dummy accounting mismatch: client %d, server %d", stats.DummyFrames, dummies)
				}
				if got := snap.Counters["ingest.dummy_frames"]; got != int64(dummies) {
					t.Errorf("ingest.dummy_frames = %d, want %d", got, dummies)
				}
				if stats.DummyBytesSent == 0 {
					t.Error("DummyBytesSent not accounted")
				}
				if stats.AoIMicrosTotal < 0 || stats.AoIMicrosMax < 0 {
					t.Errorf("negative AoI accounting: total %d, max %d", stats.AoIMicrosTotal, stats.AoIMicrosMax)
				}
				if mean := stats.MeanAoIMicros(); mean < 0 {
					t.Errorf("MeanAoIMicros = %v", mean)
				}
			} else if stats.DummyFrames != 0 || dummies != 0 {
				t.Errorf("live mode produced dummies: client %d, server %d", stats.DummyFrames, dummies)
			}
			if got := snap.Counters["ingest.frames"]; got != int64(n) {
				t.Errorf("ingest.frames = %d, want %d (dummies must not count)", got, n)
			}
		})
	}
}

func TestPacedResumeAfterReconnect(t *testing.T) {
	// Dummies must not advance the registry's delivered index: a mid-stream
	// reconnect under pacing resumes at the first undelivered *real* frame.
	const n = 10
	frames := framesFor(n)
	gaps := make([]time.Duration, n)
	for i := range gaps {
		gaps[i] = 2 * time.Millisecond
	}
	h := &unmarkHandler{testHandler: newTestHandler(n)}
	h.failAfter = 4 // first connection dies after 4 real frames
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: 2 * time.Second})
	client := NewClient(ClientConfig{
		Addr:              addr,
		SensorID:          9,
		IOTimeout:         2 * time.Second,
		ReconnectAttempts: 3,
		Seed:              23,
		Pacer: PacerConfig{
			Mode:     PaceConstant,
			Interval: time.Millisecond,
			Dummy:    testDummy(len(MarkReal(frames[0])) - 1),
		},
	})
	src := &timedSource{sliceSource: sliceSource{frames: markedFrames(frames)}, gaps: gaps}
	stats, err := client.Run(context.Background(), src)
	if err != nil {
		t.Fatalf("paced resume run: %v", err)
	}
	if stats.Reconnects == 0 {
		t.Error("expected at least one reconnect")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if got := len(h.frames[9]); got != n {
		t.Fatalf("delivered %d frames, want %d", got, n)
	}
	for i, f := range h.frames[9] {
		want := fmt.Sprintf("frame-%03d", i)
		if string(f) != want {
			t.Errorf("frame %d = %q, want %q (resume must not duplicate or skip)", i, f, want)
		}
	}
}

func TestPacedConfigErrorsAreTerminal(t *testing.T) {
	h := newTestHandler(2)
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: 2 * time.Second})
	cases := []struct {
		name  string
		pacer PacerConfig
	}{
		{"no interval", PacerConfig{Mode: PaceConstant, Dummy: testDummy(8)}},
		{"no dummy", PacerConfig{Mode: PaceConstant, Interval: time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			client := NewClient(ClientConfig{Addr: addr, SensorID: 1, IOTimeout: time.Second, Pacer: tc.pacer})
			src := &timedSource{
				sliceSource: sliceSource{frames: markedFrames(framesFor(2))},
				gaps:        []time.Duration{0, 0},
			}
			_, err := client.Run(context.Background(), src)
			if err == nil {
				t.Fatal("misconfigured pacer ran")
			}
			if !IsTerminal(err) {
				t.Errorf("config error %v not terminal — it would burn the reconnect budget", err)
			}
		})
	}
}

// TestPacerStatsConcurrencySafety runs two paced clients against one server
// under the race detector: distinct Client values share nothing, and server
// accounting is registry-locked.
func TestPacerStatsConcurrencySafety(t *testing.T) {
	const n = 6
	h := &unmarkHandler{testHandler: newTestHandler(n)}
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: 2 * time.Second})
	var wg sync.WaitGroup
	for id := 1; id <= 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			frames := framesFor(n)
			gaps := make([]time.Duration, n)
			for i := range gaps {
				gaps[i] = time.Millisecond
			}
			client := NewClient(ClientConfig{
				Addr:      addr,
				SensorID:  id,
				IOTimeout: 2 * time.Second,
				Pacer: PacerConfig{
					Mode:       PaceJitter,
					Interval:   time.Millisecond,
					JitterFrac: 0.3,
					Dummy:      testDummy(len(MarkReal(frames[0])) - 1),
				},
			})
			src := &timedSource{sliceSource: sliceSource{frames: markedFrames(frames)}, gaps: gaps}
			if _, err := client.Run(context.Background(), src); err != nil {
				t.Errorf("sensor %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	h.mu.Lock()
	defer h.mu.Unlock()
	for id := 1; id <= 2; id++ {
		if got := len(h.frames[id]); got != n {
			t.Errorf("sensor %d delivered %d frames, want %d", id, got, n)
		}
	}
}
