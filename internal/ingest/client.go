package ingest

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/metrics"
	"repro/internal/seccomm"
)

// Client transport defaults, applied when the corresponding ClientConfig
// knob is zero. They match the fleet simulator's historical defaults.
const (
	defaultDialTimeout     = 2 * time.Second
	defaultDialAttempts    = 4
	defaultDialBackoff     = 25 * time.Millisecond
	defaultDialBackoffMax  = 2 * time.Second
	defaultClientIOTimeout = 5 * time.Second
	defaultWriteAttempts   = 2
	defaultRejectAttempts  = 8
)

// ClientConfig configures one sensor's Client.
type ClientConfig struct {
	// Addr is the server's address.
	Addr string
	// SensorID identifies the sensor in the cleartext hello.
	SensorID int

	// DialTimeout bounds a single TCP connect attempt (default 2s).
	DialTimeout time.Duration
	// DialAttempts is how many connect attempts one stream makes before
	// reporting failure (default 4), separated by an exponential backoff
	// starting at DialBackoff (default 25ms, doubling) and capped at
	// DialBackoffMax (default 2s). Each pause is jittered — drawn
	// uniformly from [backoff/2, backoff] by the client's seeded RNG — so
	// a fleet that loses its server does not redial in lockstep.
	DialAttempts   int
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
	// IOTimeout is the per-frame read/write deadline (default 5s).
	IOTimeout time.Duration
	// WriteAttempts bounds per-frame write retries on a timeout (default
	// 2). Non-timeout errors are never retried.
	WriteAttempts int
	// ReconnectAttempts is how many times Run may redial and resume after
	// a transport failure mid-stream (default 0: a dropped link fails the
	// run). Terminal errors are never resumed.
	ReconnectAttempts int
	// RejectAttempts is how many transient server rejects (overloaded,
	// draining, duplicate) Run retries before giving up (default 8).
	// Rejects spend this budget, not ReconnectAttempts: a loaded server
	// asking for backoff is not a broken link.
	RejectAttempts int
	// RejectBackoff is the pause after a transient reject (default
	// DialBackoff). Unlike dial backoff it does not grow: the server
	// already sheds load; the client only needs to spread retries.
	RejectBackoff time.Duration
	// WriteBatch gathers up to this many frames into one TCP write
	// (default 1: one write per frame). The wire byte stream is identical
	// either way — frames stay individually length-prefixed — but gathering
	// amortizes the syscall and deadline bookkeeping, which dominates at
	// small frame sizes. Capped at maxWriteBatch. Ignored when the Pacer
	// is active: paced release is one frame per release slot by design.
	WriteBatch int

	// Seed drives the client's random decisions — dial-backoff jitter and,
	// unless PacerConfig.Seed overrides it, the pacer's jittered release
	// schedule. Zero derives a per-sensor seed from SensorID, so every
	// client is deterministic for a fixed config yet no two sensors share
	// a jitter stream.
	Seed int64

	// Pacer decouples frame release timing from frame generation timing,
	// closing the timing side-channel on the link. The zero value (PaceOff)
	// preserves the throughput-oriented batched sender.
	Pacer PacerConfig

	// Metrics, when set, receives the ingest.client.* instrument family.
	Metrics *metrics.Registry
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = defaultDialAttempts
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = defaultDialBackoff
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = defaultDialBackoffMax
	}
	if cfg.DialBackoffMax < cfg.DialBackoff {
		cfg.DialBackoffMax = cfg.DialBackoff
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultClientIOTimeout
	}
	if cfg.WriteAttempts <= 0 {
		cfg.WriteAttempts = defaultWriteAttempts
	}
	if cfg.RejectAttempts <= 0 {
		cfg.RejectAttempts = defaultRejectAttempts
	}
	if cfg.RejectBackoff <= 0 {
		cfg.RejectBackoff = cfg.DialBackoff
	}
	if cfg.WriteBatch <= 0 {
		cfg.WriteBatch = 1
	}
	if cfg.WriteBatch > maxWriteBatch {
		cfg.WriteBatch = maxWriteBatch
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.SensorID) + 1
	}
	if cfg.Pacer.JitterFrac < 0 {
		cfg.Pacer.JitterFrac = 0
	}
	if cfg.Pacer.JitterFrac > maxJitterFrac {
		cfg.Pacer.JitterFrac = maxJitterFrac
	}
	return cfg
}

// maxWriteBatch bounds the frames gathered into one write so a single
// gathered buffer stays well under a megabyte even at MaxFrameSize frames.
const maxWriteBatch = 16

// FrameSource produces the sealed frames one sensor streams. Run calls
// Total once per connection, Seek after learning the server's resume
// index, then Next for each remaining frame. Implementations own encoding
// and sealing; returning Terminal(err) from Next aborts the run without
// spending the reconnect budget.
type FrameSource interface {
	// Total is the number of frames assigned over the stream's lifetime.
	Total() int
	// Seek positions the source so the next Next call produces frame
	// `resume`. It is called once per connection; a reconnect may seek
	// forward past frames an earlier connection delivered. Sources whose
	// frame content depends on history (sampling RNG, nonce counters)
	// must reproduce it exactly, so resume stays invisible in the data.
	Seek(resume int) error
	// Next returns the next sealed frame.
	Next(ctx context.Context) ([]byte, error)
}

// ClientStats counts one Run's transport work, for callers that aggregate
// their own accounting (the fleet simulator translates these into its
// fleet.* metrics).
type ClientStats struct {
	DialAttempts      int
	DialFailures      int
	FramesSent        int
	WireBytesSent     int
	WriteRetries      int
	WriteDeadlineHits int
	Reconnects        int
	SoftRejects       int

	// Pacer accounting. FramesSent and WireBytesSent count only real
	// frames, so delivery accounting is identical with pacing on or off;
	// dummies are tallied separately.
	DummyFrames    int
	DummyBytesSent int
	// AoIMicrosTotal sums, over real frames, the frame's age of information
	// at release: how long the pacer held a generated frame before its
	// release slot arrived. AoIMicrosMax is the worst single frame.
	AoIMicrosTotal int64
	AoIMicrosMax   int64
}

// MeanAoIMicros is the average per-frame age of information at release, in
// microseconds (0 when no frames were sent).
func (st ClientStats) MeanAoIMicros() float64 {
	if st.FramesSent == 0 {
		return 0
	}
	return float64(st.AoIMicrosTotal) / float64(st.FramesSent)
}

// clientMetrics is the nil-safe ingest.client.* instrument family.
type clientMetrics struct {
	dialAttempts *metrics.Counter
	dialFailures *metrics.Counter
	framesSent   *metrics.Counter
	wireBytes    *metrics.Counter
	writeRetries *metrics.Counter
	reconnects   *metrics.Counter
	softRejects  *metrics.Counter
	dummyFrames  *metrics.Counter
	aoiNs        *metrics.Histogram
}

func newClientMetrics(reg *metrics.Registry) clientMetrics {
	return clientMetrics{
		dialAttempts: reg.Counter("ingest.client.dial_attempts"),
		dialFailures: reg.Counter("ingest.client.dial_failures"),
		framesSent:   reg.Counter("ingest.client.frames_sent"),
		wireBytes:    reg.Counter("ingest.client.wire_bytes_sent"),
		writeRetries: reg.Counter("ingest.client.write_retries"),
		reconnects:   reg.Counter("ingest.client.reconnects"),
		softRejects:  reg.Counter("ingest.client.soft_rejects"),
		dummyFrames:  reg.Counter("ingest.client.dummy_frames"),
		aoiNs:        reg.Histogram("ingest.client.aoi_ns", metrics.LatencyBuckets()...),
	}
}

// Client streams one sensor's frames to an ingest Server, redialing and
// resuming on transport failures and backing off on typed server rejects.
// A Client runs one stream at a time: Run must not be called concurrently
// on the same Client (the jitter RNG is not locked).
type Client struct {
	cfg ClientConfig
	m   clientMetrics
	// rng drives dial-backoff jitter. Seeded from cfg.Seed, so a fixed
	// config reproduces the same backoff schedule run after run while
	// distinct sensors spread their redials.
	rng *rand.Rand
}

// NewClient returns a Client for cfg (defaults applied).
func NewClient(cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg: cfg,
		m:   newClientMetrics(cfg.Metrics),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Run streams src's frames until the server confirms full delivery,
// reconnecting on transport failures (up to ReconnectAttempts) and
// retrying transient rejects (up to RejectAttempts). It returns the
// transport stats alongside the first unrecoverable error, if any.
// Cancelling ctx closes the live connection and aborts promptly.
func (c *Client) Run(ctx context.Context, src FrameSource) (ClientStats, error) {
	var st ClientStats
	rejects := 0
	for try := 0; ; try++ {
		err := c.stream(ctx, src, &st)
		if err == nil {
			return st, nil
		}
		var rej *RejectedError
		if errors.As(err, &rej) && rej.Status.Transient() {
			// Typed backpressure, not a broken link: spend the reject
			// budget and leave the reconnect budget alone.
			try--
			rejects++
			st.SoftRejects++
			c.m.softRejects.Inc()
			if rejects > c.cfg.RejectAttempts || ctx.Err() != nil {
				return st, err
			}
			if !sleepCtx(ctx.Done(), c.cfg.RejectBackoff) {
				return st, err
			}
			continue
		}
		if IsTerminal(err) || ctx.Err() != nil || try >= c.cfg.ReconnectAttempts {
			return st, err
		}
		st.Reconnects++
		c.m.reconnects.Inc()
		// Give the server a beat to retire the dropped connection's
		// session before the new hello arrives.
		if !sleepCtx(ctx.Done(), c.cfg.DialBackoff) {
			return st, err
		}
	}
}

// stream performs one connection attempt: dial, hello, resume ack, frame
// loop from the server's resume index, final delivery confirmation.
func (c *Client) stream(ctx context.Context, src FrameSource, st *ClientStats) error {
	cfg := c.cfg
	conn, dials, err := dialWithBackoff(ctx, cfg, c.rng)
	st.DialAttempts += dials
	c.m.dialAttempts.Add(int64(dials))
	if err != nil {
		st.DialFailures++
		c.m.dialFailures.Inc()
		return err
	}
	defer conn.Close()
	// Cancellation must unblock a read or write immediately, not at the
	// next deadline expiry.
	streamDone := make(chan struct{})
	defer close(streamDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-streamDone:
		}
	}()

	var hello [helloLen]byte
	hello[0] = helloMagic
	binary.BigEndian.PutUint32(hello[1:], uint32(cfg.SensorID))
	if _, err := writeFullDeadline(conn, hello[:], cfg.IOTimeout); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	status, resume, err := readAck(conn, cfg.IOTimeout)
	if err != nil {
		// A protocol violation is not a link hiccup: redialing the same
		// misbehaving peer cannot fix it, so don't spend the reconnect
		// budget on it.
		var pe *ProtocolError
		if errors.As(err, &pe) {
			return Terminal(fmt.Errorf("hello ack: %w", err))
		}
		return fmt.Errorf("hello ack: %w", err)
	}
	if status != StatusAccept {
		rerr := &RejectedError{Status: status}
		if !status.Transient() {
			return Terminal(rerr)
		}
		return rerr
	}
	total := src.Total()
	if resume > total {
		return Terminal(fmt.Errorf("server resume index %d beyond %d assigned frames", resume, total))
	}
	if err := src.Seek(resume); err != nil {
		return Terminal(fmt.Errorf("seek to frame %d: %w", resume, err))
	}
	switch cfg.Pacer.Mode {
	case PaceOff:
		err = c.sendBatched(ctx, conn, src, st, resume, total)
	case PaceLive:
		err = c.sendLive(ctx, conn, src, st, resume, total)
	case PaceConstant, PaceJitter:
		err = c.sendPaced(ctx, conn, src, st, resume, total)
	default:
		err = Terminal(fmt.Errorf("unknown pace mode %d", cfg.Pacer.Mode))
	}
	if err != nil {
		return err
	}
	// Delivery confirmation: frame writes can land in the TCP buffer after
	// the server has dropped the link, so "every write succeeded" does not
	// mean "everything was delivered". A missing or short confirmation is
	// a transport failure, which a reconnect can resume from the true
	// delivered index.
	status, delivered, err := readAck(conn, cfg.IOTimeout)
	if err != nil {
		var pe *ProtocolError
		if errors.As(err, &pe) {
			return Terminal(fmt.Errorf("final ack: %w", err))
		}
		return fmt.Errorf("final ack: %w", err)
	}
	if status != StatusAccept {
		return Terminal(fmt.Errorf("final ack: %w", &RejectedError{Status: status}))
	}
	if delivered != total {
		return fmt.Errorf("final ack: server delivered %d of %d frames", delivered, total)
	}
	return nil
}

// sendBatched is the throughput-oriented frame loop: gather up to
// WriteBatch frames into one length-prefix-framed buffer and send it in a
// single write. The receiver sees the same byte stream as per-frame writes;
// only the syscall count changes.
func (c *Client) sendBatched(ctx context.Context, conn net.Conn, src FrameSource, st *ClientStats, resume, total int) error {
	cfg := c.cfg
	var gather []byte
	for fi := resume; fi < total; {
		gather = gather[:0]
		n := 0
		payloadBytes := 0
		var srcErr error
		for ; n < cfg.WriteBatch && fi+n < total; n++ {
			msg, err := src.Next(ctx)
			if err != nil {
				// Flush what's already gathered before reporting the
				// source failure: per-frame writes would have delivered
				// these frames, and the source has advanced past them. A
				// source that stops itself mid-batch (a duty-cycled burst)
				// relies on this for forward progress.
				srcErr = err
				break
			}
			gather, err = seccomm.AppendFrame(gather, msg)
			if err != nil {
				srcErr = Terminal(fmt.Errorf("frame %d: %w", fi+n, err))
				break
			}
			payloadBytes += len(msg)
		}
		if len(gather) > 0 {
			if err := c.writeGather(ctx, conn, gather, st, fi); err != nil {
				return err
			}
		}
		st.FramesSent += n
		st.WireBytesSent += payloadBytes
		c.m.framesSent.Add(int64(n))
		c.m.wireBytes.Add(int64(payloadBytes))
		fi += n
		if srcErr != nil {
			return srcErr
		}
	}
	return nil
}

// writeGather sends one gathered buffer with retry accounting; fi names the
// first frame in the buffer for error context.
func (c *Client) writeGather(ctx context.Context, conn net.Conn, gather []byte, st *ClientStats, fi int) error {
	attempts, err := writeChunkRetry(ctx, conn, gather, c.cfg)
	if r := attempts - 1; r > 0 {
		st.WriteRetries += r
		// Every retry was preceded by a write deadline expiry.
		st.WriteDeadlineHits += r
		c.m.writeRetries.Add(int64(r))
	}
	if err != nil {
		if seccomm.IsTimeout(err) {
			st.WriteDeadlineHits++
		}
		return fmt.Errorf("frame %d: %w", fi, err)
	}
	return nil
}

// dialWithBackoff connects to cfg.Addr, retrying up to cfg.DialAttempts
// times with capped, jittered exponential backoff: the k-th pause is drawn
// uniformly from [b/2, b] where b doubles from DialBackoff up to
// DialBackoffMax. The jitter comes from the caller's seeded RNG, so a fixed
// config reproduces the same schedule while distinct sensors decorrelate —
// an uncapped, unjittered fleet redials its fallen server in lockstep and
// thunders it straight back down. It returns the connection and the number
// of attempts made.
func dialWithBackoff(ctx context.Context, cfg ClientConfig, rng *rand.Rand) (net.Conn, int, error) {
	backoff := cfg.DialBackoff
	var lastErr error
	for attempt := 1; attempt <= cfg.DialAttempts; attempt++ {
		d := net.Dialer{Timeout: cfg.DialTimeout}
		conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
		if err == nil {
			return conn, attempt, nil
		}
		lastErr = err
		if ctx.Err() != nil || attempt == cfg.DialAttempts {
			return nil, attempt, fmt.Errorf("dial (attempt %d/%d): %w", attempt, cfg.DialAttempts, lastErr)
		}
		var pause time.Duration
		pause, backoff = nextDialPause(backoff, cfg.DialBackoffMax, rng)
		select {
		case <-ctx.Done():
			return nil, attempt, fmt.Errorf("dial cancelled after attempt %d: %w", attempt, ctx.Err())
		case <-time.After(pause):
		}
	}
	return nil, cfg.DialAttempts, fmt.Errorf("dial: %w", lastErr)
}

// nextDialPause draws one equal-jitter pause, uniform in [backoff/2,
// backoff], and returns the doubled-and-capped backoff for the next failure.
func nextDialPause(backoff, ceil time.Duration, rng *rand.Rand) (pause, next time.Duration) {
	pause = backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
	next = backoff
	if next < ceil {
		next *= 2
		if next > ceil {
			next = ceil
		}
	}
	return pause, next
}

// writeChunkRetry writes one gathered buffer of frames under the per-frame
// deadline, retrying a timed-out write up to cfg.WriteAttempts times in
// total. A single Write can transmit part of the buffer before its deadline
// expires, so every retry resumes from the first unwritten byte — resending
// from the start would duplicate the transmitted prefix on the wire and
// desynchronize the stream's length-prefix framing. Any non-timeout error
// aborts immediately. It returns the number of attempts made so callers can
// account retries and deadline expiries.
func writeChunkRetry(ctx context.Context, conn net.Conn, buf []byte, cfg ClientConfig) (int, error) {
	off := 0
	var err error
	for attempt := 1; attempt <= cfg.WriteAttempts; attempt++ {
		var n int
		n, err = writeFullDeadline(conn, buf[off:], cfg.IOTimeout)
		off += n
		if err == nil {
			return attempt, nil
		}
		if ctx.Err() != nil || !seccomm.IsTimeout(err) {
			return attempt, err
		}
	}
	return cfg.WriteAttempts, fmt.Errorf("write after %d attempts (%d/%d bytes out): %w",
		cfg.WriteAttempts, off, len(buf), err)
}
