package ingest

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/seccomm"
)

// testHandler records every session the server opens so tests can assert on
// delivered frames, resume indices, and close errors.
type testHandler struct {
	mu        sync.Mutex
	total     int   // frames per sensor
	failAfter int   // per-connection frame count to fail at (<0 = never)
	opens     []int // delivered (resume) values seen at Open, in order
	rejected  []Status
	unattrib  []error
	frames    map[int][][]byte // delivered frames by sensor
	closeErrs []error
}

func newTestHandler(total int) *testHandler {
	return &testHandler{total: total, failAfter: -1, frames: map[int][][]byte{}}
}

func (h *testHandler) Open(sensorID, delivered int) (Session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sensorID < 0 {
		return nil, errors.New("unknown sensor")
	}
	h.opens = append(h.opens, delivered)
	return &testSession{h: h, sensorID: sensorID}, nil
}

func (h *testHandler) Rejected(sensorID int, status Status) {
	h.mu.Lock()
	h.rejected = append(h.rejected, status)
	h.mu.Unlock()
}

func (h *testHandler) Unattributed(err error) {
	h.mu.Lock()
	h.unattrib = append(h.unattrib, err)
	h.mu.Unlock()
}

func (h *testHandler) delivered(sensorID int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.frames[sensorID])
}

type testSession struct {
	h          *testHandler
	sensorID   int
	connFrames int
}

func (s *testSession) Total() int { return s.h.total }

func (s *testSession) Frame(index int, msg []byte) error {
	h := s.h
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.failAfter >= 0 && s.connFrames >= h.failAfter {
		return fmt.Errorf("test fault: link dropped after %d frames", h.failAfter)
	}
	s.connFrames++
	h.frames[s.sensorID] = append(h.frames[s.sensorID], append([]byte(nil), msg...))
	return nil
}

func (s *testSession) Close(err error) {
	s.h.mu.Lock()
	s.h.closeErrs = append(s.h.closeErrs, err)
	s.h.mu.Unlock()
}

// sliceSource serves pre-built frames; the ingest layer treats them as
// opaque bytes, so no sealing is needed here.
type sliceSource struct {
	frames [][]byte
	next   int
}

func framesFor(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("frame-%03d", i))
	}
	return out
}

func (s *sliceSource) Total() int { return len(s.frames) }

func (s *sliceSource) Seek(resume int) error {
	s.next = resume
	return nil
}

func (s *sliceSource) Next(ctx context.Context) ([]byte, error) {
	msg := s.frames[s.next]
	s.next++
	return msg, nil
}

// startServer builds, binds, and serves a test server, returning it with
// its address and the channel Serve's return value lands on.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string, chan error) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	// Close is idempotent and waits for teardown, so this is safe even for
	// tests that drained or closed the server themselves.
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String(), serveErr
}

// dialHello opens a raw connection, sends the hello for id, and returns the
// server's ack.
func dialHello(t *testing.T, addr string, id int) (net.Conn, Status, int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hello [helloLen]byte
	hello[0] = helloMagic
	binary.BigEndian.PutUint32(hello[1:], uint32(id))
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	st, resume, err := readAck(conn, 2*time.Second)
	if err != nil {
		t.Fatalf("reading hello ack: %v", err)
	}
	return conn, st, resume
}

func TestServerDeliversAndConfirms(t *testing.T) {
	h := newTestHandler(8)
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: 2 * time.Second})
	client := NewClient(ClientConfig{Addr: addr, SensorID: 3, IOTimeout: 2 * time.Second})
	stats, err := client.Run(context.Background(), &sliceSource{frames: framesFor(8)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FramesSent != 8 {
		t.Errorf("FramesSent = %d, want 8", stats.FramesSent)
	}
	if got := h.delivered(3); got != 8 {
		t.Errorf("server delivered %d frames, want 8", got)
	}
	if got := string(h.frames[3][5]); got != "frame-005" {
		t.Errorf("frame 5 = %q", got)
	}
}

func TestDrainCompletesInFlightSessions(t *testing.T) {
	// One worker, one in-flight session streamed slowly: Drain must not
	// return until that session has every frame and its final ack.
	h := newTestHandler(5)
	srv, addr, serveErr := startServer(t, ServerConfig{
		Handler: h, Shards: 1, WorkersPerShard: 1, QueueDepth: 4,
		IOTimeout: 2 * time.Second,
	})
	conn, st, _ := dialHello(t, addr, 1)
	defer conn.Close()
	if st != StatusAccept {
		t.Fatalf("hello ack status = %v", st)
	}

	drainDone := make(chan error, 1)
	go func() {
		// Let the first frames flow before draining.
		time.Sleep(60 * time.Millisecond)
		drainDone <- srv.Drain(context.Background())
	}()
	for _, msg := range framesFor(5) {
		if err := seccomm.WriteFrameDeadline(conn, msg, time.Second); err != nil {
			t.Fatalf("frame write: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	st, delivered, err := readAck(conn, 2*time.Second)
	if err != nil || st != StatusAccept || delivered != 5 {
		t.Fatalf("final ack = (%v, %d, %v), want (accept, 5, nil)", st, delivered, err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Drain returned: the in-flight session must be complete.
	if got := h.delivered(1); got != 5 {
		t.Errorf("at Drain return the session had %d frames, want 5", got)
	}
	if err := <-serveErr; !errors.Is(err, ErrClosed) {
		t.Errorf("Serve returned %v, want ErrClosed", err)
	}
}

func TestDrainRefusesQueuedConnections(t *testing.T) {
	// One busy worker, one queued connection: Drain must answer the queued
	// connection with StatusDraining instead of serving or resetting it.
	h := newTestHandler(3)
	srv, addr, _ := startServer(t, ServerConfig{
		Handler: h, Shards: 1, WorkersPerShard: 1, QueueDepth: 4,
		IOTimeout: time.Second,
	})
	// Occupy the only worker: accepted session that sends no frames (the
	// server waits on its read deadline).
	busy, st, _ := dialHello(t, addr, 1)
	defer busy.Close()
	if st != StatusAccept {
		t.Fatalf("busy hello status = %v", st)
	}
	// Queue a second connection; its hello will be consumed by the
	// draining reject.
	queued, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer queued.Close()
	var hello [helloLen]byte
	hello[0] = helloMagic
	binary.BigEndian.PutUint32(hello[1:], 2)
	if _, err := queued.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the accept loop enqueue it

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()
	st, _, err = readAck(queued, 3*time.Second)
	if err != nil {
		t.Fatalf("queued conn ack: %v", err)
	}
	if st != StatusDraining {
		t.Errorf("queued conn status = %v, want draining", st)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestOverloadShedsWithTypedReject(t *testing.T) {
	reg := metrics.NewRegistry()
	h := newTestHandler(3)
	_, addr, _ := startServer(t, ServerConfig{
		Handler: h, Shards: 1, WorkersPerShard: 1, QueueDepth: 1,
		IOTimeout: 2 * time.Second, Metrics: reg,
	})
	// A occupies the only worker (accepted, then silent)...
	connA, st, _ := dialHello(t, addr, 1)
	defer connA.Close()
	if st != StatusAccept {
		t.Fatalf("A status = %v", st)
	}
	// ...B fills the only queue slot...
	connB, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	time.Sleep(50 * time.Millisecond)
	// ...so C must be shed with an explicit typed reject, not a reset.
	connC, st, _ := dialHello(t, addr, 3)
	defer connC.Close()
	if st != StatusOverloaded {
		t.Errorf("C status = %v, want overloaded", st)
	}
	if got := reg.Counter("ingest.shed_overload").Value(); got < 1 {
		t.Errorf("ingest.shed_overload = %d, want >= 1", got)
	}
}

func TestClientRetriesTransientReject(t *testing.T) {
	// A client that hits a full server must back off on the typed reject
	// and succeed once capacity frees up, without spending its reconnect
	// budget (ReconnectAttempts stays 0).
	h := newTestHandler(2)
	_, addr, _ := startServer(t, ServerConfig{
		Handler: h, Shards: 1, WorkersPerShard: 1, QueueDepth: 1,
		IOTimeout: 2 * time.Second,
	})
	// Jam the worker and the queue slot.
	connA, st, _ := dialHello(t, addr, 1)
	if st != StatusAccept {
		t.Fatalf("A status = %v", st)
	}
	connB, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Free capacity shortly after the client's first, rejected attempt.
	go func() {
		time.Sleep(120 * time.Millisecond)
		connA.Close()
		connB.Close()
	}()
	client := NewClient(ClientConfig{
		Addr: addr, SensorID: 9, IOTimeout: 2 * time.Second,
		RejectAttempts: 20, RejectBackoff: 40 * time.Millisecond,
	})
	stats, err := client.Run(context.Background(), &sliceSource{frames: framesFor(2)})
	if err != nil {
		t.Fatalf("Run after capacity freed: %v", err)
	}
	if stats.SoftRejects < 1 {
		t.Errorf("SoftRejects = %d, want >= 1 (the first attempt must have been shed)", stats.SoftRejects)
	}
	if stats.Reconnects != 0 {
		t.Errorf("Reconnects = %d: typed rejects must not spend the reconnect budget", stats.Reconnects)
	}
}

func TestDuplicateSensorRejected(t *testing.T) {
	h := newTestHandler(3)
	_, addr, _ := startServer(t, ServerConfig{
		Handler: h, IOTimeout: 2 * time.Second, ClaimWait: 80 * time.Millisecond,
	})
	first, st, _ := dialHello(t, addr, 7)
	defer first.Close()
	if st != StatusAccept {
		t.Fatalf("first status = %v", st)
	}
	second, st, _ := dialHello(t, addr, 7)
	defer second.Close()
	if st != StatusDuplicate {
		t.Errorf("second status = %v, want duplicate", st)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.rejected) != 1 || h.rejected[0] != StatusDuplicate {
		t.Errorf("handler.Rejected saw %v", h.rejected)
	}
}

func TestClientResumesAcrossServerDrops(t *testing.T) {
	// The server drops every connection after two frames; a client with a
	// reconnect budget must resume from the registry's delivered index
	// each time and finish the stream.
	h := newTestHandler(6)
	h.failAfter = 2
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: 2 * time.Second})
	client := NewClient(ClientConfig{
		Addr: addr, SensorID: 4, IOTimeout: time.Second,
		DialBackoff: 10 * time.Millisecond, ReconnectAttempts: 5,
	})
	stats, err := client.Run(context.Background(), &sliceSource{frames: framesFor(6)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := h.delivered(4); got != 6 {
		t.Errorf("delivered %d frames, want 6", got)
	}
	if stats.Reconnects != 2 {
		t.Errorf("Reconnects = %d, want 2 (6 frames at 2 per connection)", stats.Reconnects)
	}
	h.mu.Lock()
	opens := append([]int(nil), h.opens...)
	h.mu.Unlock()
	want := []int{0, 2, 4}
	if len(opens) != len(want) {
		t.Fatalf("opens = %v, want %v", opens, want)
	}
	for i := range want {
		if opens[i] != want[i] {
			t.Fatalf("opens = %v, want %v (registry must hand each reconnect its resume index)", opens, want)
		}
	}
}

func TestRefusedIsTerminal(t *testing.T) {
	h := HandlerFuncs{
		OpenFunc: func(sensorID, delivered int) (Session, error) {
			return nil, errors.New("sensor not enrolled")
		},
	}
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: time.Second})
	client := NewClient(ClientConfig{
		Addr: addr, SensorID: 5, IOTimeout: time.Second, ReconnectAttempts: 3,
	})
	stats, err := client.Run(context.Background(), &sliceSource{frames: framesFor(2)})
	if err == nil {
		t.Fatal("refused sensor completed")
	}
	if !IsTerminal(err) {
		t.Errorf("refused reject is not terminal: %v", err)
	}
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Status != StatusRefused {
		t.Errorf("err = %v, want RejectedError{refused}", err)
	}
	if stats.Reconnects != 0 || stats.SoftRejects != 0 {
		t.Errorf("terminal reject consumed budgets: %+v", stats)
	}
}

func TestCloseSeversActiveSessions(t *testing.T) {
	h := newTestHandler(5)
	srv, addr, serveErr := startServer(t, ServerConfig{Handler: h, IOTimeout: 5 * time.Second})
	conn, st, _ := dialHello(t, addr, 2)
	defer conn.Close()
	if st != StatusAccept {
		t.Fatalf("status = %v", st)
	}
	// The session is mid-read with a 5s deadline; Close must not wait for
	// it to expire.
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Close took %v, want well under the read deadline", elapsed)
	}
	if err := <-serveErr; !errors.Is(err, ErrClosed) {
		t.Errorf("Serve returned %v, want ErrClosed", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.closeErrs) != 1 || h.closeErrs[0] == nil {
		t.Errorf("severed session close errors = %v, want one non-nil", h.closeErrs)
	}
}

func TestBadMagicIsUnattributed(t *testing.T) {
	h := newTestHandler(1)
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: time.Second})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0x00, 0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		n := len(h.unattrib)
		h.mu.Unlock()
		if n == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("bad-magic connection never reported unattributed")
}

func TestLifecycleErrors(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("NewServer accepted a nil handler")
	}
	srv, err := NewServer(ServerConfig{Handler: newTestHandler(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(); err == nil {
		t.Error("Serve before Listen succeeded")
	}
	// Close before Serve must not hang, and must be idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); !errors.Is(err, ErrClosed) {
		t.Errorf("Listen after Close = %v, want ErrClosed", err)
	}
}

func TestDrainLeavesNoGoroutines(t *testing.T) {
	// The acceptance bar for the lifecycle: run real traffic through a
	// server, drain it, and end with the goroutine count back at baseline.
	base := runtime.NumGoroutine()
	h := newTestHandler(4)
	srv, addr, serveErr := startServer(t, ServerConfig{
		Handler: h, Shards: 2, WorkersPerShard: 4, QueueDepth: 8,
		IOTimeout: 2 * time.Second,
	})
	var wg sync.WaitGroup
	for id := 0; id < 6; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := NewClient(ClientConfig{Addr: addr, SensorID: id, IOTimeout: 2 * time.Second})
			if _, err := client.Run(context.Background(), &sliceSource{frames: framesFor(4)}); err != nil {
				t.Errorf("sensor %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, ErrClosed) {
		t.Errorf("Serve returned %v, want ErrClosed", err)
	}
	for id := 0; id < 6; id++ {
		if got := h.delivered(id); got != 4 {
			t.Errorf("sensor %d delivered %d frames, want 4", id, got)
		}
	}
	// Goroutine counts settle asynchronously (conn close, runtime GC of
	// netpoll state); poll briefly instead of asserting instantly.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", base, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRegistryEvictionBoundsChurn drives many short-lived sensors through
// the server and asserts the session registry does not grow one entry per
// sensor id ever seen: completed entries are evicted after the idle TTL, so
// the registry is bounded by the live population plus the TTL window.
func TestRegistryEvictionBoundsChurn(t *testing.T) {
	const ttl = 40 * time.Millisecond
	h := newTestHandler(3)
	srv, addr, _ := startServer(t, ServerConfig{
		Handler: h, IOTimeout: 2 * time.Second, SessionTTL: ttl,
	})

	// Churn: 60 distinct sensor ids, each completing its stream and leaving.
	for id := 0; id < 60; id++ {
		client := NewClient(ClientConfig{Addr: addr, SensorID: id, IOTimeout: 2 * time.Second})
		if _, err := client.Run(context.Background(), &sliceSource{frames: framesFor(3)}); err != nil {
			t.Fatalf("sensor %d: %v", id, err)
		}
	}
	if got := srv.sessions.size(); got > 60 {
		t.Fatalf("registry holds %d entries after 60 sensors", got)
	}

	// Sweeps run on claim, so keep a trickle of fresh sensors arriving past
	// the TTL and watch the churned population drain out.
	deadline := time.Now().Add(5 * time.Second)
	for srv.sessions.size() > 10 {
		if time.Now().After(deadline) {
			t.Fatalf("registry still holds %d entries long after the TTL", srv.sessions.size())
		}
		time.Sleep(ttl)
		client := NewClient(ClientConfig{Addr: addr, SensorID: 1000 + int(time.Now().UnixNano()%1000), IOTimeout: 2 * time.Second})
		if _, err := client.Run(context.Background(), &sliceSource{frames: framesFor(3)}); err != nil {
			t.Fatalf("trickle sensor: %v", err)
		}
	}

	// A completed, evicted sensor that returns is re-admitted from scratch:
	// its hello ack carries resume index 0, and the stream replays fully.
	before := h.delivered(7)
	client := NewClient(ClientConfig{Addr: addr, SensorID: 7, IOTimeout: 2 * time.Second})
	if _, err := client.Run(context.Background(), &sliceSource{frames: framesFor(3)}); err != nil {
		t.Fatalf("re-admitted sensor: %v", err)
	}
	if got := h.delivered(7); got != before+3 {
		t.Errorf("re-admitted sensor delivered %d new frames, want 3", got-before)
	}
}

// TestEvictionSparesIncompleteStreams pins the resume semantics the TTL must
// not break: a sensor that dropped mid-stream keeps its registry entry (and
// delivered index) across the TTL, because only final-acked streams evict.
func TestEvictionSparesIncompleteStreams(t *testing.T) {
	const ttl = 30 * time.Millisecond
	h := newTestHandler(6)
	srv, addr, _ := startServer(t, ServerConfig{
		Handler: h, IOTimeout: 2 * time.Second, SessionTTL: ttl,
	})

	// Deliver half the stream on a raw connection, then drop the link.
	conn, st, resume := dialHello(t, addr, 42)
	if st != StatusAccept || resume != 0 {
		t.Fatalf("hello ack = %v/%d", st, resume)
	}
	for _, msg := range framesFor(6)[:3] {
		if err := seccomm.WriteFrameDeadline(conn, msg, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the server has registered all three frames, then sever.
	for h.delivered(42) < 3 {
		time.Sleep(2 * time.Millisecond)
	}
	conn.Close()

	// Age the entry well past the TTL while churn keeps sweeps running.
	for i := 0; i < 4; i++ {
		time.Sleep(ttl)
		client := NewClient(ClientConfig{Addr: addr, SensorID: 9000 + i, IOTimeout: 2 * time.Second})
		if _, err := client.Run(context.Background(), &sliceSource{frames: framesFor(6)}); err != nil {
			t.Fatalf("churn sensor: %v", err)
		}
	}

	// The incomplete entry must still be there with its delivered index.
	client := NewClient(ClientConfig{Addr: addr, SensorID: 42, IOTimeout: 2 * time.Second})
	if _, err := client.Run(context.Background(), &sliceSource{frames: framesFor(6)}); err != nil {
		t.Fatalf("resuming sensor: %v", err)
	}
	if got := h.delivered(42); got != 6 {
		t.Errorf("sensor 42 delivered %d frames in total, want 6 (3 + 3 resumed)", got)
	}
	h.mu.Lock()
	resumes := append([]int(nil), h.opens...)
	h.mu.Unlock()
	found := false
	for _, r := range resumes {
		if r == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("no session opened at resume index 3; opens = %v", resumes)
	}
	_ = srv
}

// recordingStager captures the delivery-path tap calls for assertions.
type recordingStager struct {
	mu      sync.Mutex
	admits  [][3]int // sensor, resume, total
	frames  map[int][]string
	ends    map[int]bool // sensor -> completed flag of last SessionEnd
	endings int
}

func (r *recordingStager) Admit(sensorID, resume, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.admits = append(r.admits, [3]int{sensorID, resume, total})
}

func (r *recordingStager) StageFrame(sensorID, index int, msg []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frames == nil {
		r.frames = map[int][]string{}
	}
	r.frames[sensorID] = append(r.frames[sensorID], fmt.Sprintf("%d:%s", index, msg))
}

func (r *recordingStager) SessionEnd(sensorID int, completed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ends == nil {
		r.ends = map[int]bool{}
	}
	r.ends[sensorID] = completed
	r.endings++
}

// TestStagerTapObservesDeliveryPath checks the Stager hook sees exactly the
// delivered stream — admit with the resume index, every accepted frame in
// order, and a completed SessionEnd — without altering delivery.
func TestStagerTapObservesDeliveryPath(t *testing.T) {
	h := newTestHandler(4)
	tap := &recordingStager{}
	_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: 2 * time.Second, Stager: tap})
	client := NewClient(ClientConfig{Addr: addr, SensorID: 5, IOTimeout: 2 * time.Second})
	if _, err := client.Run(context.Background(), &sliceSource{frames: framesFor(4)}); err != nil {
		t.Fatal(err)
	}
	if got := h.delivered(5); got != 4 {
		t.Fatalf("delivery changed under the tap: %d frames", got)
	}
	tap.mu.Lock()
	defer tap.mu.Unlock()
	if len(tap.admits) != 1 || tap.admits[0] != [3]int{5, 0, 4} {
		t.Errorf("admits = %v", tap.admits)
	}
	want := []string{"0:frame-000", "1:frame-001", "2:frame-002", "3:frame-003"}
	if len(tap.frames[5]) != len(want) {
		t.Fatalf("staged frames = %v", tap.frames[5])
	}
	for i, w := range want {
		if tap.frames[5][i] != w {
			t.Errorf("staged frame %d = %q, want %q", i, tap.frames[5][i], w)
		}
	}
	if done, ok := tap.ends[5]; !ok || !done || tap.endings != 1 {
		t.Errorf("SessionEnd: ends=%v endings=%d", tap.ends, tap.endings)
	}
}
