package ingest

// Node-side hooks for a cluster gateway (internal/cluster): session state
// export/import for migrating a sensor between ingest nodes, and the small
// cleartext protocol helpers a gateway needs to route a connection by its
// hello without re-implementing the wire format.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/seccomm"
)

// SessionState is one sensor's migratable registry state: everything a peer
// node needs to continue the hello/resume/final-ack handshake exactly where
// this node left it. Delivered is the resume index the new node hands the
// sensor; Done records that the final ack already went out, so a completed
// sensor that reconnects after migration is short-circuited instead of
// re-streamed.
type SessionState struct {
	SensorID  int
	Delivered int
	Done      bool
}

// ExportSession removes and returns sensorID's session state for migration
// to another node. It reports ok=false when the sensor is unknown, when a
// live connection still owns it (a stream cannot move mid-flight — sever it
// first, or route the sensor back to this node), or when the entry has
// already passed its eviction TTL. The TTL check uses the registry's
// injected Clock, so a gateway sharing that clock and a sweep racing the
// export agree on whether the session still exists: an entry the sweep
// would delete is never handed to another node.
func (s *Server) ExportSession(sensorID int) (SessionState, bool) {
	delivered, done, ok := s.sessions.export(sensorID)
	if !ok {
		return SessionState{}, false
	}
	return SessionState{SensorID: sensorID, Delivered: delivered, Done: done}, true
}

// ImportSession seeds the registry with a session migrated from another
// node. It refuses to overwrite an entry a live connection owns — the
// connection's view is authoritative — and otherwise merges by keeping the
// larger delivered index, so a duplicated or delayed import can never
// rewind a stream.
func (s *Server) ImportSession(st SessionState) error {
	if st.Delivered < 0 {
		return fmt.Errorf("ingest: import session %d: negative delivered index %d", st.SensorID, st.Delivered)
	}
	if !s.sessions.importEntry(st.SensorID, st.Delivered, st.Done) {
		return fmt.Errorf("ingest: import session %d: a live connection owns it", st.SensorID)
	}
	return nil
}

// PeekSession returns sensorID's current registry state without removing
// it. ok is false for unknown or TTL-expired entries — the same visibility
// rule the sweep and ExportSession apply, so every tier reading the
// registry sees one truth.
func (s *Server) PeekSession(sensorID int) (SessionState, bool) {
	r := &s.sessions
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.s[sensorID]
	if e == nil || r.expiredLocked(e, r.now()) {
		return SessionState{}, false
	}
	return SessionState{SensorID: sensorID, Delivered: e.delivered, Done: e.done}, true
}

// ExportSessions snapshots every idle, unexpired session entry. A draining
// gateway calls it after the node's connections are severed to migrate the
// node's whole session population; entries still owned by a racing new
// connection are skipped.
func (s *Server) ExportSessions() []SessionState {
	return s.sessions.snapshot()
}

// ReadHello consumes one cleartext hello from conn under a read deadline
// and returns the sensor id it identifies. A bad magic byte is a
// *ProtocolError.
func ReadHello(conn net.Conn, timeout time.Duration) (int, error) {
	var hello [helloLen]byte
	if err := seccomm.ReadFullDeadline(conn, hello[:], timeout); err != nil {
		return 0, err
	}
	if hello[0] != helloMagic {
		return 0, &ProtocolError{What: "hello magic", Value: hello[0]}
	}
	return int(binary.BigEndian.Uint32(hello[1:])), nil
}

// WriteHello writes the cleartext hello identifying sensorID under a write
// deadline — what a gateway replays to the node it routed a connection to.
func WriteHello(conn net.Conn, sensorID int, timeout time.Duration) error {
	var hello [helloLen]byte
	hello[0] = helloMagic
	binary.BigEndian.PutUint32(hello[1:], uint32(sensorID))
	_, err := writeFullDeadline(conn, hello[:], timeout)
	return err
}

// WriteReject answers a hello with a non-accept status, for gateways that
// must shed or refuse a connection themselves (no routable node, overload).
// st must be a reject status: accepting is the node's decision alone.
func WriteReject(conn net.Conn, st Status, timeout time.Duration) error {
	if !st.known() || st == StatusAccept {
		return errors.New("ingest: WriteReject requires a known reject status")
	}
	return writeAck(conn, st, 0, timeout)
}
