package ingest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/seccomm"
)

// The frame-release pacer: AGE fixes every frame's *size*, but a sensor
// that transmits whenever its adaptive policy has data still modulates
// *when* frames appear on the wire, and inter-frame timing classifies
// events about as well as sizes do (the AoI-eavesdropper literature makes
// the same observation for adaptive sampling at large). The pacer separates
// frame generation — which stays data-driven — from frame release:
//
//   - PaceLive transmits each frame at its data-driven generation time.
//     This is the honest model of an undefended low-power sensor and the
//     baseline the timing attack is mounted against.
//   - PaceConstant releases one frame per fixed interval. Release slots
//     with no generated frame ready send an encrypted dummy instead, so
//     the wire carries one indistinguishable frame per slot no matter
//     what the sensor observed.
//   - PaceJitter is PaceConstant with each interval perturbed by a seeded
//     uniform jitter — a cheaper schedule that trades a small residual
//     pattern for lower worst-case added latency.
//
// Dummies must be dropped by the receiving application *after* unsealing —
// only the key holder can tell them apart, which is the point. The Mark/
// Unmark helpers define the one-byte payload convention for that, and
// Session.Frame implementations return ErrDummyFrame to make the server
// discard a dummy without advancing the sensor's delivered index.
//
// The cost of pacing is freshness: a frame generated mid-interval waits for
// its slot. The client accounts that wait as age of information (AoI) in
// ClientStats, so the privacy/freshness trade-off is measured, not assumed.

// PaceMode selects the client's frame-release discipline.
type PaceMode int

const (
	// PaceOff disables the pacer: frames are sent as fast as the link
	// accepts them, batched per ClientConfig.WriteBatch.
	PaceOff PaceMode = iota
	// PaceLive releases each frame at its data-driven generation time (the
	// TimedSource schedule). No dummies; the timing channel is open.
	PaceLive
	// PaceConstant releases exactly one frame per Interval, substituting
	// sealed dummies when no real frame is ready.
	PaceConstant
	// PaceJitter releases one frame per Interval*(1 ± JitterFrac*u), with
	// u drawn by the seeded pacer RNG; dummies fill empty slots.
	PaceJitter
)

// String names the mode for flags and logs.
func (m PaceMode) String() string {
	switch m {
	case PaceOff:
		return "off"
	case PaceLive:
		return "live"
	case PaceConstant:
		return "constant"
	case PaceJitter:
		return "jitter"
	}
	return fmt.Sprintf("pace(%d)", int(m))
}

// ParsePaceMode parses a -pace flag value.
func ParsePaceMode(s string) (PaceMode, error) {
	switch s {
	case "off":
		return PaceOff, nil
	case "live":
		return PaceLive, nil
	case "constant":
		return PaceConstant, nil
	case "jitter":
		return PaceJitter, nil
	}
	return 0, fmt.Errorf("ingest: unknown pace mode %q (want off, live, constant, or jitter)", s)
}

// maxJitterFrac caps PacerConfig.JitterFrac: a jitter of 1 would allow
// zero-length intervals, collapsing the release schedule.
const maxJitterFrac = 0.9

// PacerConfig configures the client's frame-release pacer.
type PacerConfig struct {
	// Mode selects the release discipline (default PaceOff).
	Mode PaceMode
	// Interval is the release period for PaceConstant/PaceJitter. It must
	// be positive in those modes. To keep AoI bounded it should be at most
	// the source's mean generation gap; shorter intervals spend goodput on
	// dummies to buy freshness.
	Interval time.Duration
	// JitterFrac perturbs each PaceJitter interval by a uniform draw in
	// [-JitterFrac, +JitterFrac] of Interval. Clamped to [0, 0.9].
	JitterFrac float64
	// Seed drives the jitter schedule. Zero falls back to the client's
	// ClientConfig.Seed derivation, keeping fixed-seed runs deterministic.
	Seed int64
	// Dummy produces one sealed cover frame, required for PaceConstant and
	// PaceJitter. The result must be indistinguishable from a real sealed
	// frame on the wire (same size distribution, fresh nonce) and must
	// unseal to a payload Unmark reports as a dummy.
	Dummy func() ([]byte, error)
}

// TimedSource is a FrameSource whose frames become available on a
// data-driven schedule — the timing side-channel itself. After each Next
// call, LastGap reports the delay between the previous frame's availability
// and the just-produced frame's availability (for the first frame after a
// Seek, the delay from the stream start). PaceLive enforces this schedule
// on the wire; PaceConstant/PaceJitter use it only to decide whether the
// pending frame has "happened" yet and must otherwise be covered by a
// dummy. Sources that don't implement it are treated as always-available
// (every gap zero).
type TimedSource interface {
	FrameSource
	// The data-driven generation gap is the timing side-channel's secret:
	// leaktaint tracks every value derived from it.
	//age:secret
	LastGap() time.Duration
}

// Payload marker bytes, the first byte of every *unsealed* payload under
// the pacer's dummy convention. They live inside the sealed envelope, so an
// eavesdropper cannot read them; the key-holding receiver strips them with
// Unmark.
const (
	markerDummy = 0x00
	markerReal  = 0x01
)

// ErrDummyFrame is returned by Session.Frame implementations that unsealed
// a frame and found a pacer dummy. The server discards the frame without
// advancing the sensor's delivered index, so delivery accounting — and the
// resume contract — are identical with pacing on or off.
var ErrDummyFrame = errors.New("ingest: dummy frame")

// MarkReal returns payload prefixed with the real-frame marker. Sources
// seal the marked payload; the receiving session unmarks after unsealing.
func MarkReal(payload []byte) []byte {
	out := make([]byte, len(payload)+1)
	out[0] = markerReal
	copy(out[1:], payload)
	return out
}

// MarkDummy returns filler prefixed with the dummy marker. The filler's
// length should match a real payload's so sealed sizes are identical.
func MarkDummy(filler []byte) []byte {
	out := make([]byte, len(filler)+1)
	out[0] = markerDummy
	copy(out[1:], filler)
	return out
}

// Unmark splits a marked payload into its content and its dummy verdict.
// For dummies the returned payload is nil — the filler is meaningless by
// construction. An unknown marker is a *ProtocolError: it means the peer is
// not speaking the pacer convention, and guessing would either drop real
// data or feed filler downstream.
func Unmark(payload []byte) ([]byte, bool, error) {
	if len(payload) == 0 {
		return nil, false, &ProtocolError{What: "frame marker (empty payload)", Value: 0}
	}
	switch payload[0] {
	case markerReal:
		return payload[1:], false, nil
	case markerDummy:
		return nil, true, nil
	}
	return nil, false, &ProtocolError{What: "frame marker", Value: payload[0]}
}

// paceScheduler emits the inter-slot intervals of a release schedule. With
// no RNG (constant mode, or zero jitter) every interval is fixed; otherwise
// each interval is Interval*(1 + JitterFrac*u), u uniform in [-1, 1), from
// the seeded RNG — deterministic for a fixed seed.
type paceScheduler struct {
	interval time.Duration
	jitter   float64
	rng      *rand.Rand
}

func newPaceScheduler(p PacerConfig, seed int64) *paceScheduler {
	s := &paceScheduler{interval: p.Interval, jitter: p.JitterFrac}
	if p.Mode == PaceJitter && p.JitterFrac > 0 {
		s.rng = rand.New(rand.NewSource(seed))
	}
	return s
}

// next returns the delay from the previous release slot to the next one.
func (s *paceScheduler) next() time.Duration {
	if s.rng == nil {
		return s.interval
	}
	u := 2*s.rng.Float64() - 1
	return time.Duration(float64(s.interval) * (1 + s.jitter*u))
}

// pacerSeed resolves the RNG seed for the pacer's schedule: an explicit
// PacerConfig.Seed wins, otherwise the client's own (per-sensor) seed.
func (cfg ClientConfig) pacerSeed() int64 {
	if cfg.Pacer.Seed != 0 {
		return cfg.Pacer.Seed
	}
	return cfg.Seed
}

// observeAoI accounts one real frame's age of information at release.
func (c *Client) observeAoI(st *ClientStats, aoi time.Duration) {
	if aoi < 0 {
		aoi = 0
	}
	us := aoi.Microseconds()
	st.AoIMicrosTotal += us
	if us > st.AoIMicrosMax {
		st.AoIMicrosMax = us
	}
	c.m.aoiNs.Observe(aoi.Nanoseconds())
}

// sendLive releases each frame at its data-driven generation time: the
// undefended low-power sensor, transmitting the moment its batch exists.
// The virtual generation clock is anchored at the loop start and advanced
// by the source's LastGap per frame; the loop sleeps until each frame's
// generation instant before writing it.
func (c *Client) sendLive(ctx context.Context, conn net.Conn, src FrameSource, st *ClientStats, resume, total int) error {
	ts, _ := src.(TimedSource)
	avail := time.Now()
	var gather []byte
	for fi := resume; fi < total; fi++ {
		msg, err := src.Next(ctx)
		if err != nil {
			return err
		}
		if ts != nil {
			//age:declassify PaceLive is the undefended baseline: releasing on the data-driven schedule is the leak under study
			avail = avail.Add(ts.LastGap())
			if d := time.Until(avail); d > 0 {
				if !sleepCtx(ctx.Done(), d) {
					return ctx.Err()
				}
			}
		}
		gather, err = seccomm.AppendFrame(gather[:0], msg)
		if err != nil {
			return Terminal(fmt.Errorf("frame %d: %w", fi, err))
		}
		if err := c.writeGather(ctx, conn, gather, st, fi); err != nil {
			return err
		}
		st.FramesSent++
		st.WireBytesSent += len(msg)
		c.m.framesSent.Inc()
		c.m.wireBytes.Add(int64(len(msg)))
		if ts != nil {
			c.observeAoI(st, time.Since(avail))
		}
	}
	return nil
}

// sendPaced releases exactly one frame per schedule slot. The pending real
// frame is produced eagerly (the sensor prepares its batch while the radio
// waits for a slot) but goes out only at the first slot at or after its
// generation instant; earlier slots carry sealed dummies, so the wire shows
// one uniform frame per slot regardless of what the sensor measured. Real
// frames advance the stream index; dummies don't, matching the server's
// ErrDummyFrame accounting. No trailing dummies are sent after the last
// real frame — session duration is outside the pacer's threat model (see
// DESIGN.md).
func (c *Client) sendPaced(ctx context.Context, conn net.Conn, src FrameSource, st *ClientStats, resume, total int) error {
	cfg := c.cfg
	if cfg.Pacer.Interval <= 0 {
		return Terminal(errors.New("ingest: paced release needs a positive PacerConfig.Interval"))
	}
	if cfg.Pacer.Dummy == nil {
		return Terminal(errors.New("ingest: paced release needs a PacerConfig.Dummy generator"))
	}
	ts, _ := src.(TimedSource)
	sched := newPaceScheduler(cfg.Pacer, cfg.pacerSeed())
	start := time.Now()
	avail := start // virtual generation clock
	slot := start  // release slot clock
	var pending []byte
	var pendingAvail time.Time
	havePending := false
	var gather []byte
	for fi := resume; fi < total; {
		if !havePending {
			// Produce the next real frame. Sources may reuse their buffer,
			// so pending must be written out before the next Next call —
			// the loop guarantees that.
			msg, err := src.Next(ctx)
			if err != nil {
				return err
			}
			if ts != nil {
				avail = avail.Add(ts.LastGap())
			}
			pending, pendingAvail, havePending = msg, avail, true
		}
		slot = slot.Add(sched.next())
		if d := time.Until(slot); d > 0 {
			if !sleepCtx(ctx.Done(), d) {
				return ctx.Err()
			}
		}
		// Release decision against the scheduled slot time, not the wall
		// clock after the sleep: the schedule, not scheduler latency,
		// decides — which keeps the decision reproducible for a fixed
		// seed and gap sequence.
		out := pending
		//age:declassify reviewed: the decision collapses to one bit and both arms emit one sealed same-size frame in this slot
		real := !pendingAvail.After(slot)
		if !real {
			var err error
			out, err = cfg.Pacer.Dummy()
			if err != nil {
				return Terminal(fmt.Errorf("dummy frame: %w", err))
			}
		}
		var err error
		gather, err = seccomm.AppendFrame(gather[:0], out)
		if err != nil {
			return Terminal(fmt.Errorf("frame %d: %w", fi, err))
		}
		if err := c.writeGather(ctx, conn, gather, st, fi); err != nil {
			return err
		}
		if real {
			st.FramesSent++
			st.WireBytesSent += len(out)
			c.m.framesSent.Inc()
			c.m.wireBytes.Add(int64(len(out)))
			c.observeAoI(st, slot.Sub(pendingAvail))
			fi++
			havePending = false
		} else {
			st.DummyFrames++
			st.DummyBytesSent += len(out)
			c.m.dummyFrames.Inc()
		}
	}
	return nil
}
