package ingest

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable registry clock so TTL paths run without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func newExportServer(t *testing.T, clk *fakeClock, ttl time.Duration) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Handler:    newTestHandler(4),
		SessionTTL: ttl,
		Clock:      clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestExportImportRoundTrip(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	a := newExportServer(t, clk, time.Minute)
	b := newExportServer(t, clk, time.Minute)

	if err := a.ImportSession(SessionState{SensorID: 9, Delivered: 7}); err != nil {
		t.Fatal(err)
	}
	st, ok := a.ExportSession(9)
	if !ok || st.Delivered != 7 || st.Done {
		t.Fatalf("export = %+v, %v; want delivered 7, not done", st, ok)
	}
	if _, ok := a.ExportSession(9); ok {
		t.Fatal("second export of a removed session succeeded")
	}
	if err := b.ImportSession(st); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.PeekSession(9); !ok || got.Delivered != 7 {
		t.Fatalf("peer peek = %+v, %v; want delivered 7", got, ok)
	}
}

func TestImportNeverRewinds(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	srv := newExportServer(t, clk, time.Minute)
	if err := srv.ImportSession(SessionState{SensorID: 2, Delivered: 9}); err != nil {
		t.Fatal(err)
	}
	// A delayed duplicate import with a smaller index must not rewind.
	if err := srv.ImportSession(SessionState{SensorID: 2, Delivered: 4}); err != nil {
		t.Fatal(err)
	}
	if st, _ := srv.PeekSession(2); st.Delivered != 9 {
		t.Fatalf("delivered = %d after stale import, want 9", st.Delivered)
	}
	if err := srv.ImportSession(SessionState{SensorID: 2, Delivered: -1}); err == nil {
		t.Fatal("negative delivered index accepted")
	}
}

// TestExportRefusesExpired is the eviction-agreement contract: an entry the
// TTL sweep would delete is never exported to another node, using the
// injected clock — no sleeping.
func TestExportRefusesExpired(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	srv := newExportServer(t, clk, time.Minute)
	if err := srv.ImportSession(SessionState{SensorID: 1, Delivered: 4, Done: true}); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Minute - time.Second)
	if _, ok := srv.ExportSession(1); !ok {
		t.Fatal("unexpired done session refused export")
	}
	if err := srv.ImportSession(SessionState{SensorID: 1, Delivered: 4, Done: true}); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Minute + time.Second)
	if st, ok := srv.ExportSession(1); ok {
		t.Fatalf("expired session exported: %+v", st)
	}
	if _, ok := srv.PeekSession(1); ok {
		t.Fatal("expired session visible to peek")
	}
	if got := srv.ExportSessions(); len(got) != 0 {
		t.Fatalf("snapshot lists expired sessions: %v", got)
	}
	// Incomplete sessions never expire: the delivered index is exactly
	// what a resuming sensor needs, however long it slept.
	if err := srv.ImportSession(SessionState{SensorID: 3, Delivered: 2}); err != nil {
		t.Fatal(err)
	}
	clk.advance(24 * time.Hour)
	if _, ok := srv.ExportSession(3); !ok {
		t.Fatal("incomplete session expired; only done sessions may")
	}
}

// TestClockInjectionEvictsWithoutSleeping drives a real connection to
// completion, then crosses the TTL on the fake clock and asserts the claim
// sweep evicts the entry — the test never sleeps for the TTL.
func TestClockInjectionEvictsWithoutSleeping(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	h := newTestHandler(2)
	srv, addr, _ := startServer(t, ServerConfig{Handler: h, SessionTTL: time.Minute, Clock: clk.now})

	runClientOnce(t, addr, 7, framesFor(2))
	waitForRegistrySize(t, srv, 1)

	clk.advance(2 * time.Minute)
	// The sweep is amortized onto claim; drive an unrelated hello through.
	runClientOnce(t, addr, 8, framesFor(2))
	waitForRegistryEviction(t, srv, 7)
}

func runClientOnce(t *testing.T, addr string, id int, frames [][]byte) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl := NewClient(ClientConfig{Addr: addr, SensorID: id})
	if _, err := cl.Run(ctx, &sliceSource{frames: frames}); err != nil {
		t.Fatalf("sensor %d: %v", id, err)
	}
}

func waitForRegistrySize(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.sessions.size() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("registry size %d never reached %d", srv.sessions.size(), n)
}

func waitForRegistryEviction(t *testing.T, srv *Server, id int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := srv.PeekSession(id); !ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("session %d never evicted after the TTL passed on the injected clock", id)
}

func TestImportRefusesActiveSession(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	srv := newExportServer(t, clk, time.Minute)
	if _, ok := srv.sessions.claim(4, 0, func() bool { return false }); !ok {
		t.Fatal("claim failed")
	}
	if err := srv.ImportSession(SessionState{SensorID: 4, Delivered: 3}); err == nil {
		t.Fatal("import overwrote a live connection's session")
	}
	if _, ok := srv.ExportSession(4); ok {
		t.Fatal("exported a session a live connection owns")
	}
	srv.sessions.release(4)
	if err := srv.ImportSession(SessionState{SensorID: 4, Delivered: 3}); err != nil {
		t.Fatalf("import after release: %v", err)
	}
}

func TestHelloHelpersRoundTrip(t *testing.T) {
	cl, sv := net.Pipe()
	defer cl.Close()
	defer sv.Close()
	errc := make(chan error, 1)
	go func() { errc <- WriteHello(cl, 1234, time.Second) }()
	id, err := ReadHello(sv, time.Second)
	if err != nil || id != 1234 {
		t.Fatalf("ReadHello = %d, %v; want 1234", id, err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	go func() { errc <- WriteReject(sv, StatusDraining, time.Second) }()
	st, idx, err := readAck(cl, time.Second)
	if err != nil || st != StatusDraining || idx != 0 {
		t.Fatalf("reject ack = (%v, %d, %v); want draining", st, idx, err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := WriteReject(sv, StatusAccept, time.Second); err == nil {
		t.Fatal("WriteReject accepted StatusAccept")
	}
}

func TestReadHelloBadMagic(t *testing.T) {
	cl, sv := net.Pipe()
	defer cl.Close()
	defer sv.Close()
	go func() {
		cl.SetWriteDeadline(time.Now().Add(time.Second))
		cl.Write([]byte{0x00, 0, 0, 0, 1})
	}()
	if _, err := ReadHello(sv, time.Second); err == nil {
		t.Fatal("bad magic accepted")
	} else if _, ok := err.(*ProtocolError); !ok {
		t.Fatalf("err = %T %v, want *ProtocolError", err, err)
	}
}
