// Package ingest implements the long-lived, sharded ingest server for
// sensor fleets, and the matching sensor-side client. It replaces the
// one-shot listener the fleet simulator grew up with: a Server is created
// once, accepts identified sensor connections for as long as the deployment
// runs, and is torn down deliberately with Drain (finish what was accepted)
// or Close (hard stop).
//
// # Architecture
//
// One TCP listener is shared by Shards accept loops. Each shard owns a
// bounded connection queue and a fixed pool of session workers; an accept
// loop enqueues into its own shard first and sweeps the others when that
// shard is full. When every queue is full the server does not spawn a
// goroutine per connection — it sheds load explicitly: the connection's
// hello is consumed and a typed StatusOverloaded reject is written back, so
// the sensor learns to back off instead of inferring failure from a reset.
// Shed connections are counted in the metrics registry (ingest.shed_*).
//
// Sessions are keyed by the cleartext sensor id in the hello. A registry
// tracks, per sensor, how many frames have been delivered across all of its
// connections — the resume index a reconnecting sensor is handed — and
// whether a connection currently owns the sensor, so a duplicate claim is
// refused (StatusDuplicate) instead of corrupting the stream.
//
// # Wire protocol
//
// All integers are big-endian. The sensor opens with a 5-byte hello:
//
//	[1B magic 0xA9][4B sensor id]
//
// The server answers with a 5-byte ack, [1B status][4B resume index]. On
// StatusAccept the sensor streams its remaining frames — length-prefixed,
// sealed by seccomm — starting at the resume index, and the server
// confirms completion with a final [1B status][4B delivered count] ack. Any
// other status is a typed reject; StatusOverloaded, StatusDraining, and
// StatusDuplicate are transient (the client retries them on a separate
// budget from reconnects), StatusRefused is permanent.
//
// # Lifecycle
//
//	srv, _ := ingest.NewServer(cfg)
//	srv.Listen("127.0.0.1:0")
//	go srv.Serve()                // blocks until Drain/Close, like http.Server
//	...
//	srv.Drain(ctx)                // stop accepting, let live sessions finish
//
// Serve returns ErrClosed after a deliberate shutdown. Drain closes the
// listener, refuses queued-but-unstarted connections with StatusDraining,
// and waits for in-flight sessions to complete; if its context expires
// first it escalates to Close semantics so teardown stays bounded. Close
// additionally severs every live connection. Both leave zero goroutines
// behind.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/seccomm"
)

// Wire-format constants. The magic byte guards against a stray peer (or a
// legacy 2-byte hello) being misread as a sensor id.
const (
	helloMagic = 0xA9
	helloLen   = 5 // [1B magic][4B sensor id]
	ackLen     = 5 // [1B status][4B index]
)

// ErrClosed is returned by Serve after Drain or Close stops the server, in
// the manner of http.ErrServerClosed.
var ErrClosed = errors.New("ingest: server closed")

// Status is the server's one-byte verdict on a connection, carried in the
// hello ack. The zero value is invalid so an all-zero ack cannot be
// mistaken for an accept.
type Status uint8

// The wire statuses.
const (
	// StatusAccept admits the connection; the ack's index is the resume
	// point (first undelivered frame).
	StatusAccept Status = iota + 1
	// StatusOverloaded sheds the connection because every shard queue is
	// full. Transient: the sensor should back off and redial.
	StatusOverloaded
	// StatusDuplicate refuses the connection because another connection
	// currently owns the sensor id. Transient: the owner is usually a
	// dying predecessor about to release its claim.
	StatusDuplicate
	// StatusDraining refuses the connection because the server is shutting
	// down gracefully. Transient from the protocol's point of view — a
	// peer server may be taking over.
	StatusDraining
	// StatusRefused rejects the sensor permanently (the handler refused to
	// open a session, e.g. an unknown sensor id).
	StatusRefused
)

// String names the status for logs and errors.
func (s Status) String() string {
	switch s {
	case StatusAccept:
		return "accept"
	case StatusOverloaded:
		return "overloaded"
	case StatusDuplicate:
		return "duplicate"
	case StatusDraining:
		return "draining"
	case StatusRefused:
		return "refused"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Transient reports whether a rejected sensor may reasonably retry.
func (s Status) Transient() bool {
	return s == StatusOverloaded || s == StatusDuplicate || s == StatusDraining
}

// known reports whether s is one of the defined wire statuses. An unknown
// byte must never be interpreted — Transient() would silently treat it as
// permanent and a RejectedError would carry a meaningless code — so readers
// validate with this before converting.
func (s Status) known() bool {
	return s >= StatusAccept && s <= StatusRefused
}

// RejectedError is returned by Client.Run when the server answered the
// hello with a non-accept status. Transient statuses are retried by the
// client itself (up to RejectAttempts); a RejectedError that escapes Run
// means the retry budget is spent or the reject was permanent.
type RejectedError struct {
	Status Status
}

func (e *RejectedError) Error() string {
	return "ingest: server rejected connection: " + e.Status.String()
}

// ProtocolError reports a malformed wire value from the peer — a protocol
// violation, as opposed to a transport failure. It is not retryable: a peer
// that speaks the wrong protocol will keep speaking it.
type ProtocolError struct {
	// What names the wire field that was malformed.
	What string
	// Value is the offending byte.
	Value uint8
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("ingest: protocol violation: %s 0x%02x", e.What, e.Value)
}

// FrameError wraps a server-side failure to read frame Index off the wire.
// The server passes it to Session.Close so handlers can distinguish a
// transport failure mid-stream (e.g. a read deadline expiry — check with
// seccomm.IsTimeout on Unwrap) from their own processing errors.
type FrameError struct {
	Index int
	Err   error
}

func (e *FrameError) Error() string { return fmt.Sprintf("frame %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying transport error to errors.Is/As.
func (e *FrameError) Unwrap() error { return e.Err }

// terminalError marks a client-side failure that no redial can fix —
// injected faults, encode/seal failures, protocol violations. Transport
// errors stay resumable.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// Terminal marks err as non-resumable: Client.Run returns it immediately
// instead of consuming the reconnect budget. FrameSource implementations
// use it to distinguish "this stream is dead" from "this link hiccuped".
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// IsTerminal reports whether err (or anything it wraps) was marked with
// Terminal.
func IsTerminal(err error) bool {
	var t *terminalError
	return errors.As(err, &t)
}

// Handler is the application half of a Server: it turns identified
// connections into Sessions and hears about connections that never
// identified themselves. Implementations must be safe for concurrent use —
// every worker calls into the same Handler.
type Handler interface {
	// Open starts a session for an accepted connection that identified
	// itself as sensorID. delivered is the registry's resume index — how
	// many frames earlier connections already delivered for this sensor.
	// Returning an error refuses the connection with StatusRefused.
	Open(sensorID, delivered int) (Session, error)
	// Rejected reports a connection refused after it identified itself
	// (currently only StatusDuplicate: the sensor id was still claimed by
	// a live connection after ClaimWait).
	Rejected(sensorID int, status Status)
	// Unattributed reports a connection that failed before its hello
	// identified a sensor (bad magic, silence until the read deadline).
	Unattributed(err error)
}

// Session is one connection's server-side stream state, created by
// Handler.Open and retired by Close exactly once.
type Session interface {
	// Total is the number of frames the sensor is assigned over its
	// lifetime; the connection streams frames [delivered, Total).
	Total() int
	// Frame processes one sealed frame. index is the frame's lifetime
	// position. Returning an error ends the connection (the error reaches
	// Close); returning nil advances the registry's delivered count.
	Frame(index int, msg []byte) error
	// Close retires the session. err is nil after a complete, confirmed
	// stream; a *FrameError after a transport failure mid-stream; the
	// Frame error verbatim when Frame ended the connection; otherwise the
	// hello/final-ack failure.
	Close(err error)
}

// Stager taps the server's delivery path for the streaming pipeline
// (decode → stage → project, see internal/staging and internal/projection):
// Admit fires once per accepted session, StageFrame once per delivered real
// frame — after Session.Frame accepted it, so pacer dummies and failed
// frames never reach it — and SessionEnd when the connection retires
// (completed reports whether the final ack went out). A nil
// ServerConfig.Stager leaves the delivery path exactly as it was.
//
// Implementations must be safe for concurrent use: calls for one sensor are
// ordered (the session registry serializes a sensor's connections) but
// different sensors call in from different workers at once. msg must not be
// retained past the call — decode or copy synchronously.
type Stager interface {
	Admit(sensorID, resume, total int)
	StageFrame(sensorID, index int, msg []byte)
	SessionEnd(sensorID int, completed bool)
}

// HandlerFuncs adapts plain functions to Handler; nil fields are no-ops
// (a nil OpenFunc refuses every connection).
type HandlerFuncs struct {
	OpenFunc         func(sensorID, delivered int) (Session, error)
	RejectedFunc     func(sensorID int, status Status)
	UnattributedFunc func(err error)
}

// Open implements Handler.
func (h HandlerFuncs) Open(sensorID, delivered int) (Session, error) {
	if h.OpenFunc == nil {
		return nil, errors.New("ingest: no open func")
	}
	return h.OpenFunc(sensorID, delivered)
}

// Rejected implements Handler.
func (h HandlerFuncs) Rejected(sensorID int, status Status) {
	if h.RejectedFunc != nil {
		h.RejectedFunc(sensorID, status)
	}
}

// Unattributed implements Handler.
func (h HandlerFuncs) Unattributed(err error) {
	if h.UnattributedFunc != nil {
		h.UnattributedFunc(err)
	}
}

// writeAck writes one [status][index] ack under a write deadline.
func writeAck(conn net.Conn, st Status, index uint32, timeout time.Duration) error {
	var buf [ackLen]byte
	buf[0] = byte(st)
	binary.BigEndian.PutUint32(buf[1:], index)
	_, err := writeFullDeadline(conn, buf[:], timeout)
	return err
}

// readAck reads one [status][index] ack under a read deadline. An unknown
// status byte is a *ProtocolError, never a Status: letting it through would
// feed garbage into Transient() and RejectedError.
func readAck(conn net.Conn, timeout time.Duration) (Status, int, error) {
	var buf [ackLen]byte
	if err := seccomm.ReadFullDeadline(conn, buf[:], timeout); err != nil {
		return 0, 0, err
	}
	st := Status(buf[0])
	if !st.known() {
		return 0, 0, &ProtocolError{What: "ack status", Value: buf[0]}
	}
	return st, int(binary.BigEndian.Uint32(buf[1:])), nil
}

// writeFullDeadline writes buf to conn under a write deadline (the raw
// cleartext hello/ack bytes; frames use seccomm.AppendFrame + this). It
// returns how many bytes were written: a deadline can expire after a
// partial write, and a retrying caller must resume from that offset —
// resending the whole buffer would duplicate the transmitted prefix and
// corrupt the stream.
func writeFullDeadline(conn net.Conn, buf []byte, timeout time.Duration) (int, error) {
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return 0, err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	return conn.Write(buf)
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(done <-chan struct{}, d time.Duration) bool {
	select {
	case <-done:
		return false
	case <-time.After(d):
		return true
	}
}
