package ingest

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/seccomm"
)

// Server defaults, applied when the corresponding ServerConfig knob is zero.
const (
	defaultShards          = 4
	defaultWorkersPerShard = 8
	defaultQueueDepth      = 32
	defaultServerIOTimeout = 5 * time.Second
	// defaultRejecters bounds the goroutines that write typed rejects to
	// shed connections; past that, shed connections are dropped outright.
	defaultRejecters = 32
	// defaultSessionTTL is how long a completed (final-acked) sensor's
	// registry entry survives idle before eviction. Without eviction the
	// registry grows one entry per sensor id ever seen — unbounded under
	// sensor churn.
	defaultSessionTTL = time.Minute
)

// ServerConfig configures a Server. Handler is required; everything else
// has a sensible default.
type ServerConfig struct {
	// Handler opens sessions for identified connections.
	Handler Handler
	// Shards is the number of accept loops, each owning one connection
	// queue and worker pool (default 4).
	Shards int
	// WorkersPerShard is the session worker count per shard (default 8).
	// Shards*WorkersPerShard bounds the concurrently served connections.
	WorkersPerShard int
	// QueueDepth is the per-shard bounded queue of accepted-but-unserved
	// connections (default 32). When every queue is full new connections
	// are shed with StatusOverloaded.
	QueueDepth int
	// IOTimeout is the per-read/per-write deadline on every connection
	// (default 5s). A silent peer fails its own session, never a worker.
	IOTimeout time.Duration
	// ClaimWait bounds how long a new connection waits for the sensor
	// id's previous owner to release its claim before the connection is
	// refused with StatusDuplicate (default IOTimeout).
	ClaimWait time.Duration
	// SessionTTL bounds the session registry under sensor churn: an entry
	// whose stream completed (final ack sent) is evicted once it has sat
	// idle this long. Incomplete streams are never evicted — their
	// delivered index is exactly what a resuming sensor needs. A completed
	// sensor that returns after eviction is re-admitted from scratch via
	// the ordinary hello handshake (delivered = 0). Zero selects the
	// default (1 minute); negative keeps every entry forever (the
	// pre-eviction behavior).
	SessionTTL time.Duration
	// Stager, when set, taps the delivery path for the streaming pipeline:
	// one Admit per accepted session, one StageFrame per delivered real
	// frame, one SessionEnd per retired connection. Nil (the default)
	// leaves the delivery path exactly as it was.
	Stager Stager
	// Clock supplies the session registry's eviction clock (default
	// time.Now). A cluster gateway injects one shared clock into every
	// node's registry and its own session-locator map so the two tiers
	// agree on when an idle entry dies; tests inject a fake clock so TTL
	// paths run without sleeping. Only idle/TTL accounting reads it —
	// I/O deadlines and claim waits stay on the wall clock.
	Clock func() time.Time
	// Metrics, when set, receives the ingest.* instrument family. Nil is
	// fine: every instrument degrades to a no-op.
	Metrics *metrics.Registry
}

func (cfg ServerConfig) withDefaults() ServerConfig {
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = defaultWorkersPerShard
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultServerIOTimeout
	}
	if cfg.ClaimWait <= 0 {
		cfg.ClaimWait = cfg.IOTimeout
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = defaultSessionTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// serverMetrics bundles the server's resolved instruments; with no registry
// all of them are nil and every update is a no-op.
type serverMetrics struct {
	accepted          *metrics.Counter
	sessionsStarted   *metrics.Counter
	sessionsCompleted *metrics.Counter
	frames            *metrics.Counter
	dummyFrames       *metrics.Counter
	wireBytes         *metrics.Counter
	shedOverload      *metrics.Counter
	shedDropped       *metrics.Counter
	rejectedDuplicate *metrics.Counter
	rejectedDraining  *metrics.Counter
	rejectedRefused   *metrics.Counter
	unattributed      *metrics.Counter
	sessionsEvicted   *metrics.Counter
	activeSessions    *metrics.Gauge
	frameBytes        *metrics.Histogram
}

func newServerMetrics(reg *metrics.Registry) serverMetrics {
	return serverMetrics{
		accepted:          reg.Counter("ingest.accepted"),
		sessionsStarted:   reg.Counter("ingest.sessions_started"),
		sessionsCompleted: reg.Counter("ingest.sessions_completed"),
		frames:            reg.Counter("ingest.frames"),
		dummyFrames:       reg.Counter("ingest.dummy_frames"),
		wireBytes:         reg.Counter("ingest.wire_bytes"),
		shedOverload:      reg.Counter("ingest.shed_overload"),
		shedDropped:       reg.Counter("ingest.shed_dropped"),
		rejectedDuplicate: reg.Counter("ingest.rejected_duplicate"),
		rejectedDraining:  reg.Counter("ingest.rejected_draining"),
		rejectedRefused:   reg.Counter("ingest.rejected_refused"),
		unattributed:      reg.Counter("ingest.unattributed"),
		sessionsEvicted:   reg.Counter("ingest.sessions_evicted"),
		activeSessions:    reg.Gauge("ingest.active_sessions"),
		frameBytes:        reg.Histogram("ingest.frame_bytes", metrics.SizeBuckets()...),
	}
}

// sessionEntry is one sensor's registry state.
type sessionEntry struct {
	delivered int  // frames delivered across all of the sensor's connections
	active    bool // a live connection currently owns the sensor
	// done marks the stream complete: the final ack went out, so the entry
	// exists only to short-circuit a redundant reconnect and is safe to
	// evict. Incomplete entries hold the resume index and are never evicted.
	done bool
	// idleSince is when the entry last lost its owning connection; the
	// eviction clock for done entries.
	idleSince time.Time
}

// sessionRegistry keys session state by sensor id. delivered is the resume
// index handed to a reconnecting sensor; active serializes connections per
// sensor so two links can never interleave one stream. Entries whose stream
// completed are evicted after sitting idle for ttl, so the registry stays
// bounded by the *live* population under sensor churn instead of growing
// with every sensor id ever seen.
type sessionRegistry struct {
	mu        sync.Mutex
	s         map[int]*sessionEntry
	ttl       time.Duration // idle lifetime of done entries; <= 0 keeps forever
	now       func() time.Time
	lastSweep time.Time
	evicted   *metrics.Counter
}

// claim marks sensorID owned and returns its delivered count, waiting up to
// wait for a previous owner (a dying predecessor connection) to release it
// first. abort short-circuits the wait (server closing).
func (r *sessionRegistry) claim(sensorID int, wait time.Duration, abort func() bool) (int, bool) {
	// The wait deadline is real elapsed time (the predecessor connection
	// tears down on the wall clock); only TTL bookkeeping uses r.now.
	deadline := time.Now().Add(wait)
	for {
		r.mu.Lock()
		r.sweepLocked(r.now())
		e := r.s[sensorID]
		if e == nil {
			e = &sessionEntry{}
			r.s[sensorID] = e
		}
		if !e.active {
			e.active = true
			// A fresh connection restarts the completion clock: if it
			// delivers nothing new, serveConn's final ack re-marks done.
			e.done = false
			delivered := e.delivered
			r.mu.Unlock()
			return delivered, true
		}
		r.mu.Unlock()
		if time.Now().After(deadline) || abort() {
			return 0, false
		}
		time.Sleep(time.Millisecond)
	}
}

// sweepLocked evicts entries whose stream completed and whose idle time
// passed the TTL. Amortized: a full map scan runs at most every ttl/4, so
// claim stays O(1) between sweeps. Callers hold r.mu.
func (r *sessionRegistry) sweepLocked(now time.Time) {
	if r.ttl <= 0 || now.Sub(r.lastSweep) < r.ttl/4 {
		return
	}
	r.lastSweep = now
	for id, e := range r.s {
		if e.done && !e.active && now.Sub(e.idleSince) >= r.ttl {
			delete(r.s, id)
			r.evicted.Inc()
		}
	}
}

func (r *sessionRegistry) release(sensorID int) {
	r.mu.Lock()
	e := r.s[sensorID]
	e.active = false
	e.idleSince = r.now()
	r.mu.Unlock()
}

// expiredLocked reports whether e would be evicted by the next sweep: done,
// idle, and past the TTL. Export paths must consult this so a migrating
// gateway and the sweep agree on whether the entry still exists — without
// it, an entry the sweep is about to delete could be exported to another
// node and resurrect a completed stream there. Callers hold r.mu.
func (r *sessionRegistry) expiredLocked(e *sessionEntry, now time.Time) bool {
	return r.ttl > 0 && e.done && !e.active && now.Sub(e.idleSince) >= r.ttl
}

// export removes and returns sensorID's idle entry for migration to another
// node's registry. It fails when the sensor has no entry, when a live
// connection still owns it (a stream cannot move mid-flight), or when the
// entry is already past its eviction TTL (the sweep and the migration must
// agree the session is gone).
func (r *sessionRegistry) export(sensorID int) (delivered int, done, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.s[sensorID]
	if e == nil || e.active || r.expiredLocked(e, r.now()) {
		return 0, false, false
	}
	delete(r.s, sensorID)
	return e.delivered, e.done, true
}

// importEntry seeds the registry with a migrated session. An active entry is
// never overwritten (the live connection's view is authoritative); an idle
// entry merges by keeping the larger delivered index, so a racing duplicate
// import cannot rewind a stream.
func (r *sessionRegistry) importEntry(sensorID, delivered int, done bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.s[sensorID]
	if e == nil {
		r.s[sensorID] = &sessionEntry{delivered: delivered, done: done, idleSince: r.now()}
		return true
	}
	if e.active {
		return false
	}
	if delivered > e.delivered {
		e.delivered = delivered
		e.done = done
	}
	e.idleSince = r.now()
	return true
}

// snapshot lists every idle, unexpired entry (sensor id, delivered, done).
// Active entries are skipped: a drain exports after severing its
// connections, so anything still active belongs to a racing new owner.
func (r *sessionRegistry) snapshot() []SessionState {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]SessionState, 0, len(r.s))
	for id, e := range r.s {
		if e.active || r.expiredLocked(e, now) {
			continue
		}
		out = append(out, SessionState{SensorID: id, Delivered: e.delivered, Done: e.done})
	}
	return out
}

func (r *sessionRegistry) advance(sensorID int) {
	r.mu.Lock()
	r.s[sensorID].delivered++
	r.mu.Unlock()
}

// complete marks the sensor's stream done — called after the final ack is
// on the wire, the same signal the sensor itself takes as end-of-stream.
func (r *sessionRegistry) complete(sensorID int) {
	r.mu.Lock()
	if e := r.s[sensorID]; e != nil {
		e.done = true
	}
	r.mu.Unlock()
}

// size reports the registry's current entry count (for the bounded-registry
// gauge and tests).
func (r *sessionRegistry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.s)
}

// Server is a long-lived, sharded ingest endpoint. Create with NewServer,
// bind with Listen, run with Serve, and stop with Drain or Close. All
// methods are safe for concurrent use.
type Server struct {
	cfg ServerConfig
	m   serverMetrics

	queues   []chan net.Conn
	sessions sessionRegistry

	rejectSem chan struct{}

	mu        sync.Mutex
	ln        net.Listener
	conns     map[net.Conn]struct{}
	serving   bool
	stopping  bool  // Drain/Close began: listener closed, nothing new accepted
	closed    bool  // hard stop: live connections severed
	acceptErr error // first fatal accept failure

	acceptWG sync.WaitGroup
	workerWG sync.WaitGroup
	rejectWG sync.WaitGroup

	// finished closes when teardown is complete: accept loops joined,
	// queues drained, workers and rejecters exited.
	finished   chan struct{}
	finishOnce sync.Once
}

// NewServer validates cfg, fills defaults, and returns an unbound Server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Handler == nil {
		return nil, errors.New("ingest: ServerConfig.Handler is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		m:         newServerMetrics(cfg.Metrics),
		queues:    make([]chan net.Conn, cfg.Shards),
		sessions:  sessionRegistry{s: map[int]*sessionEntry{}, ttl: cfg.SessionTTL, now: cfg.Clock},
		rejectSem: make(chan struct{}, defaultRejecters),
		conns:     map[net.Conn]struct{}{},
		finished:  make(chan struct{}),
	}
	s.sessions.evicted = s.m.sessionsEvicted
	for i := range s.queues {
		s.queues[i] = make(chan net.Conn, cfg.QueueDepth)
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("ingest.queue_depth", func() int64 {
			var n int64
			for _, q := range s.queues {
				n += int64(len(q))
			}
			return n
		})
		reg.GaugeFunc("ingest.session_registry_size", func() int64 {
			return int64(s.sessions.size())
		})
	}
	return s, nil
}

// Listen binds the server to addr (e.g. "127.0.0.1:0"). It does not start
// serving; call Serve.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping || s.closed {
		ln.Close()
		return ErrClosed
	}
	if s.ln != nil {
		ln.Close()
		return errors.New("ingest: server already listening")
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listener address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve runs the accept loops and worker pools, blocking until the server
// is stopped. Like http.Server.Serve it returns ErrClosed after a
// deliberate Drain/Close, and the underlying accept error if the listener
// failed.
func (s *Server) Serve() error {
	s.mu.Lock()
	if s.ln == nil {
		s.mu.Unlock()
		return errors.New("ingest: Serve before Listen")
	}
	if s.serving {
		s.mu.Unlock()
		return errors.New("ingest: Serve called twice")
	}
	if s.stopping || s.closed {
		s.mu.Unlock()
		s.finishOnce.Do(func() { close(s.finished) })
		return ErrClosed
	}
	s.serving = true
	ln := s.ln
	s.mu.Unlock()

	for i := range s.queues {
		q := s.queues[i]
		for w := 0; w < s.cfg.WorkersPerShard; w++ {
			s.workerWG.Add(1)
			go s.worker(q)
		}
		s.acceptWG.Add(1)
		go s.acceptLoop(i, ln)
	}

	// Teardown runs here, exactly once, whatever triggered the stop: join
	// the accept loops (listener closed), close the queues so workers
	// drain and exit, then join workers and in-flight rejecters.
	s.acceptWG.Wait()
	for _, q := range s.queues {
		close(q)
	}
	s.workerWG.Wait()
	s.rejectWG.Wait()
	s.finishOnce.Do(func() { close(s.finished) })

	s.mu.Lock()
	err := s.acceptErr
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return ErrClosed
}

// Drain gracefully stops the server: the listener closes, queued
// connections that never started are refused with StatusDraining, and
// in-flight sessions run to completion. If ctx expires first, Drain
// escalates to a hard Close so teardown stays bounded, and returns the
// context's error.
func (s *Server) Drain(ctx context.Context) error {
	s.beginStop(false)
	select {
	case <-s.finished:
		return nil
	case <-ctx.Done():
		s.beginStop(true)
		<-s.finished
		return ctx.Err()
	}
}

// Close hard-stops the server: the listener closes and every live
// connection is severed, failing in-flight sessions with their read/write
// errors. Close waits for all server goroutines to exit. It is idempotent.
func (s *Server) Close() error {
	s.beginStop(true)
	<-s.finished
	return nil
}

// beginStop transitions to stopping (and, when kill is set, to closed,
// severing live connections). If Serve was never started there is no
// teardown to wait for, so finished closes here.
func (s *Server) beginStop(kill bool) {
	s.mu.Lock()
	if !s.stopping {
		s.stopping = true
		if s.ln != nil {
			s.ln.Close()
		}
	}
	if kill && !s.closed {
		s.closed = true
		for c := range s.conns {
			c.Close()
		}
	}
	serving := s.serving
	s.mu.Unlock()
	if !serving {
		s.finishOnce.Do(func() { close(s.finished) })
	}
}

func (s *Server) isStopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopping
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// track registers a live connection for Close to sever; it reports false —
// and closes the connection — when the server is already closed.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return false
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// acceptLoop accepts into this shard's queue, sweeping the other shards
// when it is full; with every queue full the connection is shed with a
// typed reject instead of an unbounded goroutine.
func (s *Server) acceptLoop(shard int, ln net.Listener) {
	defer s.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isStopping() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.mu.Lock()
			if s.acceptErr == nil {
				s.acceptErr = fmt.Errorf("ingest: accept: %w", err)
			}
			s.mu.Unlock()
			s.beginStop(false)
			return
		}
		s.m.accepted.Inc()
		if !s.track(conn) {
			return
		}
		if s.enqueue(shard, conn) {
			continue
		}
		s.shed(conn)
	}
}

// enqueue offers conn to this shard's queue first, then sweeps the others.
func (s *Server) enqueue(shard int, conn net.Conn) bool {
	n := len(s.queues)
	for off := 0; off < n; off++ {
		select {
		case s.queues[(shard+off)%n] <- conn:
			return true
		default:
		}
	}
	return false
}

// shed rejects an overload-shed connection with StatusOverloaded. The
// reject itself costs a bounded goroutine (it must read the hello before
// answering — closing with the hello unread would send a TCP reset that
// can destroy the in-flight reject bytes); past the rejecter bound the
// connection is dropped outright.
func (s *Server) shed(conn net.Conn) {
	s.m.shedOverload.Inc()
	select {
	case s.rejectSem <- struct{}{}:
		s.rejectWG.Add(1)
		go func() {
			defer s.rejectWG.Done()
			defer func() { <-s.rejectSem }()
			s.rejectConn(conn, StatusOverloaded)
		}()
	default:
		s.m.shedDropped.Inc()
		s.untrack(conn)
		conn.Close()
	}
}

// rejectConn consumes the peer's hello (best effort, short deadline) and
// answers with a typed reject status before closing.
func (s *Server) rejectConn(conn net.Conn, st Status) {
	defer func() {
		s.untrack(conn)
		conn.Close()
	}()
	timeout := s.cfg.IOTimeout
	if timeout > time.Second {
		timeout = time.Second
	}
	var hello [helloLen]byte
	if err := seccomm.ReadFullDeadline(conn, hello[:], timeout); err != nil {
		return
	}
	writeAck(conn, st, 0, timeout)
}

// worker serves queued connections until the queue closes. During a drain,
// connections that never started a session are refused with StatusDraining;
// after a hard close they are dropped (Close already severed them).
func (s *Server) worker(q chan net.Conn) {
	defer s.workerWG.Done()
	for conn := range q {
		switch {
		case s.isClosed():
			s.untrack(conn)
			conn.Close()
		case s.isStopping():
			s.m.rejectedDraining.Inc()
			s.rejectConn(conn, StatusDraining)
		default:
			s.serveConn(conn)
		}
	}
}

// serveConn runs one connection's full lifecycle: hello, claim, session
// open, resume ack, frame loop, final ack.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.untrack(conn)
		conn.Close()
	}()
	timeout := s.cfg.IOTimeout
	var hello [helloLen]byte
	if err := seccomm.ReadFullDeadline(conn, hello[:], timeout); err != nil {
		s.m.unattributed.Inc()
		s.cfg.Handler.Unattributed(fmt.Errorf("hello: %w", err))
		return
	}
	if hello[0] != helloMagic {
		s.m.unattributed.Inc()
		s.cfg.Handler.Unattributed(fmt.Errorf("hello: bad magic 0x%02x", hello[0]))
		return
	}
	sensorID := int(binary.BigEndian.Uint32(hello[1:]))
	delivered, ok := s.sessions.claim(sensorID, s.cfg.ClaimWait, s.isClosed)
	if !ok {
		s.m.rejectedDuplicate.Inc()
		s.cfg.Handler.Rejected(sensorID, StatusDuplicate)
		writeAck(conn, StatusDuplicate, 0, timeout)
		return
	}
	defer s.sessions.release(sensorID)

	sess, err := s.cfg.Handler.Open(sensorID, delivered)
	if err != nil {
		s.m.rejectedRefused.Inc()
		writeAck(conn, StatusRefused, 0, timeout)
		return
	}
	s.m.sessionsStarted.Inc()
	s.m.activeSessions.Add(1)
	defer s.m.activeSessions.Add(-1)
	total := sess.Total()
	completed := false
	if stg := s.cfg.Stager; stg != nil {
		stg.Admit(sensorID, delivered, total)
		defer func() { stg.SessionEnd(sensorID, completed) }()
	}

	if err := writeAck(conn, StatusAccept, uint32(delivered), timeout); err != nil {
		sess.Close(fmt.Errorf("hello ack: %w", err))
		return
	}
	// Buffered frame reads: clients gather frames into batched writes, and
	// reading them back one socket read per frame would forfeit the savings.
	fr := seccomm.NewFrameReader(conn, 0)
	for fi := delivered; fi < total; {
		msg, err := fr.ReadFrame(timeout)
		if err != nil {
			sess.Close(&FrameError{Index: fi, Err: err})
			return
		}
		s.m.wireBytes.Add(int64(len(msg)))
		s.m.frameBytes.Observe(int64(len(msg)))
		if err := sess.Frame(fi, msg); err != nil {
			// A pacer dummy occupies a wire slot but carries no data: it is
			// discarded here without advancing the stream index or the
			// registry, so resume/delivery accounting is identical with
			// pacing on or off.
			if errors.Is(err, ErrDummyFrame) {
				s.m.dummyFrames.Inc()
				continue
			}
			sess.Close(err)
			return
		}
		s.sessions.advance(sensorID)
		s.m.frames.Inc()
		if stg := s.cfg.Stager; stg != nil {
			stg.StageFrame(sensorID, fi, msg)
		}
		fi++
	}
	if err := writeAck(conn, StatusAccept, uint32(total), timeout); err != nil {
		sess.Close(fmt.Errorf("final ack: %w", err))
		return
	}
	// The final ack is on the wire: the stream is complete, and the
	// registry entry becomes eligible for TTL eviction.
	s.sessions.complete(sensorID)
	completed = true
	s.m.sessionsCompleted.Inc()
	sess.Close(nil)
}
