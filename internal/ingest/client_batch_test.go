package ingest

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestWriteBatchDeliversIdentically pins the gathered-write path: batched
// clients must deliver the same frames in the same order as per-frame
// clients, with identical payload byte accounting, for batch sizes that
// divide the frame count evenly and ones that leave a remainder.
func TestWriteBatchDeliversIdentically(t *testing.T) {
	for _, batch := range []int{1, 3, 8, 64} {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			h := newTestHandler(10)
			_, addr, _ := startServer(t, ServerConfig{Handler: h, IOTimeout: 2 * time.Second})
			client := NewClient(ClientConfig{
				Addr: addr, SensorID: 7, IOTimeout: 2 * time.Second, WriteBatch: batch,
			})
			frames := framesFor(10)
			stats, err := client.Run(context.Background(), &sliceSource{frames: frames})
			if err != nil {
				t.Fatal(err)
			}
			if stats.FramesSent != 10 {
				t.Errorf("FramesSent = %d, want 10", stats.FramesSent)
			}
			wantBytes := 0
			for _, f := range frames {
				wantBytes += len(f)
			}
			if stats.WireBytesSent != wantBytes {
				t.Errorf("WireBytesSent = %d, want %d", stats.WireBytesSent, wantBytes)
			}
			if got := h.delivered(7); got != 10 {
				t.Fatalf("server delivered %d frames, want 10", got)
			}
			for i, f := range frames {
				if got := string(h.frames[7][i]); got != string(f) {
					t.Errorf("frame %d = %q, want %q", i, got, f)
				}
			}
		})
	}
}

// TestWriteBatchCapped pins the maxWriteBatch bound: an absurd WriteBatch is
// clamped rather than gathering unbounded buffers.
func TestWriteBatchCapped(t *testing.T) {
	cfg := ClientConfig{WriteBatch: 1 << 20}.withDefaults()
	if cfg.WriteBatch != maxWriteBatch {
		t.Fatalf("WriteBatch = %d, want cap %d", cfg.WriteBatch, maxWriteBatch)
	}
}
