// Package chacha implements the ChaCha20 stream cipher as specified in IETF
// RFC 7539 (now RFC 8439). The paper's simulator encrypts the sensor-server
// link with ChaCha20 (§5.1); Go's standard library does not ship it, so it is
// implemented here from the RFC and validated against the RFC's test vectors.
//
// A stream cipher preserves plaintext length exactly, which is precisely why
// batched message sizes leak the adaptive policy's collection rate — and why
// AGE's fixed-length output closes the channel.
package chacha

import (
	"encoding/binary"
	"fmt"
)

const (
	// KeySize is the ChaCha20 key length in bytes.
	KeySize = 32
	// NonceSize is the RFC 7539 (96-bit) nonce length in bytes.
	NonceSize = 12
	blockSize = 64
)

// Cipher is a ChaCha20 keystream generator bound to a key and nonce. It
// implements encryption and decryption (which are the same XOR operation).
// A Cipher tracks its block counter, so successive XORKeyStream calls
// continue the keystream; do not reuse a (key, nonce) pair across messages.
type Cipher struct {
	state   [16]uint32 // initial state template (counter at index 12)
	counter uint32
	buf     [blockSize]byte // leftover keystream
	bufUsed int             // bytes of buf already consumed (blockSize = empty)
}

// New creates a ChaCha20 cipher with the given 256-bit key and 96-bit nonce,
// starting at the given initial block counter (RFC 7539 uses 1 for the cipher
// proper and 0 for deriving a Poly1305 key).
func New(key, nonce []byte, counter uint32) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("chacha: key must be %d bytes, got %d", KeySize, len(key))
	}
	if len(nonce) != NonceSize {
		return nil, fmt.Errorf("chacha: nonce must be %d bytes, got %d", NonceSize, len(nonce))
	}
	c := &Cipher{counter: counter, bufUsed: blockSize}
	// "expand 32-byte k" constants.
	c.state[0] = 0x61707865
	c.state[1] = 0x3320646e
	c.state[2] = 0x79622d32
	c.state[3] = 0x6b206574
	for i := 0; i < 8; i++ {
		c.state[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	for i := 0; i < 3; i++ {
		c.state[13+i] = binary.LittleEndian.Uint32(nonce[4*i:])
	}
	return c, nil
}

func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = d<<16 | d>>16
	c += d
	b ^= c
	b = b<<12 | b>>20
	a += b
	d ^= a
	d = d<<8 | d>>24
	c += d
	b ^= c
	b = b<<7 | b>>25
	return a, b, c, d
}

// block generates one 64-byte keystream block for the given counter.
func (c *Cipher) block(counter uint32, out *[blockSize]byte) {
	var x [16]uint32
	copy(x[:], c.state[:])
	x[12] = counter
	w := x
	for i := 0; i < 10; i++ { // 20 rounds = 10 double rounds
		// Column rounds.
		w[0], w[4], w[8], w[12] = quarterRound(w[0], w[4], w[8], w[12])
		w[1], w[5], w[9], w[13] = quarterRound(w[1], w[5], w[9], w[13])
		w[2], w[6], w[10], w[14] = quarterRound(w[2], w[6], w[10], w[14])
		w[3], w[7], w[11], w[15] = quarterRound(w[3], w[7], w[11], w[15])
		// Diagonal rounds.
		w[0], w[5], w[10], w[15] = quarterRound(w[0], w[5], w[10], w[15])
		w[1], w[6], w[11], w[12] = quarterRound(w[1], w[6], w[11], w[12])
		w[2], w[7], w[8], w[13] = quarterRound(w[2], w[7], w[8], w[13])
		w[3], w[4], w[9], w[14] = quarterRound(w[3], w[4], w[9], w[14])
	}
	for i := range w {
		binary.LittleEndian.PutUint32(out[4*i:], w[i]+x[i])
	}
}

// XORKeyStream XORs src with the keystream into dst. dst and src may overlap
// exactly or not at all; dst must be at least len(src) bytes. The keystream
// position advances by len(src).
func (c *Cipher) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("chacha: dst shorter than src")
	}
	for i := 0; i < len(src); i++ {
		if c.bufUsed == blockSize {
			c.block(c.counter, &c.buf)
			c.counter++
			c.bufUsed = 0
		}
		dst[i] = src[i] ^ c.buf[c.bufUsed]
		c.bufUsed++
	}
}

// Encrypt is a convenience one-shot: it encrypts plaintext with the key and
// nonce starting at counter 1 (the RFC convention) and returns the
// ciphertext. Decryption is the same call.
func Encrypt(key, nonce, plaintext []byte) ([]byte, error) {
	c, err := New(key, nonce, 1)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(plaintext))
	c.XORKeyStream(out, plaintext)
	return out, nil
}
