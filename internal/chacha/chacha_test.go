package chacha

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestQuarterRoundVector checks the RFC 7539 §2.1.1 quarter-round test vector.
func TestQuarterRoundVector(t *testing.T) {
	a, b, c, d := quarterRound(0x11111111, 0x01020304, 0x9b8d6f43, 0x01234567)
	if a != 0xea2a92f4 || b != 0xcb1cf8ce || c != 0x4581472e || d != 0x5881c4bb {
		t.Errorf("quarterRound = %08x %08x %08x %08x", a, b, c, d)
	}
}

// TestBlockVector checks the RFC 7539 §2.3.2 block function test vector.
func TestBlockVector(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := mustHex(t, "000000090000004a00000000")
	c, err := New(key, nonce, 1)
	if err != nil {
		t.Fatal(err)
	}
	var out [64]byte
	c.block(1, &out)
	want := mustHex(t, "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"+
		"d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(out[:], want) {
		t.Errorf("block = %x\nwant  %x", out, want)
	}
}

// TestEncryptVector checks the RFC 7539 §2.4.2 encryption test vector.
func TestEncryptVector(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := mustHex(t, "000000000000004a00000000")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	want := mustHex(t, "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"+
		"f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"+
		"07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"+
		"5af90bbf74a35be6b40b8eedf2785e42874d")
	got, err := Encrypt(key, nonce, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ciphertext = %x\nwant         %x", got, want)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	for i := range key {
		key[i] = byte(i * 7)
	}
	for i := range nonce {
		nonce[i] = byte(i * 13)
	}
	prop := func(msg []byte) bool {
		ct, err := Encrypt(key, nonce, msg)
		if err != nil {
			return false
		}
		pt, err := Encrypt(key, nonce, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCiphertextLengthEqualsPlaintext(t *testing.T) {
	// The property that creates the paper's side-channel: a stream cipher
	// preserves the plaintext length byte-for-byte.
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	for _, n := range []int{0, 1, 63, 64, 65, 500, 3138} {
		ct, err := Encrypt(key, nonce, make([]byte, n))
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != n {
			t.Errorf("len(ct) = %d, want %d", len(ct), n)
		}
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	key[0], nonce[0] = 1, 2
	msg := make([]byte, 300)
	for i := range msg {
		msg[i] = byte(i)
	}
	whole, err := Encrypt(key, nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(key, nonce, 1)
	if err != nil {
		t.Fatal(err)
	}
	pieced := make([]byte, len(msg))
	for _, cut := range [][2]int{{0, 1}, {1, 100}, {100, 163}, {163, 300}} {
		c.XORKeyStream(pieced[cut[0]:cut[1]], msg[cut[0]:cut[1]])
	}
	if !bytes.Equal(whole, pieced) {
		t.Error("incremental keystream differs from one-shot")
	}
}

func TestBadKeyNonceSizes(t *testing.T) {
	if _, err := New(make([]byte, 16), make([]byte, NonceSize), 0); err == nil {
		t.Error("short key accepted")
	}
	if _, err := New(make([]byte, KeySize), make([]byte, 8), 0); err == nil {
		t.Error("short nonce accepted")
	}
}

func TestDistinctNoncesDistinctStreams(t *testing.T) {
	key := make([]byte, KeySize)
	n1 := make([]byte, NonceSize)
	n2 := make([]byte, NonceSize)
	n2[11] = 1
	zero := make([]byte, 64)
	c1, _ := Encrypt(key, n1, zero)
	c2, _ := Encrypt(key, n2, zero)
	if bytes.Equal(c1, c2) {
		t.Error("different nonces produced identical keystreams")
	}
}

func TestKeystreamCounterAdvances(t *testing.T) {
	// Two consecutive 64-byte blocks must differ (counter increments).
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	c, _ := New(key, nonce, 0)
	out := make([]byte, 128)
	c.XORKeyStream(out, make([]byte, 128))
	if bytes.Equal(out[:64], out[64:]) {
		t.Error("blocks 0 and 1 identical")
	}
	_ = binary.LittleEndian // keep import symmetry with implementation
}

func BenchmarkXORKeyStream1K(b *testing.B) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	c, _ := New(key, nonce, 1)
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.XORKeyStream(buf, buf)
	}
}
