package chacha

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// TestPoly1305RFCVector checks the RFC 7539 §2.5.2 tag test vector.
func TestPoly1305RFCVector(t *testing.T) {
	var key [32]byte
	copy(key[:], mustHex(t, "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"))
	msg := []byte("Cryptographic Forum Research Group")
	tag := poly1305(&key, msg)
	want := mustHex(t, "a8061dc1305136c6c22b8baf0c0127a9")
	if !bytes.Equal(tag[:], want) {
		t.Errorf("tag = %x, want %x", tag, want)
	}
}

// TestPoly1305KeyGenVector checks the RFC 7539 §2.6.2 one-time key vector.
func TestPoly1305KeyGenVector(t *testing.T) {
	key := mustHex(t, "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
	nonce := mustHex(t, "000000000001020304050607")
	otk, err := oneTimeKey(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	want := mustHex(t, "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646")
	if !bytes.Equal(otk[:], want) {
		t.Errorf("otk = %x\nwant  %x", otk, want)
	}
}

// TestAEADRFCVector checks the full RFC 7539 §2.8.2 AEAD test vector.
func TestAEADRFCVector(t *testing.T) {
	key := mustHex(t, "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
	nonce := mustHex(t, "070000004041424344454647")
	aad := mustHex(t, "50515253c0c1c2c3c4c5c6c7")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	a, err := NewAEAD(key)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := a.Seal(nonce, plaintext, aad)
	if err != nil {
		t.Fatal(err)
	}
	wantCT := mustHex(t, "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"+
		"3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"+
		"92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"+
		"3ff4def08e4b7a9de576d26586cec64b6116")
	wantTag := mustHex(t, "1ae10b594f09e26a7e902ecbd0600691")
	if !bytes.Equal(sealed[:len(sealed)-TagSize], wantCT) {
		t.Errorf("ciphertext mismatch")
	}
	if !bytes.Equal(sealed[len(sealed)-TagSize:], wantTag) {
		t.Errorf("tag = %x, want %x", sealed[len(sealed)-TagSize:], wantTag)
	}
	got, err := a.Open(nonce, sealed, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Error("round trip failed")
	}
}

func TestAEADRejectsTampering(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	a, _ := NewAEAD(key)
	sealed, err := a.Seal(nonce, []byte("batch payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, corrupt := range []int{0, len(sealed) / 2, len(sealed) - 1} {
		bad := append([]byte(nil), sealed...)
		bad[corrupt] ^= 0x01
		if _, err := a.Open(nonce, bad, nil); !errors.Is(err, ErrAuthFailed) {
			t.Errorf("tampered byte %d accepted (err=%v)", corrupt, err)
		}
	}
	// Wrong AAD must fail too.
	if _, err := a.Open(nonce, sealed, []byte("x")); !errors.Is(err, ErrAuthFailed) {
		t.Error("wrong AAD accepted")
	}
	// Too-short message.
	if _, err := a.Open(nonce, sealed[:8], nil); !errors.Is(err, ErrAuthFailed) {
		t.Error("short message accepted")
	}
}

func TestAEADRoundTripProperty(t *testing.T) {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i * 3)
	}
	a, _ := NewAEAD(key)
	var counter uint64
	prop := func(msg, aad []byte) bool {
		counter++
		nonce := make([]byte, NonceSize)
		for i := 0; i < 8; i++ {
			nonce[i] = byte(counter >> (8 * i))
		}
		sealed, err := a.Seal(nonce, msg, aad)
		if err != nil || len(sealed) != len(msg)+TagSize {
			return false
		}
		got, err := a.Open(nonce, sealed, aad)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPoly1305BlockBoundaries(t *testing.T) {
	// Exercise 0, partial, exact, and multi-block messages.
	var key [32]byte
	for i := range key {
		key[i] = byte(i + 1)
	}
	seen := map[[TagSize]byte]bool{}
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 64, 255} {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(n + i)
		}
		tag := poly1305(&key, msg)
		if seen[tag] {
			t.Errorf("duplicate tag for length %d", n)
		}
		seen[tag] = true
	}
}

func TestNewAEADKeySize(t *testing.T) {
	if _, err := NewAEAD(make([]byte, 16)); err == nil {
		t.Error("short AEAD key accepted")
	}
}

func BenchmarkAEADSeal1K(b *testing.B) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	a, _ := NewAEAD(key)
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, err := a.Seal(nonce, msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
