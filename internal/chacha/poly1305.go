package chacha

import (
	"encoding/binary"
	"math/bits"
)

// Poly1305 one-time authenticator, RFC 7539 §2.5. The implementation uses
// 64-bit limbs with 128-bit intermediate products via math/bits, processing
// the message in 16-byte blocks with the usual 2^130-5 partial reduction.
//
// Together with the ChaCha20 cipher this completes the RFC's AEAD
// construction (aead.go), giving the sensor link authenticated encryption —
// an eavesdropper can still see message lengths, which is exactly the
// channel AGE closes.

// TagSize is the Poly1305 authenticator length in bytes.
const TagSize = 16

// poly1305 computes the 16-byte tag of msg under the 32-byte one-time key.
func poly1305(key *[32]byte, msg []byte) [TagSize]byte {
	// r is clamped per the RFC.
	r0 := binary.LittleEndian.Uint64(key[0:8]) & 0x0FFFFFFC0FFFFFFF
	r1 := binary.LittleEndian.Uint64(key[8:16]) & 0x0FFFFFFC0FFFFFFC
	s0 := binary.LittleEndian.Uint64(key[16:24])
	s1 := binary.LittleEndian.Uint64(key[24:32])

	var h0, h1, h2 uint64
	for len(msg) > 0 {
		var block [16]byte
		var hibit uint64
		if len(msg) >= 16 {
			copy(block[:], msg[:16])
			msg = msg[16:]
			hibit = 1
		} else {
			n := copy(block[:], msg)
			block[n] = 1
			msg = nil
			hibit = 0
		}
		// h += block (with the high bit appended for full blocks).
		var carry uint64
		h0, carry = bits.Add64(h0, binary.LittleEndian.Uint64(block[0:8]), 0)
		h1, carry = bits.Add64(h1, binary.LittleEndian.Uint64(block[8:16]), carry)
		h2 += carry + hibit

		// h *= r, modulo 2^130 - 5.
		// Schoolbook multiply of (h2,h1,h0) by (r1,r0).
		m0hi, m0lo := bits.Mul64(h0, r0)
		m1hi, m1lo := bits.Mul64(h0, r1)
		m2hi, m2lo := bits.Mul64(h1, r0)
		m3hi, m3lo := bits.Mul64(h1, r1)
		// h2 is small (< 8), so h2*r fits without 128-bit products.
		m4 := h2 * r0
		m5 := h2 * r1

		// Accumulate into t0..t3 (256-bit product, top limb small).
		t0 := m0lo
		t1, c1 := bits.Add64(m0hi, m1lo, 0)
		t2, c2 := bits.Add64(m1hi, m3lo, c1)
		t3 := m3hi + c2
		t1, c1 = bits.Add64(t1, m2lo, 0)
		t2, c2 = bits.Add64(t2, m2hi, c1)
		t3 += c2
		t2, c2 = bits.Add64(t2, m4, 0)
		t3 += c2 + m5

		// Reduce modulo 2^130 - 5: the low 130 bits stay; the high part
		// (t2>>2, t3) folds back multiplied by 5.
		h0, h1, h2 = t0, t1, t2&3
		fold0 := t2>>2 | t3<<62
		fold1 := t3 >> 2
		// h += fold*5 = fold*4 + fold.
		var c uint64
		h0, c = bits.Add64(h0, fold0, 0)
		h1, c = bits.Add64(h1, fold1, c)
		h2 += c
		fold0, fold1 = fold0<<2, fold1<<2|fold0>>62
		h0, c = bits.Add64(h0, fold0, 0)
		h1, c = bits.Add64(h1, fold1, c)
		h2 += c
	}

	// Final reduction: h mod 2^130 - 5.
	h0, h1, h2 = reduce1305(h0, h1, h2)
	// If h >= 2^130 - 5, subtract the modulus.
	t0, b0 := bits.Sub64(h0, 0xFFFFFFFFFFFFFFFB, 0)
	t1, b1 := bits.Sub64(h1, 0xFFFFFFFFFFFFFFFF, b0)
	_, b2 := bits.Sub64(h2, 3, b1)
	if b2 == 0 {
		h0, h1 = t0, t1
	}

	// tag = (h + s) mod 2^128.
	var c uint64
	h0, c = bits.Add64(h0, s0, 0)
	h1, _ = bits.Add64(h1, s1, c)
	var tag [TagSize]byte
	binary.LittleEndian.PutUint64(tag[0:8], h0)
	binary.LittleEndian.PutUint64(tag[8:16], h1)
	return tag
}

// reduce1305 folds any bits of h above 2^130 back via *5.
func reduce1305(h0, h1, h2 uint64) (uint64, uint64, uint64) {
	for h2 > 3 {
		top := h2 >> 2
		h2 &= 3
		var c uint64
		h0, c = bits.Add64(h0, top*5, 0)
		h1, c = bits.Add64(h1, 0, c)
		h2 += c
	}
	return h0, h1, h2
}

// oneTimeKey derives the per-message Poly1305 key: the first 32 bytes of the
// ChaCha20 keystream at counter 0 (RFC 7539 §2.6).
func oneTimeKey(key, nonce []byte) (*[32]byte, error) {
	c, err := New(key, nonce, 0)
	if err != nil {
		return nil, err
	}
	var out [32]byte
	c.XORKeyStream(out[:], out[:])
	return &out, nil
}
