package chacha

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// AEAD construction of RFC 7539 §2.8: ChaCha20-Poly1305. Seal encrypts the
// plaintext with ChaCha20 (counter 1) and authenticates
// aad || pad || ciphertext || pad || len(aad) || len(ciphertext) with a
// Poly1305 key drawn from the keystream at counter 0.

// ErrAuthFailed is returned by Open when the tag does not verify.
var ErrAuthFailed = errors.New("chacha: message authentication failed")

// AEAD is a ChaCha20-Poly1305 instance bound to a key.
type AEAD struct {
	key []byte
}

// NewAEAD returns an AEAD for the 32-byte key.
func NewAEAD(key []byte) (*AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("chacha: AEAD key must be %d bytes, got %d", KeySize, len(key))
	}
	return &AEAD{key: append([]byte(nil), key...)}, nil
}

// Overhead returns the ciphertext expansion (the tag).
func (a *AEAD) Overhead() int { return TagSize }

// Seal encrypts and authenticates plaintext with the 12-byte nonce and
// optional additional data, returning ciphertext || tag.
func (a *AEAD) Seal(nonce, plaintext, aad []byte) ([]byte, error) {
	ct, err := Encrypt(a.key, nonce, plaintext)
	if err != nil {
		return nil, err
	}
	tag, err := a.tag(nonce, ct, aad)
	if err != nil {
		return nil, err
	}
	return append(ct, tag[:]...), nil
}

// Open verifies and decrypts a message produced by Seal.
func (a *AEAD) Open(nonce, message, aad []byte) ([]byte, error) {
	if len(message) < TagSize {
		return nil, ErrAuthFailed
	}
	ct, got := message[:len(message)-TagSize], message[len(message)-TagSize:]
	want, err := a.tag(nonce, ct, aad)
	if err != nil {
		return nil, err
	}
	if subtle.ConstantTimeCompare(got, want[:]) != 1 {
		return nil, ErrAuthFailed
	}
	return Encrypt(a.key, nonce, ct)
}

// tag computes the Poly1305 tag over the RFC's AEAD transcript.
func (a *AEAD) tag(nonce, ciphertext, aad []byte) ([TagSize]byte, error) {
	otk, err := oneTimeKey(a.key, nonce)
	if err != nil {
		return [TagSize]byte{}, err
	}
	msg := make([]byte, 0, len(aad)+len(ciphertext)+32)
	msg = append(msg, aad...)
	msg = appendPad16(msg)
	msg = append(msg, ciphertext...)
	msg = appendPad16(msg)
	var lens [16]byte
	binary.LittleEndian.PutUint64(lens[0:8], uint64(len(aad)))
	binary.LittleEndian.PutUint64(lens[8:16], uint64(len(ciphertext)))
	msg = append(msg, lens[:]...)
	return poly1305(otk, msg), nil
}

func appendPad16(b []byte) []byte {
	if n := len(b) % 16; n != 0 {
		b = append(b, make([]byte, 16-n)...)
	}
	return b
}
