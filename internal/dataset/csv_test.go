package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := MustLoad("epilepsy", Options{Seed: 3, MaxSequences: 8})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Name != d.Meta.Name || got.Meta.SeqLen != d.Meta.SeqLen ||
		got.Meta.NumFeatures != d.Meta.NumFeatures || got.Meta.Format != d.Meta.Format {
		t.Fatalf("meta mismatch: %+v vs %+v", got.Meta, d.Meta)
	}
	if len(got.Sequences) != len(d.Sequences) {
		t.Fatalf("sequences %d vs %d", len(got.Sequences), len(d.Sequences))
	}
	for i := range d.Sequences {
		if got.Sequences[i].Label != d.Sequences[i].Label {
			t.Fatalf("label mismatch at %d", i)
		}
		for tt := range d.Sequences[i].Values {
			for f := range d.Sequences[i].Values[tt] {
				if got.Sequences[i].Values[tt][f] != d.Sequences[i].Values[tt][f] {
					t.Fatalf("value mismatch at seq %d step %d", i, tt)
				}
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"short header":      "name,1,2\n",
		"non-numeric":       "name,a,1,1,16,3\n",
		"bad dims":          "name,0,1,1,16,3\n",
		"bad format":        "name,4,1,2,99,3\n",
		"short row":         "name,2,1,2,16,3\n0,1.5\n",
		"bad label":         "name,2,1,2,16,3\n7,1.5,2.5\n",
		"negative label":    "name,2,1,2,16,3\n-1,1.5,2.5\n",
		"non-numeric value": "name,2,1,2,16,3\n0,x,2.5\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSVMinimalValid(t *testing.T) {
	in := "custom,2,2,3,16,3\n2,0.5,-0.5,1.5,-1.5\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.NumSeq != 1 || d.Sequences[0].Label != 2 {
		t.Fatalf("parsed %+v", d.Meta)
	}
	if d.Sequences[0].Values[1][1] != -1.5 {
		t.Errorf("value = %g", d.Sequences[0].Values[1][1])
	}
}
