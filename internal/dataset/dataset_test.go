package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// small loads a truncated dataset for fast tests.
func small(t *testing.T, name string, n int) *Dataset {
	t.Helper()
	d, err := Load(name, Options{Seed: 42, MaxSequences: n})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNamesComplete(t *testing.T) {
	if len(Names()) != 9 {
		t.Fatalf("expected 9 datasets, got %d", len(Names()))
	}
	for _, n := range Names() {
		if _, err := MetaFor(n); err != nil {
			t.Errorf("MetaFor(%q): %v", n, err)
		}
		if _, err := generatorFor(n); err != nil {
			t.Errorf("generatorFor(%q): %v", n, err)
		}
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Load("zebranet", Options{}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestTable3Shape verifies every generated dataset matches its published
// Table 3 row: sequence length, feature count, and label coverage.
func TestTable3Shape(t *testing.T) {
	for _, name := range Names() {
		d := small(t, name, 60)
		m := d.Meta
		if len(d.Sequences) != 60 {
			t.Errorf("%s: got %d sequences", name, len(d.Sequences))
		}
		seen := map[int]bool{}
		for _, s := range d.Sequences {
			if len(s.Values) != m.SeqLen {
				t.Fatalf("%s: seq len %d, want %d", name, len(s.Values), m.SeqLen)
			}
			if len(s.Values[0]) != m.NumFeatures {
				t.Fatalf("%s: features %d, want %d", name, len(s.Values[0]), m.NumFeatures)
			}
			if s.Label < 0 || s.Label >= m.NumLabels {
				t.Fatalf("%s: label %d out of range", name, s.Label)
			}
			seen[s.Label] = true
		}
		if len(seen) != m.NumLabels {
			t.Errorf("%s: only %d/%d labels present in 60 sequences", name, len(seen), m.NumLabels)
		}
	}
}

// TestFullSizesMatchTable3 checks the published dataset sizes without
// generating the data.
func TestFullSizesMatchTable3(t *testing.T) {
	want := map[string]struct{ n, l, f, lab int }{
		"activity":   {11119, 50, 6, 12},
		"characters": {1436, 100, 3, 20},
		"eog":        {362, 1250, 1, 12},
		"epilepsy":   {138, 206, 3, 4},
		"mnist":      {10000, 784, 1, 10},
		"password":   {308, 1092, 1, 5},
		"pavement":   {8864, 120, 1, 3},
		"strawberry": {370, 235, 1, 2},
		"tiselac":    {17973, 23, 10, 9},
	}
	for name, w := range want {
		m, err := MetaFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumSeq != w.n || m.SeqLen != w.l || m.NumFeatures != w.f || m.NumLabels != w.lab {
			t.Errorf("%s: meta %+v does not match Table 3 %+v", name, m, w)
		}
	}
}

// TestValuesFitFormat checks that generated values stay inside the dataset's
// fixed-point representable range, as the paper's sensors store them.
func TestValuesFitFormat(t *testing.T) {
	for _, name := range Names() {
		d := small(t, name, 30)
		lo, hi := d.Meta.Format.Min(), d.Meta.Format.Max()
		for _, s := range d.Sequences {
			for _, row := range s.Values {
				for _, v := range row {
					if v < lo || v > hi {
						t.Fatalf("%s: value %g outside format %v range [%g, %g]",
							name, v, d.Meta.Format, lo, hi)
					}
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"epilepsy", "tiselac"} {
		a := small(t, name, 20)
		b := small(t, name, 20)
		for i := range a.Sequences {
			if a.Sequences[i].Label != b.Sequences[i].Label {
				t.Fatalf("%s: labels differ at %d", name, i)
			}
			for tt := range a.Sequences[i].Values {
				for f := range a.Sequences[i].Values[tt] {
					if a.Sequences[i].Values[tt][f] != b.Sequences[i].Values[tt][f] {
						t.Fatalf("%s: values differ at seq %d", name, i)
					}
				}
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := Load("epilepsy", Options{Seed: 1, MaxSequences: 8})
	b, _ := Load("epilepsy", Options{Seed: 2, MaxSequences: 8})
	same := true
	for i := range a.Sequences {
		for tt := range a.Sequences[i].Values {
			for f := range a.Sequences[i].Values[tt] {
				if a.Sequences[i].Values[tt][f] != b.Sequences[i].Values[tt][f] {
					same = false
				}
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

// TestPerLabelVarianceDiffers verifies the property the whole paper rests
// on: measurement variance (and thus an adaptive policy's collection rate)
// depends on the event. For each dataset, the most and least energetic
// labels must have clearly different mean absolute step sizes.
func TestPerLabelVarianceDiffers(t *testing.T) {
	for _, name := range Names() {
		d := small(t, name, 80)
		perLabel := map[int][]float64{}
		for _, s := range d.Sequences {
			var stepSum float64
			n := 0
			for tt := 1; tt < len(s.Values); tt++ {
				for f := range s.Values[tt] {
					stepSum += math.Abs(s.Values[tt][f] - s.Values[tt-1][f])
					n++
				}
			}
			perLabel[s.Label] = append(perLabel[s.Label], stepSum/float64(n))
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, steps := range perLabel {
			m := stats.Mean(steps)
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if hi < lo*1.3 {
			t.Errorf("%s: per-label step energy too uniform (lo=%g hi=%g); side-channel would not exist",
				name, lo, hi)
		}
	}
}

// TestEpilepsySeizureVariance checks the Table 1 structure: the seizure
// event has high *between-sequence* variance in total activity (quiet until
// the burst), while walking is consistently quiet and running consistently
// energetic.
func TestEpilepsySeizureVariance(t *testing.T) {
	d := small(t, "epilepsy", 80)
	energy := map[int][]float64{}
	for _, s := range d.Sequences {
		var e float64
		for tt := 1; tt < len(s.Values); tt++ {
			for f := range s.Values[tt] {
				e += math.Abs(s.Values[tt][f] - s.Values[tt-1][f])
			}
		}
		energy[s.Label] = append(energy[s.Label], e)
	}
	walking, running, seizure := stats.Mean(energy[1]), stats.Mean(energy[2]), energy[0]
	if walking >= running {
		t.Errorf("walking energy %g >= running %g", walking, running)
	}
	// Seizure spreads between quiet and violent: its std must exceed
	// walking's and running's.
	if stats.StdDev(seizure) <= stats.StdDev(energy[1]) || stats.StdDev(seizure) <= stats.StdDev(energy[2]) {
		t.Errorf("seizure energy std %g not the largest (walking %g, running %g)",
			stats.StdDev(seizure), stats.StdDev(energy[1]), stats.StdDev(energy[2]))
	}
}

func TestSplitStratified(t *testing.T) {
	d := small(t, "epilepsy", 80)
	rng := rand.New(rand.NewSource(1))
	train, test := d.Split(0.75, rng)
	if len(train.Sequences)+len(test.Sequences) != 80 {
		t.Fatalf("split lost sequences: %d + %d", len(train.Sequences), len(test.Sequences))
	}
	trainBy := train.ByLabel()
	testBy := test.ByLabel()
	for l := 0; l < 4; l++ {
		if len(trainBy[l]) == 0 || len(testBy[l]) == 0 {
			t.Errorf("label %d missing from a split: train %d test %d", l, len(trainBy[l]), len(testBy[l]))
		}
	}
}

func TestFlatten(t *testing.T) {
	s := Sequence{Values: [][]float64{{1, 2}, {3, 4}, {5, 6}}}
	got := s.Flatten()
	want := []float64{1, 2, 3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Flatten = %v", got)
		}
	}
	var empty Sequence
	if empty.Flatten() != nil {
		t.Error("Flatten of empty sequence should be nil")
	}
}

func TestLabelNames(t *testing.T) {
	if got := LabelNames("epilepsy"); len(got) != 4 || got[0] != "Seizure" {
		t.Errorf("epilepsy labels = %v", got)
	}
	if got := LabelNames("activity"); len(got) != 12 {
		t.Errorf("activity labels = %v", got)
	}
	if got := LabelNames("nonexistent"); got != nil {
		t.Errorf("unknown dataset labels = %v", got)
	}
}

func TestMNISTMostlyDark(t *testing.T) {
	// Scanned digits must have long zero-ish margins — the structure that
	// gives AGE's exponent RLE something to compress.
	d := small(t, "mnist", 10)
	var dark, total int
	for _, s := range d.Sequences {
		for _, row := range s.Values {
			if row[0] < 16 {
				dark++
			}
			total++
		}
	}
	if frac := float64(dark) / float64(total); frac < 0.5 {
		t.Errorf("only %.0f%% dark pixels; digits should be mostly background", frac*100)
	}
}

func TestTiselacIntegers(t *testing.T) {
	d := small(t, "tiselac", 9)
	for _, s := range d.Sequences {
		for _, row := range s.Values {
			for _, v := range row {
				if v != math.Trunc(v) || v < 0 {
					t.Fatalf("tiselac value %g not a non-negative integer", v)
				}
			}
		}
	}
}

func BenchmarkGenerateEpilepsy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Load("epilepsy", Options{Seed: int64(i), MaxSequences: 8})
	}
}
