// Package dataset provides the nine sensing workloads of the paper's
// evaluation (Table 3): Activity, Characters, EOG, Epilepsy, MNIST, Password,
// Pavement, Strawberry, and Tiselac.
//
// The original datasets are public downloads; this reproduction runs offline,
// so each workload is a seeded synthetic generator that matches the published
// shape — sequence count, sequence length, feature count, label count,
// fixed-point format, and value range — and, critically, the property the
// paper's analysis rests on: measurement variance differs by event, so a
// data-dependent sampler's collection rate correlates with the label. The
// substitution is documented in DESIGN.md §4.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fixedpoint"
)

// Meta describes a dataset's shape, mirroring one row of the paper's Table 3.
type Meta struct {
	Name        string
	NumSeq      int // number of sequences ("# Seq")
	SeqLen      int // measurements per sequence ("Seq Len"); the batch size T
	NumFeatures int // features per measurement d ("# Feat")
	NumLabels   int // number of event labels
	// Format is the sensor's native fixed-point representation: Width is
	// the paper's "Bits" and Width-NonFrac its "(Frac)".
	Format fixedpoint.Format
	// Range is the approximate spread (max-min) of raw values, for
	// comparison against Table 3's "Range" column.
	Range float64
}

// Sequence is one batch window: SeqLen measurements of NumFeatures values,
// labeled with the event occurring during the window.
type Sequence struct {
	Label  int
	Values [][]float64 // [SeqLen][NumFeatures]
}

// Dataset is a labeled collection of sequences.
type Dataset struct {
	Meta      Meta
	Sequences []Sequence
}

// Options controls dataset generation.
type Options struct {
	// Seed makes generation deterministic. The same seed always yields the
	// same dataset.
	Seed int64
	// MaxSequences truncates the dataset (stratified by label) to bound
	// experiment run time; 0 means the full published size.
	MaxSequences int
}

// Names returns the nine dataset names in the paper's Table 3 order.
func Names() []string {
	return []string{
		"activity", "characters", "eog", "epilepsy", "mnist",
		"password", "pavement", "strawberry", "tiselac",
	}
}

// LabelNames returns human-readable event names for a dataset, used in
// reports such as Table 1. Datasets without published event names use
// generic class labels.
func LabelNames(name string) []string {
	switch name {
	case "epilepsy":
		// Villar et al.: seizure mimic plus daily activities.
		return []string{"Seizure", "Walking", "Running", "Sawing"}
	case "pavement":
		return []string{"Flexible", "Cobblestone", "Dirt"}
	case "strawberry":
		return []string{"Strawberry", "Adulterated"}
	default:
		m, err := metaFor(name)
		if err != nil {
			return nil
		}
		names := make([]string, m.NumLabels)
		for i := range names {
			names[i] = fmt.Sprintf("Class %d", i)
		}
		return names
	}
}

// Load generates the named dataset.
func Load(name string, opt Options) (*Dataset, error) {
	g, err := generatorFor(name)
	if err != nil {
		return nil, err
	}
	meta, err := metaFor(name)
	if err != nil {
		return nil, err
	}
	n := meta.NumSeq
	if opt.MaxSequences > 0 && opt.MaxSequences < n {
		n = opt.MaxSequences
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ int64(hashName(name))))
	d := &Dataset{Meta: meta, Sequences: make([]Sequence, 0, n)}
	for i := 0; i < n; i++ {
		label := i % meta.NumLabels // stratified round-robin
		d.Sequences = append(d.Sequences, Sequence{
			Label:  label,
			Values: g(meta, label, rng),
		})
	}
	// Shuffle so that label order carries no information.
	rng.Shuffle(len(d.Sequences), func(i, j int) {
		d.Sequences[i], d.Sequences[j] = d.Sequences[j], d.Sequences[i]
	})
	return d, nil
}

// MustLoad is Load for known-good names; it panics on error.
func MustLoad(name string, opt Options) *Dataset {
	d, err := Load(name, opt)
	if err != nil {
		panic(err)
	}
	return d
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ByLabel returns sequence indices grouped by label, each group in dataset
// order.
func (d *Dataset) ByLabel() map[int][]int {
	m := map[int][]int{}
	for i, s := range d.Sequences {
		m[s.Label] = append(m[s.Label], i)
	}
	return m
}

// Split partitions the dataset into train and test subsets with stratified
// sampling: each label contributes trainFrac of its sequences to train.
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	train = &Dataset{Meta: d.Meta}
	test = &Dataset{Meta: d.Meta}
	byLabel := d.ByLabel()
	labels := make([]int, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	for _, l := range labels {
		idx := append([]int(nil), byLabel[l]...)
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(float64(len(idx)) * trainFrac)
		for i, si := range idx {
			if i < cut {
				train.Sequences = append(train.Sequences, d.Sequences[si])
			} else {
				test.Sequences = append(test.Sequences, d.Sequences[si])
			}
		}
	}
	return train, test
}

// Flatten returns all values of sequence i as a single [SeqLen*d] slice in
// time-major order (all features of step 0, then step 1, ...).
func (s *Sequence) Flatten() []float64 {
	if len(s.Values) == 0 {
		return nil
	}
	d := len(s.Values[0])
	out := make([]float64, 0, len(s.Values)*d)
	for _, row := range s.Values {
		out = append(out, row...)
	}
	return out
}

// metaFor returns the Table 3 row for a dataset name.
func metaFor(name string) (Meta, error) {
	q := func(w, frac int) fixedpoint.Format {
		return fixedpoint.Format{Width: w, NonFrac: w - frac}
	}
	switch name {
	case "activity":
		return Meta{Name: name, NumSeq: 11119, SeqLen: 50, NumFeatures: 6, NumLabels: 12, Format: q(16, 13), Range: 10.6}, nil
	case "characters":
		return Meta{Name: name, NumSeq: 1436, SeqLen: 100, NumFeatures: 3, NumLabels: 20, Format: q(16, 13), Range: 7.8}, nil
	case "eog":
		return Meta{Name: name, NumSeq: 362, SeqLen: 1250, NumFeatures: 1, NumLabels: 12, Format: q(20, 8), Range: 2640.4}, nil
	case "epilepsy":
		return Meta{Name: name, NumSeq: 138, SeqLen: 206, NumFeatures: 3, NumLabels: 4, Format: q(16, 13), Range: 7.2}, nil
	case "mnist":
		return Meta{Name: name, NumSeq: 10000, SeqLen: 784, NumFeatures: 1, NumLabels: 10, Format: q(9, 0), Range: 255}, nil
	case "password":
		return Meta{Name: name, NumSeq: 308, SeqLen: 1092, NumFeatures: 1, NumLabels: 5, Format: q(16, 11), Range: 18.8}, nil
	case "pavement":
		return Meta{Name: name, NumSeq: 8864, SeqLen: 120, NumFeatures: 1, NumLabels: 3, Format: q(16, 10), Range: 68.4}, nil
	case "strawberry":
		return Meta{Name: name, NumSeq: 370, SeqLen: 235, NumFeatures: 1, NumLabels: 2, Format: q(16, 13), Range: 5.9}, nil
	case "tiselac":
		return Meta{Name: name, NumSeq: 17973, SeqLen: 23, NumFeatures: 10, NumLabels: 9, Format: q(16, 0), Range: 3379}, nil
	default:
		return Meta{}, fmt.Errorf("dataset: unknown dataset %q (know %v)", name, Names())
	}
}

// MetaFor exposes the Table 3 row for a dataset name.
func MetaFor(name string) (Meta, error) { return metaFor(name) }
