package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// CSV import/export lets the synthetic workloads interoperate with external
// tooling (plotting, the original artifact's Python analysis) and lets users
// evaluate AGE on their own recorded data. The format is one row per
// sequence: label, then SeqLen*NumFeatures values in time-major order.

// WriteCSV serializes the dataset. The first record is a header:
// name, seqLen, numFeatures, numLabels, formatWidth, formatNonFrac.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		d.Meta.Name,
		strconv.Itoa(d.Meta.SeqLen),
		strconv.Itoa(d.Meta.NumFeatures),
		strconv.Itoa(d.Meta.NumLabels),
		strconv.Itoa(d.Meta.Format.Width),
		strconv.Itoa(d.Meta.Format.NonFrac),
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 1+d.Meta.SeqLen*d.Meta.NumFeatures)
	for _, s := range d.Sequences {
		row = row[:1]
		row[0] = strconv.Itoa(s.Label)
		for _, vals := range s.Values {
			for _, v := range vals {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) != 6 {
		return nil, fmt.Errorf("dataset: CSV header has %d fields, want 6", len(header))
	}
	ints := make([]int, 5)
	for i := 0; i < 5; i++ {
		v, err := strconv.Atoi(header[i+1])
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV header field %d: %w", i+1, err)
		}
		ints[i] = v
	}
	d := &Dataset{}
	d.Meta.Name = header[0]
	d.Meta.SeqLen, d.Meta.NumFeatures, d.Meta.NumLabels = ints[0], ints[1], ints[2]
	d.Meta.Format.Width, d.Meta.Format.NonFrac = ints[3], ints[4]
	if err := d.Meta.Format.Validate(); err != nil {
		return nil, err
	}
	if d.Meta.SeqLen < 1 || d.Meta.NumFeatures < 1 || d.Meta.NumLabels < 1 {
		return nil, fmt.Errorf("dataset: CSV header dimensions invalid: %v", ints)
	}
	want := 1 + d.Meta.SeqLen*d.Meta.NumFeatures
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		if len(rec) != want {
			return nil, fmt.Errorf("dataset: CSV line %d has %d fields, want %d", line, len(rec), want)
		}
		label, err := strconv.Atoi(rec[0])
		if err != nil || label < 0 || label >= d.Meta.NumLabels {
			return nil, fmt.Errorf("dataset: CSV line %d: bad label %q", line, rec[0])
		}
		seq := Sequence{Label: label, Values: make([][]float64, d.Meta.SeqLen)}
		pos := 1
		for t := 0; t < d.Meta.SeqLen; t++ {
			row := make([]float64, d.Meta.NumFeatures)
			for f := range row {
				v, err := strconv.ParseFloat(rec[pos], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: CSV line %d field %d: %w", line, pos, err)
				}
				row[f] = v
				pos++
			}
			seq.Values[t] = row
		}
		d.Sequences = append(d.Sequences, seq)
	}
	d.Meta.NumSeq = len(d.Sequences)
	return d, nil
}
