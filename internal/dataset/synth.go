package dataset

import (
	"math"
	"math/rand"
)

// This file holds the signal-synthesis machinery shared by the nine dataset
// generators. Each generator composes primitive signal components (tones,
// random walks, bursts, bumps) into a per-label model whose variance
// structure matches the qualitative description of the original data: calm
// events produce flat traces, energetic events produce fast, large swings.

// tone returns amp*sin(2π*freq*t/n + phase) evaluated at step t of n.
func tone(t, n int, amp, freq, phase float64) float64 {
	return amp * math.Sin(2*math.Pi*freq*float64(t)/float64(n)+phase)
}

// clamp limits x to [lo, hi].
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// walker produces a mean-reverting random walk (discrete Ornstein–Uhlenbeck):
// x_{t+1} = x_t + theta*(mu - x_t) + sigma*N(0,1).
type walker struct {
	x, mu, theta, sigma float64
}

func (w *walker) next(rng *rand.Rand) float64 {
	w.x += w.theta*(w.mu-w.x) + w.sigma*rng.NormFloat64()
	return w.x
}

// burstWindow marks a contiguous sub-range [start, start+length) of a
// sequence during which a generator injects high-energy activity, used for
// seizure-style events.
type burstWindow struct{ start, length int }

func randomBurst(seqLen int, minFrac, maxFrac float64, rng *rand.Rand) burstWindow {
	frac := minFrac + rng.Float64()*(maxFrac-minFrac)
	length := int(frac * float64(seqLen))
	if length < 1 {
		length = 1
	}
	start := 0
	if seqLen > length {
		start = rng.Intn(seqLen - length)
	}
	return burstWindow{start: start, length: length}
}

func (b burstWindow) contains(t int) bool { return t >= b.start && t < b.start+b.length }

// bump is a Gaussian bump centered at c with width w and height h, used for
// spectra (Strawberry) and pressure strokes (Password).
func bump(t int, c, w, h float64) float64 {
	d := (float64(t) - c) / w
	return h * math.Exp(-0.5*d*d)
}

// alloc returns a zeroed [seqLen][features] matrix.
func alloc(seqLen, features int) [][]float64 {
	backing := make([]float64, seqLen*features)
	rows := make([][]float64, seqLen)
	for i := range rows {
		rows[i], backing = backing[:features:features], backing[features:]
	}
	return rows
}

// jitter returns a small multiplicative factor 1 ± scale, for per-sequence
// variation within a label.
func jitter(rng *rand.Rand, scale float64) float64 {
	return 1 + (rng.Float64()*2-1)*scale
}
