package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// generator synthesizes one sequence of the given label.
type generator func(meta Meta, label int, rng *rand.Rand) [][]float64

func generatorFor(name string) (generator, error) {
	switch name {
	case "activity":
		return genActivity, nil
	case "characters":
		return genCharacters, nil
	case "eog":
		return genEOG, nil
	case "epilepsy":
		return genEpilepsy, nil
	case "mnist":
		return genMNIST, nil
	case "password":
		return genPassword, nil
	case "pavement":
		return genPavement, nil
	case "strawberry":
		return genStrawberry, nil
	case "tiselac":
		return genTiselac, nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// genActivity models smartphone accelerometer + gyroscope windows (UCI HAR,
// 12 postural/locomotion activities). Low label indices are static postures
// (near-constant gravity projection), high indices are dynamic activities
// with strong periodic swing — the energy ordering the paper's Figure 1
// illustrates with walking vs running.
func genActivity(meta Meta, label int, rng *rand.Rand) [][]float64 {
	out := alloc(meta.SeqLen, meta.NumFeatures)
	// Activity energy rises with label index: 0..2 static, 3..7 walking
	// family, 8..11 running/jumping family.
	energy := 0.03 + 0.9*math.Pow(float64(label)/float64(meta.NumLabels-1), 1.6)
	stride := 1.2 + 0.35*float64(label%5) // gait frequency (cycles/window)
	j := jitter(rng, 0.25)
	// Static gravity orientation differs per posture.
	var gravity [3]float64
	orient := float64(label) * 0.5
	gravity[0] = math.Sin(orient)
	gravity[1] = math.Cos(orient) * 0.8
	gravity[2] = 0.4 * math.Sin(orient*1.7)
	phase := rng.Float64() * 2 * math.Pi
	noise := 0.02 + 0.25*energy
	for t := 0; t < meta.SeqLen; t++ {
		for f := 0; f < 3; f++ { // accelerometer
			v := gravity[f] +
				tone(t, meta.SeqLen, energy*j, stride*4, phase+float64(f)) +
				tone(t, meta.SeqLen, 0.4*energy*j, stride*8, phase*1.3) +
				noise*rng.NormFloat64()
			out[t][f] = clamp(v, -3.9, 3.9)
		}
		for f := 3; f < meta.NumFeatures; f++ { // gyroscope
			v := tone(t, meta.SeqLen, 1.6*energy*j, stride*4, phase+2.1*float64(f)) +
				noise*1.5*rng.NormFloat64()
			out[t][f] = clamp(v, -3.9, 3.9)
		}
	}
	return out
}

// genCharacters models pen-tip velocity while writing one of 20 characters
// (Williams et al.). Each character is a sequence of strokes separated by
// pen lifts: bursts of low-order Fourier motion between near-idle pauses.
// Characters differ in stroke count, which changes signal variance between
// labels, and the idle pauses give adaptive samplers something to skip.
func genCharacters(meta Meta, label int, rng *rand.Rand) [][]float64 {
	out := alloc(meta.SeqLen, meta.NumFeatures)
	strokes := 1 + label%4 // stroke count drives energy
	amp := 0.5 + 0.14*float64(strokes) + 0.04*float64(label/4)
	j := jitter(rng, 0.2)
	phase := rng.Float64() * 0.6
	// Each stroke occupies a window; between windows the pen is lifted.
	segment := meta.SeqLen / (2*strokes + 1)
	for t := 0; t < meta.SeqLen; t++ {
		// Odd segments are strokes, even segments pen lifts.
		seg := 0
		if segment > 0 {
			seg = t / segment
		}
		writing := seg%2 == 1 && seg < 2*strokes+1
		for f := 0; f < meta.NumFeatures; f++ {
			var v float64
			if writing {
				local := t % segment
				env := math.Sin(math.Pi * float64(local) / float64(segment))
				for s := 1; s <= strokes; s++ {
					freq := float64(s) + 0.3*float64(label%7)
					v += env * tone(t, segment*2, amp*j/float64(s), freq, phase+float64(f)*1.9+float64(label)*0.7)
				}
				v += 0.03 * rng.NormFloat64()
			} else {
				v = 0.01 * rng.NormFloat64() // pen lifted: near-idle
			}
			out[t][f] = clamp(v, -3.8, 3.8)
		}
	}
	return out
}

// genEOG models electrooculography eye-writing traces (Fang & Shinozaki):
// piecewise-constant gaze positions separated by fast saccade jumps. The
// written symbol (label) fixes the number of strokes; more strokes mean more
// jumps and higher variance.
func genEOG(meta Meta, label int, rng *rand.Rand) [][]float64 {
	out := alloc(meta.SeqLen, meta.NumFeatures)
	nJumps := 3 + label // symbol complexity
	// Fixations are nearly flat: gaze drift between saccades is tiny
	// compared to the saccade amplitude.
	level := walker{mu: 0, theta: 0.02, sigma: 0.9}
	level.x = 200 * rng.NormFloat64()
	// Choose jump times.
	jumpAt := map[int]bool{}
	for i := 0; i < nJumps; i++ {
		jumpAt[rng.Intn(meta.SeqLen)] = true
	}
	target := level.x
	for t := 0; t < meta.SeqLen; t++ {
		if jumpAt[t] {
			// Saccade: jump to a new gaze target.
			target = (rng.Float64()*2 - 1) * 1200
		}
		// First-order response toward the target plus drift noise.
		level.mu = target
		level.theta = 0.25
		v := level.next(rng)
		out[t][0] = clamp(v, -1320, 1320)
	}
	return out
}

// genEpilepsy models a wrist accelerometer during four events (Villar et
// al.): a seizure mimic and three daily activities. Walking is gentle and
// periodic, running fast and large, sawing strong and regular, and a seizure
// is near-still interrupted by a violent irregular burst — which is why the
// paper's Table 1 shows seizure messages with a huge size variance.
func genEpilepsy(meta Meta, label int, rng *rand.Rand) [][]float64 {
	out := alloc(meta.SeqLen, meta.NumFeatures)
	phase := rng.Float64() * 2 * math.Pi
	j := jitter(rng, 0.2)
	switch label {
	case 0: // Seizure: quiet baseline + violent burst covering 20-80% of the window.
		burst := randomBurst(meta.SeqLen, 0.2, 0.8, rng)
		for t := 0; t < meta.SeqLen; t++ {
			for f := 0; f < meta.NumFeatures; f++ {
				v := 0.1*math.Sin(phase+float64(f)) + 0.03*rng.NormFloat64()
				if burst.contains(t) {
					v += tone(t, meta.SeqLen, 2.2*j, 22+3*float64(f), phase) +
						0.9*rng.NormFloat64()
				}
				out[t][f] = clamp(v, -3.5, 3.5)
			}
		}
	case 1: // Walking: low-amplitude periodic.
		for t := 0; t < meta.SeqLen; t++ {
			for f := 0; f < meta.NumFeatures; f++ {
				v := 0.35*j*math.Sin(2*math.Pi*3.5*float64(t)/float64(meta.SeqLen)+phase+float64(f)*2) +
					0.06*rng.NormFloat64()
				out[t][f] = clamp(v, -3.5, 3.5)
			}
		}
	case 2: // Running: high-amplitude fast periodic.
		for t := 0; t < meta.SeqLen; t++ {
			for f := 0; f < meta.NumFeatures; f++ {
				v := 1.8*j*math.Sin(2*math.Pi*9*float64(t)/float64(meta.SeqLen)+phase+float64(f)*2) +
					0.5*j*math.Sin(2*math.Pi*18*float64(t)/float64(meta.SeqLen)+phase) +
					0.25*rng.NormFloat64()
				out[t][f] = clamp(v, -3.5, 3.5)
			}
		}
	default: // Sawing: strong regular reciprocation, slightly slower than running.
		for t := 0; t < meta.SeqLen; t++ {
			for f := 0; f < meta.NumFeatures; f++ {
				saw := 2*math.Mod(6*float64(t)/float64(meta.SeqLen)+phase/(2*math.Pi), 1) - 1
				v := 1.4*j*saw + 0.35*j*math.Sin(2*math.Pi*12*float64(t)/float64(meta.SeqLen)) +
					0.15*rng.NormFloat64()
				out[t][f] = clamp(v, -3.5, 3.5)
			}
		}
	}
	return out
}

// genMNIST models a 28x28 handwritten digit scanned row-major into a length
// 784 sequence of 0..255 intensities: long zero runs at the margins with
// bright stroke crossings in the middle rows. Digit identity (label) sets the
// stroke-crossing pattern.
func genMNIST(meta Meta, label int, rng *rand.Rand) [][]float64 {
	const side = 28
	out := alloc(meta.SeqLen, meta.NumFeatures)
	// Each digit has 1-3 stroke centers per row band, derived
	// deterministically from the label with per-sequence jitter.
	centers := make([]float64, 3)
	widths := make([]float64, 3)
	for i := range centers {
		centers[i] = 6 + math.Mod(float64(label)*4.7+float64(i)*9.3, 16) + rng.NormFloat64()*0.8
		// Anti-aliased pen strokes are a few pixels wide.
		widths[i] = 2.4 + math.Mod(float64(label)*1.3+float64(i)*0.9, 2.2)
	}
	nStrokes := 1 + label%3
	top := 4 + rng.Intn(3)
	bottom := side - 4 - rng.Intn(3)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			t := r*side + c
			if t >= meta.SeqLen {
				break
			}
			var v float64
			// Digits leave many middle rows empty too (loop holes,
			// stroke gaps); only about three quarters carry ink.
			inked := (r*2+label)%8 != 0 && (r*2+label)%8 != 4
			if r >= top && r < bottom && inked {
				rowBend := 3 * math.Sin(float64(r)/float64(side)*math.Pi*(1+float64(label%4)))
				for s := 0; s < nStrokes; s++ {
					v += bump(c, centers[s]+rowBend, widths[s], 235)
				}
			}
			v += math.Abs(rng.NormFloat64()) * 4 // sensor/scan noise
			out[t][0] = clamp(v, 0, 255)
		}
	}
	return out
}

// genPassword models stylus pressure while drawing one of five graphical
// passwords: a label-specific sequence of pressure bumps over a long, mostly
// idle trace.
func genPassword(meta Meta, label int, rng *rand.Rand) [][]float64 {
	out := alloc(meta.SeqLen, meta.NumFeatures)
	nStrokes := 3 + label*2
	j := jitter(rng, 0.15)
	for t := 0; t < meta.SeqLen; t++ {
		var v float64
		for s := 0; s < nStrokes; s++ {
			// Stroke centers are a deterministic function of the
			// password (label), with small per-attempt shift.
			c := float64(meta.SeqLen) * (0.08 + 0.84*math.Mod(float64(label)*0.37+float64(s)*0.213, 1))
			c += rng.NormFloat64() * 4
			w := 18 + 6*math.Mod(float64(label+s)*0.71, 1.5)
			h := (5 + 3*math.Mod(float64(label*7+s*3), 4)) * j
			v += bump(t, c, w, h)
		}
		v += 0.05 * rng.NormFloat64()
		out[t][0] = clamp(v, -15.8, 15.8)
	}
	return out
}

// genPavement models a vehicle-mounted accelerometer over three asphalt
// classes (Souza): flexible pavement is smooth, cobblestone adds strong
// periodic jolts, dirt roads add large irregular bumps.
func genPavement(meta Meta, label int, rng *rand.Rand) [][]float64 {
	out := alloc(meta.SeqLen, meta.NumFeatures)
	j := jitter(rng, 0.3)
	var sigma, jolt float64
	switch label {
	case 0: // Flexible (smooth asphalt)
		sigma, jolt = 1.2, 0
	case 1: // Cobblestone: periodic jolts
		sigma, jolt = 4.5, 14
	default: // Dirt: irregular large bumps
		sigma, jolt = 8.5, 22
	}
	w := walker{mu: 0, theta: 0.3, sigma: sigma * j}
	phase := rng.Float64() * 2 * math.Pi
	for t := 0; t < meta.SeqLen; t++ {
		v := w.next(rng)
		if label == 1 {
			v += jolt * j * math.Max(0, math.Sin(2*math.Pi*14*float64(t)/float64(meta.SeqLen)+phase)-0.75) * 4
		}
		if label == 2 && rng.Float64() < 0.06 {
			v += (rng.Float64()*2 - 1) * jolt * 2
		}
		out[t][0] = clamp(v, -31.8, 31.8)
	}
	return out
}

// genStrawberry models FTIR spectra of fruit purees (Holland et al., 2
// classes: strawberry vs adulterated). Spectra are smooth sums of absorption
// peaks; adulteration shifts peak heights and adds a subtle extra band.
func genStrawberry(meta Meta, label int, rng *rand.Rand) [][]float64 {
	out := alloc(meta.SeqLen, meta.NumFeatures)
	type peak struct{ c, w, h float64 }
	peaks := []peak{
		{c: 0.12, w: 5, h: 1.4}, {c: 0.3, w: 9, h: 2.3},
		{c: 0.52, w: 6, h: 1.1}, {c: 0.72, w: 11, h: 2.8},
		{c: 0.9, w: 4, h: 0.9},
	}
	j := jitter(rng, 0.08)
	adulterated := label == 1
	for t := 0; t < meta.SeqLen; t++ {
		var v float64
		for i, p := range peaks {
			h := p.h * j
			if adulterated {
				h *= 1 + 0.25*math.Sin(float64(i)*2.1) // reshaped peaks
			}
			v += bump(t, p.c*float64(meta.SeqLen), p.w, h)
		}
		if adulterated {
			v += bump(t, 0.62*float64(meta.SeqLen), 8, 0.8*j) // adulterant band
			// Adulterants (sucrose syrups) introduce fine absorption
			// structure that roughens the spectrum.
			v += 0.16 * j * math.Sin(2*math.Pi*34*float64(t)/float64(meta.SeqLen))
		}
		v += 0.01 * rng.NormFloat64()
		out[t][0] = clamp(v, -3.9, 3.9)
	}
	return out
}

// genTiselac models per-pixel satellite image time series (23 acquisitions,
// 10 spectral/derived features) over nine land-cover classes. Each class has
// a characteristic reflectance level and seasonal profile; vegetated classes
// swing strongly across the year, built surfaces stay flat.
func genTiselac(meta Meta, label int, rng *rand.Rand) [][]float64 {
	out := alloc(meta.SeqLen, meta.NumFeatures)
	// Class "greenness": how strongly the seasonal cycle modulates
	// reflectance. Urban (low) through dense forest (high).
	green := float64(label) / float64(meta.NumLabels-1)
	base := 400 + 250*float64(label%5)
	j := jitter(rng, 0.15)
	phase := rng.Float64() * 0.8
	// Per-sequence acquisition offsets (atmosphere, illumination) move the
	// whole series; per-step noise stays small because reflectance changes
	// slowly between the 23 acquisitions.
	offset := 80 * rng.NormFloat64()
	for t := 0; t < meta.SeqLen; t++ {
		season := math.Sin(2*math.Pi*float64(t)/float64(meta.SeqLen) + phase)
		for f := 0; f < meta.NumFeatures; f++ {
			fBase := base + 120*float64(f)
			v := fBase*j + offset + green*700*season*(0.5+0.5*math.Cos(float64(f))) +
				(8+45*green)*rng.NormFloat64()
			// Reflectances are non-negative integers.
			out[t][f] = math.Round(clamp(v, 0, 3379))
		}
	}
	return out
}
