// Package load type-checks Go packages for the analysis framework without
// golang.org/x/tools: it shells out to `go list -export` for package metadata
// and compiler export data, parses the target packages from source, and
// type-checks them with go/types resolving imports through the export data.
// The build cache makes repeat loads cheap, and nothing touches the network
// (the loader forces GOPROXY=off; this module's dependency graph is
// stdlib-only by design).
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Unit is one type-checked compilation unit: a package, its in-package test
// variant, or its external test package.
type Unit struct {
	// PkgPath is the unit's import path; external test units carry the
	// "_test" suffix go list gives them.
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	// Test marks test-variant units (in-package or external).
	Test bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	ForTest      string
	Error        *struct{ Err string }
}

// Load type-checks the packages matching patterns, resolved relative to dir.
// Each matched package yields up to three Units: the package itself, its
// in-package test variant, and its external test package. Tests=false skips
// the test variants.
func Load(dir string, tests bool, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := golist(dir, tests, patterns)
	if err != nil {
		return nil, err
	}

	// Export data index. Plain paths resolve to the plain build; test-variant
	// entries ("p [p.test]") are indexed under their real path separately so
	// external test units can see symbols the in-package test files add.
	exports := map[string]string{}
	testExports := map[string]string{}
	var roots []*listPkg
	for _, p := range pkgs {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		path, variant := splitVariant(p.ImportPath)
		if variant {
			if p.Export != "" {
				testExports[path] = p.Export
			}
			continue
		}
		if p.Export != "" {
			exports[path] = p.Export
		}
		if !p.DepOnly && !strings.HasSuffix(path, ".test") {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	parsed := map[string]*ast.File{}
	parseAll := func(pkgDir string, names []string) ([]*ast.File, error) {
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			path := filepath.Join(pkgDir, name)
			f, ok := parsed[path]
			if !ok {
				var err error
				f, err = parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					return nil, err
				}
				parsed[path] = f
			}
			files = append(files, f)
		}
		return files, nil
	}

	plainImp := importer.ForCompiler(fset, "gc", exportLookup(exports, nil))
	variantImp := importer.ForCompiler(fset, "gc", exportLookup(exports, testExports))

	var units []*Unit
	check := func(path string, pkgDir string, names []string, imp types.Importer, test bool) error {
		if len(names) == 0 {
			return nil
		}
		files, err := parseAll(pkgDir, names)
		if err != nil {
			return err
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		pkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return fmt.Errorf("load: typecheck %s: %w", path, err)
		}
		units = append(units, &Unit{
			PkgPath: path, Fset: fset, Files: files, Pkg: pkg, Info: info, Test: test,
		})
		return nil
	}

	for _, r := range roots {
		if err := check(r.ImportPath, r.Dir, r.GoFiles, plainImp, false); err != nil {
			return nil, err
		}
		if !tests {
			continue
		}
		if len(r.TestGoFiles) > 0 {
			names := append(append([]string{}, r.GoFiles...), r.TestGoFiles...)
			if err := check(r.ImportPath, r.Dir, names, plainImp, true); err != nil {
				return nil, err
			}
		}
		if len(r.XTestGoFiles) > 0 {
			if err := check(r.ImportPath+"_test", r.Dir, r.XTestGoFiles, variantImp, true); err != nil {
				return nil, err
			}
		}
	}
	return units, nil
}

// splitVariant splits "p [p.test]" into ("p", true); plain paths return
// (path, false).
func splitVariant(importPath string) (string, bool) {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i], true
	}
	return importPath, false
}

// exportLookup builds the gc importer's lookup function over export files.
// preferred, when non-nil, is consulted first (test-variant export data).
func exportLookup(exports, preferred map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if preferred != nil {
			if file, ok := preferred[path]; ok {
				return os.Open(file)
			}
		}
		if file, ok := exports[path]; ok {
			return os.Open(file)
		}
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
}

// golist runs `go list -export -json -deps [-test] patterns...` in dir.
func golist(dir string, tests bool, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-e", "-export", "-json", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
