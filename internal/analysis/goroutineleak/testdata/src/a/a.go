package a

import "time"

type server struct {
	n     int
	stats []int
	jobs  chan int
}

func poll() {}

// spinLoop polls forever with nothing tying it to shutdown.
func spinLoop(s *server) {
	go func() { // want `goroutine func literal loops forever with no visible termination path`
		for {
			poll()
			time.Sleep(time.Second)
		}
	}()
}

// namedSpin leaks through a same-unit named callee.
func namedSpin(s *server) {
	go s.spin() // want `goroutine spin loops forever with no visible termination path`
}

func (s *server) spin() {
	for {
		s.n++
	}
}

// tick is a free function with an unbounded loop.
func tick(d time.Duration) {
	for {
		time.Sleep(d)
	}
}

func startTick() {
	go tick(time.Second) // want `goroutine tick loops forever with no visible termination path`
}

// sliceRange shows that ranging over a slice inside the loop is not a
// termination path — only a channel range blocks until close.
func sliceRange(s *server) {
	go func() { // want `goroutine func literal loops forever with no visible termination path`
		for {
			for _, v := range s.stats {
				_ = v
			}
		}
	}()
}
