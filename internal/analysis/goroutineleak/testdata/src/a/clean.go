package a

import (
	"context"
	"sync"
	"time"
)

// ctxLoop exits when the context is canceled — the canonical shape.
func ctxLoop(ctx context.Context, s *server) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				poll()
			}
		}
	}()
}

// latchLoop blocks on a stop latch each round.
func latchLoop(stop chan struct{}) {
	go func() {
		for {
			<-stop
			poll()
		}
	}()
}

// rangeLoop drains a work channel; close(jobs) ends it.
func rangeLoop(s *server) {
	go func() {
		for {
			for j := range s.jobs {
				_ = j
			}
			return
		}
	}()
}

// errReturn is the conn-pump shape: a read error (forced by Close severing
// the conn or a deadline firing) returns out of the loop.
func errReturn(read func() error) {
	go func() {
		for {
			if err := read(); err != nil {
				return
			}
		}
	}()
}

// bounded just runs off the end — no loop, nothing to flag.
func bounded(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		poll()
	}()
}

// condLoop terminates when its condition flips.
func condLoop(s *server) {
	go func() {
		for s.n < 100 {
			s.n++
		}
	}()
}

// waiter parks on a WaitGroup each round.
func waiter(wg *sync.WaitGroup) {
	go func() {
		for {
			wg.Wait()
			poll()
		}
	}()
}

// indirect starts an opaque function value: not checkable one unit deep,
// so the analyzer stays silent rather than guessing.
func indirect(fn func()) {
	go fn()
}

// allowed documents a deliberately unbounded pump: reads are bounded by
// per-read deadlines and Close severs the conn.
func allowed(s *server) {
	//age:allow goroutineleak bounded by per-read conn deadlines; Close severs the conn
	go s.spin()
}
