// Package goroutineleak flags go statements in long-lived packages whose
// goroutine has no visible termination path.
//
// The ingest server, cluster gateway, staging logs, and projection workers
// are resident processes: a goroutine started there without a shutdown
// signal outlives Close and accumulates across node restarts — the exact
// leak class PR 1 fixed in the original transport and that the drain and
// shutdown tests check dynamically (internal/ingest's post-Close goroutine
// count assertion). This analyzer encodes the property statically so a new
// background loop can't merge without one.
//
// A goroutine body terminates visibly when it
//
//   - selects or receives on a channel (ctx.Done(), a stop latch, a work
//     queue whose close ends a range loop), or
//   - ranges over a channel, or
//   - calls a Wait/Done-style method inside the loop, or
//   - simply runs off the end — a bounded body with no infinite for loop
//     needs no signal.
//
// Only an infinite `for {}` / `for cond {}`-style loop with none of those
// in its body is flagged. The check is one hop deep: `go w.run(ctx)`
// inspects run's body when it is declared in the same unit. Deliberate
// exceptions (e.g. a loop bounded by per-read conn deadlines) carry
// //age:allow goroutineleak with a reason.
package goroutineleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// Packages are the long-lived import paths to enforce in.
	Packages []string
}

// DefaultConfig lists the resident layers: everything that survives past a
// single request/response exchange.
func DefaultConfig() Config {
	return Config{Packages: []string{
		"repro/internal/ingest",
		"repro/internal/cluster",
		"repro/internal/staging",
		"repro/internal/projection",
	}}
}

// Analyzer is the default instance used by agevet.
var Analyzer = New(DefaultConfig())

// New builds the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	g := &goroutineleak{cfg: cfg}
	return &analysis.Analyzer{
		Name:         "goroutineleak",
		Doc:          "flags go statements in long-lived packages whose goroutine loops forever with no select/receive/range-over-channel termination path",
		IncludeTests: false,
		Run:          g.run,
	}
}

type goroutineleak struct {
	cfg Config
}

func (g *goroutineleak) run(pass *analysis.Pass) error {
	inScope := false
	for _, p := range g.cfg.Packages {
		if pass.Pkg.Path() == p {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}

	// Index this unit's function declarations for the one-hop body lookup.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.Info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gostmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, name := goroutineBody(pass, decls, gostmt.Call)
			if body == nil {
				return true // indirect or cross-unit callee: not checkable
			}
			if loop := unterminatedLoop(pass, body); loop != nil {
				pass.Reportf(gostmt.Pos(),
					"goroutine %s loops forever with no visible termination path (no select, channel receive, channel range, or Wait/Done call in the loop); tie it to a ctx/Done channel or stop latch, or annotate //age:allow goroutineleak with the bound",
					name)
			}
			return true
		})
	}
	return nil
}

// goroutineBody resolves the body the go statement runs: a function
// literal's own body, or the declaration of a same-unit named callee
// (function or method).
func goroutineBody(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, "func literal"
	case *ast.Ident:
		if obj := pass.Info.Uses[fun]; obj != nil {
			if d := decls[obj]; d != nil {
				return d.Body, fun.Name
			}
		}
	case *ast.SelectorExpr:
		if obj := pass.Info.Uses[fun.Sel]; obj != nil {
			if d := decls[obj]; d != nil {
				return d.Body, fun.Sel.Name
			}
		}
	}
	return nil, ""
}

// unterminatedLoop returns an infinite for loop in body (transitively,
// including through same-body nesting) whose own body shows no termination
// path, or nil. Function literals nested inside are separate goroutine
// decisions and are skipped.
func unterminatedLoop(pass *analysis.Pass, body *ast.BlockStmt) *ast.ForStmt {
	var bad *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		// `for cond {}` terminates when cond flips; only Cond == nil loops
		// run forever on their own.
		if loop.Cond != nil {
			return true
		}
		if !hasTermination(pass, loop.Body) {
			bad = loop
		}
		return true
	})
	return bad
}

// hasTermination reports whether the loop body contains a select, channel
// receive, range over a channel, WaitGroup-style Wait call, or a return —
// any of which gives the loop an externally drivable exit: close the
// channel / cancel the ctx / sever the conn and the error return fires.
func hasTermination(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// Range over a channel blocks until the channel closes; range
			// over anything else is bounded per-iteration and proves
			// nothing either way.
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		case *ast.ReturnStmt:
			found = true
		}
		return !found
	})
	return found
}
