package goroutineleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroutineleak"
)

func TestAnalyzer(t *testing.T) {
	a := goroutineleak.New(goroutineleak.Config{Packages: []string{"a"}})
	analysistest.Run(t, a, "testdata/src/a")
}
