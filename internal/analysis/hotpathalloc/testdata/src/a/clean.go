package a

import "fmt"

// Clean appends into caller-owned storage: the capacity decision belongs to
// the caller, so nothing here is flagged.
//
//age:hotpath
func Clean(dst []byte, vs []uint32) []byte {
	for _, v := range vs {
		dst = append(dst, byte(v))
	}
	return dst
}

// ColdPath allocates only on an error path that returns; steady state stays
// allocation-free.
//
//age:hotpath
func ColdPath(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n)
	}
	return nil
}

// Allowed demonstrates a triaged, annotated finding.
//
//age:hotpath
func Allowed(n int) []byte {
	//age:allow hotpathalloc amortized: called once per session, result cached
	return make([]byte, n)
}

// NonCapturing closures (comparator shapes) allocate nothing.
//
//age:hotpath
func NonCapturing(n int) int {
	f := func(x int) int { return x + 1 }
	return f(n)
}

// Unmarked is not annotated and not on the required list: no checks apply.
func Unmarked(n int) []byte {
	return make([]byte, n)
}
