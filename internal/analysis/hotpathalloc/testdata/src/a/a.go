package a

import "fmt"

// Hot violates the zero-alloc contract in every way the analyzer knows.
//
//age:hotpath
func Hot(dst []byte, n int) []byte {
	buf := make([]byte, n) // want `make allocates`
	_ = buf
	s := []int{1, 2, 3} // want `slice literal allocates`
	_ = s
	msg := fmt.Sprintf("n=%d", n) // want `fmt.Sprintf allocates`
	b := []byte(msg)              // want `string-to-slice conversion allocates`
	_ = b
	var out []int
	out = append(out, n) // want `append to out, declared without capacity`
	_ = out
	g := func() int { return n } // want `variable-capturing closure allocates`
	_ = g
	return dst
}

// MustBeHot is on the required list but carries no annotation.
func MustBeHot() {} // want `MustBeHot is a known hot path and must be annotated`
