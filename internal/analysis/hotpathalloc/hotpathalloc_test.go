package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpathalloc"
)

func TestAnalyzer(t *testing.T) {
	a := hotpathalloc.New(hotpathalloc.Config{
		Require: map[string][]string{"a": {"MustBeHot"}},
	})
	analysistest.Run(t, a, "testdata/src/a")
}
