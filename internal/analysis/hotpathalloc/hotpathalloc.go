// Package hotpathalloc enforces the zero-allocation hot-path contract from
// PR 2/3: AppendEncode/DecodeInto and the bitio/fixedpoint kernels they call
// must not allocate in steady state (the AllocsPerRun tests pin them at
// 0 allocs/op; this analyzer keeps refactors from drifting toward the limit).
//
// Functions annotated //age:hotpath are checked for allocation-causing
// constructs: make/new, slice/map/channel composite literals, string
// conversions and concatenation, fmt/errors formatting calls, appends onto
// locally declared slices with no preallocated capacity, and variable-
// capturing closures. Constructs inside blocks that terminate in return or
// panic are exempt — error paths may allocate, the steady-state success path
// may not. A finding that is genuinely amortized (e.g. an append that reuses
// caller capacity) is silenced with //age:allow hotpathalloc and a reason.
//
// The analyzer also *requires* the annotation on the known hot entry points
// (Config.Require), so removing a comment cannot opt a kernel out of the
// check.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// Require maps package import paths to function/method names that must
	// carry the //age:hotpath annotation.
	Require map[string][]string
}

// DefaultConfig returns the repo's hot-path inventory: every encoder's
// append/into entry points and the bit-packing and quantization kernels on
// their call paths.
func DefaultConfig() Config {
	return Config{
		Require: map[string][]string{
			"repro/internal/core": {
				"AppendEncode", "DecodeInto", "AppendEncodeBatchN", "appendEncode",
			},
			"repro/internal/bitio": {
				"WriteBits", "ReadBits", "Align", "PadTo", "Reset", "ResetTo",
				// Word-at-a-time kernels and the streaming run accumulator.
				"WriteBits64", "ReadBits64", "WriteRun", "ReadRun",
				"StartRun", "Add", "Flush",
			},
			"repro/internal/fixedpoint": {
				"FromFloat", "FromBits", "Bits", "Float", "NonFracBitsFor",
				// Precomputed quantizer/dequantizer kernels.
				"Raw",
			},
		},
	}
}

// Analyzer is the default instance used by agevet.
var Analyzer = New(DefaultConfig())

// New builds the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:         "hotpathalloc",
		Doc:          "flags allocation-causing constructs in //age:hotpath functions",
		IncludeTests: false,
		Run:          func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	required := map[string]bool{}
	for _, name := range cfg.Require[pass.Pkg.Path()] {
		required[name] = true
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			marked := pass.Dirs.FuncMarked(fn, analysis.MarkHotpath)
			if required[fn.Name.Name] && !marked {
				pass.Reportf(fn.Name.Pos(),
					"%s is a known hot path and must be annotated //age:hotpath", fn.Name.Name)
			}
			if marked && fn.Body != nil {
				checkBody(pass, fn)
			}
		}
	}
	return nil
}

// checkBody walks fn's statements, skipping cold (error-path) blocks.
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	var walkStmt func(s ast.Stmt)
	var walkExpr func(e ast.Expr)

	walkExpr = func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, fn, n)
			case *ast.CompositeLit:
				checkCompositeLit(pass, n)
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isNonConstString(pass, n) {
					pass.Reportf(n.OpPos, "string concatenation allocates in //age:hotpath function %s", fn.Name.Name)
				}
			case *ast.FuncLit:
				if captures(pass, n) {
					pass.Reportf(n.Pos(), "variable-capturing closure allocates in //age:hotpath function %s", fn.Name.Name)
				}
				return false // the closure body runs elsewhere
			}
			return true
		})
	}

	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, st := range s.List {
				walkStmt(st)
			}
		case *ast.IfStmt:
			walkStmt(s.Init)
			walkExpr(s.Cond)
			if !isCold(s.Body) {
				walkStmt(s.Body)
			}
			if s.Else != nil {
				if blk, ok := s.Else.(*ast.BlockStmt); ok && isCold(blk) {
					break
				}
				walkStmt(s.Else)
			}
		case *ast.SwitchStmt:
			walkStmt(s.Init)
			walkExpr(s.Tag)
			for _, cc := range s.Body.List {
				c := cc.(*ast.CaseClause)
				cold := len(c.Body) > 0 && terminates(c.Body[len(c.Body)-1])
				for _, e := range c.List {
					walkExpr(e)
				}
				if !cold {
					for _, st := range c.Body {
						walkStmt(st)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			walkStmt(s.Init)
			walkStmt(s.Assign)
			for _, cc := range s.Body.List {
				c := cc.(*ast.CaseClause)
				cold := len(c.Body) > 0 && terminates(c.Body[len(c.Body)-1])
				if !cold {
					for _, st := range c.Body {
						walkStmt(st)
					}
				}
			}
		case *ast.ForStmt:
			walkStmt(s.Init)
			walkExpr(s.Cond)
			walkStmt(s.Post)
			walkStmt(s.Body)
		case *ast.RangeStmt:
			walkExpr(s.X)
			walkStmt(s.Body)
		case *ast.ReturnStmt:
			// Return expressions on the success path still run every call.
			for _, e := range s.Results {
				walkExpr(e)
			}
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				walkExpr(e)
			}
			checkAppendTargets(pass, fn, s)
		case *ast.ExprStmt:
			walkExpr(s.X)
		case *ast.DeferStmt:
			walkExpr(s.Call.Fun)
			for _, a := range s.Call.Args {
				walkExpr(a)
			}
		case *ast.GoStmt:
			pass.Reportf(s.Pos(), "go statement allocates in //age:hotpath function %s", fn.Name.Name)
		case *ast.SendStmt:
			walkExpr(s.Chan)
			walkExpr(s.Value)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, sp := range gd.Specs {
					if vs, ok := sp.(*ast.ValueSpec); ok {
						for _, e := range vs.Values {
							walkExpr(e)
						}
					}
				}
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt)
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				c := cc.(*ast.CommClause)
				walkStmt(c.Comm)
				for _, st := range c.Body {
					walkStmt(st)
				}
			}
		case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		default:
		}
	}
	walkStmt(fn.Body)
}

// isCold reports whether blk is an error path: its final statement leaves the
// function (return or panic), so it does not run in steady state.
func isCold(blk *ast.BlockStmt) bool {
	if len(blk.List) == 0 {
		return false
	}
	return terminates(blk.List[len(blk.List)-1])
}

func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "%s allocates in //age:hotpath function %s", id.Name, fn.Name.Name)
			}
			return
		}
	}
	switch name := analysis.CalleeName(pass.Info, call); name {
	case "fmt.Sprintf", "fmt.Sprint", "fmt.Sprintln", "fmt.Errorf",
		"fmt.Printf", "fmt.Println", "fmt.Print", "errors.New":
		pass.Reportf(call.Pos(), "%s allocates in //age:hotpath function %s", name, fn.Name.Name)
	}
	// Conversions that copy: []byte(s), string(b), []rune(s).
	if conv, ok := convTarget(pass, call); ok {
		pass.Reportf(call.Pos(), "%s conversion allocates in //age:hotpath function %s", conv, fn.Name.Name)
	}
}

// convTarget detects string<->slice conversions, which copy their operand.
func convTarget(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "", false
	}
	to := tv.Type.Underlying()
	from, ok := pass.Info.Types[call.Args[0]]
	if !ok {
		return "", false
	}
	fromT := from.Type.Underlying()
	isString := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	if isString(fromT) && isByteOrRuneSlice(to) {
		return "string-to-slice", true
	}
	if isByteOrRuneSlice(fromT) && isString(to) {
		return "slice-to-string", true
	}
	return "", false
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates; preallocate outside the hot path")
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates; preallocate outside the hot path")
	}
}

// checkAppendTargets flags s = append(s, ...) when s is a local slice whose
// declaration carries no capacity (nil or literal), so every growth step
// allocates. Slices arriving via parameters, fields, or calls (scratch pools,
// slices.Grow) are the caller's business and stay unflagged.
func checkAppendTargets(pass *analysis.Pass, fn *ast.FuncDecl, s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := pass.Info.Uses[target].(*types.Var)
		if !ok || obj.Parent() == nil || obj.Parent() == pass.Pkg.Scope() {
			continue // package-level or field: not a local
		}
		if declaredWithoutCapacity(pass, fn, obj) {
			pass.Reportf(call.Pos(),
				"append to %s, declared without capacity, allocates on growth in //age:hotpath function %s",
				target.Name, fn.Name.Name)
		}
	}
}

// declaredWithoutCapacity reports whether obj's declaration inside fn is a
// bare var, a nil assignment, or a slice literal — storage with no headroom.
func declaredWithoutCapacity(pass *analysis.Pass, fn *ast.FuncDecl, obj *types.Var) bool {
	bad := false
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.Info.Defs[id] != obj || i >= len(n.Rhs) {
					continue
				}
				switch rhs := ast.Unparen(n.Rhs[i]).(type) {
				case *ast.CompositeLit:
					bad = true
				case *ast.Ident:
					if rhs.Name == "nil" {
						bad = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Info.Defs[name] != obj {
					continue
				}
				if len(n.Values) == 0 {
					bad = true // var s []T
				} else if i < len(n.Values) {
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.CompositeLit); ok && lit != nil {
						bad = true
					}
				}
			}
		}
		return true
	})
	return bad
}

// captures reports whether lit references a variable declared outside itself
// (but not at package scope). Such closures escape to the heap; non-capturing
// literals — slices.SortFunc comparators over their own parameters — do not
// and stay unflagged.
func captures(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.Parent() == nil {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
			return true // package-level: no capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return !found
	})
	return found
}

// isNonConstString reports whether the ADD expression concatenates strings
// where at least one operand is not a compile-time constant.
func isNonConstString(pass *analysis.Pass, b *ast.BinaryExpr) bool {
	tv, ok := pass.Info.Types[b]
	if !ok {
		return false
	}
	bt, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || bt.Info()&types.IsString == 0 {
		return false
	}
	return tv.Value == nil // constant-folded concatenations don't allocate per call
}
