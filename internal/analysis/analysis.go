// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: a framework for writing project-specific
// static analyzers over type-checked Go packages.
//
// The repo's security and reproducibility claims rest on invariants the
// compiler cannot see — fixed-length side-channel-free encoding, byte-identical
// deterministic sweeps, zero-allocation hot paths, deadline-guarded transport.
// Each invariant gets an Analyzer (see the subpackages) and cmd/agevet runs
// them all as a blocking CI step, so a refactor cannot silently reintroduce a
// leak, a nondeterministic sweep, or a hot-path allocation.
//
// The container this repo builds in has no module proxy access, so the
// framework is built on the standard library alone: packages are loaded with
// `go list -export` (see the load subpackage) and type-checked with go/types
// against compiler export data. The Analyzer/Pass surface deliberately mirrors
// x/tools so analyzers could be ported to a multichecker later with minimal
// churn.
//
// # Annotations
//
// Analyzers understand three comment directives:
//
//	//age:hotpath            function must be allocation-free (hotpathalloc)
//	//age:deterministic      function/file must avoid nondeterminism (detrand)
//	//age:transport          function/file does conn I/O, deadline rules apply
//	//age:allow <analyzer> — <reason>   suppress one finding on this/next line
//
// An age:allow must name the analyzer it silences and should carry a reason;
// it applies to the line it sits on and the line directly below it, so both
// end-of-line and stand-alone placements work.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and age:allow directives.
	Name string
	// Doc is a one-paragraph description: the invariant, where it came from
	// (paper section or PR), and the annotation syntax it honors.
	Doc string
	// IncludeTests runs the analyzer over _test.go files too. Analyzers that
	// enforce production wire/locking discipline leave this false; analyzers
	// whose invariant extends to tests (sentinel errors, determinism) set it.
	IncludeTests bool
	// Run reports diagnostics for one package unit via pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package unit.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the unit's syntax trees. For an in-package test unit this
	// includes the non-test files (they shape the types), but diagnostics
	// are only kept for _test.go files to avoid duplicating the base unit's.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Dirs indexes the unit's //age: directives.
	Dirs *Directives
	// TestUnit marks an in-package-test or external-test unit.
	TestUnit bool

	keepFile func(token.Position) bool
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an age:allow directive for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.keepFile != nil && !p.keepFile(position) {
		return
	}
	if p.Dirs.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer over every loaded unit and returns the combined
// diagnostics sorted by file, line, and analyzer name.
func Run(units []*load.Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, u := range units {
		dirs := NewDirectives(u.Fset, u.Files)
		for _, a := range analyzers {
			if u.Test && !a.IncludeTests {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    u.Files,
				Pkg:      u.Pkg,
				Info:     u.Info,
				Dirs:     dirs,
				TestUnit: u.Test,
				sink:     &diags,
			}
			if u.Test {
				// The base unit already covered the non-test files.
				pass.keepFile = func(pos token.Position) bool {
					return strings.HasSuffix(pos.Filename, "_test.go")
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// EnclosingFunc returns the innermost function declaration in file whose body
// spans pos, or nil.
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos <= fn.End() {
			return fn
		}
	}
	return nil
}

// IsConnLike reports whether t structurally looks like a net.Conn: its method
// set carries Read, Write, and SetReadDeadline. Matching on shape rather than
// identity means *net.TCPConn, net.Conn, and test doubles all count, without
// this package needing the net package's type object in scope.
func IsConnLike(t types.Type) bool {
	return hasMethod(t, "Read") && hasMethod(t, "Write") && hasMethod(t, "SetReadDeadline")
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	if ms.Lookup(nil, name) != nil {
		return true
	}
	// Method sets of non-pointer types omit pointer-receiver methods.
	if _, ok := t.(*types.Pointer); !ok {
		if ms := types.NewMethodSet(types.NewPointer(t)); ms.Lookup(nil, name) != nil {
			return true
		}
	}
	return false
}

// CalleeName resolves a call to "pkgpath.Func" for package-level functions or
// "recvtype.Method" for methods; it returns "" for indirect calls.
func CalleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return funcName(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return funcName(fn)
		}
	}
	return ""
}

func funcName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		return types.TypeString(t, nil) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}
