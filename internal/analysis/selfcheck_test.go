package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/ctxdeadline"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/goroutineleak"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/leaktaint"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockedblock"
	"repro/internal/analysis/sentinelerr"
)

// TestRepoIsClean runs the full agevet suite over the repository and requires
// zero diagnostics — the same gate CI applies with `go run ./cmd/agevet
// ./...`. A finding here means either new code broke an invariant or an
// analyzer grew a false positive; both need fixing before merge.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	units, err := load.Load("../..", true, "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags, err := analysis.Run(units, []*analysis.Analyzer{
		hotpathalloc.Analyzer,
		detrand.Analyzer,
		lockedblock.Analyzer,
		sentinelerr.Analyzer,
		ctxdeadline.Analyzer,
		leaktaint.Analyzer,
		goroutineleak.Analyzer,
		atomicmix.Analyzer,
	})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}
