package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive markers. Mark* apply to whole functions or files; allowPrefix
// suppresses a single finding. MarkSecret and MarkCounter additionally work
// as *line* marks — placed at the end of (or directly above) a declaration
// line they tag that declaration: a secret field/var/method for leaktaint,
// a discipline-guarded counter field for atomicmix.
const (
	MarkHotpath       = "hotpath"
	MarkDeterministic = "deterministic"
	MarkTransport     = "transport"
	MarkSecret        = "secret"
	MarkCounter       = "counter"

	directivePrefix     = "age:"
	allowDirective      = "age:allow"
	declassifyDirective = "age:declassify"
)

// Directives indexes the //age: comment directives of one package unit.
type Directives struct {
	fset *token.FileSet
	// allow maps filename -> line -> analyzer names allowed on that line.
	allow map[string]map[int][]string
	// declassify maps filename -> line -> true for reviewed secret flows
	// (leaktaint stops taint propagation and reporting there).
	declassify map[string]map[int]bool
	// marks maps filename -> marker -> true for file-level marks (comments
	// above the package clause).
	fileMarks map[string]map[string]bool
	// lineMarks maps filename -> line -> marker set, covering the
	// directive's own line and the line below it (mirroring allow).
	lineMarks map[string]map[int]map[string]bool
}

// NewDirectives scans the files' comments once and builds the index.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:       fset,
		allow:      map[string]map[int][]string{},
		declassify: map[string]map[int]bool{},
		fileMarks:  map[string]map[string]bool{},
		lineMarks:  map[string]map[int]map[string]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				if name, ok := allowName(text); ok {
					byLine := d.allow[pos.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						d.allow[pos.Filename] = byLine
					}
					// The directive covers its own line (end-of-line form)
					// and the next line (stand-alone form).
					byLine[pos.Line] = append(byLine[pos.Line], name)
					byLine[pos.Line+1] = append(byLine[pos.Line+1], name)
					continue
				}
				if strings.HasPrefix(text, declassifyDirective) {
					byLine := d.declassify[pos.Filename]
					if byLine == nil {
						byLine = map[int]bool{}
						d.declassify[pos.Filename] = byLine
					}
					byLine[pos.Line] = true
					byLine[pos.Line+1] = true
					continue
				}
				mark := strings.TrimPrefix(text, directivePrefix)
				if i := strings.IndexAny(mark, " \t"); i >= 0 {
					mark = mark[:i]
				}
				// A mark above the package clause scopes to the whole file.
				if c.End() < f.Package {
					fm := d.fileMarks[pos.Filename]
					if fm == nil {
						fm = map[string]bool{}
						d.fileMarks[pos.Filename] = fm
					}
					fm[mark] = true
					continue
				}
				// Everywhere else it also tags its line and the next one,
				// so declarations can be marked in place (//age:secret on a
				// struct field) or from the line above.
				byLine := d.lineMarks[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					d.lineMarks[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][mark] = true
				}
			}
		}
	}
	return d
}

// allowName parses "age:allow <analyzer> ..." and returns the analyzer name.
func allowName(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, allowDirective)
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// allowed reports whether an age:allow directive for analyzer covers pos.
func (d *Directives) allowed(analyzer string, pos token.Position) bool {
	for _, name := range d.allow[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// Declassified reports whether an age:declassify directive covers pos — a
// reviewed, deliberate secret→observable flow (leaktaint neither reports it
// nor propagates taint through assignments on the line).
func (d *Directives) Declassified(pos token.Pos) bool {
	p := d.fset.Position(pos)
	return d.declassify[p.Filename][p.Line]
}

// LineMarked reports whether pos's line carries //age:<mark> (end-of-line
// form, or a stand-alone directive on the line above).
func (d *Directives) LineMarked(pos token.Pos, mark string) bool {
	p := d.fset.Position(pos)
	return d.lineMarks[p.Filename][p.Line][mark]
}

// FuncMarked reports whether fn's doc comment carries //age:<mark>.
func (d *Directives) FuncMarked(fn *ast.FuncDecl, mark string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	want := directivePrefix + mark
	for _, c := range fn.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// FileMarked reports whether the file containing pos carries a file-level
// //age:<mark> above its package clause.
func (d *Directives) FileMarked(pos token.Pos, mark string) bool {
	return d.fileMarks[d.fset.Position(pos).Filename][mark]
}

// ScopeMarked reports whether pos sits in a marked scope: an enclosing
// function marked //age:<mark>, or a file-level mark.
func (d *Directives) ScopeMarked(file *ast.File, pos token.Pos, mark string) bool {
	if d.FileMarked(pos, mark) {
		return true
	}
	return d.FuncMarked(EnclosingFunc(file, pos), mark)
}
