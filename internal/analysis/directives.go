package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive markers. Mark* apply to whole functions or files; allowPrefix
// suppresses a single finding.
const (
	MarkHotpath       = "hotpath"
	MarkDeterministic = "deterministic"
	MarkTransport     = "transport"

	directivePrefix = "age:"
	allowDirective  = "age:allow"
)

// Directives indexes the //age: comment directives of one package unit.
type Directives struct {
	fset *token.FileSet
	// allow maps filename -> line -> analyzer names allowed on that line.
	allow map[string]map[int][]string
	// marks maps filename -> marker -> true for file-level marks (comments
	// above the package clause).
	fileMarks map[string]map[string]bool
}

// NewDirectives scans the files' comments once and builds the index.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:      fset,
		allow:     map[string]map[int][]string{},
		fileMarks: map[string]map[string]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				if name, ok := allowName(text); ok {
					byLine := d.allow[pos.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						d.allow[pos.Filename] = byLine
					}
					// The directive covers its own line (end-of-line form)
					// and the next line (stand-alone form).
					byLine[pos.Line] = append(byLine[pos.Line], name)
					byLine[pos.Line+1] = append(byLine[pos.Line+1], name)
					continue
				}
				// A mark above the package clause scopes to the whole file.
				if c.End() < f.Package {
					mark := strings.TrimPrefix(text, directivePrefix)
					if i := strings.IndexAny(mark, " \t"); i >= 0 {
						mark = mark[:i]
					}
					fm := d.fileMarks[pos.Filename]
					if fm == nil {
						fm = map[string]bool{}
						d.fileMarks[pos.Filename] = fm
					}
					fm[mark] = true
				}
			}
		}
	}
	return d
}

// allowName parses "age:allow <analyzer> ..." and returns the analyzer name.
func allowName(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, allowDirective)
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// allowed reports whether an age:allow directive for analyzer covers pos.
func (d *Directives) allowed(analyzer string, pos token.Position) bool {
	for _, name := range d.allow[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// FuncMarked reports whether fn's doc comment carries //age:<mark>.
func (d *Directives) FuncMarked(fn *ast.FuncDecl, mark string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	want := directivePrefix + mark
	for _, c := range fn.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// FileMarked reports whether the file containing pos carries a file-level
// //age:<mark> above its package clause.
func (d *Directives) FileMarked(pos token.Pos, mark string) bool {
	return d.fileMarks[d.fset.Position(pos).Filename][mark]
}

// ScopeMarked reports whether pos sits in a marked scope: an enclosing
// function marked //age:<mark>, or a file-level mark.
func (d *Directives) ScopeMarked(file *ast.File, pos token.Pos, mark string) bool {
	if d.FileMarked(pos, mark) {
		return true
	}
	return d.FuncMarked(EnclosingFunc(file, pos), mark)
}
