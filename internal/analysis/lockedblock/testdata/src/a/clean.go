package a

import "time"

// Good releases the lock before blocking.
func (s *S) Good(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// GuardedEarlyReturn unlocks on the early-exit path; the terminating branch
// must not leak held state onto the fallthrough path.
func (s *S) GuardedEarlyReturn(v int) {
	s.mu.Lock()
	if v < 0 {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.ch <- v
}

// Goroutine bodies run in their own lock context: the send inside the
// goroutine does not hold the creator's mutex.
func (s *S) Goroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}

// GoodSelect never parks: the default arm makes it a poll.
func (s *S) GoodSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// SleepOutside blocks only after the critical section ends.
func (s *S) SleepOutside() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}
