package a

import (
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

// BadSend blocks on a channel send with the mutex held.
func (s *S) BadSend(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while mutex is held`
	s.mu.Unlock()
}

// BadSleep sleeps under a deferred unlock, which holds to function exit.
func (s *S) BadSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while mutex is held`
}

// BadRecv blocks on a receive under the lock.
func (s *S) BadRecv() int {
	s.mu.Lock()
	v := <-s.ch // want `channel receive while mutex is held`
	s.mu.Unlock()
	return v
}

// BadSelect has no default, so it parks under the read lock.
func (s *S) BadSelect() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select { // want `select without default while mutex is held`
	case v := <-s.ch:
		_ = v
	}
}
