// Package lockedblock hunts the PR-1 fleet-deadlock class: blocking
// operations performed while a sync.Mutex or sync.RWMutex is held. A channel
// send, an unbuffered receive, a select with no default, conn I/O, or a
// time.Sleep under a lock turns a slow peer into a stalled server — the exact
// shape of the transport deadlocks fixed in PR 1 and re-audited in PR 4's
// ingest server.
//
// The analysis is intraprocedural and syntactic: within each function it
// tracks which mutexes are held (x.Lock() ... x.Unlock(), plus
// defer x.Unlock() holding to function exit) and flags blocking constructs in
// the held window. Branches that terminate (return/panic/break/continue)
// roll their lock-state changes back, so the common
// `mu.Lock(); if c { mu.Unlock(); return }` shape neither leaks nor
// false-positives. Intentional blocking under a lock — if any ever appears —
// is silenced with //age:allow lockedblock and a reason.
package lockedblock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the instance used by agevet.
var Analyzer = &analysis.Analyzer{
	Name:         "lockedblock",
	Doc:          "flags channel operations, conn I/O, and sleeps performed while a mutex is held",
	IncludeTests: false,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{pass: pass, held: map[string]bool{}}
			w.block(fn.Body)
			// Function literals get their own, independent lock context:
			// a goroutine body does not inherit the creator's locks.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lw := &walker{pass: pass, held: map[string]bool{}}
					lw.block(lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
	held map[string]bool // mutex expression text -> held
}

func (w *walker) anyHeld() bool { return len(w.held) > 0 }

func (w *walker) snapshot() map[string]bool {
	s := make(map[string]bool, len(w.held))
	for k, v := range w.held {
		s[k] = v
	}
	return s
}

func (w *walker) restore(s map[string]bool) { w.held = s }

// block scans a statement list in order, updating lock state as it goes.
func (w *walker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.scanNested(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, target, ok := mutexCall(w.pass, call); ok {
				switch name {
				case "Lock", "RLock":
					w.held[target] = true
				case "Unlock", "RUnlock":
					delete(w.held, target)
				}
				return
			}
		}
		w.checkExpr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps mu held for the rest of the scan — which
		// is the point: everything below runs under the lock.
		// Other deferred calls run at exit; skip their bodies.
		if _, _, ok := mutexCall(w.pass, s.Call); ok {
			return
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.checkExpr(s.Cond)
		w.branch(s.Body)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.branch(e)
		case *ast.IfStmt:
			w.stmt(e)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.checkExpr(s.Cond)
		w.branch(s.Body)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		if w.anyHeld() {
			if tv, ok := w.pass.Info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.report(s.Pos(), "range over channel")
				}
			}
		}
		w.checkExpr(s.X)
		w.branch(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.checkExpr(s.Tag)
		for _, cc := range s.Body.List {
			c := cc.(*ast.CaseClause)
			snap := w.snapshot()
			for _, st := range c.Body {
				w.stmt(st)
			}
			w.restore(snap)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		for _, cc := range s.Body.List {
			c := cc.(*ast.CaseClause)
			snap := w.snapshot()
			for _, st := range c.Body {
				w.stmt(st)
			}
			w.restore(snap)
		}
	case *ast.SendStmt:
		if w.anyHeld() {
			w.report(s.Pos(), "channel send")
		}
		w.checkExpr(s.Value)
	case *ast.SelectStmt:
		if w.anyHeld() && !hasDefault(s) {
			w.report(s.Pos(), "select without default")
		}
		for _, cc := range s.Body.List {
			c := cc.(*ast.CommClause)
			snap := w.snapshot()
			for _, st := range c.Body {
				w.stmt(st)
			}
			w.restore(snap)
		}
	case *ast.GoStmt:
		// The spawned goroutine has its own lock context (handled in run);
		// starting it does not block.
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e)
					}
				}
			}
		}
	}
}

// branch scans a nested block; if it terminates early (return, panic, break,
// continue), its lock-state changes are rolled back — on the fallthrough
// path the block was either not entered or the terminator left the function.
func (w *walker) branch(b *ast.BlockStmt) {
	snap := w.snapshot()
	w.block(b)
	if blockTerminates(b) {
		w.restore(snap)
	}
}

func (w *walker) scanNested(b *ast.BlockStmt) { w.branch(b) }

func hasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cc.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkExpr flags blocking expressions (receives, blocking calls) when a
// lock is held. FuncLit bodies are skipped: they run in their own context.
func (w *walker) checkExpr(e ast.Expr) {
	if e == nil || !w.anyHeld() {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				w.report(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			w.checkCall(n)
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr) {
	switch analysis.CalleeName(w.pass.Info, call) {
	case "time.Sleep":
		w.report(call.Pos(), "time.Sleep")
		return
	case "sync.WaitGroup.Wait":
		w.report(call.Pos(), "sync.WaitGroup.Wait")
		return
	}
	// Conn-like I/O: Read/Write/Accept on anything shaped like a net.Conn.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Read", "Write", "ReadFrom", "WriteTo", "Accept":
			if tv, ok := w.pass.Info.Types[sel.X]; ok && analysis.IsConnLike(tv.Type) {
				w.report(call.Pos(), "network "+sel.Sel.Name)
			}
		}
	}
}

func (w *walker) report(pos token.Pos, what string) {
	w.pass.Reportf(pos, "%s while mutex is held; release the lock first (PR-1 deadlock class) or annotate //age:allow lockedblock with a reason", what)
}

// mutexCall matches x.Lock/Unlock/RLock/RUnlock where x is a sync.Mutex,
// sync.RWMutex, or pointer to one; it returns the method name and the
// receiver's expression text as the tracking key.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (method, target string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, found := pass.Info.Types[sel.X]
	if !found || !isMutexType(tv.Type) {
		return "", "", false
	}
	return sel.Sel.Name, types.ExprString(sel.X), true
}

func isMutexType(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
