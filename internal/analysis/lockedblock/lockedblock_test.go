package lockedblock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockedblock"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, lockedblock.Analyzer, "testdata/src/a")
}
