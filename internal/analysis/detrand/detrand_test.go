package detrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

func TestAnalyzer(t *testing.T) {
	a := detrand.New(detrand.Config{Packages: []string{"a"}})
	analysistest.Run(t, a, "testdata/src/a")
}
