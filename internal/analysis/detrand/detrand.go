// Package detrand protects the deterministic-sweep contract from PR 2: at a
// fixed seed, the evaluation sweep's output is byte-identical for any worker
// count. The contract breaks the moment results depend on wall-clock time,
// on shared global RNG state (draw order varies with scheduling), or on map
// iteration order feeding ordered output (the original Figure 1 bug).
//
// Inside deterministic scope — the packages in Config.Packages, any file with
// a //age:deterministic comment above its package clause, and any function
// annotated //age:deterministic — the analyzer flags:
//
//   - time.Now, time.Since, time.Until calls;
//   - draws from the global math/rand state (rand.Intn, rand.Float64, ...);
//     seeded *rand.Rand instances via rand.New(rand.NewSource(seed)) are the
//     approved pattern and stay legal;
//   - range over a map, unless the body is one of the two order-insensitive
//     idioms: collecting keys into a slice for sorting (`ks = append(ks, k)`)
//     or a key-indexed copy (`m2[k] = ...`).
//
// Timing measurements that deliberately read the clock (benchmark cells,
// metrics instrumentation) are annotated //age:allow detrand with a reason.
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// Packages lists import paths whose every function is deterministic
	// scope, annotation or not.
	Packages []string
}

// DefaultConfig covers the sweep runner and everything it renders.
func DefaultConfig() Config {
	return Config{Packages: []string{"repro/internal/experiments"}}
}

// Analyzer is the default instance used by agevet.
var Analyzer = New(DefaultConfig())

// New builds the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:         "detrand",
		Doc:          "forbids wall-clock, global rand, and order-sensitive map iteration in deterministic code",
		IncludeTests: true,
		Run:          func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// globalRandFuncs are the math/rand package-level draws that mutate shared
// state. Constructors (New, NewSource, NewZipf) are fine.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func run(pass *analysis.Pass, cfg Config) error {
	wholePkg := false
	for _, p := range cfg.Packages {
		if pass.Pkg.Path() == p {
			wholePkg = true
		}
	}
	for _, file := range pass.Files {
		inScope := func(pos ast.Node) bool {
			return wholePkg || pass.Dirs.ScopeMarked(file, pos.Pos(), analysis.MarkDeterministic)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !inScope(n) {
					return true
				}
				switch analysis.CalleeName(pass.Info, n) {
				case "time.Now", "time.Since", "time.Until":
					pass.Reportf(n.Pos(), "wall-clock read in deterministic code; derive values from the seed or annotate //age:allow detrand with a reason")
				}
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if isMathRandPkg(pass.Info, sel.X) && globalRandFuncs[sel.Sel.Name] {
						pass.Reportf(n.Pos(), "global math/rand draw order depends on goroutine scheduling; use a seeded *rand.Rand (cfg.newRNG pattern)")
					}
				}
			case *ast.RangeStmt:
				if !inScope(n) {
					return true
				}
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func isMathRandPkg(info *types.Info, x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pkg.Imported().Path()
	return path == "math/rand" || path == "math/rand/v2"
}

// checkMapRange flags map iteration unless the body is an order-insensitive
// idiom.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBody(pass, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is nondeterministic and the body is order-sensitive; iterate sorted keys or annotate //age:allow detrand with a reason")
}

// orderInsensitiveBody recognizes the two safe single-statement idioms:
//
//	for k := range m        { ks = append(ks, k) }   // keys collected, sorted later
//	for k, v := range m     { m2[k] = f(v) }         // key-indexed copy
//
// Everything else (appending values in iteration order, accumulating floats,
// collapsing keys) is treated as order-sensitive.
func orderInsensitiveBody(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	keyObj := identObj(pass, rng.Key)
	if keyObj == nil {
		return false
	}

	// Idiom 1: ks = append(ks, k) — the key alone crosses the loop boundary,
	// and slices of keys are invariably sorted before use.
	if call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr); ok && len(call.Args) == 2 {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				if argObj := identObj(pass, call.Args[1]); argObj == keyObj {
					return true
				}
			}
		}
	}

	// Idiom 2: m2[k] = expr — writes land at key-determined slots. The value
	// expression must not read m2 (e.g. m2[k'] = append(m2[k'], ...) with a
	// collapsed key is order-sensitive; with the loop key it is fine because
	// each slot is written once).
	if idx, ok := ast.Unparen(asg.Lhs[0]).(*ast.IndexExpr); ok {
		if identObj(pass, idx.Index) == keyObj {
			return true
		}
	}
	return false
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}
