package a

import (
	"math/rand"
	"time"
)

// Cell reads the wall clock and the global RNG: both perturb the
// deterministic-sweep contract.
func Cell() float64 {
	start := time.Now() // want `wall-clock read`
	_ = start
	return rand.Float64() // want `global math/rand draw`
}

// Sums accumulates floats in map order: rounding makes the total
// order-sensitive.
func Sums(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// CollapsedKey writes through a folded key, so element order within each bin
// follows iteration order.
func CollapsedKey(m map[int][]int) map[int][]int {
	out := map[int][]int{}
	for k, vs := range m { // want `map iteration order is nondeterministic`
		out[k%2] = append(out[k%2], vs...)
	}
	return out
}
