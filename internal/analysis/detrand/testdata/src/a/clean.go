package a

import (
	"math/rand"
	"sort"
	"time"
)

// Seeded uses the approved pattern: a *rand.Rand derived from a seed.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// SortedSum collects keys (safe idiom 1), sorts, then iterates the slice.
func SortedSum(m map[int]float64) float64 {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var total float64
	for _, k := range ks {
		total += m[k]
	}
	return total
}

// Copy writes each value at its own key (safe idiom 2).
func Copy(m map[int]int) map[int]int {
	out := map[int]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Bench deliberately reads the clock and says why.
func Bench() int64 {
	//age:allow detrand stopwatch measurement, not experiment data
	return time.Now().UnixNano()
}
