// Package b is outside the configured deterministic packages: only annotated
// functions are in scope.
package b

import "time"

// Marked opts in via the function directive.
//
//age:deterministic
func Marked() int64 {
	return time.Now().Unix() // want `wall-clock read`
}

// Unmarked is out of scope; the same call stays silent.
func Unmarked() int64 {
	return time.Now().Unix()
}
