package atomicmix_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicmix"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, atomicmix.New(), "testdata/src/a")
}
