// Package atomicmix enforces two memory-access disciplines on counters.
//
// First, a field accessed through sync/atomic anywhere in a package must be
// accessed through sync/atomic everywhere: one plain load racing an
// atomic.AddInt64 is undefined behavior the race detector only catches when
// the schedule cooperates. Every plain read or write of such a field is
// flagged.
//
// Second, a field tagged //age:counter is an incrementally maintained
// aggregate whose correctness depends on every mutation flowing through its
// maintenance helpers — functions whose doc comment carries //age:counter.
// This is the exact bug class behind the cluster's load-counter drift: the
// gateway's per-node load counts are maintained incrementally by
// putEntry/dropEntry/moveEntry helpers, and one ad-hoc `loads[id]--`
// elsewhere silently double-counts after a migration replays. Mutating a
// tagged field (including through an index, like loads[i]++) outside a
// tagged helper is flagged; reads stay free.
//
// //age:allow atomicmix suppresses a finding where a mixed access is provably
// single-threaded (e.g. constructor code before the value escapes).
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the default instance used by agevet. The discipline is
// self-contained per package — no scope configuration needed.
var Analyzer = New()

// New builds the analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:         "atomicmix",
		Doc:          "flags fields mixing sync/atomic and plain access, and //age:counter field mutations outside //age:counter maintenance helpers",
		IncludeTests: false,
		Run:          run,
	}
}

func run(pass *analysis.Pass) error {
	// Pass 1: find fields used atomically — &x.f arguments to sync/atomic
	// functions — remembering those argument positions as sanctioned.
	atomicFields := map[types.Object]string{} // field -> atomic func name
	sanctioned := map[token.Pos]bool{}        // SelectorExpr positions inside atomic calls
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := analysis.CalleeName(pass.Info, call)
			if !strings.HasPrefix(name, "sync/atomic.") {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObj(pass, sel); obj != nil {
					atomicFields[obj] = strings.TrimPrefix(name, "sync/atomic.")
					sanctioned[sel.Pos()] = true
				}
			}
			return true
		})
	}

	for _, file := range pass.Files {
		// Pass 2a: plain accesses of atomic fields.
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sanctioned[sel.Pos()] {
				return true
			}
			obj := fieldObj(pass, sel)
			if obj == nil {
				return true
			}
			if fn, used := atomicFields[obj]; used {
				pass.Reportf(sel.Pos(),
					"field %s is accessed with sync/atomic.%s elsewhere in this package but plainly here: mixed atomic/plain access races; use the atomic API everywhere or drop it",
					obj.Name(), fn)
			}
			return true
		})

		// Pass 2b: //age:counter field mutations outside tagged helpers.
		ast.Inspect(file, func(n ast.Node) bool {
			var targets []ast.Expr
			var pos token.Pos
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				targets = n.Lhs
				pos = n.Pos()
			case *ast.IncDecStmt:
				targets = []ast.Expr{n.X}
				pos = n.Pos()
			default:
				return true
			}
			for _, tgt := range targets {
				obj := mutationBase(pass, tgt)
				if obj == nil || !pass.Dirs.LineMarked(obj.Pos(), analysis.MarkCounter) {
					continue
				}
				fn := analysis.EnclosingFunc(file, pos)
				if fn != nil && pass.Dirs.FuncMarked(fn, analysis.MarkCounter) {
					continue
				}
				pass.Reportf(pos,
					"counter field %s mutated outside its //age:counter maintenance helpers; route the update through a tagged helper so the incremental invariant holds",
					obj.Name())
			}
			return true
		})
	}
	return nil
}

// fieldObj resolves a selector to the struct field it names, or nil.
func fieldObj(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// mutationBase unwraps an assignment target to the struct field at its
// base: x.f, x.f[i], *x.f, x.f[i][j] all resolve to f.
func mutationBase(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			return fieldObj(pass, t)
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}
