package a

import "sync/atomic"

type stats struct {
	hits  int64
	total int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) read() int64 {
	return s.hits // want `field hits is accessed with sync/atomic.AddInt64 elsewhere`
}

func (s *stats) reset() {
	s.hits = 0 // want `field hits is accessed with sync/atomic.AddInt64 elsewhere`
}

// total is plain-only: no finding anywhere.
func (s *stats) addTotal(n int64) {
	s.total += n
}

// gateway mirrors the cluster's incrementally maintained load counters.
type gateway struct {
	loads []int //age:counter
}

// putEntry is a maintenance helper: the one place loads may grow.
//
//age:counter
func (g *gateway) putEntry(id int) {
	g.loads[id]++
}

// kill mutates the counter ad hoc — the load-drift bug class.
func (g *gateway) kill(id int) {
	g.loads[id]-- // want `counter field loads mutated outside its //age:counter maintenance helpers`
}

// rebuild overwrites the whole counter outside a helper.
func (g *gateway) rebuild(n int) {
	g.loads = make([]int, n) // want `counter field loads mutated outside its //age:counter maintenance helpers`
}
