package a

import "sync/atomic"

type clean struct {
	n     int64
	plain int
}

func (c *clean) add()        { atomic.AddInt64(&c.n, 1) }
func (c *clean) load() int64 { return atomic.LoadInt64(&c.n) }

// other touches a plain-only field: no discipline applies.
func (c *clean) other() { c.plain++ }

// newClean writes the atomic field plainly before the value escapes — a
// reviewed exception.
func newClean() *clean {
	c := &clean{}
	//age:allow atomicmix single-threaded: value has not escaped the constructor
	c.n = 0
	return c
}

// router keeps its counter discipline: all mutations in tagged helpers,
// reads anywhere.
type router struct {
	counts []int //age:counter
}

//age:counter grow adds a slot for a new node.
func (r *router) grow() {
	r.counts = append(r.counts, 0)
}

//age:counter inc charges a session to a node.
func (r *router) inc(i int) {
	r.counts[i]++
}

func (r *router) read(i int) int {
	return r.counts[i]
}

func (r *router) sum() int {
	t := 0
	for _, c := range r.counts {
		t += c
	}
	return t
}
