// Package b is outside the configured transport packages: only annotated
// functions are in scope.
package b

import "net"

// Marked opts in via the function directive.
//
//age:transport
func Marked(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf) // want `Read on a net.Conn with no Set`
}

// Unmarked is out of scope; the same call stays silent.
func Unmarked(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf)
}
