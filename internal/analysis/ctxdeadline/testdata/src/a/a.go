package a

import (
	"io"
	"net"
)

// BadRead does raw conn I/O with no deadline anywhere in the function.
func BadRead(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf) // want `Read on a net.Conn with no Set`
}

// BadWrite is the write-side twin.
func BadWrite(c net.Conn, buf []byte) (int, error) {
	return c.Write(buf) // want `Write on a net.Conn with no Set`
}

// BadCopy feeds the conn to an unbounded io helper.
func BadCopy(dst io.Writer, c net.Conn) error {
	_, err := io.Copy(dst, c) // want `conn fed to unbounded io helper`
	return err
}
