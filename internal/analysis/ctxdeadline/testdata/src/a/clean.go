package a

import (
	"io"
	"net"
	"time"
)

// GoodRead arms a deadline before the read: the whole function is guarded.
func GoodRead(c net.Conn, buf []byte) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return c.Read(buf)
}

// GoodFull is the ReadFull shape used by the frame transport.
func GoodFull(c net.Conn, buf []byte) error {
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := io.ReadFull(c, buf)
	return err
}

// Allowed defers deadline management to its caller and says so.
func Allowed(c net.Conn, buf []byte) (int, error) {
	//age:allow ctxdeadline caller arms the deadline around the retry loop
	return c.Read(buf)
}

// PlainReader is not conn-shaped: io.Reader I/O is out of scope.
func PlainReader(r io.Reader, buf []byte) (int, error) {
	return r.Read(buf)
}
