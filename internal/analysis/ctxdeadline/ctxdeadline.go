// Package ctxdeadline guards the PR-1 transport-hardening rule: every read or
// write on a network connection must be bounded by a deadline. The paper's
// deployments (FarmBeats fields, ZebraNet herds, §2.1/§3.3) make "the peer
// went quiet" a routine event; an undeadlined conn.Read turns it into a hung
// worker.
//
// Inside transport scope — the packages in Config.Packages plus any file or
// function marked //age:transport — the analyzer flags Read/Write method
// calls on net.Conn-shaped values and io.ReadFull/ReadAtLeast/Copy calls fed
// a conn, unless the enclosing function also calls a Set*Deadline method
// (the seccomm.ReadFrameDeadline pattern: arm the deadline, do the I/O,
// disarm). Functions that legitimately defer deadline management to their
// caller carry //age:allow ctxdeadline with a reason.
package ctxdeadline

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// Packages lists import paths that are transport scope in full.
	Packages []string
}

// DefaultConfig covers the frame transport, the ingest server/client, the
// fleet/socket simulators, and the cluster gateway's proxy path.
func DefaultConfig() Config {
	return Config{Packages: []string{
		"repro/internal/seccomm",
		"repro/internal/ingest",
		"repro/internal/simulator",
		"repro/internal/cluster",
	}}
}

// Analyzer is the default instance used by agevet.
var Analyzer = New(DefaultConfig())

// New builds the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:         "ctxdeadline",
		Doc:          "requires a Set*Deadline guard around net.Conn reads and writes in transport code",
		IncludeTests: false,
		Run:          func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	wholePkg := false
	for _, p := range cfg.Packages {
		if pass.Pkg.Path() == p {
			wholePkg = true
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !wholePkg && !pass.Dirs.ScopeMarked(file, fn.Pos(), analysis.MarkTransport) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// One pass to learn whether the function arms any deadline...
	hasGuard := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			name := sel.Sel.Name
			if strings.HasPrefix(name, "Set") && strings.HasSuffix(name, "Deadline") {
				hasGuard = true
				return false
			}
		}
		return true
	})
	if hasGuard {
		return
	}
	// ...and a second to flag unguarded conn I/O.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Read", "Write":
				if tv, ok := pass.Info.Types[sel.X]; ok && analysis.IsConnLike(tv.Type) {
					pass.Reportf(call.Pos(),
						"%s on a net.Conn with no Set*Deadline in %s; bound the I/O (seccomm.*Deadline helpers) or annotate //age:allow ctxdeadline with a reason",
						sel.Sel.Name, fn.Name.Name)
				}
			}
		}
		// Helpers that read/write a conn passed as io.Reader/io.Writer.
		switch analysis.CalleeName(pass.Info, call) {
		case "io.ReadFull", "io.ReadAtLeast", "io.Copy", "io.CopyN":
			for _, arg := range call.Args {
				if tv, ok := pass.Info.Types[arg]; ok && analysis.IsConnLike(tv.Type) {
					pass.Reportf(call.Pos(),
						"conn fed to unbounded io helper with no Set*Deadline in %s; bound the I/O or annotate //age:allow ctxdeadline with a reason",
						fn.Name.Name)
					break
				}
			}
		}
		return true
	})
}
