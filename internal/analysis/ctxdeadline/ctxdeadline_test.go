package ctxdeadline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxdeadline"
)

func TestAnalyzer(t *testing.T) {
	a := ctxdeadline.New(ctxdeadline.Config{Packages: []string{"a"}})
	analysistest.Run(t, a, "testdata/src/a")
}
