// Package analysistest runs an analyzer over a testdata module and checks its
// diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only framework.
//
// A testdata tree is a tiny self-contained module:
//
//	testdata/src/a/go.mod   (module a — stdlib imports only)
//	testdata/src/a/a.go     (patterns that must diagnose, marked // want)
//	testdata/src/a/clean.go (patterns that must stay silent)
//
// Each want comment sits on the line it expects a diagnostic for and holds
// one or more quoted regular expressions:
//
//	time.Now() // want `wall-clock read`
//
// Every expectation must be matched by a diagnostic and every diagnostic by
// an expectation, so both false negatives and false positives fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRE captures the quoted expectations of a want comment. Both `...` and
// "..." quoting are accepted.
var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")

var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads dir (a testdata module root) and checks a's diagnostics against
// the want comments in its files.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	units, err := load.Load(dir, false, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(units) == 0 {
		t.Fatalf("no packages under %s", dir)
	}
	diags, err := analysis.Run(units, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						text, err := unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(text)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}

// Format renders diagnostics one per line for failure messages.
func Format(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%v\n", d)
	}
	return b.String()
}
