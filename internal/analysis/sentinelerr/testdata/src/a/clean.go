package a

import (
	"errors"
	"fmt"
	"io"
)

// Good branches with errors.Is, surviving any wrap layer.
func Good(err error) bool {
	return errors.Is(err, io.EOF)
}

// GoodWrap keeps the chain intact with %w.
func GoodWrap(err error) error {
	return fmt.Errorf("ingest: %w", err)
}

// NilCheck compares against nil, not a sentinel.
func NilCheck(err error) bool {
	return err == nil
}

// LocalCompare compares two local error values: neither is package-level.
func LocalCompare(e1, e2 error) bool {
	return e1 == e2
}

// NonErrorGlobals stay out of scope even at package level.
var DefaultName = "age"

func NameIs(s string) bool {
	return s == DefaultName
}
