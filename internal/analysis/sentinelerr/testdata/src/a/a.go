package a

import (
	"errors"
	"fmt"
	"io"
)

var ErrTooSmall = errors.New("too small")

// Check compares a sentinel with ==.
func Check(err error) bool {
	return err == io.EOF // want `comparison against sentinel io.EOF`
}

// Check2 compares a local sentinel with !=.
func Check2(err error) bool {
	if err != ErrTooSmall { // want `comparison against sentinel a.ErrTooSmall`
		return false
	}
	return true
}

// Classify switches on an error value with sentinel cases.
func Classify(err error) string {
	switch err {
	case io.EOF: // want `switch case on sentinel io.EOF`
		return "eof"
	default:
		return "other"
	}
}

// Wrap hides err from errors.Is by formatting it with %v.
func Wrap(err error) error {
	return fmt.Errorf("ingest: %v", err) // want `fmt.Errorf formats an error without %w`
}
