// Package sentinelerr enforces the PR-4 error-facade contract: callers branch
// on sentinel errors with errors.Is, never ==, because every constructor and
// decoder wraps its sentinels (via %w) into descriptive messages. A direct
// equality test silently stops matching the moment a wrap layer is added.
//
// Two checks:
//
//   - ==/!= (and switch cases) comparing against a package-level error
//     variable — io.EOF, core.ErrPayloadLength, age.ErrServerClosed, ... —
//     anywhere, including tests;
//   - fmt.Errorf calls that pass an error argument but whose format string
//     has no %w verb, which breaks the errors.Is chain for every caller
//     upstream. Deliberately chain-breaking wraps (none today) would carry
//     //age:allow sentinelerr with a reason.
package sentinelerr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the instance used by agevet.
var Analyzer = &analysis.Analyzer{
	Name:         "sentinelerr",
	Doc:          "flags ==/!= against sentinel errors and fmt.Errorf wraps without %w",
	IncludeTests: true,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkComparison(pass, n.OpPos, n.X, n.Y)
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkComparison(pass *analysis.Pass, opPos token.Pos, x, y ast.Expr) {
	for _, e := range []ast.Expr{x, y} {
		if name, ok := sentinel(pass, e); ok {
			pass.Reportf(opPos, "comparison against sentinel %s breaks once the error is wrapped; use errors.Is", name)
			return
		}
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok || !isErrorType(tv.Type) {
		return
	}
	for _, cc := range sw.Body.List {
		c := cc.(*ast.CaseClause)
		for _, e := range c.List {
			if name, ok := sentinel(pass, e); ok {
				pass.Reportf(e.Pos(), "switch case on sentinel %s breaks once the error is wrapped; use errors.Is", name)
			}
		}
	}
}

// sentinel reports whether e denotes a package-level variable of type error —
// the shape of every sentinel (core.ErrPayloadLength, io.EOF, ...).
func sentinel(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	if v.Parent() != v.Pkg().Scope() {
		return "", false // local variable, not a sentinel
	}
	if !isErrorType(v.Type()) {
		return "", false
	}
	return v.Pkg().Name() + "." + v.Name(), true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// checkErrorf flags fmt.Errorf("...", err) where the constant format string
// carries no %w: the wrap hides err from errors.Is/As.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.CalleeName(pass.Info, call) != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		argTV, ok := pass.Info.Types[arg]
		if !ok {
			continue
		}
		t := argTV.Type
		if isErrorValue(t) {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w, hiding it from errors.Is; wrap with %%w or annotate //age:allow sentinelerr with a reason")
			return
		}
	}
}

func isErrorValue(t types.Type) bool {
	return isErrorType(t)
}
