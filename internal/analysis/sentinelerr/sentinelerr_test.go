package sentinelerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sentinelerr"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, sentinelerr.Analyzer, "testdata/src/a")
}
