package leaktaint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/leaktaint"
)

func TestAnalyzer(t *testing.T) {
	a := leaktaint.New(leaktaint.Config{
		Packages:          []string{"a"},
		SecretCalls:       []string{"MarkReal", "MarkDummy", "Unmark"},
		SanitizerPrefixes: []string{"Seal"},
	})
	analysistest.Run(t, a, "testdata/src/a")
}
