package a

import (
	"fmt"
	"time"
)

// Record mirrors staging.Record: the label is the event class the paper's
// attack recovers, so it must never shape wire behavior.
type Record struct {
	Seq   int
	Label int //age:secret
}

// TimedSource mirrors ingest.TimedSource: the data-driven generation gap is
// exactly what the timing attack classifies.
type TimedSource interface {
	//age:secret
	LastGap() time.Duration
}

// lastLabel is the most recent decoded event class.
var lastLabel int //age:secret

const baseGap = 10 * time.Millisecond

// slotBranch is the ISSUE-10 gate regression demo: pacer slot timing
// branching on a sample label. The branch itself is the leak — everything
// downstream of it (which slot sends, what gets buffered) is modulated by
// the secret even though the sleep argument is a constant.
func slotBranch(c *conn, recs []Record) {
	for _, r := range recs {
		gap := baseGap
		if r.Label != 0 { // want `secret-dependent if condition`
			gap = 2 * baseGap
		}
		time.Sleep(gap)
		c.Write(Seal(nil))
	}
}

// sleepOnSecret leaks the generation gap straight into release timing.
func sleepOnSecret(ts TimedSource) {
	d := ts.LastGap()
	time.Sleep(d) // want `secret reaches time.Sleep`
}

// writeUnsealed lets the payload size vary with the event class.
func writeUnsealed(c *conn, r Record) {
	buf := make([]byte, r.Label)
	c.Write(buf) // want `secret reaches a net.Conn write`
}

// markLeak lets the real/dummy marker escape without sealing.
func markLeak(c *conn, payload []byte) {
	p := MarkReal(payload)
	c.Write(p) // want `secret reaches a net.Conn write`
}

// deadlineLeak folds the secret into deadline arithmetic.
func deadlineLeak(c *conn, ts TimedSource) {
	c.SetReadDeadline(time.Now().Add(ts.LastGap())) // want `secret reaches SetReadDeadline`
}

// logLeak prints the label on an operational surface.
func logLeak(r Record) {
	fmt.Printf("label=%d\n", r.Label) // want `secret reaches fmt.Printf`
}

// metricLeak keys a metrics series by the label.
func metricLeak(s *series, r Record) {
	s.Counter(fmt.Sprintf("label_%d", r.Label)).Add(1) // want `secret reaches a metrics series label`
}

// frameLeak appends an unsealed secret-derived payload to a wire frame.
func frameLeak(dst []byte, r Record) []byte {
	payload := []byte{byte(r.Label)}
	return AppendFrame(dst, payload) // want `secret reaches a wire frame payload`
}

// hopLeak reaches time.Sleep through a one-hop helper.
func hopLeak(ts TimedSource) {
	pause(ts.LastGap()) // want `secret reaches time.Sleep .release timing. via pause`
}

func pause(d time.Duration) {
	time.Sleep(d)
}

// switchLeak dispatches transport behavior on the event class.
func switchLeak(c *conn, r Record) {
	switch r.Label { // want `secret-dependent switch condition`
	case 0:
		c.Write(Seal(nil))
	default:
		c.Write(Seal(nil))
	}
}

// varLeak sleeps on a package-level secret.
func varLeak() {
	time.Sleep(time.Duration(lastLabel) * time.Millisecond) // want `secret reaches time.Sleep`
}

// classify returns the record's class — callers inherit the secret through
// the one-hop summary.
func classify(r Record) int {
	return r.Label
}

// summaryBranch branches on a secret-returning helper's result.
func summaryBranch(c *conn) {
	var r Record
	if classify(r) > 0 { // want `secret-dependent if condition`
		return
	}
	c.Write(Seal(nil))
}
