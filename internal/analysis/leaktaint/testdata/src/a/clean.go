package a

import (
	"fmt"
	"time"
)

// conn is the minimal net.Conn shape the framework's IsConnLike matches.
type conn struct{ wrote int }

func (c *conn) Read(p []byte) (int, error)        { return 0, nil }
func (c *conn) Write(p []byte) (int, error)       { c.wrote += len(p); return len(p), nil }
func (c *conn) SetReadDeadline(t time.Time) error { return nil }

// counter and series mirror the metrics package's Series.Counter shape.
type counter struct{ n int64 }

func (c *counter) Add(d int64) { c.n += d }

type series struct{ m map[string]*counter }

func (s *series) Counter(name string) *counter {
	if s.m == nil {
		s.m = map[string]*counter{}
	}
	c := s.m[name]
	if c == nil {
		c = &counter{}
		s.m[name] = c
	}
	return c
}

// Seal is the sanitizer: sealed bytes are uniform-size ciphertext, so a
// value that passed through it no longer carries the secret's shape.
func Seal(p []byte) []byte { return append([]byte{0}, p...) }

// MarkReal tags a payload as carrying a real sample.
func MarkReal(p []byte) []byte { return p }

// MarkDummy tags a payload as cover traffic.
func MarkDummy(p []byte) []byte { return p }

// AppendFrame appends a length-prefixed frame to dst.
func AppendFrame(dst, payload []byte) []byte {
	dst = append(dst, byte(len(payload)))
	return append(dst, payload...)
}

// sealedSend is the defense's shape: constant schedule, sealed payload.
func sealedSend(c *conn, r Record) {
	time.Sleep(baseGap)
	c.Write(Seal([]byte{byte(r.Label)}))
}

// sealedMark keeps the real/dummy marker inside the sealed envelope.
func sealedMark(c *conn, payload []byte) {
	c.Write(Seal(MarkReal(payload)))
}

// declassified is a reviewed flow: harness-side summary output.
func declassified(r Record) {
	fmt.Printf("label=%d\n", r.Label) //age:declassify harness-only summary, never on the wire path
}

// declassifiedBranch is a reviewed secret-dependent branch: both arms emit
// exactly one sealed frame in the same slot.
func declassifiedBranch(c *conn, r Record) {
	if r.Label != 0 { //age:declassify both arms emit one sealed same-size frame
		c.Write(Seal(nil))
		return
	}
	c.Write(Seal(nil))
}

// allowedSleep keeps the undefended baseline path with a justified allow.
func allowedSleep(ts TimedSource) {
	//age:allow leaktaint undefended-baseline schedule, kept for comparison runs
	time.Sleep(ts.LastGap())
}

// histogram aggregates secrets without touching an observable sink.
func histogram(recs []Record) map[int]int {
	h := map[int]int{}
	for _, r := range recs {
		h[r.Label]++
	}
	return h
}

// publicSleep is an ordinary schedule: nothing secret feeds it.
func publicSleep(c *conn) {
	time.Sleep(baseGap)
	c.SetReadDeadline(time.Now().Add(time.Second))
	fmt.Printf("slot done\n")
}
