module a

go 1.22
