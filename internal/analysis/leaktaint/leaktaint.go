// Package leaktaint statically pins the PR-7 side-channel defense: no
// secret may shape an observable channel feature. The paper's attack (and
// the repo's TimingTap reproduction) classifies events from exactly two
// observables — message sizes and send timing — and PR 7 closed both
// dynamically: payload sizes are fixed by the sealer, and the pacer's
// release schedule is load-independent with sealed dummies covering empty
// slots. Nothing *static* kept a refactor from reopening the channel, e.g.
// branching on a sample label before a send or letting a payload length
// vary with the event class outside the sealer. This analyzer is that
// static check.
//
// # Sources
//
// Secret values are declared, not inferred:
//
//   - any declaration (struct field, interface method, package-level var,
//     function) tagged //age:secret — sample labels, event classes, decoded
//     payload contents, and data-driven generation gaps are tagged in
//     internal/core, internal/simulator, internal/attack, internal/staging,
//     and internal/ingest;
//   - results of ingest.MarkReal / ingest.MarkDummy / ingest.Unmark — the
//     real/dummy decision is the pacer's secret and must only ever exist
//     inside a sealed payload.
//
// Secret declarations register globally as units load (dependencies load
// first, so a core annotation is visible when ingest is analyzed). Taint
// propagates intra-procedurally through assignments, ranges, and value
// flow, with one-hop call summaries inside a package: a function returning
// a secret-derived value taints its call sites, and passing a tainted
// argument to a parameter that reaches a sink is reported at the call.
//
// # Sinks
//
// Inside transport scope — Config.Packages plus //age:transport files and
// functions — the analyzer reports a secret reaching:
//
//   - time.Sleep / time.After / time.NewTimer / time.Tick arguments and
//     Set*Deadline arguments (schedule shaping);
//   - Write on a net.Conn-shaped value and seccomm.AppendFrame payloads
//     (size shaping: an unsealed secret-derived buffer's length is the
//     paper's size channel);
//   - metrics series labels (Series.Counter keys) and fmt/log output —
//     operational surfaces an observer may scrape;
//   - any if/switch/for condition — secret-dependent control flow in
//     transport code modulates everything downstream of it.
//
// # Sanitizers
//
// A value that passed through a sealer (any callee whose name begins with
// "Seal") is clean: sealed bytes are the defense's output and carry a
// uniform size. A reviewed, deliberate flow is annotated //age:declassify
// with a reason — it stops both reporting and propagation on its line —
// and a single finding can be suppressed with //age:allow leaktaint.
package leaktaint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// Packages lists import paths that are transport scope in full: sinks
	// are enforced in them (plus any //age:transport file or function).
	Packages []string
	// SecretCalls are function names whose results are secret wherever
	// they appear (the pacer's marker helpers).
	SecretCalls []string
	// SanitizerPrefixes are callee-name prefixes that launder taint (the
	// sealer family).
	SanitizerPrefixes []string
}

// DefaultConfig scopes sinks to the packages that shape wire traffic. The
// simulator does socket I/O too but is the *harness* — it legitimately
// correlates labels with observations to mount the attack — so it
// contributes sources, not sinks.
func DefaultConfig() Config {
	return Config{
		Packages: []string{
			"repro/internal/seccomm",
			"repro/internal/ingest",
			"repro/internal/cluster",
		},
		SecretCalls:       []string{"MarkReal", "MarkDummy", "Unmark"},
		SanitizerPrefixes: []string{"Seal"},
	}
}

// Analyzer is the default instance used by agevet.
var Analyzer = New(DefaultConfig())

// New builds the analyzer for cfg.
func New(cfg Config) *analysis.Analyzer {
	lt := &leaktaint{cfg: cfg, registries: map[*token.FileSet]*registry{}}
	return &analysis.Analyzer{
		Name:         "leaktaint",
		Doc:          "forbids secret-derived values from reaching timing, size, metrics-label, or log sinks in transport code outside the sealer",
		IncludeTests: false,
		Run:          lt.run,
	}
}

// registry accumulates secret declaration keys across the units of one
// load (units share a FileSet, and `go list -deps` orders dependencies
// first, so producers register before consumers analyze).
type registry struct {
	keys map[string]bool
}

type leaktaint struct {
	cfg Config

	mu         sync.Mutex
	registries map[*token.FileSet]*registry
}

func (lt *leaktaint) registryFor(fset *token.FileSet) *registry {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	r := lt.registries[fset]
	if r == nil {
		r = &registry{keys: map[string]bool{}}
		lt.registries[fset] = r
	}
	return r
}

func (lt *leaktaint) run(pass *analysis.Pass) error {
	reg := lt.registryFor(pass.Fset)
	lt.register(pass, reg)

	wholePkg := false
	for _, p := range lt.cfg.Packages {
		if pass.Pkg.Path() == p {
			wholePkg = true
		}
	}

	// One-hop call summaries for this unit's functions.
	sums := lt.summarize(pass, reg)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inScope := wholePkg || pass.Dirs.ScopeMarked(file, fn.Pos(), analysis.MarkTransport)
			if !inScope {
				continue
			}
			t := lt.newTaint(pass, reg, sums)
			t.fixpoint(fn.Body)
			t.report(fn)
		}
	}
	return nil
}

// register indexes this unit's //age:secret declarations into the
// load-wide registry, keyed "pkg.Name", "pkg.Type.Field", or
// "pkg.Type.Method" so uses in downstream packages resolve.
func (lt *leaktaint) register(pass *analysis.Pass, reg *registry) {
	pkg := pass.Pkg.Path()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if pass.Dirs.FuncMarked(d, analysis.MarkSecret) || pass.Dirs.LineMarked(d.Pos(), analysis.MarkSecret) {
					reg.keys[funcDeclKey(pass, pkg, d)] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						if pass.Dirs.LineMarked(s.Pos(), analysis.MarkSecret) {
							for _, name := range s.Names {
								reg.keys[pkg+"."+name.Name] = true
							}
						}
					case *ast.TypeSpec:
						lt.registerType(pass, reg, pkg, s)
					}
				}
			}
		}
	}
}

func (lt *leaktaint) registerType(pass *analysis.Pass, reg *registry, pkg string, ts *ast.TypeSpec) {
	switch t := ts.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if !pass.Dirs.LineMarked(f.Pos(), analysis.MarkSecret) {
				continue
			}
			for _, name := range f.Names {
				reg.keys[pkg+"."+ts.Name.Name+"."+name.Name] = true
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if !pass.Dirs.LineMarked(m.Pos(), analysis.MarkSecret) {
				continue
			}
			for _, name := range m.Names {
				reg.keys[pkg+"."+ts.Name.Name+"."+name.Name] = true
			}
		}
	}
}

func funcDeclKey(pass *analysis.Pass, pkg string, d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		t := d.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkg + "." + id.Name + "." + d.Name.Name
		}
	}
	return pkg + "." + d.Name.Name
}

// summary records what one hop of a call needs to know about a function.
type summary struct {
	decl *ast.FuncDecl
	// returnsSecret marks functions whose results derive from a source.
	returnsSecret bool
	// sinkParams maps parameter index -> sink description for parameters
	// that reach a sink inside the body.
	sinkParams map[int]string
}

// summarize computes the unit's one-hop call summaries. Summaries are
// depth-1 by design: they consult sources and built-in sinks only, never
// other summaries, so there is no fixpoint across functions to chase.
func (lt *leaktaint) summarize(pass *analysis.Pass, reg *registry) map[types.Object]*summary {
	sums := map[types.Object]*summary{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			s := &summary{decl: fn, sinkParams: map[int]string{}}

			// Does any return value derive from a source?
			t := lt.newTaint(pass, reg, nil)
			t.fixpoint(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				ret, isRet := n.(*ast.ReturnStmt)
				if !isRet {
					return true
				}
				for _, r := range ret.Results {
					if t.tainted(r) {
						s.returnsSecret = true
					}
				}
				return true
			})

			// Which parameters reach a sink?
			params := paramObjects(pass, fn)
			for i, p := range params {
				if p == nil {
					continue
				}
				pt := lt.newTaint(pass, reg, nil)
				pt.seed(p)
				pt.fixpoint(fn.Body)
				if what := pt.firstSink(fn); what != "" {
					s.sinkParams[i] = what
				}
			}
			sums[obj] = s
		}
	}
	return sums
}

func paramObjects(pass *analysis.Pass, fn *ast.FuncDecl) []types.Object {
	var objs []types.Object
	for _, f := range fn.Type.Params.List {
		for _, name := range f.Names {
			objs = append(objs, pass.Info.Defs[name])
		}
		if len(f.Names) == 0 {
			objs = append(objs, nil) // unnamed parameter cannot be used
		}
	}
	return objs
}

// taint is one function's intra-procedural taint state.
type taint struct {
	lt   *leaktaint
	pass *analysis.Pass
	reg  *registry
	sums map[types.Object]*summary
	set  map[types.Object]bool
}

func (lt *leaktaint) newTaint(pass *analysis.Pass, reg *registry, sums map[types.Object]*summary) *taint {
	return &taint{lt: lt, pass: pass, reg: reg, sums: sums, set: map[types.Object]bool{}}
}

func (t *taint) seed(obj types.Object) { t.set[obj] = true }

// fixpoint propagates taint through the body's assignments, short variable
// declarations, and range statements until the tainted-object set stops
// growing. Function literals participate: they capture and mutate the
// enclosing function's variables.
func (t *taint) fixpoint(body *ast.BlockStmt) {
	for {
		before := len(t.set)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if t.pass.Dirs.Declassified(n.Pos()) {
					return true
				}
				t.assign(n.Lhs, n.Rhs)
			case *ast.RangeStmt:
				if t.pass.Dirs.Declassified(n.Pos()) {
					return true
				}
				if t.tainted(n.X) {
					t.taintLHS(n.Key)
					t.taintLHS(n.Value)
				}
			case *ast.ValueSpec:
				if t.pass.Dirs.Declassified(n.Pos()) {
					return true
				}
				for i, name := range n.Names {
					switch {
					case len(n.Values) == len(n.Names):
						if t.tainted(n.Values[i]) {
							t.taintLHS(name)
						}
					case len(n.Values) == 1:
						if t.tainted(n.Values[0]) {
							t.taintLHS(name)
						}
					}
				}
			}
			return true
		})
		if len(t.set) == before {
			return
		}
	}
}

func (t *taint) assign(lhs, rhs []ast.Expr) {
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			if t.tainted(rhs[i]) {
				t.taintLHS(lhs[i])
			}
		}
	case len(rhs) == 1: // multi-value call or comma-ok
		if t.tainted(rhs[0]) {
			for _, l := range lhs {
				t.taintLHS(l)
			}
		}
	}
}

// taintLHS taints the root object of an assignment target: a plain ident
// directly, a field/index write through its base (writing a secret into a
// struct or map taints the container, conservatively).
func (t *taint) taintLHS(e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		if obj := t.objOf(e); obj != nil {
			t.set[obj] = true
		}
	case *ast.SelectorExpr:
		t.taintLHS(e.X)
	case *ast.IndexExpr:
		t.taintLHS(e.X)
	case *ast.StarExpr:
		t.taintLHS(e.X)
	}
}

func (t *taint) objOf(id *ast.Ident) types.Object {
	if obj := t.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return t.pass.Info.Defs[id]
}

// tainted reports whether an expression derives from a secret. The walk is
// structural so sanitizer calls can cut whole subtrees: Seal(secret) is
// clean even though a secret ident sits inside it.
func (t *taint) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		obj := t.objOf(e)
		if obj == nil {
			return false
		}
		return t.set[obj] || t.secretObj(obj)
	case *ast.SelectorExpr:
		if sel, ok := t.pass.Info.Selections[e]; ok {
			if t.reg.keys[selectionKey(sel)] {
				return true
			}
		} else if obj := t.pass.Info.Uses[e.Sel]; obj != nil && t.secretObj(obj) {
			// Package-qualified reference (pkg.Var).
			return true
		}
		return t.tainted(e.X)
	case *ast.CallExpr:
		return t.callTainted(e)
	case *ast.BinaryExpr:
		return t.tainted(e.X) || t.tainted(e.Y)
	case *ast.UnaryExpr:
		return t.tainted(e.X)
	case *ast.ParenExpr:
		return t.tainted(e.X)
	case *ast.StarExpr:
		return t.tainted(e.X)
	case *ast.IndexExpr:
		return t.tainted(e.X) || t.tainted(e.Index)
	case *ast.SliceExpr:
		return t.tainted(e.X) || t.tainted(e.Low) || t.tainted(e.High) || t.tainted(e.Max)
	case *ast.TypeAssertExpr:
		return t.tainted(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if t.tainted(kv.Value) {
					return true
				}
				continue
			}
			if t.tainted(elt) {
				return true
			}
		}
		return false
	case *ast.KeyValueExpr:
		return t.tainted(e.Value)
	}
	return false
}

// secretObj reports whether obj's declaration is tagged //age:secret —
// directly (same unit, line mark at its position) or via the load-wide
// registry (package-level declarations from dependency units).
func (t *taint) secretObj(obj types.Object) bool {
	if t.pass.Dirs.LineMarked(obj.Pos(), analysis.MarkSecret) {
		return true
	}
	if pkg := obj.Pkg(); pkg != nil && obj.Parent() == pkg.Scope() {
		if t.reg.keys[pkg.Path()+"."+obj.Name()] {
			return true
		}
	}
	if fn, ok := obj.(*types.Func); ok {
		return t.reg.keys[funcKey(fn)]
	}
	return false
}

func (t *taint) callTainted(call *ast.CallExpr) bool {
	last := calleeLastName(t.pass, call)
	for _, p := range t.lt.cfg.SanitizerPrefixes {
		if strings.HasPrefix(last, p) {
			return false
		}
	}
	for _, n := range t.lt.cfg.SecretCalls {
		if last == n {
			return true
		}
	}
	if fn := calleeFunc(t.pass, call); fn != nil {
		if t.reg.keys[funcKey(fn)] {
			return true
		}
		if t.sums != nil {
			if s, ok := t.sums[types.Object(fn)]; ok && s.returnsSecret {
				return true
			}
		}
	}
	// Method on a tainted receiver, or any tainted argument, taints the
	// result (conservative pass-through: len, append, Sub, After, ...).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := t.pass.Info.Selections[sel]; isSel && t.tainted(sel.X) {
			return true
		}
	}
	for _, arg := range call.Args {
		if t.tainted(arg) {
			return true
		}
	}
	return false
}

// report walks the function flagging sinks fed by taint and tainted branch
// conditions.
func (t *taint) report(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			t.checkCall(n, fn, true)
		case *ast.IfStmt:
			t.checkCond(n.Cond, "if", fn)
		case *ast.SwitchStmt:
			t.checkCond(n.Tag, "switch", fn)
		case *ast.ForStmt:
			t.checkCond(n.Cond, "for", fn)
		}
		return true
	})
}

// firstSink reports the first built-in sink fed by taint, or "" — the
// summary probe used for parameter sink detection.
func (t *taint) firstSink(fn *ast.FuncDecl) string {
	found := ""
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			found = t.sinkHit(call, false)
		}
		return true
	})
	return found
}

func (t *taint) checkCond(cond ast.Expr, what string, fn *ast.FuncDecl) {
	if cond == nil || !t.tainted(cond) {
		return
	}
	if t.pass.Dirs.Declassified(cond.Pos()) {
		return
	}
	t.pass.Reportf(cond.Pos(),
		"secret-dependent %s condition in transport code (%s): control flow here shapes observable wire behavior; seal the decision, hoist it out of transport scope, or annotate //age:declassify or //age:allow leaktaint with a reason",
		what, fn.Name.Name)
}

func (t *taint) checkCall(call *ast.CallExpr, fn *ast.FuncDecl, report bool) {
	if t.pass.Dirs.Declassified(call.Pos()) {
		return
	}
	if what := t.sinkHit(call, true); what != "" {
		t.pass.Reportf(call.Pos(),
			"secret reaches %s in %s without passing through the sealer; route it through seccomm.Seal* or annotate //age:declassify or //age:allow leaktaint with a reason",
			what, fn.Name.Name)
	}
}

// sinkHit reports a sink description when call is a sink fed by a tainted
// argument. useSummaries extends detection one hop into same-unit callees.
func (t *taint) sinkHit(call *ast.CallExpr, useSummaries bool) string {
	last := calleeLastName(t.pass, call)
	full := analysis.CalleeName(t.pass.Info, call)

	argTainted := func(i int) bool {
		return i < len(call.Args) && t.tainted(call.Args[i])
	}
	anyTainted := func() bool {
		for _, a := range call.Args {
			if t.tainted(a) {
				return true
			}
		}
		return false
	}

	switch full {
	case "time.Sleep", "time.After", "time.NewTimer", "time.Tick":
		if argTainted(0) {
			return full + " (release timing)"
		}
	}
	if strings.HasPrefix(full, "fmt.Print") || strings.HasPrefix(full, "fmt.Fprint") ||
		strings.HasPrefix(full, "log.Print") || strings.HasPrefix(full, "log.Fatal") || strings.HasPrefix(full, "log.Panic") {
		if anyTainted() {
			return full + " (log output)"
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if strings.HasPrefix(name, "Set") && strings.HasSuffix(name, "Deadline") && anyTainted() {
			return name + " (deadline arithmetic)"
		}
		if name == "Write" {
			if tv, ok := t.pass.Info.Types[sel.X]; ok && analysis.IsConnLike(tv.Type) && anyTainted() {
				return "a net.Conn write (payload size/content)"
			}
		}
		if name == "Counter" && anyTainted() {
			if tv, ok := t.pass.Info.Types[sel.X]; ok && isSeriesLike(tv.Type) {
				return "a metrics series label"
			}
		}
	}
	if last == "AppendFrame" && anyTainted() {
		return "a wire frame payload (AppendFrame)"
	}
	if useSummaries && t.sums != nil {
		if fn := calleeFunc(t.pass, call); fn != nil {
			if s, ok := t.sums[types.Object(fn)]; ok {
				for i, what := range s.sinkParams {
					if argTainted(i) {
						return what + " via " + fn.Name()
					}
				}
			}
		}
	}
	return ""
}

// isSeriesLike matches the metrics.Series shape: a Counter method taking a
// string label. Shape matching keeps testdata stdlib-only.
func isSeriesLike(t types.Type) bool {
	ms := types.NewMethodSet(t)
	if _, ok := t.(*types.Pointer); !ok {
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	sel := ms.Lookup(nil, "Counter")
	if sel == nil {
		return false
	}
	sig, ok := sel.Obj().Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	basic, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.String
}

func calleeLastName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcKey renders a *types.Func as its registry key.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			tn := named.Obj()
			if tn.Pkg() != nil {
				return tn.Pkg().Path() + "." + tn.Name() + "." + fn.Name()
			}
		}
		return ""
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return ""
}

// selectionKey renders a field/method selection as its registry key,
// resolving through the receiver's named type.
func selectionKey(sel *types.Selection) string {
	recv := sel.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return ""
	}
	return tn.Pkg().Path() + "." + tn.Name() + "." + sel.Obj().Name()
}
