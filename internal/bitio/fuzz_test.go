package bitio

import (
	"errors"
	"testing"
)

// The bit-packing kernel sits under every encoder: a width bookkeeping bug
// here silently corrupts payloads for all six variants. These targets mirror
// core's fuzz style — structurally plausible seeds, then arbitrary inputs —
// and pin the two kernel invariants: bit-exact round-trips at arbitrary
// widths, and fail-closed reads past the end of the buffer.

// FuzzBitRoundTrip decodes the input as a sequence of (width, value) fields,
// writes them, and requires bit-exact recovery plus the BitLen invariant.
func FuzzBitRoundTrip(f *testing.F) {
	// Seeds cover aligned bytes, narrow runs, maximal widths, and the
	// header-then-values shape the encoders emit.
	f.Add([]byte{})
	f.Add([]byte{7, 0xAB, 0, 0, 0})
	f.Add([]byte{31, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0x01, 0, 0, 0})
	f.Add([]byte{15, 0xDE, 0xAD, 0, 0, 15, 0xBE, 0xEF, 0, 0, 2, 0x03, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var widths []int
		var values []uint32
		w := NewWriter(len(data) / 2)
		total := 0
		for i := 0; i+4 < len(data); i += 5 {
			n := int(data[i]%32) + 1
			v := uint32(data[i+1]) | uint32(data[i+2])<<8 |
				uint32(data[i+3])<<16 | uint32(data[i+4])<<24
			v &= 1<<uint(n) - 1
			w.WriteBits(v, n)
			widths = append(widths, n)
			values = append(values, v)
			total += n
		}
		if w.BitLen() != total {
			t.Fatalf("BitLen = %d, want %d", w.BitLen(), total)
		}
		r := NewReader(w.Bytes())
		for i, n := range widths {
			got, err := r.ReadBits(n)
			if err != nil {
				t.Fatalf("field %d (width %d): %v", i, n, err)
			}
			if got != values[i] {
				t.Fatalf("field %d (width %d) = %#x, want %#x", i, n, got, values[i])
			}
		}
	})
}

// FuzzReaderShortReads reads an arbitrary buffer at an arbitrary width until
// exhaustion: in-bounds reads must succeed and stay within the width's range,
// and the read past the end must fail with ErrShortBuffer without moving the
// cursor.
func FuzzReaderShortReads(f *testing.F) {
	f.Add([]byte{}, uint8(9))
	f.Add([]byte{0xFF}, uint8(9))
	f.Add([]byte{0xAA, 0x55}, uint8(13))
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(32))
	f.Fuzz(func(t *testing.T, buf []byte, n0 uint8) {
		r := NewReader(buf)
		n := int(n0%32) + 1
		for {
			rem := r.Remaining()
			v, err := r.ReadBits(n)
			if n > rem {
				if !errors.Is(err, ErrShortBuffer) {
					t.Fatalf("read past end: err = %v, want ErrShortBuffer", err)
				}
				if r.Remaining() != rem {
					t.Fatalf("failed read moved the cursor: %d -> %d", rem, r.Remaining())
				}
				return
			}
			if err != nil {
				t.Fatalf("in-bounds read of %d bits (%d remaining): %v", n, rem, err)
			}
			if n < 32 && v >= 1<<uint(n) {
				t.Fatalf("ReadBits(%d) = %#x exceeds width", n, v)
			}
			if r.Remaining() != rem-n {
				t.Fatalf("Remaining = %d after reading %d of %d", r.Remaining(), n, rem)
			}
		}
	})
}
