package bitio

// The pre-rewrite per-byte kernels, kept verbatim (generalized to 64-bit
// values) as the oracle for the differential fuzz targets. The word-at-a-time
// production kernels must match this implementation bit-for-bit for every
// width, value, and alignment; any divergence is a wire-format break.

type scalarWriter struct {
	buf  []byte
	nbit uint
}

func (w *scalarWriter) writeBits(v uint64, n int) {
	for n > 0 {
		if w.nbit == 0 {
			w.buf = append(w.buf, 0)
		}
		free := 8 - w.nbit
		take := uint(n)
		if take > free {
			take = free
		}
		chunk := byte(v >> uint(n-int(take)) & (1<<take - 1))
		w.buf[len(w.buf)-1] |= chunk << (free - take)
		w.nbit = (w.nbit + take) % 8
		n -= int(take)
	}
}

func (w *scalarWriter) align() {
	if w.nbit != 0 {
		w.writeBits(0, int(8-w.nbit))
	}
}

func (w *scalarWriter) bitLen() int {
	if w.nbit == 0 {
		return len(w.buf) * 8
	}
	return (len(w.buf)-1)*8 + int(w.nbit)
}

type scalarReader struct {
	buf []byte
	pos int
	bit uint
}

func (r *scalarReader) remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.bit)
}

func (r *scalarReader) readBits(n int) (uint64, error) {
	if r.remaining() < n {
		return 0, ErrShortBuffer
	}
	var v uint64
	for n > 0 {
		avail := 8 - r.bit
		take := uint(n)
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[r.pos]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
		n -= int(take)
	}
	return v, nil
}
