// Package bitio provides bit-granular writing and reading over byte buffers.
//
// AGE packs fixed-point values at arbitrary per-group bit widths (§4.4), so
// the encoder needs a stream that can emit, say, 5-bit and 6-bit fields
// back-to-back with no padding between them. Bits are written MSB-first
// within each byte, the natural order for radio payload layouts.
//
// The kernels are word-at-a-time: writes stage up to 64 bits in a register
// and append whole bytes with one big-endian store, reads extract fields from
// a single 64-bit load while at least 8 bytes remain. WriteRun/ReadRun and
// the streaming RunWriter amortize even that per-field bookkeeping across a
// fixed-width run, which is the shape of every encoder's value block. The
// original per-byte scalar loops survive in the test suite as the oracle for
// the differential fuzz targets; wire output is bit-identical by
// construction and pinned by fuzzing and core's golden vectors.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned by Reader when the stream has fewer bits
// remaining than requested.
var ErrShortBuffer = errors.New("bitio: not enough bits in buffer")

// Writer accumulates bits into an internal byte buffer.
type Writer struct {
	buf  []byte
	nbit uint // bits used in the final byte (0..7); 0 means byte-aligned
}

// NewWriter returns an empty Writer. The capacity hint sizes the internal
// buffer in bytes and may be zero.
func NewWriter(capacityHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capacityHint)}
}

// WriteBits appends the low n bits of v, MSB-first. n must be in [0, 32].
//
//age:hotpath
func (w *Writer) WriteBits(v uint32, n int) {
	if n < 0 || n > 32 {
		panic(fmt.Sprintf("bitio: WriteBits width %d out of range", n))
	}
	w.writeWord(uint64(v), uint(n))
}

// WriteBits64 appends the low n bits of v, MSB-first. n must be in [0, 64].
//
//age:hotpath
func (w *Writer) WriteBits64(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits64 width %d out of range", n))
	}
	w.writeWord(v, uint(n))
}

// writeWord is the word-at-a-time core of every write: it completes the
// current partial byte, then stages the remaining bits MSB-aligned in one
// uint64 and appends them as whole bytes with a single big-endian store.
// Bits of v at positions >= n are ignored.
//
//age:hotpath
func (w *Writer) writeWord(v uint64, n uint) {
	if n == 0 {
		return
	}
	if w.nbit != 0 {
		free := 8 - w.nbit
		take := n
		if take > free {
			take = free
		}
		chunk := byte(v>>(n-take)) & (1<<take - 1)
		w.buf[len(w.buf)-1] |= chunk << (free - take)
		w.nbit = (w.nbit + take) % 8
		n -= take
		if n == 0 {
			return
		}
	}
	// Byte-aligned now; n <= 64 bits remain. A partially filled final byte
	// keeps its low bits zero, preserving the OR-into-partial invariant.
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v<<(64-n))
	w.buf = append(w.buf, tmp[:(n+7)/8]...)
	w.nbit = n % 8
}

// WriteRun appends every element of vs at the same fixed width, MSB-first.
// It is equivalent to calling WriteBits64 per element but amortizes the
// staging across the whole run. width must be in [0, 64].
//
//age:hotpath
func (w *Writer) WriteRun(vs []uint64, width int) {
	rw := w.StartRun(width)
	for _, v := range vs {
		rw.Add(v)
	}
	rw.Flush()
}

// RunWriter streams fixed-width values into a Writer through a 64-bit
// accumulator, flushing eight bytes at a time. It exists so encoders can
// fuse quantization and packing: quantize one value, Add it, never build an
// intermediate slice of bit patterns.
//
// Between StartRun and Flush the parent Writer must not be used directly —
// the pending bits live in the RunWriter. Flush restores the Writer's
// invariants and must always be called, even after zero Adds.
type RunWriter struct {
	w     *Writer
	width uint
	mask  uint64
	acc   uint64 // pending bits, MSB-aligned
	nacc  uint   // pending bit count (0..63)
}

// StartRun begins a fixed-width run on w. width must be in [0, 64].
//
//age:hotpath
func (w *Writer) StartRun(width int) RunWriter {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: StartRun width %d out of range", width))
	}
	rw := RunWriter{w: w, width: uint(width), mask: ^uint64(0)}
	if width < 64 {
		rw.mask = 1<<uint(width) - 1
	}
	// Absorb the writer's partial byte into the accumulator; its low bits
	// are zero by invariant.
	if w.nbit != 0 {
		last := len(w.buf) - 1
		rw.acc = uint64(w.buf[last]) << 56
		rw.nacc = w.nbit
		w.buf = w.buf[:last]
		w.nbit = 0
	}
	return rw
}

// Add appends the low width bits of v to the run.
//
//age:hotpath
func (rw *RunWriter) Add(v uint64) {
	v &= rw.mask
	n := rw.width
	if rw.nacc+n < 64 {
		rw.acc |= v << (64 - rw.nacc - n)
		rw.nacc += n
		return
	}
	// The value completes (or overflows) the accumulator: emit 64 bits.
	hi := 64 - rw.nacc // bits of v that fit (1..64)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], rw.acc|v>>(n-hi))
	rw.w.buf = append(rw.w.buf, tmp[:]...)
	rem := n - hi // 0..63
	rw.acc = v << (64 - rem)
	if rem == 0 {
		rw.acc = 0
	}
	rw.nacc = rem
}

// Flush drains the pending bits back into the Writer, re-establishing its
// invariants. The RunWriter must not be used afterwards.
//
//age:hotpath
func (rw *RunWriter) Flush() {
	n := rw.nacc
	if nb := n / 8; nb > 0 {
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], rw.acc)
		rw.w.buf = append(rw.w.buf, tmp[:nb]...)
		rw.acc <<= nb * 8
		n -= nb * 8
	}
	if n > 0 {
		rw.w.buf = append(rw.w.buf, byte(rw.acc>>56))
	}
	rw.w.nbit = n
	rw.acc, rw.nacc = 0, 0
}

// WriteByte appends a full byte.
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint32(b), 8)
	return nil
}

// WriteUint16 appends v big-endian.
func (w *Writer) WriteUint16(v uint16) { w.WriteBits(uint32(v), 16) }

// Align pads with zero bits to the next byte boundary.
//
//age:hotpath
func (w *Writer) Align() {
	if w.nbit != 0 {
		w.nbit = 0
	}
}

// PadTo extends the buffer with zero bytes until it is exactly n bytes long.
// It panics if the buffer already exceeds n bytes: callers size their
// payloads before writing, so overflow is a programming error.
//
//age:hotpath
func (w *Writer) PadTo(n int) {
	w.Align()
	if len(w.buf) > n {
		panic(fmt.Sprintf("bitio: buffer %dB exceeds pad target %dB", len(w.buf), n))
	}
	for len(w.buf) < n {
		w.buf = append(w.buf, 0)
	}
}

// Len returns the current length in whole bytes (a partially filled final
// byte counts as one byte).
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the exact number of bits written.
func (w *Writer) BitLen() int {
	if w.nbit == 0 {
		return len(w.buf) * 8
	}
	return (len(w.buf)-1)*8 + int(w.nbit)
}

// Bytes returns the accumulated buffer. The final partial byte, if any, is
// zero-padded. The returned slice aliases the Writer's CURRENT storage: it
// is only valid until the next write that grows the buffer past its
// capacity, and is invalidated entirely by Reset/ResetTo. Callers that keep
// a payload across further writer use must copy it.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse without reallocating.
//
//age:hotpath
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// ResetTo clears the writer and makes it write into dst's storage. While the
// written bits fit in cap(dst) no allocation occurs; past that the buffer
// grows as usual — and from that point the writer's storage no longer
// aliases dst. Callers hand the writer a buffer they own (typically the
// previous payload, truncated) to keep steady-state encoding allocation-free,
// and MUST take the result from Bytes() rather than re-reading dst: after
// growth, dst still holds the stale previous contents.
//
//age:hotpath
func (w *Writer) ResetTo(dst []byte) {
	w.buf = dst[:0]
	w.nbit = 0
}

// Reader consumes bits from a byte slice, MSB-first, mirroring Writer.
type Reader struct {
	buf []byte
	pos int  // byte index
	bit uint // bit offset within buf[pos] (0 = MSB)
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset repoints the reader at buf, restarting at the first bit. It lets hot
// paths keep a stack-allocated Reader instead of constructing one per payload.
//
//age:hotpath
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.bit = 0
}

// ReadBits reads n bits (0..32) and returns them right-aligned.
//
//age:hotpath
func (r *Reader) ReadBits(n int) (uint32, error) {
	if n < 0 || n > 32 {
		panic(fmt.Sprintf("bitio: ReadBits width %d out of range", n))
	}
	// Fast path: one 64-bit load covers bit+n <= 39 bits whenever 8 bytes
	// remain, so no per-byte loop and no separate bounds bookkeeping.
	if r.pos+8 <= len(r.buf) {
		word := binary.BigEndian.Uint64(r.buf[r.pos:])
		v := uint32(word << r.bit >> (64 - uint(n)))
		t := r.bit + uint(n)
		r.pos += int(t >> 3)
		r.bit = t & 7
		return v, nil
	}
	v, err := r.readTail(uint(n))
	return uint32(v), err
}

// ReadBits64 reads n bits (0..64) and returns them right-aligned.
//
//age:hotpath
func (r *Reader) ReadBits64(n int) (uint64, error) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits64 width %d out of range", n))
	}
	if t := r.bit + uint(n); t <= 64 && r.pos+8 <= len(r.buf) {
		word := binary.BigEndian.Uint64(r.buf[r.pos:])
		v := word << r.bit >> (64 - uint(n))
		r.pos += int(t >> 3)
		r.bit = t & 7
		return v, nil
	} else if t > 64 && r.pos+9 <= len(r.buf) {
		// The field straddles the 64-bit window: splice in the top bits of
		// the ninth byte.
		word := binary.BigEndian.Uint64(r.buf[r.pos:])
		ex := t - 64 // 1..7
		v := word<<r.bit>>(64-uint(n)) | uint64(r.buf[r.pos+8])>>(8-ex)
		r.pos += int(t >> 3)
		r.bit = t & 7
		return v, nil
	}
	return r.readTail(uint(n))
}

// readTail is the scalar per-byte read used within the last 8 bytes of the
// buffer, where a whole-word load would run past the end.
func (r *Reader) readTail(n uint) (uint64, error) {
	if uint(r.Remaining()) < n {
		return 0, ErrShortBuffer
	}
	var v uint64
	for n > 0 {
		avail := 8 - r.bit
		take := n
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[r.pos]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
		n -= take
	}
	return v, nil
}

// ReadRun fills dst with len(dst) consecutive fields of the given width.
// If the stream holds fewer than len(dst)*width bits it fails with
// ErrShortBuffer before consuming anything. width must be in [0, 64].
//
//age:hotpath
func (r *Reader) ReadRun(dst []uint64, width int) error {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: ReadRun width %d out of range", width))
	}
	if r.Remaining() < width*len(dst) {
		return ErrShortBuffer
	}
	n := uint(width)
	for i := range dst {
		if t := r.bit + n; t <= 64 && r.pos+8 <= len(r.buf) {
			word := binary.BigEndian.Uint64(r.buf[r.pos:])
			dst[i] = word << r.bit >> (64 - n)
			r.pos += int(t >> 3)
			r.bit = t & 7
			continue
		}
		v, err := r.ReadBits64(width)
		if err != nil {
			return err // unreachable: the run was bounds-checked up front
		}
		dst[i] = v
	}
	return nil
}

// ReadByte reads 8 bits as a byte.
func (r *Reader) ReadByte() (byte, error) {
	v, err := r.ReadBits(8)
	return byte(v), err
}

// ReadUint16 reads a big-endian uint16.
func (r *Reader) ReadUint16() (uint16, error) {
	v, err := r.ReadBits(16)
	return uint16(v), err
}

// Align skips to the next byte boundary.
//
//age:hotpath
func (r *Reader) Align() {
	if r.bit != 0 {
		r.bit = 0
		r.pos++
	}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.bit)
}
