// Package bitio provides bit-granular writing and reading over byte buffers.
//
// AGE packs fixed-point values at arbitrary per-group bit widths (§4.4), so
// the encoder needs a stream that can emit, say, 5-bit and 6-bit fields
// back-to-back with no padding between them. Bits are written MSB-first
// within each byte, the natural order for radio payload layouts.
package bitio

import (
	"errors"
	"fmt"
)

// ErrShortBuffer is returned by Reader when the stream has fewer bits
// remaining than requested.
var ErrShortBuffer = errors.New("bitio: not enough bits in buffer")

// Writer accumulates bits into an internal byte buffer.
type Writer struct {
	buf  []byte
	nbit uint // bits used in the final byte (0..7); 0 means byte-aligned
}

// NewWriter returns an empty Writer. The capacity hint sizes the internal
// buffer in bytes and may be zero.
func NewWriter(capacityHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capacityHint)}
}

// WriteBits appends the low n bits of v, MSB-first. n must be in [0, 32].
//
//age:hotpath
func (w *Writer) WriteBits(v uint32, n int) {
	if n < 0 || n > 32 {
		panic(fmt.Sprintf("bitio: WriteBits width %d out of range", n))
	}
	for n > 0 {
		if w.nbit == 0 {
			w.buf = append(w.buf, 0)
		}
		free := 8 - w.nbit // free bits in the current byte
		take := uint(n)
		if take > free {
			take = free
		}
		// Extract the top `take` of the remaining n bits of v.
		chunk := byte(v >> uint(n-int(take)) & (1<<take - 1))
		w.buf[len(w.buf)-1] |= chunk << (free - take)
		w.nbit = (w.nbit + take) % 8
		n -= int(take)
	}
}

// WriteByte appends a full byte.
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint32(b), 8)
	return nil
}

// WriteUint16 appends v big-endian.
func (w *Writer) WriteUint16(v uint16) { w.WriteBits(uint32(v), 16) }

// Align pads with zero bits to the next byte boundary.
//
//age:hotpath
func (w *Writer) Align() {
	if w.nbit != 0 {
		w.WriteBits(0, int(8-w.nbit))
	}
}

// PadTo extends the buffer with zero bytes until it is exactly n bytes long.
// It panics if the buffer already exceeds n bytes: callers size their
// payloads before writing, so overflow is a programming error.
//
//age:hotpath
func (w *Writer) PadTo(n int) {
	w.Align()
	if len(w.buf) > n {
		panic(fmt.Sprintf("bitio: buffer %dB exceeds pad target %dB", len(w.buf), n))
	}
	for len(w.buf) < n {
		w.buf = append(w.buf, 0)
	}
}

// Len returns the current length in whole bytes (a partially filled final
// byte counts as one byte).
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the exact number of bits written.
func (w *Writer) BitLen() int {
	if w.nbit == 0 {
		return len(w.buf) * 8
	}
	return (len(w.buf)-1)*8 + int(w.nbit)
}

// Bytes returns the accumulated buffer. The final partial byte, if any, is
// zero-padded. The returned slice aliases the Writer's storage.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse without reallocating.
//
//age:hotpath
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// ResetTo clears the writer and makes it write into dst's storage. While the
// written bits fit in cap(dst) no allocation occurs; past that the buffer
// grows as usual. Callers hand the writer a buffer they own (typically the
// previous payload, truncated) to keep steady-state encoding allocation-free.
//
//age:hotpath
func (w *Writer) ResetTo(dst []byte) {
	w.buf = dst[:0]
	w.nbit = 0
}

// Reader consumes bits from a byte slice, MSB-first, mirroring Writer.
type Reader struct {
	buf []byte
	pos int  // byte index
	bit uint // bit offset within buf[pos] (0 = MSB)
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset repoints the reader at buf, restarting at the first bit. It lets hot
// paths keep a stack-allocated Reader instead of constructing one per payload.
//
//age:hotpath
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.bit = 0
}

// ReadBits reads n bits (0..32) and returns them right-aligned.
//
//age:hotpath
func (r *Reader) ReadBits(n int) (uint32, error) {
	if n < 0 || n > 32 {
		panic(fmt.Sprintf("bitio: ReadBits width %d out of range", n))
	}
	if r.Remaining() < n {
		return 0, ErrShortBuffer
	}
	var v uint32
	for n > 0 {
		avail := 8 - r.bit
		take := uint(n)
		if take > avail {
			take = avail
		}
		chunk := uint32(r.buf[r.pos]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
		n -= int(take)
	}
	return v, nil
}

// ReadByte reads 8 bits as a byte.
func (r *Reader) ReadByte() (byte, error) {
	v, err := r.ReadBits(8)
	return byte(v), err
}

// ReadUint16 reads a big-endian uint16.
func (r *Reader) ReadUint16() (uint16, error) {
	v, err := r.ReadBits(16)
	return uint16(v), err
}

// Align skips to the next byte boundary.
//
//age:hotpath
func (r *Reader) Align() {
	if r.bit != 0 {
		r.bit = 0
		r.pos++
	}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.bit)
}
