package bitio

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestWriteBits64RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) + 1
		widths := make([]int, n)
		values := make([]uint64, n)
		w := NewWriter(0)
		for i := range widths {
			widths[i] = rng.Intn(64) + 1
			values[i] = rng.Uint64() & (^uint64(0) >> (64 - uint(widths[i])))
			w.WriteBits64(values[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range widths {
			got, err := r.ReadBits64(widths[i])
			if err != nil || got != values[i] {
				t.Fatalf("trial %d field %d (width %d) = %#x, %v; want %#x",
					trial, i, widths[i], got, err, values[i])
			}
		}
	}
}

func TestWriteRunReadRunRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, width := range []int{1, 2, 5, 7, 8, 13, 16, 31, 32, 33, 48, 63, 64} {
		for _, lead := range []int{0, 3} { // aligned and mid-byte starts
			w := NewWriter(0)
			if lead > 0 {
				w.WriteBits(0b101, lead)
			}
			vals := make([]uint64, 37)
			mask := ^uint64(0) >> (64 - uint(width))
			for i := range vals {
				vals[i] = rng.Uint64() & mask
			}
			w.WriteRun(vals, width)
			if want := lead + width*len(vals); w.BitLen() != want {
				t.Fatalf("width %d lead %d: BitLen = %d, want %d", width, lead, w.BitLen(), want)
			}
			r := NewReader(w.Bytes())
			if lead > 0 {
				if _, err := r.ReadBits(lead); err != nil {
					t.Fatal(err)
				}
			}
			got := make([]uint64, len(vals))
			if err := r.ReadRun(got, width); err != nil {
				t.Fatalf("width %d lead %d: %v", width, lead, err)
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("width %d lead %d field %d = %#x, want %#x", width, lead, i, got[i], vals[i])
				}
			}
		}
	}
}

// TestRunWriterMatchesWriteBits pins the fused streaming path to the
// field-at-a-time path: interleaving runs with ordinary writes must produce
// the same bytes either way.
func TestRunWriterMatchesWriteBits(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 30; trial++ {
		a, b := NewWriter(0), NewWriter(0)
		for seg := 0; seg < 5; seg++ {
			hdr := uint32(rng.Intn(256))
			a.WriteBits(hdr, 11)
			b.WriteBits(hdr, 11)
			width := rng.Intn(64) + 1
			mask := ^uint64(0) >> (64 - uint(width))
			n := rng.Intn(20)
			rw := a.StartRun(width)
			for i := 0; i < n; i++ {
				v := rng.Uint64()
				rw.Add(v)
				b.WriteBits64(v&mask, width)
			}
			rw.Flush()
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) || a.BitLen() != b.BitLen() {
			t.Fatalf("trial %d: RunWriter bytes diverge from WriteBits64", trial)
		}
	}
}

func TestReadRunShortBuffer(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xABCD, 16)
	r := NewReader(w.Bytes())
	dst := make([]uint64, 3)
	if err := r.ReadRun(dst, 7); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
	if r.Remaining() != 16 {
		t.Fatalf("failed ReadRun consumed bits: remaining %d, want 16", r.Remaining())
	}
	if err := r.ReadRun(dst[:2], 8); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0xAB || dst[1] != 0xCD {
		t.Fatalf("ReadRun = %#x %#x", dst[0], dst[1])
	}
}

func TestWidthValidation(t *testing.T) {
	cases := []func(){
		func() { NewWriter(0).WriteBits64(0, 65) },
		func() { NewWriter(0).WriteRun(nil, -1) },
		func() { NewWriter(0).StartRun(65) },
		func() { NewReader(nil).ReadBits64(65) },        //nolint:errcheck
		func() { NewReader(nil).ReadRun(nil, 65) },      //nolint:errcheck
		func() { _, _ = NewReader(nil).ReadBits64(-1) }, // negative widths too
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on out-of-range width", i)
				}
			}()
			f()
		}()
	}
}

// TestResetToGrowthAliasing is the regression test for the ResetTo aliasing
// hazard: once the writer grows past cap(dst), the writer's storage detaches
// from dst — a caller that keeps reading dst instead of Bytes() sees stale
// bytes. The test pins the documented contract: Bytes() is authoritative,
// dst is not.
func TestResetToGrowthAliasing(t *testing.T) {
	dst := make([]byte, 2, 2)
	dst[0], dst[1] = 0xEE, 0xEE
	w := NewWriter(0)
	w.ResetTo(dst)
	for i := 0; i < 4; i++ { // 4 bytes: grows past cap(dst)=2
		w.WriteBits(uint32(0xA0+i), 8)
	}
	got := w.Bytes()
	if len(got) != 4 {
		t.Fatalf("Len = %d, want 4", len(got))
	}
	for i, b := range got {
		if b != byte(0xA0+i) {
			t.Fatalf("Bytes() = %x, want a0a1a2a3", got)
		}
	}
	if &got[0] == &dst[0] {
		t.Fatal("writer still aliases dst after growing past its capacity")
	}
	// The hazard itself: dst retains whatever the writer left before the
	// growth reallocation. Nothing written after the growth lands in dst,
	// so callers must never treat dst as the payload.
	if dst[0] == 0xA0 && dst[1] == 0xA1 {
		// dst may legitimately hold the first two bytes (written pre-growth)
		// but must NOT be assumed to: this branch documents, not asserts.
		t.Log("dst holds pre-growth prefix; post-growth bytes are elsewhere")
	}
}
