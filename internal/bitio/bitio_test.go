package bitio

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadAlignedBytes(t *testing.T) {
	w := NewWriter(4)
	for _, b := range []byte{0xDE, 0xAD, 0xBE, 0xEF} {
		if err := w.WriteByte(b); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(w.Bytes(), []byte{0xDE, 0xAD, 0xBE, 0xEF}) {
		t.Fatalf("bytes = %x", w.Bytes())
	}
	r := NewReader(w.Bytes())
	for _, want := range []byte{0xDE, 0xAD, 0xBE, 0xEF} {
		got, err := r.ReadByte()
		if err != nil || got != want {
			t.Fatalf("ReadByte = %x, %v; want %x", got, err, want)
		}
	}
}

func TestUnalignedFields(t *testing.T) {
	// 3 bits, 5 bits, 7 bits, 9 bits = 24 bits = 3 bytes.
	w := NewWriter(3)
	w.WriteBits(0b101, 3)
	w.WriteBits(0b11010, 5)
	w.WriteBits(0b0110011, 7)
	w.WriteBits(0b100000001, 9)
	if w.BitLen() != 24 || w.Len() != 3 {
		t.Fatalf("BitLen=%d Len=%d", w.BitLen(), w.Len())
	}
	r := NewReader(w.Bytes())
	for _, c := range []struct {
		n    int
		want uint32
	}{{3, 0b101}, {5, 0b11010}, {7, 0b0110011}, {9, 0b100000001}} {
		got, err := r.ReadBits(c.n)
		if err != nil || got != c.want {
			t.Fatalf("ReadBits(%d) = %b, %v; want %b", c.n, got, err, c.want)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestMSBFirstLayout(t *testing.T) {
	// Writing 1 bit of value 1 must set the MSB of the first byte.
	w := NewWriter(1)
	w.WriteBits(1, 1)
	if w.Bytes()[0] != 0x80 {
		t.Fatalf("first byte = %08b, want 10000000", w.Bytes()[0])
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	// Only the low n bits of v may be written.
	w := NewWriter(1)
	w.WriteBits(0xFFFFFFFF, 4)
	w.Align()
	if w.Bytes()[0] != 0xF0 {
		t.Fatalf("byte = %02x, want f0", w.Bytes()[0])
	}
}

func TestAlignAndPadTo(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b1, 1)
	w.Align()
	if w.BitLen() != 8 {
		t.Fatalf("BitLen after Align = %d", w.BitLen())
	}
	w.PadTo(5)
	if w.Len() != 5 {
		t.Fatalf("Len after PadTo = %d", w.Len())
	}
	for _, b := range w.Bytes()[1:] {
		if b != 0 {
			t.Fatalf("padding byte nonzero: %x", w.Bytes())
		}
	}
}

func TestPadToPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PadTo did not panic on overflow")
		}
	}()
	w := NewWriter(4)
	w.WriteUint16(0xABCD)
	w.PadTo(1)
}

func TestReadBitsShortBuffer(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", err)
	}
	// After a failed read the stream must be unchanged.
	v, err := r.ReadBits(8)
	if err != nil || v != 0xFF {
		t.Errorf("ReadBits(8) after failure = %x, %v", v, err)
	}
}

func TestUint16RoundTrip(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0b11, 2) // leave the stream unaligned
	w.WriteUint16(0xBEEF)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(2); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadUint16()
	if err != nil || got != 0xBEEF {
		t.Fatalf("ReadUint16 = %04x, %v", got, err)
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.Len() != 0 || w.BitLen() != 0 {
		t.Fatalf("after Reset: Len=%d BitLen=%d", w.Len(), w.BitLen())
	}
	w.WriteBits(0b1, 1)
	if w.Bytes()[0] != 0x80 {
		t.Fatalf("stale state after Reset: %x", w.Bytes())
	}
}

func TestResetTo(t *testing.T) {
	// Writing into a caller-owned buffer reuses its storage and clears any
	// stale bytes in the rewritten region.
	dst := []byte{0xAA, 0xAA, 0xAA, 0xAA}
	w := NewWriter(0)
	w.ResetTo(dst)
	w.WriteBits(0b1, 1)
	w.WriteBits(0, 7)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0x80 {
		t.Fatalf("ResetTo write = %x, want 80", got)
	}
	if &got[0] != &dst[0] {
		t.Error("ResetTo did not reuse the destination storage")
	}
	// Growing past cap(dst) must still work (append semantics).
	w.ResetTo(dst)
	for i := 0; i < 8; i++ {
		w.WriteBits(uint32(i), 8)
	}
	if w.Len() != 8 {
		t.Fatalf("grown length = %d, want 8", w.Len())
	}
	for i, b := range w.Bytes() {
		if b != byte(i) {
			t.Fatalf("grown bytes = %x", w.Bytes())
		}
	}
}

func TestReaderAlign(t *testing.T) {
	r := NewReader([]byte{0xFF, 0x0F})
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	v, err := r.ReadBits(8)
	if err != nil || v != 0x0F {
		t.Fatalf("after Align: %x, %v", v, err)
	}
}

// TestRoundTripProperty writes a random sequence of (width, value) fields and
// reads them back, checking bit-exact recovery.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%64) + 1
		widths := make([]int, n)
		values := make([]uint32, n)
		w := NewWriter(n * 4)
		for i := range widths {
			widths[i] = rng.Intn(32) + 1
			values[i] = rng.Uint32() & (1<<uint(widths[i]) - 1)
			w.WriteBits(values[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range widths {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBitLenInvariant checks BitLen == sum of written widths.
func TestBitLenInvariant(t *testing.T) {
	prop := func(widths []uint8) bool {
		w := NewWriter(0)
		total := 0
		for _, ww := range widths {
			n := int(ww % 33) // 0..32 inclusive
			w.WriteBits(0, n)
			total += n
		}
		return w.BitLen() == total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteBitsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WriteBits(33) did not panic")
		}
	}()
	NewWriter(0).WriteBits(0, 33)
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.Len() > 900 {
			w.Reset()
		}
		w.WriteBits(0x15, 5)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1024)
	for i := 0; i < 1000; i++ {
		w.WriteBits(uint32(i), 13)
	}
	buf := w.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		for r.Remaining() >= 13 {
			if _, err := r.ReadBits(13); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkWriteRun(b *testing.B) {
	vals := make([]uint64, 1000)
	for i := range vals {
		vals[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	w := NewWriter(16 * 1024)
	b.ReportAllocs()
	b.SetBytes(13 * 1000 / 8)
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.WriteRun(vals, 13)
	}
}

func BenchmarkReadRun(b *testing.B) {
	w := NewWriter(16 * 1024)
	vals := make([]uint64, 1000)
	for i := range vals {
		vals[i] = uint64(i) & (1<<13 - 1)
	}
	w.WriteRun(vals, 13)
	buf := w.Bytes()
	dst := make([]uint64, 1000)
	b.ResetTimer()
	b.ReportAllocs()
	b.SetBytes(13 * 1000 / 8)
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		if err := r.ReadRun(dst, 13); err != nil {
			b.Fatal(err)
		}
	}
}
