package bitio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// Differential fuzzing: the word-at-a-time kernels against the legacy scalar
// loops (scalar_oracle_test.go). The fuzzer drives both with the identical
// operation sequence decoded from the input and requires identical buffers,
// bit counts, values, and errors. This is the strongest guarantee we have
// that the kernel rewrite cannot change the wire format for ANY width or
// alignment, not just the ones the encoders happen to exercise today.

// FuzzWriteKernelDiff decodes the input as a sequence of write operations —
// single fields at 1..64 bits, fixed-width runs via WriteRun and RunWriter,
// and aligns — applies them to the production Writer and the scalar oracle,
// and requires byte-identical output.
func FuzzWriteKernelDiff(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 7, 0xAB, 0xCD, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0x41, 13, 3, 0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0})
	f.Add([]byte{0x82, 63, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xC3})
	f.Fuzz(func(t *testing.T, data []byte) {
		w := NewWriter(0)
		var sw scalarWriter
		for len(data) >= 10 {
			op, width := data[0]>>6, int(data[0]&63)+1
			v := binary.LittleEndian.Uint64(data[1:9])
			data = data[9:]
			switch op {
			case 0: // single field
				mask := ^uint64(0) >> (64 - uint(width))
				w.WriteBits64(v, width)
				sw.writeBits(v&mask, width)
			case 1: // align then a 32-bit-or-less field
				nw := (width-1)%32 + 1
				mask := ^uint64(0) >> (64 - uint(nw))
				w.Align()
				sw.align()
				w.WriteBits(uint32(v), nw)
				sw.writeBits(v&mask, nw)
			case 2: // fixed-width run via WriteRun
				n := int(data[0]%7) + 1
				data = data[1:]
				vals := make([]uint64, n)
				mask := ^uint64(0) >> (64 - uint(width))
				for i := range vals {
					vals[i] = (v + uint64(i)*0x9E3779B97F4A7C15) & mask
				}
				w.WriteRun(vals, width)
				for _, x := range vals {
					sw.writeBits(x, width)
				}
			case 3: // the same run streamed through a RunWriter
				n := int(data[0]%7) + 1
				data = data[1:]
				mask := ^uint64(0) >> (64 - uint(width))
				rw := w.StartRun(width)
				for i := 0; i < n; i++ {
					x := (v + uint64(i)*0x9E3779B97F4A7C15) & mask
					rw.Add(x)
					sw.writeBits(x, width)
				}
				rw.Flush()
			}
			if w.BitLen() != sw.bitLen() {
				t.Fatalf("BitLen diverged: word %d, scalar %d", w.BitLen(), sw.bitLen())
			}
		}
		if !bytes.Equal(w.Bytes(), sw.buf) {
			t.Fatalf("buffers diverged:\n word  %x\n scalar %x", w.Bytes(), sw.buf)
		}
	})
}

// FuzzReadKernelDiff reads an arbitrary buffer through ReadBits64/ReadRun and
// through the scalar oracle at the same width schedule and requires identical
// values, cursor positions, and errors — including the fail-without-consuming
// contract at the end of the buffer.
func FuzzReadKernelDiff(f *testing.F) {
	f.Add([]byte{}, uint8(9), uint8(0))
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55, 0x12, 0x34, 0x56, 0x78, 0x9A}, uint8(13), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(63), uint8(2))
	f.Fuzz(func(t *testing.T, buf []byte, w0, mode uint8) {
		width := int(w0%64) + 1
		r := NewReader(buf)
		sr := scalarReader{buf: buf}
		if mode%2 == 1 {
			// ReadRun in chunks, checked against per-field scalar reads.
			chunk := make([]uint64, int(mode/2%5)+1)
			for {
				rem := sr.remaining()
				err := r.ReadRun(chunk, width)
				if rem < width*len(chunk) {
					if !errors.Is(err, ErrShortBuffer) {
						t.Fatalf("ReadRun past end: %v, want ErrShortBuffer", err)
					}
					if r.Remaining() != rem {
						t.Fatalf("failed ReadRun consumed bits: %d -> %d", rem, r.Remaining())
					}
					return
				}
				if err != nil {
					t.Fatalf("in-bounds ReadRun: %v", err)
				}
				for i, got := range chunk {
					want, err := sr.readBits(width)
					if err != nil {
						t.Fatalf("oracle failed where kernel succeeded: %v", err)
					}
					if got != want {
						t.Fatalf("field %d = %#x, oracle %#x", i, got, want)
					}
				}
				if r.Remaining() != sr.remaining() {
					t.Fatalf("cursors diverged: %d vs %d", r.Remaining(), sr.remaining())
				}
			}
		}
		for {
			got, gotErr := r.ReadBits64(width)
			want, wantErr := sr.readBits(width)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("errors diverged: kernel %v, oracle %v", gotErr, wantErr)
			}
			if gotErr != nil {
				if !errors.Is(gotErr, ErrShortBuffer) {
					t.Fatalf("err = %v, want ErrShortBuffer", gotErr)
				}
				if r.Remaining() != sr.remaining() {
					t.Fatalf("failed read cursors diverged: %d vs %d", r.Remaining(), sr.remaining())
				}
				return
			}
			if got != want {
				t.Fatalf("ReadBits64(%d) = %#x, oracle %#x", width, got, want)
			}
			if r.Remaining() != sr.remaining() {
				t.Fatalf("cursors diverged: %d vs %d", r.Remaining(), sr.remaining())
			}
		}
	})
}
